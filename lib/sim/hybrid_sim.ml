module Coflow = Sunflow_core.Coflow
module Bounds = Sunflow_core.Bounds
module Obs = Sunflow_obs

let m_circuit_coflows = Obs.Registry.counter "hybrid.circuit_coflows"
let m_packet_coflows = Obs.Registry.counter "hybrid.packet_coflows"

let best_bound ~delta ~circuit_bandwidth ~packet_bandwidth (c : Coflow.t) =
  if Sunflow_core.Demand.is_empty c.demand then `Packet
  else begin
    let on_packet = Bounds.packet_lower ~bandwidth:packet_bandwidth c.demand in
    let on_circuit =
      Bounds.circuit_lower ~bandwidth:circuit_bandwidth ~delta c.demand
    in
    if on_packet <= on_circuit then `Packet else `Circuit
  end

let run ?policy ?(packet_scheduler = Sunflow_packet.Fair.allocate) ~delta
    ~circuit_bandwidth ~packet_bandwidth ~classify coflows =
  if circuit_bandwidth <= 0. || packet_bandwidth <= 0. then
    invalid_arg "Hybrid_sim.run: non-positive bandwidth";
  let obs = Obs.Control.enabled () in
  let circuit, packet =
    if not obs then List.partition (fun c -> classify c = `Circuit) coflows
    else
      Obs.Tracer.with_span ~cat:"sim" "hybrid.classify" (fun () ->
          List.partition (fun c -> classify c = `Circuit) coflows)
  in
  if obs then begin
    Obs.Registry.add m_circuit_coflows (List.length circuit);
    Obs.Registry.add m_packet_coflows (List.length packet)
  end;
  let circuit_result =
    if not obs then
      Circuit_sim.run ?policy ~delta ~bandwidth:circuit_bandwidth circuit
    else
      Obs.Tracer.with_span ~cat:"sim" "hybrid.circuit_fabric" (fun () ->
          Circuit_sim.run ?policy ~delta ~bandwidth:circuit_bandwidth circuit)
  in
  let packet_result =
    if not obs then
      Packet_sim.run ~scheduler:packet_scheduler ~bandwidth:packet_bandwidth
        packet
    else
      Obs.Tracer.with_span ~cat:"sim" "hybrid.packet_fabric" (fun () ->
          Packet_sim.run ~scheduler:packet_scheduler
            ~bandwidth:packet_bandwidth packet)
  in
  let merge sel =
    List.sort (fun (a, _) (b, _) -> compare a b)
      (sel circuit_result @ sel packet_result)
  in
  {
    Sim_result.ccts = merge (fun (r : Sim_result.t) -> r.ccts);
    finishes = merge (fun (r : Sim_result.t) -> r.finishes);
    makespan = Float.max circuit_result.makespan packet_result.makespan;
    n_events = circuit_result.n_events + packet_result.n_events;
    total_setups = circuit_result.total_setups;
  }

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Inter = Sunflow_core.Inter
module Order = Sunflow_core.Order
module Prt = Sunflow_core.Prt
module Schedule = Sunflow_core.Schedule
module Sunflow = Sunflow_core.Sunflow

type active = { orig : Coflow.t; remaining : Demand.t }

(* Gated observability: wall-time spans around each scheduling event
   and each replan, counters/gauges for the event loop's work (δ
   seconds paid, setups and teardowns executed), and the per-Coflow
   simulated-time timeline (arrival, setups with their δ, subflow
   finishes, completion). All behind Sunflow_obs.Control. *)
module Obs = Sunflow_obs

let m_events = Obs.Registry.counter "sim.events"
let m_setups = Obs.Registry.counter "sim.setups"
let m_teardowns = Obs.Registry.counter "sim.teardowns"
let g_delta = Obs.Registry.gauge "sim.delta_s"
let h_plan = Obs.Registry.histogram "sim.plan_s"

let byte_eps bandwidth = Float.max 1e-3 (bandwidth *. 1e-6)

let snap_demand ~bandwidth d =
  let eps = byte_eps bandwidth in
  List.iter
    (fun ((i, j), v) -> if v <= eps then Demand.set d i j 0.)
    (Demand.entries d)

let check_unique_ids coflows =
  let ids = List.map (fun c -> c.Coflow.id) coflows in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Circuit_sim.run: duplicate Coflow ids"

let no_release _ _ = []

(* Executed-slice telemetry (only called when obs is on): record every
   reservation's executed segment — clipped to [t, t_next) — into the
   attribution window store and the per-port ledger, plus one sampler
   snapshot for the slice. Both replay paths feed it the same
   slice-overlapping windows, so the recorded series is bit-identical
   wherever the executed schedules are. *)
let sample_slice ~t ~t_next ~n_active ~rescheduled ~spliced ~conflicts
    ~rollbacks reservations =
  let circuits = ref 0 and tx_total = ref 0. and su_total = ref 0. in
  let busy : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (r : Prt.reservation) ->
      let seg0 = Float.max r.start t in
      let seg1 = Float.min (Prt.stop r) t_next in
      if seg1 > seg0 then begin
        incr circuits;
        let tx_s = Schedule.transmission_overlap r ~t0:t ~t1:t_next in
        let su_s = Schedule.setup_overlap r ~t0:t ~t1:t_next in
        tx_total := !tx_total +. tx_s;
        su_total := !su_total +. su_s;
        Hashtbl.replace busy (0, r.src) ();
        Hashtbl.replace busy (1, r.dst) ();
        Obs.Attrib.record_window ~coflow:r.coflow ~src:r.src ~dst:r.dst
          ~t0:seg0
          ~tx:(r.start +. r.setup)
          ~t1:seg1;
        Obs.Sampler.port_busy ~src:r.src ~dst:r.dst ~setup_s:su_s ~tx_s
      end)
    reservations;
  Obs.Sampler.record
    {
      Obs.Sampler.m_t = t;
      m_t_next = t_next;
      m_active = n_active;
      m_circuits = !circuits;
      m_transmit_s = !tx_total;
      m_setup_s = !su_total;
      m_busy_ports = Hashtbl.length busy;
      m_rescheduled = rescheduled;
      m_spliced = spliced;
      m_conflicts = conflicts;
      m_rollbacks = rollbacks;
    }

type replan = [ `Full | `Rebuild | `Incremental ]

let run_full ~policy ~order ~carry_circuits ~plan_cache ~on_complete ~on_slice
    ~delta ~bandwidth coflows =
  let arrivals = Event_queue.create () in
  List.iter
    (fun c -> Event_queue.push arrivals ~time:c.Coflow.arrival c)
    (List.sort Coflow.compare_arrival coflows);
  let obs = Obs.Control.enabled () in
  let active : active list ref = ref [] in
  let ccts = ref [] and finishes = ref [] in
  let n_events = ref 0 and setups = ref 0 in
  let makespan = ref 0. in
  (* Circuits physically established (their window paid a setup) and
     not yet torn down. A teardown is counted only when one of these
     actually closes — when its window stops inside a slice, or when a
     rescheduling instant drops it from the next plan — so the
     [sim.setups] / [sim.teardowns] counters balance; carried-over
     windows (zero setup at the replan instant) keep their circuit
     alive without touching either counter. *)
  let live : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* per-slice scratch tables, reused across the whole replay (cleared,
     not reallocated — the replay hot path runs once per event) *)
  let reused = Hashtbl.create 8 in
  let by_id = Hashtbl.create 16 in
  let admit t =
    List.iter
      (fun (_, (c : Coflow.t)) ->
        if obs then
          Obs.Timeline.record
            (Obs.Timeline.Arrival { coflow = c.id; t = c.arrival });
        if Demand.is_empty c.demand then begin
          ccts := (c.id, 0.) :: !ccts;
          finishes := (c.id, c.arrival) :: !finishes;
          if obs then
            Obs.Timeline.record
              (Obs.Timeline.Finish { coflow = c.id; t = c.arrival; cct = 0. })
        end
        else active := { orig = c; remaining = Demand.copy c.demand } :: !active)
      (Event_queue.drain_until arrivals t)
  in
  let rec loop t ~established =
    incr n_events;
    if obs then Obs.Registry.incr m_events;
    match (!active, Event_queue.peek arrivals) with
    | [], None -> ()
    | [], Some (ta, _) ->
      admit ta;
      (* an idle gap: no circuit survives it *)
      loop ta ~established:[]
    | actives, next_arrival ->
      let scheduled =
        List.map (fun a -> Coflow.with_demand a.orig a.remaining) actives
      in
      let replan () =
        Inter.schedule ~now:t ~order ~established ?plan_cache ~policy ~delta
          ~bandwidth scheduled
      in
      let plan =
        if not obs then replan ()
        else begin
          Obs.Tracer.begin_span ~cat:"sim" "sim.replan";
          let w0 = Obs.Control.now_ns () in
          let plan = replan () in
          Obs.Registry.observe h_plan
            (Int64.to_float (Int64.sub (Obs.Control.now_ns ()) w0) /. 1e9);
          Obs.Tracer.end_span ~cat:"sim" "sim.replan";
          plan
        end
      in
      let planned_finish (a : active) =
        match Inter.finish_of plan a.orig.Coflow.id with
        | Some f -> f
        | None -> invalid_arg "Circuit_sim.run: Coflow missing from plan"
      in
      let t_done =
        List.fold_left
          (fun acc a -> Float.min acc (planned_finish a))
          infinity actives
      in
      let t_next =
        match next_arrival with
        | Some (ta, _) -> Float.min ta t_done
        | None -> t_done
      in
      (match on_slice with
      | Some f -> f ~t ~t_next ~established ~coflows:scheduled plan
      | None -> ());
      (* execute the plan over [t, t_next) *)
      let reservations = Prt.all_reservations plan.Inter.prt in
      if obs then
        sample_slice ~t ~t_next ~n_active:(List.length actives) ~rescheduled:0
          ~spliced:0 ~conflicts:0 ~rollbacks:0 reservations;
      (* circuits the new plan carries over without a fresh setup *)
      Hashtbl.clear reused;
      List.iter
        (fun (r : Prt.reservation) ->
          if r.setup = 0. && r.start = t then
            Hashtbl.replace reused (r.src, r.dst) ())
        reservations;
      (* a live circuit the plan does not reuse was torn down at the
         rescheduling instant *)
      let stale =
        Hashtbl.fold
          (fun circuit () acc ->
            if Hashtbl.mem reused circuit then acc else circuit :: acc)
          live []
      in
      List.iter
        (fun circuit ->
          Hashtbl.remove live circuit;
          if obs then Obs.Registry.incr m_teardowns)
        stale;
      List.iter
        (fun (r : Prt.reservation) ->
          if r.setup > 0. && r.start >= t && r.start < t_next then begin
            incr setups;
            Hashtbl.replace live (r.src, r.dst) ();
            if obs then begin
              Obs.Registry.incr m_setups;
              Obs.Registry.gauge_add g_delta r.setup;
              Obs.Timeline.record
                (Obs.Timeline.Setup
                   {
                     coflow = r.coflow;
                     src = r.src;
                     dst = r.dst;
                     t = r.start;
                     delta = r.setup;
                   })
            end
          end;
          if
            Prt.stop r > t
            && Prt.stop r <= t_next
            && Hashtbl.mem live (r.src, r.dst)
          then begin
            (* an established window closes inside this execution slice:
               its ports are released (a teardown under not-all-stop) *)
            Hashtbl.remove live (r.src, r.dst);
            if obs then Obs.Registry.incr m_teardowns
          end)
        reservations;
      Hashtbl.clear by_id;
      List.iter (fun a -> Hashtbl.replace by_id a.orig.Coflow.id a) actives;
      List.iter
        (fun (r : Prt.reservation) ->
          let seconds = Schedule.transmission_overlap r ~t0:t ~t1:t_next in
          if seconds > 0. then
            match Hashtbl.find_opt by_id r.coflow with
            | Some a ->
              Demand.drain a.remaining r.src r.dst (seconds *. bandwidth);
              if
                obs
                && Demand.get a.remaining r.src r.dst <= byte_eps bandwidth
              then
                Obs.Timeline.record
                  (Obs.Timeline.Flow_finish
                     {
                       coflow = r.coflow;
                       src = r.src;
                       dst = r.dst;
                       t = Float.min (Prt.stop r) t_next;
                     })
            | None -> invalid_arg "Circuit_sim.run: reservation for unknown Coflow")
        reservations;
      List.iter (fun a -> snap_demand ~bandwidth a.remaining) actives;
      let finished, still =
        List.partition (fun a -> Demand.is_empty a.remaining) actives
      in
      List.iter
        (fun (a : active) ->
          ccts := (a.orig.Coflow.id, t_next -. a.orig.Coflow.arrival) :: !ccts;
          finishes := (a.orig.Coflow.id, t_next) :: !finishes;
          makespan := Float.max !makespan t_next;
          if obs then
            Obs.Timeline.record
              (Obs.Timeline.Finish
                 {
                   coflow = a.orig.Coflow.id;
                   t = t_next;
                   cct = t_next -. a.orig.Coflow.arrival;
                 });
          List.iter
            (fun (c : Coflow.t) ->
              if c.arrival < t_next then
                invalid_arg "Circuit_sim.run: released Coflow arrives in the past";
              Event_queue.push arrivals ~time:c.arrival c)
            (on_complete a.orig.Coflow.id t_next))
        finished;
      active := still;
      admit t_next;
      if !active <> [] || not (Event_queue.is_empty arrivals) then begin
        let established =
          if carry_circuits then Prt.established_at plan.Inter.prt t_next
          else []
        in
        loop t_next ~established
      end
  in
  (match Event_queue.peek arrivals with
  | None -> ()
  | Some (t0, _) ->
    admit t0;
    loop t0 ~established:[]);
  (* the fabric goes dark when the replay ends: whatever is still
     established at the last finish is torn down *)
  if obs then Obs.Registry.add m_teardowns (Hashtbl.length live);
  Hashtbl.reset live;
  let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  {
    Sim_result.ccts = sorted !ccts;
    finishes = sorted !finishes;
    makespan = !makespan;
    n_events = !n_events;
    total_setups = !setups;
  }

(* The incremental replay: one persistent [Inter.engine] instead of a
   fresh [Inter.schedule] per event. Plans stay anchored at each
   Coflow's last (re)scheduling instant; each slice executes the
   engine's stored windows clipped to [t, t_next). [rebuild] runs the
   same engine decisions while reconstructing the table from scratch
   every event — the bit-exact oracle for the rollback machinery. *)
(* shard passes run on the domain pool when it actually has domains;
   a 1-domain pool would only add submission overhead to a loop that
   is already sequential *)
let shard_runner () =
  if Sunflow_parallel.Pool.default_jobs () > 1 then
    { Inter.run_passes = (fun fs -> Sunflow_parallel.Pool.run (fun f -> f ()) fs) }
  else Inter.sequential_runner

let run_anchored ~rebuild ~policy ~order ~carry_circuits ~buckets ~bucket_base
    ~shards ~shard_block ~shard_stats ~plan_cache ~on_complete ~on_slice ~delta
    ~bandwidth coflows =
  let arrivals = Event_queue.create () in
  List.iter
    (fun c -> Event_queue.push arrivals ~time:c.Coflow.arrival c)
    (List.sort Coflow.compare_arrival coflows);
  let obs = Obs.Control.enabled () in
  let runner = if shards > 1 then shard_runner () else Inter.sequential_runner in
  let eng =
    Inter.engine ~order ~carry_circuits ~rebuild ~buckets ~bucket_base ~shards
      ~shard_block ~runner ?plan_cache ~policy ~delta ~bandwidth ()
  in
  let active_tbl : (int, active) Hashtbl.t = Hashtbl.create 64 in
  let actives : active list ref = ref [] in
  let newly : Coflow.t list ref = ref [] in
  let retired : int list ref = ref [] in
  let ccts = ref [] and finishes = ref [] in
  let n_events = ref 0 and setups = ref 0 in
  let makespan = ref 0. in
  let live : (int * int, unit) Hashtbl.t = Hashtbl.create 16 in
  (* per-slice scratch, reused across events (cleared, not reallocated) *)
  let reused = Hashtbl.create 8 in
  (* cumulative engine counters, differenced per event for the sampler *)
  let prev_resched = ref 0 and prev_spliced = ref 0 in
  let prev_conflicts = ref 0 and prev_rollbacks = ref 0 in
  let admit t =
    List.iter
      (fun (_, (c : Coflow.t)) ->
        if obs then
          Obs.Timeline.record
            (Obs.Timeline.Arrival { coflow = c.id; t = c.arrival });
        if Demand.is_empty c.demand then begin
          ccts := (c.id, 0.) :: !ccts;
          finishes := (c.id, c.arrival) :: !finishes;
          if obs then
            Obs.Timeline.record
              (Obs.Timeline.Finish { coflow = c.id; t = c.arrival; cct = 0. })
        end
        else begin
          let a = { orig = c; remaining = Demand.copy c.demand } in
          Hashtbl.replace active_tbl c.id a;
          actives := a :: !actives;
          newly := c :: !newly
        end)
      (Event_queue.drain_until arrivals t)
  in
  let remaining_of id =
    match Hashtbl.find_opt active_tbl id with
    | Some a -> a.remaining
    | None -> invalid_arg "Circuit_sim.run: unknown Coflow in engine"
  in
  let rec loop t =
    incr n_events;
    if obs then Obs.Registry.incr m_events;
    match (!actives, Event_queue.peek arrivals) with
    | [], None -> ()
    | [], Some (ta, _) ->
      admit ta;
      (* an idle gap: no circuit survives it (the engine is empty, so
         there is nothing to carry) *)
      loop ta
    | acts, next_arrival ->
      let step () =
        Inter.schedule_incremental eng ~now:t ~arrivals:!newly
          ~finished:!retired ~remaining:remaining_of
      in
      (if not obs then step ()
       else begin
         Obs.Tracer.begin_span ~cat:"sim" "sim.replan";
         let w0 = Obs.Control.now_ns () in
         step ();
         Obs.Registry.observe h_plan
           (Int64.to_float (Int64.sub (Obs.Control.now_ns ()) w0) /. 1e9);
         Obs.Tracer.end_span ~cat:"sim" "sim.replan"
       end);
      newly := [];
      retired := [];
      let t_next =
        match (next_arrival, Inter.engine_min_finish eng) with
        | Some (ta, _), Some t_done -> Float.min ta t_done
        | None, Some t_done -> t_done
        | Some (ta, _), None -> ta
        | None, None ->
          (* this branch has active Coflows, so the engine must hold at
             least one admitted plan; waking at a fabricated instant
             (the old [infinity] sentinel) would stall the replay *)
          invalid_arg "Circuit_sim.run: active Coflows but an idle engine"
      in
      let established = Inter.engine_established eng in
      (match on_slice with
      | Some f ->
        let scheduled =
          List.map (fun a -> Coflow.with_demand a.orig a.remaining) acts
        in
        f ~t ~t_next ~established ~coflows:scheduled
          (Inter.engine_view eng ~now:t ~remaining:remaining_of)
      | None -> ());
      (* execute the persistent plan over [t, t_next): same executor as
         the full path, fed the slice-overlapping windows only *)
      let reservations = Inter.engine_slice eng ~t0:t ~t1:t_next in
      if obs then begin
        let res = Inter.engine_rescheduled eng in
        let spl = Inter.engine_spliced eng in
        let ss = Inter.engine_shard_stats eng in
        sample_slice ~t ~t_next ~n_active:(List.length acts)
          ~rescheduled:(res - !prev_resched)
          ~spliced:(spl - !prev_spliced)
          ~conflicts:(ss.Inter.shard_conflicts - !prev_conflicts)
          ~rollbacks:(ss.Inter.shard_rollbacks - !prev_rollbacks)
          reservations;
        prev_resched := res;
        prev_spliced := spl;
        prev_conflicts := ss.Inter.shard_conflicts;
        prev_rollbacks := ss.Inter.shard_rollbacks
      end;
      Hashtbl.clear reused;
      List.iter
        (fun (r : Prt.reservation) ->
          if r.setup = 0. && r.start = t then
            Hashtbl.replace reused (r.src, r.dst) ())
        reservations;
      let stale =
        Hashtbl.fold
          (fun circuit () acc ->
            if Hashtbl.mem reused circuit then acc else circuit :: acc)
          live []
      in
      List.iter
        (fun circuit ->
          Hashtbl.remove live circuit;
          if obs then Obs.Registry.incr m_teardowns)
        stale;
      List.iter
        (fun (r : Prt.reservation) ->
          if r.setup > 0. && r.start >= t && r.start < t_next then begin
            incr setups;
            Hashtbl.replace live (r.src, r.dst) ();
            if obs then begin
              Obs.Registry.incr m_setups;
              Obs.Registry.gauge_add g_delta r.setup;
              Obs.Timeline.record
                (Obs.Timeline.Setup
                   {
                     coflow = r.coflow;
                     src = r.src;
                     dst = r.dst;
                     t = r.start;
                     delta = r.setup;
                   })
            end
          end;
          if
            Prt.stop r > t
            && Prt.stop r <= t_next
            && Hashtbl.mem live (r.src, r.dst)
          then begin
            Hashtbl.remove live (r.src, r.dst);
            if obs then Obs.Registry.incr m_teardowns
          end)
        reservations;
      List.iter
        (fun (r : Prt.reservation) ->
          let seconds = Schedule.transmission_overlap r ~t0:t ~t1:t_next in
          if seconds > 0. then
            match Hashtbl.find_opt active_tbl r.coflow with
            | Some a ->
              Demand.drain a.remaining r.src r.dst (seconds *. bandwidth);
              if
                obs
                && Demand.get a.remaining r.src r.dst <= byte_eps bandwidth
              then
                Obs.Timeline.record
                  (Obs.Timeline.Flow_finish
                     {
                       coflow = r.coflow;
                       src = r.src;
                       dst = r.dst;
                       t = Float.min (Prt.stop r) t_next;
                     })
            | None ->
              invalid_arg "Circuit_sim.run: reservation for unknown Coflow")
        reservations;
      List.iter (fun a -> snap_demand ~bandwidth a.remaining) acts;
      let finished, still =
        List.partition (fun a -> Demand.is_empty a.remaining) acts
      in
      List.iter
        (fun (a : active) ->
          let id = a.orig.Coflow.id in
          ccts := (id, t_next -. a.orig.Coflow.arrival) :: !ccts;
          finishes := (id, t_next) :: !finishes;
          makespan := Float.max !makespan t_next;
          if obs then
            Obs.Timeline.record
              (Obs.Timeline.Finish
                 { coflow = id; t = t_next; cct = t_next -. a.orig.Coflow.arrival });
          Hashtbl.remove active_tbl id;
          retired := id :: !retired;
          List.iter
            (fun (c : Coflow.t) ->
              if c.arrival < t_next then
                invalid_arg "Circuit_sim.run: released Coflow arrives in the past";
              Event_queue.push arrivals ~time:c.arrival c)
            (on_complete id t_next))
        finished;
      actives := still;
      admit t_next;
      if !actives <> [] || not (Event_queue.is_empty arrivals) then loop t_next
  in
  (match Event_queue.peek arrivals with
  | None -> ()
  | Some (t0, _) ->
    admit t0;
    loop t0);
  (match shard_stats with
  | Some r -> r := Inter.engine_shard_stats eng
  | None -> ());
  if obs then Obs.Registry.add m_teardowns (Hashtbl.length live);
  Hashtbl.reset live;
  let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  {
    Sim_result.ccts = sorted !ccts;
    finishes = sorted !finishes;
    makespan = !makespan;
    n_events = !n_events;
    total_setups = !setups;
  }

let run ?(policy = Inter.Shortest_first) ?(order = Order.Ordered_port)
    ?(carry_circuits = true) ?(replan = `Full) ?(buckets = 0)
    ?(bucket_base = 4.) ?(shards = 1) ?(shard_block = 1) ?shard_stats
    ?plan_cache ?(on_complete = no_release) ?on_slice ~delta ~bandwidth
    coflows =
  if bandwidth <= 0. then invalid_arg "Circuit_sim.run: bandwidth <= 0";
  if delta < 0. then invalid_arg "Circuit_sim.run: negative delta";
  check_unique_ids coflows;
  match replan with
  | `Full ->
    if buckets <> 0 then
      invalid_arg "Circuit_sim.run: buckets need an anchored replan mode";
    if shards <> 1 then
      invalid_arg "Circuit_sim.run: shards need an anchored replan mode";
    run_full ~policy ~order ~carry_circuits ~plan_cache ~on_complete ~on_slice
      ~delta ~bandwidth coflows
  | (`Rebuild | `Incremental) as mode ->
    run_anchored ~rebuild:(mode = `Rebuild) ~policy ~order ~carry_circuits
      ~buckets ~bucket_base ~shards ~shard_block ~shard_stats ~plan_cache
      ~on_complete ~on_slice ~delta ~bandwidth coflows

let intra_cct ?(order = Order.Ordered_port) ~delta ~bandwidth coflow =
  Sunflow.schedule ~order ~delta ~bandwidth
    { coflow with Coflow.arrival = 0. }

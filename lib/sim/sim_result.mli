(** The outcome of a trace replay, shared by the circuit-switched and
    packet-switched simulators. *)

type t = {
  ccts : (int * float) list;
      (** per-Coflow completion time (finish - arrival), by Coflow id,
          sorted by id *)
  finishes : (int * float) list;  (** absolute finish instants, by id *)
  makespan : float;  (** last finish instant; [0.] for an empty trace *)
  n_events : int;  (** scheduling events processed *)
  total_setups : int;
      (** circuit establishments performed ([0] in a packet fabric) *)
}

val cct_of : t -> int -> float
(** Raises [Not_found] for an unknown Coflow id. *)

val average_cct : t -> float
(** Raises [Invalid_argument] on an empty result. *)

val average_cct_opt : t -> float option
(** [None] on an empty result — the form callers that may replay an
    empty trace (the CLI) should use. *)

val cct_list : t -> float list
(** CCTs in Coflow-id order. *)

val pp : Format.formatter -> t -> unit

val to_csv : t -> string
(** One line per Coflow: [id,cct_seconds,finish_seconds], with a header
    row — the format downstream analysis scripts expect. *)

(** Flow-level replay of a Coflow trace through the optical circuit
    switched fabric under Sunflow inter-Coflow scheduling.

    Like Varys (and like the deployment sketch in paper §6), the
    scheduler recomputes the circuit plan only on Coflow arrivals and
    completions. At every rescheduling instant the Port Reservation
    Table is rebuilt from the remaining demands in policy order;
    circuits physically established (mid-transmission) at that instant
    carry over without paying a new reconfiguration delay, while a
    circuit preempted by a newly arrived higher-priority Coflow costs
    its owner a fresh delta when it is re-established later — the
    inter-Coflow preemption semantics of §4.2. *)

type replan = [ `Full | `Rebuild | `Incremental ]
(** How the circuit plan is maintained across scheduling events.
    [`Full] (the default, and the seed's behaviour) re-runs
    [Inter.schedule] over every active Coflow at every event.
    [`Incremental] keeps a persistent [Inter.engine]: arrivals
    reschedule only the priority-order suffix they invalidate
    (rollback-capable PRT), finishes retire reservations with no
    rescheduling — O(changed Coflows) per event. [`Rebuild] makes
    bit-identical decisions to [`Incremental] while reconstructing the
    table from scratch at every event; it exists as the differential
    oracle for the rollback machinery ({!Sunflow_check}).

    The two anchored modes agree with each other bit-exactly but not
    byte-for-byte with [`Full]: [`Full] re-derives every plan from the
    drained remaining demand at every event, which re-rounds window
    boundaries, while the anchored modes keep retained plans fixed at
    their last scheduling instant (and fix [Shortest_first] keys at
    admission). Both are faithful Sunflow semantics; finishes differ
    at the float-rounding scale. *)

val run :
  ?policy:Sunflow_core.Inter.policy ->
  ?order:Sunflow_core.Order.t ->
  ?carry_circuits:bool ->
  ?replan:replan ->
  ?buckets:int ->
  ?bucket_base:float ->
  ?shards:int ->
  ?shard_block:int ->
  ?shard_stats:Sunflow_core.Inter.shard_stats ref ->
  ?plan_cache:Sunflow_core.Plan_cache.t ->
  ?on_complete:(int -> float -> Sunflow_core.Coflow.t list) ->
  ?on_slice:
    (t:float ->
    t_next:float ->
    established:(int * int) list ->
    coflows:Sunflow_core.Coflow.t list ->
    Sunflow_core.Inter.result ->
    unit) ->
  delta:float ->
  bandwidth:float ->
  Sunflow_core.Coflow.t list ->
  Sim_result.t
(** Replay the trace. [policy] defaults to shortest-Coflow-first (the
    evaluation's setting), [order] to {!Sunflow_core.Order.Ordered_port}.
    [carry_circuits] (default [true]) keeps circuits that are
    mid-transmission alive across rescheduling events; set it to
    [false] to ablate the not-all-stop advantage — every scheduling
    event then tears the whole fabric down, approximating an all-stop
    controller. Coflows with empty demand complete instantly at their
    arrival. Duplicate ids raise [Invalid_argument].

    [buckets]/[bucket_base] (defaults [0]/[4.]) coarsen the anchored
    modes' priority order into exponentially-spaced classes — see
    {!Sunflow_core.Inter.engine}. [buckets = 0] keeps the exact order.
    Non-zero [buckets] under [`Full] raises [Invalid_argument]: the
    full replan has no persistent order to coarsen.

    [shards]/[shard_block] (defaults [1]/[1]) partition the fabric's
    ports into shard stripes with per-shard reservation tables and
    dirty sets — see {!Sunflow_core.Inter.engine}. Results are
    bit-identical to [shards = 1] for every shard count; an event only
    replans the shards its dirty Coflows touch, and the independent
    shard passes run on the {!Sunflow_parallel.Pool} domain pool when
    it has more than one domain. [shards <> 1] under [`Full] raises
    [Invalid_argument] (nothing persistent to shard); [`Rebuild]
    coerces to one shard (it is the inherently global oracle).
    [shard_stats], when given, receives the engine's cumulative
    event/conflict/rollback counts after an anchored replay.

    [plan_cache] threads a {!Sunflow_core.Plan_cache} handle into every
    intra-Coflow scheduling call the replay makes (all replan modes).
    Results are bit-identical with or without it; a handle shared
    across repeated replays of the same trace turns repeated replans
    into verbatim window replays. Default: no cache.

    [on_complete id t] is called once per completed Coflow and may
    release new Coflows into the fabric (their arrivals must be
    [>= t]) — the hook multi-stage jobs use to chain dependent
    Coflows.

    [on_slice ~t ~t_next ~established ~coflows plan] is called once
    per scheduling event, after the plan for the slice [[t, t_next)]
    has been computed and before any demand is drained: [coflows] are
    the active Coflows with their remaining demand as of [t] (their
    demand objects are the simulator's own and mutate once the hook
    returns — copy anything kept), [established] the circuits carried
    over into the replan. The validation layer ({!Sunflow_check})
    hooks here to check every plan and to reconstruct the executed
    schedule for the differential oracle. Under the anchored [replan]
    modes the hook receives the persistent plan materialised as the
    equivalent from-scratch result ([Inter.engine_view]). *)

val shard_runner : unit -> Sunflow_core.Inter.pass_runner
(** The executor {!run}'s sharded replan uses: the
    {!Sunflow_parallel.Pool} domain pool when it has more than one
    domain, {!Sunflow_core.Inter.sequential_runner} otherwise.
    Exposed for other event loops driving a sharded engine
    ([Sunflow_serve]). *)

val intra_cct :
  ?order:Sunflow_core.Order.t ->
  delta:float ->
  bandwidth:float ->
  Sunflow_core.Coflow.t ->
  Sunflow_core.Sunflow.result
(** Intra-Coflow evaluation helper: schedule one Coflow alone on an
    idle fabric from time [0.] (the paper's back-to-back intra mode,
    where arrival times are ignored). *)

type t = {
  ccts : (int * float) list;
  finishes : (int * float) list;
  makespan : float;
  n_events : int;
  total_setups : int;
}

let cct_of t id =
  match List.assoc_opt id t.ccts with Some c -> c | None -> raise Not_found

let cct_list t = List.map snd t.ccts

let average_cct_opt t =
  match t.ccts with
  | [] -> None
  | l ->
    Some
      (List.fold_left (fun a (_, c) -> a +. c) 0. l
      /. float_of_int (List.length l))

let average_cct t =
  match average_cct_opt t with
  | None -> invalid_arg "Sim_result.average_cct: empty result"
  | Some avg -> avg

let pp ppf t =
  Format.fprintf ppf "coflows=%d events=%d setups=%d makespan=%a"
    (List.length t.ccts) t.n_events t.total_setups Sunflow_core.Units.pp_time
    t.makespan;
  match t.ccts with
  | [] -> ()
  | _ -> Format.fprintf ppf " avg-cct=%a" Sunflow_core.Units.pp_time (average_cct t)

let to_csv t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf "coflow_id,cct_seconds,finish_seconds\n";
  List.iter
    (fun (id, cct) ->
      let finish = match List.assoc_opt id t.finishes with Some f -> f | None -> nan in
      Buffer.add_string buf (Printf.sprintf "%d,%.9g,%.9g\n" id cct finish))
    t.ccts;
  Buffer.contents buf

module Units = Sunflow_core.Units
module Workload = Sunflow_trace.Workload
module Trace = Sunflow_trace.Trace
module R = Sunflow_sim.Sim_result

type cell = {
  bandwidth : float;
  idleness_label : string;
  measured_idleness : float;
  sunflow_avg_cct : float;
  varys_avg_cct : float;
  aalo_avg_cct : float;
}

type result = { cells : cell list; delta : float }

let default_bandwidths = [ Units.gbps 1.; Units.gbps 10.; Units.gbps 100. ]

let run ?(settings = Common.default) ?(bandwidths = default_bandwidths) () =
  let original = Common.original_trace settings in
  let delta = settings.Common.delta in
  let cell ~bandwidth ~label (coflows : Sunflow_core.Coflow.t list) measured =
    let sun = Common.run_sunflow ~delta ~bandwidth coflows in
    let varys = Common.run_packet ~scheduler:`Varys ~bandwidth coflows in
    let aalo = Common.run_packet ~scheduler:`Aalo ~bandwidth coflows in
    {
      bandwidth;
      idleness_label = label;
      measured_idleness = measured;
      sunflow_avg_cct = R.average_cct sun;
      varys_avg_cct = R.average_cct varys;
      aalo_avg_cct = R.average_cct aalo;
    }
  in
  (* every (bandwidth, idleness) grid point simulates three schedulers
     over an independent trace — one pool task per point, gathered in
     grid order *)
  let specs =
    List.concat_map
      (fun bandwidth ->
        (bandwidth, `Original) :: List.map (fun t -> (bandwidth, `Scaled t)) [ 0.20; 0.40 ])
      bandwidths
  in
  let cells =
    Sunflow_parallel.Pool.run_list ~chunk:1
      (fun (bandwidth, point) ->
        match point with
        | `Original ->
          let orig_idle = Workload.idleness ~bandwidth original in
          cell ~bandwidth ~label:"original" original.Trace.coflows orig_idle
        | `Scaled target ->
          let t, _ = Workload.scale_to_idleness ~bandwidth ~target original in
          cell ~bandwidth
            ~label:(Format.asprintf "%.0f%% idleness" (100. *. target))
            t.Trace.coflows target)
      specs
  in
  { cells; delta }

let print ppf r =
  Format.fprintf ppf
    "  average CCT, Sunflow normalised over Varys and Aalo (delta=%a)@."
    Units.pp_time r.delta;
  Format.fprintf ppf "  %-10s %-14s %9s | %9s %9s | %8s %8s@." "B" "trace"
    "idleness" "sun avg" "varys avg" "/Varys" "/Aalo";
  List.iter
    (fun c ->
      Format.fprintf ppf
        "  %-10s %-14s %8.0f%% | %9.3g %9.3g | %8.2f %8.2f@."
        (Format.asprintf "%g Gbps" (Units.to_gbps c.bandwidth))
        c.idleness_label
        (100. *. c.measured_idleness)
        c.sunflow_avg_cct c.varys_avg_cct
        (c.sunflow_avg_cct /. c.varys_avg_cct)
        (c.sunflow_avg_cct /. c.aalo_avg_cct))
    r.cells;
  Common.kv ppf "paper" "%s"
    "vs Varys: 0.98-1.01 at 12-40% idleness, 1.24/3.27 at 81/98%; vs Aalo: 0.48-0.95"

let report ?settings ppf =
  Common.section ppf "FIGURE 8: inter-Coflow average CCT vs idleness";
  print ppf (run ?settings ())

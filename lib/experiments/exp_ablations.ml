module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units
module Inter = Sunflow_core.Inter
module Sunflow = Sunflow_core.Sunflow
module Trace = Sunflow_trace.Trace
module R = Sunflow_sim.Sim_result
module D = Sunflow_stats.Descriptive

type row = { label : string; avg_cct : float; note : string }

type result = {
  reuse : row list;
  policy : row list;
  quantum : row list;
  hybrid : row list;
}

let short_avg_cct ~bandwidth ~delta coflows (r : R.t) =
  let shorts =
    List.filter
      (fun (c : Coflow.t) ->
        (not (Demand.is_empty c.demand))
        && not (Coflow.is_long ~bandwidth ~delta c))
      coflows
  in
  D.mean (List.map (fun (c : Coflow.t) -> R.cct_of r c.id) shorts)

let run ?(settings = Common.default) () =
  let trace = Common.original_trace settings in
  let coflows = trace.Trace.coflows in
  let bandwidth = settings.Common.bandwidth and delta = settings.Common.delta in
  (* --- established-circuit reuse --- *)
  let with_reuse = Common.run_sunflow ~delta ~bandwidth coflows in
  let without_reuse =
    Sunflow_sim.Circuit_sim.run ~carry_circuits:false ~delta ~bandwidth coflows
  in
  let reuse =
    [
      {
        label = "carry live circuits (default)";
        avg_cct = R.average_cct with_reuse;
        note = Format.asprintf "%d setups" with_reuse.R.total_setups;
      };
      {
        label = "tear down on every event";
        avg_cct = R.average_cct without_reuse;
        note = Format.asprintf "%d setups" without_reuse.R.total_setups;
      };
    ]
  in
  (* --- policy --- *)
  let fifo =
    Sunflow_sim.Circuit_sim.run ~policy:Inter.Fifo ~delta ~bandwidth coflows
  in
  let fair = Common.run_packet ~scheduler:`Fair ~bandwidth coflows in
  let policy =
    [
      {
        label = "sunflow, shortest-coflow-first";
        avg_cct = R.average_cct with_reuse;
        note = "";
      };
      { label = "sunflow, fifo"; avg_cct = R.average_cct fifo; note = "" };
      {
        label = "packet, per-flow fair (tcp-like)";
        avg_cct = R.average_cct fair;
        note = "";
      };
    ]
  in
  (* --- quantum approximation (intra) --- *)
  let nonempty =
    List.filter (fun (c : Coflow.t) -> not (Demand.is_empty c.demand)) coflows
  in
  let intra_avg_and_time quantum =
    (* Sys.time is process CPU time, summed over the pool's domains —
       it stays comparable across quanta (same parallelism for each) *)
    let t0 = Sys.time () in
    let ccts =
      Sunflow_parallel.Pool.run_list
        (fun (c : Coflow.t) ->
          (Sunflow.schedule ~quantum ~delta ~bandwidth
             { c with Coflow.arrival = 0. })
            .finish)
        nonempty
    in
    (D.mean ccts, Sys.time () -. t0)
  in
  let base_avg, base_time = intra_avg_and_time 0. in
  let quantum =
    {
      label = "exact (quantum = 0)";
      avg_cct = base_avg;
      note = Format.asprintf "planning %.2fs" base_time;
    }
    :: List.map
         (fun q ->
           let avg, time = intra_avg_and_time q in
           {
             label = Format.asprintf "quantum = %a" Units.pp_time q;
             avg_cct = avg;
             note =
               Format.asprintf "planning %.2fs, CCT x%.3f" time (avg /. base_avg);
           })
         [ Units.ms 10.; Units.ms 100.; 1. ]
  in
  (* --- hybrid fabric --- *)
  (* REACToR's design point: a fast optical fabric paired with a
     ten-times-slower packet network that absorbs the mice whose
     circuit CCT would be delta-dominated *)
  let circuit_bandwidth = 10. *. bandwidth in
  let packet_bandwidth = bandwidth in
  let classify =
    Sunflow_sim.Hybrid_sim.best_bound ~delta ~circuit_bandwidth
      ~packet_bandwidth
  in
  let offloaded = List.length (List.filter (fun c -> classify c = `Packet) coflows) in
  let hybrid_result =
    Sunflow_sim.Hybrid_sim.run ~delta ~circuit_bandwidth ~packet_bandwidth
      ~classify coflows
  in
  let pure_fast =
    Sunflow_sim.Circuit_sim.run ~delta ~bandwidth:circuit_bandwidth coflows
  in
  let varys_fast =
    Common.run_packet ~scheduler:`Varys ~bandwidth:circuit_bandwidth coflows
  in
  let short_note r =
    Format.asprintf "short-coflow avg %.3fs"
      (short_avg_cct ~bandwidth:circuit_bandwidth ~delta coflows r)
  in
  let hybrid =
    [
      {
        label = "pure circuit (sunflow @ 10x rate)";
        avg_cct = R.average_cct pure_fast;
        note = short_note pure_fast;
      };
      {
        label =
          Format.asprintf "hybrid (%d mice on 1x packet net)" offloaded;
        avg_cct = R.average_cct hybrid_result;
        note = short_note hybrid_result;
      };
      {
        label = "pure packet (varys @ 10x rate)";
        avg_cct = R.average_cct varys_fast;
        note = short_note varys_fast;
      };
    ]
  in
  { reuse; policy; quantum; hybrid }

let print_rows ppf title rows =
  Format.fprintf ppf "  %s@." title;
  List.iter
    (fun r ->
      Format.fprintf ppf "    %-38s avg CCT %8.3fs  %s@." r.label r.avg_cct
        r.note)
    rows

let print ppf r =
  print_rows ppf "established-circuit reuse:" r.reuse;
  print_rows ppf "inter-Coflow policy:" r.policy;
  print_rows ppf "quantised reservations (intra):" r.quantum;
  print_rows ppf "hybrid fabric:" r.hybrid

let report ?settings ppf =
  Common.section ppf "ABLATIONS: design choices beyond the paper";
  print ppf (run ?settings ())

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Bounds = Sunflow_core.Bounds
module Units = Sunflow_core.Units
module Sunflow = Sunflow_core.Sunflow
module Trace = Sunflow_trace.Trace
module Synthetic = Sunflow_trace.Synthetic
module Workload = Sunflow_trace.Workload
module Solstice = Sunflow_baselines.Solstice

type settings = {
  trace_params : Synthetic.params;
  perturb_seed : int;
  delta : float;
  bandwidth : float;
  original_idleness : float;
}

let default =
  {
    trace_params = Synthetic.default_params;
    perturb_seed = 7;
    delta = Units.ms 10.;
    bandwidth = Units.gbps 1.;
    original_idleness = 0.12;
  }

(* Global memo tables. Settings values are compared structurally except
   for the functional fields of trace params (none by default).

   All tables share one mutex: lookups and stores are serialized, the
   computations are not. Two domains asking for the same missing key
   may both compute it — wasted work, never wrong, because every
   computation is a deterministic function of the key and only one
   result is kept — but in practice the memo entry points run on the
   main domain and the pooled tasks underneath them stay cache-free. *)
let memo_mu = Mutex.create ()
let raw_cache : (settings, Trace.t) Hashtbl.t = Hashtbl.create 4
let original_cache : (settings, Trace.t) Hashtbl.t = Hashtbl.create 4

let memo table key compute =
  let lookup () =
    Mutex.lock memo_mu;
    let r = Hashtbl.find_opt table key in
    Mutex.unlock memo_mu;
    r
  in
  match lookup () with
  | Some v -> v
  | None ->
    let v = compute () in
    Mutex.lock memo_mu;
    let v =
      match Hashtbl.find_opt table key with
      | Some winner -> winner (* another domain raced us to it *)
      | None ->
        Hashtbl.replace table key v;
        v
    in
    Mutex.unlock memo_mu;
    v

let raw_trace s =
  memo raw_cache s (fun () ->
      Workload.perturb ~seed:s.perturb_seed (Synthetic.generate s.trace_params))

(* The generator is calibrated so the raw trace already sits at the
   paper's original idleness; byte-scaling is only a fallback for
   custom settings, because it would break the whole-MB flow sizes
   (and with them the exact alpha = 1.25 of §5.1). *)
let original_trace s =
  memo original_cache s (fun () ->
      let raw = raw_trace s in
      let measured = Workload.idleness ~bandwidth:s.bandwidth raw in
      if Float.abs (measured -. s.original_idleness) <= 0.02 then raw
      else
        fst
          (Workload.scale_to_idleness ~bandwidth:s.bandwidth
             ~target:s.original_idleness raw))

type intra_point = {
  coflow : Coflow.t;
  category : Coflow.Category.t;
  n_subflows : int;
  tcl : float;
  tpl : float;
  p_avg : float;
  sunflow_cct : float;
  sunflow_setups : int;
  solstice_cct : float;
  solstice_switchings : int;
}

let intra_cache : (settings * float * float, intra_point list) Hashtbl.t =
  Hashtbl.create 8

let intra_points ?bandwidth ?delta s =
  let bandwidth = Option.value bandwidth ~default:s.bandwidth in
  let delta = Option.value delta ~default:s.delta in
  memo intra_cache (s, bandwidth, delta) (fun () ->
      (original_trace s).Trace.coflows
      |> List.filter (fun (c : Coflow.t) -> not (Demand.is_empty c.demand))
      |> Sunflow_parallel.Pool.run_list (fun (c : Coflow.t) ->
             let c0 = { c with Coflow.arrival = 0. } in
             let sf = Sunflow.schedule ~delta ~bandwidth c0 in
             let sol = Solstice.schedule ~delta ~bandwidth c0 in
             {
               coflow = c;
               category = Coflow.category c;
               n_subflows = Coflow.n_subflows c;
               tcl = Bounds.circuit_lower ~bandwidth ~delta c.demand;
               tpl = Bounds.packet_lower ~bandwidth c.demand;
               p_avg = Coflow.avg_processing_time ~bandwidth c;
               sunflow_cct = sf.finish;
               sunflow_setups = sf.setups;
               solstice_cct = sol.cct;
               solstice_switchings = sol.switching_count;
             }))

(* Inter-Coflow runs are memoised on a trace fingerprint: Coflow
   count, total bytes, first/last arrivals, plus an order-sensitive
   digest folded over every Coflow's (id, bytes, arrival). The summary
   triple alone can collide — two traces that permute sizes across
   Coflows share count/totals/extremes — and a collision here would
   silently serve one trace's simulation for the other, so the digest
   makes each Coflow's identity part of the key. *)
let fingerprint coflows =
  let n = List.length coflows in
  let bytes = List.fold_left (fun a c -> a +. Coflow.total_bytes c) 0. coflows in
  let arr =
    List.fold_left
      (fun (lo, hi) (c : Coflow.t) ->
        (Float.min lo c.arrival, Float.max hi c.arrival))
      (infinity, neg_infinity) coflows
  in
  let digest =
    List.fold_left
      (fun h (c : Coflow.t) ->
        (h * 31) + Hashtbl.hash (c.id, Coflow.total_bytes c, c.arrival))
      17 coflows
  in
  (n, bytes, arr, digest)

let inter_cache :
    (string * float * float * (int * float * (float * float) * int),
     Sunflow_sim.Sim_result.t)
    Hashtbl.t =
  Hashtbl.create 32

let run_packet ~scheduler ~bandwidth coflows =
  let tag, alloc, thresholds =
    match scheduler with
    | `Varys -> ("varys", Sunflow_packet.Varys.allocate, [])
    | `Aalo ->
      ( "aalo",
        Sunflow_packet.Aalo.allocate,
        Sunflow_sim.Packet_sim.aalo_thresholds Sunflow_packet.Aalo.default_params
      )
    | `Fair -> ("fair", Sunflow_packet.Fair.allocate, [])
  in
  memo inter_cache (tag, 0., bandwidth, fingerprint coflows) (fun () ->
      Sunflow_sim.Packet_sim.run ~sent_thresholds:thresholds ~scheduler:alloc
        ~bandwidth coflows)

let run_sunflow ~delta ~bandwidth coflows =
  memo inter_cache ("sunflow", delta, bandwidth, fingerprint coflows) (fun () ->
      Sunflow_sim.Circuit_sim.run ~delta ~bandwidth coflows)

let clear_caches () =
  Mutex.lock memo_mu;
  Hashtbl.reset raw_cache;
  Hashtbl.reset original_cache;
  Hashtbl.reset intra_cache;
  Hashtbl.reset inter_cache;
  Mutex.unlock memo_mu

let section ppf title =
  Format.fprintf ppf "@.==== %s ====@." title

let subsection ppf title = Format.fprintf ppf "@.-- %s --@." title

let kv ppf name fmt =
  Format.fprintf ppf "  %-36s " (name ^ ":");
  Format.kfprintf (fun ppf -> Format.pp_print_newline ppf ()) ppf fmt

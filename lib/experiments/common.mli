(** Shared experiment plumbing: the evaluation settings of paper §5.1,
    trace preparation, per-Coflow intra-Coflow measurements, and the
    inter-Coflow simulation runners.

    Heavy intermediate results (intra-Coflow sweeps, prepared traces)
    are memoised per settings value so that running every experiment in
    one process — as [bench/main.exe] does — computes each only once.
    The memo tables are mutex-protected and the per-Coflow sweeps fan
    out over the shared {!Sunflow_parallel.Pool} (sized by
    [SUNFLOW_JOBS]); see DESIGN.md, "Parallel execution model". *)

type settings = {
  trace_params : Sunflow_trace.Synthetic.params;
  perturb_seed : int;  (** seed of the ±5 % size perturbation *)
  delta : float;  (** default circuit reconfiguration delay (10 ms) *)
  bandwidth : float;  (** default link rate (1 Gbps) *)
  original_idleness : float;
      (** idleness of the paper's original trace at 1 Gbps (12 %) *)
}

val default : settings

val raw_trace : settings -> Sunflow_trace.Trace.t
(** Synthetic trace after the ±5 % perturbation — the input of the
    intra-Coflow experiments (where arrival times are ignored). *)

val original_trace : settings -> Sunflow_trace.Trace.t
(** {!raw_trace} byte-scaled so its idleness at [settings.bandwidth]
    equals [original_idleness] — the replica of the paper's original
    trace used by the inter-Coflow experiments. *)

(** One Coflow's intra-Coflow measurements under every circuit
    scheduler at a given (bandwidth, delta). *)
type intra_point = {
  coflow : Sunflow_core.Coflow.t;
  category : Sunflow_core.Coflow.Category.t;
  n_subflows : int;
  tcl : float;  (** T_L^c *)
  tpl : float;  (** T_L^p *)
  p_avg : float;  (** average processing time *)
  sunflow_cct : float;
  sunflow_setups : int;
  solstice_cct : float;
  solstice_switchings : int;
}

val intra_points :
  ?bandwidth:float -> ?delta:float -> settings -> intra_point list
(** Schedule every Coflow of {!raw_trace} back-to-back (alone on the
    fabric) with Sunflow and Solstice. Defaults come from the
    settings. Results are memoised per (bandwidth, delta). *)

val run_packet :
  scheduler:[ `Varys | `Aalo | `Fair ] ->
  bandwidth:float ->
  Sunflow_core.Coflow.t list ->
  Sunflow_sim.Sim_result.t
(** Packet-fabric replay; Aalo runs with its D-CLAS thresholds as
    rescheduling events. Memoised on (scheduler, bandwidth, trace
    fingerprint). *)

val run_sunflow :
  delta:float ->
  bandwidth:float ->
  Sunflow_core.Coflow.t list ->
  Sunflow_sim.Sim_result.t
(** Circuit-fabric replay under shortest-Coflow-first. Memoised like
    {!run_packet}. *)

val clear_caches : unit -> unit
(** Drop every memoised trace and simulation result. The bench harness
    uses this to time sequential-vs-parallel reruns from a cold start,
    and the determinism tests to force recomputation under a different
    pool size. *)

(** Report formatting helpers shared by the bench harness and CLI. *)

val section : Format.formatter -> string -> unit
(** Banner like [==== FIGURE 3 ====]. *)

val subsection : Format.formatter -> string -> unit

val kv : Format.formatter -> string -> ('a, Format.formatter, unit) format -> 'a
(** One aligned [name: value] line. *)

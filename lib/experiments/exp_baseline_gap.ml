module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Bounds = Sunflow_core.Bounds
module Sunflow = Sunflow_core.Sunflow
module Trace = Sunflow_trace.Trace
module D = Sunflow_stats.Descriptive

type row = {
  scheduler : string;
  avg_ratio_vs_solstice : float;
  avg_cct : float;
  avg_ratio_vs_tcl : float;
}

type result = { rows : row list }

let run ?(settings = Common.default) () =
  let bandwidth = settings.Common.bandwidth and delta = settings.Common.delta in
  let coflows =
    (Common.original_trace settings).Trace.coflows
    |> List.filter (fun (c : Coflow.t) -> not (Demand.is_empty c.demand))
  in
  let baseline_cct run (c : Coflow.t) =
    let (o : Sunflow_baselines.Executor.outcome) =
      run ~delta ~bandwidth { c with Coflow.arrival = 0. }
    in
    o.cct
  in
  (* each Coflow is scheduled alone on its own PRT — one pool task per
     (scheduler, Coflow) pair, per-scheduler results in trace order *)
  let pmap f = Sunflow_parallel.Pool.run_list f coflows in
  let ccts_of = function
    | "sunflow" ->
      pmap (fun (c : Coflow.t) ->
          (Sunflow.schedule ~delta ~bandwidth { c with Coflow.arrival = 0. })
            .finish)
    | "solstice" ->
      pmap
        (baseline_cct (fun ~delta ~bandwidth c ->
             Sunflow_baselines.Solstice.schedule ~delta ~bandwidth c))
    | "tms" ->
      pmap
        (baseline_cct (fun ~delta ~bandwidth c ->
             Sunflow_baselines.Tms.schedule ~delta ~bandwidth c))
    | "edmonds" ->
      pmap
        (baseline_cct (fun ~delta ~bandwidth c ->
             Sunflow_baselines.Edmonds.schedule ~delta ~bandwidth c))
    | s -> invalid_arg s
  in
  let solstice = ccts_of "solstice" in
  let tcls =
    List.map
      (fun (c : Coflow.t) -> Bounds.circuit_lower ~bandwidth ~delta c.demand)
      coflows
  in
  let rows =
    List.map
      (fun name ->
        let ccts = if name = "solstice" then solstice else ccts_of name in
        {
          scheduler = name;
          avg_ratio_vs_solstice =
            D.mean (List.map2 (fun c s -> c /. s) ccts solstice);
          avg_cct = D.mean ccts;
          avg_ratio_vs_tcl = D.mean (List.map2 (fun c t -> c /. t) ccts tcls);
        })
      [ "sunflow"; "solstice"; "tms"; "edmonds" ]
  in
  { rows }

let print ppf r =
  Format.fprintf ppf "  %-10s %14s %10s %10s@." "scheduler" "vs solstice"
    "avg cct" "vs TcL";
  List.iter
    (fun row ->
      Format.fprintf ppf "  %-10s %13.2fx %9.3gs %9.2fx@." row.scheduler
        row.avg_ratio_vs_solstice row.avg_cct row.avg_ratio_vs_tcl)
    r.rows;
  Common.kv ppf "paper" "%s"
    "Solstice > 2x faster than TMS, > 6x faster than Edmonds (per-Coflow avg)"

let report ?settings ppf =
  Common.section ppf "BASELINE GAP: Solstice vs TMS vs Edmonds (paper §5.2)";
  print ppf (run ?settings ())

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units
module Rng = Sunflow_stats.Rng

type params = {
  seed : int;
  n_ports : int;
  n_coflows : int;
  span : float;
  category_weights : (float * Coflow.Category.t) list;
  fanout_max : int;
  width_max : int;
  small_flow_mb : float * float;
  m2m_reducer_mb : float * float;
}

let default_params =
  {
    seed = 46;
    n_ports = 150;
    n_coflows = 526;
    span = 3600.;
    category_weights =
      [
        (23.4, Coflow.Category.One_to_one);
        (9.9, Coflow.Category.One_to_many);
        (40.1, Coflow.Category.Many_to_one);
        (26.6, Coflow.Category.Many_to_many);
      ];
    fanout_max = 10;
    width_max = 35;
    small_flow_mb = (1.0, 0.5);
    m2m_reducer_mb = (80., 2.5);
  }

(* Whole megabytes with a 1 MB floor, like the original trace. *)
let round_mb bytes = Units.mb (Float.max 1. (Float.round (Units.to_mb bytes)))

let lognormal_mb rng (median, sigma) =
  Units.mb (Rng.lognormal rng ~mu:(log median) ~sigma)

(* Heavy-tailed width in [2, cap]: most shuffles are narrow, a few are
   fabric-wide. *)
let heavy_width rng cap =
  let w = int_of_float (Rng.pareto rng ~shape:1.2 ~scale:3.) in
  max 2 (min cap w)

let distinct_ports rng ~n_ports ~count ~avoid =
  let chosen = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace chosen p ()) avoid;
  let picked = ref [] in
  while List.length !picked < count do
    let p = Rng.int rng n_ports in
    if not (Hashtbl.mem chosen p) then begin
      Hashtbl.replace chosen p ();
      picked := p :: !picked
    end
  done;
  List.rev !picked

let generate p =
  if p.n_ports <= 0 || p.n_coflows < 0 then
    invalid_arg "Synthetic.generate: non-positive sizes";
  if p.width_max * 2 > p.n_ports then
    invalid_arg "Synthetic.generate: width_max too large for the fabric";
  if p.fanout_max + 1 > p.n_ports then
    invalid_arg "Synthetic.generate: fanout_max too large for the fabric";
  if p.span <= 0. then invalid_arg "Synthetic.generate: non-positive span";
  let rng = Rng.create p.seed in
  let mean_gap = p.span /. float_of_int (max 1 p.n_coflows) in
  let make_coflow id arrival =
    let demand = Demand.create () in
    let category =
      Rng.choose_weighted rng p.category_weights
    in
    (match category with
    | Coflow.Category.One_to_one ->
      let ports = distinct_ports rng ~n_ports:p.n_ports ~count:2 ~avoid:[] in
      (match ports with
      | [ s; r ] -> Demand.set demand s r (round_mb (lognormal_mb rng p.small_flow_mb))
      | _ -> assert false)
    | Coflow.Category.One_to_many ->
      let width = 2 + Rng.int rng (p.fanout_max - 1) in
      let sender = Rng.int rng p.n_ports in
      let receivers =
        distinct_ports rng ~n_ports:p.n_ports ~count:width ~avoid:[ sender ]
      in
      List.iter
        (fun r ->
          Demand.set demand sender r (round_mb (lognormal_mb rng p.small_flow_mb)))
        receivers
    | Coflow.Category.Many_to_one ->
      let width = 2 + Rng.int rng (p.fanout_max - 1) in
      let receiver = Rng.int rng p.n_ports in
      let senders =
        distinct_ports rng ~n_ports:p.n_ports ~count:width ~avoid:[ receiver ]
      in
      List.iter
        (fun s ->
          Demand.set demand s receiver (round_mb (lognormal_mb rng p.small_flow_mb)))
        senders
    | Coflow.Category.Many_to_many ->
      let n_senders = heavy_width rng p.width_max in
      let n_receivers = heavy_width rng p.width_max in
      let senders =
        distinct_ports rng ~n_ports:p.n_ports ~count:n_senders ~avoid:[]
      in
      let receivers =
        distinct_ports rng ~n_ports:p.n_ports ~count:n_receivers ~avoid:senders
      in
      (* full shuffle with the real trace's structure: each reducer's
         heavy-tailed total is split evenly across the mappers (the
         benchmark format stores per-reducer totals only) *)
      List.iter
        (fun r ->
          let total = lognormal_mb rng p.m2m_reducer_mb in
          let share = total /. float_of_int n_senders in
          List.iter (fun s -> Demand.set demand s r (round_mb share)) senders)
        receivers);
    Coflow.make ~id ~arrival demand
  in
  let rec arrivals k t acc =
    if k = 0 then List.rev acc
    else
      let t = t +. Rng.exponential rng ~mean:mean_gap in
      arrivals (k - 1) t (t :: acc)
  in
  let coflows = List.mapi make_coflow (arrivals p.n_coflows 0. []) in
  { Trace.n_ports = p.n_ports; coflows }

(* --- pod-local storm --------------------------------------------------- *)

type pod_params = {
  p_seed : int;
  p_pods : int;
  p_pod_size : int;
  p_coflows : int;
  p_span : float;
  p_cross_frac : float;
  p_width_max : int;
  p_flow_mb : float * float;
}

let default_pod_params =
  {
    p_seed = 83;
    p_pods = 16;
    p_pod_size = 8;
    p_coflows = 4000;
    p_span = 600.;
    p_cross_frac = 0.02;
    p_width_max = 3;
    p_flow_mb = (4., 1.2);
  }

let pods p =
  if p.p_pods < 2 then invalid_arg "Synthetic.pods: need at least two pods";
  if p.p_pod_size < 2 then invalid_arg "Synthetic.pods: pods need >= 2 ports";
  if p.p_coflows < 0 then invalid_arg "Synthetic.pods: negative trace length";
  if p.p_span <= 0. then invalid_arg "Synthetic.pods: non-positive span";
  if p.p_cross_frac < 0. || p.p_cross_frac > 1. then
    invalid_arg "Synthetic.pods: cross fraction outside [0, 1]";
  if p.p_width_max < 1 || p.p_width_max * 2 > p.p_pod_size then
    invalid_arg "Synthetic.pods: width_max too large for the pod";
  let rng = Rng.create p.p_seed in
  let n_ports = p.p_pods * p.p_pod_size in
  let mean_gap = p.p_span /. float_of_int (max 1 p.p_coflows) in
  let make_coflow id arrival =
    let demand = Demand.create () in
    if Rng.float rng 1. < p.p_cross_frac then begin
      (* cross-pod straggler: one flow between two distinct pods *)
      let pa = Rng.int rng p.p_pods in
      let pb = (pa + 1 + Rng.int rng (p.p_pods - 1)) mod p.p_pods in
      let src = (pa * p.p_pod_size) + Rng.int rng p.p_pod_size in
      let dst = (pb * p.p_pod_size) + Rng.int rng p.p_pod_size in
      Demand.set demand src dst (round_mb (lognormal_mb rng p.p_flow_mb))
    end
    else begin
      (* intra-pod shuffle: disjoint sender/receiver sets inside one pod *)
      let pod = Rng.int rng p.p_pods in
      let base = pod * p.p_pod_size in
      let n_s = 1 + Rng.int rng p.p_width_max in
      let n_r = 1 + Rng.int rng p.p_width_max in
      let senders =
        distinct_ports rng ~n_ports:p.p_pod_size ~count:n_s ~avoid:[]
      in
      let receivers =
        distinct_ports rng ~n_ports:p.p_pod_size ~count:n_r ~avoid:senders
      in
      List.iter
        (fun r ->
          List.iter
            (fun s ->
              Demand.set demand (base + s) (base + r)
                (round_mb (lognormal_mb rng p.p_flow_mb)))
            senders)
        receivers
    end;
    Coflow.make ~id ~arrival demand
  in
  let rec arrivals k t acc =
    if k = 0 then List.rev acc
    else
      let t = t +. Rng.exponential rng ~mean:mean_gap in
      arrivals (k - 1) t (t :: acc)
  in
  let coflows = List.mapi make_coflow (arrivals p.p_coflows 0. []) in
  { Trace.n_ports; coflows }

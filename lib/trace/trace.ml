module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units

type t = { n_ports : int; coflows : Coflow.t list }

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let tokens_of_line s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun tok -> tok <> "")

let int_tok line tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> fail line "expected an integer, got %S" tok

let float_tok line tok =
  match float_of_string_opt tok with
  | Some v -> v
  | None -> fail line "expected a number, got %S" tok

let parse_coflow ~n_ports ~line toks =
  let check_rack r =
    if r < 0 || r >= n_ports then fail line "rack %d out of range [0, %d)" r n_ports
  in
  match toks with
  | id :: arrival_ms :: n_mappers :: rest ->
    let id = int_tok line id in
    let arrival = float_tok line arrival_ms /. 1e3 in
    if arrival < 0. then fail line "negative arrival time";
    let n_mappers = int_tok line n_mappers in
    if n_mappers <= 0 then fail line "coflow %d has no mappers" id;
    if List.length rest < n_mappers + 1 then
      fail line "coflow %d: truncated mapper list" id;
    let rec split k acc rest =
      if k = 0 then (List.rev acc, rest)
      else
        match rest with
        | tok :: rest -> split (k - 1) (int_tok line tok :: acc) rest
        | [] -> fail line "coflow %d: truncated mapper list" id
    in
    let mappers, rest = split n_mappers [] rest in
    List.iter check_rack mappers;
    (match rest with
    | n_reducers :: rest ->
      let n_reducers = int_tok line n_reducers in
      if n_reducers <= 0 then fail line "coflow %d has no reducers" id;
      if List.length rest <> n_reducers then
        fail line "coflow %d: expected %d reducers, found %d" id n_reducers
          (List.length rest);
      let demand = Demand.create () in
      List.iter
        (fun tok ->
          match String.split_on_char ':' tok with
          | [ rack; size_mb ] ->
            let rack = int_tok line rack in
            check_rack rack;
            let size = Units.mb (float_tok line size_mb) in
            if size <= 0. then fail line "coflow %d: non-positive size %S" id tok;
            let share = size /. float_of_int n_mappers in
            List.iter (fun m -> Demand.add demand m rack share) mappers
          | _ -> fail line "coflow %d: malformed reducer %S" id tok)
        rest;
      Coflow.make ~id ~arrival demand
    | [] -> fail line "coflow %d: missing reducer count" id)
  | _ -> fail line "coflow line needs at least id, arrival and mapper count"

(* --- streaming reader ---

   One line at a time over a [next] thunk, so pipes and stdin work and
   resident memory stays O(1 coflow) regardless of stream length. The
   header-count check moves to where a stream can make it: at EOF for a
   shortfall, at the first surplus line (after counting the rest, so the
   message matches the batch parser's) for an excess. *)

let channel_lines ic () =
  match input_line ic with l -> Some l | exception End_of_file -> None

let no_header ~n_ports:_ ~n_coflows:_ = ()

(* Pull core: parse the header eagerly, then hand back a generator
   producing one [(line, coflow)] per call. *)
let read_stream next ~on_header =
  let lineno = ref 0 in
  let rec next_meaningful () =
    match next () with
    | None -> None
    | Some raw ->
      incr lineno;
      let l = String.trim raw in
      if l = "" || l.[0] = '#' then next_meaningful () else Some (!lineno, l)
  in
  match next_meaningful () with
  | None -> raise (Parse_error { line = 1; message = "empty trace" })
  | Some (line0, header) ->
    (match tokens_of_line header with
    | [ n_ports; n_coflows ] ->
      let n_ports = int_tok line0 n_ports in
      let n_coflows = int_tok line0 n_coflows in
      if n_ports <= 0 then fail line0 "non-positive port count";
      on_header ~n_ports ~n_coflows;
      let count = ref 0 in
      let eof = ref false in
      begin
        fun () ->
          if !eof then None
          else
            match next_meaningful () with
            | None ->
              eof := true;
              if !count <> n_coflows then
                fail line0 "header promises %d coflows, file has %d" n_coflows
                  !count;
              None
            | Some (line, l) ->
              if !count = n_coflows then begin
                (* surplus line: count the rest so the message matches
                   the one-shot parser's *)
                let rec drain n =
                  match next_meaningful () with
                  | None -> n
                  | Some _ -> drain (n + 1)
                in
                fail line0 "header promises %d coflows, file has %d" n_coflows
                  (drain (!count + 1))
              end;
              let c = parse_coflow ~n_ports ~line (tokens_of_line l) in
              incr count;
              Some (line, c)
      end
    | _ -> fail line0 "header must be: <num_racks> <num_coflows>")

let reader ?(on_header = no_header) ic =
  let pull = read_stream (channel_lines ic) ~on_header in
  fun () -> Option.map snd (pull ())

let fold_meaningful next ~on_header ~init ~f =
  let pull = read_stream next ~on_header in
  let rec go acc =
    match pull () with None -> acc | Some (line, c) -> go (f acc ~line c)
  in
  go init

let fold ?(on_header = no_header) ic ~init ~f =
  fold_meaningful (channel_lines ic) ~on_header ~init
    ~f:(fun acc ~line:_ c -> f acc c)

let iter ?on_header ic ~f = fold ?on_header ic ~init:() ~f:(fun () c -> f c)

let parse text =
  let lines = String.split_on_char '\n' text in
  let meaningful =
    List.mapi (fun i l -> (i + 1, String.trim l)) lines
    |> List.filter (fun (_, l) -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match meaningful with
  | [] -> raise (Parse_error { line = 1; message = "empty trace" })
  | (line0, header) :: rest ->
    (match tokens_of_line header with
    | [ n_ports; n_coflows ] ->
      let n_ports = int_tok line0 n_ports in
      let n_coflows = int_tok line0 n_coflows in
      if n_ports <= 0 then fail line0 "non-positive port count";
      if List.length rest <> n_coflows then
        fail line0 "header promises %d coflows, file has %d" n_coflows
          (List.length rest);
      let seen = Hashtbl.create 64 in
      let coflows =
        List.map
          (fun (line, l) ->
            let c = parse_coflow ~n_ports ~line (tokens_of_line l) in
            if Hashtbl.mem seen c.Coflow.id then
              fail line "duplicate Coflow id %d" c.Coflow.id;
            Hashtbl.replace seen c.Coflow.id ();
            c)
          rest
      in
      { n_ports; coflows }
    | _ -> fail line0 "header must be: <num_racks> <num_coflows>")

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      (* stream through the same core [fold] uses — no whole-file read,
         no [in_channel_length] (which fails on non-seekable inputs) —
         adding back the duplicate-id check the one-shot [parse] does *)
      let ports = ref 0 in
      let seen = Hashtbl.create 64 in
      let coflows =
        fold_meaningful (channel_lines ic)
          ~on_header:(fun ~n_ports ~n_coflows:_ -> ports := n_ports)
          ~init:[]
          ~f:(fun acc ~line (c : Coflow.t) ->
            if Hashtbl.mem seen c.Coflow.id then
              fail line "duplicate Coflow id %d" c.Coflow.id;
            Hashtbl.replace seen c.Coflow.id ();
            c :: acc)
      in
      { n_ports = !ports; coflows = List.rev coflows })

(* --- full-precision serialisation ---

   The format stores arrivals as decimal milliseconds and sizes as
   decimal MB. The writer used to print ["%.0f"] / ["%.6g"], so a
   save/load cycle quantised arrivals to whole milliseconds and sizes
   to six significant digits — silently perturbing every replay of a
   re-saved trace. We now emit, for each value, a decimal literal
   whose *parse* (divide the ms by 1e3; scale the MB by 1e6, split it
   over the mappers and re-sum the shares) reproduces the in-memory
   float bit-for-bit whenever such a literal exists. *)

(* Shortest decimal literal that [float_of_string]s back to [x]
   exactly; 17 significant digits always suffice for a double. *)
let shortest_exact x =
  if Float.is_integer x && Float.abs x < 1e16 then Printf.sprintf "%.0f" x
  else begin
    let rec go p =
      if p >= 17 then Printf.sprintf "%.17g" x
      else
        let s = Printf.sprintf "%.*g" p x in
        if float_of_string s = x then s else go (p + 1)
    in
    go 1
  end

(* Find a non-negative double [y] with [replay y = target], starting
   the search at [guess]. [replay] must be monotone non-decreasing
   (both of ours are: [y /. 1e3], and a sum of [n] copies of
   [y *. 1e6 /. n]), so the preimage can be bisected over the float
   bit patterns. Not every double has one — a target outside the
   image of [replay] (possible for values that never came from a
   trace file) falls back to the nearest achievable double. *)
let exact_preimage ~replay ~guess ~target =
  if replay guess = target then guess
  else begin
    let max_bits = Int64.bits_of_float infinity in
    let clamp b =
      if Int64.compare b 0L < 0 then 0L
      else if Int64.compare b max_bits > 0 then max_bits
      else b
    in
    let g = Int64.bits_of_float guess in
    let rec widen step lo hi =
      let rlo = replay (Int64.float_of_bits lo)
      and rhi = replay (Int64.float_of_bits hi) in
      if (rlo <= target && target <= rhi) || step > 62 then (lo, hi)
      else
        let d = Int64.shift_left 1L step in
        widen (step + 1)
          (if rlo > target then clamp (Int64.sub lo d) else lo)
          (if rhi < target then clamp (Int64.add hi d) else hi)
    in
    let rec bisect lo hi =
      if Int64.compare (Int64.sub hi lo) 1L <= 0 then (lo, hi)
      else
        let mid = Int64.add lo (Int64.div (Int64.sub hi lo) 2L) in
        if replay (Int64.float_of_bits mid) < target then bisect mid hi
        else bisect lo mid
    in
    let lo, hi = widen 0 g g in
    let lo, hi = bisect lo hi in
    let err y = Float.abs (replay y -. target) in
    List.fold_left
      (fun best y -> if err y < err best then y else best)
      guess
      [ Int64.float_of_bits lo; Int64.float_of_bits hi ]
  end

let arrival_token arrival =
  shortest_exact
    (exact_preimage ~replay:(fun y -> y /. 1e3) ~guess:(arrival *. 1e3)
       ~target:arrival)

(* The parser splits each reducer total over the mappers and the
   column sum re-adds the [n] equal shares, so the replay must follow
   the same float path. *)
let reducer_token ~n_mappers total =
  let n = float_of_int n_mappers in
  let replay y =
    let share = Units.mb y /. n in
    let acc = ref 0. in
    for _ = 1 to n_mappers do
      acc := !acc +. share
    done;
    !acc
  in
  shortest_exact (exact_preimage ~replay ~guess:(Units.to_mb total) ~target:total)

let coflow_line buf (c : Coflow.t) =
  let senders = Demand.senders c.demand in
  let receivers = Demand.receivers c.demand in
  Buffer.add_string buf
    (Printf.sprintf "%d %s %d" c.id (arrival_token c.arrival)
       (List.length senders));
  List.iter (fun m -> Buffer.add_string buf (Printf.sprintf " %d" m)) senders;
  Buffer.add_string buf (Printf.sprintf " %d" (List.length receivers));
  List.iter
    (fun r ->
      Buffer.add_string buf
        (Printf.sprintf " %d:%s" r
           (reducer_token ~n_mappers:(List.length senders)
              (Demand.col_sum c.demand r))))
    receivers;
  Buffer.add_char buf '\n'

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" t.n_ports (List.length t.coflows));
  List.iter (coflow_line buf) t.coflows;
  Buffer.contents buf

let save path t =
  let text = to_string t in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc text;
      (* flush inside the protected section so write errors surface as
         exceptions rather than vanishing in [close_out_noerr] *)
      flush oc)

let total_bytes t =
  List.fold_left (fun acc c -> acc +. Coflow.total_bytes c) 0. t.coflows

let n_coflows t = List.length t.coflows

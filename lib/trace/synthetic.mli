(** Synthetic Facebook-like Coflow workload.

    The paper evaluates on a one-hour Hive/MapReduce trace from a
    Facebook production cluster (526 Coflows on a 150-port fabric)
    that is not redistributable with this repository. This generator
    produces a deterministic workload calibrated to the trace
    statistics the paper itself reports:

    - the Table 4 category mix (23.4 / 9.9 / 40.1 / 26.6 % of Coflows
      for O2O / O2M / M2O / M2M) with ≈99.9 % of bytes in
      many-to-many Coflows;
    - MapReduce-shuffle structure (every sender talks to every
      receiver) with rack-disjoint endpoint sets and heavy-tailed
      widths;
    - flow sizes rounded to whole megabytes with a 1 MB floor, as in
      the original trace;
    - Poisson arrivals over a one-hour window.

    All draws come from a seeded {!Sunflow_stats.Rng}; equal parameters
    yield byte-identical traces. *)

type params = {
  seed : int;
  n_ports : int;  (** fabric size (150) *)
  n_coflows : int;  (** trace length (526) *)
  span : float;  (** arrival window in seconds (3600) *)
  category_weights : (float * Sunflow_core.Coflow.Category.t) list;
      (** sampling weights; defaults to Table 4's Coflow percentages *)
  fanout_max : int;
      (** max width of one-to-many / many-to-one Coflows (10) *)
  width_max : int;
      (** max senders and max receivers of many-to-many Coflows (35) *)
  small_flow_mb : float * float;
      (** lognormal (median MB, sigma) of non-M2M flows *)
  m2m_reducer_mb : float * float;
      (** lognormal (median MB, sigma) of each M2M reducer's total,
          split evenly across the Coflow's mappers as in the original
          trace *)
}

val default_params : params
(** Matches the description above with [seed = 46]. *)

val generate : params -> Trace.t
(** Build the trace. Coflow ids are [0 .. n_coflows-1] in arrival
    order. Raises [Invalid_argument] on inconsistent parameters (e.g.
    [width_max * 2 > n_ports]). *)

(** {1 Pod-local storm}

    The shard-locality workload: the fabric is [p_pods] pods of
    [p_pod_size] consecutive ports each (pod [i] owns ports
    [[i*p_pod_size, (i+1)*p_pod_size)]), almost every Coflow is a
    small shuffle confined to one pod, and a [p_cross_frac] fraction
    are single-flow cross-pod stragglers. With the sharded engine's
    stripes aligned to the pods ([shard_block = p_pod_size],
    [shards = p_pods] or a divisor), an arrival dirties exactly one
    shard and the rare cross-pod Coflow exercises the
    conflict/rollback path. *)

type pod_params = {
  p_seed : int;
  p_pods : int;  (** pod count (>= 2) *)
  p_pod_size : int;  (** consecutive ports per pod (>= 2) *)
  p_coflows : int;
  p_span : float;  (** arrival window, seconds *)
  p_cross_frac : float;  (** fraction of cross-pod Coflows, in [0, 1] *)
  p_width_max : int;
      (** max senders and max receivers of an intra-pod shuffle;
          [2 * p_width_max <= p_pod_size] *)
  p_flow_mb : float * float;  (** lognormal (median MB, sigma) per flow *)
}

val default_pod_params : pod_params
(** 16 pods x 8 ports, 4000 Coflows over 600 s, 2 % cross-pod. *)

val pods : pod_params -> Trace.t
(** Build the pod-local trace; deterministic in [p_seed]. Raises
    [Invalid_argument] on inconsistent parameters. *)

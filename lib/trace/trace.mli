(** The coflow-benchmark trace format.

    The paper's workload is a one-hour Facebook Hive/MapReduce trace
    distributed as [github.com/coflow/coflow-benchmark] in a simple
    text format, which this module reads and writes:

    {v
    <num_racks> <num_coflows>
    <id> <arrival_ms> <num_mappers> <rack>... <num_reducers> <rack>:<MB>...
    v}

    Each mapper rack sends an equal share of each reducer's total to
    that reducer; rack numbers double as switch port ids. The format
    stores only per-reducer totals, so writing a Coflow whose flows are
    uneven and re-reading it yields the evenly-split approximation
    (exact round-trip for shuffle-shaped Coflows); see {!to_string}.

    A user with the real trace file can load it directly; the synthetic
    generator ({!Synthetic}) produces traces in the same representation
    otherwise. *)

type t = { n_ports : int; coflows : Sunflow_core.Coflow.t list }

exception Parse_error of { line : int; message : string }

val parse : string -> t
(** Parse the format from a string. Raises {!Parse_error} with a
    1-based line number on malformed input (bad counts, rack out of
    range, non-positive size, negative arrival, duplicate Coflow id).
    Blank lines and lines starting with [#] are skipped. *)

val load : string -> t
(** [parse] the contents of a file. The input channel is closed even
    when reading or parsing raises. *)

val to_string : t -> string
(** Serialise. Senders become the mapper list; each receiver's column
    sum becomes its reducer total (in decimal MB).

    Arrivals (decimal ms) and reducer totals are written with full
    precision: the emitted literal is chosen so that re-parsing it
    reproduces the in-memory arrival and per-receiver column sums
    bit-for-bit whenever the value has an exact decimal preimage
    under the parser's arithmetic — which every value that itself
    came from a trace file does. (An arrival synthesised in code with
    no exact [ms /. 1e3] preimage degrades to the nearest
    representable value, within one ulp.)

    Because the reducer-total format keeps no per-mapper breakdown, a
    [to_string] / {!parse} round trip redistributes each reducer's
    bytes {e evenly} across the Coflow's mappers: a Coflow where mapper
    0 sends 9 MB and mapper 1 sends 1 MB to the same reducer comes back
    as 5 MB from each. Totals per reducer (and so per Coflow) are
    preserved at full precision; the per-flow split is only exact for
    Coflows that were already even (the shuffle shape the benchmark
    trace encodes). This per-reducer column-sum granularity is
    inherent to the coflow-benchmark format, not a parser choice. *)

val save : string -> t -> unit
(** Write {!to_string} to a file. The channel is closed even if the
    write fails partway. *)

val total_bytes : t -> float
val n_coflows : t -> int

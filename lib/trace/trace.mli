(** The coflow-benchmark trace format.

    The paper's workload is a one-hour Facebook Hive/MapReduce trace
    distributed as [github.com/coflow/coflow-benchmark] in a simple
    text format, which this module reads and writes:

    {v
    <num_racks> <num_coflows>
    <id> <arrival_ms> <num_mappers> <rack>... <num_reducers> <rack>:<MB>...
    v}

    Each mapper rack sends an equal share of each reducer's total to
    that reducer; rack numbers double as switch port ids. The format
    stores only per-reducer totals, so writing a Coflow whose flows are
    uneven and re-reading it yields the evenly-split approximation
    (exact round-trip for shuffle-shaped Coflows); see {!to_string}.

    A user with the real trace file can load it directly; the synthetic
    generator ({!Synthetic}) produces traces in the same representation
    otherwise. *)

type t = { n_ports : int; coflows : Sunflow_core.Coflow.t list }

exception Parse_error of { line : int; message : string }

val parse : string -> t
(** Parse the format from a string. Raises {!Parse_error} with a
    1-based line number on malformed input (bad counts, rack out of
    range, non-positive size, negative arrival, duplicate Coflow id).
    Blank lines and lines starting with [#] are skipped. *)

val load : string -> t
(** Read a trace file through the streaming core {!fold} is built on —
    one line at a time, never the whole file at once — with {!parse}'s
    duplicate-Coflow-id check added back. The input channel is closed
    even when reading or parsing raises. Same successful results and
    {!Parse_error} line numbers as [parse] on the file's contents; the
    only divergence is ordering when a header-count mismatch coexists
    with a malformed line (streaming reports whichever it reaches
    first, the one-shot parser always reports the count). *)

val fold :
  ?on_header:(n_ports:int -> n_coflows:int -> unit) ->
  in_channel ->
  init:'a ->
  f:('a -> Sunflow_core.Coflow.t -> 'a) ->
  'a
(** Stream the format from a channel, folding [f] over Coflows in file
    order without ever materialising the list — the serving loop's
    reader, and it works on non-seekable inputs (pipes, stdin) where
    {!load}'s old whole-file read could not. [on_header] fires once
    with the header's declared counts before the first Coflow. The
    header count is still enforced (a shortfall is detected at EOF, a
    surplus at the first extra line), but duplicate Coflow ids are
    {e not} — a dup-id check needs every id ever seen, which is exactly
    the unbounded state a streaming consumer exists to avoid; callers
    that need it (like {!load}) layer it on top. Raises {!Parse_error}
    as {!parse} does. Does not close the channel. *)

val iter :
  ?on_header:(n_ports:int -> n_coflows:int -> unit) ->
  in_channel ->
  f:(Sunflow_core.Coflow.t -> unit) ->
  unit
(** [fold] with a unit accumulator. *)

val reader :
  ?on_header:(n_ports:int -> n_coflows:int -> unit) ->
  in_channel ->
  unit ->
  Sunflow_core.Coflow.t option
(** The pull form of {!fold}: parses the header immediately (calling
    [on_header], and raising {!Parse_error} on a malformed one), then
    returns a generator yielding one Coflow per call, [None] at a
    clean EOF, and raising {!Parse_error} lazily at the offending
    line otherwise. This is the shape the serving loop consumes
    ([Sunflow_serve.run]'s [next]); same checks and caveats as
    {!fold}. Does not close the channel. *)

val to_string : t -> string
(** Serialise. Senders become the mapper list; each receiver's column
    sum becomes its reducer total (in decimal MB).

    Arrivals (decimal ms) and reducer totals are written with full
    precision: the emitted literal is chosen so that re-parsing it
    reproduces the in-memory arrival and per-receiver column sums
    bit-for-bit whenever the value has an exact decimal preimage
    under the parser's arithmetic — which every value that itself
    came from a trace file does. (An arrival synthesised in code with
    no exact [ms /. 1e3] preimage degrades to the nearest
    representable value, within one ulp.)

    Because the reducer-total format keeps no per-mapper breakdown, a
    [to_string] / {!parse} round trip redistributes each reducer's
    bytes {e evenly} across the Coflow's mappers: a Coflow where mapper
    0 sends 9 MB and mapper 1 sends 1 MB to the same reducer comes back
    as 5 MB from each. Totals per reducer (and so per Coflow) are
    preserved at full precision; the per-flow split is only exact for
    Coflows that were already even (the shuffle shape the benchmark
    trace encodes). This per-reducer column-sum granularity is
    inherent to the coflow-benchmark format, not a parser choice. *)

val save : string -> t -> unit
(** Write {!to_string} to a file. The channel is closed even if the
    write fails partway. *)

val total_bytes : t -> float
val n_coflows : t -> int

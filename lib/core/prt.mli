(** Port Reservation Table (paper §4.1.1).

    The PRT records, for every input and output port, the time windows
    during which the port is taken by a circuit. Each reservation spans
    [[start, stop)] on both endpoints of its circuit; the first [setup]
    seconds of the window model the reconfiguration delay (during which
    no data moves) and the remainder transmits at full link rate.

    Input ports and output ports are separate namespaces: circuit
    [(3, 3)] reserves input port 3 and output port 3 independently.

    Reservations never overlap on a port — [reserve] enforces the
    paper's port constraint (§2.1): an input (output) port carries at
    most one circuit at a time.

    Internally each port keeps its windows in a dynamic array sorted by
    start time (with a parallel stop-sorted view), and the table keeps a
    sorted index of every upcoming release, so all point queries run in
    O(log n) per port instead of scanning the reservation lists — see
    DESIGN.md, "PRT data structure & complexity". *)

type port = In of int | Out of int

type reservation = {
  coflow : int;  (** owning Coflow id *)
  src : int;  (** input port *)
  dst : int;  (** output port *)
  start : float;
  setup : float;  (** leading reconfiguration time, [0 <= setup <= length] *)
  length : float;  (** total window length; transmission = length - setup *)
}

val stop : reservation -> float
(** [start +. length]. *)

val transmission : reservation -> float
(** Seconds of actual data transfer, [length -. setup]. *)

type t

type stats = {
  queries : int;  (** point queries answered (free_at, next-start, next-release) *)
  scans : int;  (** binary-search probes + neighbourhood walks *)
  reservations : int;  (** successful {!reserve} calls *)
  rollbacks : int;
      (** windows removed again after having been reserved: reserves
          undone after an Out-port conflict, plus every removal through
          {!rollback} and {!retract_coflow} *)
}
(** Cumulative work counters over every table in the process, for the
    bench harness ([BENCH_prt.json]). Queries count public lookups;
    scans count the elements each lookup actually probed, so
    [scans /. queries] tracks the per-query cost (logarithmic in the
    reservation count for the array-backed table).

    The counters are domain-safe: each domain accumulates into its own
    cells (plain stores, no hot-path synchronisation) and {!stats}
    merges all of them. They live on the [Sunflow_obs.Registry] under
    the names [prt.queries], [prt.scans], [prt.reservations] and
    [prt.rollbacks] — a metrics export therefore reports totals
    bit-identical to {!stats} — and they are always on, regardless of
    [Sunflow_obs.Control]. *)

val stats : unit -> stats
(** Snapshot of the process-wide counters: the sum over every domain
    that ever touched a table. Exact once the contributing domains
    have been joined; a snapshot taken while they still run may lag
    their newest increments. *)

val reset_stats : unit -> unit

val pp_stats : Format.formatter -> stats -> unit

val create : unit -> t

val copy : t -> t
(** Deep copy: reservations recorded in either table afterwards never
    appear in the other. The undo log and ownership index are copied
    too, so a checkpoint taken before the copy can be rolled back in
    either table — but checkpoints are positions in one table's log,
    so a checkpoint taken in one table after the copy is meaningless
    in the other. *)

val is_empty : t -> bool

val free_at : t -> port -> float -> bool
(** No reservation window contains the instant (Algorithm 1 line 15).
    A window [[start, stop)] contains [start] but not [stop]. *)

val next_start_after : t -> port -> float -> float
(** Earliest reservation start strictly greater than the instant — the
    "next-reserv-time" [tm] of Algorithm 1 line 16 — or [infinity]. *)

val probe : t -> port -> float -> bool * float
(** [(free_at t p i, next_start_after t p i)] in a single lookup — the
    fused form the scheduler hot path uses. *)

val probe_pair : t -> src:int -> dst:int -> float -> float
(** Fused probe across a circuit's two endpoints: when both [In src]
    and [Out dst] are free at the instant, the earlier
    {!next_start_after} over both ports; otherwise [neg_infinity]
    (unambiguous — real next-starts are non-negative or [infinity]).
    The scheduler's inner loop uses this instead of two {!probe}
    calls; work-counter accounting is identical to the unfused pair
    (the Out port is only probed when the In port was free). *)

val next_release_after : t -> float -> float
(** Earliest reservation stop strictly greater than the instant, over
    all ports (Algorithm 1 line 10), or [infinity]. *)

val next_release_on_ports : t -> port list -> float -> float
(** Like {!next_release_after} but restricted to the given ports — the
    scheduler only cares about releases on ports its remaining demand
    can use, which keeps the scan local under inter-Coflow load. *)

val next_release_pair : t -> src:int -> dst:int -> float -> float
(** [next_release_on_ports t [In src; Out dst]] without consing the
    port list — the scheduler's blocked-flow retry path. *)

val fits_exact : t -> reservation -> bool
(** Whether the window intersects no existing window on either of its
    ports with positive measure. Stricter than {!reserve}'s admission,
    which tolerates sub-nanosecond rounding-dust overlaps: the
    incremental engine's splice path re-admits stored windows against
    freshly computed neighbours and must preserve exact per-port
    disjointness, not merely dust-disjointness. *)

val reserve : t -> reservation -> unit
(** Record a reservation on both of its ports. Raises
    [Invalid_argument] if it would overlap an existing window on either
    port, if [length <= 0.], or if [setup] is outside [[0, length]]. *)

val splice_exact : t -> reservation list -> bool
(** Re-admit a stored plan verbatim: if {e every} window passes
    {!fits_exact} against the current table, {!reserve} them all (in
    order) and return [true]; otherwise reserve nothing and return
    [false]. The all-windows-checked-before-any-reserved order is part
    of the contract: sibling windows of one plan may overlap each
    other by sub-[time_tolerance] rounding dust, which [reserve]
    tolerates but [fits_exact] rejects, so interleaving the check with
    the reserves would spuriously fail such plans. This is the single
    splice primitive behind the incremental engine's verbatim
    re-admission and the plan cache's replay path. *)

(** {1 Change tracking}

    Every mutation — {!reserve}, {!remove}, {!retract_coflow},
    {!rollback}, including the internal undo of a reserve that failed
    on its second port — bumps a monotone per-port epoch counter and
    updates a per-port content signature. The plan cache keys its
    validity on these: a port whose mark is unchanged holds exactly
    the windows it held when the plan was computed. *)

val epoch : t -> port -> int
(** Number of mutations that ever touched the port (never resets; a
    port never touched reports [0]). *)

val epochs_of : t -> port list -> int array
(** {!epoch} over a footprint, one hash lookup per port. *)

val mark : t -> port -> int * int * int
(** [(epoch, window count, content signature)] for the port. The
    signature is an XOR-fold of the resident windows' 63-bit hashes
    (remove undoes the matching insert), so equal marks mean equal
    resident window multisets up to hash collision — count and
    signature pin the content, the epoch additionally pins the
    mutation history. {!copy} preserves marks. *)

val remove : t -> reservation -> bool
(** Remove the window physically equal to the argument from both of its
    ports, the release index and the ownership index. Returns [false]
    (leaving the table untouched) when no such window exists. Sub-dust
    twins — identical windows within {e time_tolerance} — are
    interchangeable; one of them goes. *)

val retract_coflow : t -> int -> int
(** Remove every window owned by the Coflow id; returns how many were
    removed. O(own windows × log n). Entries the Coflow wrote to the
    undo log stay there and are skipped by a later {!rollback} —
    retiring a finished Coflow never invalidates outstanding
    checkpoints. *)

type checkpoint
(** A position in the table's undo log. Valid for this table (or a
    {!copy} taken later) until a {!rollback} to an earlier position
    discards it. *)

val checkpoint : t -> checkpoint
(** Mark the current undo-log position. O(1). *)

val journal_length : t -> int
(** Current undo-log length: {!reserve}s recorded since the last
    {!forget_history} (or creation) and not yet undone by {!rollback}.
    The serving loop's memory-boundedness monitor — a table whose
    journal grows without bound pins every recorded window against the
    GC. O(1). *)

val rollback : t -> checkpoint -> unit
(** Undo every {!reserve} recorded after the checkpoint, newest first,
    skipping windows already gone via {!retract_coflow}, and truncate
    the log back to the mark. Raises [Invalid_argument] on a checkpoint
    from beyond the current log end (i.e. one already discarded by an
    earlier rollback). O(undone × log n). *)

val forget_history : t -> unit
(** Drop the undo log entirely, invalidating every outstanding
    checkpoint (a later {!rollback} with one raises). For callers that
    repair the table in place and will never roll back past this
    point: the log otherwise grows with every reserve for the life of
    the table and keeps retired Coflows' windows reachable. O(1). *)

val port_reservations : t -> port -> reservation list
(** Reservations on one port, sorted by start time. *)

val all_reservations : t -> reservation list
(** Every reservation once (keyed on input ports), sorted by
    [(start, src, dst)]. *)

val established_at : t -> float -> (int * int) list
(** Circuits actively transmitting at an instant: reservations with
    [start + setup <= t < stop]. Used when rescheduling to carry live
    circuits over without paying a new delta. *)

val covering_at : t -> float -> reservation list
(** Every reservation whose window contains the instant
    ([start <= t < stop]), in unspecified order. Per-port predecessor
    search, so O(ports × log n) rather than O(reservations).
    [established_at]'s answer is exactly the [(src, dst)] set of these
    windows filtered to [start + setup <= t]. *)

val reservations_in : t -> float -> float -> reservation list
(** [reservations_in t t0 t1]: every reservation overlapping the slice
    [[t0, t1)] — [stop > t0] and [start < t1] — sorted by the full
    window identity [(start, src, dst, coflow, setup, length)] so the
    order is identical across differently-built tables holding the same
    windows. O(ports × log n + answer). *)

val ports_in_use : t -> port list
(** Ports holding at least one reservation, sorted. *)

val pp : Format.formatter -> t -> unit
(** Render all reservations, one per line. *)

(** Deadline-aware Coflow service.

    §2.3 notes that prior circuit schedulers "lack the ability to ...
    meet individual Coflow's performance requirement", and §4.2 expects
    operators to express latency-sensitive versus latency-tolerant
    classes through the policy framework. This module provides the two
    standard deadline tools on top of {!Inter}:

    - an earliest-deadline-first priority ordering, and
    - admission control with a guarantee: because Sunflow never
      preempts reservations already in the table, a Coflow admitted
      with a plan that meets its deadline keeps that plan whatever is
      admitted after it (the same argument Varys uses for its deadline
      mode). *)

val edf : deadline_of:(Coflow.t -> float) -> Inter.policy
(** Earliest absolute deadline first; ties by arrival then id. *)

type admission = {
  admitted : (int * float) list;
      (** Coflow id -> planned finish, each [<= ] its deadline, sorted
          by id *)
  rejected : (int * float) list;
      (** Coflow id -> the finish its tentative plan would have had,
          [> ] its deadline, sorted by id *)
  prt : Prt.t;  (** reservations of the admitted Coflows only *)
}

val admit :
  ?now:float ->
  ?order:Order.t ->
  deadline_of:(Coflow.t -> float) ->
  delta:float ->
  bandwidth:float ->
  Coflow.t list ->
  admission
(** Consider Coflows in EDF order; schedule each once, directly on the
    real reservation table, and admit it only if its plan finishes by
    its (absolute) deadline — a rejected plan is undone through the
    table's checkpoint/rollback journal, leaving the table exactly as
    it was. Rejected Coflows therefore add nothing to the table, so
    they cannot hurt anyone admitted before or after them. Empty
    Coflows are admitted with finish [now]. *)

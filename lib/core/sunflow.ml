type result = {
  reservations : Prt.reservation list;
  finish : float;
  setups : int;
}

(* Gated observability (spans and counters record only under
   Sunflow_obs.Control.enabled; the PRT work counters underneath stay
   always-on). The schedule is traced as one outer span with two
   phase children: candidate selection (demand -> ordered pending
   flows) and the reservation loop (PRT probe/reserve driven by the
   wake heap). *)
module Obs = Sunflow_obs

let m_schedules = Obs.Registry.counter "sunflow.schedules"
let m_wakes = Obs.Registry.counter "sunflow.wakes"
let h_flows = Obs.Registry.histogram "sunflow.flows_per_schedule"

(* One pending flow with its remaining processing time. [fresh] tracks
   whether the flow may still reuse a pre-established circuit (only
   before its first reservation, and only at the schedule start).
   [idx] is the flow's rank in the reservation consideration order; it
   breaks ties between flows retried at the same instant so the
   event-driven loop visits them exactly as the round-robin loop did.
   Every field is mutable: the records live in a per-domain scratch
   arena and are rewritten call to call instead of reallocated. *)
type pending = {
  mutable src : int;
  mutable dst : int;
  mutable idx : int;
  mutable remaining : float;
  mutable fresh : bool;
}

let dummy_pending =
  { src = -1; dst = -1; idx = -1; remaining = 0.; fresh = false }

let dummy_res =
  { Prt.coflow = min_int; src = 0; dst = 0; start = 0.; setup = 0.; length = 0. }

(* The per-domain scratch arena: the pending pool, the wake heap
   (parallel arrays — unboxed times next to their flows) and the
   growable accumulator of made reservations, all reused across calls
   so the kernel's steady state allocates nothing proportional to the
   flow count. Reuse rules (see DESIGN.md "Plan cache & schedule
   kernel"): the arena owns only scalar-field [pending] records;
   every slot that ever referenced a caller-visible value (a made
   reservation, a popped heap flow) is cleared back to a dummy before
   the call returns, so a retained arena never pins schedule outputs
   against the GC. A reentrant call (a hostile [established] closure
   calling [schedule]) finds the arena busy and falls back to a fresh
   one. *)
type scratch = {
  mutable pool : pending array;
  mutable wk_time : float array;  (* wake heap: times, unboxed *)
  mutable wk_flow : pending array;  (* wake heap: flows, parallel *)
  mutable wk_len : int;
  mutable made : Prt.reservation array;  (* creation order *)
  mutable n_made : int;
  mutable busy : bool;
}

let fresh_scratch () =
  {
    pool = [||];
    wk_time = [||];
    wk_flow = [||];
    wk_len = 0;
    made = [||];
    n_made = 0;
    busy = false;
  }

let scratch_key = Domain.DLS.new_key fresh_scratch

let pool_ensure sc n =
  let cap = Array.length sc.pool in
  if n > cap then begin
    let cap' = max 8 (max n (2 * cap)) in
    let arr =
      Array.init cap' (fun i ->
          if i < cap then sc.pool.(i)
          else { src = -1; dst = -1; idx = -1; remaining = 0.; fresh = false })
    in
    sc.pool <- arr
  end

(* an exception can abandon the call mid-drain; clear every slot that
   might reference a reservation or flow so the arena pins nothing *)
let scratch_abort sc =
  Array.fill sc.wk_flow 0 (Array.length sc.wk_flow) dummy_pending;
  sc.wk_len <- 0;
  Array.fill sc.made 0 (Array.length sc.made) dummy_res;
  sc.n_made <- 0;
  sc.busy <- false

(* --- wake heap ---------------------------------------------------------

   Min-heap of flow wake-up times ordered by (time, consideration
   rank), so simultaneous wake-ups replay in the original reservation
   order. Each pending flow has exactly one entry. Same element
   movement as the boxed-entry heap it replaces, on the scratch
   arena's parallel arrays; a pop clears the vacated slot back to
   [dummy_pending] — the boxed heap left the popped entry parked at
   [data.(len)], pinning its flow until a later push overwrote it. *)

let wk_before sc i j =
  sc.wk_time.(i) < sc.wk_time.(j)
  || (sc.wk_time.(i) = sc.wk_time.(j) && sc.wk_flow.(i).idx < sc.wk_flow.(j).idx)

let wk_swap sc i j =
  let t = sc.wk_time.(i) in
  sc.wk_time.(i) <- sc.wk_time.(j);
  sc.wk_time.(j) <- t;
  let f = sc.wk_flow.(i) in
  sc.wk_flow.(i) <- sc.wk_flow.(j);
  sc.wk_flow.(j) <- f

let wk_push sc time flow =
  let cap = Array.length sc.wk_time in
  if sc.wk_len = cap then begin
    let cap' = max 8 (2 * cap) in
    let ts = Array.make cap' 0. in
    Array.blit sc.wk_time 0 ts 0 sc.wk_len;
    sc.wk_time <- ts;
    let fs = Array.make cap' dummy_pending in
    Array.blit sc.wk_flow 0 fs 0 sc.wk_len;
    sc.wk_flow <- fs
  end;
  sc.wk_time.(sc.wk_len) <- time;
  sc.wk_flow.(sc.wk_len) <- flow;
  sc.wk_len <- sc.wk_len + 1;
  let i = ref (sc.wk_len - 1) in
  while !i > 0 && wk_before sc !i ((!i - 1) / 2) do
    wk_swap sc !i ((!i - 1) / 2);
    i := (!i - 1) / 2
  done

(* remove the root; the caller has already read it off slot 0 *)
let wk_drop sc =
  sc.wk_len <- sc.wk_len - 1;
  let n = sc.wk_len in
  if n > 0 then begin
    sc.wk_time.(0) <- sc.wk_time.(n);
    sc.wk_flow.(0) <- sc.wk_flow.(n)
  end;
  sc.wk_flow.(n) <- dummy_pending;
  if n > 1 then begin
    let i = ref 0 in
    let continue_ = ref true in
    while !continue_ do
      let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
      let smallest = ref !i in
      if l < n && wk_before sc l !smallest then smallest := l;
      if r < n && wk_before sc r !smallest then smallest := r;
      if !smallest = !i then continue_ := false
      else begin
        wk_swap sc !smallest !i;
        i := !smallest
      end
    done
  end

let made_push sc r =
  let cap = Array.length sc.made in
  if sc.n_made = cap then begin
    let arr = Array.make (max 8 (2 * cap)) dummy_res in
    Array.blit sc.made 0 arr 0 sc.n_made;
    sc.made <- arr
  end;
  sc.made.(sc.n_made) <- r;
  sc.n_made <- sc.n_made + 1

(* MakeReservation (Algorithm 1 lines 13-23). Pushes the reservation
   made, if any, onto the scratch accumulator. The paper's guard is
   [lm < delta -> l = 0]; we also skip the boundary case [lm = setup],
   where the reservation would be pure reconfiguration transmitting
   nothing. The two port probes are fused into [Prt.probe_pair]:
   [neg_infinity] means a busy port, anything else is the earlier
   next-reserv-time [tm] over both free ports. *)
let make_reservation sc prt ~coflow ~now ~delta ~established t p =
  let tm = Prt.probe_pair prt ~src:p.src ~dst:p.dst t in
  if tm <> neg_infinity then begin
    let setup =
      if p.fresh && t = now && established (p.src, p.dst) then 0. else delta
    in
    let lm = tm -. t in
    let ld = setup +. p.remaining in
    let l = if lm <= setup then 0. else Float.min lm ld in
    (* rounding of [t +. (tm -. t)] can overshoot [tm]; clamp by the
       measured overshoot (one step almost always lands the window at
       or before [tm] — a second only when the clamp itself rounds up) *)
    let rec shave l =
      if l <= 0. || t +. l <= tm then l
      else shave (Float.min (l -. (t +. l -. tm)) (Float.pred l))
    in
    let l = if l = lm then shave l else l in
    let l = if l <= setup then 0. else l in
    if l > 0. then begin
      let r =
        { Prt.coflow; src = p.src; dst = p.dst; start = t; setup; length = l }
      in
      Prt.reserve prt r;
      p.remaining <- ld -. l;
      p.fresh <- false;
      made_push sc r
    end
  end

let no_circuit _ = false

(* The reservation loop is event-driven: a flow that fails (or makes
   partial progress) can next change state only when one of its two
   ports releases a window, so it sleeps until exactly that instant
   instead of being retried at every release in the fabric. A release
   added to its ports later by another flow's reservation cannot wake
   it earlier: such a window occupies a port the flow needed, and ends
   strictly before the state the flow was already waiting on clears.
   This replays the round-robin loop reservation for reservation while
   doing O(1) retries per release instead of O(|pending|). *)
let schedule ?prt ?cache ?(now = 0.) ?(order = Order.Ordered_port)
    ?(established = no_circuit) ?(quantum = 0.) ~delta ~bandwidth coflow =
  if bandwidth <= 0. then invalid_arg "Sunflow.schedule: bandwidth <= 0";
  if delta < 0. then invalid_arg "Sunflow.schedule: negative delta";
  if now < 0. then invalid_arg "Sunflow.schedule: negative start time";
  let prt = match prt with Some p -> p | None -> Prt.create () in
  let obs = Obs.Control.enabled () in
  if obs then begin
    Obs.Registry.incr m_schedules;
    Obs.Tracer.begin_span ~cat:"core" "sunflow.schedule";
    Obs.Tracer.begin_span ~cat:"core" "sunflow.candidates"
  end;
  let to_processing bytes =
    let p = bytes /. bandwidth in
    if quantum > 0. then quantum *. Float.ceil (p /. quantum) else p
  in
  let sc0 = Domain.DLS.get scratch_key in
  let sc = if sc0.busy then fresh_scratch () else sc0 in
  sc.busy <- true;
  let run () =
    let entries =
      match order with
      | Order.Ordered_port ->
        (* [Demand.entries] is already (src, dst)-sorted, which is
           exactly [Ordered_port]'s sort — skip the re-sort *)
        Demand.entries coflow.Coflow.demand
      | _ -> Order.apply order (Demand.entries coflow.Coflow.demand)
    in
    let n_pending = ref 0 in
    List.iter
      (fun ((src, dst), bytes) ->
        let remaining = to_processing bytes in
        if remaining > 0. then begin
          let i = !n_pending in
          pool_ensure sc (i + 1);
          let p = sc.pool.(i) in
          p.src <- src;
          p.dst <- dst;
          p.idx <- i;
          p.remaining <- remaining;
          p.fresh <- true;
          n_pending := i + 1
        end)
      entries;
    let n_pending = !n_pending in
    if obs then begin
      Obs.Registry.observe h_flows (float_of_int n_pending);
      Obs.Tracer.end_span ~cat:"core" "sunflow.candidates";
      Obs.Tracer.begin_span ~cat:"core" "sunflow.reserve"
    end;
    let kernel () =
      for i = 0 to n_pending - 1 do
        wk_push sc now sc.pool.(i)
      done;
      let n_wakes = ref 0 in
      while sc.wk_len > 0 do
        let t = sc.wk_time.(0) in
        let p = sc.wk_flow.(0) in
        wk_drop sc;
        incr n_wakes;
        make_reservation sc prt ~coflow:coflow.Coflow.id ~now ~delta
          ~established t p;
        if p.remaining > 0. then begin
          let t' = Prt.next_release_pair prt ~src:p.src ~dst:p.dst t in
          if t' = infinity then
            (* Impossible: a blocked flow implies a reservation releasing
               after [t] (see the progress argument in the design doc). *)
            invalid_arg "Sunflow.schedule: stuck with pending demand"
          else wk_push sc t' p
        end
      done;
      if obs then Obs.Registry.add m_wakes !n_wakes;
      let finish = ref now and setups = ref 0 in
      for i = 0 to sc.n_made - 1 do
        let r = sc.made.(i) in
        finish := Float.max !finish (Prt.stop r);
        if r.Prt.setup > 0. then incr setups
      done;
      let reservations = ref [] in
      for i = sc.n_made - 1 downto 0 do
        reservations := sc.made.(i) :: !reservations;
        sc.made.(i) <- dummy_res
      done;
      sc.n_made <- 0;
      { reservations = !reservations; finish = !finish; setups = !setups }
    in
    let result =
      match cache with
      | Some cch when n_pending > 0 ->
        (* Key: everything the kernel's output depends on besides the
           table — bandwidth and quantum are folded into [remaining],
           the order into the sequence itself, and the established
           predicate into one pre-evaluated bool per flow (the kernel
           consults it only at [t = now] on fresh flows, i.e. exactly
           once per flow, before any reservation of this call lands). *)
        let src = Array.init n_pending (fun i -> sc.pool.(i).src) in
        let dst = Array.init n_pending (fun i -> sc.pool.(i).dst) in
        let rem = Array.init n_pending (fun i -> sc.pool.(i).remaining) in
        let est = Array.init n_pending (fun i -> established (src.(i), dst.(i))) in
        let k =
          Plan_cache.key ~coflow:coflow.Coflow.id ~now ~delta ~src ~dst ~rem
            ~est
        in
        (match Plan_cache.find_and_replay cch prt k with
         | Some p ->
           {
             reservations = p.Plan_cache.p_reservations;
             finish = p.Plan_cache.p_finish;
             setups = p.Plan_cache.p_setups;
           }
         | None ->
           (* snapshot the footprint before the kernel's own reserves
              touch it: validity must mean "the table looks exactly as
              the kernel found it" *)
           let fp = ref [] in
           for i = n_pending - 1 downto 0 do
             fp :=
               Prt.In sc.pool.(i).src :: Prt.Out sc.pool.(i).dst :: !fp
           done;
           let ports = Array.of_list (List.sort_uniq compare !fp) in
           let marks = Array.map (Prt.mark prt) ports in
           let r = kernel () in
           Plan_cache.store cch k ~ports ~marks
             {
               Plan_cache.p_reservations = r.reservations;
               p_finish = r.finish;
               p_setups = r.setups;
             };
           r)
      | _ -> kernel ()
    in
    if obs then begin
      Obs.Tracer.end_span ~cat:"core" "sunflow.reserve";
      Obs.Tracer.end_span ~cat:"core" "sunflow.schedule"
    end;
    result
  in
  match run () with
  | r ->
    sc.busy <- false;
    r
  | exception e ->
    scratch_abort sc;
    raise e

let cct ?(delta = 10e-3) ?(bandwidth = 1.25e8) coflow =
  (schedule ~delta ~bandwidth { coflow with Coflow.arrival = 0. }).finish

type result = {
  reservations : Prt.reservation list;
  finish : float;
  setups : int;
}

(* Gated observability (spans and counters record only under
   Sunflow_obs.Control.enabled; the PRT work counters underneath stay
   always-on). The schedule is traced as one outer span with two
   phase children: candidate selection (demand -> ordered pending
   flows) and the reservation loop (PRT probe/reserve driven by the
   wake heap). *)
module Obs = Sunflow_obs

let m_schedules = Obs.Registry.counter "sunflow.schedules"
let m_wakes = Obs.Registry.counter "sunflow.wakes"
let h_flows = Obs.Registry.histogram "sunflow.flows_per_schedule"

(* One pending flow with its remaining processing time. [fresh] tracks
   whether the flow may still reuse a pre-established circuit (only
   before its first reservation, and only at the schedule start).
   [idx] is the flow's rank in the reservation consideration order; it
   breaks ties between flows retried at the same instant so the
   event-driven loop visits them exactly as the round-robin loop
   did. *)
type pending = {
  src : int;
  dst : int;
  idx : int;
  mutable remaining : float;
  mutable fresh : bool;
}

(* MakeReservation (Algorithm 1 lines 13-23). Returns the reservation
   made, if any. The paper's guard is [lm < delta -> l = 0]; we also
   skip the boundary case [lm = setup], where the reservation would be
   pure reconfiguration transmitting nothing. *)
let make_reservation prt ~coflow ~now ~delta ~established t p =
  let in_free, in_next = Prt.probe prt (Prt.In p.src) t in
  let out_free, out_next =
    if in_free then Prt.probe prt (Prt.Out p.dst) t else (false, infinity)
  in
  if in_free && out_free then begin
    let tm = Float.min in_next out_next in
    let setup =
      if p.fresh && t = now && established (p.src, p.dst) then 0. else delta
    in
    let lm = tm -. t in
    let ld = setup +. p.remaining in
    let l = if lm <= setup then 0. else Float.min lm ld in
    (* rounding of [t +. (tm -. t)] can overshoot [tm]; clamp by the
       measured overshoot (one step almost always lands the window at
       or before [tm] — a second only when the clamp itself rounds up) *)
    let rec shave l =
      if l <= 0. || t +. l <= tm then l
      else shave (Float.min (l -. (t +. l -. tm)) (Float.pred l))
    in
    let l = if l = lm then shave l else l in
    let l = if l <= setup then 0. else l in
    if l > 0. then begin
      let r =
        { Prt.coflow; src = p.src; dst = p.dst; start = t; setup; length = l }
      in
      Prt.reserve prt r;
      p.remaining <- ld -. l;
      p.fresh <- false;
      Some r
    end
    else None
  end
  else None

(* Min-heap of flow wake-up times ordered by (time, consideration
   rank), so simultaneous wake-ups replay in the original reservation
   order. Each pending flow has exactly one entry. *)
module Wakes = struct
  type entry = { time : float; flow : pending }
  type t = { mutable data : entry array; mutable len : int }

  let create () = { data = [||]; len = 0 }

  let before a b =
    a.time < b.time || (a.time = b.time && a.flow.idx < b.flow.idx)

  let push t time flow =
    let entry = { time; flow } in
    let cap = Array.length t.data in
    if t.len = cap then begin
      let data = Array.make (max 8 (2 * cap)) entry in
      Array.blit t.data 0 data 0 t.len;
      t.data <- data
    end;
    t.data.(t.len) <- entry;
    t.len <- t.len + 1;
    let i = ref (t.len - 1) in
    while
      !i > 0
      &&
      let parent = (!i - 1) / 2 in
      before t.data.(!i) t.data.(parent)
    do
      let parent = (!i - 1) / 2 in
      let tmp = t.data.(parent) in
      t.data.(parent) <- t.data.(!i);
      t.data.(!i) <- tmp;
      i := parent
    done

  let pop t =
    if t.len = 0 then None
    else begin
      let top = t.data.(0) in
      t.len <- t.len - 1;
      if t.len > 0 then begin
        t.data.(0) <- t.data.(t.len);
        let i = ref 0 in
        let continue_ = ref true in
        while !continue_ do
          let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
          let smallest = ref !i in
          if l < t.len && before t.data.(l) t.data.(!smallest) then
            smallest := l;
          if r < t.len && before t.data.(r) t.data.(!smallest) then
            smallest := r;
          if !smallest = !i then continue_ := false
          else begin
            let tmp = t.data.(!smallest) in
            t.data.(!smallest) <- t.data.(!i);
            t.data.(!i) <- tmp;
            i := !smallest
          end
        done
      end;
      Some (top.time, top.flow)
    end
end

let no_circuit _ = false

(* The reservation loop is event-driven: a flow that fails (or makes
   partial progress) can next change state only when one of its two
   ports releases a window, so it sleeps until exactly that instant
   instead of being retried at every release in the fabric. A release
   added to its ports later by another flow's reservation cannot wake
   it earlier: such a window occupies a port the flow needed, and ends
   strictly before the state the flow was already waiting on clears.
   This replays the round-robin loop reservation for reservation while
   doing O(1) retries per release instead of O(|pending|). *)
let schedule ?prt ?(now = 0.) ?(order = Order.Ordered_port)
    ?(established = no_circuit) ?(quantum = 0.) ~delta ~bandwidth coflow =
  if bandwidth <= 0. then invalid_arg "Sunflow.schedule: bandwidth <= 0";
  if delta < 0. then invalid_arg "Sunflow.schedule: negative delta";
  if now < 0. then invalid_arg "Sunflow.schedule: negative start time";
  let prt = match prt with Some p -> p | None -> Prt.create () in
  let obs = Obs.Control.enabled () in
  if obs then begin
    Obs.Registry.incr m_schedules;
    Obs.Tracer.begin_span ~cat:"core" "sunflow.schedule";
    Obs.Tracer.begin_span ~cat:"core" "sunflow.candidates"
  end;
  let to_processing bytes =
    let p = bytes /. bandwidth in
    if quantum > 0. then quantum *. Float.ceil (p /. quantum) else p
  in
  let pending =
    Order.apply order (Demand.entries coflow.Coflow.demand)
    |> List.filter_map (fun ((src, dst), bytes) ->
           let remaining = to_processing bytes in
           if remaining > 0. then Some (src, dst, remaining) else None)
    |> List.mapi (fun idx (src, dst, remaining) ->
           { src; dst; idx; remaining; fresh = true })
  in
  if obs then begin
    Obs.Registry.observe h_flows (float_of_int (List.length pending));
    Obs.Tracer.end_span ~cat:"core" "sunflow.candidates";
    Obs.Tracer.begin_span ~cat:"core" "sunflow.reserve"
  end;
  let wakes = Wakes.create () in
  List.iter (fun p -> Wakes.push wakes now p) pending;
  let made = ref [] in
  let n_wakes = ref 0 in
  let rec drain () =
    match Wakes.pop wakes with
    | None -> ()
    | Some (t, p) ->
      incr n_wakes;
      (match
         make_reservation prt ~coflow:coflow.Coflow.id ~now ~delta ~established
           t p
       with
      | Some r -> made := r :: !made
      | None -> ());
      if p.remaining > 0. then begin
        let t' =
          Prt.next_release_on_ports prt [ Prt.In p.src; Prt.Out p.dst ] t
        in
        if t' = infinity then
          (* Impossible: a blocked flow implies a reservation releasing
             after [t] (see the progress argument in the design doc). *)
          invalid_arg "Sunflow.schedule: stuck with pending demand"
        else Wakes.push wakes t' p
      end;
      drain ()
  in
  drain ();
  if obs then begin
    Obs.Registry.add m_wakes !n_wakes;
    Obs.Tracer.end_span ~cat:"core" "sunflow.reserve";
    Obs.Tracer.end_span ~cat:"core" "sunflow.schedule"
  end;
  let reservations = List.rev !made in
  let finish =
    List.fold_left (fun acc r -> Float.max acc (Prt.stop r)) now reservations
  in
  let setups =
    List.fold_left (fun k r -> if r.Prt.setup > 0. then k + 1 else k) 0
      reservations
  in
  { reservations; finish; setups }

let cct ?(delta = 10e-3) ?(bandwidth = 1.25e8) coflow =
  (schedule ~delta ~bandwidth { coflow with Coflow.arrival = 0. }).finish

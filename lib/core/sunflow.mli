(** The Sunflow intra-Coflow scheduling algorithm (paper §4.1,
    Algorithm 1).

    Sunflow is non-preemptive at the intra-Coflow level: a circuit with
    non-zero demand is set up once and stays active until the demand is
    finished (unless a partial reservation was forced by a
    higher-priority Coflow's existing reservation — the inter-Coflow
    case of line 16). The scheduler walks forward in time from circuit
    release to circuit release, reserving circuits for the remaining
    flows whenever the port constraints allow.

    Guarantees (proved in the paper's appendix, property-tested here):
    - [finish - now <= 2 * T_L^c] for any delta, bandwidth, demand and
      ordering (Lemma 1);
    - [finish - now <= 2 * (1 + alpha) * T_L^p] (Lemma 2);
    - on a fresh PRT the number of setups equals the number of
      subflows — the minimum possible (Fig. 5). *)

type result = {
  reservations : Prt.reservation list;
      (** reservations created for this Coflow, in creation order *)
  finish : float;  (** time the last reservation releases; [now] if none *)
  setups : int;  (** circuit establishments paid (reservations with setup) *)
}

val schedule :
  ?prt:Prt.t ->
  ?cache:Plan_cache.t ->
  ?now:float ->
  ?order:Order.t ->
  ?established:(int * int -> bool) ->
  ?quantum:float ->
  delta:float ->
  bandwidth:float ->
  Coflow.t ->
  result
(** [schedule ~delta ~bandwidth coflow] computes a circuit schedule
    draining the Coflow's whole demand.

    - [prt]: the shared Port Reservation Table; reservations already in
      it are never preempted (they belong to higher-priority Coflows in
      inter-Coflow scheduling). The table is extended in place.
      Defaults to a fresh table.
    - [cache]: optional {!Plan_cache} handle. When the cache holds a
      plan for an identical call (same Coflow id, start time, delta,
      pending flows and established set) and every footprint port's
      {!Prt.mark} still equals the snapshot taken when that plan was
      computed, the stored reservations are re-reserved verbatim —
      one [Prt.reserve] per window, no probe loop — and the stored
      result is returned, bit-identical to what the kernel would
      recompute. On a miss the kernel runs and the entry is
      refreshed. With a cache, [established] must be a pure function
      of the circuit pair for the duration of the call: building the
      key evaluates it once per pending flow up front, on a hit the
      kernel's own lazy probes never run at all, and on a miss they
      run in addition to the key build — so a stateful or effectful
      closure observes different call counts and ordering than the
      uncached path (the schedule itself stays bit-identical whenever
      the closure's answers are stable). Default: no cache; the
      uncached path is untouched, including its [established] call
      pattern.
    - [now]: scheduling start time (default [0.]).
    - [order]: reservation consideration order (default
      {!Order.Ordered_port}).
    - [established p]: true when circuit [p] is already physically set
      up at [now]; its first reservation pays no reconfiguration delay
      if it begins exactly at [now]. Default: no circuit established.
    - [quantum]: optional approximation (paper §6): processing times
      are rounded up to a multiple of [quantum], pruning circuit
      release events at the cost of schedule optimality.
    - [delta]: circuit reconfiguration delay, [>= 0].
    - [bandwidth]: link rate in bytes/second, [> 0].

    The Coflow's [arrival] field is ignored; callers pass [now] as the
    moment service begins. Raises [Invalid_argument] on non-positive
    bandwidth or negative delta. *)

val cct : ?delta:float -> ?bandwidth:float -> Coflow.t -> float
(** Convenience wrapper: completion time of a single Coflow scheduled
    alone from time [0.] on an empty fabric. Defaults: [delta] 10 ms,
    [bandwidth] 1 Gbps — the paper's default setting. *)

type port = In of int | Out of int

type reservation = {
  coflow : int;
  src : int;
  dst : int;
  start : float;
  setup : float;
  length : float;
}

let stop r = r.start +. r.length
let transmission r = r.length -. r.setup

(* --- instrumentation ------------------------------------------------- *)

type stats = {
  queries : int;
  scans : int;
  reservations : int;
  rollbacks : int;
}

(* The counters live on the Sunflow_obs metrics registry (which
   generalises the per-domain DLS-record + registry-mutex pattern
   these counters pioneered): each domain mutates its own cells with
   plain stores — no synchronisation on the hot path — and the
   registry folds the cells on snapshot. This type and the functions
   below are a façade kept for the bench harness and the tests;
   totals are bit-identical to the pre-registry implementation. A
   [stats] snapshot taken while other domains are mid-flight may lag
   their latest increments by a few, but totals read after the
   domains are joined are exact — [Domain.join] orders their writes
   before the read — which is what both the bench harness and the
   tests do.

   The counters are always on (they bypass [Sunflow_obs.Control]):
   the seed measured this cost on every hot path already, and the
   bench gates regressions against it. *)

module Registry = Sunflow_obs.Registry

let m_queries = Registry.counter "prt.queries"
let m_scans = Registry.counter "prt.scans"
let m_reservations = Registry.counter "prt.reservations"
let m_rollbacks = Registry.counter "prt.rollbacks"

(* The calling domain's four cells, fetched through one DLS read per
   public operation (as the seed fetched its one record) and then
   updated with plain stores. *)
type counters = {
  c_queries : Registry.counter_cell;
  c_scans : Registry.counter_cell;
  c_reservations : Registry.counter_cell;
  c_rollbacks : Registry.counter_cell;
}

let counters_key =
  Domain.DLS.new_key (fun () ->
      {
        c_queries = Registry.cell m_queries;
        c_scans = Registry.cell m_scans;
        c_reservations = Registry.cell m_reservations;
        c_rollbacks = Registry.cell m_rollbacks;
      })

let counters () = Domain.DLS.get counters_key

let stats () =
  {
    queries = Registry.counter_value m_queries;
    scans = Registry.counter_value m_scans;
    reservations = Registry.counter_value m_reservations;
    rollbacks = Registry.counter_value m_rollbacks;
  }

let reset_stats () =
  Registry.counter_reset m_queries;
  Registry.counter_reset m_scans;
  Registry.counter_reset m_reservations;
  Registry.counter_reset m_rollbacks

let pp_stats ppf s =
  Format.fprintf ppf "queries=%d scans=%d reservations=%d rollbacks=%d"
    s.queries s.scans s.reservations s.rollbacks

(* --- storage ---------------------------------------------------------- *)

(* Per-port reservations in a dynamic array sorted by start time, with a
   parallel array of the same windows' stop times sorted ascending. The
   start-sorted view answers [free_at] / [next_start_after] by binary
   search; the stop-sorted view answers [port_next_release] the same
   way. Windows on one port never overlap beyond [time_tolerance], so
   both views stay nearly identical in order — but the tolerance allows
   sub-nanosecond rounding-dust overlaps, which is why the stop times
   get their own exactly-sorted array instead of piggybacking on the
   start order. *)
type slot = {
  mutable res : reservation array;  (* sorted by start *)
  mutable stops : float array;  (* the same windows' stops, sorted *)
  mutable len : int;
  (* change tracking for the plan cache: [epoch] counts every mutation
     that ever touched the port (monotone, never reset), [sig_] is an
     XOR-fold of the resident windows' hashes (self-inverse, so a
     remove undoes the matching insert in O(1)). Together with [len]
     they fingerprint the port's content; see [mark] below. *)
  mutable epoch : int;
  mutable sig_ : int;
}

(* The interval index: every live window once (keyed on its input-port
   identity), held in one globally start-sorted sequence of bounded
   blocks, each block caching the max stop over its windows. Stabbing
   and slice queries ([covering_at] / [reservations_in]) binary-search
   the block sequence for the instant's position, then walk blocks
   leftward pruning in O(1) every block whose cached max stop cannot
   reach the instant — so a query costs O(log n + answer) element
   probes plus one O(1) summary check per block, instead of the
   per-port fold over every port slot the table used before (which
   made the slice queries that anchor each replay event linear in the
   port count regardless of how many windows actually overlap). *)

let iblock_cap = 128 (* split threshold; a block holds < iblock_cap windows *)

type iblock = {
  mutable ib_res : reservation array;  (* start-sorted *)
  mutable ib_len : int;
  mutable ib_max_stop : float;  (* max stop over the block's windows *)
}

(* The release index: every reservation's stop time once (not once per
   port), kept sorted ascending. This is the priority queue of upcoming
   releases; it is stored flat (a sorted array rather than a tree-shaped
   heap) because [next_release_after] asks for the successor of an
   arbitrary instant — queries are not monotone across Coflows sharing
   the table — and a heap can only answer successor-of-min. *)
type t = {
  ports : (port, slot) Hashtbl.t;
  mutable releases : float array;
  mutable n_releases : int;
  mutable n_res : int;
  (* ownership index: Coflow id -> the windows it currently holds, so a
     finished Coflow's reservations can be retired in O(own windows)
     without scanning the table *)
  owners : (int, reservation list ref) Hashtbl.t;
  (* undo log: every successful [reserve] in order. [checkpoint] marks a
     position; [rollback] replays the suffix backwards with
     remove-if-present semantics, so entries already retired through
     [retract_coflow] are skipped rather than double-freed. *)
  mutable journal : reservation array;
  mutable n_journal : int;
  (* interval index over all live windows; see [iblock] above *)
  mutable iblocks : iblock array;
  mutable n_iblocks : int;
}

let create () =
  {
    ports = Hashtbl.create 64;
    releases = [||];
    n_releases = 0;
    n_res = 0;
    owners = Hashtbl.create 64;
    journal = [||];
    n_journal = 0;
    iblocks = [||];
    n_iblocks = 0;
  }

let dummy_res =
  (* filler for vacated interval-index slots; [length = 0.] can never
     enter the table through [reserve], so it is distinguishable from
     any live window *)
  { coflow = min_int; src = 0; dst = 0; start = 0.; setup = 0.; length = 0. }

let dummy_iblock = { ib_res = [||]; ib_len = 0; ib_max_stop = neg_infinity }

(* blocks are allocated at full [iblock_cap] capacity so in-place
   inserts never have to grow them *)
let iblock_copy b =
  let arr = Array.make iblock_cap dummy_res in
  Array.blit b.ib_res 0 arr 0 b.ib_len;
  { ib_res = arr; ib_len = b.ib_len; ib_max_stop = b.ib_max_stop }

let copy t =
  let ports = Hashtbl.create (Hashtbl.length t.ports) in
  Hashtbl.iter
    (fun p s ->
      Hashtbl.replace ports p
        {
          res = Array.sub s.res 0 s.len;
          stops = Array.sub s.stops 0 s.len;
          len = s.len;
          epoch = s.epoch;
          sig_ = s.sig_;
        })
    t.ports;
  let owners = Hashtbl.create (Hashtbl.length t.owners) in
  Hashtbl.iter (fun id l -> Hashtbl.replace owners id (ref !l)) t.owners;
  {
    ports;
    releases = Array.sub t.releases 0 t.n_releases;
    n_releases = t.n_releases;
    n_res = t.n_res;
    owners;
    journal = Array.sub t.journal 0 t.n_journal;
    n_journal = t.n_journal;
    iblocks = Array.init t.n_iblocks (fun i -> iblock_copy t.iblocks.(i));
    n_iblocks = t.n_iblocks;
  }

let is_empty t = t.n_res = 0

(* Shared read-only stand-in for ports that never held a window. Its
   epoch/signature stay 0 forever — a port with no slot reports the
   same fingerprint as a freshly created slot before its first insert,
   which is exactly right: both have empty content and no history.
   [slot_insert] materialises a fresh slot on first use, so this record
   is never mutated. *)
let empty_slot = { res = [||]; stops = [||]; len = 0; epoch = 0; sig_ = 0 }

let find_slot t p =
  match Hashtbl.find_opt t.ports p with Some s -> s | None -> empty_slot

(* --- change tracking --------------------------------------------------

   Every mutation funnels through [slot_insert] / [slot_remove] (reserve,
   remove, retract_coflow, rollback and the failed-reserve In-undo all
   bottom out there), so bumping the per-port epoch and XOR signature in
   those two functions covers the whole mutation surface. *)

(* FNV-1a over the window's identity; float fields enter by their IEEE
   bit patterns so dust-distinct windows hash apart *)
let res_hash (r : reservation) =
  let fb f = Int64.to_int (Int64.bits_of_float f) in
  let mix h x = (h lxor x) * 0x100000001b3 in
  let h = mix 0x3bf29ce484222325 r.coflow in
  let h = mix h r.src in
  let h = mix h r.dst in
  let h = mix h (fb r.start) in
  let h = mix h (fb r.setup) in
  mix h (fb r.length)

let slot_touch s r =
  s.epoch <- s.epoch + 1;
  s.sig_ <- s.sig_ lxor res_hash r

let epoch t p = (find_slot t p).epoch

let epochs_of t ports =
  Array.of_list (List.map (fun p -> (find_slot t p).epoch) ports)

(* (epoch, window count, content signature) — the triple the plan cache
   snapshots per footprint port. Equal marks mean equal resident window
   multisets (up to a 63-bit hash collision): [len] + XOR [sig_] pin the
   content, the epoch additionally pins the mutation count. *)
let mark t p =
  let s = find_slot t p in
  (s.epoch, s.len, s.sig_)

(* --- binary searches --------------------------------------------------

   Each search counts its probes into the [scans] counter so the bench
   harness can report how much work the table did. *)

(* first index with [key arr.(i) > x], i.e. the successor position;
   [c] is the calling domain's counter record *)
let bsearch_gt c key arr len x =
  let lo = ref 0 and hi = ref len in
  while !lo < !hi do
    c.c_scans.v <- c.c_scans.v + 1;
    let mid = (!lo + !hi) / 2 in
    if key arr.(mid) <= x then lo := mid + 1 else hi := mid
  done;
  !lo

let res_start (r : reservation) = r.start
let float_id (x : float) = x

(* [start, stop) windows. Chained float sums put consecutive window
   boundaries within an ulp of each other, so an intersection below a
   nanosecond is rounding noise, not a double booking. *)
let time_tolerance = 1e-9

let free_at t p instant =
  let c = counters () in
  c.c_queries.v <- c.c_queries.v + 1;
  let s = find_slot t p in
  (* the only windows that can contain [instant] start at or before it;
     in a table of (tolerance-)disjoint windows that is the predecessor
     window, plus at most a dust neighbourhood of windows whose stops
     trail within [time_tolerance] of each other *)
  let i = bsearch_gt c res_start s.res s.len instant - 1 in
  let rec covered j =
    if j < 0 then false
    else begin
      c.c_scans.v <- c.c_scans.v + 1;
      let st = stop s.res.(j) in
      if st > instant then true
      else if st > instant -. time_tolerance then covered (j - 1)
      else false
    end
  in
  not (covered i)

let next_start_after t p instant =
  let c = counters () in
  c.c_queries.v <- c.c_queries.v + 1;
  let s = find_slot t p in
  let i = bsearch_gt c res_start s.res s.len instant in
  if i < s.len then s.res.(i).start else infinity

(* fused free_at + next_start_after: one slot lookup, one search *)
let probe t p instant =
  let c = counters () in
  c.c_queries.v <- c.c_queries.v + 1;
  let s = find_slot t p in
  let i = bsearch_gt c res_start s.res s.len instant in
  let next_start = if i < s.len then s.res.(i).start else infinity in
  let rec covered j =
    if j < 0 then false
    else begin
      c.c_scans.v <- c.c_scans.v + 1;
      let st = stop s.res.(j) in
      if st > instant then true
      else if st > instant -. time_tolerance then covered (j - 1)
      else false
    end
  in
  (not (covered (i - 1)), next_start)

(* The scheduler's inner-loop probe, fused across a circuit's two
   endpoints: when both ports are free at [instant] it returns the
   earlier next-start over both (the [tm] of Algorithm 1 line 16),
   otherwise [neg_infinity] — unambiguous, since real next-starts are
   positive or [infinity]. Counter accounting replicates the unfused
   pair of [probe] calls it replaces: the In probe always counts as a
   query, the Out probe only when the In port was free. *)
let probe_pair t ~src ~dst instant =
  let c = counters () in
  let covered (s : slot) j0 =
    let rec go j =
      if j < 0 then false
      else begin
        c.c_scans.v <- c.c_scans.v + 1;
        let st = stop s.res.(j) in
        if st > instant then true
        else if st > instant -. time_tolerance then go (j - 1)
        else false
      end
    in
    go j0
  in
  c.c_queries.v <- c.c_queries.v + 1;
  let s = find_slot t (In src) in
  let i = bsearch_gt c res_start s.res s.len instant in
  let in_next = if i < s.len then s.res.(i).start else infinity in
  if covered s (i - 1) then neg_infinity
  else begin
    c.c_queries.v <- c.c_queries.v + 1;
    let s = find_slot t (Out dst) in
    let i = bsearch_gt c res_start s.res s.len instant in
    let out_next = if i < s.len then s.res.(i).start else infinity in
    if covered s (i - 1) then neg_infinity else Float.min in_next out_next
  end

let port_next_release c t p instant =
  let s = find_slot t p in
  let i = bsearch_gt c float_id s.stops s.len instant in
  if i < s.len then s.stops.(i) else infinity

let next_release_after t instant =
  let c = counters () in
  c.c_queries.v <- c.c_queries.v + 1;
  let i = bsearch_gt c float_id t.releases t.n_releases instant in
  if i < t.n_releases then t.releases.(i) else infinity

let next_release_on_ports t ports instant =
  let c = counters () in
  c.c_queries.v <- c.c_queries.v + 1;
  List.fold_left
    (fun acc p -> Float.min acc (port_next_release c t p instant))
    infinity ports

(* [next_release_on_ports t [In src; Out dst] instant] without consing
   the port list — the scheduler's retry path *)
let next_release_pair t ~src ~dst instant =
  let c = counters () in
  c.c_queries.v <- c.c_queries.v + 1;
  Float.min
    (port_next_release c t (In src) instant)
    (port_next_release c t (Out dst) instant)

(* true when [r] intersects no existing window on either of its ports
   with positive measure — stricter than [reserve]'s dust-tolerant
   admission, which accepts sub-[time_tolerance] rounding overlaps.
   The incremental engine's splice path needs the strict test: a
   stored window re-admitted against a {e fresh} neighbour can land a
   few ulps inside it, and while [reserve] would wave that through as
   dust, the validator's exact per-port disjointness would not. *)
let fits_exact t r =
  let c = counters () in
  c.c_queries.v <- c.c_queries.v + 1;
  let clean p =
    let s = find_slot t p in
    let k = bsearch_gt c res_start s.res s.len r.start in
    (* windows starting after [r.start]: the first is the only
       candidate (later ones start even later) *)
    (k >= s.len || s.res.(k).start >= stop r)
    &&
    (* windows starting at or before [r.start]: any stop strictly past
       [r.start] is a positive-measure intersection. The walk crosses
       the dust run (stops within [time_tolerance] below [r.start])
       because tolerated pairwise dust overlaps let an earlier window
       reach past a later one's stop by up to the tolerance. *)
    let rec left j =
      if j < 0 then true
      else begin
        c.c_scans.v <- c.c_scans.v + 1;
        let st = stop s.res.(j) in
        if st <= r.start -. time_tolerance then true
        else if st > r.start then false
        else left (j - 1)
      end
    in
    left (k - 1)
  in
  clean (In r.src) && clean (Out r.dst)

(* --- mutation --------------------------------------------------------- *)

let overlaps a b =
  Float.min (stop a) (stop b) -. Float.max a.start b.start > time_tolerance

let grow_cap n = max 8 (2 * n)

let port_name = function
  | In i -> "in." ^ string_of_int i
  | Out j -> "out." ^ string_of_int j

let reject_overlap p r existing =
  invalid_arg
    (Format.asprintf
       "Prt.reserve: overlap on %s: new [%g, %g) vs existing [%g, %g)"
       (port_name p) r.start (stop r) existing.start (stop existing))

(* Insert [r] into the port's start-sorted array, checking overlaps only
   against the neighbourhood of the insertion point: in a table of
   pairwise (tolerance-)disjoint windows, anything overlapping [r]
   beyond the tolerance lies in the contiguous run of windows whose
   span touches [r]'s — a couple of probes, not a full scan. *)
let slot_insert c t p r =
  let s =
    match Hashtbl.find_opt t.ports p with
    | Some s -> s
    | None ->
      let s = { res = [||]; stops = [||]; len = 0; epoch = 0; sig_ = 0 } in
      Hashtbl.replace t.ports p s;
      s
  in
  let k = bsearch_gt c res_start s.res s.len r.start in
  (* left neighbours: windows starting at or before [r.start] can only
     reach into [r] while their stops stay above [r.start] *)
  let rec check_left j =
    if j >= 0 then begin
      c.c_scans.v <- c.c_scans.v + 1;
      let e = s.res.(j) in
      if stop e > r.start then begin
        if overlaps e r then reject_overlap p r e;
        check_left (j - 1)
      end
    end
  in
  check_left (k - 1);
  (* right neighbours: windows starting inside [r)'s span *)
  let rec check_right j =
    if j < s.len then begin
      c.c_scans.v <- c.c_scans.v + 1;
      let e = s.res.(j) in
      if e.start < stop r then begin
        if overlaps e r then reject_overlap p r e;
        check_right (j + 1)
      end
    end
  in
  check_right k;
  let cap = Array.length s.res in
  if s.len = cap then begin
    let cap' = grow_cap cap in
    let res = Array.make cap' r in
    Array.blit s.res 0 res 0 s.len;
    s.res <- res;
    let stops = Array.make cap' 0. in
    Array.blit s.stops 0 stops 0 s.len;
    s.stops <- stops
  end;
  Array.blit s.res k s.res (k + 1) (s.len - k);
  s.res.(k) <- r;
  let sk = bsearch_gt c float_id s.stops s.len (stop r) in
  Array.blit s.stops sk s.stops (sk + 1) (s.len - sk);
  s.stops.(sk) <- stop r;
  s.len <- s.len + 1;
  slot_touch s r;
  k

let slot_remove c t p k stop_time =
  let s = find_slot t p in
  slot_touch s s.res.(k);
  Array.blit s.res (k + 1) s.res k (s.len - k - 1);
  let sk =
    (* any entry equal to [stop_time] is interchangeable *)
    let i = bsearch_gt c float_id s.stops s.len stop_time - 1 in
    assert (i >= 0 && s.stops.(i) = stop_time);
    i
  in
  Array.blit s.stops (sk + 1) s.stops sk (s.len - sk - 1);
  s.len <- s.len - 1

let release_insert c t v =
  let cap = Array.length t.releases in
  if t.n_releases = cap then begin
    let arr = Array.make (grow_cap cap) 0. in
    Array.blit t.releases 0 arr 0 t.n_releases;
    t.releases <- arr
  end;
  let k = bsearch_gt c float_id t.releases t.n_releases v in
  Array.blit t.releases k t.releases (k + 1) (t.n_releases - k);
  t.releases.(k) <- v;
  t.n_releases <- t.n_releases + 1

(* --- interval index maintenance ---------------------------------------

   Invariants: blocks are globally ordered by start (every window in
   block [i] starts at or before every window in block [i+1]; windows
   with equal starts may span a boundary), every block holds at least
   one and fewer than [iblock_cap] windows, every live window appears
   exactly once, and [ib_max_stop] is the exact max stop over the
   block's windows. Vacated array slots (both block slots and window
   slots) are reset to dummies so the index never pins a removed
   window against the GC. *)

(* last block whose first window starts at or before [x], or -1 *)
let iidx_locate c t x =
  let lo = ref 0 and hi = ref t.n_iblocks in
  while !lo < !hi do
    c.c_scans.v <- c.c_scans.v + 1;
    let mid = (!lo + !hi) / 2 in
    if t.iblocks.(mid).ib_res.(0).start <= x then lo := mid + 1 else hi := mid
  done;
  !lo - 1

let iidx_insert_block t k b =
  let cap = Array.length t.iblocks in
  if t.n_iblocks = cap then begin
    let arr = Array.make (grow_cap cap) dummy_iblock in
    Array.blit t.iblocks 0 arr 0 t.n_iblocks;
    t.iblocks <- arr
  end;
  Array.blit t.iblocks k t.iblocks (k + 1) (t.n_iblocks - k);
  t.iblocks.(k) <- b;
  t.n_iblocks <- t.n_iblocks + 1

let iidx_recompute_max b =
  let m = ref neg_infinity in
  for i = 0 to b.ib_len - 1 do
    m := Float.max !m (stop b.ib_res.(i))
  done;
  b.ib_max_stop <- m.contents

let iidx_insert c t r =
  if t.n_iblocks = 0 then begin
    let arr = Array.make iblock_cap dummy_res in
    arr.(0) <- r;
    iidx_insert_block t 0 { ib_res = arr; ib_len = 1; ib_max_stop = stop r }
  end
  else begin
    let bi = max 0 (iidx_locate c t r.start) in
    let b = t.iblocks.(bi) in
    let k = bsearch_gt c res_start b.ib_res b.ib_len r.start in
    Array.blit b.ib_res k b.ib_res (k + 1) (b.ib_len - k);
    b.ib_res.(k) <- r;
    b.ib_len <- b.ib_len + 1;
    b.ib_max_stop <- Float.max b.ib_max_stop (stop r);
    if b.ib_len = iblock_cap then begin
      (* split into two half-full blocks, clearing the moved slots *)
      let half = iblock_cap / 2 in
      let arr = Array.make iblock_cap dummy_res in
      Array.blit b.ib_res half arr 0 (iblock_cap - half);
      let right =
        { ib_res = arr; ib_len = iblock_cap - half; ib_max_stop = neg_infinity }
      in
      Array.fill b.ib_res half (iblock_cap - half) dummy_res;
      b.ib_len <- half;
      iidx_recompute_max b;
      iidx_recompute_max right;
      iidx_insert_block t (bi + 1) right
    end
  end

(* remove the window physically equal to [r]; the caller has already
   proven presence in the port slots, so absence here means the index
   lost sync with the table — fail loudly (and unconditionally: this
   must survive [-noassert] builds). *)
let iidx_remove c t r =
  let found_block = ref (-1) and found_pos = ref (-1) in
  let scan_block j =
    let b = t.iblocks.(j) in
    let i = ref (bsearch_gt c res_start b.ib_res b.ib_len r.start - 1) in
    while !found_pos < 0 && !i >= 0 && b.ib_res.(!i).start = r.start do
      c.c_scans.v <- c.c_scans.v + 1;
      if b.ib_res.(!i) = r then begin
        found_block := j;
        found_pos := !i
      end
      else decr i
    done
  in
  (* the equal-start run can span block boundaries leftward *)
  let j = ref (iidx_locate c t r.start) in
  let continue_left () =
    !found_pos < 0 && !j >= 0
    &&
    let b = t.iblocks.(!j) in
    b.ib_len > 0 && b.ib_res.(b.ib_len - 1).start >= r.start
  in
  if !j >= 0 then scan_block !j;
  decr j;
  while continue_left () do
    scan_block !j;
    decr j
  done;
  if !found_pos < 0 then
    invalid_arg "Prt: interval index out of sync with the port slots";
  let b = t.iblocks.(!found_block) in
  Array.blit b.ib_res (!found_pos + 1) b.ib_res !found_pos
    (b.ib_len - !found_pos - 1);
  b.ib_len <- b.ib_len - 1;
  b.ib_res.(b.ib_len) <- dummy_res;
  if b.ib_len = 0 then begin
    Array.blit t.iblocks (!found_block + 1) t.iblocks !found_block
      (t.n_iblocks - !found_block - 1);
    t.n_iblocks <- t.n_iblocks - 1;
    t.iblocks.(t.n_iblocks) <- dummy_iblock
  end
  else if stop r = b.ib_max_stop then iidx_recompute_max b

let journal_push t r =
  let cap = Array.length t.journal in
  if t.n_journal = cap then begin
    let arr = Array.make (grow_cap cap) r in
    Array.blit t.journal 0 arr 0 t.n_journal;
    t.journal <- arr
  end;
  t.journal.(t.n_journal) <- r;
  t.n_journal <- t.n_journal + 1

let reserve t r =
  if r.length <= 0. then invalid_arg "Prt.reserve: non-positive length";
  if r.setup < 0. || r.setup > r.length then
    invalid_arg "Prt.reserve: setup outside [0, length]";
  if r.src < 0 || r.dst < 0 then invalid_arg "Prt.reserve: negative port";
  let c = counters () in
  let k_in = slot_insert c t (In r.src) r in
  (* the Out insert can still reject on its own overlap; undo the In
     insert so a failed reserve leaves the table exactly as it was *)
  (try ignore (slot_insert c t (Out r.dst) r : int)
   with e ->
     c.c_rollbacks.v <- c.c_rollbacks.v + 1;
     slot_remove c t (In r.src) k_in (stop r);
     raise e);
  (* both slots accepted: the window is definitely in, so the interval
     index can take it (the Out-conflict undo path above never touches
     the index) *)
  iidx_insert c t r;
  release_insert c t (stop r);
  t.n_res <- t.n_res + 1;
  journal_push t r;
  (match Hashtbl.find_opt t.owners r.coflow with
   | Some l -> l := r :: !l
   | None -> Hashtbl.add t.owners r.coflow (ref [ r ]));
  c.c_reservations.v <- c.c_reservations.v + 1

(* Re-admit a stored plan verbatim: all-or-nothing, and checked with
   [fits_exact]'s strict disjointness before any window lands. The
   check-all-then-reserve-all order matters: sibling windows of one
   plan may overlap each other by rounding dust (within
   [time_tolerance]), which [reserve] tolerates but [fits_exact] does
   not — checking each window against the table {e before} any sibling
   enters keeps the predicate equivalent to "the whole plan fits",
   where a per-window check-then-reserve interleaving would reject a
   plan whose dust-overlapping sibling was already admitted. *)
let splice_exact t rs =
  if List.for_all (fits_exact t) rs then begin
    List.iter (reserve t) rs;
    true
  end
  else false

(* --- removal / rollback ----------------------------------------------- *)

(* index of a window physically equal to [r] in the slot's start-sorted
   array, or -1. Equal starts are contiguous, so only that run is
   probed. *)
let slot_find c (s : slot) r =
  let i = ref (bsearch_gt c res_start s.res s.len r.start - 1) in
  let found = ref (-1) in
  while !found < 0 && !i >= 0 && s.res.(!i).start = r.start do
    c.c_scans.v <- c.c_scans.v + 1;
    if s.res.(!i) = r then found := !i else decr i
  done;
  !found

(* remove exactly one release-index entry equal to [v] *)
let release_remove c t v =
  let i = bsearch_gt c float_id t.releases t.n_releases v - 1 in
  assert (i >= 0 && t.releases.(i) = v);
  Array.blit t.releases (i + 1) t.releases i (t.n_releases - i - 1);
  t.n_releases <- t.n_releases - 1

let owner_remove t r =
  match Hashtbl.find_opt t.owners r.coflow with
  | None -> ()
  | Some l ->
    let rec drop = function
      | [] -> []
      | x :: tl -> if x = r then tl else x :: drop tl
    in
    (match drop !l with
     | [] -> Hashtbl.remove t.owners r.coflow
     | l' -> l := l')

let remove t r =
  let c = counters () in
  c.c_queries.v <- c.c_queries.v + 1;
  let s_in = find_slot t (In r.src) in
  let k = slot_find c s_in r in
  if k < 0 then false
  else begin
    slot_remove c t (In r.src) k (stop r);
    let k_out = slot_find c (find_slot t (Out r.dst)) r in
    assert (k_out >= 0);
    slot_remove c t (Out r.dst) k_out (stop r);
    iidx_remove c t r;
    release_remove c t (stop r);
    t.n_res <- t.n_res - 1;
    owner_remove t r;
    c.c_rollbacks.v <- c.c_rollbacks.v + 1;
    true
  end

let retract_coflow t id =
  match Hashtbl.find_opt t.owners id with
  | None -> 0
  | Some l ->
    let windows = !l in
    (* drop the bucket first so [remove]'s per-window owner upkeep is a
       no-op instead of O(|windows|) list surgery per window *)
    Hashtbl.remove t.owners id;
    List.iter (fun r -> ignore (remove t r : bool)) windows;
    List.length windows

type checkpoint = int

let checkpoint t = t.n_journal
let journal_length t = t.n_journal

let rollback t mark =
  if mark < 0 || mark > t.n_journal then
    invalid_arg "Prt.rollback: stale checkpoint";
  while t.n_journal > mark do
    t.n_journal <- t.n_journal - 1;
    (* remove-if-present: the entry may already be gone if its Coflow
       was retired through [retract_coflow] after the checkpoint *)
    ignore (remove t t.journal.(t.n_journal) : bool)
  done

let forget_history t =
  (* dropping the array (rather than zeroing [n_journal]) also unpins
     the recorded reservation records — the log otherwise keeps retired
     Coflows' windows reachable forever in a long-lived table *)
  t.journal <- [||];
  t.n_journal <- 0

(* --- traversal -------------------------------------------------------- *)

let port_reservations t p =
  let s = find_slot t p in
  Array.to_list (Array.sub s.res 0 s.len)

let all_reservations t =
  Hashtbl.fold
    (fun p s acc ->
      match p with
      | In _ ->
        let acc = ref acc in
        for i = s.len - 1 downto 0 do
          acc := s.res.(i) :: !acc
        done;
        !acc
      | Out _ -> acc)
    t.ports []
  |> List.sort (fun a b -> compare (a.start, a.src, a.dst) (b.start, b.src, b.dst))

(* all windows with [start <= instant < stop], answered from the
   interval index: binary-search the last block whose first window
   starts at or before [instant], then walk blocks leftward — a block
   whose cached [ib_max_stop] cannot reach [instant] is pruned in O(1),
   so the walk costs O(log n + answer-bearing blocks) instead of a scan
   over every port's array *)
let covering_at t instant =
  let c = counters () in
  c.c_queries.v <- c.c_queries.v + 1;
  let acc = ref [] in
  let bi = iidx_locate c t instant in
  for j = bi downto 0 do
    let b = t.iblocks.(j) in
    if b.ib_max_stop > instant then begin
      let hi =
        if j = bi then bsearch_gt c res_start b.ib_res b.ib_len instant - 1
        else b.ib_len - 1
      in
      for i = hi downto 0 do
        c.c_scans.v <- c.c_scans.v + 1;
        let r = b.ib_res.(i) in
        if stop r > instant then acc := r :: !acc
      done
    end
  done;
  !acc

let established_at t instant =
  covering_at t instant
  |> List.filter_map (fun r ->
         if r.start +. r.setup <= instant then Some (r.src, r.dst) else None)
  |> List.sort_uniq compare

(* deterministic physical order for slice execution: equal-start dust
   twins are insertion-order independent in the arrays, so callers that
   must iterate identically across differently-built tables sort on the
   full window identity *)
let physical_order a b =
  compare
    (a.start, a.src, a.dst, a.coflow, a.setup, a.length)
    (b.start, b.src, b.dst, b.coflow, b.setup, b.length)

let reservations_in t t0 t1 =
  let c = counters () in
  c.c_queries.v <- c.c_queries.v + 1;
  let acc = ref [] in
  let bi = iidx_locate c t t0 in
  (* windows starting at or before [t0] that still reach past it:
     leftward block walk with max-stop pruning, as in [covering_at] *)
  for j = bi downto 0 do
    let b = t.iblocks.(j) in
    if b.ib_max_stop > t0 then begin
      let hi =
        if j = bi then bsearch_gt c res_start b.ib_res b.ib_len t0 - 1
        else b.ib_len - 1
      in
      for i = hi downto 0 do
        c.c_scans.v <- c.c_scans.v + 1;
        let r = b.ib_res.(i) in
        if stop r > t0 then acc := r :: !acc
      done
    end
  done;
  (* windows opening inside the slice ([t0 < start < t1]): one forward
     walk in global start order from the first window past [t0] *)
  (try
     for j = max bi 0 to t.n_iblocks - 1 do
       let b = t.iblocks.(j) in
       let i0 = if j = bi then bsearch_gt c res_start b.ib_res b.ib_len t0 else 0 in
       for i = i0 to b.ib_len - 1 do
         c.c_scans.v <- c.c_scans.v + 1;
         let r = b.ib_res.(i) in
         if r.start >= t1 then raise Exit;
         acc := r :: !acc
       done
     done
   with Exit -> ());
  List.sort physical_order !acc

let ports_in_use t =
  Hashtbl.fold (fun p s acc -> if s.len = 0 then acc else p :: acc) t.ports []
  |> List.sort compare

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "[in.%d -> out.%d] c#%d start=%a setup=%a len=%a@,"
        r.src r.dst r.coflow Units.pp_time r.start Units.pp_time r.setup
        Units.pp_time r.length)
    (all_reservations t);
  Format.fprintf ppf "@]"

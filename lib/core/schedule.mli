(** Analysis of circuit schedules (reservation plans).

    A plan is a list of {!Prt.reservation}s. These helpers compute the
    quantities the evaluation reports — completion times, switching
    counts, bytes moved in a window — and render plans as text Gantt
    charts like the paper's Fig. 1c. *)

val finish_time : default:float -> Prt.reservation list -> float
(** Latest reservation stop, or [default] when the plan is empty. *)

val transmission_overlap : Prt.reservation -> t0:float -> t1:float -> float
(** Seconds of actual data transfer a reservation performs inside the
    window [[t0, t1)] — the overlap of its transmission phase
    [[start + setup, stop)] with the window. *)

val setup_overlap : Prt.reservation -> t0:float -> t1:float -> float
(** Seconds of reconfiguration a reservation pays inside the window
    [[t0, t1)] — the overlap of its setup phase
    [[start, start + setup)] with the window. The complement of
    {!transmission_overlap} over the reservation's span, so the two
    always sum to the reservation's overlap with the window. *)

val bytes_in_window :
  bandwidth:float -> t0:float -> t1:float -> Prt.reservation list -> float
(** Total bytes a plan transfers inside a window at full link rate per
    active circuit. *)

val switching_count : Prt.reservation list -> int
(** Number of circuit establishments (reservations paying a setup). *)

val coflow_reservations : Prt.t -> coflow:int -> Prt.reservation list
(** All reservations a PRT holds for one Coflow, sorted by start. *)

val total_setup_time : Prt.reservation list -> float
(** Seconds spent reconfiguring across the plan (sum of setups). *)

val duty_cycle : Prt.reservation list -> float
(** Fraction of reserved port-time actually transmitting:
    [sum transmission / sum length]. [1.] for an empty plan. *)

val check_port_constraints : Prt.reservation list -> (string, string) result
(** Verify the paper's port constraint (§2.1) independently of the PRT
    insertion checks: no two reservations overlap in time on a shared
    input or output port. Returns [Error msg] naming the first
    violation. Used by tests as an oracle over every scheduler. *)

val pp_gantt :
  ?width:int -> bandwidth:float -> Format.formatter -> Prt.reservation list -> unit
(** Render a plan as one timeline row per input port ([#] setup, [=]
    transmission, [.] idle), like the paper's Fig. 1. [width] is the
    number of character cells (default 72). *)

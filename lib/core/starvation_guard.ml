type config = { n_ports : int; t_work : float; tau : float }

(* Gated observability: one span per T (work) and per tau (guard)
   sub-interval, plus counters for the rotation's promotions — each
   starved Coflow actually served bytes by a guard-phase circuit
   counts as one promotion. *)
module Obs = Sunflow_obs

let m_work_phases = Obs.Registry.counter "starvation.work_phases"
let m_guard_phases = Obs.Registry.counter "starvation.guard_phases"
let m_promotions = Obs.Registry.counter "starvation.promotions"

let round_robin_assignment ~n_ports ~k =
  if n_ports <= 0 then invalid_arg "Starvation_guard: non-positive port count";
  let k = ((k mod n_ports) + n_ports) mod n_ports in
  List.init n_ports (fun i -> (i, (i + k) mod n_ports))

let guaranteed_service_period c =
  float_of_int c.n_ports *. (c.t_work +. c.tau)

let check c ~delta =
  if c.n_ports <= 0 then Error "n_ports must be positive"
  else if c.tau <= delta then Error "tau must exceed the reconfiguration delay"
  else if c.t_work < c.tau then Error "T must be at least tau"
  else Ok ()

type outcome = {
  finishes : (int * float) list;
  horizon : float;
}

type state = { coflow : Coflow.t; remaining : Demand.t }

let byte_eps = 1e-3

let run ?(policy = Inter.Shortest_first) ~delta ~bandwidth ~horizon
    ~prioritized ~starved c =
  (match check c ~delta with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Starvation_guard.run: " ^ msg));
  if horizon <= 0. then invalid_arg "Starvation_guard.run: non-positive horizon";
  let all = prioritized @ starved in
  List.iter
    (fun (co : Coflow.t) ->
      if Demand.max_port co.demand >= c.n_ports then
        invalid_arg "Starvation_guard.run: port outside the fabric")
    all;
  let prioritized_ids =
    List.map (fun (co : Coflow.t) -> co.Coflow.id) prioritized
  in
  let states =
    List.map
      (fun (co : Coflow.t) ->
        { coflow = co; remaining = Demand.copy co.demand })
      all
  in
  let finishes = ref [] in
  let finish_if_drained t st =
    if Demand.is_empty st.remaining
       && not (List.mem_assoc st.coflow.Coflow.id !finishes)
    then finishes := (st.coflow.Coflow.id, t) :: !finishes
  in
  let live () =
    List.filter (fun st -> not (Demand.is_empty st.remaining)) states
  in
  let obs = Obs.Control.enabled () in
  (* T sub-interval: run the priority scheduler for the prioritized
     Coflows only and execute its plan truncated to the window. *)
  let work_phase t0 t1 =
    if obs then begin
      Obs.Registry.incr m_work_phases;
      Obs.Tracer.begin_span ~cat:"guard" "starvation.work"
    end;
    let eligible =
      live ()
      |> List.filter (fun st -> List.mem st.coflow.Coflow.id prioritized_ids)
    in
    if eligible <> [] then begin
      let plan =
        Inter.schedule ~now:t0 ~policy ~delta ~bandwidth
          (List.map
             (fun st -> Coflow.with_demand st.coflow st.remaining)
             eligible)
      in
      (* A Coflow finishes at the latest instant any of its entries
         drains inside the window, not at the stop of whichever
         reservation the PRT iteration happens to visit last — that
         timestamp depended on iteration order. *)
      let drained_at = Hashtbl.create 8 in
      List.iter
        (fun (r : Prt.reservation) ->
          let seconds = Schedule.transmission_overlap r ~t0 ~t1 in
          if seconds > 0. then begin
            match
              List.find_opt (fun st -> st.coflow.Coflow.id = r.coflow) eligible
            with
            | Some st ->
              let want = Demand.get st.remaining r.src r.dst in
              Demand.drain st.remaining r.src r.dst (seconds *. bandwidth);
              if Demand.get st.remaining r.src r.dst <= byte_eps then
                Demand.set st.remaining r.src r.dst 0.;
              if want > 0. && Demand.get st.remaining r.src r.dst = 0. then begin
                let tx0 = Float.max (r.start +. r.setup) t0 in
                let at =
                  Float.min
                    (tx0 +. (want /. bandwidth))
                    (Float.min (Prt.stop r) t1)
                in
                let prev =
                  Option.value ~default:t0
                    (Hashtbl.find_opt drained_at r.coflow)
                in
                Hashtbl.replace drained_at r.coflow (Float.max prev at)
              end
            | None -> ()
          end)
        (Prt.all_reservations plan.Inter.prt);
      List.iter
        (fun st ->
          match Hashtbl.find_opt drained_at st.coflow.Coflow.id with
          | Some at -> finish_if_drained at st
          | None -> ())
        eligible
    end;
    if obs then Obs.Tracer.end_span ~cat:"guard" "starvation.work"
  in
  (* tau sub-interval: circuits of A_k are set up (paying delta) and
     all Coflows with demand on a circuit share its bandwidth
     equally — water-filled so no circuit time is wasted. *)
  let guard_phase t0 t1 k =
    if obs then begin
      Obs.Registry.incr m_guard_phases;
      Obs.Tracer.begin_span ~cat:"guard" "starvation.guard"
    end;
    let capacity = (t1 -. t0 -. delta) *. bandwidth in
    if capacity > 0. then
      List.iter
        (fun (i, j) ->
          let claimants =
            live () |> List.filter (fun st -> Demand.get st.remaining i j > 0.)
          in
          if obs then
            (* a starved Coflow reached by the rotation's circuit is a
               promotion: the guard serves it regardless of priority *)
            Obs.Registry.add m_promotions
              (List.length
                 (List.filter
                    (fun st ->
                      not (List.mem st.coflow.Coflow.id prioritized_ids))
                    claimants));
          let rec share cap = function
            | [] -> ()
            | claimants ->
              let fair = cap /. float_of_int (List.length claimants) in
              let spent = ref 0. in
              let rest =
                List.filter
                  (fun st ->
                    let want = Demand.get st.remaining i j in
                    let got = Float.min want fair in
                    Demand.drain st.remaining i j got;
                    if Demand.get st.remaining i j <= byte_eps then
                      Demand.set st.remaining i j 0.;
                    spent := !spent +. got;
                    finish_if_drained t1 st;
                    Demand.get st.remaining i j > 0.)
                  claimants
              in
              let cap' = cap -. !spent in
              if rest <> [] && cap' > byte_eps then share cap' rest
          in
          share capacity claimants)
        (round_robin_assignment ~n_ports:c.n_ports ~k);
    if obs then Obs.Tracer.end_span ~cat:"guard" "starvation.guard"
  in
  let period = c.t_work +. c.tau in
  let rec cycle t k =
    if t < horizon && live () <> [] then begin
      let t_mid = Float.min horizon (t +. c.t_work) in
      work_phase t t_mid;
      let t_end = Float.min horizon (t +. period) in
      if t_end > t_mid then guard_phase t_mid t_end k;
      cycle t_end (k + 1)
    end
  in
  cycle 0. 1;
  {
    finishes = List.sort (fun (a, _) (b, _) -> compare a b) !finishes;
    horizon;
  }

let finish_time ~default reservations =
  List.fold_left (fun acc r -> Float.max acc (Prt.stop r)) default reservations

let transmission_overlap (r : Prt.reservation) ~t0 ~t1 =
  let tx_start = r.start +. r.setup and tx_stop = Prt.stop r in
  Float.max 0. (Float.min t1 tx_stop -. Float.max t0 tx_start)

let setup_overlap (r : Prt.reservation) ~t0 ~t1 =
  let su_stop = Float.min (r.start +. r.setup) (Prt.stop r) in
  Float.max 0. (Float.min t1 su_stop -. Float.max t0 r.start)

let bytes_in_window ~bandwidth ~t0 ~t1 reservations =
  List.fold_left
    (fun acc r -> acc +. (bandwidth *. transmission_overlap r ~t0 ~t1))
    0. reservations

let switching_count reservations =
  List.fold_left (fun k (r : Prt.reservation) -> if r.setup > 0. then k + 1 else k) 0 reservations

let coflow_reservations prt ~coflow =
  Prt.all_reservations prt
  |> List.filter (fun (r : Prt.reservation) -> r.coflow = coflow)

let total_setup_time reservations =
  List.fold_left (fun acc (r : Prt.reservation) -> acc +. r.setup) 0. reservations

let duty_cycle reservations =
  let tx = List.fold_left (fun a r -> a +. Prt.transmission r) 0. reservations in
  let len =
    List.fold_left (fun a (r : Prt.reservation) -> a +. r.length) 0. reservations
  in
  if len = 0. then 1. else tx /. len

let check_port_constraints reservations =
  (* same nanosecond tolerance as Prt: boundaries produced by chained
     float sums may interleave by an ulp *)
  let overlap (a : Prt.reservation) (b : Prt.reservation) =
    Float.min (Prt.stop a) (Prt.stop b) -. Float.max a.start b.start > 1e-9
  in
  let violation =
    let rec scan = function
      | [] -> None
      | r :: rest ->
        let clash =
          List.find_opt
            (fun r' ->
              (r.Prt.src = r'.Prt.src || r.Prt.dst = r'.Prt.dst)
              && overlap r r')
            rest
        in
        (match clash with Some r' -> Some (r, r') | None -> scan rest)
    in
    scan reservations
  in
  match violation with
  | None -> Ok "port constraints satisfied"
  | Some (a, b) ->
    Error
      (Format.asprintf
         "overlap: [in.%d->out.%d] (%g, %g) vs [in.%d->out.%d] (%g, %g)" a.src
         a.dst a.start (Prt.stop a) b.src b.dst b.start (Prt.stop b))

let pp_gantt ?(width = 72) ~bandwidth:_ ppf reservations =
  match reservations with
  | [] -> Format.fprintf ppf "(empty schedule)"
  | _ ->
    let t0 =
      List.fold_left
        (fun a (r : Prt.reservation) -> Float.min a r.start)
        infinity reservations
    in
    let t1 = finish_time ~default:t0 reservations in
    let span = Float.max (t1 -. t0) 1e-12 in
    let cell t = int_of_float (Float.of_int width *. ((t -. t0) /. span)) in
    let srcs =
      List.sort_uniq compare
        (List.map (fun (r : Prt.reservation) -> r.src) reservations)
    in
    Format.fprintf ppf "@[<v>";
    List.iter
      (fun src ->
        let line = Bytes.make width '.' in
        List.iter
          (fun (r : Prt.reservation) ->
            if r.src = src then begin
              let a = min (width - 1) (cell r.start) in
              let s = min (width - 1) (cell (r.start +. r.setup)) in
              let b = min width (max (s + 1) (cell (Prt.stop r))) in
              for k = a to min (width - 1) (s - 1) do
                Bytes.set line k '#'
              done;
              for k = s to b - 1 do
                Bytes.set line k '='
              done
            end)
          reservations;
        Format.fprintf ppf "in.%-3d |%s|@," src (Bytes.to_string line))
      srcs;
    Format.fprintf ppf "@]"

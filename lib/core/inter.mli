(** Inter-Coflow scheduling (paper §4.2).

    The framework asks the operator for one thing only: a priority
    ordering over Coflows. The intra-Coflow scheduler is then applied
    to each Coflow in that order against a shared Port Reservation
    Table, so more-prioritised Coflows are never blocked by
    less-prioritised ones (their reservations are already in the table
    when lower-priority Coflows are considered — Fig. 2's example of C2
    shortening its reservation so as not to block C1). *)

(** How to translate a high-level resource-management policy into a
    priority ordering (paper §4.2, "Flexible Management Policies"). *)
type policy =
  | Fifo  (** arrival order — no Coflow jumps the queue *)
  | Shortest_first
      (** ascending packet-switched lower bound [T_L^p] of the current
          (remaining) demand — the shortest-Coflow-first policy the
          evaluation uses, mirroring Varys' SEBF *)
  | Priority_classes of (Coflow.t -> int)
      (** explicit classes, lower class served first; FIFO within a
          class (privileged vs regular users, stage ordering, ...) *)
  | Custom of (Coflow.t -> Coflow.t -> int)
      (** arbitrary comparator *)

val sort : policy -> bandwidth:float -> Coflow.t list -> Coflow.t list
(** Stable priority ordering of Coflows under a policy. Derived sort
    keys ([Shortest_first]'s packet lower bound, [Priority_classes]'s
    class) are computed once per Coflow, not per comparison. *)

val policy_name : policy -> string

type result = {
  prt : Prt.t;  (** the combined reservation table *)
  per_coflow : (int * Sunflow.result) list;
      (** intra-Coflow result for every input Coflow, in service order *)
  by_id : (int, Sunflow.result) Hashtbl.t;
      (** the same results keyed by Coflow id — O(1) {!finish_of} *)
}

val schedule :
  ?now:float ->
  ?order:Order.t ->
  ?established:(int * int) list ->
  ?plan_cache:Plan_cache.t ->
  policy:policy ->
  delta:float ->
  bandwidth:float ->
  Coflow.t list ->
  result
(** [schedule ~policy ~delta ~bandwidth coflows] plans service for all
    Coflows (their demands interpreted as remaining-at-[now]).
    [established] lists circuits physically up at [now]; any Coflow's
    first reservation on such a circuit starting exactly at [now] pays
    no reconfiguration delay. Coflows with empty demand get an empty
    plan finishing at [now]. [plan_cache] threads a {!Plan_cache}
    handle into every intra-Coflow [Sunflow.schedule] call; results
    are bit-identical with or without it. Raises [Invalid_argument]
    on duplicate Coflow ids — {!finish_of} keys on ids, so duplicates
    would silently shadow one another. *)

val finish_of : result -> int -> float option
(** Planned finish time of a Coflow by id. *)

(** {1 Incremental replanning}

    A persistent plan maintained across replay events. Non-preemption
    makes suffix-only rescheduling sound: a Coflow's reservations are
    a function of the table contents written by the Coflows sorting
    before it, so an arrival invalidates only the priority-order
    suffix from its insertion point on, and a finish invalidates
    nothing at all (the finished Coflow's windows all stop at or
    before [now], where no successor query ever looks).

    Semantics differ from calling {!schedule} at every event in two
    deliberate ways: priority keys are fixed at admission (computed
    from the Coflow's original demand, cached), and a retained
    Coflow's plan stays anchored at its last (re)scheduling instant
    instead of being re-derived from the remaining demand — which
    re-rounds every boundary at each event. The engine's bit-exact
    oracle is therefore its own [rebuild] mode, which makes the same
    decisions while reconstructing the table from scratch at every
    event instead of rolling back. *)

type engine

type pass_runner = { run_passes : 'a. (unit -> 'a) array -> 'a array }
(** Executor for the sharded engine's independent per-shard passes.
    Each thunk mutates only its own shard's table and entries, so a
    runner may execute them concurrently (one domain per pass); the
    default {!sequential_runner} runs them in order. Results must be
    returned positionally. *)

val sequential_runner : pass_runner

type shard_stats = {
  shard_steps : int;  (** scheduling events taken by the sharded path *)
  shard_conflicts : int;
      (** events resolved by the deterministic cross-shard pass (a
          dirty cross-shard Coflow, or an optimistic pass aborted) *)
  shard_rollbacks : int;
      (** optimistic shard passes whose work was rolled back *)
}

val engine :
  ?order:Order.t ->
  ?carry_circuits:bool ->
  ?rebuild:bool ->
  ?buckets:int ->
  ?bucket_base:float ->
  ?shards:int ->
  ?shard_block:int ->
  ?runner:pass_runner ->
  ?plan_cache:Plan_cache.t ->
  policy:policy ->
  delta:float ->
  bandwidth:float ->
  unit ->
  engine
(** A fresh engine with no admitted Coflows. [carry_circuits] mirrors
    [Circuit_sim.run]: with it off (all-stop) every event reschedules
    everything. [rebuild] selects the from-scratch oracle mode.
    [Custom] comparators get an [(arrival, id)] tiebreak appended, so
    they need not be total themselves.

    [buckets] (default [0] = off, the exact-order behaviour) coarsens
    the priority order into at most that many classes, FIFO within a
    class. For [Shortest_first] the classes are exponentially spaced:
    class 0 holds Coflows whose packet lower bound fits within one
    reconfiguration delay, and each further class covers keys another
    factor of [bucket_base] (default [4.], must be [> 1.]) longer —
    so a new arrival sorts at the {e end} of its class and invalidates
    only strictly lower classes' boundary conflicts instead of every
    Coflow with a marginally larger key. [Priority_classes] classes
    are clamped into [[0, buckets)]; [Fifo] and [Custom] have no
    numeric key and keep their exact order (one class). Retained plans
    in clean later classes are spliced back verbatim when their ports
    are still free, and re-derived only on conflict — see
    {!schedule_incremental}. Bucketing trades fidelity to the exact
    shortest-first order for replan locality; CCT drift against the
    exact order is measured (and gated) in the bench harness.
    Raises [Invalid_argument] if [buckets < 0] or [bucket_base <= 1.].

    [shards] (default [1] = the unsharded engine, byte-for-byte the
    previous behaviour) stripes the fabric's ports over that many
    shards in contiguous [shard_block]-wide blocks (default [1];
    set it to the pod size to align shards with pods). Each shard owns
    its own reservation table and entry vector; an event replans each
    dirty shard independently — through [runner], so a domain pool can
    execute the passes concurrently — and falls back to one
    deterministic global pass whenever a cross-shard Coflow is
    involved, after rolling the optimistic passes back. Decisions are
    bit-identical to [shards = 1] for every shard count; [rebuild]
    coerces [shards] to [1] (the from-scratch oracle is inherently
    global). Raises [Invalid_argument] if [shards < 1] or
    [shard_block < 1].

    [plan_cache] threads a {!Plan_cache} handle into the
    [Sunflow.schedule] calls the engine makes on the calling domain:
    every unsharded stepping mode, the rebuild oracle, the sharded
    cross-shard resolution pass, and optimistic shard passes that run
    sequentially (the default {!sequential_runner}, or a round with a
    single dirty shard). A round that dispatches several passes
    through a non-default [runner] — which may execute them on
    separate domains — runs those passes uncached: the handle is
    single-domain mutable state and must not be shared across domains.
    Decisions are bit-identical with or without the cache; a handle
    shared across repeated replays of the same workload turns the
    repeated replans into verbatim window replays. Default: no
    cache. *)

val schedule_incremental :
  engine ->
  now:float ->
  arrivals:Coflow.t list ->
  finished:int list ->
  remaining:(int -> Demand.t) ->
  unit
(** Advance the plan to the event at [now]: retire [finished] (their
    reservations are withdrawn with no rescheduling), admit [arrivals]
    at their priority positions, and re-run [Sunflow.schedule] — at
    [now], on the remaining demand reported by [remaining] — for
    exactly the Coflows whose plans the event invalidated: everything
    from the first arrival's position on, plus any Coflow whose
    reservation was mid-reconfiguration at [now]. Under a bucketed
    order ([buckets > 0]) the repair is damage-bounded: a dirty Coflow
    evicts later-priority windows only from the ports its own demand
    touches before re-running, an evicted clean Coflow re-admits its
    evicted windows verbatim when they still fit (falling back to a
    full re-run only if a changed upstream plan now occupies one of
    its ports), and a clean Coflow nobody evicted keeps its plan at
    zero cost. Raises
    [Invalid_argument] on an unknown finished id or a duplicate
    arrival id. O(changed Coflows), not O(active Coflows), per event
    when circuits carry. *)

val engine_size : engine -> int
(** Number of Coflows currently admitted and unfinished. *)

val engine_established : engine -> (int * int) list
(** Circuits physically transmitting at the last step's [now]
    (deduplicated, sorted) — the carry-over set that step's
    rescheduling was allowed to reuse delta-free. *)

val engine_finish : engine -> int -> float option
(** The stored plan's finish for an admitted Coflow. *)

val engine_min_finish : engine -> float option
(** Earliest stored finish over all admitted Coflows — the replay
    loop's next completion event. [None] when no Coflow is admitted
    (an idle engine has no completion to wake for; returning a float
    here once let the event loop schedule a wake at [infinity]). *)

val engine_rescheduled : engine -> int
(** Cumulative count of suffix entries re-run through
    [Sunflow.schedule] across all steps — the engine's real work. *)

val engine_spliced : engine -> int
(** Cumulative count of suffix entries whose retained plan survived a
    step without rescheduling (bucketed orders only) — untouched by
    any eviction, or evicted windows re-admitted verbatim. No
    scheduling work either way. Under [shards > 1] entries ahead of a
    shard's first dirty position are skipped outright rather than
    counted as spliced, so the tally is not comparable across shard
    counts (the plans are). *)

val engine_shards : engine -> int
(** The effective shard count ([1] for unsharded and rebuild engines). *)

val engine_journal_length : engine -> int
(** Total undo-log length across the engine's reservation tables.
    Every steady-state stepping mode drops its log at the end of each
    step (the exact order clears invalidated suffixes through
    {!Prt.retract_coflow}, the bucketed and sharded repairs never roll
    back), so between steps this is [0] for incremental engines and
    bounded by one step's reserves during one — the serving loop's
    soak test pins that down. The rebuild oracle reports its current
    from-scratch table's log, bounded by the active plan. *)

val engine_shard_stats : engine -> shard_stats
(** Cumulative sharded-path statistics; all zero when [shards = 1]. *)

val engine_slice : engine -> t0:float -> t1:float -> Prt.reservation list
(** The persistent plan's windows overlapping [[t0, t1)], straddlers
    clipped to start at [t0] (with the already-elapsed setup removed),
    sorted by full window identity. This is what executes during the
    slice. *)

val engine_view : engine -> now:float -> remaining:(int -> Demand.t) -> result
(** Materialise the persistent plan as the {!result} a from-scratch
    replan at [now] would describe: windows at or before [now] and
    windows of flows with no remaining demand dropped, straddlers
    clipped, per-Coflow finish/setups recomputed over the kept
    windows. Built for validation hooks; O(active plan). *)

(* Footprint-epoch plan cache for [Sunflow.schedule].

   An entry remembers one schedule call: a normalized key (everything
   the kernel's output depends on besides the table), the footprint —
   the ports the plan's demand can touch — with each port's [Prt.mark]
   snapshotted {e before} the kernel ran, and the plan itself. A later
   call with the same key replays the stored reservations verbatim
   (one [Prt.reserve] per window — no probe loop, no wake heap)
   whenever every footprint port's mark still equals the snapshot:
   by footprint-locality the kernel reads and writes only those ports,
   so unchanged marks mean the kernel would recompute exactly the
   stored plan.

   The key is normalized past the caller-facing parameters: bandwidth
   and quantum are already folded into the per-flow remaining
   processing times, and the order is folded into the sequence of the
   pending triples (the kernel consumes flows in consideration order),
   so two calls that would drive the kernel identically share an
   entry regardless of how they were phrased.

   Capacity is bounded in stored windows (plus one unit per entry so
   empty plans are bounded too) with FIFO eviction — the access
   pattern this cache serves is whole-trace re-replays, where the
   oldest entries are exactly the ones reused first, so anything
   smarter than FIFO would have to be measured against thrash. *)

module Registry = Sunflow_obs.Registry

let m_hits = Registry.counter "sunflow.cache.hits"
let m_misses = Registry.counter "sunflow.cache.misses"
let m_invalidations = Registry.counter "sunflow.cache.invalidations"
let m_replayed = Registry.counter "sunflow.cache.replayed_windows"

type key = {
  k_coflow : int;
  k_now : int64;  (* IEEE bits: exact equality, no rounding *)
  k_delta : int64;
  k_src : int array;  (* pending flows in consideration order *)
  k_dst : int array;
  k_rem : int64 array;  (* remaining processing seconds, IEEE bits *)
  k_est : bool array;  (* circuit already established at [now]? *)
}

let key ~coflow ~now ~delta ~src ~dst ~rem ~est =
  {
    k_coflow = coflow;
    k_now = Int64.bits_of_float now;
    k_delta = Int64.bits_of_float delta;
    k_src = src;
    k_dst = dst;
    k_rem = Array.map Int64.bits_of_float rem;
    k_est = est;
  }

type plan = {
  p_reservations : Prt.reservation list;  (* creation order *)
  p_finish : float;
  p_setups : int;
}

type entry = {
  e_ports : Prt.port array;  (* footprint, sorted *)
  e_marks : (int * int * int) array;  (* [Prt.mark] per port, pre-kernel *)
  e_plan : plan;
  e_stamp : int;  (* insertion stamp, distinguishes FIFO ghosts *)
  e_cost : int;  (* 1 + stored windows *)
}

type stats = {
  hits : int;
  misses : int;
  invalidations : int;
  replayed_windows : int;
  entries : int;
  windows : int;
}

type t = {
  tbl : (key, entry) Hashtbl.t;
  fifo : (key * int) Queue.t;
  max_cost : int;
  mutable stamp : int;
  mutable n_cost : int;
  mutable s_hits : int;
  mutable s_misses : int;
  mutable s_invalidations : int;
  mutable s_replayed : int;
}

let create ?(max_windows = 2_000_000) () =
  if max_windows <= 0 then invalid_arg "Plan_cache.create: max_windows <= 0";
  {
    tbl = Hashtbl.create 1024;
    fifo = Queue.create ();
    max_cost = max_windows;
    stamp = 0;
    n_cost = 0;
    s_hits = 0;
    s_misses = 0;
    s_invalidations = 0;
    s_replayed = 0;
  }

let stats t =
  {
    hits = t.s_hits;
    misses = t.s_misses;
    invalidations = t.s_invalidations;
    replayed_windows = t.s_replayed;
    entries = Hashtbl.length t.tbl;
    windows = t.n_cost - Hashtbl.length t.tbl;
  }

let clear t =
  Hashtbl.reset t.tbl;
  Queue.clear t.fifo;
  t.n_cost <- 0

let marks_valid prt e =
  let n = Array.length e.e_ports in
  let rec go i =
    i >= n || (Prt.mark prt e.e_ports.(i) = e.e_marks.(i) && go (i + 1))
  in
  go 0

let count_miss t =
  t.s_misses <- t.s_misses + 1;
  if Sunflow_obs.Control.enabled () then Registry.incr m_misses

(* Lookup + verbatim replay in one step, so a hit is only counted once
   the stored windows are actually back in the table. The replay is
   guarded by a checkpoint: marks pin the footprint content up to a
   63-bit hash collision, so a window failing to land is astronomically
   unlikely — but if it happens the table is restored and the call
   falls through to the kernel (a miss), never corrupting state. *)
let find_and_replay t prt k =
  match Hashtbl.find_opt t.tbl k with
  | None ->
    count_miss t;
    None
  | Some e ->
    if not (marks_valid prt e) then begin
      t.s_invalidations <- t.s_invalidations + 1;
      if Sunflow_obs.Control.enabled () then Registry.incr m_invalidations;
      count_miss t;
      None
    end
    else begin
      let cp = Prt.checkpoint prt in
      match List.iter (Prt.reserve prt) e.e_plan.p_reservations with
      | () ->
        let w = e.e_cost - 1 in
        t.s_hits <- t.s_hits + 1;
        t.s_replayed <- t.s_replayed + w;
        if Sunflow_obs.Control.enabled () then begin
          Registry.incr m_hits;
          Registry.add m_replayed w
        end;
        Some e.e_plan
      | exception Invalid_argument _ ->
        Prt.rollback prt cp;
        count_miss t;
        None
    end

let evict t =
  while t.n_cost > t.max_cost && not (Queue.is_empty t.fifo) do
    let k, stamp = Queue.pop t.fifo in
    match Hashtbl.find_opt t.tbl k with
    | Some e when e.e_stamp = stamp ->
      Hashtbl.remove t.tbl k;
      t.n_cost <- t.n_cost - e.e_cost
    | _ -> ()  (* ghost: the entry was replaced by a newer store *)
  done

let store t k ~ports ~marks plan =
  let cost = 1 + List.length plan.p_reservations in
  (match Hashtbl.find_opt t.tbl k with
   | Some old ->
     t.n_cost <- t.n_cost - old.e_cost;
     Hashtbl.remove t.tbl k
   | None -> ());
  t.stamp <- t.stamp + 1;
  let e =
    {
      e_ports = ports;
      e_marks = marks;
      e_plan = plan;
      e_stamp = t.stamp;
      e_cost = cost;
    }
  in
  Hashtbl.replace t.tbl k e;
  Queue.push (k, t.stamp) t.fifo;
  t.n_cost <- t.n_cost + cost;
  evict t

type policy =
  | Fifo
  | Shortest_first
  | Priority_classes of (Coflow.t -> int)
  | Custom of (Coflow.t -> Coflow.t -> int)

let sort policy ~bandwidth coflows =
  match policy with
  | Fifo -> List.stable_sort Coflow.compare_arrival coflows
  | Shortest_first ->
    (* decorate-sort-undecorate: the packet lower bound walks the whole
       demand matrix, so compute it once per Coflow rather than twice
       per comparison *)
    coflows
    |> List.map (fun c -> (Bounds.packet_lower ~bandwidth c.Coflow.demand, c))
    |> List.stable_sort (fun ((ta : float), a) (tb, b) ->
           match compare ta tb with 0 -> Coflow.compare_arrival a b | c -> c)
    |> List.map snd
  | Priority_classes class_of ->
    coflows
    |> List.map (fun c -> (class_of c, c))
    |> List.stable_sort (fun ((ka : int), a) (kb, b) ->
           match compare ka kb with 0 -> Coflow.compare_arrival a b | c -> c)
    |> List.map snd
  | Custom cmp -> List.stable_sort cmp coflows

let policy_name = function
  | Fifo -> "fifo"
  | Shortest_first -> "shortest-coflow-first"
  | Priority_classes _ -> "priority-classes"
  | Custom _ -> "custom"

type result = {
  prt : Prt.t;
  per_coflow : (int * Sunflow.result) list;
  by_id : (int, Sunflow.result) Hashtbl.t;
}

let make_result prt per_coflow =
  let by_id = Hashtbl.create (max 16 (List.length per_coflow)) in
  List.iter (fun (id, r) -> Hashtbl.replace by_id id r) per_coflow;
  { prt; per_coflow; by_id }

module Obs = Sunflow_obs

let m_rounds = Obs.Registry.counter "inter.rounds"
let h_batch = Obs.Registry.histogram "inter.coflows_per_round"

let schedule ?(now = 0.) ?(order = Order.Ordered_port) ?(established = [])
    ?plan_cache ~policy ~delta ~bandwidth coflows =
  (* [finish_of] keys the result on Coflow ids, so duplicates would
     silently shadow one another — reject them like Circuit_sim.run *)
  let ids = List.map (fun c -> c.Coflow.id) coflows in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Inter.schedule: duplicate Coflow ids";
  let obs = Obs.Control.enabled () in
  if obs then begin
    Obs.Registry.incr m_rounds;
    Obs.Registry.observe h_batch (float_of_int (List.length coflows));
    Obs.Tracer.begin_span ~cat:"core" "inter.schedule"
  end;
  let prt = Prt.create () in
  let established_set = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace established_set c ()) established;
  let is_established c = Hashtbl.mem established_set c in
  let ordered =
    if obs then
      Obs.Tracer.with_span ~cat:"core" "inter.sort" (fun () ->
          sort policy ~bandwidth coflows)
    else sort policy ~bandwidth coflows
  in
  let per_coflow =
    List.map
      (fun c ->
        let r =
          Sunflow.schedule ~prt ?cache:plan_cache ~now ~order
            ~established:is_established ~delta ~bandwidth c
        in
        (c.Coflow.id, r))
      ordered
  in
  if obs then Obs.Tracer.end_span ~cat:"core" "inter.schedule";
  make_result prt per_coflow

let finish_of result id =
  Hashtbl.find_opt result.by_id id
  |> Option.map (fun (r : Sunflow.result) -> r.finish)

(* --- incremental replanning engine ------------------------------------

   Keeps a persistent plan across replay events instead of re-running
   every active Coflow through [Sunflow.schedule] at each one.
   Soundness rests on non-preemption: a Coflow's reservations depend
   only on the table contents written by Coflows sorting before it, so
   an arrival invalidates exactly the suffix of the priority order at
   or after its insertion point, and a finish invalidates nothing (its
   windows all stop at or before the finish instant, and every table
   query the suffix makes is a strict-greater successor search at or
   after it — removal is invisible).

   Priority keys are fixed at admission (the Coflow's original demand),
   whereas [schedule] re-keys [Shortest_first] on remaining demand at
   every event; the engine's plans are anchored at each Coflow's last
   (re)scheduling instant rather than recomputed from the current
   remaining demand. Both are faithful Sunflow semantics, but they
   round differently at the ulp level, so the engine's oracle is its
   own [rebuild] mode — same decisions recomputed from a fresh table
   every event — not [schedule]. *)

type entry = {
  e_coflow : Coflow.t;  (* original record: fixed priority-key inputs *)
  e_key : float;  (* cached priority key (policy-dependent) *)
  e_bucket : int;  (* quantized priority class; 0 when buckets are off *)
  e_shards : int array;
      (* sorted distinct shards of the original demand footprint;
         [[||]] in unsharded engines (never consulted there) *)
  mutable e_plan : Sunflow.result;
}

(* a sorted vector of entries — the same layout as [g_entries], one per
   shard plus one for cross-shard Coflows, so a shard pass walks only
   its own entries *)
type evec = { mutable v_arr : entry array; mutable v_n : int }

type pass_runner = { run_passes : 'a. (unit -> 'a) array -> 'a array }

let sequential_runner = { run_passes = (fun fs -> Array.map (fun f -> f ()) fs) }

type engine = {
  g_policy : policy;
  g_order : Order.t;
  g_delta : float;
  g_bandwidth : float;
  g_carry : bool;
  g_rebuild : bool;
  g_cache : Plan_cache.t option;  (* plan cache threaded to every Sunflow call *)
  g_buckets : int;  (* 0 = exact order (buckets off) *)
  g_bucket_base : float;
  g_cmp : entry -> entry -> int;
  mutable g_entries : entry array;  (* active Coflows in service order *)
  mutable g_n : int;
  mutable g_prt : Prt.t;
  mutable g_established : (int * int) list;
  g_index : (int, entry) Hashtbl.t;
  mutable g_rescheduled : int;  (* suffix entries re-run through Sunflow *)
  mutable g_spliced : int;  (* suffix entries whose stored plan was kept *)
  (* --- sharded mode (g_shards > 1) --- *)
  g_shards : int;  (* port-group shard count; 1 = unsharded *)
  g_shard_block : int;  (* contiguous ports per shard stripe *)
  g_runner : pass_runner;  (* executes independent shard passes *)
  g_sprt : Prt.t array;  (* per-shard tables; [[||]] when unsharded *)
  g_slocal : evec array;  (* per-shard single-shard entries *)
  g_scross : evec;  (* entries whose footprint spans shards *)
  g_smin : float array;  (* cached min finish per vec; slot [g_shards] = cross *)
  g_smin_stale : bool array;
  mutable g_ssteps : int;  (* sharded scheduling events *)
  mutable g_sconflicts : int;  (* events resolved by the cross-shard pass *)
  mutable g_srollbacks : int;  (* optimistic shard passes rolled back *)
}

let entry_key policy ~bandwidth c =
  match policy with
  | Fifo | Custom _ -> 0.
  | Shortest_first -> Bounds.packet_lower ~bandwidth c.Coflow.demand
  | Priority_classes class_of -> float_of_int (class_of c)

(* quantize a priority key into one of [buckets] classes. For
   [Shortest_first] the classes are exponentially spaced in units of
   the reconfiguration delay: coflows that finish within one delta are
   all "short" (class 0) and a coflow [base] times longer moves one
   class down — the D-CLAS-style coarsening that keeps an arrival from
   outranking everything with a marginally larger key. For
   [Priority_classes] the operator's class is clamped into range.
   [Fifo]/[Custom] have no numeric key to quantize: one class. *)
let bucket_of ~policy ~buckets ~bucket_base ~delta key =
  if buckets <= 0 then 0
  else
    match policy with
    | Fifo | Custom _ -> 0
    | Priority_classes _ ->
      let k = int_of_float key in
      if k < 0 then 0 else if k >= buckets then buckets - 1 else k
    | Shortest_first ->
      let unit = if delta > 0. then delta else 1e-3 in
      if key <= unit then 0
      else
        let b =
          1 + int_of_float (Float.log (key /. unit) /. Float.log bucket_base)
        in
        if b >= buckets then buckets - 1 else b

(* total order: every policy comparator falls back to (arrival, id), so
   distinct Coflows never compare equal and binary search finds exact
   positions. [Custom] comparators get the same tiebreak appended.
   With buckets on, key-ordered policies compare the quantized class
   first and are FIFO within it — a new arrival then sorts at the END
   of its class (its arrival is the latest), so it cannot dirty
   retained same-class plans. *)
let entry_cmp ~buckets policy =
  match policy with
  | Fifo -> fun a b -> Coflow.compare_arrival a.e_coflow b.e_coflow
  | (Shortest_first | Priority_classes _) when buckets > 0 ->
    fun a b ->
      (match compare a.e_bucket b.e_bucket with
      | 0 -> Coflow.compare_arrival a.e_coflow b.e_coflow
      | c -> c)
  | Shortest_first | Priority_classes _ ->
    fun a b ->
      (match compare a.e_key b.e_key with
      | 0 -> Coflow.compare_arrival a.e_coflow b.e_coflow
      | c -> c)
  | Custom cmp ->
    fun a b ->
      (match cmp a.e_coflow b.e_coflow with
      | 0 -> Coflow.compare_arrival a.e_coflow b.e_coflow
      | c -> c)

let evec_make () = { v_arr = [||]; v_n = 0 }

let engine ?(order = Order.Ordered_port) ?(carry_circuits = true)
    ?(rebuild = false) ?(buckets = 0) ?(bucket_base = 4.) ?(shards = 1)
    ?(shard_block = 1) ?(runner = sequential_runner) ?plan_cache ~policy ~delta
    ~bandwidth () =
  if buckets < 0 then invalid_arg "Inter.engine: negative bucket count";
  if bucket_base <= 1. then invalid_arg "Inter.engine: bucket_base must be > 1";
  if shards < 1 then invalid_arg "Inter.engine: shards must be >= 1";
  if shard_block < 1 then invalid_arg "Inter.engine: shard_block must be >= 1";
  (* rebuild is the inherently global from-scratch oracle: coerce it to
     one shard so [replay_equiv] always compares a sharded incremental
     run against the unsharded decision procedure *)
  let shards = if rebuild then 1 else shards in
  {
    g_policy = policy;
    g_order = order;
    g_delta = delta;
    g_bandwidth = bandwidth;
    g_carry = carry_circuits;
    g_rebuild = rebuild;
    g_cache = plan_cache;
    g_buckets = buckets;
    g_bucket_base = bucket_base;
    g_cmp = entry_cmp ~buckets policy;
    g_entries = [||];
    g_n = 0;
    g_prt = Prt.create ();
    g_established = [];
    g_index = Hashtbl.create 64;
    g_rescheduled = 0;
    g_spliced = 0;
    g_shards = shards;
    g_shard_block = shard_block;
    g_runner = runner;
    g_sprt =
      (if shards > 1 then Array.init shards (fun _ -> Prt.create ()) else [||]);
    g_slocal =
      (if shards > 1 then Array.init shards (fun _ -> evec_make ()) else [||]);
    g_scross = evec_make ();
    g_smin = Array.make (shards + 1) infinity;
    g_smin_stale = Array.make (shards + 1) true;
    g_ssteps = 0;
    g_sconflicts = 0;
    g_srollbacks = 0;
  }

(* filler for unused [g_entries] slots, so spare capacity and vacated
   positions never pin a retired Coflow (and its demand matrix) against
   the GC. Lazy because building it needs a Coflow. *)
let dummy_entry =
  lazy
    {
      e_coflow = Coflow.make ~id:min_int ~arrival:0. (Demand.create ());
      e_key = neg_infinity;
      e_bucket = 0;
      e_shards = [||];
      e_plan = { Sunflow.reservations = []; finish = neg_infinity; setups = 0 };
    }

(* first index whose entry sorts at or after [e] *)
let lower_bound g e =
  let lo = ref 0 and hi = ref g.g_n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if g.g_cmp g.g_entries.(mid) e < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let insert_entry g e =
  let k = lower_bound g e in
  let cap = Array.length g.g_entries in
  if g.g_n = cap then begin
    let arr = Array.make (max 8 (2 * cap)) (Lazy.force dummy_entry) in
    Array.blit g.g_entries 0 arr 0 g.g_n;
    g.g_entries <- arr
  end;
  Array.blit g.g_entries k g.g_entries (k + 1) (g.g_n - k);
  g.g_entries.(k) <- e;
  g.g_n <- g.g_n + 1

let remove_entry g e =
  let k = lower_bound g e in
  (* unconditional (must survive [-noassert]): an inconsistent [Custom]
     comparator — one whose answers changed since this entry was
     inserted — sends the binary search to the wrong position, and a
     blind blit from there would silently corrupt the service order *)
  if not (k < g.g_n && g.g_entries.(k) == e) then
    invalid_arg
      "Inter.remove_entry: entry not found at its ordered position \
       (inconsistent comparator?)";
  Array.blit g.g_entries (k + 1) g.g_entries k (g.g_n - k - 1);
  g.g_n <- g.g_n - 1;
  (* clear the vacated slot — same GC-pinning concern as growth *)
  g.g_entries.(g.g_n) <- Lazy.force dummy_entry

(* the same ordered insert/remove over a shard's entry vector *)
let evec_lower cmp v e =
  let lo = ref 0 and hi = ref v.v_n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp v.v_arr.(mid) e < 0 then lo := mid + 1 else hi := mid
  done;
  !lo

let evec_insert cmp v e =
  let k = evec_lower cmp v e in
  let cap = Array.length v.v_arr in
  if v.v_n = cap then begin
    let arr = Array.make (max 8 (2 * cap)) (Lazy.force dummy_entry) in
    Array.blit v.v_arr 0 arr 0 v.v_n;
    v.v_arr <- arr
  end;
  Array.blit v.v_arr k v.v_arr (k + 1) (v.v_n - k);
  v.v_arr.(k) <- e;
  v.v_n <- v.v_n + 1

let evec_remove cmp v e =
  let k = evec_lower cmp v e in
  if not (k < v.v_n && v.v_arr.(k) == e) then
    invalid_arg
      "Inter.evec_remove: entry not found at its ordered position \
       (inconsistent comparator?)";
  Array.blit v.v_arr (k + 1) v.v_arr k (v.v_n - k - 1);
  v.v_n <- v.v_n - 1;
  v.v_arr.(v.v_n) <- Lazy.force dummy_entry

(* contiguous [shard_block]-wide port stripes, round-robin over shards —
   pod-aligned when [shard_block] matches the pod size *)
let shard_of g p = p / g.g_shard_block mod g.g_shards

(* distinct shards of a Coflow's original demand footprint, sorted.
   Fixed at admission like the priority key: remaining demand only ever
   shrinks, so every window the Coflow will ever reserve stays inside
   this set. An empty demand pins the (instantly complete) Coflow to
   shard 0. *)
let coflow_shards g c =
  let d = c.Coflow.demand in
  let ss =
    List.rev_append
      (List.map (shard_of g) (Demand.senders d))
      (List.map (shard_of g) (Demand.receivers d))
    |> List.sort_uniq compare
  in
  match ss with [] -> [| 0 |] | l -> Array.of_list l

let entry_vec g e =
  if Array.length e.e_shards > 1 then (g.g_scross, g.g_shards)
  else (g.g_slocal.(e.e_shards.(0)), e.e_shards.(0))

let refresh_smin g i v =
  if g.g_smin_stale.(i) then begin
    let m = ref infinity in
    for k = 0 to v.v_n - 1 do
      m := Float.min !m v.v_arr.(k).e_plan.Sunflow.finish
    done;
    g.g_smin.(i) <- !m;
    g.g_smin_stale.(i) <- false
  end

let engine_size g = g.g_n
let engine_established g = g.g_established

let engine_finish g id =
  match Hashtbl.find_opt g.g_index id with
  | Some e -> Some e.e_plan.Sunflow.finish
  | None -> None

let engine_min_finish g =
  if g.g_n = 0 then None
  else if g.g_shards > 1 then begin
    (* fold the cached per-vec minima instead of walking every entry;
       [Float.min] is exact, so the value is the unsharded one *)
    for s = 0 to g.g_shards - 1 do
      refresh_smin g s g.g_slocal.(s)
    done;
    refresh_smin g g.g_shards g.g_scross;
    let m = ref infinity in
    Array.iter (fun v -> m := Float.min !m v) g.g_smin;
    Some !m
  end
  else begin
    let m = ref g.g_entries.(0).e_plan.Sunflow.finish in
    for i = 1 to g.g_n - 1 do
      m := Float.min !m g.g_entries.(i).e_plan.Sunflow.finish
    done;
    Some !m
  end

let engine_rescheduled g = g.g_rescheduled
let engine_spliced g = g.g_spliced
let engine_shards g = g.g_shards

let engine_journal_length g =
  if g.g_shards > 1 then
    Array.fold_left (fun acc p -> acc + Prt.journal_length p) 0 g.g_sprt
  else Prt.journal_length g.g_prt

type shard_stats = {
  shard_steps : int;
  shard_conflicts : int;
  shard_rollbacks : int;
}

let engine_shard_stats g =
  {
    shard_steps = g.g_ssteps;
    shard_conflicts = g.g_sconflicts;
    shard_rollbacks = g.g_srollbacks;
  }

let m_steps = Obs.Registry.counter "inter.incremental_steps"
let m_straddlers = Obs.Registry.counter "inter.dirty_straddlers"
let m_cascades = Obs.Registry.counter "inter.repair_cascades"
let m_sh_conflicts = Obs.Registry.counter "sim.shard.conflicts"
let m_sh_rollbacks = Obs.Registry.counter "sim.shard.rollbacks"
let m_sh_dirty = Obs.Registry.counter "inter.shard.dirty_shards"
let h_sh_rollback = Obs.Registry.histogram "sim.shard.rollback_s"

let step_unsharded g ~now ~arrivals ~finished ~remaining =
  let obs = Obs.Control.enabled () in
  if obs then begin
    Obs.Registry.incr m_rounds;
    Obs.Registry.incr m_steps;
    Obs.Tracer.begin_span ~cat:"core" "inter.step"
  end;
  (* 1. retire finished Coflows. Every window of a finished Coflow
     stops at or before its recorded finish <= now, and every table
     query made on behalf of the remaining Coflows is a strict-greater
     successor search at an instant >= now, so the removal is invisible
     to them: no rescheduling. *)
  List.iter
    (fun id ->
      match Hashtbl.find_opt g.g_index id with
      | None -> invalid_arg "Inter.schedule_incremental: unknown finished id"
      | Some e ->
        remove_entry g e;
        Hashtbl.remove g.g_index id;
        if not g.g_rebuild then ignore (Prt.retract_coflow g.g_prt id : int))
    finished;
  (* 2. admit arrivals at their priority positions *)
  let dirty = Hashtbl.create 8 in
  let arrived = Hashtbl.create 8 in
  List.iter
    (fun c ->
      if Hashtbl.mem g.g_index c.Coflow.id then
        invalid_arg "Inter.schedule_incremental: duplicate Coflow id";
      let key = entry_key g.g_policy ~bandwidth:g.g_bandwidth c in
      let e =
        {
          e_coflow = c;
          e_key = key;
          e_bucket =
            bucket_of ~policy:g.g_policy ~buckets:g.g_buckets
              ~bucket_base:g.g_bucket_base ~delta:g.g_delta key;
          e_shards = [||];
          e_plan = { Sunflow.reservations = []; finish = now; setups = 0 };
        }
      in
      insert_entry g e;
      Hashtbl.replace g.g_index c.Coflow.id e;
      Hashtbl.replace arrived c.Coflow.id ();
      Hashtbl.replace dirty c.Coflow.id ())
    arrivals;
  (* 3. further dirty sources. Without carry-over every event restarts
     every circuit (all-stop), so everything is dirty. *)
  if not g.g_carry then
    for i = 0 to g.g_n - 1 do
      Hashtbl.replace dirty g.g_entries.(i).e_coflow.Coflow.id ()
    done;
  (* circuits physically up at [now], read before any rollback (a
     rolled-back Coflow's transmitting circuit is still up, and its
     replacement plan may carry it delta-free). Windows of retired
     Coflows are filtered out in both modes: [rebuild] keeps them in
     its stale table, the incremental path has already retracted them. *)
  let covering =
    List.filter
      (fun r -> Hashtbl.mem g.g_index r.Prt.coflow)
      (Prt.covering_at g.g_prt now)
  in
  g.g_established <-
    (if g.g_carry then
       covering
       |> List.filter_map (fun r ->
              if r.Prt.start +. r.Prt.setup <= now then
                Some (r.Prt.src, r.Prt.dst)
              else None)
       |> List.sort_uniq compare
     else []);
  (* a window whose reconfiguration straddles [now] is neither an
     established circuit nor a fresh one; [schedule] restarts such
     setups from scratch at every replan, and the executed timeline
     cannot express a half-paid delta — so its owner is rescheduled *)
  List.iter
    (fun r ->
      if r.Prt.start +. r.Prt.setup > now then begin
        if obs && not (Hashtbl.mem dirty r.Prt.coflow) then
          Obs.Registry.incr m_straddlers;
        Hashtbl.replace dirty r.Prt.coflow ()
      end)
    covering;
  (* defensive: a stored finish at or before [now] with demand left
     would stall the event loop; re-anchor such plans *)
  for i = 0 to g.g_n - 1 do
    let e = g.g_entries.(i) in
    let id = e.e_coflow.Coflow.id in
    if
      e.e_plan.Sunflow.finish <= now
      && (not (Hashtbl.mem dirty id))
      && not (Demand.is_empty (remaining id))
    then Hashtbl.replace dirty id ()
  done;
  (* an arrival poisons the rest of its own bucket: within a bucket the
     order is FIFO, so a retained entry sorting after a new arrival in
     the same class means an equal-arrival tiebreak (or a [Custom]
     policy, where every Coflow shares class 0) — in either case the
     within-class order shifted under the retained plan, so it must be
     re-derived rather than spliced. Entries in strictly later buckets
     are left clean and handled by splice-or-reschedule below. *)
  if g.g_buckets > 0 && arrivals <> [] then begin
    let poisoned = Array.make g.g_buckets false in
    for i = 0 to g.g_n - 1 do
      let e = g.g_entries.(i) in
      let id = e.e_coflow.Coflow.id in
      if poisoned.(e.e_bucket) then Hashtbl.replace dirty id ()
      else if Hashtbl.mem arrived id then poisoned.(e.e_bucket) <- true
    done
  end;
  (* 4. the dirty suffix starts at the first dirty position *)
  let dirty_pos =
    let p = ref g.g_n in
    (try
       for i = 0 to g.g_n - 1 do
         if Hashtbl.mem dirty g.g_entries.(i).e_coflow.Coflow.id then begin
           p := i;
           raise Exit
         end
       done
     with Exit -> ());
    !p
  in
  (* 5. bring the table to prefix-only *)
  if g.g_rebuild then begin
    (* oracle mode: identical decisions recomputed from scratch — fresh
       table, re-reserving the retained prefix's stored windows *)
    g.g_prt <- Prt.create ();
    for i = 0 to dirty_pos - 1 do
      List.iter (Prt.reserve g.g_prt)
        g.g_entries.(i).e_plan.Sunflow.reservations
    done
  end
  else if g.g_buckets = 0 && dirty_pos < g.g_n then
    (* clear the suffix by ownership rather than by undo-log rollback:
       the windows removed are exactly the suffix entries' stored
       reservations either way (prefix windows belong to Coflows
       sorting before the suffix, which this step never touches), so
       the table content is identical — but retraction does not need
       the undo log to survive across steps. A long-running engine
       that rolled back to per-entry marks had to keep the log for the
       life of the table, growing it with every reserve and pinning
       retired Coflows' windows against the GC; see forget_history
       below. Bucketed engines skip this: they repair the table in
       place (step 6), touching only the ports the dirty entries'
       planners can see. *)
    for i = dirty_pos to g.g_n - 1 do
      let e = g.g_entries.(i) in
      if not (Hashtbl.mem arrived e.e_coflow.Coflow.id) then
        ignore (Prt.retract_coflow g.g_prt e.e_coflow.Coflow.id : int)
    done;
  (* 6. re-run Sunflow for the suffix, in priority order, against the
     retained prefix *)
  let est_set = Hashtbl.create 16 in
  List.iter (fun cc -> Hashtbl.replace est_set cc ()) g.g_established;
  let is_established cc = Hashtbl.mem est_set cc in
  let reschedule e =
    let c = Coflow.with_demand e.e_coflow (remaining e.e_coflow.Coflow.id) in
    e.e_plan <-
      Sunflow.schedule ~prt:g.g_prt ?cache:g.g_cache ~now ~order:g.g_order
        ~established:is_established ~delta:g.g_delta ~bandwidth:g.g_bandwidth c;
    g.g_rescheduled <- g.g_rescheduled + 1
  in
  if g.g_rebuild || g.g_buckets = 0 then begin
    for i = dirty_pos to g.g_n - 1 do
      let e = g.g_entries.(i) in
      if g.g_buckets = 0 || Hashtbl.mem dirty e.e_coflow.Coflow.id then
        reschedule e
      else begin
        (* clean entry under a bucketed order (oracle mode): its table
           prefix may have changed, but only by entries in other
           classes — splice the stored plan back verbatim when every
           window still fits with zero overlap, and fall back to a
           full re-run otherwise. The whole plan is re-derived rather
           than patched around the surviving windows: a merged plan
           would break non-preemption (a kept split-window whose
           blocking neighbour moved ends with demand left and nothing
           occupying its port) and double-count circuit setups. The
           fit test must be exact, not [reserve]'s dust-tolerant one:
           a rescheduled upstream neighbour can land within rounding
           dust of a stored boundary, and re-admitting that would
           break the validator's strict per-port disjointness —
           [Prt.splice_exact] is exactly that check-all-then-reserve-all
           primitive. *)
        if Prt.splice_exact g.g_prt e.e_plan.Sunflow.reservations then
          g.g_spliced <- g.g_spliced + 1
        else begin
          if obs then Obs.Registry.incr m_cascades;
          reschedule e
        end
      end
    done;
    (* nothing rolls the table back any more (suffix clearing goes
       through [retract_coflow]) — drop the log so a persistent engine
       cannot grow it with every reserve for the life of the process.
       The rebuild oracle skips this: its table is rebuilt from scratch
       next step anyway. *)
    if not g.g_rebuild then Prt.forget_history g.g_prt
  end
  else begin
    (* lazy damage-bounded repair (bucketed incremental mode). No
       rollback: a dirty entry, at its turn in priority order, clears
       every later-priority window from the ports its planner can
       touch (the senders/receivers of its remaining demand), recording
       the evicted windows per owner, then reschedules. An evicted
       ("touched") clean entry re-admits its evicted windows verbatim
       at its own turn when they all still fit exactly, and partially
       re-plans otherwise; a clean entry nobody touched keeps its plan
       at zero cost. This matches the rebuild oracle's decisions
       bit-for-bit: [Sunflow.schedule] reads and writes only the ports
       of the Coflow's own demand ([probe] / [next_release_on_ports]
       take explicit ports), so each rescheduled entry sees, on every
       port it queries, exactly the prefix plus already-processed
       suffix — the rebuild table's content at the same turn. Windows
       never evicted sit on ports no new window lands on, and the old
       windows were mutually disjoint, so they'd pass the oracle's fit
       test unconditionally; evicted windows are tested against table
       content identical on their ports. The fit-failure sets therefore
       coincide, and so do the plans. *)
    let touched : (int, Prt.reservation list ref) Hashtbl.t =
      Hashtbl.create 16
    in
    let ports_cleared : (Prt.port, unit) Hashtbl.t = Hashtbl.create 16 in
    let clear_demand_ports e d =
      let clear_port p =
        if not (Hashtbl.mem ports_cleared p) then begin
          Hashtbl.replace ports_cleared p ();
          List.iter
            (fun r ->
              match Hashtbl.find_opt g.g_index r.Prt.coflow with
              | Some o when g.g_cmp e o < 0 ->
                  (* [remove] is false when the window was already
                     evicted through its other port — record once *)
                  if Prt.remove g.g_prt r then begin
                    let l =
                      match Hashtbl.find_opt touched r.Prt.coflow with
                      | Some l -> l
                      | None ->
                          let l = ref [] in
                          Hashtbl.replace touched r.Prt.coflow l;
                          l
                    in
                    l := r :: !l
                  end
              | _ -> ())
            (Prt.port_reservations g.g_prt p)
        end
      in
      List.iter (fun p -> clear_port (Prt.In p)) (Demand.senders d);
      List.iter (fun p -> clear_port (Prt.Out p)) (Demand.receivers d)
    in
    let process e =
      let id = e.e_coflow.Coflow.id in
      if Hashtbl.mem dirty id then begin
        Hashtbl.remove touched id;
        ignore (Prt.retract_coflow g.g_prt id : int);
        clear_demand_ports e (remaining id);
        reschedule e
      end
      else
        match Hashtbl.find_opt touched id with
        | None -> g.g_spliced <- g.g_spliced + 1
        | Some l ->
            Hashtbl.remove touched id;
            if Prt.splice_exact g.g_prt !l then
              g.g_spliced <- g.g_spliced + 1
            else begin
              if obs then Obs.Registry.incr m_cascades;
              ignore (Prt.retract_coflow g.g_prt id : int);
              clear_demand_ports e (remaining id);
              reschedule e
            end
    in
    for i = dirty_pos to g.g_n - 1 do
      process g.g_entries.(i)
    done;
    (* this engine never rolls back — without this the undo log grows
       with every reserve for the run's lifetime and pins retired
       Coflows' windows against the GC *)
    Prt.forget_history g.g_prt
  end;
  if obs then begin
    Obs.Registry.observe h_batch (float_of_int (g.g_n - dirty_pos));
    Obs.Tracer.end_span ~cat:"core" "inter.step"
  end

(* --- sharded stepping (g_shards > 1) ----------------------------------

   Ports are striped over S shards; each shard owns a [Prt] holding
   every window with an endpoint in the shard (a cross-shard Coflow's
   window is mirrored into both endpoint shards, so every shard table
   is complete for its own ports). A Coflow whose whole footprint maps
   to one shard lives in that shard's entry vector; per event, each
   shard with dirty entries runs the bucketed lazy repair over its own
   vector against its own table — [Sunflow.schedule] reads and writes
   only the ports of the Coflow's own demand (PR 6's footprint-locality
   argument), and those ports all belong to the shard, so the pass sees
   exactly the state the unsharded walk would show it, regardless of
   how passes interleave. The passes are independent (disjoint ports,
   disjoint entries) and run through [g_runner] — sequentially by
   default, on a domain pool when one is plugged in.

   Cross-shard Coflows break the independence, so they are handled
   pessimistically-correct: a pass that would evict a cross-shard
   owner's window aborts ([Cross_conflict]), every pass of the event is
   rolled back (stored plans restored; the shard tables are rebuilt
   from the plans), and the event is re-resolved by one global pass
   over the closure of affected shards — Time-Warp's optimistic
   execution with a deterministic arbiter. A dirty cross-shard entry
   skips the optimistic round entirely. Either way the decisions made
   are the unsharded engine's, bit for bit. *)

exception Cross_conflict

(* one bucketed lazy-repair pass over some entry sequence against
   [prt] — the same decision procedure as [step_unsharded]'s bucketed
   branch, parameterised over the table, with [guard] consulted before
   any eviction (shard passes raise [Cross_conflict] on a cross-shard
   owner) and every replaced plan recorded for rollback. [cache] is
   threaded explicitly rather than read off [g]: a [Plan_cache.t] is
   single-domain mutable state, so the caller must pass [None] to any
   pass it may execute concurrently with another. *)
let make_pass g ~prt ~cache ~now ~remaining ~is_established ~dirty ~guard =
  let touched : (int, Prt.reservation list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let ports_cleared : (Prt.port, unit) Hashtbl.t = Hashtbl.create 16 in
  let old_plans = ref [] in
  let resched = ref 0 and spliced = ref 0 and cascades = ref 0 in
  let reschedule e =
    old_plans := (e, e.e_plan) :: !old_plans;
    let c = Coflow.with_demand e.e_coflow (remaining e.e_coflow.Coflow.id) in
    e.e_plan <-
      Sunflow.schedule ~prt ?cache ~now ~order:g.g_order
        ~established:is_established ~delta:g.g_delta ~bandwidth:g.g_bandwidth c;
    incr resched
  in
  let clear_demand_ports e d =
    let clear_port p =
      if not (Hashtbl.mem ports_cleared p) then begin
        Hashtbl.replace ports_cleared p ();
        List.iter
          (fun r ->
            match Hashtbl.find_opt g.g_index r.Prt.coflow with
            | Some o when g.g_cmp e o < 0 ->
              guard o;
              if Prt.remove prt r then begin
                let l =
                  match Hashtbl.find_opt touched r.Prt.coflow with
                  | Some l -> l
                  | None ->
                    let l = ref [] in
                    Hashtbl.replace touched r.Prt.coflow l;
                    l
                in
                l := r :: !l
              end
            | _ -> ())
          (Prt.port_reservations prt p)
      end
    in
    List.iter (fun p -> clear_port (Prt.In p)) (Demand.senders d);
    List.iter (fun p -> clear_port (Prt.Out p)) (Demand.receivers d)
  in
  let process e =
    let id = e.e_coflow.Coflow.id in
    if Hashtbl.mem dirty id then begin
      Hashtbl.remove touched id;
      ignore (Prt.retract_coflow prt id : int);
      clear_demand_ports e (remaining id);
      reschedule e
    end
    else
      match Hashtbl.find_opt touched id with
      | None -> incr spliced
      | Some l ->
        Hashtbl.remove touched id;
        if Prt.splice_exact prt !l then incr spliced
        else begin
          incr cascades;
          ignore (Prt.retract_coflow prt id : int);
          clear_demand_ports e (remaining id);
          reschedule e
        end
  in
  (process, old_plans, resched, spliced, cascades)

type pass_out =
  | Pass_ok of (entry * Sunflow.result) list * int * int * int
      (* replaced plans (for rollback), rescheduled, spliced, cascades *)
  | Pass_conflict of (entry * Sunflow.result) list

(* optimistic pass over one shard's entries from its first dirty
   position. Reads shared engine state only (g_index, dirty, the
   established set — all frozen for the event); mutates only the
   shard's own table and its own entries' plans, so passes are safe to
   run on separate domains — provided [cache] is [None] whenever the
   caller dispatches more than one pass to a runner that may span
   domains (the plan cache is single-domain state). *)
let run_shard_pass g ~cache ~now ~remaining ~is_established ~dirty s first =
  let vec = g.g_slocal.(s) in
  let guard o = if Array.length o.e_shards > 1 then raise Cross_conflict in
  let process, old_plans, resched, spliced, cascades =
    make_pass g ~prt:g.g_sprt.(s) ~cache ~now ~remaining ~is_established
      ~dirty ~guard
  in
  try
    for i = evec_lower g.g_cmp vec first to vec.v_n - 1 do
      process vec.v_arr.(i)
    done;
    Pass_ok (!old_plans, !resched, !spliced, !cascades)
  with Cross_conflict -> Pass_conflict !old_plans

(* deterministic cross-shard resolution: compute the closure of shards
   reachable from the dirty set through cross-shard footprints, merge
   the closure's stored plans into one table, run the unsharded repair
   over the closure's entries in global priority order, then rebuild
   the affected shard tables from the resulting plans (mirroring cross
   windows into both endpoint shards). Entries wholly outside the
   closure share no port with anything the repair may move — the
   unsharded walk would have spliced them untouched — so skipping them
   changes nothing. *)
let resolve_cross g ~obs ~now ~remaining ~is_established ~dirty ~min_dirty
    ~shard_dirty =
  g.g_sconflicts <- g.g_sconflicts + 1;
  if obs then Obs.Registry.incr m_sh_conflicts;
  let t0 = if obs then Obs.Control.now_ns () else 0L in
  let c = Array.copy shard_dirty in
  (* seed: shards of dirty cross entries *)
  for i = 0 to g.g_scross.v_n - 1 do
    let e = g.g_scross.v_arr.(i) in
    if Hashtbl.mem dirty e.e_coflow.Coflow.id then
      Array.iter (fun s -> c.(s) <- true) e.e_shards
  done;
  (* fixpoint: any cross entry touching the closure pulls all its
     shards in — its windows sit on ports the repair may reuse *)
  let changed = ref true in
  while !changed do
    changed := false;
    for i = 0 to g.g_scross.v_n - 1 do
      let e = g.g_scross.v_arr.(i) in
      if
        Array.exists (fun s -> c.(s)) e.e_shards
        && not (Array.for_all (fun s -> c.(s)) e.e_shards)
      then begin
        Array.iter (fun s -> c.(s) <- true) e.e_shards;
        changed := true
      end
    done
  done;
  let in_c e =
    Array.length e.e_shards > 0 && Array.for_all (fun s -> c.(s)) e.e_shards
  in
  (* merged mirror-free table of every in-closure stored plan — the
     unsharded table's content restricted to the closure's ports *)
  let merged = Prt.create () in
  for i = 0 to g.g_n - 1 do
    let e = g.g_entries.(i) in
    if in_c e then
      List.iter (Prt.reserve merged) e.e_plan.Sunflow.reservations
  done;
  let process, _old, resched, spliced, cascades =
    (* single pass on the calling domain: the engine's cache is safe *)
    make_pass g ~prt:merged ~cache:g.g_cache ~now ~remaining ~is_established
      ~dirty ~guard:(fun _ -> ())
  in
  (match min_dirty with
  | None -> ()
  | Some m ->
    for i = lower_bound g m to g.g_n - 1 do
      let e = g.g_entries.(i) in
      if in_c e then process e
    done);
  g.g_rescheduled <- g.g_rescheduled + !resched;
  g.g_spliced <- g.g_spliced + !spliced;
  if obs && !cascades > 0 then Obs.Registry.add m_cascades !cascades;
  (* rebuild the affected shard tables from the now-current plans *)
  for s = 0 to g.g_shards - 1 do
    if c.(s) then g.g_sprt.(s) <- Prt.create ()
  done;
  for i = 0 to g.g_n - 1 do
    let e = g.g_entries.(i) in
    if in_c e then
      List.iter
        (fun r ->
          let ss = shard_of g r.Prt.src and sd = shard_of g r.Prt.dst in
          Prt.reserve g.g_sprt.(ss) r;
          if sd <> ss then Prt.reserve g.g_sprt.(sd) r)
        e.e_plan.Sunflow.reservations
  done;
  for s = 0 to g.g_shards - 1 do
    if c.(s) then begin
      Prt.forget_history g.g_sprt.(s);
      g.g_smin_stale.(s) <- true
    end
  done;
  g.g_smin_stale.(g.g_shards) <- true;
  if obs then
    Obs.Registry.observe h_sh_rollback
      (Int64.to_float (Int64.sub (Obs.Control.now_ns ()) t0) /. 1e9)

let sharded_step g ~now ~arrivals ~finished ~remaining =
  let obs = Obs.Control.enabled () in
  if obs then begin
    Obs.Registry.incr m_rounds;
    Obs.Registry.incr m_steps;
    Obs.Tracer.begin_span ~cat:"core" "inter.step"
  end;
  g.g_ssteps <- g.g_ssteps + 1;
  let sn = g.g_shards in
  (* 1. retire — as unsharded, plus vector and per-shard table upkeep.
     [e_shards] covers every window's endpoints, so retracting on those
     tables removes the windows and their mirrors. *)
  List.iter
    (fun id ->
      match Hashtbl.find_opt g.g_index id with
      | None -> invalid_arg "Inter.schedule_incremental: unknown finished id"
      | Some e ->
        remove_entry g e;
        let v, slot = entry_vec g e in
        evec_remove g.g_cmp v e;
        g.g_smin_stale.(slot) <- true;
        Hashtbl.remove g.g_index id;
        Array.iter
          (fun s -> ignore (Prt.retract_coflow g.g_sprt.(s) id : int))
          e.e_shards)
    finished;
  (* 2. dirty tracking: the global dirty set plus, per shard, whether
     it is dirty and its minimum dirty entry (entries, not positions —
     positions shift under admission) *)
  let dirty = Hashtbl.create 8 in
  let arrived = Hashtbl.create 8 in
  let shard_dirty = Array.make sn false in
  let cross_dirty = ref false in
  let min_dirty = ref None in
  let s_first = Array.make sn None in
  let mark_dirty e =
    let id = e.e_coflow.Coflow.id in
    if not (Hashtbl.mem dirty id) then begin
      Hashtbl.replace dirty id ();
      (match !min_dirty with
      | Some m when g.g_cmp m e <= 0 -> ()
      | _ -> min_dirty := Some e);
      if Array.length e.e_shards > 1 then cross_dirty := true
      else begin
        let s = e.e_shards.(0) in
        shard_dirty.(s) <- true;
        match s_first.(s) with
        | Some m when g.g_cmp m e <= 0 -> ()
        | _ -> s_first.(s) <- Some e
      end
    end
  in
  (* admit arrivals *)
  List.iter
    (fun cf ->
      if Hashtbl.mem g.g_index cf.Coflow.id then
        invalid_arg "Inter.schedule_incremental: duplicate Coflow id";
      let key = entry_key g.g_policy ~bandwidth:g.g_bandwidth cf in
      let e =
        {
          e_coflow = cf;
          e_key = key;
          e_bucket =
            bucket_of ~policy:g.g_policy ~buckets:g.g_buckets
              ~bucket_base:g.g_bucket_base ~delta:g.g_delta key;
          e_shards = coflow_shards g cf;
          e_plan = { Sunflow.reservations = []; finish = now; setups = 0 };
        }
      in
      insert_entry g e;
      let v, slot = entry_vec g e in
      evec_insert g.g_cmp v e;
      g.g_smin_stale.(slot) <- true;
      Hashtbl.replace g.g_index cf.Coflow.id e;
      Hashtbl.replace arrived cf.Coflow.id ();
      mark_dirty e)
    arrivals;
  (* 3. further dirty sources — mirror [step_unsharded] exactly *)
  if not g.g_carry then
    for i = 0 to g.g_n - 1 do
      mark_dirty g.g_entries.(i)
    done;
  (* circuits physically up at [now]: union over shard tables. Mirrors
     surface twice; [sort_uniq] collapses them, and double-marking a
     straddler is idempotent. *)
  let covering =
    let acc = ref [] in
    for s = 0 to sn - 1 do
      List.iter
        (fun r -> if Hashtbl.mem g.g_index r.Prt.coflow then acc := r :: !acc)
        (Prt.covering_at g.g_sprt.(s) now)
    done;
    !acc
  in
  g.g_established <-
    (if g.g_carry then
       covering
       |> List.filter_map (fun r ->
              if r.Prt.start +. r.Prt.setup <= now then
                Some (r.Prt.src, r.Prt.dst)
              else None)
       |> List.sort_uniq compare
     else []);
  List.iter
    (fun r ->
      if r.Prt.start +. r.Prt.setup > now then begin
        if obs && not (Hashtbl.mem dirty r.Prt.coflow) then
          Obs.Registry.incr m_straddlers;
        match Hashtbl.find_opt g.g_index r.Prt.coflow with
        | Some e -> mark_dirty e
        | None -> ()
      end)
    covering;
  (* defensive stale-finish scan, pruned by the cached per-vec minimum
     finish: a vec whose every stored finish is past [now] cannot hold
     a stale plan *)
  let scan_stale v =
    for i = 0 to v.v_n - 1 do
      let e = v.v_arr.(i) in
      let id = e.e_coflow.Coflow.id in
      if
        e.e_plan.Sunflow.finish <= now
        && (not (Hashtbl.mem dirty id))
        && not (Demand.is_empty (remaining id))
      then mark_dirty e
    done
  in
  for s = 0 to sn - 1 do
    refresh_smin g s g.g_slocal.(s);
    if g.g_smin.(s) <= now then scan_stale g.g_slocal.(s)
  done;
  refresh_smin g sn g.g_scross;
  if g.g_smin.(sn) <= now then scan_stale g.g_scross;
  (* bucket poisoning: an arrival with a same-class successor shifted
     the within-class FIFO under retained plans. Buckets are contiguous
     runs of the service order (the comparator sorts on the class
     first; classless policies share one class), so "some retained
     entry sorts after an arrival in its class" is equivalent to "some
     arrival's immediate successor shares its class" — check that in
     O(arrivals log n) and fall back to the unsharded scan only when it
     triggers *)
  if g.g_buckets > 0 && arrivals <> [] then begin
    let trigger = ref false in
    List.iter
      (fun cf ->
        if not !trigger then begin
          let e = Hashtbl.find g.g_index cf.Coflow.id in
          let k = lower_bound g e in
          if k + 1 < g.g_n && g.g_entries.(k + 1).e_bucket = e.e_bucket then
            trigger := true
        end)
      arrivals;
    if !trigger then begin
      let poisoned = Array.make g.g_buckets false in
      for i = 0 to g.g_n - 1 do
        let e = g.g_entries.(i) in
        if poisoned.(e.e_bucket) then mark_dirty e
        else if Hashtbl.mem arrived e.e_coflow.Coflow.id then
          poisoned.(e.e_bucket) <- true
      done
    end
  end;
  (* exact order: [step_unsharded] reschedules the whole suffix from
     the first dirty position (anchored plans re-round at the ulp scale
     if re-derived at a different [now], so clean suffix entries cannot
     be skipped without diverging from the oracle) — mark it all dirty
     and let the same machinery run it *)
  if g.g_buckets = 0 then begin
    match !min_dirty with
    | None -> ()
    | Some m ->
      for i = lower_bound g m to g.g_n - 1 do
        mark_dirty g.g_entries.(i)
      done
  end;
  (* 4. schedule: optimistic per-shard passes, falling back to the
     deterministic cross-shard pass on any conflict *)
  if Hashtbl.length dirty > 0 then begin
    let est_set = Hashtbl.create 16 in
    List.iter (fun cc -> Hashtbl.replace est_set cc ()) g.g_established;
    let is_established cc = Hashtbl.mem est_set cc in
    if obs then begin
      let nd = ref (if !cross_dirty then 1 else 0) in
      Array.iter (fun d -> if d then incr nd) shard_dirty;
      Obs.Registry.add m_sh_dirty !nd
    end;
    if !cross_dirty then
      (* a dirty cross-shard Coflow makes the conflict certain — skip
         the optimistic round (nothing to roll back) *)
      resolve_cross g ~obs ~now ~remaining ~is_established ~dirty
        ~min_dirty:!min_dirty ~shard_dirty
    else begin
      let targets = ref [] in
      for s = sn - 1 downto 0 do
        match s_first.(s) with
        | Some m -> targets := (s, m) :: !targets
        | None -> ()
      done;
      (* the plan cache is single-domain mutable state (plain Hashtbl +
         Queue): when more than one pass goes through a runner that may
         execute them on separate domains, the passes run uncached —
         sharing the handle would race its table and counters. The
         default [sequential_runner] keeps the cache (it runs the
         thunks on the calling domain), as does a single-pass round;
         decisions are bit-identical either way, the skipped round just
         neither consults nor refreshes the entries. *)
      let cache =
        if
          g.g_runner == sequential_runner
          || List.compare_length_with !targets 1 <= 0
        then g.g_cache
        else None
      in
      let thunks =
        Array.of_list
          (List.map
             (fun (s, m) () ->
               run_shard_pass g ~cache ~now ~remaining ~is_established ~dirty
                 s m)
             !targets)
      in
      let outs =
        if Array.length thunks > 1 then g.g_runner.run_passes thunks
        else Array.map (fun f -> f ()) thunks
      in
      let conflicted =
        Array.exists (function Pass_conflict _ -> true | _ -> false) outs
      in
      if conflicted then begin
        (* roll back every pass: restore the replaced plans (the shard
           tables are rebuilt from plans during resolution, so the
           plan-level undo subsumes any table-level one) *)
        Array.iter
          (function
            | Pass_ok (old, _, _, _) | Pass_conflict old ->
              List.iter (fun (e, p) -> e.e_plan <- p) old)
          outs;
        g.g_srollbacks <- g.g_srollbacks + Array.length outs;
        if obs then Obs.Registry.add m_sh_rollbacks (Array.length outs);
        resolve_cross g ~obs ~now ~remaining ~is_established ~dirty
          ~min_dirty:!min_dirty ~shard_dirty
      end
      else begin
        Array.iter
          (function
            | Pass_ok (_, r, sp, ca) ->
              g.g_rescheduled <- g.g_rescheduled + r;
              g.g_spliced <- g.g_spliced + sp;
              if obs && ca > 0 then Obs.Registry.add m_cascades ca
            | Pass_conflict _ -> ())
          outs;
        for s = 0 to sn - 1 do
          if shard_dirty.(s) then begin
            (* the pass never rolls the table back — drop the journal
               so it cannot pin retired windows *)
            Prt.forget_history g.g_sprt.(s);
            g.g_smin_stale.(s) <- true
          end
        done
      end
    end
  end;
  if obs then begin
    Obs.Registry.observe h_batch (float_of_int (Hashtbl.length dirty));
    Obs.Tracer.end_span ~cat:"core" "inter.step"
  end

let schedule_incremental g ~now ~arrivals ~finished ~remaining =
  if g.g_shards > 1 then sharded_step g ~now ~arrivals ~finished ~remaining
  else step_unsharded g ~now ~arrivals ~finished ~remaining

(* windows overlapping [t0, t1), straddlers clipped to start at [t0].
   After a [schedule_incremental] at [t0] no straddler is mid-setup
   (its owner would have been rescheduled), so clipped setups are 0 —
   the [Float.max] is defensive. *)
let clip_from t0 r =
  if r.Prt.start < t0 then
    {
      r with
      Prt.start = t0;
      setup = Float.max 0. (r.Prt.start +. r.Prt.setup -. t0);
      length = Prt.stop r -. t0;
    }
  else r

(* [Prt.reservations_in]'s deterministic physical order — replicated
   here so the sharded merge sorts (and dedupes mirror twins) exactly
   the way the unsharded table would have emitted the slice *)
let window_order (a : Prt.reservation) (b : Prt.reservation) =
  compare
    (a.Prt.start, a.Prt.src, a.Prt.dst, a.Prt.coflow, a.Prt.setup, a.Prt.length)
    (b.Prt.start, b.Prt.src, b.Prt.dst, b.Prt.coflow, b.Prt.setup, b.Prt.length)

let engine_slice g ~t0 ~t1 =
  if g.g_shards > 1 then
    (* union over shard tables; a cross-shard window appears in both
       endpoint shards and [sort_uniq] keeps one copy *)
    Array.to_list g.g_sprt
    |> List.concat_map (fun prt -> Prt.reservations_in prt t0 t1)
    |> List.sort_uniq window_order
    |> List.map (clip_from t0)
  else List.map (clip_from t0) (Prt.reservations_in g.g_prt t0 t1)

(* materialise the persistent plan as a [result] equivalent to what a
   from-scratch replan at [now] would describe, for the validation
   hooks: stored windows still ahead of [now], straddlers clipped,
   windows of flows with no remaining demand dropped, each Coflow's
   finish/setups recomputed over the kept windows. Only built when a
   caller actually asks (the on_slice hook). *)
let engine_view g ~now ~remaining =
  let per_coflow =
    let acc = ref [] in
    for i = g.g_n - 1 downto 0 do
      let e = g.g_entries.(i) in
      let id = e.e_coflow.Coflow.id in
      let rem = remaining id in
      let kept =
        List.filter_map
          (fun r ->
            if Prt.stop r <= now then None
            else if Demand.get rem r.Prt.src r.Prt.dst <= 0. then None
            else Some (clip_from now r))
          e.e_plan.Sunflow.reservations
      in
      let finish =
        List.fold_left (fun acc r -> Float.max acc (Prt.stop r)) now kept
      in
      let setups =
        List.fold_left (fun n r -> if r.Prt.setup > 0. then n + 1 else n) 0 kept
      in
      acc := (id, { Sunflow.reservations = kept; finish; setups }) :: !acc
    done;
    !acc
  in
  let prt = Prt.create () in
  List.iter
    (fun (_, (r : Sunflow.result)) -> List.iter (Prt.reserve prt) r.reservations)
    per_coflow;
  make_result prt per_coflow

type policy =
  | Fifo
  | Shortest_first
  | Priority_classes of (Coflow.t -> int)
  | Custom of (Coflow.t -> Coflow.t -> int)

let sort policy ~bandwidth coflows =
  let cmp =
    match policy with
    | Fifo -> Coflow.compare_arrival
    | Shortest_first ->
      fun a b ->
        let ta = Bounds.packet_lower ~bandwidth a.Coflow.demand in
        let tb = Bounds.packet_lower ~bandwidth b.Coflow.demand in
        (match compare ta tb with 0 -> Coflow.compare_arrival a b | c -> c)
    | Priority_classes class_of ->
      fun a b ->
        (match compare (class_of a) (class_of b) with
        | 0 -> Coflow.compare_arrival a b
        | c -> c)
    | Custom cmp -> cmp
  in
  List.stable_sort cmp coflows

let policy_name = function
  | Fifo -> "fifo"
  | Shortest_first -> "shortest-coflow-first"
  | Priority_classes _ -> "priority-classes"
  | Custom _ -> "custom"

type result = {
  prt : Prt.t;
  per_coflow : (int * Sunflow.result) list;
}

module Obs = Sunflow_obs

let m_rounds = Obs.Registry.counter "inter.rounds"
let h_batch = Obs.Registry.histogram "inter.coflows_per_round"

let schedule ?(now = 0.) ?(order = Order.Ordered_port) ?(established = [])
    ~policy ~delta ~bandwidth coflows =
  (* [finish_of] keys the result on Coflow ids, so duplicates would
     silently shadow one another — reject them like Circuit_sim.run *)
  let ids = List.map (fun c -> c.Coflow.id) coflows in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Inter.schedule: duplicate Coflow ids";
  let obs = Obs.Control.enabled () in
  if obs then begin
    Obs.Registry.incr m_rounds;
    Obs.Registry.observe h_batch (float_of_int (List.length coflows));
    Obs.Tracer.begin_span ~cat:"core" "inter.schedule"
  end;
  let prt = Prt.create () in
  let established_set = Hashtbl.create 16 in
  List.iter (fun c -> Hashtbl.replace established_set c ()) established;
  let is_established c = Hashtbl.mem established_set c in
  let ordered =
    if obs then
      Obs.Tracer.with_span ~cat:"core" "inter.sort" (fun () ->
          sort policy ~bandwidth coflows)
    else sort policy ~bandwidth coflows
  in
  let per_coflow =
    List.map
      (fun c ->
        let r =
          Sunflow.schedule ~prt ~now ~order ~established:is_established ~delta
            ~bandwidth c
        in
        (c.Coflow.id, r))
      ordered
  in
  if obs then Obs.Tracer.end_span ~cat:"core" "inter.schedule";
  { prt; per_coflow }

let finish_of result id =
  List.assoc_opt id result.per_coflow
  |> Option.map (fun (r : Sunflow.result) -> r.finish)

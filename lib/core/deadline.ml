let edf ~deadline_of =
  Inter.Custom
    (fun a b ->
      match compare (deadline_of a) (deadline_of b) with
      | 0 -> Coflow.compare_arrival a b
      | c -> c)

type admission = {
  admitted : (int * float) list;
  rejected : (int * float) list;
  prt : Prt.t;
}

let admit ?(now = 0.) ?(order = Order.Ordered_port) ~deadline_of ~delta
    ~bandwidth coflows =
  let ordered =
    Inter.sort (edf ~deadline_of) ~bandwidth coflows
  in
  let prt = Prt.create () in
  let admitted = ref [] and rejected = ref [] in
  List.iter
    (fun (c : Coflow.t) ->
      (* plan once, on the real table; rejection rolls the journal back
         to the mark, so it leaves no trace *)
      let mark = Prt.checkpoint prt in
      let plan = Sunflow.schedule ~prt ~now ~order ~delta ~bandwidth c in
      if plan.finish <= deadline_of c then
        admitted := (c.id, plan.finish) :: !admitted
      else begin
        Prt.rollback prt mark;
        rejected := (c.id, plan.finish) :: !rejected
      end)
    ordered;
  let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  { admitted = sorted !admitted; rejected = sorted !rejected; prt }

(** Footprint-epoch plan cache for {!Sunflow.schedule}.

    Remembers schedule results keyed on everything the kernel's output
    depends on besides the Port Reservation Table, and validates a
    stored plan against the table through per-port {!Prt.mark}
    snapshots of the plan's {e footprint} — the ports its demand can
    touch. [Sunflow.schedule] reads and writes only those ports
    (footprint-locality, DESIGN.md "Plan cache & schedule kernel"), so
    when every footprint mark still equals its pre-kernel snapshot the
    kernel would recompute exactly the stored plan, and the cache
    replays it verbatim: one {!Prt.reserve} per window, no probe loop,
    no wake heap.

    A handle is single-domain mutable state, like the [Prt.t] it
    fronts. Pass one to [Sunflow.schedule ?cache] (threaded from
    [Inter.engine] / [Circuit_sim.run] / [Serve.run] as
    [?plan_cache]); share the handle across runs of the same workload
    to make later runs replay out of it. *)

type t

val create : ?max_windows:int -> unit -> t
(** Fresh empty cache. [max_windows] (default 2,000,000) bounds the
    stored windows (plus one unit per entry); the oldest entries are
    evicted FIFO past the bound. Raises [Invalid_argument] when
    non-positive. *)

type key
(** Normalized call identity: Coflow id, start time, delta, and the
    pending flows in consideration order — [(src, dst)], remaining
    processing seconds (bandwidth and quantum already folded in), and
    whether the circuit counts as established at the start time. Two
    calls with equal keys drive the kernel identically given equal
    footprint content. *)

val key :
  coflow:int ->
  now:float ->
  delta:float ->
  src:int array ->
  dst:int array ->
  rem:float array ->
  est:bool array ->
  key
(** Build a key; the arrays are parallel over the pending flows in
    consideration order and are taken over (not copied). Floats are
    compared by IEEE bit pattern — exact, no tolerance. *)

type plan = {
  p_reservations : Prt.reservation list;  (** creation order *)
  p_finish : float;
  p_setups : int;
}

val find_and_replay : t -> Prt.t -> key -> plan option
(** Cache lookup fused with the replay: on a key match whose footprint
    marks all still equal their snapshots, re-reserve the stored
    windows in order and return the plan. Any other outcome — no
    entry, stale marks (counted as an invalidation), or a window
    failing to land (possible only under a mark hash collision; the
    table is checkpoint-rolled back) — returns [None] and counts a
    miss, and the caller runs the kernel. *)

val store : t -> key -> ports:Prt.port array -> marks:(int * int * int) array -> plan -> unit
(** Record a freshly computed plan. [ports] is the footprint (sorted)
    and [marks] the parallel {!Prt.mark} snapshots taken {e before}
    the kernel reserved anything — validity means "the table looks
    exactly as the kernel found it". Replaces any entry under the same
    key; may evict the oldest entries to stay within budget. *)

type stats = {
  hits : int;  (** lookups that replayed a stored plan *)
  misses : int;  (** all other lookups (invalidations included) *)
  invalidations : int;  (** key matched, footprint marks stale *)
  replayed_windows : int;  (** reservations re-admitted by hits *)
  entries : int;
  windows : int;  (** currently stored reservations *)
}

val stats : t -> stats
(** Per-handle counters (exact, single-domain). The same counts
    accumulate on the obs registry under [sunflow.cache.{hits,misses,
    invalidations,replayed_windows}] when [Sunflow_obs.Control] is
    enabled. *)

val clear : t -> unit
(** Drop every entry (the counters keep running). *)

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Bounds = Sunflow_core.Bounds
module Sim_result = Sunflow_sim.Sim_result
module Obs = Sunflow_obs
module V = Violation

let result ?bandwidth ?(tol = 1e-9) ~coflows (r : Sim_result.t) =
  let vs = ref [] in
  let push v = vs := v :: !vs in
  let slack x = tol +. (1e-9 *. Float.max 1. (Float.abs x)) in
  let ids_of l = List.map fst l in
  let input_ids =
    List.sort compare (List.map (fun (c : Coflow.t) -> c.id) coflows)
  in
  let check_cover what l =
    if List.sort compare (ids_of l) <> input_ids then
      push
        (V.v V.Unknown_coflow
           "%s covers %d Coflows, the input trace has %d (or the ids differ)"
           what (List.length l) (List.length coflows));
    let rec ascending = function
      | a :: (b :: _ as tl) ->
        if fst a >= fst b then
          push
            (V.v ~coflow:(fst b) V.Conservation
               "%s is not sorted by ascending Coflow id" what);
        ascending tl
      | _ -> ()
    in
    ascending l
  in
  check_cover "finishes" r.finishes;
  check_cover "ccts" r.ccts;
  let empty_max = ref 0. and busy_max = ref 0. and any_busy = ref false in
  List.iter
    (fun (c : Coflow.t) ->
      match
        (List.assoc_opt c.id r.finishes, List.assoc_opt c.id r.ccts)
      with
      | Some finish, Some cct ->
        if finish +. slack finish < c.arrival then
          push
            (V.v ~coflow:c.id ~at:finish V.Conservation
               "finish %.9g precedes the arrival %.9g" finish c.arrival);
        if Float.abs (cct -. (finish -. c.arrival)) > slack finish then
          push
            (V.v ~coflow:c.id ~at:finish V.Conservation
               "cct %.9g is not finish - arrival = %.9g" cct
               (finish -. c.arrival));
        if Demand.is_empty c.demand then
          empty_max := Float.max !empty_max finish
        else begin
          any_busy := true;
          busy_max := Float.max !busy_max finish;
          Option.iter
            (fun bandwidth ->
              let tpl = Bounds.packet_lower ~bandwidth c.demand in
              if finish +. slack finish < c.arrival +. tpl then
                push
                  (V.v ~coflow:c.id ~at:finish V.Conservation
                     "finish %.9g beats the bottleneck lower bound arrival + \
                      T_L^p = %.9g"
                     finish (c.arrival +. tpl)))
            bandwidth
        end
      | _ -> ())
    (* a missing id was already reported by the coverage check *)
    coflows;
  let expected_makespan = if !any_busy then !busy_max else 0. in
  if Float.abs (r.makespan -. expected_makespan) > slack expected_makespan
  then
    push
      (V.v ~at:r.makespan V.Conservation
         "makespan %.9g is not the latest finish among Coflows with demand \
          (%.9g)"
         r.makespan expected_makespan);
  if r.n_events < 0 || r.total_setups < 0 then
    push
      (V.v V.Conservation "negative counters: %d events, %d setups" r.n_events
         r.total_setups);
  if !any_busy && r.n_events < 1 then
    push
      (V.v V.Conservation
         "replay of a non-empty trace recorded %d scheduling events"
         r.n_events);
  List.rev !vs

(* CCT attribution lives in lib/obs (Obs.Attrib cannot see Coflow or
   Violation — the dependency runs the other way), so the bridge is
   here: derive each Coflow's attribution spec from its demand and
   simulated finish, run the decomposition over the recorded windows,
   and enforce the conservation invariant as typed violations. *)
let attribution_specs ~coflows (r : Sim_result.t) =
  List.filter_map
    (fun (c : Coflow.t) ->
      match List.assoc_opt c.id r.finishes with
      | None -> None
      | Some finish ->
        let group project =
          let tbl : (int, int) Hashtbl.t = Hashtbl.create 8 in
          List.iter
            (fun ((i, j), _) ->
              let p = project i j in
              Hashtbl.replace tbl p
                (1 + Option.value ~default:0 (Hashtbl.find_opt tbl p)))
            (Demand.entries c.demand);
          Hashtbl.fold
            (fun p n acc -> { Obs.Attrib.p_port = p; p_flows = n } :: acc)
            tbl []
          |> List.sort (fun (a : Obs.Attrib.port_demand) b ->
                 compare a.p_port b.p_port)
        in
        Some
          {
            Obs.Attrib.s_id = c.id;
            s_arrival = c.arrival;
            s_finish = finish;
            s_srcs = group (fun i _ -> i);
            s_dsts = group (fun _ j -> j);
          })
    coflows

let attribution ?(tol = 1e-6) ~coflows (r : Sim_result.t) =
  let breakdowns = Obs.Attrib.compute (attribution_specs ~coflows r) in
  let vs = ref [] in
  let push v = vs := v :: !vs in
  let slack x = tol +. (1e-9 *. Float.max 1. (Float.abs x)) in
  List.iter
    (fun (b : Obs.Attrib.breakdown) ->
      List.iter
        (fun (name, x) ->
          if x < -.slack 0. then
            push
              (V.v ~coflow:b.a_id V.Conservation
                 "attribution component %s is negative: %.9g" name x))
        [
          ("wait", b.a_wait);
          ("setup", b.a_setup);
          ("transfer", b.a_transfer);
          ("blocked", b.a_blocked);
        ];
      let sum = b.a_wait +. b.a_setup +. b.a_transfer +. b.a_blocked in
      if Float.abs (b.a_cct -. sum) > slack b.a_cct then
        push
          (V.v ~coflow:b.a_id ~at:b.a_finish V.Conservation
             "attribution components sum to %.9g, cct is %.9g (residual %.3g)"
             sum b.a_cct (Obs.Attrib.residual b));
      let blame_sum =
        List.fold_left
          (fun acc (bl : Obs.Attrib.blame) -> acc +. bl.b_seconds)
          0. b.a_blame
      in
      if Float.abs (blame_sum -. b.a_blocked) > slack b.a_blocked then
        push
          (V.v ~coflow:b.a_id ~at:b.a_finish V.Conservation
             "blame vector sums to %.9g, blocked time is %.9g" blame_sum
             b.a_blocked))
    breakdowns;
  (breakdowns, List.rev !vs)

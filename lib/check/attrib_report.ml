module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Obs = Sunflow_obs

let width (c : Coflow.t) =
  max
    (List.length (Demand.senders c.demand))
    (List.length (Demand.receivers c.demand))

let build ?(top_k = 10) ?tol ~run ~coflows r =
  let breakdowns, violations = Sim_check.attribution ?tol ~coflows r in
  let by_id : (int, Obs.Attrib.breakdown) Hashtbl.t = Hashtbl.create 64 in
  List.iter (fun (b : Obs.Attrib.breakdown) -> Hashtbl.replace by_id b.a_id b) breakdowns;
  let rows =
    List.filter_map
      (fun (c : Coflow.t) ->
        match Hashtbl.find_opt by_id c.id with
        | Some b ->
          Some
            {
              Obs.Report.c_width = width c;
              c_bytes = Demand.total_bytes c.demand;
              c_breakdown = b;
            }
        | None -> None)
      coflows
    |> List.sort (fun (a : Obs.Report.coflow_row) b ->
           compare a.c_breakdown.Obs.Attrib.a_id b.c_breakdown.Obs.Attrib.a_id)
  in
  let report =
    {
      Obs.Report.r_run = run;
      r_makespan_s = r.Sunflow_sim.Sim_result.makespan;
      r_events = r.Sunflow_sim.Sim_result.n_events;
      r_setups = r.Sunflow_sim.Sim_result.total_setups;
      r_rows = rows;
      r_ports = Obs.Sampler.port_totals ();
      r_top_k = top_k;
    }
  in
  (report, violations)

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Inter = Sunflow_core.Inter
module Order = Sunflow_core.Order
module Prt = Sunflow_core.Prt
module Plan_cache = Sunflow_core.Plan_cache
module Units = Sunflow_core.Units
module Circuit_sim = Sunflow_sim.Circuit_sim
module Sim_result = Sunflow_sim.Sim_result
module Controller = Sunflow_switch.Controller
module Rng = Sunflow_stats.Rng
module Obs = Sunflow_obs
module V = Violation

type outcome = {
  compared : int;
  max_err_s : float;
  violations : Violation.t list;
}

(* The simulator snaps byte residues below [max 1e-3 (B * 1e-6)] to
   zero when it declares a Coflow finished, so its finish can precede
   the physical drain instant by up to that residue at line rate. *)
let default_tol bandwidth = 2. *. Float.max (1e-3 /. bandwidth) 1e-6
let snap_eps bandwidth = Float.max 1e-3 (bandwidth *. 1e-6)

let replay ?(policy = Inter.Shortest_first) ?(order = Order.Ordered_port)
    ?(carry_circuits = true) ?(replan = `Full) ?buckets ?bucket_base ?shards
    ?shard_block ?(validate_plans = true) ?(check_attrib = false) ?tol ~delta
    ~bandwidth ~n_ports coflows =
  let tol = match tol with Some t -> t | None -> default_tol bandwidth in
  let vs = ref [] in
  let push v = vs := v :: !vs in
  let ids = List.map (fun (c : Coflow.t) -> c.id) coflows in
  let ok_input =
    if delta <= 1e-9 then begin
      push
        (V.v V.Rejected_plan
           "delta %g is too small for the physical oracle (the switch cannot \
            tell a zero-delay setup from a carried circuit)"
           delta);
      false
    end
    else if List.length (List.sort_uniq compare ids) <> List.length ids then begin
      push (V.v V.Unknown_coflow "duplicate Coflow ids in the trace");
      false
    end
    else if
      List.exists
        (fun (c : Coflow.t) -> Demand.max_port c.demand >= n_ports)
        coflows
    then begin
      push
        (V.v V.Unknown_coflow "a Coflow uses a port outside the %d-port fabric"
           n_ports);
      false
    end
    else true
  in
  if not ok_input then
    { compared = 0; max_err_s = 0.; violations = List.rev !vs }
  else begin
    (* Reconstruct the schedule the simulator actually executed: each
       plan clipped to its slice [t, t_next). A carried circuit's next
       fragment begins exactly where the previous one stopped (with
       zero setup), which is precisely the continuation the physical
       switch keeps the light on for. *)
    let fragments = ref [] in
    let dropped = ref 0 in
    let on_slice ~t:now ~t_next ~established ~coflows:scheduled
        (plan : Inter.result) =
      if validate_plans then begin
        let sp = Plan_check.spec ~now ~established ~delta ~bandwidth () in
        List.iter push (Plan_check.inter sp ~coflows:scheduled plan)
      end;
      List.iter
        (fun (r : Prt.reservation) ->
          if r.start < t_next then begin
            let seg_stop = Float.min (Prt.stop r) t_next in
            let len = seg_stop -. r.start in
            if len <= 1e-9 then begin
              (* sub-nanosecond sliver (a replan lands an instant after
                 the window opens): skipping it keeps the physical event
                 list sane; compensate the establishment count *)
              if r.setup > 0. then incr dropped
            end
            else fragments := { r with Prt.length = len } :: !fragments
          end)
        (Prt.all_reservations plan.Inter.prt)
    in
    (* Attribution rides on the recorded windows, so its fuzz leg runs
       the replay with observability forced on (restored afterwards)
       over a cleared recording state; the conservation invariant then
       has to hold for every Coflow of every fuzzed configuration. *)
    let was_obs = Obs.Control.enabled () in
    if check_attrib then begin
      Obs.Control.set_enabled true;
      Obs.Attrib.clear ();
      Obs.Sampler.clear ();
      Obs.Timeline.clear ()
    end;
    let sim =
      Circuit_sim.run ~policy ~order ~carry_circuits ~replan ?buckets
        ?bucket_base ?shards ?shard_block ~on_slice ~delta ~bandwidth coflows
    in
    if check_attrib then begin
      Obs.Control.set_enabled was_obs;
      let _, avs = Sim_check.attribution ~coflows sim in
      List.iter push avs
    end;
    List.iter push (Sim_check.result ~bandwidth ~coflows sim);
    let plan = List.rev !fragments in
    match Controller.execute ~delta ~bandwidth ~n_ports ~coflows ~plan with
    | Error msg ->
      push
        (V.v V.Rejected_plan
           "the physical switch refused the executed schedule: %s" msg);
      { compared = 0; max_err_s = 0.; violations = List.rev !vs }
    | Ok report ->
      let compared = ref 0 and max_err = ref 0. in
      List.iter
        (fun (c : Coflow.t) ->
          if not (Demand.is_empty c.demand) then begin
            match
              ( List.assoc_opt c.id sim.Sim_result.finishes,
                List.assoc_opt c.id report.Controller.finish_times )
            with
            | Some ts, Some tp ->
              incr compared;
              let err = Float.abs (ts -. tp) in
              max_err := Float.max !max_err err;
              if err > tol then
                push
                  (V.v ~coflow:c.id ~at:ts V.Divergence
                     "simulator finishes at %.9g, physical switch at %.9g \
                      (gap %.3g s exceeds the %.3g s tolerance)"
                     ts tp err tol)
            | Some ts, None ->
              push
                (V.v ~coflow:c.id ~at:ts V.Divergence
                   "the physical replay never drained this Coflow")
            | None, _ ->
              (* missing from the simulator result: Sim_check already
                 reported the coverage violation *)
              ()
          end)
        coflows;
      let entries =
        List.fold_left
          (fun acc (c : Coflow.t) -> acc + Demand.n_flows c.demand)
          0 coflows
      in
      let byte_slack = (float_of_int entries *. snap_eps bandwidth) +. 1. in
      if report.Controller.leftover > byte_slack then
        push
          (V.v V.Conservation
             "%.6g bytes left in the VOQs after the physical replay (slack \
              %.3g)"
             report.Controller.leftover byte_slack);
      let expected = sim.Sim_result.total_setups - !dropped in
      if report.Controller.switch_count <> expected then
        push
          (V.v V.Switching_excess
             "the physical switch performed %d circuit establishments, the \
              simulator counted %d"
             report.Controller.switch_count expected);
      { compared = !compared; max_err_s = !max_err; violations = List.rev !vs }
  end

type stats = {
  traces : int;
  total_compared : int;
  worst_err_s : float;
  total_violations : Violation.t list;
}

let random_trace rng ~n_ports ~max_coflows ~span ~max_mb =
  let n = 2 + Rng.int rng (Int.max 1 (max_coflows - 1)) in
  List.init n (fun id ->
      let demand = Demand.create () in
      let flows = 1 + Rng.int rng 4 in
      for _ = 1 to flows do
        let src = Rng.int rng n_ports and dst = Rng.int rng n_ports in
        Demand.add demand src dst (Units.mb (0.5 +. Rng.float rng max_mb))
      done;
      let arrival = if id = 0 then 0. else Rng.float rng span in
      Coflow.make ~id ~arrival demand)

let fuzz ?(policy = Inter.Shortest_first) ?(check_attrib = false) ?tol ~seed
    ~traces ~n_ports ~max_coflows ~span ~max_mb ~delta ~bandwidth () =
  let compared = ref 0 and worst = ref 0. and vs = ref [] in
  for i = 0 to traces - 1 do
    let trace_seed = seed + (7919 * i) in
    let rng = Rng.create trace_seed in
    let trace = random_trace rng ~n_ports ~max_coflows ~span ~max_mb in
    let record label (o : outcome) =
      compared := !compared + o.compared;
      worst := Float.max !worst o.max_err_s;
      List.iter
        (fun (v : V.t) ->
          vs :=
            {
              v with
              V.message =
                Printf.sprintf "[trace seed %d%s] %s" trace_seed label
                  v.V.message;
            }
            :: !vs)
        o.violations
    in
    record "" (replay ~policy ~check_attrib ?tol ~delta ~bandwidth ~n_ports trace);
    (* the incremental engine replays the same trace through the
       physical oracle too, with its per-slice plan views validated;
       Plan_check.replay_equiv separately pins it to the rebuild mode *)
    record ", incremental"
      (replay ~policy ~replan:`Incremental ~check_attrib ?tol ~delta ~bandwidth
         ~n_ports trace);
    let equiv label vlist =
      List.iter
        (fun (v : V.t) ->
          vs :=
            {
              v with
              V.message =
                Printf.sprintf "[trace seed %d, %s] %s" trace_seed label
                  v.V.message;
            }
            :: !vs)
        vlist
    in
    equiv "equiv" (Plan_check.replay_equiv ~policy ~delta ~bandwidth trace);
    (* the bucketed order is its own configuration: incremental and
       rebuild must stay bit-identical under it too (alternate the
       class count so both the coarse and fine quantizations fuzz) *)
    let buckets = if i mod 2 = 0 then 4 else 16 in
    equiv
      (Printf.sprintf "equiv buckets=%d" buckets)
      (Plan_check.replay_equiv ~policy ~buckets ~delta ~bandwidth trace);
    (* the sharded engine must stay pinned to the unsharded oracle for
       every shard count: cycle the count (and a non-trivial stripe
       width) across traces, exact and bucketed orders both *)
    let shards = [| 2; 4; 8 |].(i mod 3) in
    let shard_block = 1 + (i mod 2) in
    equiv
      (Printf.sprintf "equiv shards=%d" shards)
      (Plan_check.replay_equiv ~policy ~shards ~shard_block ~delta ~bandwidth
         trace);
    equiv
      (Printf.sprintf "equiv shards=%d buckets=%d" shards buckets)
      (Plan_check.replay_equiv ~policy ~shards ~shard_block ~buckets ~delta
         ~bandwidth trace);
    (* plan-cache soundness, two layers. First, a cached incremental
       replay — cold (populating a fresh handle) and then warm
       (replaying the cold run's entries verbatim) — must produce a
       Sim_result structurally identical to the uncached replay's. *)
    let base =
      Circuit_sim.run ~policy ~replan:`Incremental ~delta ~bandwidth trace
    in
    let cache = Plan_cache.create () in
    let cached label =
      let r =
        Circuit_sim.run ~policy ~replan:`Incremental ~plan_cache:cache ~delta
          ~bandwidth trace
      in
      if r <> base then
        vs :=
          V.v V.Divergence
            "[trace seed %d, %s] the plan-cached replay's Sim_result differs \
             from the uncached replay's"
            trace_seed label
          :: !vs
    in
    cached "cache cold";
    cached "cache warm";
    (* Second, the incremental-vs-rebuild bit-identity must survive a
       shared cache handle across the bucket/shard grid — both runs
       populate and replay the same table, so a stale hit or key
       collision in either surfaces as an equivalence report. Run each
       configuration twice on its handle: once cold, once warm. *)
    let cache_grid = Plan_cache.create () in
    for _ = 1 to 2 do
      equiv "equiv cache"
        (Plan_check.replay_equiv ~policy ~plan_cache:cache_grid ~delta
           ~bandwidth trace);
      equiv
        (Printf.sprintf "equiv cache shards=%d buckets=%d" shards buckets)
        (Plan_check.replay_equiv ~policy ~shards ~shard_block ~buckets
           ~plan_cache:cache_grid ~delta ~bandwidth trace)
    done;
    (* every third trace also runs the all-stop ablation, where no
       circuit survives a rescheduling instant, and drives the bucketed
       incremental schedule through the physical switch *)
    if i mod 3 = 2 then begin
      record ", all-stop"
        (replay ~policy ~carry_circuits:false ~check_attrib ?tol ~delta
           ~bandwidth ~n_ports trace);
      record ", all-stop incremental"
        (replay ~policy ~carry_circuits:false ~replan:`Incremental ~check_attrib
           ?tol ~delta ~bandwidth ~n_ports trace);
      record
        (Printf.sprintf ", incremental buckets=%d" buckets)
        (replay ~policy ~replan:`Incremental ~buckets ~check_attrib ?tol ~delta
           ~bandwidth ~n_ports trace);
      (* drive the sharded engine's executed schedule through the
         physical switch too — engine_slice's mirror-deduped merge is
         what actually executes, so it gets its own oracle run *)
      record
        (Printf.sprintf ", incremental shards=%d" shards)
        (replay ~policy ~replan:`Incremental ~shards ~shard_block ~check_attrib
           ?tol ~delta ~bandwidth ~n_ports trace)
    end
  done;
  {
    traces;
    total_compared = !compared;
    worst_err_s = !worst;
    total_violations = List.rev !vs;
  }

(** Static validation of reservation plans.

    The validator proves, for any plan (a {!Sunflow_core.Prt.t}, a
    {!Sunflow_core.Sunflow.result} or a {!Sunflow_core.Inter.result}),
    the full invariant set the paper's algorithms promise:

    - {b windows}: every reservation is well-formed, starts at or
      after the scheduling instant, windows are disjoint per port in
      the input {e and} output namespaces independently (§2.1), and
      every window pays the reconfiguration delay exactly once —
      [setup = delta], or [setup = 0] only for a window beginning
      exactly at [now] on a circuit listed as carried over (§4.2);
    - {b coverage}: per flow, reserved transmission seconds equal the
      demand's processing time [d/B] — no under-service, no
      over-service beyond the optional quantum rounding (§6), no
      reservation for an unknown Coflow or an empty flow;
    - {b non-preemption}: a window that ends with its flow's demand
      unfinished must be blocked — some reservation starts at its stop
      instant on the shared input or output port (Algorithm 1 line 16).
      Two same-flow windows that touch back-to-back count as blocked;
      with a positive [quantum] the cut instants move off the blocking
      starts, so this check is skipped;
    - {b bounds}: when the plan was computed against a fresh table
      ([established = []], [quantum = 0.]), the Sunflow guarantees —
      switching count equal to the subflow count, Lemma 1
      ([CCT - now <= 2 T_L^c]) and Lemma 2
      ([<= 2 (1 + alpha) T_L^p]) — hold against {!Sunflow_core.Bounds}.

    All float comparisons use a relative [1e-9] tolerance so plans
    built from long chains of float sums do not trip false alarms. *)

type spec = {
  delta : float;  (** reconfiguration delay the plan must pay *)
  bandwidth : float;  (** link rate, bytes/second *)
  now : float;  (** scheduling instant: no window may start earlier *)
  established : (int * int) list;
      (** circuits physically up at [now]; only these justify a
          zero-setup window starting at [now] *)
  quantum : float;  (** §6 rounding quantum, [0.] for exact plans *)
}

val spec :
  ?now:float ->
  ?established:(int * int) list ->
  ?quantum:float ->
  delta:float ->
  bandwidth:float ->
  unit ->
  spec
(** Defaults: [now = 0.], [established = []], [quantum = 0.]. *)

val windows : spec -> Sunflow_core.Prt.reservation list -> Violation.t list
(** Well-formedness, per-port disjointness and delta accounting. *)

val coverage :
  spec ->
  coflows:Sunflow_core.Coflow.t list ->
  Sunflow_core.Prt.reservation list ->
  Violation.t list
(** Byte accounting against the Coflows' demands (as they stood at
    [now]) plus the non-preemption discipline. *)

val intra :
  spec -> Sunflow_core.Coflow.t -> Sunflow_core.Sunflow.result -> Violation.t list
(** Everything for one Coflow scheduled by {!Sunflow_core.Sunflow}:
    windows, coverage, structural consistency of the result's [finish]
    and [setups] fields with its reservations, and — on a fresh table —
    the switching-count and Lemma 1 / Lemma 2 guarantees. *)

val inter :
  spec ->
  coflows:Sunflow_core.Coflow.t list ->
  Sunflow_core.Inter.result ->
  Violation.t list
(** Everything for an inter-Coflow plan: windows and coverage over the
    whole table, per-Coflow structural consistency, agreement between
    the PRT and the per-Coflow reservation lists, and the fresh-table
    guarantees for the first Coflow in service order (the only one
    whose view of the table was empty). *)

val replay_equiv :
  ?policy:Sunflow_core.Inter.policy ->
  ?order:Sunflow_core.Order.t ->
  ?carry_circuits:bool ->
  ?buckets:int ->
  ?bucket_base:float ->
  ?shards:int ->
  ?shard_block:int ->
  ?plan_cache:Sunflow_core.Plan_cache.t ->
  delta:float ->
  bandwidth:float ->
  Sunflow_core.Coflow.t list ->
  Violation.t list
(** Replay the trace through [Circuit_sim.run] twice — [`Incremental]
    (rollback-capable persistent PRT, suffix-only rescheduling) and
    [`Rebuild] (the same decisions recomputed from a fresh table at
    every event) — and require them bit-identical: every [Sim_result]
    field compared with structural equality (no tolerance), and every
    slice's span, carried-circuit set and per-Coflow plan compared
    window for window. Any report means the rollback/ownership
    machinery corrupted port state. [buckets]/[bucket_base] select a
    coarsened priority order ({!Sunflow_core.Inter.engine}); both runs
    get the same configuration, so the bit-identity requirement is
    unchanged — the splice path must make identical decisions in both
    modes. [shards]/[shard_block] shard the incremental run's engine;
    the rebuild oracle coerces shards to one, so any sharding bug —
    optimistic-pass divergence, a missed cross-shard conflict, a bad
    rollback — surfaces as a report here. [plan_cache] threads a
    {!Sunflow_core.Plan_cache} handle into {e both} runs: the
    incremental run populates it and the rebuild run may replay its
    entries verbatim, so any cache bug — a stale hit, a key
    collision, a replay diverging from the kernel — surfaces as a
    bit-identity report too. *)

(** Differential oracle: the analytical inter-Coflow replay against
    the executable switch.

    {!Sunflow_sim.Circuit_sim} computes finish times from reservation
    arithmetic; {!Sunflow_switch.Controller} executes plans against
    the physical switch model (ports, reconfiguration, VOQs). The
    oracle replays a trace {e with arrivals} through both: it records
    the slice of every plan the simulator actually executed (each
    reservation clipped to its slice [[t, t_next)]), concatenates the
    fragments into one physical plan — carried circuits line up
    exactly at the slice boundaries, exercising the not-all-stop
    continuation and the preemption path — and asserts that the
    switch drains every byte, performs exactly the setups the
    simulator counted, and finishes every Coflow at the simulator's
    instant.

    The seed's intra-Coflow oracle ([experiments/exp_oracle.ml])
    covers single Coflows on an idle fabric; this one covers the
    carry-over and preemption machinery where the subtle bugs live. *)

type outcome = {
  compared : int;  (** Coflows with demand whose finish was compared *)
  max_err_s : float;
      (** largest |simulated - physical| finish gap, seconds *)
  violations : Violation.t list;
}

val replay :
  ?policy:Sunflow_core.Inter.policy ->
  ?order:Sunflow_core.Order.t ->
  ?carry_circuits:bool ->
  ?replan:Sunflow_sim.Circuit_sim.replan ->
  ?buckets:int ->
  ?bucket_base:float ->
  ?shards:int ->
  ?shard_block:int ->
  ?validate_plans:bool ->
  ?check_attrib:bool ->
  ?tol:float ->
  delta:float ->
  bandwidth:float ->
  n_ports:int ->
  Sunflow_core.Coflow.t list ->
  outcome
(** Replay one trace through both models. [delta] must be positive —
    the physical switch cannot distinguish a zero-delay setup from a
    carried circuit. [carry_circuits] defaults to [true] (the paper's
    not-all-stop mode). [replan] (default [`Full]) selects the
    simulator's replanning engine, so the physical oracle also covers
    the incremental path's executed schedule;
    [buckets]/[bucket_base] and [shards]/[shard_block] forward to
    [Circuit_sim.run], so the bucketed order's and the sharded
    engine's schedules face the switch too. With [validate_plans]
    (default [true]) every slice plan also runs through {!Plan_check},
    so a single fuzz pass exercises the validator and the oracle
    together. With [check_attrib] (default [false]) the replay runs
    with observability forced on over a cleared recording state
    (clobbering any attribution windows, sampler state and timeline
    the caller had accumulated; the enabled flag is restored) and
    enforces {!Sim_check.attribution}'s conservation invariant on the
    result. [tol] is the permitted finish-time gap in seconds; the
    default allows for the simulator's byte-residue snapping
    ([2 * max (1e-3 / bandwidth) 1e-6]). Duplicate ids or ports
    outside [[0, n_ports)] are reported as violations, not raised. *)

val random_trace :
  Sunflow_stats.Rng.t ->
  n_ports:int ->
  max_coflows:int ->
  span:float ->
  max_mb:float ->
  Sunflow_core.Coflow.t list
(** One randomized arrival trace as {!fuzz} draws them:
    2..[max_coflows] Coflows of 1..4 flows of 0.5..[max_mb] MB each,
    ports from [[0, n_ports)], arrivals uniform over [span] seconds
    (Coflow 0 at 0). Exposed so tests can reuse the generator. *)

type stats = {
  traces : int;  (** randomized traces replayed *)
  total_compared : int;
  worst_err_s : float;
  total_violations : Violation.t list;
      (** every violation across all traces, messages prefixed with
          the trace's seed for reproduction *)
}

val fuzz :
  ?policy:Sunflow_core.Inter.policy ->
  ?check_attrib:bool ->
  ?tol:float ->
  seed:int ->
  traces:int ->
  n_ports:int ->
  max_coflows:int ->
  span:float ->
  max_mb:float ->
  delta:float ->
  bandwidth:float ->
  unit ->
  stats
(** Replay [traces] randomized traces (uniform arrivals over [span]
    seconds, 2..[max_coflows] Coflows of 1..4 flows up to [max_mb] MB
    each, ports drawn from [[0, n_ports)]) derived deterministically
    from [seed]. Each trace runs through the physical oracle twice —
    full replan and incremental — plus {!Plan_check.replay_equiv}'s
    bit-identity check of incremental against rebuild, repeated for a
    sharded engine (shard count cycling over 2/4/8, stripe width over
    1/2) in both the exact and bucketed orders. Each trace also runs
    the plan-cache legs: a cached incremental replay cold and warm
    against the uncached Sim_result, and the replay_equiv bit-identity
    check with a shared {!Sunflow_core.Plan_cache} handle across the
    exact and sharded-bucketed configurations, cold and warm. Every
    third trace
    additionally repeats both replays with [carry_circuits = false]
    (the all-stop ablation) and drives the sharded engine's executed
    schedule through the physical switch. [check_attrib] forwards to
    every {!replay} leg, so one fuzz pass also proves attribution
    conservation across replan modes, shard counts, bucketed orders
    and the all-stop ablation. *)

module Bounds = Sunflow_core.Bounds
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Inter = Sunflow_core.Inter
module Prt = Sunflow_core.Prt
module Sunflow = Sunflow_core.Sunflow
module V = Violation

type spec = {
  delta : float;
  bandwidth : float;
  now : float;
  established : (int * int) list;
  quantum : float;
}

let spec ?(now = 0.) ?(established = []) ?(quantum = 0.) ~delta ~bandwidth () =
  { delta; bandwidth; now; established; quantum }

(* Relative tolerance: plans chain float sums, so window boundaries
   land within an ulp or two of the analytic values. *)
let eps x = 1e-9 *. Float.max 1. (Float.abs x)
let close a b = Float.abs (a -. b) <= eps (Float.max (Float.abs a) (Float.abs b))

let port_name = function
  | Prt.In i -> Printf.sprintf "In %d" i
  | Prt.Out j -> Printf.sprintf "Out %d" j

(* --- windows: well-formedness, delta accounting, disjointness --- *)

let windows spec rs =
  let vs = ref [] in
  let push v = vs := v :: !vs in
  List.iter
    (fun (r : Prt.reservation) ->
      if r.length <= 0. then
        push
          (V.v ~coflow:r.coflow ~at:r.start V.Malformed_window
             "circuit [%d -> %d]: non-positive window length %g" r.src r.dst
             r.length)
      else begin
        if r.setup < 0. || r.setup > r.length +. eps r.length then
          push
            (V.v ~coflow:r.coflow ~at:r.start V.Malformed_window
               "circuit [%d -> %d]: setup %g outside [0, %g]" r.src r.dst
               r.setup r.length);
        if r.start +. eps r.start < spec.now then
          push
            (V.v ~coflow:r.coflow ~at:r.start V.Malformed_window
               "circuit [%d -> %d] starts before the scheduling instant %g"
               r.src r.dst spec.now);
        (* delta is paid exactly once per window — or not at all, but
           only by a window beginning exactly at [now] on a circuit
           that carried over from the previous plan (§4.2) *)
        if r.setup <= eps spec.delta then begin
          if spec.delta > eps spec.delta then
            if
              not
                (close r.start spec.now
                && List.mem (r.src, r.dst) spec.established)
            then
              push
                (V.v ~coflow:r.coflow ~at:r.start V.Delta_violation
                   "circuit [%d -> %d] pays no reconfiguration delay but is \
                    not carried over at %g"
                   r.src r.dst spec.now)
        end
        else if not (close r.setup spec.delta) then
          push
            (V.v ~coflow:r.coflow ~at:r.start V.Delta_violation
               "circuit [%d -> %d]: setup %g, reconfiguration delay is %g"
               r.src r.dst r.setup spec.delta)
      end)
    rs;
  (* per-port disjointness, input and output namespaces independently *)
  let by_port : (Prt.port, Prt.reservation list ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let on_port p r =
    match Hashtbl.find_opt by_port p with
    | Some l -> l := r :: !l
    | None -> Hashtbl.add by_port p (ref [ r ])
  in
  List.iter
    (fun (r : Prt.reservation) ->
      if r.length > 0. then begin
        on_port (Prt.In r.src) r;
        on_port (Prt.Out r.dst) r
      end)
    rs;
  let ports =
    Hashtbl.fold (fun p l acc -> (p, !l) :: acc) by_port []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  List.iter
    (fun (port, l) ->
      let sorted =
        List.sort
          (fun (a : Prt.reservation) (b : Prt.reservation) ->
            compare (a.start, a.src, a.dst) (b.start, b.src, b.dst))
          l
      in
      let rec walk = function
        | (a : Prt.reservation) :: ((b : Prt.reservation) :: _ as tl) ->
          if Prt.stop a > b.start then
            push
              (V.v ~coflow:b.coflow ~at:b.start V.Port_overlap
                 "%s: window [%g, %g) of coflow %d overlaps [%g, %g) of \
                  coflow %d"
                 (port_name port) b.start (Prt.stop b) b.coflow a.start
                 (Prt.stop a) a.coflow);
          walk tl
        | _ -> ()
      in
      walk sorted)
    ports;
  List.rev !vs

(* --- coverage: byte accounting and non-preemption --- *)

(* A reservation that ends with its flow's demand unfinished was cut;
   Algorithm 1 only cuts at the start of a pre-existing reservation on
   the shared input or output port, so some other window must begin at
   (within tolerance of) the cut instant. *)
let justified rs (r : Prt.reservation) =
  let stop_t = Prt.stop r in
  List.exists
    (fun (r' : Prt.reservation) ->
      r' != r
      && (r'.src = r.src || r'.dst = r.dst)
      && Float.abs (r'.start -. stop_t) <= eps stop_t)
    rs

let coverage spec ~coflows rs =
  let vs = ref [] in
  let push v = vs := v :: !vs in
  let by_id = Hashtbl.create 16 in
  List.iter (fun (c : Coflow.t) -> Hashtbl.replace by_id c.id c) coflows;
  (* transmission seconds and window lists per flow (coflow, src, dst) *)
  let flows : (int * int * int, (float * Prt.reservation list) ref) Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (fun (r : Prt.reservation) ->
      match Hashtbl.find_opt by_id r.coflow with
      | None ->
        push
          (V.v ~coflow:r.coflow ~at:r.start V.Unknown_coflow
             "reservation [%d -> %d] for a Coflow not in the input set" r.src
             r.dst)
      | Some (c : Coflow.t) ->
        if Demand.get c.demand r.src r.dst <= 0. then
          push
            (V.v ~coflow:r.coflow ~at:r.start V.Over_service
               "circuit [%d -> %d] reserved for a flow with no demand" r.src
               r.dst)
        else begin
          let key = (r.coflow, r.src, r.dst) in
          let tx = Float.max 0. (Prt.transmission r) in
          match Hashtbl.find_opt flows key with
          | Some cell ->
            let s, l = !cell in
            cell := (s +. tx, r :: l)
          | None -> Hashtbl.add flows key (ref (tx, [ r ]))
        end)
    rs;
  List.iter
    (fun (c : Coflow.t) ->
      List.iter
        (fun ((i, j), d) ->
          let p = d /. spec.bandwidth in
          let served, windows =
            match Hashtbl.find_opt flows (c.id, i, j) with
            | Some cell -> !cell
            | None -> (0., [])
          in
          let tol = eps p in
          let allowed =
            (* quantum rounding over-reserves each window by up to one
               quantum (§6) *)
            p +. (spec.quantum *. float_of_int (List.length windows))
          in
          if served < p -. tol then
            push
              (V.v ~coflow:c.id V.Under_service
                 "flow [%d -> %d]: %.9g s of transmission reserved, %.9g s \
                  needed"
                 i j served p)
          else if served > allowed +. tol then
            push
              (V.v ~coflow:c.id V.Over_service
                 "flow [%d -> %d]: %.9g s of transmission reserved, %.9g s \
                  needed"
                 i j served p);
          (* non-preemption: every window but the flow's last must end
             at a blocking reservation's start. Quantum rounding moves
             the cut instants off the blockers, so skip the check. *)
          if spec.quantum <= 0. then begin
            let sorted =
              List.sort
                (fun (a : Prt.reservation) (b : Prt.reservation) ->
                  compare a.start b.start)
                windows
            in
            let rec cuts cum = function
              | [] | [ _ ] -> ()
              | (r : Prt.reservation) :: tl ->
                let cum = cum +. Float.max 0. (Prt.transmission r) in
                if cum < p -. tol && not (justified rs r) then
                  push
                    (V.v ~coflow:c.id ~at:(Prt.stop r) V.Preemption
                       "flow [%d -> %d]: window ending at %g leaves %.9g s \
                        of demand with no blocking reservation at its stop"
                       i j (Prt.stop r) (p -. cum));
                cuts cum tl
            in
            cuts 0. sorted
          end)
        (Demand.entries c.demand))
    coflows;
  List.rev !vs

(* --- result-level checks --- *)

let structural spec ?(label = "result") (r : Sunflow.result) =
  let finish =
    List.fold_left
      (fun acc x -> Float.max acc (Prt.stop x))
      spec.now r.reservations
  in
  let setups =
    List.length (List.filter (fun (x : Prt.reservation) -> x.setup > 0.) r.reservations)
  in
  let vs = ref [] in
  if not (close finish r.finish) then
    vs :=
      V.v ~at:r.finish V.Result_mismatch
        "%s.finish = %.9g but the latest reservation stop is %.9g" label
        r.finish finish
      :: !vs;
  if setups <> r.setups then
    vs :=
      V.v V.Result_mismatch
        "%s.setups = %d but %d reservations pay a setup" label r.setups setups
      :: !vs;
  List.rev !vs

(* Fresh-table guarantees: minimal switching (Fig. 5) and the Lemma 1
   / Lemma 2 completion-time bounds. Only sound when the Coflow's view
   of the table was empty and no quantum rounding was applied. *)
let guarantees spec (c : Coflow.t) (r : Sunflow.result) =
  if Demand.is_empty c.demand || spec.quantum > 0. then []
  else begin
    let n = Coflow.n_subflows c in
    let switching =
      (* with delta = 0 no window pays a setup, so the establishment
         count is 0 by construction and Fig. 5 says nothing *)
      if spec.delta <= eps spec.delta then []
      else if spec.established = [] && r.setups <> n then
        [
          V.v ~coflow:c.id V.Switching_excess
            "%d circuit establishments for %d subflows (fresh-table Sunflow \
             pays exactly one per subflow)"
            r.setups n;
        ]
      else if r.setups > n then
        [
          V.v ~coflow:c.id V.Switching_excess
            "%d circuit establishments exceed the %d subflows" r.setups n;
        ]
      else []
    in
    let lemmas =
      if spec.established <> [] then []
      else begin
        let cct = r.finish -. spec.now in
        let tcl =
          Bounds.circuit_lower ~bandwidth:spec.bandwidth ~delta:spec.delta
            c.demand
        in
        let tpl = Bounds.packet_lower ~bandwidth:spec.bandwidth c.demand in
        let alpha =
          Bounds.alpha ~bandwidth:spec.bandwidth ~delta:spec.delta c.demand
        in
        let l1 =
          if cct > (2. *. tcl) +. eps (2. *. tcl) then
            [
              V.v ~coflow:c.id V.Lemma1_exceeded
                "CCT %.9g > 2 * T_L^c = %.9g" cct (2. *. tcl);
            ]
          else []
        in
        let bound2 = 2. *. (1. +. alpha) *. tpl in
        let l2 =
          if cct > bound2 +. eps bound2 then
            [
              V.v ~coflow:c.id V.Lemma2_exceeded
                "CCT %.9g > 2 * (1 + alpha) * T_L^p = %.9g" cct bound2;
            ]
          else []
        in
        l1 @ l2
      end
    in
    switching @ lemmas
  end

let intra spec (c : Coflow.t) (r : Sunflow.result) =
  windows spec r.reservations
  @ coverage spec ~coflows:[ c ] r.reservations
  @ structural spec r
  @ guarantees spec c r

let inter spec ~coflows (res : Inter.result) =
  let rs = Prt.all_reservations res.prt in
  let vs = windows spec rs @ coverage spec ~coflows rs in
  (* the PRT and the per-Coflow lists must describe the same plan *)
  let key (r : Prt.reservation) =
    (r.start, r.src, r.dst, r.coflow, r.setup, r.length)
  in
  let flat =
    List.concat_map
      (fun (_, (r : Sunflow.result)) -> r.reservations)
      res.per_coflow
  in
  let agreement =
    if
      List.sort compare (List.map key flat)
      <> List.sort compare (List.map key rs)
    then
      [
        V.v V.Result_mismatch
          "the PRT holds %d reservations but the per-Coflow lists describe \
           %d (or their contents differ)"
          (List.length rs) (List.length flat);
      ]
    else []
  in
  let ids_in =
    List.sort_uniq compare (List.map (fun (c : Coflow.t) -> c.id) coflows)
  in
  let ids_out = List.sort compare (List.map fst res.per_coflow) in
  let cover =
    if ids_in <> ids_out then
      [
        V.v V.Unknown_coflow
          "the plan schedules %d Coflows, the input set has %d (or the ids \
           differ)"
          (List.length ids_out) (List.length ids_in);
      ]
    else []
  in
  let per_coflow =
    List.concat_map
      (fun (id, (r : Sunflow.result)) ->
        structural spec ~label:(Printf.sprintf "coflow %d" id) r)
      res.per_coflow
  in
  (* only the first Coflow in service order saw an empty table *)
  let head =
    match res.per_coflow with
    | (id, r) :: _ -> (
      match List.find_opt (fun (c : Coflow.t) -> c.id = id) coflows with
      | Some c -> guarantees spec c r
      | None -> [])
    | [] -> []
  in
  vs @ agreement @ cover @ per_coflow @ head

(* --- incremental vs from-scratch replay equivalence --- *)

module Circuit_sim = Sunflow_sim.Circuit_sim
module Sim_result = Sunflow_sim.Sim_result

let replay_equiv ?policy ?order ?carry_circuits ?buckets ?bucket_base ?shards
    ?shard_block ?plan_cache ~delta ~bandwidth coflows =
  let capture replan =
    let slices = ref [] in
    let on_slice ~t ~t_next ~established ~coflows:_ (plan : Inter.result) =
      slices := (t, t_next, established, plan.Inter.per_coflow) :: !slices
    in
    (* [shards] reaches both runs, but [`Rebuild] coerces it to 1 — so
       with [shards > 1] this compares the sharded incremental engine
       against the unsharded from-scratch oracle, the strongest form of
       the bit-identity requirement *)
    let r =
      Circuit_sim.run ?policy ?order ?carry_circuits ?buckets ?bucket_base
        ?shards ?shard_block ?plan_cache ~replan ~on_slice ~delta ~bandwidth
        coflows
    in
    (r, List.rev !slices)
  in
  let ri, si = capture `Incremental in
  let rr, sr = capture `Rebuild in
  let vs = ref [] in
  let push v = vs := v :: !vs in
  let field name get =
    if get ri <> get rr then
      push
        (V.v V.Result_mismatch
           "incremental replay disagrees with the from-scratch rebuild on \
            Sim_result.%s"
           name)
  in
  field "finishes" (fun r -> r.Sim_result.finishes);
  field "ccts" (fun r -> r.Sim_result.ccts);
  field "makespan" (fun r -> [ (0, r.Sim_result.makespan) ]);
  field "n_events" (fun r -> [ (r.Sim_result.n_events, 0.) ]);
  field "total_setups" (fun r -> [ (r.Sim_result.total_setups, 0.) ]);
  if List.length si <> List.length sr then
    push
      (V.v V.Divergence
         "incremental replay executed %d slices, the rebuild %d"
         (List.length si) (List.length sr))
  else
    List.iteri
      (fun i ((ti, tni, ei, pi), (tr, tnr, er, pr)) ->
        if ti <> tr || tni <> tnr then
          push
            (V.v ~at:ti V.Divergence
               "slice %d spans [%.17g, %.17g) incrementally but [%.17g, \
                %.17g) in the rebuild"
               i ti tni tr tnr)
        else if ei <> er then
          push
            (V.v ~at:ti V.Divergence
               "slice %d: carried-circuit sets differ between incremental \
                and rebuild"
               i)
        else if pi <> pr then
          push
            (V.v ~at:ti V.Divergence
               "slice %d: per-Coflow plans are not bit-identical between \
                incremental and rebuild"
               i))
      (List.combine si sr);
  List.rev !vs

type code =
  | Malformed_window
  | Port_overlap
  | Delta_violation
  | Preemption
  | Under_service
  | Over_service
  | Unknown_coflow
  | Switching_excess
  | Lemma1_exceeded
  | Lemma2_exceeded
  | Result_mismatch
  | Conservation
  | Divergence
  | Rejected_plan

type t = {
  code : code;
  coflow : int option;
  at : float option;
  message : string;
}

let v ?coflow ?at code fmt =
  Printf.ksprintf (fun message -> { code; coflow; at; message }) fmt

let code_name = function
  | Malformed_window -> "malformed-window"
  | Port_overlap -> "port-overlap"
  | Delta_violation -> "delta-violation"
  | Preemption -> "preemption"
  | Under_service -> "under-service"
  | Over_service -> "over-service"
  | Unknown_coflow -> "unknown-coflow"
  | Switching_excess -> "switching-excess"
  | Lemma1_exceeded -> "lemma1-exceeded"
  | Lemma2_exceeded -> "lemma2-exceeded"
  | Result_mismatch -> "result-mismatch"
  | Conservation -> "conservation"
  | Divergence -> "divergence"
  | Rejected_plan -> "rejected-plan"

let pp ppf t =
  Format.fprintf ppf "%s" (code_name t.code);
  Option.iter (fun id -> Format.fprintf ppf " coflow %d" id) t.coflow;
  Option.iter (fun at -> Format.fprintf ppf " at %g" at) t.at;
  Format.fprintf ppf ": %s" t.message

let pp_report ppf = function
  | [] -> Format.fprintf ppf "ok"
  | vs ->
    Format.fprintf ppf "%d violation%s:" (List.length vs)
      (if List.length vs = 1 then "" else "s");
    List.iter (fun t -> Format.fprintf ppf "@.  %a" pp t) vs

(** Structured invariant-violation reports.

    Every checker in [Sunflow_check] returns a list of violations
    rather than a boolean: an empty list means the artefact passed,
    and each entry pins the broken invariant ({!code}), the Coflow and
    simulated instant involved when known, and a human-readable
    sentence with the offending numbers. Callers decide whether a
    violation is fatal; the checkers never raise on invalid input. *)

type code =
  | Malformed_window
      (** a reservation with non-positive length, setup outside
          [[0, length]], or a start before the scheduling instant *)
  | Port_overlap  (** two windows intersect on a shared In/Out port *)
  | Delta_violation
      (** a reservation pays the wrong reconfiguration delay: setup
          differs from delta, or is zero without a carried circuit *)
  | Preemption
      (** a flow's window ends with demand left and no blocking
          reservation starting at its stop — intra-Coflow
          non-preemption (paper §4.1) broken *)
  | Under_service  (** reserved transmission covers less than the demand *)
  | Over_service
      (** reserved transmission exceeds the demand (or its quantum
          rounding), or a circuit serves a flow with no demand *)
  | Unknown_coflow
      (** a reservation (or result row) names a Coflow that is not in
          the input set, or an expected Coflow is missing *)
  | Switching_excess
      (** circuit establishments exceed the Sunflow guarantee
          (= subflow count on a fresh table, Fig. 5), or a physical
          replay performed a different number of setups *)
  | Lemma1_exceeded  (** CCT > 2 * T_L^c (paper Lemma 1) *)
  | Lemma2_exceeded  (** CCT > 2 * (1 + alpha) * T_L^p (paper Lemma 2) *)
  | Result_mismatch
      (** a result structure disagrees with its own reservations
          (finish / setups fields, per-Coflow vs PRT contents) *)
  | Conservation
      (** simulator bookkeeping broken: CCT inconsistent with arrival
          and finish, makespan not the latest finish, finish before a
          lower bound, bytes left undrained *)
  | Divergence
      (** differential oracle: the analytical simulator and the
          physical switch model disagree on a finish time *)
  | Rejected_plan
      (** the physical switch model refused to execute the plan *)

type t = {
  code : code;
  coflow : int option;  (** Coflow id involved, when identifiable *)
  at : float option;  (** simulated instant involved, when identifiable *)
  message : string;
}

val v :
  ?coflow:int -> ?at:float -> code -> ('a, unit, string, t) format4 -> 'a
(** [v code fmt ...] builds a violation, [Printf]-style. *)

val code_name : code -> string
(** Stable kebab-case name, e.g. ["port-overlap"]. *)

val pp : Format.formatter -> t -> unit
(** One line: [code [coflow N] [at T]: message]. *)

val pp_report : Format.formatter -> t list -> unit
(** All violations one per line, prefixed by a count — or ["ok"]. *)

(** Assemble an [Obs.Report] from a simulated run.

    [Obs.Report] only renders primitive rows — it cannot see
    [Coflow.t] or [Sim_result.t] (the dependency runs the other way).
    This module is the glue the CLI's [sunflow report] subcommand and
    the bench report section share: it derives each Coflow's width and
    byte count from its demand, runs {!Sim_check.attribution} over the
    recorded windows (enforcing conservation), pulls the per-port
    ledger from [Obs.Sampler], and returns the renderable report
    together with any conservation violations. *)

val width : Sunflow_core.Coflow.t -> int
(** max(#sender ports, #receiver ports) of the Coflow's demand. *)

val build :
  ?top_k:int ->
  ?tol:float ->
  run:(string * string) list ->
  coflows:Sunflow_core.Coflow.t list ->
  Sunflow_sim.Sim_result.t ->
  Sunflow_obs.Report.t * Violation.t list
(** The run must have executed with observability enabled (windows in
    [Obs.Attrib], port totals in [Obs.Sampler], flow finishes in
    [Obs.Timeline]) and not yet cleared. [run] becomes the report's
    mode-dependent ["run"] object verbatim (values are pre-rendered
    JSON); [top_k] bounds the slowest-Coflows section (default 10);
    [tol] is {!Sim_check.attribution}'s conservation slack. Rows are
    sorted by Coflow id, so the report body is deterministic. *)

(** Conservation checks for simulator results.

    Applies to any {!Sunflow_sim.Sim_result.t} — circuit, packet or
    hybrid replay — and proves the bookkeeping that every downstream
    statistic relies on:

    - the result covers exactly the input Coflow ids, each once, in
      ascending id order;
    - every finish is at or after its Coflow's arrival, and
      [cct = finish - arrival] exactly (to float tolerance);
    - with [bandwidth] given, no Coflow beats the policy-independent
      bottleneck bound: [finish >= arrival + T_L^p] (paper Eq. 2).
      Pass the {e total} per-port rate — for a hybrid fabric that is
      the sum of the circuit and packet rates;
    - the makespan is the latest finish. Coflows with empty demand
      complete instantly at their arrival without extending the
      makespan, so the makespan must equal the latest finish among
      Coflows with demand (or [0.] when there are none), and no finish
      of any kind may exceed it unless it belongs to an empty Coflow;
    - event and setup counters are non-negative, and a non-empty
      replay observed at least one event. *)

val result :
  ?bandwidth:float ->
  ?tol:float ->
  coflows:Sunflow_core.Coflow.t list ->
  Sunflow_sim.Sim_result.t ->
  Violation.t list
(** [tol] is the absolute slack (seconds) allowed on the finish /
    cct / makespan identities, default [1e-9]. *)

val attribution :
  ?tol:float ->
  coflows:Sunflow_core.Coflow.t list ->
  Sunflow_sim.Sim_result.t ->
  Sunflow_obs.Attrib.breakdown list * Violation.t list
(** Run {!Sunflow_obs.Attrib.compute} over the windows the simulator
    recorded (the run must have executed with observability enabled)
    and enforce its conservation invariant: every component
    non-negative, wait + setup + transfer + blocked = cct, and the
    blame vector summing to the blocked component. Returns the
    breakdowns (one per input Coflow present in the result, ascending
    id) alongside the violations. [tol] is the absolute slack in
    seconds, default [1e-6] — looser than {!result}'s because each
    component is a sum over the elementary intervals of the Coflow's
    span, so float error grows with the interval count. *)

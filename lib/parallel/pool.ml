(* Work-stealing-free shared-queue pool: one mutex-protected FIFO of
   chunk closures, [domains - 1] spawned worker domains, and a
   submitting domain that helps drain the queue so nested maps cannot
   deadlock. Chunks write results into pre-assigned slots of the
   output array, which makes the gather deterministic regardless of
   scheduling (distinct slots, so the writes race with nothing). *)

(* Gated observability: chunk spans land on each executing domain's
   trace track (so Perfetto shows per-domain busy/idle), the busy
   gauge accumulates per-domain busy seconds (summed on snapshot),
   and the queue-depth histogram samples the backlog at every
   enqueue. All behind Sunflow_obs.Control. *)
module Obs = Sunflow_obs

let m_chunks = Obs.Registry.counter "pool.chunks"
let g_busy = Obs.Registry.gauge "pool.busy_s"
let h_queue_depth = Obs.Registry.histogram "pool.queue_depth"

type t = {
  n_domains : int;
  mu : Mutex.t;
  cv : Condition.t;  (* signalled on enqueue and on shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let domains t = t.n_domains

let rec worker_loop t =
  Mutex.lock t.mu;
  let rec next () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.stop then None
    else begin
      Condition.wait t.cv t.mu;
      next ()
    end
  in
  let job = next () in
  Mutex.unlock t.mu;
  match job with
  | None -> ()
  | Some run ->
    run ();
    worker_loop t

let create ~domains =
  let n_domains = max 1 domains in
  let t =
    {
      n_domains;
      mu = Mutex.create ();
      cv = Condition.create ();
      queue = Queue.create ();
      stop = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (n_domains - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mu;
  t.stop <- true;
  Condition.broadcast t.cv;
  Mutex.unlock t.mu;
  List.iter Domain.join t.workers;
  t.workers <- []

(* The caller's share of the work: drain whatever is queued (possibly
   chunks of other in-flight maps — running them early is harmless)
   until the queue is momentarily empty. *)
let rec help t =
  Mutex.lock t.mu;
  let job = if Queue.is_empty t.queue then None else Some (Queue.pop t.queue) in
  Mutex.unlock t.mu;
  match job with
  | None -> ()
  | Some run ->
    run ();
    help t

let sequential_map f arr = Array.map f arr

let map ?chunk t f arr =
  (* validated on every path, not just the parallel one — a nonsense
     chunk size must not pass silently merely because the input was
     small or the pool sequential *)
  (match chunk with
  | Some c when c <= 0 -> invalid_arg "Pool.map: chunk must be positive"
  | _ -> ());
  let n = Array.length arr in
  if n = 0 then [||]
  else if t.n_domains <= 1 || t.stop || n = 1 then sequential_map f arr
  else begin
    let chunk =
      match chunk with
      | Some c -> c
      | None -> max 1 (n / (t.n_domains * 8))
    in
    (* element 0 is computed here, before the fan-out: its result
       seeds the output array (so the array has its final runtime
       representation — no placeholder of the wrong shape, which
       matters for flat float arrays), and the chunks cover 1..n-1 *)
    let results = Array.make n (f arr.(0)) in
    let n_chunks = (n - 1 + chunk - 1) / chunk in
    let remaining = Atomic.make n_chunks in
    let first_error = Atomic.make None in
    let fin_mu = Mutex.create () and fin_cv = Condition.create () in
    let run_chunk ci () =
      let obs = Obs.Control.enabled () in
      if obs then Obs.Tracer.begin_span ~cat:"pool" "pool.chunk";
      let w0 = if obs then Obs.Control.now_ns () else 0L in
      let lo = 1 + (ci * chunk) in
      let hi = min (lo + chunk) n - 1 in
      (try
         for i = lo to hi do
           results.(i) <- f arr.(i)
         done
       with e ->
         ignore (Atomic.compare_and_set first_error None (Some e) : bool));
      if obs then begin
        Obs.Registry.incr m_chunks;
        Obs.Registry.gauge_add g_busy
          (Int64.to_float (Int64.sub (Obs.Control.now_ns ()) w0) /. 1e9);
        Obs.Tracer.end_span ~cat:"pool" "pool.chunk"
      end;
      if Atomic.fetch_and_add remaining (-1) = 1 then begin
        (* last chunk: wake the submitter if it is already waiting *)
        Mutex.lock fin_mu;
        Condition.broadcast fin_cv;
        Mutex.unlock fin_mu
      end
    in
    Mutex.lock t.mu;
    for ci = 0 to n_chunks - 1 do
      Queue.push (run_chunk ci) t.queue
    done;
    if Obs.Control.enabled () then
      Obs.Registry.observe h_queue_depth (float_of_int (Queue.length t.queue));
    Condition.broadcast t.cv;
    Mutex.unlock t.mu;
    help t;
    Mutex.lock fin_mu;
    while Atomic.get remaining > 0 do
      Condition.wait fin_cv fin_mu
    done;
    Mutex.unlock fin_mu;
    (match Atomic.get first_error with Some e -> raise e | None -> ());
    results
  end

let map_list ?chunk t f l = Array.to_list (map ?chunk t f (Array.of_list l))

(* --- process-default pool --------------------------------------------- *)

let clamp_jobs n = min 64 (max 1 n)

let override = ref None

let env_jobs () =
  match Sys.getenv_opt "SUNFLOW_JOBS" with
  | Some s -> int_of_string_opt (String.trim s)
  | None -> None

let default_jobs () =
  clamp_jobs
    (match !override with
    | Some n -> n
    | None -> (
      match env_jobs () with
      | Some n -> n
      | None -> Domain.recommended_domain_count ()))

let set_jobs n = override := n

let shared : t option ref = ref None

let get () =
  let want = default_jobs () in
  match !shared with
  | Some p when p.n_domains = want && not p.stop -> p
  | prev ->
    Option.iter shutdown prev;
    let p = create ~domains:want in
    shared := Some p;
    p

let run ?chunk f arr = map ?chunk (get ()) f arr
let run_list ?chunk f l = map_list ?chunk (get ()) f l

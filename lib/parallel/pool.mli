(** A dependency-free fixed-size domain pool for embarrassingly
    parallel sweeps (per-Coflow scheduling, (delta, policy) grid
    points), built on stdlib [Domain]/[Mutex]/[Condition] only.

    Design constraints, in order:

    {ol
    {- {b Determinism.} [map pool f arr] returns exactly what
       [Array.map f arr] returns, for any pool size and chunking:
       chunk [i] writes its results straight into slots
       [i*chunk .. ] of the output array, so the gather is
       input-ordered by construction and never depends on which
       domain finished first. The only requirement on [f] is that its
       {e result} be a function of its argument — [f] may freely
       bump work counters or memo caches as the schedulers do.}
    {- {b No deadlocks.} The submitting domain is itself a worker: it
       drains the task queue alongside the pool, so a [map] issued
       from inside a task (nested parallelism) completes even when
       every pool domain is busy.}
    {- {b Graceful degradation.} A pool with [domains <= 1] spawns no
       domains at all and [map] reduces to [Array.map]; the library
       works unchanged on a single-core machine.}}

    Exceptions raised by [f] are caught in the worker, the remaining
    chunks of that call still run to completion (so the pool is left
    reusable), and the first exception observed is re-raised in the
    caller. *)

type t

val create : domains:int -> t
(** Pool that executes maps on [max 1 domains] domains in total: the
    caller plus [domains - 1] spawned workers. The worker domains
    idle on a condition variable between calls. *)

val domains : t -> int
(** Parallelism the pool was created with (always [>= 1]). *)

val shutdown : t -> unit
(** Join the worker domains. Further [map] calls on the pool run
    sequentially. Idempotent. *)

val map : ?chunk:int -> t -> ('a -> 'b) -> 'a array -> 'b array
(** Parallel [Array.map]. [chunk] is the number of consecutive
    elements handed to a worker at a time (default: enough to give
    each domain several chunks for load balancing; tasks as heavy as
    a full Coflow schedule do fine with [~chunk:1]). Raises
    [Invalid_argument] if [chunk <= 0], on every path — including the
    degenerate ones (empty input, sequential pool) that never read it. *)

val map_list : ?chunk:int -> t -> ('a -> 'b) -> 'a list -> 'b list
(** Parallel [List.map], same guarantees as {!map}. *)

(** {1 Process-default pool}

    The experiment harness, bench and CLI share one lazily created
    pool sized by, in decreasing priority: {!set_jobs}, the
    [SUNFLOW_JOBS] environment variable, and
    [Domain.recommended_domain_count ()]. *)

val default_jobs : unit -> int
(** Parallelism the next {!get} will use (clamped to [1 .. 64]). *)

val set_jobs : int option -> unit
(** Override the default ([None] restores the environment-derived
    default). The shared pool is resized on the next {!get}. *)

val get : unit -> t
(** The shared pool, (re)created on demand at {!default_jobs}. *)

val run : ?chunk:int -> ('a -> 'b) -> 'a array -> 'b array
(** [map (get ())]. *)

val run_list : ?chunk:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map_list (get ())]. *)

(** Global observability switch.

    Every gated instrumentation site in the scheduler and the
    simulators starts with [if Control.enabled () then ...]; when the
    switch is off that is the whole cost — one atomic load and one
    branch, no allocation, no clock read. The bench harness measures
    the disabled per-probe cost and gates it below 2% of scheduler
    wall time (see bench/main.ml, "obs" section).

    Always-on metrics (the PRT work counters, which predate this
    library and whose totals must stay bit-identical to the seed's
    [Prt.stats]) bypass the switch — they use {!Registry} handles
    directly. *)

val enabled : unit -> bool
(** Whether gated instrumentation (spans, timeline, optional metrics)
    records anything. Off by default. *)

val set_enabled : bool -> unit
(** Flip the switch. Meant for process start-up (CLI flags, bench
    sections); flipping it while worker domains run is safe — sites
    observe the new value on their next probe — but events from
    mid-flight operations may be partially recorded. *)

val now_ns : unit -> int64
(** Monotonic clock, nanoseconds since an arbitrary origin
    (CLOCK_MONOTONIC via bechamel's stub). *)

type event =
  | Arrival of { coflow : int; t : float }
  | Setup of { coflow : int; src : int; dst : int; t : float; delta : float }
  | Flow_finish of { coflow : int; src : int; dst : int; t : float }
  | Finish of { coflow : int; t : float; cct : float }

let mu = Mutex.create ()
let recorded : (event * int) list ref = ref []
let seq = ref 0

let record ev =
  if Control.enabled () then begin
    Mutex.lock mu;
    recorded := (ev, !seq) :: !recorded;
    incr seq;
    Mutex.unlock mu
  end

let clear () =
  Mutex.lock mu;
  recorded := [];
  seq := 0;
  Mutex.unlock mu

let time_of = function
  | Arrival { t; _ } | Setup { t; _ } | Flow_finish { t; _ } | Finish { t; _ }
    ->
    t

let indexed_events () =
  Mutex.lock mu;
  let l = !recorded in
  Mutex.unlock mu;
  List.sort
    (fun (a, ai) (b, bi) -> compare (time_of a, ai) (time_of b, bi))
    l

let events () = List.map fst (indexed_events ())

(* --- exports ----------------------------------------------------------- *)

let fmt_f v = Printf.sprintf "%.9g" v

let to_csv () =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "coflow,event,t_seconds,src,dst,delta_seconds\n";
  let first_setup_seen = Hashtbl.create 16 in
  List.iter
    (fun ev ->
      let line =
        match ev with
        | Arrival { coflow; t } ->
          Printf.sprintf "%d,arrival,%s,,,\n" coflow (fmt_f t)
        | Setup { coflow; src; dst; t; delta } ->
          let tag =
            if Hashtbl.mem first_setup_seen coflow then "setup"
            else begin
              Hashtbl.replace first_setup_seen coflow ();
              "first_circuit"
            end
          in
          Printf.sprintf "%d,%s,%s,%d,%d,%s\n" coflow tag (fmt_f t) src dst
            (fmt_f delta)
        | Flow_finish { coflow; src; dst; t } ->
          Printf.sprintf "%d,flow_finish,%s,%d,%d,\n" coflow (fmt_f t) src dst
        | Finish { coflow; t; cct } ->
          (* the delta column doubles as the CCT on finish lines *)
          Printf.sprintf "%d,finish,%s,,,%s\n" coflow (fmt_f t) (fmt_f cct)
      in
      Buffer.add_string buf line)
    (events ());
  Buffer.contents buf

type per_coflow = {
  mutable arrival : float option;
  mutable setups : (float * int * int * float) list;  (* reversed *)
  mutable flow_finishes : (float * int * int) list;  (* reversed *)
  mutable finish : float option;
  mutable cct : float option;
}

let to_json () =
  let tbl : (int, per_coflow) Hashtbl.t = Hashtbl.create 16 in
  let entry id =
    match Hashtbl.find_opt tbl id with
    | Some e -> e
    | None ->
      let e =
        { arrival = None; setups = []; flow_finishes = []; finish = None;
          cct = None }
      in
      Hashtbl.replace tbl id e;
      e
  in
  List.iter
    (fun ev ->
      match ev with
      | Arrival { coflow; t } ->
        let e = entry coflow in
        if e.arrival = None then e.arrival <- Some t
      | Setup { coflow; src; dst; t; delta } ->
        let e = entry coflow in
        e.setups <- (t, src, dst, delta) :: e.setups
      | Flow_finish { coflow; src; dst; t } ->
        let e = entry coflow in
        e.flow_finishes <- (t, src, dst) :: e.flow_finishes
      | Finish { coflow; t; cct } ->
        let e = entry coflow in
        e.finish <- Some t;
        e.cct <- Some cct)
    (events ());
  let ids =
    Hashtbl.fold (fun id _ acc -> id :: acc) tbl [] |> List.sort compare
  in
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let opt = function Some v -> fmt_f v | None -> "null" in
  add "[\n";
  List.iteri
    (fun i id ->
      let e = Hashtbl.find tbl id in
      let setups = List.rev e.setups in
      let first_circuit =
        match setups with (t, _, _, _) :: _ -> Some t | [] -> None
      in
      add "  {\"coflow\": %d, \"arrival\": %s, \"first_circuit\": %s, " id
        (opt e.arrival) (opt first_circuit);
      add "\"setups\": [";
      List.iteri
        (fun j (t, src, dst, delta) ->
          add "%s{\"t\": %s, \"src\": %d, \"dst\": %d, \"delta\": %s}"
            (if j = 0 then "" else ", ")
            (fmt_f t) src dst (fmt_f delta))
        setups;
      add "], \"flow_finishes\": [";
      List.iteri
        (fun j (t, src, dst) ->
          add "%s{\"t\": %s, \"src\": %d, \"dst\": %d}"
            (if j = 0 then "" else ", ")
            (fmt_f t) src dst)
        (List.rev e.flow_finishes);
      add "], \"finish\": %s, \"cct\": %s}%s\n" (opt e.finish) (opt e.cct)
        (if i = List.length ids - 1 then "" else ",");
      ())
    ids;
  add "]\n";
  Buffer.contents buf

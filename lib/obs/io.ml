let with_out_file path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out_noerr oc) (fun () -> f oc)

let write_file path contents =
  with_out_file path (fun oc ->
      output_string oc contents;
      flush oc)

(** CCT attribution: decompose each Coflow's completion time into
    admission wait, reconfiguration (delta) time, transfer time, and
    blocked-on-contention time — with the blocked share blamed on the
    specific Coflows occupying the ports it still needs.

    The simulators record, when {!Control.enabled}, every {e executed}
    circuit segment: the part of a PRT reservation that actually ran
    inside a scheduling slice, clipped to the slice, with the instant
    its setup phase completed. {!compute} then sweeps each Coflow's
    [[arrival, finish)] span: the recorded segments and the span
    boundaries partition it into elementary intervals, and every
    interval is classified into exactly one component by priority —

    + {b transfer}: some own circuit is transmitting;
    + {b setup}: else, some own circuit is paying reconfiguration;
    + {b blocked}: else, some port the Coflow still needs is occupied
      by another Coflow's circuit. The interval's length is split
      equally over the distinct occupying Coflows, so the blame vector
      sums to the blocked component;
    + {b wait}: otherwise — admitted but unscheduled with its ports
      free (scheduler queueing, the gap before the first circuit).

    "Still needs" narrows as the run progresses: a port is needed from
    arrival until the last {!Timeline.Flow_finish} recorded for that
    (Coflow, port) once all its flows on the port have drained — so
    contention on a port the Coflow is already done with reads as wait,
    not blame.

    Because the components partition the span, they sum to the CCT
    {e by construction}, up to float summation error — the conservation
    invariant [Sim_check.attribution] enforces (the checker lives in
    [lib/check], which owns {!Violation}-style reporting).

    Like {!Timeline}, recording is mutex-serialised at simulator-event
    granularity (cold path, never inside scheduler loops) and costs
    nothing when {!Control.enabled} is off. *)

type window = {
  w_coflow : int;
  w_src : int;  (** input port *)
  w_dst : int;  (** output port *)
  w_t0 : float;  (** segment start (simulated seconds) *)
  w_tx : float;  (** instant setup completes and transfer begins,
                     clamped into [[w_t0, w_t1]] *)
  w_t1 : float;  (** segment end *)
}
(** One executed circuit segment, clipped to the scheduling slice it
    ran in. A reservation spanning several slices is recorded as
    several abutting windows. *)

val record_window :
  coflow:int -> src:int -> dst:int -> t0:float -> tx:float -> t1:float -> unit
(** No-op when {!Control.enabled} is false (gate at the call site
    anyway, like {!Timeline.record}) or when the segment is empty
    ([t1 <= t0]). *)

val windows : unit -> window list
(** Recorded windows in recording order. *)

val clear : unit -> unit

(** {1 Attribution} *)

type port_demand = {
  p_port : int;
  p_flows : int;  (** flows of the Coflow's demand on this port *)
}

type spec = {
  s_id : int;
  s_arrival : float;
  s_finish : float;
  s_srcs : port_demand list;  (** input ports the demand touches *)
  s_dsts : port_demand list;  (** output ports the demand touches *)
}
(** What {!compute} needs to know about one Coflow. The caller (which,
    unlike this library, can see [Coflow.t]/[Sim_result.t]) derives
    ports and flow counts from the demand matrix and the finish from
    the simulation result. *)

type blame = { b_coflow : int; b_seconds : float }

type breakdown = {
  a_id : int;
  a_arrival : float;
  a_finish : float;
  a_cct : float;
  a_wait : float;
  a_setup : float;
  a_transfer : float;
  a_blocked : float;
  a_blame : blame list;
      (** distinct blamed Coflows, seconds descending then id
          ascending; sums to [a_blocked] *)
}

val compute : spec list -> breakdown list
(** Attribute every given Coflow against the recorded windows and the
    {!Timeline} (for per-port flow-finish narrowing), in input order.
    Pure with respect to the recording state: call after the run, as
    often as needed. Cost is O(relevant windows * boundaries) per
    Coflow — windows are indexed by port and owner first, so only a
    Coflow's own segments and its ports' occupants are swept. *)

val residual : breakdown -> float
(** [a_cct - (a_wait + a_setup + a_transfer + a_blocked)] — the
    conservation error, zero up to float summation noise. *)

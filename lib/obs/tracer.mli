(** Span/event tracer: begin/end spans and instant events on the
    monotonic clock, recorded into per-domain buffers (plain appends,
    no locking on the hot path) and exported as Chrome trace-event
    JSON loadable in Perfetto / chrome://tracing.

    Every emitter is gated on {!Control.enabled}: when tracing is off
    an emit call is one atomic load and a branch. When on, an emit is
    one clock read plus an append into the calling domain's buffer;
    buffers register themselves in a mutex-protected list on the
    domain's first event (the [Prt]/{!Registry} DLS pattern), so
    domains never contend with each other while tracing.

    Spans nest per domain: Perfetto matches a [B] (begin) event with
    the next [E] (end) on the same thread track, so sites must emit
    balanced begin/end pairs in LIFO order — {!with_span} does this
    for you, exception-safely; hot paths that cannot afford a closure
    use {!begin_span}/{!end_span} directly.

    Each domain keeps at most [2^20] events; beyond that, events are
    dropped (counted in {!dropped}) rather than growing without
    bound. *)

type phase = Begin | End | Instant

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts : int64;  (** monotonic nanoseconds *)
  tid : int;  (** recording domain's id *)
}

val begin_span : ?cat:string -> string -> unit
val end_span : ?cat:string -> string -> unit
val instant : ?cat:string -> string -> unit

val with_span : ?cat:string -> string -> (unit -> 'a) -> 'a
(** [with_span name f] brackets [f ()] with a begin/end pair; the end
    event is emitted even when [f] raises. When tracing is disabled
    this is exactly [f ()]. *)

val event_count : unit -> int
(** Events currently buffered, over all domains. *)

val dropped : unit -> int
(** Events discarded to per-domain capacity, over all domains. Also
    mirrored as the ["tracer.dropped"] {!Registry} counter (zeroed by
    {!clear}), so metrics exports record that a trace export taken at
    the same instant is truncated. *)

val events : unit -> event list
(** All buffered events, sorted by [(ts, tid, append order)]. Within
    one domain the order is exactly emission order (the clock is
    monotonic and ties keep the append order). *)

val clear : unit -> unit
(** Drop all buffered events (buffers stay registered). *)

val to_chrome_json : unit -> string
(** The buffered events in Chrome trace-event JSON object format:
    [{"traceEvents": [...], "displayTimeUnit": "ms"}] with one
    [thread_name] metadata record per domain. Timestamps are
    microseconds relative to the earliest buffered event. *)

(** Schema validation for exported Chrome trace-event JSON. Used by
    the obs test suite and the bench checker to prove a
    [--trace-out] / bench trace file will actually load in Perfetto
    or chrome://tracing. *)

val validate : string -> (int, string) result
(** Parse a trace produced by {!Tracer.to_chrome_json} (or any trace
    in the JSON-object flavour of the format) and check:

    - the root is an object with a [traceEvents] array;
    - every event is an object with a string [name], a string [ph]
      of one of the known phases ([B E X i I M]), a finite numeric
      [ts] (except metadata), and numeric [pid]/[tid];
    - per [(pid, tid)] track, [B]/[E] events balance: never more
      ends than begins, and zero open spans at the end;
    - per track, timestamps never decrease in file order.

    Returns the number of non-metadata events on success. *)

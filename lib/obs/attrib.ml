type window = {
  w_coflow : int;
  w_src : int;
  w_dst : int;
  w_t0 : float;
  w_tx : float;
  w_t1 : float;
}

(* Same storage discipline as Timeline: recording happens at
   simulator-event granularity, so a single mutex-protected list is
   cold. Kept reversed; [windows] restores recording order. *)
let mu = Mutex.create ()
let store : window list ref = ref []

let record_window ~coflow ~src ~dst ~t0 ~tx ~t1 =
  if Control.enabled () && t1 > t0 then begin
    let tx = Float.max t0 (Float.min t1 tx) in
    Mutex.lock mu;
    store :=
      { w_coflow = coflow; w_src = src; w_dst = dst; w_t0 = t0; w_tx = tx; w_t1 = t1 }
      :: !store;
    Mutex.unlock mu
  end

let windows () =
  Mutex.lock mu;
  let l = List.rev !store in
  Mutex.unlock mu;
  l

let clear () =
  Mutex.lock mu;
  store := [];
  Mutex.unlock mu

(* --- attribution ------------------------------------------------------- *)

type port_demand = { p_port : int; p_flows : int }

type spec = {
  s_id : int;
  s_arrival : float;
  s_finish : float;
  s_srcs : port_demand list;
  s_dsts : port_demand list;
}

type blame = { b_coflow : int; b_seconds : float }

type breakdown = {
  a_id : int;
  a_arrival : float;
  a_finish : float;
  a_cct : float;
  a_wait : float;
  a_setup : float;
  a_transfer : float;
  a_blocked : float;
  a_blame : blame list;
}

let push tbl k v =
  Hashtbl.replace tbl k (v :: (try Hashtbl.find tbl k with Not_found -> []))

let find_all tbl k = try Hashtbl.find tbl k with Not_found -> []

(* Flow_finish narrowing: for each (coflow, side, port), how many flows
   have drained and when the last one did. [side] is 0 for input ports
   (window src), 1 for output ports (window dst). *)
let flow_finish_table () =
  let tbl : (int * int * int, int * float) Hashtbl.t = Hashtbl.create 64 in
  let bump key t =
    let n, mx = try Hashtbl.find tbl key with Not_found -> (0, neg_infinity) in
    Hashtbl.replace tbl key (n + 1, Float.max mx t)
  in
  List.iter
    (function
      | Timeline.Flow_finish { coflow; src; dst; t } ->
        bump (coflow, 0, src) t;
        bump (coflow, 1, dst) t
      | _ -> ())
    (Timeline.events ());
  tbl

let compute specs =
  let ws = windows () in
  let by_owner = Hashtbl.create 64 in
  let by_src = Hashtbl.create 64 in
  let by_dst = Hashtbl.create 64 in
  List.iter
    (fun w ->
      push by_owner w.w_coflow w;
      push by_src w.w_src w;
      push by_dst w.w_dst w)
    ws;
  let finished = flow_finish_table () in
  let attribute s =
    let arr = s.s_arrival and fin = s.s_finish in
    if not (fin > arr) then
      {
        a_id = s.s_id;
        a_arrival = arr;
        a_finish = fin;
        a_cct = Float.max 0. (fin -. arr);
        a_wait = 0.;
        a_setup = 0.;
        a_transfer = 0.;
        a_blocked = 0.;
        a_blame = [];
      }
    else begin
      let clamp t = Float.max arr (Float.min fin t) in
      let own =
        List.filter_map
          (fun w ->
            let t0 = clamp w.w_t0 and t1 = clamp w.w_t1 in
            if t1 > t0 then Some { w with w_t0 = t0; w_tx = clamp w.w_tx; w_t1 = t1 }
            else None)
          (find_all by_owner s.s_id)
      in
      (* A port stays needed until the last Flow_finish that drains the
         Coflow's flows on it; if the run never recorded them all (e.g.
         obs was flipped mid-run), fall back to the finish — needed the
         whole span, which can over-blame but never breaks
         conservation. *)
      let needed_until side (pd : port_demand) =
        match Hashtbl.find_opt finished (s.s_id, side, pd.p_port) with
        | Some (n, mx) when n >= pd.p_flows -> clamp mx
        | _ -> fin
      in
      (* (until, windows of other Coflows occupying the port) *)
      let occ =
        List.concat_map
          (fun (side, pd) ->
            let until = needed_until side pd in
            let all = if side = 0 then find_all by_src pd.p_port else find_all by_dst pd.p_port in
            List.filter_map
              (fun w ->
                if w.w_coflow = s.s_id then None
                else
                  let t0 = Float.max arr w.w_t0 and t1 = Float.min until w.w_t1 in
                  if t1 > t0 then Some (t0, t1, w.w_coflow) else None)
              all)
          (List.map (fun pd -> (0, pd)) s.s_srcs
          @ List.map (fun pd -> (1, pd)) s.s_dsts)
      in
      let bounds =
        List.sort_uniq Float.compare
          ((arr :: fin
            :: List.concat_map (fun w -> [ w.w_t0; w.w_tx; w.w_t1 ]) own)
          @ List.concat_map (fun (t0, t1, _) -> [ t0; t1 ]) occ)
      in
      let wait = ref 0. and setup = ref 0. and transfer = ref 0. in
      let blocked = ref 0. in
      let blame : (int, float ref) Hashtbl.t = Hashtbl.create 8 in
      let rec sweep = function
        | a :: (b :: _ as rest) ->
          let len = b -. a in
          if len > 0. then begin
            let m = a +. (0.5 *. len) in
            if List.exists (fun w -> w.w_tx <= m && m < w.w_t1) own then
              transfer := !transfer +. len
            else if List.exists (fun w -> w.w_t0 <= m && m < w.w_tx) own then
              setup := !setup +. len
            else begin
              let blockers =
                List.sort_uniq compare
                  (List.filter_map
                     (fun (t0, t1, id) -> if t0 <= m && m < t1 then Some id else None)
                     occ)
              in
              match blockers with
              | [] -> wait := !wait +. len
              | ids ->
                blocked := !blocked +. len;
                let share = len /. float_of_int (List.length ids) in
                List.iter
                  (fun id ->
                    match Hashtbl.find_opt blame id with
                    | Some r -> r := !r +. share
                    | None -> Hashtbl.add blame id (ref share))
                  ids
            end
          end;
          sweep rest
        | _ -> ()
      in
      sweep bounds;
      let a_blame =
        Hashtbl.fold (fun id r acc -> { b_coflow = id; b_seconds = !r } :: acc) blame []
        |> List.sort (fun x y ->
               match Float.compare y.b_seconds x.b_seconds with
               | 0 -> compare x.b_coflow y.b_coflow
               | c -> c)
      in
      {
        a_id = s.s_id;
        a_arrival = arr;
        a_finish = fin;
        a_cct = fin -. arr;
        a_wait = !wait;
        a_setup = !setup;
        a_transfer = !transfer;
        a_blocked = !blocked;
        a_blame;
      }
    end
  in
  List.map attribute specs

let residual b = b.a_cct -. (b.a_wait +. b.a_setup +. b.a_transfer +. b.a_blocked)

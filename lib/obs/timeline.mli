(** Per-Coflow timeline: lifecycle events in {e simulated} time (the
    tracer's spans are wall time — where the program spends cycles;
    this module is where the simulated fabric spends seconds).

    The simulators record, when {!Control.enabled}: each Coflow's
    arrival, every circuit setup executed on its behalf together with
    the reconfiguration delay paid, each subflow (src, dst) drained,
    and the Coflow's completion with its CCT. The exports derive the
    first-circuit instant — the paper's "time to first byte" seam —
    from the earliest setup.

    Events from concurrent recorders are mutex-serialised; recording
    happens at simulator-event granularity (arrivals, plan windows,
    completions), not in scheduler hot loops, so the lock is cold. *)

type event =
  | Arrival of { coflow : int; t : float }
  | Setup of {
      coflow : int;
      src : int;
      dst : int;
      t : float;
      delta : float;  (** reconfiguration seconds paid by this setup *)
    }
  | Flow_finish of { coflow : int; src : int; dst : int; t : float }
  | Finish of { coflow : int; t : float; cct : float }

val record : event -> unit
(** No-op when {!Control.enabled} is false. Prefer gating at the call
    site anyway ([if Control.enabled () then record ...]) so the
    disabled path does not even allocate the event. *)

val events : unit -> event list
(** Recorded events sorted by [(time, record order)]. *)

val clear : unit -> unit

val to_csv : unit -> string
(** Flat export, one event per line:
    [coflow,event,t_seconds,src,dst,delta_seconds] with [arrival],
    [setup], [first_circuit] (the first setup of each Coflow),
    [flow_finish] and [finish] (whose [delta_seconds] column carries
    the CCT) event tags. *)

val to_json : unit -> string
(** Grouped export: a JSON array of per-Coflow objects
    [{coflow, arrival, first_circuit, setups: [{t, src, dst, delta}],
    flow_finishes: [{t, src, dst}], finish, cct}], sorted by Coflow
    id; instants the run never produced are [null]. *)

type phase = Begin | End | Instant

type event = {
  ph : phase;
  name : string;
  cat : string;
  ts : int64;
  tid : int;
}

(* Growable per-domain buffer. Only its owning domain appends; the
   exporter reads under the registry mutex after the fact, so appends
   are plain stores. *)
type buf = {
  b_tid : int;
  mutable evs : event array;
  mutable len : int;
  mutable b_dropped : int;
}

let max_events_per_domain = 1 lsl 20

(* Mirror of [dropped ()] in the metrics registry, so a metrics export
   records whether the trace export it accompanies is truncated. Kept
   in lockstep: bumped on the drop path, zeroed by [clear]. *)
let c_dropped = Registry.counter "tracer.dropped"

let registry_mu = Mutex.create ()
let bufs : buf list ref = ref []

let buf_key =
  Domain.DLS.new_key (fun () ->
      let b =
        {
          b_tid = (Domain.self () :> int);
          evs = [||];
          len = 0;
          b_dropped = 0;
        }
      in
      Mutex.lock registry_mu;
      bufs := b :: !bufs;
      Mutex.unlock registry_mu;
      b)

let append b ev =
  if b.len >= max_events_per_domain then begin
    b.b_dropped <- b.b_dropped + 1;
    Registry.incr c_dropped
  end
  else begin
    let cap = Array.length b.evs in
    if b.len = cap then begin
      let evs = Array.make (max 256 (2 * cap)) ev in
      Array.blit b.evs 0 evs 0 b.len;
      b.evs <- evs
    end;
    b.evs.(b.len) <- ev;
    b.len <- b.len + 1
  end

let emit ph cat name =
  let b = Domain.DLS.get buf_key in
  append b { ph; name; cat; ts = Control.now_ns (); tid = b.b_tid }

let begin_span ?(cat = "sunflow") name =
  if Control.enabled () then emit Begin cat name

let end_span ?(cat = "sunflow") name =
  if Control.enabled () then emit End cat name

let instant ?(cat = "sunflow") name =
  if Control.enabled () then emit Instant cat name

let with_span ?cat name f =
  if not (Control.enabled ()) then f ()
  else begin
    begin_span ?cat name;
    Fun.protect ~finally:(fun () -> end_span ?cat name) f
  end

let with_bufs f =
  Mutex.lock registry_mu;
  let l = !bufs in
  Mutex.unlock registry_mu;
  f l

let event_count () =
  with_bufs (List.fold_left (fun acc b -> acc + b.len) 0)

let dropped () =
  with_bufs (List.fold_left (fun acc b -> acc + b.b_dropped) 0)

(* Snapshot as [(event, append index)], sorted by (ts, tid, index):
   per-domain emission order is preserved (monotonic ts, index breaks
   ties), and domains interleave by timestamp. *)
let indexed_events () =
  with_bufs (fun l ->
      let all = ref [] in
      List.iter
        (fun b ->
          for i = b.len - 1 downto 0 do
            all := (b.evs.(i), i) :: !all
          done)
        l;
      List.sort
        (fun ((a : event), ai) ((b : event), bi) ->
          compare (a.ts, a.tid, ai) (b.ts, b.tid, bi))
        !all)

let events () = List.map fst (indexed_events ())

let clear () =
  Registry.counter_reset c_dropped;
  with_bufs
    (List.iter (fun b ->
         b.evs <- [||];
         b.len <- 0;
         b.b_dropped <- 0))

(* --- Chrome trace-event export ---------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let ph_string = function Begin -> "B" | End -> "E" | Instant -> "i"

let to_chrome_json () =
  let evs = events () in
  let t0 = match evs with [] -> 0L | e :: _ -> e.ts in
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\"traceEvents\": [\n";
  let tids =
    List.sort_uniq compare (List.map (fun (e : event) -> e.tid) evs)
  in
  let n_meta = List.length tids and n_evs = List.length evs in
  List.iteri
    (fun i tid ->
      add
        "  {\"name\": \"thread_name\", \"ph\": \"M\", \"pid\": 1, \"tid\": \
         %d, \"args\": {\"name\": \"domain-%d\"}}%s\n"
        tid tid
        (if n_evs = 0 && i = n_meta - 1 then "" else ","))
    tids;
  List.iteri
    (fun i (e : event) ->
      let ts_us = Int64.to_float (Int64.sub e.ts t0) /. 1e3 in
      add
        "  {\"name\": \"%s\", \"cat\": \"%s\", \"ph\": \"%s\", \"ts\": \
         %.3f, \"pid\": 1, \"tid\": %d%s}%s\n"
        (json_escape e.name) (json_escape e.cat) (ph_string e.ph) ts_us e.tid
        (match e.ph with Instant -> ", \"s\": \"t\"" | _ -> "")
        (if i = n_evs - 1 then "" else ","))
    evs;
  add "], \"displayTimeUnit\": \"ms\"}\n";
  Buffer.contents buf

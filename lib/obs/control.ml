let flag = Atomic.make false
let enabled () = Atomic.get flag
let set_enabled b = Atomic.set flag b
let now_ns () = Monotonic_clock.now ()

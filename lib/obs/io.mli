(** Leak-proof file writing, shared by every obs exporter, the CLI
    and the bench harness (the bug class PR 1 fixed in
    [Trace.load]/[Trace.save]: an exception between [open_out] and
    [close_out] leaked the descriptor and could drop buffered
    output). *)

val with_out_file : string -> (out_channel -> 'a) -> 'a
(** [with_out_file path f] opens [path] for writing, runs [f] on the
    channel and closes it even when [f] raises. *)

val write_file : string -> string -> unit
(** [write_file path contents] — [with_out_file] + [output_string]. *)

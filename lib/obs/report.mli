(** Machine-validatable run reports: CCT CDFs binned by Coflow width,
    aggregate blame breakdown, per-port utilization, top-K slowest
    Coflows with their blame vectors.

    The report splits into two parts:

    - {b run}: how the run was produced — trace, replan mode, shard
      and bucket knobs, shard/conflict stats, sampler totals. These
      legitimately differ between modes.
    - {b body}: what the run did. Every body field derives from the
      executed schedule, so for the same trace the body is
      byte-identical across [`Incremental]/[`Rebuild] and every
      [--shards] count (the engine modes are bit-identical by
      construction — [`Full] differs at float-rounding scale, see
      [Circuit_sim]). {!body_json} renders the body alone so bench
      can digest-gate exactly that invariant.

    This module only renders; the caller (CLI, bench — via
    [Check.Attrib_report], which can see [Coflow.t]) assembles the
    inputs from {!Attrib}, {!Sampler} and the simulation result. *)

type coflow_row = {
  c_width : int;
      (** max(#sender ports, #receiver ports) of the demand *)
  c_bytes : float;  (** total demand bytes *)
  c_breakdown : Attrib.breakdown;
}

type t = {
  r_run : (string * string) list;
      (** ordered [(key, pre-rendered JSON value)] pairs *)
  r_makespan_s : float;
  r_events : int;
  r_setups : int;
  r_rows : coflow_row list;
  r_ports : (string * float * float) list;
      (** [(port, transmit_s, setup_s)], from {!Sampler.port_totals} *)
  r_top_k : int;  (** slowest-Coflow rows to include *)
}

val width_bin : int -> string
(** Power-of-two width class: ["0"], ["1"], ["2"], ["3-4"], ["5-8"],
    ... *)

val body_json : t -> string
(** The mode-independent body as one JSON object:
    [{coflows, events, setups, makespan_s,
    blame: {wait_s, setup_s, transfer_s, blocked_s, total_cct_s},
    cct_cdf: [{width, count, quantiles: [{q, cct_s}]}],
    ports: [{port, transmit_s, setup_s, utilization, reconfiguring}],
    slowest: [{coflow, width, bytes, cct_s, wait_s, setup_s,
    transfer_s, blocked_s, blame: [{coflow, seconds}]}]}].
    CDF quantiles are emitted at fixed fractions 0, 0.1, ..., 1.0
    (non-decreasing by construction); [utilization] and
    [reconfiguring] are fractions of the makespan. Floats as [%.9g],
    deterministic ordering throughout. *)

val to_json : t -> string
(** [{"schema": "sunflow-report/1", "run": {..}, "body": body_json}]. *)

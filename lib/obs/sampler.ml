type sample = {
  m_t : float;
  m_t_next : float;
  m_active : int;
  m_circuits : int;
  m_transmit_s : float;
  m_setup_s : float;
  m_busy_ports : int;
  m_rescheduled : int;
  m_spliced : int;
  m_conflicts : int;
  m_rollbacks : int;
}

let mu = Mutex.create ()
let store : sample list ref = ref []

(* (side, port) -> (transmit_s, setup_s); side 0 = input, 1 = output *)
let ports : (int * int, float * float) Hashtbl.t = Hashtbl.create 64

let record s =
  if Control.enabled () then begin
    Mutex.lock mu;
    store := s :: !store;
    Mutex.unlock mu
  end

let samples () =
  Mutex.lock mu;
  let l = List.rev !store in
  Mutex.unlock mu;
  l

let port_busy ~src ~dst ~setup_s ~tx_s =
  if Control.enabled () then begin
    Mutex.lock mu;
    let bump key =
      let tx, su = try Hashtbl.find ports key with Not_found -> (0., 0.) in
      Hashtbl.replace ports key (tx +. tx_s, su +. setup_s)
    in
    bump (0, src);
    bump (1, dst);
    Mutex.unlock mu
  end

let port_totals () =
  Mutex.lock mu;
  let rows = Hashtbl.fold (fun k v acc -> (k, v) :: acc) ports [] in
  Mutex.unlock mu;
  rows
  |> List.sort (fun ((sa, pa), _) ((sb, pb), _) -> compare (sa, pa) (sb, pb))
  |> List.map (fun ((side, port), (tx, su)) ->
         (Printf.sprintf "%s.%d" (if side = 0 then "in" else "out") port, tx, su))

let clear () =
  Mutex.lock mu;
  store := [];
  Hashtbl.reset ports;
  Mutex.unlock mu

let to_jsonl () =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let fl x = if Float.is_finite x then Printf.sprintf "%.9g" x else "null" in
  List.iter
    (fun s ->
      add
        "{\"t\": %s, \"t_next\": %s, \"active\": %d, \"circuits\": %d, \
         \"transmit_s\": %s, \"setup_s\": %s, \"busy_ports\": %d, \
         \"rescheduled\": %d, \"spliced\": %d, \"conflicts\": %d, \
         \"rollbacks\": %d}\n"
        (fl s.m_t) (fl s.m_t_next) s.m_active s.m_circuits (fl s.m_transmit_s)
        (fl s.m_setup_s) s.m_busy_ports s.m_rescheduled s.m_spliced
        s.m_conflicts s.m_rollbacks)
    (samples ());
  Buffer.contents buf

(* Per-domain cells behind a per-metric DLS key, merged under the
   metric's mutex — the same discipline as Prt's work counters, which
   this registry generalises (and which now live here; Prt.stats is a
   façade over four of these counters). *)

type counter_cell = { mutable v : int }

type counter = {
  c_name : string;
  c_mu : Mutex.t;
  c_cells : counter_cell list ref;
  c_key : counter_cell Domain.DLS.key;
}

type gauge_cell = { mutable g : float }

type gauge = {
  g_name : string;
  g_mu : Mutex.t;
  g_cells : gauge_cell list ref;
  g_key : gauge_cell Domain.DLS.key;
}

(* Bucket [i] (for [1 <= i <= n_exp]) covers binary exponents
   [min_exp + i - 1]: the half-open value range
   [2^(min_exp+i-2), 2^(min_exp+i-1)). Index 0 is underflow (<= 0,
   NaN, anything below 2^(min_exp-1)); the last index is overflow. *)
let min_exp = -64
let max_exp = 64
let n_exp = max_exp - min_exp + 1
let n_buckets = n_exp + 2

type histogram_cell = {
  buckets : int array;  (* length n_buckets *)
  mutable n : int;
  mutable sum : float;
  mutable mn : float;
  mutable mx : float;
}

type histogram = {
  h_name : string;
  h_mu : Mutex.t;
  h_cells : histogram_cell list ref;
  h_key : histogram_cell Domain.DLS.key;
}

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;
  h_max : float;
  h_buckets : (float * float * int) list;
}

(* --- the global name table -------------------------------------------- *)

type metric =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

let registry_mu = Mutex.create ()
let metrics : (string, metric) Hashtbl.t = Hashtbl.create 32

(* Find-or-create under the registry mutex. [make] runs inside the
   critical section so two domains racing on the same name cannot
   register twice. *)
let intern name ~kind ~unwrap ~make =
  Mutex.lock registry_mu;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock registry_mu)
    (fun () ->
      match Hashtbl.find_opt metrics name with
      | Some m -> (
        match unwrap m with
        | Some v -> v
        | None ->
          invalid_arg
            (Printf.sprintf "Registry.%s: %S is already a different kind" kind
               name))
      | None ->
        let v, m = make () in
        Hashtbl.replace metrics name m;
        v)

(* --- counters --------------------------------------------------------- *)

let counter name =
  intern name ~kind:"counter"
    ~unwrap:(function Counter c -> Some c | _ -> None)
    ~make:(fun () ->
      let mu = Mutex.create () in
      let cells = ref [] in
      let key =
        Domain.DLS.new_key (fun () ->
            let cell = { v = 0 } in
            Mutex.lock mu;
            cells := cell :: !cells;
            Mutex.unlock mu;
            cell)
      in
      let c = { c_name = name; c_mu = mu; c_cells = cells; c_key = key } in
      (c, Counter c))

let cell c = Domain.DLS.get c.c_key

let incr c =
  let cl = cell c in
  cl.v <- cl.v + 1

let add c n =
  let cl = cell c in
  cl.v <- cl.v + n

let counter_value c =
  Mutex.lock c.c_mu;
  let s = List.fold_left (fun acc cell -> acc + cell.v) 0 !(c.c_cells) in
  Mutex.unlock c.c_mu;
  s

let counter_reset c =
  Mutex.lock c.c_mu;
  List.iter (fun cell -> cell.v <- 0) !(c.c_cells);
  Mutex.unlock c.c_mu

(* --- gauges ----------------------------------------------------------- *)

let gauge name =
  intern name ~kind:"gauge"
    ~unwrap:(function Gauge g -> Some g | _ -> None)
    ~make:(fun () ->
      let mu = Mutex.create () in
      let cells = ref [] in
      let key =
        Domain.DLS.new_key (fun () ->
            let cell = { g = 0. } in
            Mutex.lock mu;
            cells := cell :: !cells;
            Mutex.unlock mu;
            cell)
      in
      let g = { g_name = name; g_mu = mu; g_cells = cells; g_key = key } in
      (g, Gauge g))

let gauge_cell g = Domain.DLS.get g.g_key
let gauge_set g v = (gauge_cell g).g <- v

let gauge_add g v =
  let cl = gauge_cell g in
  cl.g <- cl.g +. v

let gauge_value g =
  Mutex.lock g.g_mu;
  let s = List.fold_left (fun acc cell -> acc +. cell.g) 0. !(g.g_cells) in
  Mutex.unlock g.g_mu;
  s

let gauge_reset g =
  Mutex.lock g.g_mu;
  List.iter (fun cell -> cell.g <- 0.) !(g.g_cells);
  Mutex.unlock g.g_mu

(* --- histograms ------------------------------------------------------- *)

let histogram name =
  intern name ~kind:"histogram"
    ~unwrap:(function Histogram h -> Some h | _ -> None)
    ~make:(fun () ->
      let mu = Mutex.create () in
      let cells = ref [] in
      let key =
        Domain.DLS.new_key (fun () ->
            let cell =
              {
                buckets = Array.make n_buckets 0;
                n = 0;
                sum = 0.;
                mn = infinity;
                mx = neg_infinity;
              }
            in
            Mutex.lock mu;
            cells := cell :: !cells;
            Mutex.unlock mu;
            cell)
      in
      let h = { h_name = name; h_mu = mu; h_cells = cells; h_key = key } in
      (h, Histogram h))

let bucket_index v =
  if Float.is_nan v || v <= 0. then 0
  else if v = infinity then n_buckets - 1
  else begin
    let _, e = Float.frexp v in
    if e < min_exp then 0
    else if e > max_exp then n_buckets - 1
    else e - min_exp + 1
  end

let observe h v =
  let cell = Domain.DLS.get h.h_key in
  let i = bucket_index v in
  cell.buckets.(i) <- cell.buckets.(i) + 1;
  cell.n <- cell.n + 1;
  cell.sum <- cell.sum +. v;
  if v < cell.mn then cell.mn <- v;
  if v > cell.mx then cell.mx <- v

let bucket_bounds i =
  if i = 0 then (neg_infinity, Float.ldexp 1. (min_exp - 1))
  else if i = n_buckets - 1 then (Float.ldexp 1. max_exp, infinity)
  else
    let e = min_exp + i - 1 in
    (Float.ldexp 1. (e - 1), Float.ldexp 1. e)

let histogram_value h =
  Mutex.lock h.h_mu;
  let merged = Array.make n_buckets 0 in
  let n = ref 0 and sum = ref 0. in
  let mn = ref infinity and mx = ref neg_infinity in
  List.iter
    (fun cell ->
      Array.iteri (fun i k -> merged.(i) <- merged.(i) + k) cell.buckets;
      n := !n + cell.n;
      sum := !sum +. cell.sum;
      if cell.mn < !mn then mn := cell.mn;
      if cell.mx > !mx then mx := cell.mx)
    !(h.h_cells);
  Mutex.unlock h.h_mu;
  let buckets = ref [] in
  for i = n_buckets - 1 downto 0 do
    if merged.(i) > 0 then begin
      let lo, hi = bucket_bounds i in
      buckets := (lo, hi, merged.(i)) :: !buckets
    end
  done;
  { h_count = !n; h_sum = !sum; h_min = !mn; h_max = !mx; h_buckets = !buckets }

(* A log-bucket histogram only remembers counts per power-of-two range,
   so a quantile is estimated: walk the cumulative counts to the bucket
   holding the target rank and interpolate linearly inside it. The
   tracked exact min/max replace the unbounded edges of the underflow/
   overflow buckets and clamp the estimate, so q=0 and q=1 are exact. *)
let quantile (s : histogram_snapshot) q =
  if s.h_count = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let target = q *. float_of_int s.h_count in
    let clamp v = Float.max s.h_min (Float.min s.h_max v) in
    let rec walk cum = function
      | [] -> s.h_max
      | (lo, hi, k) :: rest ->
        let cum' = cum +. float_of_int k in
        if cum' >= target || rest = [] then begin
          let lo = if Float.is_finite lo then lo else s.h_min in
          let hi = if Float.is_finite hi then hi else s.h_max in
          let frac = if k = 0 then 0. else (target -. cum) /. float_of_int k in
          clamp (lo +. (frac *. (hi -. lo)))
        end
        else walk cum' rest
    in
    walk 0. s.h_buckets
  end

(* --- snapshots -------------------------------------------------------- *)

type snapshot = {
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}

let all_metrics () =
  Mutex.lock registry_mu;
  let l = Hashtbl.fold (fun name m acc -> (name, m) :: acc) metrics [] in
  Mutex.unlock registry_mu;
  List.sort (fun (a, _) (b, _) -> compare a b) l

let snapshot () =
  let counters = ref [] and gauges = ref [] and histograms = ref [] in
  List.iter
    (fun (name, m) ->
      match m with
      | Counter c -> counters := (name, counter_value c) :: !counters
      | Gauge g -> gauges := (name, gauge_value g) :: !gauges
      | Histogram h -> histograms := (name, histogram_value h) :: !histograms)
    (all_metrics ());
  {
    counters = List.rev !counters;
    gauges = List.rev !gauges;
    histograms = List.rev !histograms;
  }

let reset () =
  List.iter
    (fun (_, m) ->
      match m with
      | Counter c -> counter_reset c
      | Gauge g -> gauge_reset g
      | Histogram h ->
        Mutex.lock h.h_mu;
        List.iter
          (fun cell ->
            Array.fill cell.buckets 0 n_buckets 0;
            cell.n <- 0;
            cell.sum <- 0.;
            cell.mn <- infinity;
            cell.mx <- neg_infinity)
          !(h.h_cells);
        Mutex.unlock h.h_mu)
    (all_metrics ())

(* --- JSON ------------------------------------------------------------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_finite x then Printf.sprintf "%.9g" x else "null"

let to_json s =
  let buf = Buffer.create 1024 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let obj fields render =
    List.iteri
      (fun i (name, v) ->
        add "    \"%s\": " (json_escape name);
        render v;
        add "%s\n" (if i = List.length fields - 1 then "" else ","))
      fields
  in
  add "{\n";
  add "  \"schema\": \"sunflow-obs-metrics/2\",\n";
  add "  \"counters\": {\n";
  obj s.counters (fun v -> add "%d" v);
  add "  },\n";
  add "  \"gauges\": {\n";
  obj s.gauges (fun v -> add "%s" (json_float v));
  add "  },\n";
  add "  \"histograms\": {\n";
  obj s.histograms (fun (h : histogram_snapshot) ->
      add
        "{\"count\": %d, \"sum\": %s, \"min\": %s, \"max\": %s, \"p50\": %s, \
         \"p95\": %s, \"p99\": %s, \"buckets\": ["
        h.h_count (json_float h.h_sum) (json_float h.h_min)
        (json_float h.h_max)
        (json_float (quantile h 0.5))
        (json_float (quantile h 0.95))
        (json_float (quantile h 0.99));
      List.iteri
        (fun i (lo, hi, k) ->
          add "%s{\"lo\": %s, \"hi\": %s, \"count\": %d}"
            (if i = 0 then "" else ", ")
            (json_float lo) (json_float hi) k)
        h.h_buckets;
      add "]}");
  add "  }\n";
  add "}\n";
  Buffer.contents buf

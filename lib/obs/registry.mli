(** Metrics registry: named counters, gauges and log-scale histograms
    with O(1) hot-path updates, safe under multiple domains.

    Domain safety follows the pattern [Prt]'s work counters
    established: each metric hands every domain its own mutable cell
    (created lazily through a per-metric [Domain.DLS] key and
    registered in a mutex-protected cell list), so hot-path updates
    are plain stores with no synchronisation. A snapshot folds the
    cells under the metric's mutex: exact once the contributing
    domains have been joined — [Domain.join] orders their writes
    before the read — and at worst a few increments stale while they
    still run.

    Metrics are registered by name, find-or-create: the same name
    always returns the same handle, so independent modules can share
    a metric. Names are unique across kinds — reusing a counter name
    for a histogram raises [Invalid_argument]. *)

(** {1 Counters} *)

type counter

type counter_cell = { mutable v : int }
(** One domain's slice of a counter. The field is exposed so
    instrumentation sites can increment it with a plain store
    ([cell.v <- cell.v + 1]) exactly as the seed's [Prt] counter
    records did; treat it as private to instrumentation code. *)

val counter : string -> counter
(** Find-or-create the counter registered under [name]. *)

val cell : counter -> counter_cell
(** The calling domain's cell. Fetch once per operation (a DLS read),
    then update fields directly in the hot loop. *)

val incr : counter -> unit
(** [cell c].v + 1 — convenience for cold sites. *)

val add : counter -> int -> unit

val counter_value : counter -> int
(** Sum over every domain's cell (see the staleness caveat above). *)

val counter_reset : counter -> unit

(** {1 Gauges}

    A gauge holds a float per domain; a snapshot {e sums} the
    domains' values. [gauge_add] therefore accumulates a process-wide
    total (e.g. simulated reconfiguration seconds, per-domain busy
    time), while [gauge_set] only makes sense for single-writer
    gauges. *)

type gauge

val gauge : string -> gauge
val gauge_set : gauge -> float -> unit
val gauge_add : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_reset : gauge -> unit

(** {1 Histograms}

    Log-scale (power-of-two) buckets: a positive sample [v] lands in
    the bucket [[2^(e-1), 2^e)] where [e] is its binary exponent
    ([Float.frexp]), clamped to exponents [-64 .. 64]; zero, negative
    and NaN samples land in the underflow bucket, [+inf] and values
    at or above [2^64] in the overflow bucket. Bucketing is O(1) —
    one [frexp], no search. *)

type histogram

val histogram : string -> histogram
val observe : histogram -> float -> unit

type histogram_snapshot = {
  h_count : int;
  h_sum : float;
  h_min : float;  (** [+inf] when empty *)
  h_max : float;  (** [-inf] when empty *)
  h_buckets : (float * float * int) list;
      (** non-empty buckets as [(lo, hi, count)], ascending; underflow
          reports [lo = neg_infinity], overflow [hi = infinity] *)
}

val histogram_value : histogram -> histogram_snapshot

val quantile : histogram_snapshot -> float -> float
(** [quantile s q] estimates the [q]-quantile ([q] clamped to [0, 1])
    of the observations behind a snapshot: cumulative counts locate
    the log bucket holding rank [q * count], and the estimate
    interpolates linearly inside that bucket's [(lo, hi)] range. The
    exact tracked [h_min]/[h_max] stand in for the unbounded edges of
    the underflow/overflow buckets and clamp the result, so [q = 0]
    returns [h_min] and [q = 1] returns [h_max] exactly. The error is
    bounded by the width of one power-of-two bucket. NaN when the
    snapshot is empty. *)

(** {1 Snapshots} *)

type snapshot = {
  counters : (string * int) list;  (** sorted by name *)
  gauges : (string * float) list;
  histograms : (string * histogram_snapshot) list;
}

val snapshot : unit -> snapshot
(** Merge every registered metric. Exactness: see the module header. *)

val reset : unit -> unit
(** Zero every cell of every metric (the metrics stay registered). *)

val to_json : snapshot -> string
(** Render as a JSON object:
    [{"schema": "sunflow-obs-metrics/2", "counters": {..}, "gauges":
    {..}, "histograms": {name: {count, sum, min, max, p50, p95, p99,
    buckets: [{lo, hi, count}]}}}] — the [pNN] fields are {!quantile}
    estimates. Keys sorted, floats emitted with [%.9g] ([null] for
    non-finite), so equal snapshots render identically. *)

(** A minimal JSON reader (no dependency on a JSON library — the
    project hand-rolls its emitters, and this parser keeps them
    honest). Shared by the obs tests, the bench checker and
    {!Chrome_trace.validate}. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val of_string : string -> (t, string) result
(** Parse a complete JSON document; [Error msg] pinpoints the offset
    of the first syntax error. *)

val member : string -> t -> t option
(** Object field lookup; [None] on missing key or non-object. *)

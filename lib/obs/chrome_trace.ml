let ( let* ) r f = match r with Ok v -> f v | Error _ as e -> e

let err fmt = Printf.ksprintf (fun m -> Error m) fmt

let known_phases = [ "B"; "E"; "X"; "i"; "I"; "M" ]

let validate s =
  let* root = Json.of_string s in
  match Json.member "traceEvents" root with
  | None -> err "traceEvents: missing (root must be the object format)"
  | Some (Json.Arr evs) ->
    (* per-(pid,tid) track: (open B count, last ts seen) *)
    let tracks : (float * float, int * float) Hashtbl.t = Hashtbl.create 8 in
    let count = ref 0 in
    let rec go i = function
      | [] ->
        let unbalanced =
          Hashtbl.fold
            (fun _ (open_spans, _) acc -> acc + open_spans)
            tracks 0
        in
        if unbalanced <> 0 then
          err "unbalanced spans: %d begin events never ended" unbalanced
        else Ok !count
      | ev :: rest -> (
        let str key =
          match Json.member key ev with
          | Some (Json.Str v) -> Ok v
          | _ -> err "event %d: missing string %S" i key
        in
        let num key =
          match Json.member key ev with
          | Some (Json.Num v) -> Ok v
          | _ -> err "event %d: missing numeric %S" i key
        in
        let* _name = str "name" in
        let* ph = str "ph" in
        if not (List.mem ph known_phases) then
          err "event %d: unknown phase %S" i ph
        else
          let* pid = num "pid" in
          let* tid = num "tid" in
          if ph = "M" then go (i + 1) rest
          else
            let* ts = num "ts" in
            if not (Float.is_finite ts) then err "event %d: non-finite ts" i
            else begin
              incr count;
              let key = (pid, tid) in
              let open_spans, last_ts =
                Option.value (Hashtbl.find_opt tracks key)
                  ~default:(0, neg_infinity)
              in
              if ts < last_ts then
                err "event %d: ts %g goes backwards on track (%g, %g)" i ts
                  pid tid
              else
                let open_spans =
                  match ph with
                  | "B" -> open_spans + 1
                  | "E" -> open_spans - 1
                  | _ -> open_spans
                in
                if open_spans < 0 then
                  err "event %d: end without a matching begin on track (%g, %g)"
                    i pid tid
                else begin
                  Hashtbl.replace tracks key (open_spans, ts);
                  go (i + 1) rest
                end
            end)
    in
    go 0 evs
  | Some _ -> err "traceEvents: expected an array"

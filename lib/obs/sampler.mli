(** Simulated-time telemetry sampler: one snapshot per scheduling
    slice, driven from [Circuit_sim]'s event loop when
    {!Control.enabled}.

    Two views of the same run accumulate side by side:

    - a {e time series} of per-slice samples — active Coflows, circuit
      seconds spent transmitting vs reconfiguring, busy ports, the
      incremental engine's dirty-suffix size for the event, and shard
      conflict/rollback deltas — exported as JSON Lines
      ({!to_jsonl}, one object per slice);
    - a {e per-port ledger} of cumulative transmit/reconfigure
      seconds ({!port_busy}/{!port_totals}), the source for per-port
      busy/reconfiguring/idle duty cycles in [Obs.Report]. Because
      only executed, slice-clipped segments are recorded and the port
      constraint keeps a port's segments disjoint, a port's total
      never exceeds the makespan — utilization lands in [0, 1] by
      construction.

    Same cost discipline as {!Timeline}: mutex-serialised cold-path
    recording at simulator-event granularity, zero when disabled. *)

type sample = {
  m_t : float;  (** slice start (simulated seconds) *)
  m_t_next : float;  (** slice end *)
  m_active : int;  (** admitted, unfinished Coflows *)
  m_circuits : int;  (** circuit segments executing in the slice *)
  m_transmit_s : float;  (** circuit-seconds transmitting, summed *)
  m_setup_s : float;  (** circuit-seconds reconfiguring, summed *)
  m_busy_ports : int;  (** distinct ports (in + out) occupied *)
  m_rescheduled : int;
      (** engine suffix entries re-run for this event (dirty-suffix
          size); 0 under [`Full] replanning *)
  m_spliced : int;  (** windows re-admitted verbatim for this event *)
  m_conflicts : int;  (** shard conflicts detected for this event *)
  m_rollbacks : int;  (** shard rollbacks taken for this event *)
}

val record : sample -> unit
(** No-op when {!Control.enabled} is false (gate at the call site). *)

val samples : unit -> sample list
(** Recorded samples in recording order (= simulated-time order: the
    event loop records once per slice, monotonically). *)

val port_busy : src:int -> dst:int -> setup_s:float -> tx_s:float -> unit
(** Accumulate one executed segment's seconds onto input port [src]
    and output port [dst]. No-op when disabled. *)

val port_totals : unit -> (string * float * float) list
(** Cumulative [(port, transmit_s, setup_s)] rows, ports named
    ["in.N"]/["out.N"], inputs first then outputs, each sorted by
    port number. *)

val clear : unit -> unit

val to_jsonl : unit -> string
(** One JSON object per line per sample, keys as the field names
    without the [m_] prefix, floats as [%.9g]. *)

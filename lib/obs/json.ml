(* Recursive-descent JSON parser, shared by the obs tests and the
   bench checker (bench/check_bench_json.ml carries its own copy only
   because it predates this library and links nothing). *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let parse (s : string) : t =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> bad "expected %c at offset %d" c !pos
  in
  let literal lit v =
    String.iter expect lit;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> bad "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some (('"' | '\\' | '/') as c) ->
          Buffer.add_char buf c;
          advance ()
        | Some 'n' ->
          Buffer.add_char buf '\n';
          advance ()
        | Some 't' ->
          Buffer.add_char buf '\t';
          advance ()
        | Some 'r' ->
          Buffer.add_char buf '\r';
          advance ()
        | Some 'b' ->
          Buffer.add_char buf '\b';
          advance ()
        | Some 'f' ->
          Buffer.add_char buf '\012';
          advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then bad "truncated unicode escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> bad "bad unicode escape %S" hex
          in
          (* our emitters only escape control characters, so a raw
             byte round-trip suffices *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_string buf (Printf.sprintf "\\u%s" hex);
          pos := !pos + 4
        | _ -> bad "bad escape at offset %d" !pos);
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some v -> Num v
    | None -> bad "bad number %S" tok
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> bad "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> bad "expected , or } at offset %d" !pos
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> bad "expected , or ] at offset %d" !pos
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then bad "trailing garbage at offset %d" !pos;
  v

let of_string s = match parse s with v -> Ok v | exception Bad m -> Error m

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

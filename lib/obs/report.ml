type coflow_row = {
  c_width : int;
  c_bytes : float;
  c_breakdown : Attrib.breakdown;
}

type t = {
  r_run : (string * string) list;
  r_makespan_s : float;
  r_events : int;
  r_setups : int;
  r_rows : coflow_row list;
  r_ports : (string * float * float) list;
  r_top_k : int;
}

let fl x = if Float.is_finite x then Printf.sprintf "%.9g" x else "null"

(* Power-of-two classes, matching the paper's narrow/wide split at a
   finer grain: {1}, {2}, {3-4}, {5-8}, ... *)
let width_bin w =
  if w <= 0 then "0"
  else if w <= 2 then string_of_int w
  else begin
    let hi = ref 2 in
    while !hi < w do
      hi := !hi * 2
    done;
    Printf.sprintf "%d-%d" ((!hi / 2) + 1) !hi
  end

(* order key for a bin: its upper bound *)
let width_bin_key w =
  if w <= 0 then 0
  else begin
    let hi = ref 1 in
    while !hi < w do
      hi := !hi * 2
    done;
    !hi
  end

let cdf_fractions = [ 0.; 0.1; 0.2; 0.3; 0.4; 0.5; 0.6; 0.7; 0.8; 0.9; 1. ]

(* exact quantile of a sorted array by linear index interpolation *)
let quantile_sorted a q =
  let n = Array.length a in
  if n = 0 then Float.nan
  else begin
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let lo = max 0 (min (n - 1) lo) in
    let hi = min (n - 1) (lo + 1) in
    let frac = pos -. float_of_int lo in
    a.(lo) +. (frac *. (a.(hi) -. a.(lo)))
  end

let body_json r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let n = List.length r.r_rows in
  add "{\n";
  add "  \"coflows\": %d,\n" n;
  add "  \"events\": %d,\n" r.r_events;
  add "  \"setups\": %d,\n" r.r_setups;
  add "  \"makespan_s\": %s,\n" (fl r.r_makespan_s);
  (* aggregate blame *)
  let wait = ref 0. and setup = ref 0. and tx = ref 0. in
  let blocked = ref 0. and cct = ref 0. in
  List.iter
    (fun { c_breakdown = b; _ } ->
      wait := !wait +. b.Attrib.a_wait;
      setup := !setup +. b.Attrib.a_setup;
      tx := !tx +. b.Attrib.a_transfer;
      blocked := !blocked +. b.Attrib.a_blocked;
      cct := !cct +. b.Attrib.a_cct)
    r.r_rows;
  add
    "  \"blame\": {\"wait_s\": %s, \"setup_s\": %s, \"transfer_s\": %s, \
     \"blocked_s\": %s, \"total_cct_s\": %s},\n"
    (fl !wait) (fl !setup) (fl !tx) (fl !blocked) (fl !cct);
  (* CCT CDFs binned by width *)
  let bins : (int, float list ref) Hashtbl.t = Hashtbl.create 8 in
  List.iter
    (fun row ->
      let key = width_bin_key row.c_width in
      match Hashtbl.find_opt bins key with
      | Some l -> l := row.c_breakdown.Attrib.a_cct :: !l
      | None -> Hashtbl.add bins key (ref [ row.c_breakdown.Attrib.a_cct ]))
    r.r_rows;
  let bin_rows =
    Hashtbl.fold (fun k l acc -> (k, !l) :: acc) bins []
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  add "  \"cct_cdf\": [";
  List.iteri
    (fun i (key, ccts) ->
      let a = Array.of_list ccts in
      Array.sort Float.compare a;
      add "%s\n    {\"width\": \"%s\", \"count\": %d, \"quantiles\": ["
        (if i = 0 then "" else ",")
        (width_bin key) (Array.length a);
      List.iteri
        (fun j q ->
          add "%s{\"q\": %s, \"cct_s\": %s}"
            (if j = 0 then "" else ", ")
            (fl q)
            (fl (quantile_sorted a q)))
        cdf_fractions;
      add "]}")
    bin_rows;
  add "\n  ],\n";
  (* per-port duty cycle *)
  let span = r.r_makespan_s in
  add "  \"ports\": [";
  List.iteri
    (fun i (port, tx_s, su_s) ->
      let frac v = if span > 0. then v /. span else 0. in
      add
        "%s\n    {\"port\": \"%s\", \"transmit_s\": %s, \"setup_s\": %s, \
         \"utilization\": %s, \"reconfiguring\": %s}"
        (if i = 0 then "" else ",")
        port (fl tx_s) (fl su_s)
        (fl (frac tx_s))
        (fl (frac su_s)))
    r.r_ports;
  add "\n  ],\n";
  (* top-K slowest with blame vectors *)
  let slowest =
    List.stable_sort
      (fun a b ->
        match Float.compare b.c_breakdown.Attrib.a_cct a.c_breakdown.Attrib.a_cct with
        | 0 -> compare a.c_breakdown.Attrib.a_id b.c_breakdown.Attrib.a_id
        | c -> c)
      r.r_rows
  in
  let rec take k = function
    | x :: rest when k > 0 -> x :: take (k - 1) rest
    | _ -> []
  in
  add "  \"slowest\": [";
  List.iteri
    (fun i row ->
      let b = row.c_breakdown in
      add
        "%s\n    {\"coflow\": %d, \"width\": %d, \"bytes\": %s, \"cct_s\": %s, \
         \"wait_s\": %s, \"setup_s\": %s, \"transfer_s\": %s, \"blocked_s\": \
         %s, \"blame\": ["
        (if i = 0 then "" else ",")
        b.Attrib.a_id row.c_width (fl row.c_bytes) (fl b.Attrib.a_cct)
        (fl b.Attrib.a_wait) (fl b.Attrib.a_setup) (fl b.Attrib.a_transfer)
        (fl b.Attrib.a_blocked);
      List.iteri
        (fun j (bl : Attrib.blame) ->
          add "%s{\"coflow\": %d, \"seconds\": %s}"
            (if j = 0 then "" else ", ")
            bl.Attrib.b_coflow (fl bl.Attrib.b_seconds))
        b.Attrib.a_blame;
      add "]}")
    (take r.r_top_k slowest);
  add "\n  ]\n";
  add "}";
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json r =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "\"schema\": \"sunflow-report/1\",\n";
  add "\"run\": {";
  List.iteri
    (fun i (k, v) ->
      add "%s\n  \"%s\": %s" (if i = 0 then "" else ",") (json_escape k) v)
    r.r_run;
  add "\n},\n";
  add "\"body\": %s\n" (body_json r);
  add "}\n";
  Buffer.contents buf

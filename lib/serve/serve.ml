module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Inter = Sunflow_core.Inter
module Order = Sunflow_core.Order
module Prt = Sunflow_core.Prt
module Schedule = Sunflow_core.Schedule
module Deadline = Sunflow_core.Deadline
module Obs = Sunflow_obs

type reject_reason =
  | Expired of { deadline : float }
  | Deadline_miss of { deadline : float; finish : float }

let pp_reject_reason ppf = function
  | Expired { deadline } ->
    Format.fprintf ppf "expired (deadline %g s at or before arrival)" deadline
  | Deadline_miss { deadline; finish } ->
    Format.fprintf ppf "deadline miss (needs %g s, deadline %g s)" finish
      deadline

type stats = {
  arrivals : int;
  admitted : int;
  rejected : int;
  completed : int;
  events : int;
  setups : int;
  max_live : int;
  max_journal : int;
  makespan : float;
  stopped : bool;
}

type active = { orig : Coflow.t; remaining : Demand.t }

(* Bounded-memory observability: counters, one gauge and one histogram
   only — all O(1) state. The per-Coflow stores (Timeline, Sampler,
   Attrib) grow with the stream and are deliberately not fed here. *)
let m_events = Obs.Registry.counter "serve.events"
let m_arrivals = Obs.Registry.counter "serve.arrivals"
let m_admitted = Obs.Registry.counter "serve.admitted"
let m_rejected = Obs.Registry.counter "serve.rejected"
let m_completed = Obs.Registry.counter "serve.completed"
let g_live = Obs.Registry.gauge "serve.live"
let h_event = Obs.Registry.histogram "serve.event_s"

let byte_eps bandwidth = Float.max 1e-3 (bandwidth *. 1e-6)

let snap_demand ~bandwidth d =
  let eps = byte_eps bandwidth in
  List.iter
    (fun ((i, j), v) -> if v <= eps then Demand.set d i j 0.)
    (Demand.entries d)

(* FIFO across arrival instants, EDF within one. A later arrival
   always sorts after every already-admitted Coflow — same-instant
   batches are admitted in [Deadline.edf] order, and equal-deadline
   ties fall through to the engine's appended (arrival, id) tiebreak,
   matching the batch sort's — so admission never invalidates an
   admitted plan's priority position. That is what turns admission
   into an O(one schedule) engine step and preserves the Varys-style
   guarantee: an admitted Coflow keeps (modulo straddler re-anchoring
   at later events) the plan it was admitted with. *)
let admission_policy ~deadline_of =
  Inter.Custom
    (fun (a : Coflow.t) (b : Coflow.t) ->
      match compare a.arrival b.arrival with
      | 0 -> compare (deadline_of a) (deadline_of b)
      | c -> c)

let no_stop () = false
let no_admit (_ : Coflow.t) ~finish:(_ : float) = ()
let no_reject (_ : Coflow.t) (_ : reject_reason) = ()
let no_finish ~id:(_ : int) ~t:(_ : float) ~cct:(_ : float) = ()

let run ?(policy = Inter.Shortest_first) ?(order = Order.Ordered_port)
    ?(carry_circuits = true) ?(buckets = 0) ?(bucket_base = 4.) ?(shards = 1)
    ?(shard_block = 1) ?(runner = Inter.sequential_runner) ?plan_cache
    ?deadline_of
    ?(stop = no_stop) ?(on_admit = no_admit) ?(on_reject = no_reject)
    ?(on_finish = no_finish) ~delta ~bandwidth next =
  let obs = Obs.Control.enabled () in
  let policy =
    match deadline_of with
    | None -> policy
    | Some deadline_of -> admission_policy ~deadline_of
  in
  let eng =
    Inter.engine ~order ~carry_circuits ~rebuild:false ~buckets ~bucket_base
      ~shards ~shard_block ~runner ?plan_cache ~policy ~delta ~bandwidth ()
  in
  let active_tbl : (int, active) Hashtbl.t = Hashtbl.create 64 in
  let actives : active list ref = ref [] in
  let newly : Coflow.t list ref = ref [] in
  let retired : int list ref = ref [] in
  let arrivals = ref 0 and admitted = ref 0 and rejected = ref 0 in
  let completed = ref 0 and n_events = ref 0 and setups = ref 0 in
  let max_live = ref 0 and max_journal = ref 0 in
  let makespan = ref 0. in
  let stopped = ref false in
  (* one-Coflow stream lookahead *)
  let buf = ref None in
  let peek () =
    match !buf with
    | Some _ as s -> s
    | None -> (
      match next () with
      | Some _ as s ->
        buf := s;
        s
      | None -> None)
  in
  let last_arrival = ref neg_infinity in
  let remaining_of id =
    match Hashtbl.find_opt active_tbl id with
    | Some a -> a.remaining
    | None -> invalid_arg "Serve.run: unknown Coflow in engine"
  in
  let sample_engine () =
    let sz = Inter.engine_size eng in
    if sz > !max_live then max_live := sz;
    let jl = Inter.engine_journal_length eng in
    if jl > !max_journal then max_journal := jl;
    if obs then Obs.Registry.gauge_set g_live (float_of_int sz)
  in
  let flush_retired t =
    if !retired <> [] then begin
      Inter.schedule_incremental eng ~now:t ~arrivals:[] ~finished:!retired
        ~remaining:remaining_of;
      retired := []
    end
  in
  (* instant admission, skipping the engine: empty-demand Coflows and
     (with deadlines) arrivals that cannot possibly be served *)
  let complete_instantly (c : Coflow.t) =
    incr admitted;
    incr completed;
    if obs then begin
      Obs.Registry.incr m_admitted;
      Obs.Registry.incr m_completed
    end;
    on_admit c ~finish:c.arrival;
    on_finish ~id:c.id ~t:c.arrival ~cct:0.
  in
  let reject (c : Coflow.t) reason =
    incr rejected;
    if obs then Obs.Registry.incr m_rejected;
    on_reject c reason
  in
  (* deadline admission at [now = c.arrival]: schedule once on the real
     table, keep the plan if it meets the deadline, retire it (a pure
     retraction step — no second schedule) otherwise *)
  let admit_with_deadline deadline_of t (c : Coflow.t) =
    let deadline = deadline_of c in
    let a = { orig = c; remaining = Demand.copy c.demand } in
    Hashtbl.replace active_tbl c.id a;
    Inter.schedule_incremental eng ~now:t ~arrivals:[ c ] ~finished:[]
      ~remaining:remaining_of;
    sample_engine ();
    let finish =
      match Inter.engine_finish eng c.id with
      | Some f -> f
      | None -> invalid_arg "Serve.run: admitted Coflow has no plan"
    in
    if finish <= deadline then begin
      incr admitted;
      if obs then Obs.Registry.incr m_admitted;
      actives := a :: !actives;
      on_admit c ~finish
    end
    else begin
      Inter.schedule_incremental eng ~now:t ~arrivals:[] ~finished:[ c.id ]
        ~remaining:remaining_of;
      Hashtbl.remove active_tbl c.id;
      reject c (Deadline_miss { deadline; finish })
    end
  in
  (* pull every stream Coflow arriving at or before [t]. Both call
     sites guarantee the pulled Coflows arrive exactly at [t], so
     deadline admission runs its engine steps at [now = t]. *)
  let admit t =
    let rec pull batch =
      match peek () with
      | Some c when c.Coflow.arrival <= t ->
        buf := None;
        if c.Coflow.arrival < !last_arrival then
          invalid_arg "Serve.run: arrivals must be non-decreasing";
        last_arrival := c.Coflow.arrival;
        incr arrivals;
        if obs then Obs.Registry.incr m_arrivals;
        (match deadline_of with
        | None ->
          if Demand.is_empty c.demand then complete_instantly c
          else begin
            let a = { orig = c; remaining = Demand.copy c.demand } in
            Hashtbl.replace active_tbl c.id a;
            actives := a :: !actives;
            newly := c :: !newly
          end;
          pull batch
        | Some deadline_of ->
          let deadline = deadline_of c in
          if Demand.is_empty c.demand then begin
            if deadline >= c.arrival then complete_instantly c
            else reject c (Expired { deadline });
            pull batch
          end
          else if deadline <= c.arrival then begin
            reject c (Expired { deadline });
            pull batch
          end
          else pull (c :: batch))
      | _ -> List.rev batch
    in
    let batch = pull [] in
    match deadline_of with
    | None -> ()
    | Some deadline_of ->
      if batch <> [] then begin
        flush_retired t;
        List.iter
          (admit_with_deadline deadline_of t)
          (Inter.sort (Deadline.edf ~deadline_of) ~bandwidth batch)
      end
  in
  let rec loop t =
    if stop () then stopped := true
    else begin
      incr n_events;
      if obs then Obs.Registry.incr m_events;
      match (!actives, peek ()) with
      | [], None -> ()
      | [], Some c ->
        (* an idle gap: the engine is empty, nothing carries across *)
        admit c.Coflow.arrival;
        loop c.Coflow.arrival
      | acts, next_arrival ->
        let w0 = if obs then Obs.Control.now_ns () else 0L in
        (match deadline_of with
        | None ->
          Inter.schedule_incremental eng ~now:t ~arrivals:!newly
            ~finished:!retired ~remaining:remaining_of;
          (* no admission control: every scheduled arrival is admitted,
             with the finish its fresh plan carries *)
          List.iter
            (fun (c : Coflow.t) ->
              incr admitted;
              if obs then Obs.Registry.incr m_admitted;
              match Inter.engine_finish eng c.id with
              | Some finish -> on_admit c ~finish
              | None -> invalid_arg "Serve.run: admitted Coflow has no plan")
            (List.rev !newly);
          newly := [];
          retired := []
        | Some _ ->
          (* arrivals were admitted one by one inside [admit]; only a
             slice that finished Coflows without an arrival batch still
             has a step to take *)
          flush_retired t);
        sample_engine ();
        let t_next =
          match (next_arrival, Inter.engine_min_finish eng) with
          | Some c, Some t_done -> Float.min c.Coflow.arrival t_done
          | None, Some t_done -> t_done
          | Some c, None -> c.Coflow.arrival
          | None, None ->
            invalid_arg "Serve.run: active Coflows but an idle engine"
        in
        let reservations = Inter.engine_slice eng ~t0:t ~t1:t_next in
        List.iter
          (fun (r : Prt.reservation) ->
            if r.setup > 0. && r.start >= t && r.start < t_next then
              incr setups;
            let seconds = Schedule.transmission_overlap r ~t0:t ~t1:t_next in
            if seconds > 0. then
              match Hashtbl.find_opt active_tbl r.coflow with
              | Some a ->
                Demand.drain a.remaining r.src r.dst (seconds *. bandwidth)
              | None ->
                invalid_arg "Serve.run: reservation for unknown Coflow")
          reservations;
        List.iter (fun a -> snap_demand ~bandwidth a.remaining) acts;
        let finished, still =
          List.partition (fun a -> Demand.is_empty a.remaining) acts
        in
        List.iter
          (fun (a : active) ->
            let id = a.orig.Coflow.id in
            incr completed;
            if obs then Obs.Registry.incr m_completed;
            makespan := Float.max !makespan t_next;
            Hashtbl.remove active_tbl id;
            retired := id :: !retired;
            on_finish ~id ~t:t_next ~cct:(t_next -. a.orig.Coflow.arrival))
          finished;
        actives := still;
        admit t_next;
        if obs then
          Obs.Registry.observe h_event
            (Int64.to_float (Int64.sub (Obs.Control.now_ns ()) w0) /. 1e9);
        if !actives <> [] || peek () <> None then loop t_next
    end
  in
  (match peek () with
  | None -> ()
  | Some c ->
    admit c.Coflow.arrival;
    loop c.Coflow.arrival);
  {
    arrivals = !arrivals;
    admitted = !admitted;
    rejected = !rejected;
    completed = !completed;
    events = !n_events;
    setups = !setups;
    max_live = !max_live;
    max_journal = !max_journal;
    makespan = !makespan;
    stopped = !stopped;
  }

let pp_stats ppf s =
  Format.fprintf ppf
    "@[<v>arrivals:    %d@,\
     admitted:    %d@,\
     rejected:    %d@,\
     completed:   %d@,\
     events:      %d@,\
     setups:      %d@,\
     max live:    %d@,\
     max journal: %d@,\
     makespan:    %g s"
    s.arrivals s.admitted s.rejected s.completed s.events s.setups s.max_live
    s.max_journal s.makespan;
  if s.stopped then Format.fprintf ppf "@,(interrupted)";
  Format.fprintf ppf "@]"

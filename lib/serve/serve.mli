(** Long-running serving mode: an unbounded arrival stream through the
    incremental engine at bounded resident memory.

    The batch entry points ([Circuit_sim.run], [Deadline.admit]) hold
    every Coflow of the trace alive for the whole replay. This loop
    instead pulls arrivals lazily from a stream, hands results to
    callbacks instead of accumulating them, and retires a finished
    Coflow aggressively: its engine entry and PRT windows are released
    at the completion event, its demand matrices as soon as the caller
    drops the Coflow — so resident state is O(active set), not
    O(stream length). See DESIGN.md, "Serving mode".

    Memory invariants the soak test pins down:
    - live engine entries track the active set ({!stats.max_live});
    - the engine's PRT undo journal never outlives a step
      ({!stats.max_journal} — the exact-order engine clears
      invalidated suffixes by ownership retraction, so no step leaves
      journal entries behind to pin retired windows);
    - a retired Coflow's demand matrix is collectable once the caller
      lets go of it (Weak-pointer test).

    Observability is bounded too: the loop feeds [Sunflow_obs]
    counters ([serve.arrivals]/[admitted]/[rejected]/[completed]/
    [events]), the [serve.live] gauge and the [serve.event_s]
    wall-time histogram (p99 per-event scheduling latency), all O(1)
    state — and deliberately {e not} the per-Coflow stores (Timeline,
    Sampler, Attrib), which grow with the stream. *)

type reject_reason =
  | Expired of { deadline : float }
      (** the deadline was at or before the arrival — unservable, so
          no scheduling work was spent on it *)
  | Deadline_miss of { deadline : float; finish : float }
      (** scheduled once on the real table; the tentative plan would
          finish at [finish] > [deadline], so it was retracted *)

val pp_reject_reason : Format.formatter -> reject_reason -> unit

type stats = {
  arrivals : int;  (** Coflows pulled from the stream *)
  admitted : int;  (** includes empty-demand instant completions *)
  rejected : int;
      (** [admitted + rejected = arrivals] unless [stopped] cut an
          arrival off mid-event *)
  completed : int;  (** [= admitted] when the stream ran dry *)
  events : int;  (** scheduling events processed *)
  setups : int;  (** circuit establishments executed *)
  max_live : int;  (** peak engine entry count — the active-set bound *)
  max_journal : int;
      (** peak PRT undo-journal length observed right after engine
          steps — [0] for every incremental mode, because each step
          drops its log *)
  makespan : float;  (** last completion instant; [0.] if none *)
  stopped : bool;  (** [stop] fired before the stream ran dry *)
}

val run :
  ?policy:Sunflow_core.Inter.policy ->
  ?order:Sunflow_core.Order.t ->
  ?carry_circuits:bool ->
  ?buckets:int ->
  ?bucket_base:float ->
  ?shards:int ->
  ?shard_block:int ->
  ?runner:Sunflow_core.Inter.pass_runner ->
  ?plan_cache:Sunflow_core.Plan_cache.t ->
  ?deadline_of:(Sunflow_core.Coflow.t -> float) ->
  ?stop:(unit -> bool) ->
  ?on_admit:(Sunflow_core.Coflow.t -> finish:float -> unit) ->
  ?on_reject:(Sunflow_core.Coflow.t -> reject_reason -> unit) ->
  ?on_finish:(id:int -> t:float -> cct:float -> unit) ->
  delta:float ->
  bandwidth:float ->
  (unit -> Sunflow_core.Coflow.t option) ->
  stats
(** [run ~delta ~bandwidth next] drives the event loop over the stream
    [next] (e.g. [Trace.reader] over stdin) until it returns [None]
    and every admitted Coflow has completed, or [stop ()] turns true
    (polled once per event — a SIGINT flag). Arrival times must be
    non-decreasing ([Invalid_argument] otherwise); ids must be unique
    among {e live} Coflows (the engine raises on a duplicate) but may
    recur after retirement — a stream, unlike a trace file, has no
    global uniqueness to check.

    Without [deadline_of] this is exactly [Circuit_sim.run
    ~replan:`Incremental] fed lazily: same engine, same event
    instants, same slice execution — results delivered through
    [on_finish] are bit-identical to the batch replay's. [policy]
    defaults to shortest-Coflow-first; empty-demand Coflows complete
    instantly at their arrival.

    With [deadline_of] (absolute deadline per Coflow), arrivals pass
    through admission control and [policy] is ignored: the engine
    orders Coflows FIFO by arrival instant and same-instant batches
    are admitted in {!Sunflow_core.Deadline.edf} order, so every
    admission lands at the end of the priority order and never
    invalidates an admitted plan. Each candidate is scheduled {e once}
    on the real table; if the tentative finish meets the deadline it
    is admitted with that plan ([on_admit]), otherwise the plan is
    retracted — a pure removal step, no rescheduling — and the Coflow
    is rejected with a typed reason ([on_reject]). Admitted Coflows
    keep their admission-time guarantee up to straddler re-anchoring:
    an event that cuts a reservation mid-reconfiguration re-runs its
    owner, which can shift that plan by the re-rounding the batch
    replay also exhibits. A rejected Coflow's windows leave gaps the
    engine does not re-pack (non-preemption: later plans never move
    earlier), which is the cost of single-schedule admission. *)

val pp_stats : Format.formatter -> stats -> unit

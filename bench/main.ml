(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5), then microbenchmarks the schedulers'
   planning latency with Bechamel (§6 "Scheduler latency" / Table 3).

   Besides the human-readable report on stdout, the harness writes a
   machine-readable BENCH_prt.json (per-experiment wall time and PRT
   work counters, Bechamel ns/run estimates, and — when SUNFLOW_JOBS
   asks for more than one domain — sequential-vs-parallel wall times
   with output digests proving the runs agree) so successive PRs have
   a perf trajectory to gate against. SUNFLOW_BENCH_JSON overrides the
   output path.

   Run with SUNFLOW_BENCH_FAST=1 to shrink the trace for a quick smoke
   pass (used by the @bench-smoke alias); the default regenerates
   everything on the full 526-Coflow workload. *)

module E = Sunflow_experiments
module Units = Sunflow_core.Units
module Prt = Sunflow_core.Prt
module Plan_cache = Sunflow_core.Plan_cache
module Sunflow = Sunflow_core.Sunflow
module Pool = Sunflow_parallel.Pool
module Obs = Sunflow_obs
module Circuit_sim = Sunflow_sim.Circuit_sim

let fast () =
  match Sys.getenv_opt "SUNFLOW_BENCH_FAST" with
  | Some ("1" | "true") -> true
  | _ -> false

let settings () =
  if fast () then
    let params =
      { Sunflow_trace.Synthetic.default_params with n_coflows = 120; span = 800. }
    in
    { E.Common.default with trace_params = params }
  else E.Common.default

(* --- machine-readable record ------------------------------------------ *)

type experiment_row = {
  name : string;
  wall_s : float;
  prt : Prt.stats;  (** counter deltas attributable to this experiment *)
}

type parallel_row = {
  p_name : string;
  wall_par_s : float;
  wall_seq_s : float;
  digest_par : string option;  (** None when the report text is timing-laden *)
  digest_seq : string option;
}

let experiment_rows : experiment_row list ref = ref []
let bechamel_rows : (string * float) list ref = ref []
let parallel_rows : parallel_row list ref = ref []

let stats_delta (a : Prt.stats) (b : Prt.stats) =
  {
    Prt.queries = b.Prt.queries - a.Prt.queries;
    scans = b.Prt.scans - a.Prt.scans;
    reservations = b.Prt.reservations - a.Prt.reservations;
    rollbacks = b.Prt.rollbacks - a.Prt.rollbacks;
  }

let timed ppf label f =
  let s0 = Prt.stats () in
  let t0 = Unix.gettimeofday () in
  f ();
  let wall_s = Unix.gettimeofday () -. t0 in
  let prt = stats_delta s0 (Prt.stats ()) in
  experiment_rows := { name = label; wall_s; prt } :: !experiment_rows;
  Format.fprintf ppf "  [%s took %.1fs; prt: %a]@." label wall_s Prt.pp_stats
    prt

let experiment_reports ppf s =
  let reports =
    [
      ("table4", E.Exp_table4.report);
      ("fig3", E.Exp_fig3.report);
      ("fig4", E.Exp_fig4.report);
      ("fig5", E.Exp_fig5.report);
      ("fig6", E.Exp_fig6.report);
      ("fig7", E.Exp_fig7.report);
      ("fig8", E.Exp_fig8.report);
      ("fig9", E.Exp_fig9.report);
      ("fig10", E.Exp_fig10.report);
      ("table3", E.Exp_complexity.report);
      ("headline", E.Exp_headline.report);
      ("ordering", E.Exp_ordering.report);
      ("baseline-gap", E.Exp_baseline_gap.report);
      ("ablations", E.Exp_ablations.report);
      ("oracle", E.Exp_oracle.report);
      ("extensions", E.Exp_extensions.report);
    ]
  in
  List.iter
    (fun (label, report) ->
      timed ppf label (fun () -> report ?settings:(Some s) ppf))
    reports

(* --- Bechamel microbenchmarks: scheduler planning latency --- *)

let random_coflow rng width =
  let demand = Sunflow_core.Demand.create () in
  for i = 0 to width - 1 do
    for j = 0 to width - 1 do
      Sunflow_core.Demand.set demand i (width + j)
        (Units.mb (float_of_int (1 + Sunflow_stats.Rng.int rng 64)))
    done
  done;
  Sunflow_core.Coflow.make ~id:0 demand

let scheduler_tests s =
  let open Bechamel in
  let delta = s.E.Common.delta and bandwidth = s.E.Common.bandwidth in
  let rng = Sunflow_stats.Rng.create 77 in
  let coflow width = random_coflow rng width in
  let c8 = coflow 8 and c16 = coflow 16 in
  let stage name f = Test.make ~name (Staged.stage f) in
  Test.make_grouped ~name:"planning"
    [
      stage "sunflow/|C|=64" (fun () ->
          Sunflow_core.Sunflow.schedule ~delta ~bandwidth c8);
      stage "sunflow/|C|=256" (fun () ->
          Sunflow_core.Sunflow.schedule ~delta ~bandwidth c16);
      stage "solstice/|C|=64" (fun () ->
          Sunflow_baselines.Solstice.assignments ~bandwidth
            c8.Sunflow_core.Coflow.demand);
      stage "tms/|C|=64" (fun () ->
          Sunflow_baselines.Tms.assignments ~bandwidth
            c8.Sunflow_core.Coflow.demand);
      stage "edmonds/|C|=64" (fun () ->
          Sunflow_baselines.Edmonds.assignments ~bandwidth
            c8.Sunflow_core.Coflow.demand);
    ]

let run_bechamel ppf s =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] (scheduler_tests s) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  E.Common.section ppf "BECHAMEL: scheduler planning latency";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (ns_per_run :: _) ->
        bechamel_rows := (name, ns_per_run) :: !bechamel_rows;
        Format.fprintf ppf "  %-24s %10.1f us/run@." name (ns_per_run /. 1e3)
      | _ -> Format.fprintf ppf "  %-24s (no estimate)@." name)
    results

(* --- sequential-vs-parallel speedup -----------------------------------

   Rerun the pool-powered experiments twice from a cold cache — once at
   the configured parallelism, once pinned to one domain — and record
   wall times plus a digest of each run's full report text. Identical
   digests prove the parallel run's numbers (CCT distributions, setup
   counts) are bit-identical to the sequential ones; reports whose text
   embeds wall-clock measurements (ablations' planning times) get a
   null digest and contribute timing only. Skipped entirely at
   [domains = 1], where there is nothing to compare. *)

(* FNV-1a over the report text, folded to 32 bits; self-contained so
   the checker can re-derive nothing — it only compares for equality *)
let digest_string s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun ch -> h := (!h lxor Char.code ch) * 0x01000193 land 0xFFFFFFFF)
    s;
  Printf.sprintf "%08x" !h

let capture_report report s =
  let buf = Buffer.create 4096 in
  let ppf = Format.formatter_of_buffer buf in
  report ?settings:(Some s) ppf;
  Format.pp_print_flush ppf ();
  Buffer.contents buf

let speedup_section ppf s domains =
  if domains > 1 then begin
    E.Common.section ppf "PARALLEL: sequential-vs-parallel speedup";
    Format.fprintf ppf "  %d domains; cold-cache reruns@." domains;
    let cold_run jobs report =
      E.Common.clear_caches ();
      Pool.set_jobs jobs;
      let t0 = Unix.gettimeofday () in
      let text = capture_report report s in
      (Unix.gettimeofday () -. t0, text)
    in
    List.iter
      (fun (p_name, deterministic_text, report) ->
        let wall_par_s, par_text = cold_run None report in
        let wall_seq_s, seq_text = cold_run (Some 1) report in
        Pool.set_jobs None;
        let digest_par, digest_seq =
          if deterministic_text then
            (Some (digest_string par_text), Some (digest_string seq_text))
          else (None, None)
        in
        parallel_rows := { p_name; wall_par_s; wall_seq_s; digest_par; digest_seq } :: !parallel_rows;
        Format.fprintf ppf "  %-14s par %6.1fs  seq %6.1fs  speedup %.2fx  %s@."
          p_name wall_par_s wall_seq_s
          (wall_seq_s /. wall_par_s)
          (match (digest_par, digest_seq) with
          | Some a, Some b when a = b -> "outputs identical"
          | Some _, Some _ -> "OUTPUTS DIFFER"
          | _ -> "(timing-laden report, digest skipped)");
        match (digest_par, digest_seq) with
        | Some a, Some b when a <> b ->
          Format.fprintf ppf
            "  FATAL: %s parallel output differs from sequential@." p_name;
          exit 1
        | _ -> ())
      [
        ("fig8", true, E.Exp_fig8.report);
        ("baseline-gap", true, E.Exp_baseline_gap.report);
        ("ablations", false, E.Exp_ablations.report);
      ]
  end

(* --- obs: disabled-path overhead and trace export ---------------------

   The observability layer promises that a disabled instrumentation
   site costs one atomic load and a branch. Measure that cost directly
   (a tight loop over a disabled probe), then bound the overhead the
   instrumentation adds to an uninstrumented-equivalent scheduler
   workload as a modeled ratio:

     sites hit when enabled x disabled ns/site / disabled workload wall

   which is what the checker gates at 2%. The model is deliberate:
   subtracting two wall-clock runs of the same workload measures noise
   on a busy CI box, while the modeled ratio is stable and honestly
   over-counts (every traced span also implies cheaper counter and
   histogram updates already included in the probe cost). The enabled
   rerun doubles as the trace-export fixture: its buffered events are
   written as Chrome trace JSON for the checker to schema-validate. *)

type obs_row = {
  disabled_ns_per_probe : float;
  wall_disabled_s : float;
  wall_enabled_s : float;
  enabled_events : int;
  disabled_overhead_ratio : float;
  trace_file : string;
}

let obs_row : obs_row option ref = ref None

let obs_section ppf s =
  E.Common.section ppf "OBS: instrumentation overhead and trace export";
  Obs.Control.set_enabled false;
  let probes = if fast () then 2_000_000 else 20_000_000 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to probes do
    Obs.Tracer.instant "bench.probe"
  done;
  let disabled_ns_per_probe =
    (Unix.gettimeofday () -. t0) *. 1e9 /. float_of_int probes
  in
  let delta = s.E.Common.delta and bandwidth = s.E.Common.bandwidth in
  let c16 = random_coflow (Sunflow_stats.Rng.create 77) 16 in
  let reps = if fast () then 30 else 120 in
  let workload () =
    for _ = 1 to reps do
      ignore (Sunflow_core.Sunflow.schedule ~delta ~bandwidth c16)
    done
  in
  let t0 = Unix.gettimeofday () in
  workload ();
  let wall_disabled_s = Unix.gettimeofday () -. t0 in
  Obs.Control.set_enabled true;
  Obs.Tracer.clear ();
  let t0 = Unix.gettimeofday () in
  workload ();
  let wall_enabled_s = Unix.gettimeofday () -. t0 in
  let enabled_events = Obs.Tracer.event_count () in
  let trace = Obs.Tracer.to_chrome_json () in
  Obs.Control.set_enabled false;
  Obs.Tracer.clear ();
  let trace_file =
    match Sys.getenv_opt "SUNFLOW_BENCH_TRACE_JSON" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_obs_trace.json"
  in
  Obs.Io.write_file trace_file trace;
  let disabled_overhead_ratio =
    float_of_int enabled_events *. disabled_ns_per_probe
    /. (wall_disabled_s *. 1e9)
  in
  obs_row :=
    Some
      {
        disabled_ns_per_probe;
        wall_disabled_s;
        wall_enabled_s;
        enabled_events;
        disabled_overhead_ratio;
        trace_file;
      };
  Format.fprintf ppf
    "  disabled probe: %.2f ns;  workload (|C|=256 x%d): disabled %.3fs, \
     enabled %.3fs (%d events)@."
    disabled_ns_per_probe reps wall_disabled_s wall_enabled_s enabled_events;
  Format.fprintf ppf
    "  modeled disabled-path overhead: %.5f%% (gate: 2%%);  wrote %s@."
    (100. *. disabled_overhead_ratio)
    trace_file

(* --- validation layer -------------------------------------------------

   Run the Sunflow_check validator over every intra plan of the
   settings trace and the differential switch oracle over randomized
   arrival traces, so @bench-smoke fails when a scheduler change
   breaks an invariant instead of merely slowing down. *)

type check_row = {
  k_plans : int;
  k_plan_violations : int;
  k_traces : int;
  k_compared : int;
  k_worst_err_s : float;
  k_oracle_violations : int;
  k_wall_s : float;
}

let check_row : check_row option ref = ref None

let check_section ppf s =
  let module Check = Sunflow_check in
  let module Coflow = Sunflow_core.Coflow in
  let module Demand = Sunflow_core.Demand in
  E.Common.section ppf "CHECK: plan validator + differential switch oracle";
  let delta = s.E.Common.delta and bandwidth = s.E.Common.bandwidth in
  let t0 = Unix.gettimeofday () in
  let coflows =
    List.filter
      (fun (c : Coflow.t) -> not (Demand.is_empty c.Coflow.demand))
      (E.Common.raw_trace s).Sunflow_trace.Trace.coflows
  in
  let vspec = Check.Plan_check.spec ~delta ~bandwidth () in
  let plan_violations =
    Pool.run_list
      (fun (c : Coflow.t) ->
        let c0 = { c with Coflow.arrival = 0. } in
        Check.Plan_check.intra vspec c0
          (Sunflow_core.Sunflow.schedule ~delta ~bandwidth c0))
      coflows
    |> List.concat
  in
  let traces = if fast () then 25 else 200 in
  let stats =
    Check.Diff_oracle.fuzz ~seed:11 ~traces ~n_ports:8 ~max_coflows:6
      ~span:1.5 ~max_mb:40. ~delta ~bandwidth ()
  in
  let wall = Unix.gettimeofday () -. t0 in
  List.iter
    (fun v -> Format.fprintf ppf "  PLAN %a@." Check.Violation.pp v)
    plan_violations;
  List.iter
    (fun v -> Format.fprintf ppf "  ORACLE %a@." Check.Violation.pp v)
    stats.Check.Diff_oracle.total_violations;
  check_row :=
    Some
      {
        k_plans = List.length coflows;
        k_plan_violations = List.length plan_violations;
        k_traces = stats.Check.Diff_oracle.traces;
        k_compared = stats.Check.Diff_oracle.total_compared;
        k_worst_err_s = stats.Check.Diff_oracle.worst_err_s;
        k_oracle_violations =
          List.length stats.Check.Diff_oracle.total_violations;
        k_wall_s = wall;
      };
  Format.fprintf ppf
    "  %d intra plans validated (%d violations);  oracle: %d traces, %d \
     finishes compared, worst gap %.3g s (%d violations)  [%.2fs]@."
    (List.length coflows)
    (List.length plan_violations)
    stats.Check.Diff_oracle.traces stats.Check.Diff_oracle.total_compared
    stats.Check.Diff_oracle.worst_err_s
    (List.length stats.Check.Diff_oracle.total_violations)
    wall

(* --- replay: full vs incremental replanning ---------------------------

   The PR-5 gate: replay the settings trace and a large synthetic
   workload (50,600 Coflows at the paper's arrival load; 4,000 in fast
   mode) through all three replanning engines and record wall time,
   event throughput, and an FNV digest of the canonical Sim_result
   rendering. The checker requires the rebuild and incremental digests
   to agree on every trace (bit-identity of the suffix-only engine
   against its from-scratch oracle at benchmark scale) and, on the
   >= 50k trace, the incremental engine to be at least twice as fast
   as full replanning. Full mode's digest is recorded but never
   compared: its drain-then-recompute semantics drift from the
   anchored modes in the last float bits by design.

   The settings trace replays under the paper-default Shortest-first
   policy; the large trace under Fifo, where an arrival's priority key
   is its arrival instant, every admission appends to the priority
   order, and the rescheduled suffix is exactly the new Coflow — the
   O(changed-Coflows) regime the engine targets.

   Since schema /6 the large trace also replays under Shortest-first
   itself — the adversarial case for any suffix scheme, where a small
   arrival head-inserts and the suffix it invalidates averages half
   the active set — with the bucketed priority order that bounds the
   damage. The checker gates >= 2.5x incremental-over-full there, the
   rebuild/incremental digest equality per bucket configuration, and
   the mean CCT drift the coarsened order costs against the exact
   shortest-first run. *)

type replay_row = {
  y_trace : string;
  y_policy : string;
  y_coflows : int;
  y_mode : string;
  y_buckets : int;  (** 0 = the exact priority order *)
  y_wall_s : float;
  y_events : int;
  y_digest : string;
}

let replay_rows : replay_row list ref = ref []

type drift_row = {
  d_buckets : int;
  d_coflows : int;
  d_mean_cct_exact_s : float;
  d_mean_cct_bucketed_s : float;
  d_rel_mean : float;  (** (bucketed - exact) / exact, mean CCT *)
  d_max_rel : float;  (** worst per-Coflow relative CCT inflation *)
}

let drift_row : drift_row option ref = ref None

(* The SCF-adversarial storm (PR-6 gate): the large trace's arrival
   mix at 10x density — a standing backlog, so full replanning prices
   the whole active set at every event — interleaved at the same rate
   with a stream of near-identical single-flow mice whose sizes
   decrease monotonically, so under the exact shortest-first order
   every stream arrival head-inserts ahead of the still-draining
   backlog. Memoised: the replay and plan-cache sections share it. *)
let storm_memo : Sunflow_core.Coflow.t list option ref = ref None

let storm_trace s =
  match !storm_memo with
  | Some t -> t
  | None ->
    let p = s.E.Common.trace_params in
    let base_n = if fast () then 800 else 10_000 in
    let mice_n = if fast () then 2_600 else 40_600 in
    (* the density factor compresses the arrival span against the
       fixed M2M service times — 0.1 sustains the standing backlog the
       gate needs. Fast mode keeps the span longer: at 800 base
       Coflows a 0.1 factor leaves the span shorter than the giants'
       drain times, the backlog never clears, and the smoke run stops
       being smoke-sized. *)
    let density = if fast () then 0.4 else 0.1 in
    let span =
      p.Sunflow_trace.Synthetic.span
      *. float_of_int base_n
      /. float_of_int p.Sunflow_trace.Synthetic.n_coflows
      *. density
    in
    let base =
      Sunflow_trace.Synthetic.generate
        {
          p with
          Sunflow_trace.Synthetic.n_coflows = base_n;
          span;
          m2m_reducer_mb = (fst p.Sunflow_trace.Synthetic.m2m_reducer_mb, 2.2);
        }
    in
    let rng = Sunflow_stats.Rng.create 4242 in
    let mice =
      List.init mice_n (fun i ->
          let src = Sunflow_stats.Rng.int rng p.Sunflow_trace.Synthetic.n_ports in
          let dst =
            let d =
              Sunflow_stats.Rng.int rng
                (p.Sunflow_trace.Synthetic.n_ports - 1)
            in
            if d >= src then d + 1 else d
          in
          let mb = 64. -. (60. *. float_of_int i /. float_of_int mice_n) in
          let d = Sunflow_core.Demand.create () in
          Sunflow_core.Demand.set d src dst (Sunflow_core.Units.mb mb);
          Sunflow_core.Coflow.make ~id:(base_n + i)
            ~arrival:(span *. float_of_int i /. float_of_int mice_n)
            d)
    in
    let t =
      List.sort Sunflow_core.Coflow.compare_arrival
        (base.Sunflow_trace.Trace.coflows @ mice)
    in
    storm_memo := Some t;
    t

let digest_result (r : Sunflow_sim.Sim_result.t) =
  let buf = Buffer.create 65536 in
  List.iter
    (fun (id, f) -> Buffer.add_string buf (Printf.sprintf "%d:%.17g;" id f))
    r.Sunflow_sim.Sim_result.finishes;
  Buffer.add_string buf
    (Printf.sprintf "|%.17g|%d|%d" r.Sunflow_sim.Sim_result.makespan
       r.Sunflow_sim.Sim_result.n_events r.Sunflow_sim.Sim_result.total_setups);
  digest_string (Buffer.contents buf)

let replay_section ppf s =
  E.Common.section ppf "REPLAY: full vs incremental replanning";
  let delta = s.E.Common.delta and bandwidth = s.E.Common.bandwidth in
  let smoke = (E.Common.raw_trace s).Sunflow_trace.Trace.coflows in
  let large_n = if fast () then 4_000 else 50_600 in
  let large =
    let p = s.E.Common.trace_params in
    (* arrival rate held at the settings trace's load; the M2M reducer
       tail is tamed from the calibrated sigma 2.5 to 2.2 because the
       maximum of n lognormal draws grows as exp(sigma * sqrt(2 ln n)) —
       at 50k Coflows the calibrated tail yields terabyte-scale giants
       whose drain times exceed the arrival span, the queue never
       empties, and full replanning (O(active) schedules per event over
       an unboundedly growing active set) stops terminating in
       reasonable time. Sigma 2.2 keeps heavy giants and the backlog
       bursts behind them — the regime where replanning cost matters —
       while keeping service times small against the span. *)
    let scaled =
      {
        p with
        Sunflow_trace.Synthetic.n_coflows = large_n;
        span =
          p.Sunflow_trace.Synthetic.span
          *. float_of_int large_n
          /. float_of_int p.Sunflow_trace.Synthetic.n_coflows;
        m2m_reducer_mb = (fst p.Sunflow_trace.Synthetic.m2m_reducer_mb, 2.2);
      }
    in
    (Sunflow_trace.Synthetic.generate scaled).Sunflow_trace.Trace.coflows
  in
  let run_one ?(bucket_base = 4.) y_trace y_policy policy coflows y_mode replan
      y_buckets =
    let t0 = Unix.gettimeofday () in
    let r =
      Circuit_sim.run ~policy ~replan ~buckets:y_buckets ~bucket_base ~delta
        ~bandwidth coflows
    in
    let y_wall_s = Unix.gettimeofday () -. t0 in
    replay_rows :=
      {
        y_trace;
        y_policy;
        y_coflows = List.length coflows;
        y_mode;
        y_buckets;
        y_wall_s;
        y_events = r.Sunflow_sim.Sim_result.n_events;
        y_digest = digest_result r;
      }
      :: !replay_rows;
    Format.fprintf ppf
      "  %-6s %-5s %-11s b=%-2d %6d Coflows  %8.2fs  %9.0f events/s@." y_trace
      y_policy y_mode y_buckets (List.length coflows) y_wall_s
      (float_of_int r.Sunflow_sim.Sim_result.n_events /. y_wall_s);
    (y_wall_s, r)
  in
  List.iter
    (fun (y_trace, y_policy, policy, coflows) ->
      let walls = Hashtbl.create 4 in
      List.iter
        (fun (y_mode, replan) ->
          let wall, _ = run_one y_trace y_policy policy coflows y_mode replan 0 in
          Hashtbl.replace walls y_mode wall)
        [ ("full", `Full); ("rebuild", `Rebuild); ("incremental", `Incremental) ];
      let wall m = Hashtbl.find walls m in
      Format.fprintf ppf "  %-6s incremental speedup over full: %.2fx@."
        y_trace
        (wall "full" /. wall "incremental"))
    [
      ("smoke", "scf", Sunflow_core.Inter.Shortest_first, smoke);
      ("large", "fifo", Sunflow_core.Inter.Fifo, large);
    ];
  (* The PR-6 gate: an SCF-adversarial composition — the large trace's
     arrival mix at 10x density (a standing backlog, so full
     replanning prices the whole active set at every event),
     interleaved at the same rate with a stream of near-identical
     small Coflows whose sizes decrease monotonically. Under the exact
     shortest-first order every stream arrival carries the smallest
     key yet and head-inserts ahead of the still-draining backlog, so
     the exact engines reschedule most of the active set per arrival.
     Under a bucketed order the stream shares a handful of classes and
     each arrival sorts at the {e end} of its class (FIFO within a
     class), so the backlog behind it splices. Full replanning is the
     baseline; rebuild-with-the-same-buckets is the bucketed engine's
     digest oracle; the exact-order incremental run prices the
     fidelity the buckets give up (CCT drift, gated by the checker).
     24 classes at base 2 span the key range finely enough that the
     bucketed run's drift stays within measurement noise. *)
  let scf = Sunflow_core.Inter.Shortest_first in
  let scf_buckets = 24 in
  let scf_bucket_base = 2. in
  let storm = storm_trace s in
  let wall_full, _ = run_one "storm" "scf" scf storm "full" `Full 0 in
  ignore
    (run_one ~bucket_base:scf_bucket_base "storm" "scf" scf storm "rebuild"
       `Rebuild scf_buckets);
  let wall_binc, r_bucketed =
    run_one ~bucket_base:scf_bucket_base "storm" "scf" scf storm "incremental"
      `Incremental scf_buckets
  in
  let _, r_exact =
    run_one "storm" "scf" scf storm "incremental" `Incremental 0
  in
  Format.fprintf ppf
    "  storm  scf   incremental(b=%d) speedup over full: %.2fx@." scf_buckets
    (wall_full /. wall_binc);
  let arrival = Hashtbl.create (List.length storm) in
  List.iter
    (fun (c : Sunflow_core.Coflow.t) ->
      Hashtbl.replace arrival c.Sunflow_core.Coflow.id
        c.Sunflow_core.Coflow.arrival)
    storm;
  let ccts (r : Sunflow_sim.Sim_result.t) =
    List.map
      (fun (id, f) -> (id, f -. Hashtbl.find arrival id))
      r.Sunflow_sim.Sim_result.finishes
  in
  let exact = ccts r_exact and bucketed = ccts r_bucketed in
  let mean l =
    List.fold_left (fun a (_, c) -> a +. c) 0. l /. float_of_int (List.length l)
  in
  let d_mean_cct_exact_s = mean exact
  and d_mean_cct_bucketed_s = mean bucketed in
  let exact_by_id = Hashtbl.create (List.length exact) in
  List.iter (fun (id, c) -> Hashtbl.replace exact_by_id id c) exact;
  let d_max_rel =
    List.fold_left
      (fun acc (id, cb) ->
        let ce = Hashtbl.find exact_by_id id in
        if ce > 0. then Float.max acc ((cb -. ce) /. ce) else acc)
      0. bucketed
  in
  let d_rel_mean =
    (d_mean_cct_bucketed_s -. d_mean_cct_exact_s) /. d_mean_cct_exact_s
  in
  drift_row :=
    Some
      {
        d_buckets = scf_buckets;
        d_coflows = List.length bucketed;
        d_mean_cct_exact_s;
        d_mean_cct_bucketed_s;
        d_rel_mean;
        d_max_rel;
      };
  Format.fprintf ppf
    "  storm  scf   CCT drift b=%d vs exact: mean %+.3f%% (%.3fs vs %.3fs), \
     worst per-Coflow %+.1f%%@."
    scf_buckets (100. *. d_rel_mean) d_mean_cct_bucketed_s d_mean_cct_exact_s
    (100. *. d_max_rel)

(* --- plan cache: cross-replay verbatim window replays -----------------

   The PR-10 gate: replay the SCF storm at the PR-6 gate configuration
   (bucketed incremental, 24 classes at base 2) with and without a
   footprint-epoch plan cache. Cache-off runs [reps] times; the cached
   runs share one handle — the first run populates (every lookup
   misses: within a run the kernel's own reserves advance the
   footprint epochs past any stored snapshot), and the warm runs
   replay stored reservations verbatim wherever the fresh table's
   deterministic mutation history matches the snapshot. The checker
   requires the warm replan wall (min over reps, the [sim.plan_s]
   histogram sum) to beat the cache-off replan wall by >= 1.3x, the
   warm hit rate to clear 50 %, and every row's Sim_result digest to
   agree — the cache may only change *when* the answer is computed,
   never the answer. *)

type cache_row = {
  pcr_variant : string;  (** "off" | "cold" | "warm" *)
  pcr_rep : int;
  pcr_wall_s : float;
  pcr_plan_s : float;  (** summed per-event replan wall for this run *)
  pcr_digest : string;
}

type cache_summary = {
  pc_coflows : int;
  pc_reps : int;
  pc_max_windows : int;
  pc_rows : cache_row list;
  pc_hits : int;
  pc_misses : int;
  pc_invalidations : int;
  pc_replayed_windows : int;
  pc_entries : int;  (** resident after the last warm run *)
  pc_windows : int;
}

let cache_summary : cache_summary option ref = ref None

let cache_section ppf s =
  E.Common.section ppf "PLAN CACHE: cross-replay verbatim replays";
  let storm = storm_trace s in
  (* gates calibrated at the paper-default fabric speed, like shards *)
  let delta = Units.ms 10. and bandwidth = Units.gbps 1. in
  let reps = if fast () then 2 else 3 in
  let was_enabled = Obs.Control.enabled () in
  Obs.Control.set_enabled true;
  let plan_sum () =
    (Obs.Registry.histogram_value (Obs.Registry.histogram "sim.plan_s"))
      .Obs.Registry.h_sum
  in
  let run_once ?plan_cache () =
    Gc.full_major ();
    let p0 = plan_sum () in
    let t0 = Unix.gettimeofday () in
    let r =
      Circuit_sim.run ~policy:Sunflow_core.Inter.Shortest_first
        ~replan:`Incremental ~buckets:24 ~bucket_base:2. ?plan_cache ~delta
        ~bandwidth storm
    in
    let wall = Unix.gettimeofday () -. t0 in
    (wall, plan_sum () -. p0, digest_result r)
  in
  let row pcr_variant pcr_rep (pcr_wall_s, pcr_plan_s, pcr_digest) =
    Format.fprintf ppf "  %-4s rep %d  wall %6.2fs  replan %6.2fs  digest %s@."
      pcr_variant pcr_rep pcr_wall_s pcr_plan_s pcr_digest;
    { pcr_variant; pcr_rep; pcr_wall_s; pcr_plan_s; pcr_digest }
  in
  let off = List.init reps (fun i -> row "off" (i + 1) (run_once ())) in
  (* the handle must be sized above the replay's stored-window working
     set or the FIFO eviction thrashes: the cold run alone stores one
     plan per schedule call (~190k entries, ~4.5M windows on the full
     storm — the default 2M cap replays *nothing* at this scale, 0
     hits). 8M windows is ~1.8x the measured working set. *)
  let max_windows = 8_000_000 in
  let cache = Plan_cache.create ~max_windows () in
  let cold = row "cold" 1 (run_once ~plan_cache:cache ()) in
  let warm =
    List.init reps (fun i -> row "warm" (i + 1) (run_once ~plan_cache:cache ()))
  in
  Obs.Tracer.clear ();
  Obs.Control.set_enabled was_enabled;
  let st = Plan_cache.stats cache in
  let min_plan rows =
    List.fold_left (fun a r -> Float.min a r.pcr_plan_s) infinity rows
  in
  Format.fprintf ppf
    "  warm replan speedup over cache-off: %.2fx  (%d hits, %d misses, %d \
     stale, %d windows replayed; %d entries / %d windows resident)@."
    (min_plan off /. min_plan warm)
    st.Plan_cache.hits st.Plan_cache.misses st.Plan_cache.invalidations
    st.Plan_cache.replayed_windows st.Plan_cache.entries st.Plan_cache.windows;
  cache_summary :=
    Some
      {
        pc_coflows = List.length storm;
        pc_reps = reps;
        pc_max_windows = max_windows;
        pc_rows = off @ (cold :: warm);
        pc_hits = st.Plan_cache.hits;
        pc_misses = st.Plan_cache.misses;
        pc_invalidations = st.Plan_cache.invalidations;
        pc_replayed_windows = st.Plan_cache.replayed_windows;
        pc_entries = st.Plan_cache.entries;
        pc_windows = st.Plan_cache.windows;
      }

(* --- kernel: Sunflow.schedule steady state ----------------------------

   The zero-allocation claim, priced: schedule a 16-port two-ring
   shuffle against a persistent table, retract it, and repeat. After
   warm-up the kernel's scratch — the DLS arena, the wake heap, the
   made array — is at steady-state size, so the minor words per
   iteration are the *output* (the reservations list and the result
   record) plus whatever the kernel still allocates per call. The
   checker holds ns/schedule and minor-words/schedule under ceilings
   with headroom, so an accidental per-call allocation (a closure in
   the hot loop, a tuple in the probe) moves a gated number. *)

type kernel_row = {
  k_ports : int;
  k_iters : int;
  k_ns_per_schedule : float;
  k_minor_words_per_schedule : float;
}

let kernel_row : kernel_row option ref = ref None

let kernel_section ppf _s =
  E.Common.section ppf "KERNEL: Sunflow.schedule steady state";
  let delta = Units.ms 10. and bandwidth = Units.gbps 1. in
  let n_ports = 16 in
  let c =
    let d = Sunflow_core.Demand.create () in
    for i = 0 to n_ports - 1 do
      Sunflow_core.Demand.set d i
        ((i + 1) mod n_ports)
        (Units.mb (4. +. float_of_int (i mod 5)));
      Sunflow_core.Demand.set d i
        ((i + 5) mod n_ports)
        (Units.mb (2. +. float_of_int (i mod 3)))
    done;
    Sunflow_core.Coflow.make ~id:0 ~arrival:0. d
  in
  let prt = Prt.create () in
  let one () =
    ignore (Sunflow.schedule ~prt ~delta ~bandwidth c : Sunflow.result);
    ignore (Prt.retract_coflow prt 0 : int);
    Prt.forget_history prt
  in
  for _ = 1 to 1_000 do
    one ()
  done;
  let iters = if fast () then 5_000 else 50_000 in
  Gc.full_major ();
  let mw0 = Gc.minor_words () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to iters do
    one ()
  done;
  let wall = Unix.gettimeofday () -. t0 in
  let mw = Gc.minor_words () -. mw0 in
  let k_ns_per_schedule = wall *. 1e9 /. float_of_int iters in
  let k_minor_words_per_schedule = mw /. float_of_int iters in
  Format.fprintf ppf
    "  %d-port shuffle: %.0f ns/schedule, %.0f minor words/schedule (%d \
     iters)@."
    n_ports k_ns_per_schedule k_minor_words_per_schedule iters;
  kernel_row :=
    Some
      {
        k_ports = n_ports;
        k_iters = iters;
        k_ns_per_schedule;
        k_minor_words_per_schedule;
      }

(* --- shards: the sharded simulation core ------------------------------

   The PR-7 gate: replay a pod-local storm (16 pods x 8 ports; almost
   every Coflow a small intra-pod shuffle, 0.5 % single-flow cross-pod
   stragglers) through the sharded engine at 1, 2, 4, 8 and 16 shards
   with pod-aligned stripes, single-domain throughout. Each shard
   count runs [reps] times and keeps the minimum wall; the replan
   wall-clock (the [sim.plan_s] histogram's sum — the engine time the
   sharding actually attacks) is recorded alongside the end-to-end
   wall, with the conflict and rollback counts and a digest of the
   Sim_result. The checker requires every digest to agree (bit-identity
   across shard counts at benchmark scale), the cross-shard conflict
   rate to stay under its ceiling, and the shards=1 run to be at least
   1.3x slower in replan wall (1.15x end-to-end) than the best sharded
   run.

   What the floors price: per event the engine's Sunflow.schedule
   calls (straddler restarts and repair cascades) are identical across
   shard counts — bit-identity pins the decisions — so sharding wins
   by confining the splice walk, the stale-finish scan and the
   min-finish fold to the dirty shards. On this trace that shardable
   slice is ~40 % of replan time; the measured ratios run 1.35-1.39x
   replan and 1.29-1.34x end-to-end, and the floors sit under the
   observed spread, not at the mean. *)

type shard_row = {
  h_shards : int;
  h_wall_s : float;  (** min over reps, end-to-end *)
  h_plan_s : float;  (** min over reps, summed per-event replan wall *)
  h_events : int;
  h_steps : int;
  h_conflicts : int;
  h_rollbacks : int;
  h_digest : string;
}

type shard_summary = {
  sh_pods : int;
  sh_pod_size : int;
  sh_coflows : int;
  sh_cross_frac : float;
  sh_reps : int;
  sh_rows : shard_row list;
}

let shard_summary : shard_summary option ref = ref None

let shard_section ppf _s =
  E.Common.section ppf "SHARDS: sharded engine vs the sequential path";
  let pods = 16 and pod_size = 8 in
  let coflows = if fast () then 400 else 3_500 in
  let span = if fast () then 3.2 else 28. in
  let cross_frac = 0.005 in
  let p =
    {
      Sunflow_trace.Synthetic.default_pod_params with
      p_pods = pods;
      p_pod_size = pod_size;
      p_coflows = coflows;
      p_span = span;
      p_cross_frac = cross_frac;
      p_flow_mb = (4., 1.2);
    }
  in
  let trace = (Sunflow_trace.Synthetic.pods p).Sunflow_trace.Trace.coflows in
  (* the gates are calibrated at the paper-default fabric speed and
     reconfiguration delay, independent of the settings under test *)
  let delta = Units.ms 10. and bandwidth = Units.gbps 1. in
  let reps = if fast () then 2 else 3 in
  (* [sim.plan_s] records only while observability is on; measure by
     histogram-sum deltas so nothing needs a registry reset *)
  let was_enabled = Obs.Control.enabled () in
  Obs.Control.set_enabled true;
  let plan_sum () =
    (Obs.Registry.histogram_value (Obs.Registry.histogram "sim.plan_s"))
      .Obs.Registry.h_sum
  in
  let run_once shards =
    Gc.full_major ();
    let stats =
      ref
        {
          Sunflow_core.Inter.shard_steps = 0;
          shard_conflicts = 0;
          shard_rollbacks = 0;
        }
    in
    let p0 = plan_sum () in
    let t0 = Unix.gettimeofday () in
    let r =
      Circuit_sim.run ~policy:Sunflow_core.Inter.Shortest_first
        ~replan:`Incremental ~buckets:24 ~bucket_base:2. ~shards
        ~shard_block:pod_size ~shard_stats:stats ~delta ~bandwidth trace
    in
    let wall = Unix.gettimeofday () -. t0 in
    (wall, plan_sum () -. p0, r, !stats)
  in
  let rows =
    List.map
      (fun shards ->
        let runs = List.init reps (fun _ -> run_once shards) in
        let wall =
          List.fold_left (fun a (w, _, _, _) -> Float.min a w) infinity runs
        in
        let plan =
          List.fold_left (fun a (_, p, _, _) -> Float.min a p) infinity runs
        in
        let _, _, r, st = List.hd runs in
        let row =
          {
            h_shards = shards;
            h_wall_s = wall;
            h_plan_s = plan;
            h_events = r.Sunflow_sim.Sim_result.n_events;
            h_steps = st.Sunflow_core.Inter.shard_steps;
            h_conflicts = st.Sunflow_core.Inter.shard_conflicts;
            h_rollbacks = st.Sunflow_core.Inter.shard_rollbacks;
            h_digest = digest_result r;
          }
        in
        Format.fprintf ppf
          "  shards=%-2d  wall %6.2fs  replan %6.2fs  %d conflicts, %d \
           rollbacks  digest %s@."
          shards wall plan row.h_conflicts row.h_rollbacks row.h_digest;
        row)
      [ 1; 2; 4; 8; 16 ]
  in
  Obs.Tracer.clear ();
  Obs.Control.set_enabled was_enabled;
  (match rows with
  | base :: rest when rest <> [] ->
    let best f = List.fold_left (fun a r -> Float.min a (f r)) infinity rest in
    Format.fprintf ppf
      "  best sharded speedup: %.2fx replan wall, %.2fx end-to-end@."
      (base.h_plan_s /. best (fun r -> r.h_plan_s))
      (base.h_wall_s /. best (fun r -> r.h_wall_s))
  | _ -> ());
  shard_summary :=
    Some
      {
        sh_pods = pods;
        sh_pod_size = pod_size;
        sh_coflows = coflows;
        sh_cross_frac = cross_frac;
        sh_reps = reps;
        sh_rows = rows;
      }

(* --- report: CCT attribution across engine variants -------------------

   The PR-8 gate: replay the settings trace with attribution enabled
   under the anchored engine variants (incremental, its rebuild
   oracle, and a sharded incremental run) and build the [sunflow
   report] JSON from each. The report body — everything derived from
   the executed schedule — must digest identically across the
   variants, since the anchored modes are bit-identical by
   construction ([`Full] is excluded: its drain-then-recompute
   semantics drift in the last float bits by design, see
   [Circuit_sim]). Attribution conservation (wait + setup + transfer
   + blocked = CCT for every Coflow) must hold with zero violations.
   The first variant's full report is written to BENCH_report.json
   (SUNFLOW_BENCH_REPORT_JSON overrides) for the checker to
   schema-validate: CDF monotone, blame summing to total CCT,
   utilization in [0, 1]. *)

type report_row = {
  t_variant : string;
  t_replan : string;
  t_shards : int;
  t_wall_s : float;
  t_body_digest : string;
  t_violations : int;
}

type report_summary = {
  rp_file : string;
  rp_coflows : int;
  rp_samples : int;
  rp_rows : report_row list;
}

let report_summary : report_summary option ref = ref None

let report_section ppf s =
  let module Check = Sunflow_check in
  E.Common.section ppf "REPORT: CCT attribution across engine variants";
  let delta = s.E.Common.delta and bandwidth = s.E.Common.bandwidth in
  let coflows = (E.Common.raw_trace s).Sunflow_trace.Trace.coflows in
  let report_file =
    match Sys.getenv_opt "SUNFLOW_BENCH_REPORT_JSON" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_report.json"
  in
  let was = Obs.Control.enabled () in
  let first_json = ref None in
  let n_samples = ref 0 in
  let rows =
    List.map
      (fun (t_variant, t_replan, replan, shards) ->
        Obs.Control.set_enabled true;
        Obs.Attrib.clear ();
        Obs.Sampler.clear ();
        Obs.Timeline.clear ();
        let t0 = Unix.gettimeofday () in
        let r =
          Circuit_sim.run ~policy:Sunflow_core.Inter.Shortest_first ~replan
            ~shards ~delta ~bandwidth coflows
        in
        let t_wall_s = Unix.gettimeofday () -. t0 in
        Obs.Control.set_enabled false;
        let run =
          [
            ("trace", "\"bench-settings\"");
            ("policy", "\"scf\"");
            ("replan", Printf.sprintf "\"%s\"" t_replan);
            ("shards", string_of_int shards);
            ("bandwidth_gbps", Printf.sprintf "%.9g" (Units.to_gbps bandwidth));
            ("delta_s", Printf.sprintf "%.9g" delta);
            ("samples", string_of_int (List.length (Obs.Sampler.samples ())));
          ]
        in
        let rep, violations =
          Check.Attrib_report.build ~run ~coflows r
        in
        let t_body_digest = digest_string (Obs.Report.body_json rep) in
        if !first_json = None then begin
          first_json := Some (Obs.Report.to_json rep);
          n_samples := List.length (Obs.Sampler.samples ())
        end;
        List.iter
          (fun v -> Format.fprintf ppf "  ATTRIB %a@." Check.Violation.pp v)
          violations;
        Format.fprintf ppf
          "  %-15s wall %6.2fs  body digest %s  %d violations@." t_variant
          t_wall_s t_body_digest (List.length violations);
        {
          t_variant;
          t_replan;
          t_shards = shards;
          t_wall_s;
          t_body_digest;
          t_violations = List.length violations;
        })
      [
        ("incremental", "incremental", `Incremental, 1);
        ("rebuild", "rebuild", `Rebuild, 1);
        ("incremental-s4", "incremental", `Incremental, 4);
      ]
  in
  Obs.Attrib.clear ();
  Obs.Sampler.clear ();
  Obs.Timeline.clear ();
  Obs.Tracer.clear ();
  Obs.Control.set_enabled was;
  (match !first_json with
  | Some json ->
    Obs.Io.write_file report_file json;
    Format.fprintf ppf "  wrote %s@." report_file
  | None -> ());
  report_summary :=
    Some
      {
        rp_file = report_file;
        rp_coflows = List.length coflows;
        rp_samples = !n_samples;
        rp_rows = rows;
      }

(* --- serve: the streaming scheduler at stream scale -------------------

   The PR-9 gate: drive a synthetic arrival stream — generated
   chunk-by-chunk, never materialised as one list — through
   [Sunflow_serve.Serve] and prove the bounded-memory claims at bench
   scale: 10^6 Coflows in full mode (10^5 under SUNFLOW_BENCH_FAST)
   with live engine entries bounded by the active set and a PRT undo
   journal that never survives a step. Sustained events/s and the p99
   per-event scheduling latency come from the loop's own bounded
   observability ([serve.event_s]). A second, smaller deadline-mode
   run exercises admission control and is validated end-to-end with
   [Sim_check] on the admitted subset. *)

type serve_summary = {
  v_coflows : int;
  v_arrivals : int;
  v_wall_s : float;
  v_events : int;
  v_events_per_s : float;
  v_p99_event_s : float;
  v_max_live : int;
  v_max_journal : int;
  v_admitted : int;
  v_rejected : int;
  v_completed : int;
  v_checked_coflows : int;
  v_checked_admitted : int;
  v_checked_rejected : int;
  v_checked_violations : int;
}

let serve_summary : serve_summary option ref = ref None

(* an unbounded-looking arrival stream at the generator's default
   offered load: chunk [i] is a fresh synthetic trace with re-based
   ids, shifted to start where the previous chunk's Poisson process
   actually ended (the process overshoots its span), so arrivals stay
   non-decreasing and only one chunk is ever resident *)
let synthetic_stream ~seed ~chunk ~chunks =
  let span = 3600. *. float_of_int chunk /. 526. in
  let idx = ref 0 in
  let offset = ref 0. in
  let rest = ref [] in
  let rec next () =
    match !rest with
    | c :: tl ->
      rest := tl;
      Some c
    | [] ->
      if !idx >= chunks then None
      else begin
        let i = !idx in
        incr idx;
        let base = i * chunk in
        let p =
          {
            Sunflow_trace.Synthetic.default_params with
            seed = seed + i;
            n_coflows = chunk;
            span;
          }
        in
        let t0 = !offset in
        rest :=
          List.map
            (fun (c : Sunflow_core.Coflow.t) ->
              let shifted =
                Sunflow_core.Coflow.make ~id:(base + c.id)
                  ~arrival:(c.arrival +. t0) c.demand
              in
              offset := shifted.Sunflow_core.Coflow.arrival;
              shifted)
            (Sunflow_trace.Synthetic.generate p).Sunflow_trace.Trace.coflows;
        next ()
      end
  in
  next

let serve_section ppf _s =
  let module Serve = Sunflow_serve.Serve in
  let module Check = Sunflow_check in
  E.Common.section ppf "SERVE: streaming scheduler, bounded memory";
  let delta = Units.ms 10. and bandwidth = Units.gbps 1. in
  let chunk = 10_000 in
  let chunks = if fast () then 10 else 100 in
  let n = chunk * chunks in
  let was = Obs.Control.enabled () in
  Obs.Control.set_enabled true;
  Obs.Registry.reset ();
  Gc.full_major ();
  let t0 = Unix.gettimeofday () in
  let stats =
    Serve.run ~delta ~bandwidth (synthetic_stream ~seed:97 ~chunk ~chunks)
  in
  let wall = Unix.gettimeofday () -. t0 in
  let p99 =
    Obs.Registry.quantile
      (Obs.Registry.histogram_value (Obs.Registry.histogram "serve.event_s"))
      0.99
  in
  Obs.Registry.reset ();
  Obs.Control.set_enabled was;
  let events_per_s = float_of_int stats.Serve.events /. wall in
  Format.fprintf ppf
    "  %d Coflows  wall %6.2fs  %.0f events/s  p99 event %.3g ms@." n wall
    events_per_s (p99 *. 1e3);
  Format.fprintf ppf "  max live %d (%.4f%% of stream)  max journal %d@."
    stats.Serve.max_live
    (100. *. float_of_int stats.Serve.max_live /. float_of_int n)
    stats.Serve.max_journal;
  (* the smaller checked run: deadline admission, then full
     conservation on the admitted subset *)
  let checked_n = if fast () then 150 else 526 in
  let trace =
    Sunflow_trace.Synthetic.generate
      {
        Sunflow_trace.Synthetic.default_params with
        seed = 53;
        n_coflows = checked_n;
      }
  in
  let deadline_of (c : Sunflow_core.Coflow.t) =
    c.Sunflow_core.Coflow.arrival
    +. 3.
       *. Sunflow_core.Bounds.circuit_lower ~bandwidth ~delta
            c.Sunflow_core.Coflow.demand
  in
  let kept = ref [] and ccts = ref [] and finishes = ref [] in
  let rest = ref trace.Sunflow_trace.Trace.coflows in
  let cstats =
    Serve.run ~deadline_of ~delta ~bandwidth
      ~on_admit:(fun c ~finish:_ -> kept := c :: !kept)
      ~on_finish:(fun ~id ~t ~cct ->
        finishes := (id, t) :: !finishes;
        ccts := (id, cct) :: !ccts)
      (fun () ->
        match !rest with
        | [] -> None
        | c :: tl ->
          rest := tl;
          Some c)
  in
  let by_id l = List.sort (fun (a, _) (x, _) -> compare a x) l in
  let result =
    {
      Sunflow_sim.Sim_result.ccts = by_id !ccts;
      finishes = by_id !finishes;
      makespan = cstats.Serve.makespan;
      n_events = cstats.Serve.events;
      total_setups = cstats.Serve.setups;
    }
  in
  let violations =
    Check.Sim_check.result ~bandwidth ~coflows:!kept result
  in
  List.iter
    (fun v -> Format.fprintf ppf "  SERVE %a@." Check.Violation.pp v)
    violations;
  Format.fprintf ppf
    "  checked run: %d Coflows, %d admitted / %d rejected, %d violations@."
    checked_n cstats.Serve.admitted cstats.Serve.rejected
    (List.length violations);
  serve_summary :=
    Some
      {
        v_coflows = n;
        v_arrivals = stats.Serve.arrivals;
        v_wall_s = wall;
        v_events = stats.Serve.events;
        v_events_per_s = events_per_s;
        v_p99_event_s = p99;
        v_max_live = stats.Serve.max_live;
        v_max_journal = stats.Serve.max_journal;
        v_admitted = stats.Serve.admitted;
        v_rejected = stats.Serve.rejected;
        v_completed = stats.Serve.completed;
        v_checked_coflows = checked_n;
        v_checked_admitted = cstats.Serve.admitted;
        v_checked_rejected = cstats.Serve.rejected;
        v_checked_violations = List.length violations;
      }

(* --- JSON emission ----------------------------------------------------

   Hand-rolled (no JSON library in the dependency set); the shapes are
   flat enough that correctness-by-construction is easy to audit, and
   bench/check_bench_json.ml re-parses the output to keep it honest. *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_float x =
  if Float.is_finite x then Printf.sprintf "%.9g" x else "null"

let json_stats (s : Prt.stats) =
  Printf.sprintf
    "{\"queries\": %d, \"scans\": %d, \"reservations\": %d, \"rollbacks\": %d}"
    s.Prt.queries s.Prt.scans s.Prt.reservations s.Prt.rollbacks

let emit_json path s domains =
  let buf = Buffer.create 4096 in
  let add fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  add "{\n";
  add "  \"schema\": \"sunflow-bench-prt/10\",\n";
  add "  \"fast\": %b,\n" (fast ());
  add "  \"domains\": %d,\n" domains;
  add
    "  \"settings\": {\"bandwidth_gbps\": %s, \"delta_s\": %s, \"n_coflows\": \
     %d, \"seed\": %d},\n"
    (json_float (Units.to_gbps s.E.Common.bandwidth))
    (json_float s.E.Common.delta)
    s.E.Common.trace_params.Sunflow_trace.Synthetic.n_coflows
    s.E.Common.trace_params.Sunflow_trace.Synthetic.seed;
  add "  \"experiments\": [\n";
  let rows = List.rev !experiment_rows in
  List.iteri
    (fun i row ->
      add "    {\"name\": \"%s\", \"wall_s\": %s, \"prt_stats\": %s}%s\n"
        (json_escape row.name) (json_float row.wall_s) (json_stats row.prt)
        (if i = List.length rows - 1 then "" else ","))
    rows;
  add "  ],\n";
  add "  \"bechamel\": [\n";
  let brows =
    List.sort (fun (a, _) (b, _) -> compare a b) !bechamel_rows
  in
  List.iteri
    (fun i (name, ns) ->
      add "    {\"name\": \"%s\", \"ns_per_run\": %s}%s\n" (json_escape name)
        (json_float ns)
        (if i = List.length brows - 1 then "" else ","))
    brows;
  add "  ],\n";
  add "  \"parallel\": [\n";
  let prows = List.rev !parallel_rows in
  let json_digest = function
    | Some d -> Printf.sprintf "\"%s\"" (json_escape d)
    | None -> "null"
  in
  List.iteri
    (fun i row ->
      add
        "    {\"name\": \"%s\", \"wall_par_s\": %s, \"wall_seq_s\": %s, \
         \"speedup\": %s, \"digest_par\": %s, \"digest_seq\": %s}%s\n"
        (json_escape row.p_name)
        (json_float row.wall_par_s)
        (json_float row.wall_seq_s)
        (json_float (row.wall_seq_s /. row.wall_par_s))
        (json_digest row.digest_par) (json_digest row.digest_seq)
        (if i = List.length prows - 1 then "" else ","))
    prows;
  add "  ],\n";
  (match !obs_row with
  | None -> add "  \"obs\": null,\n"
  | Some o ->
    add
      "  \"obs\": {\"disabled_ns_per_probe\": %s, \"wall_disabled_s\": %s, \
       \"wall_enabled_s\": %s, \"enabled_events\": %d, \
       \"disabled_overhead_ratio\": %s, \"trace_file\": \"%s\"},\n"
      (json_float o.disabled_ns_per_probe)
      (json_float o.wall_disabled_s)
      (json_float o.wall_enabled_s)
      o.enabled_events
      (json_float o.disabled_overhead_ratio)
      (json_escape o.trace_file));
  (match !check_row with
  | None -> add "  \"check\": null,\n"
  | Some k ->
    add
      "  \"check\": {\"plans\": %d, \"plan_violations\": %d, \"traces\": %d, \
       \"compared\": %d, \"worst_err_s\": %s, \"oracle_violations\": %d, \
       \"wall_s\": %s},\n"
      k.k_plans k.k_plan_violations k.k_traces k.k_compared
      (json_float k.k_worst_err_s)
      k.k_oracle_violations (json_float k.k_wall_s));
  add "  \"replay\": [\n";
  let yrows = List.rev !replay_rows in
  List.iteri
    (fun i row ->
      add
        "    {\"trace\": \"%s\", \"policy\": \"%s\", \"n_coflows\": %d, \
         \"mode\": \"%s\", \"buckets\": %d, \"wall_s\": %s, \"events\": %d, \
         \"events_per_s\": %s, \"digest\": \"%s\"}%s\n"
        (json_escape row.y_trace) (json_escape row.y_policy) row.y_coflows
        (json_escape row.y_mode) row.y_buckets
        (json_float row.y_wall_s) row.y_events
        (json_float (float_of_int row.y_events /. row.y_wall_s))
        (json_escape row.y_digest)
        (if i = List.length yrows - 1 then "" else ","))
    yrows;
  add "  ],\n";
  (match !drift_row with
  | None -> add "  \"scf_drift\": null,\n"
  | Some d ->
    add
      "  \"scf_drift\": {\"buckets\": %d, \"coflows\": %d, \
       \"mean_cct_exact_s\": %s, \"mean_cct_bucketed_s\": %s, \"rel_mean\": \
       %s, \"max_rel\": %s},\n"
      d.d_buckets d.d_coflows
      (json_float d.d_mean_cct_exact_s)
      (json_float d.d_mean_cct_bucketed_s)
      (json_float d.d_rel_mean) (json_float d.d_max_rel));
  (match !shard_summary with
  | None -> add "  \"shards\": null,\n"
  | Some sh ->
    add
      "  \"shards\": {\"pods\": %d, \"pod_size\": %d, \"coflows\": %d, \
       \"cross_frac\": %s, \"reps\": %d, \"rows\": [\n"
      sh.sh_pods sh.sh_pod_size sh.sh_coflows
      (json_float sh.sh_cross_frac)
      sh.sh_reps;
    List.iteri
      (fun i row ->
        let rate =
          if row.h_steps = 0 then 0.
          else float_of_int row.h_conflicts /. float_of_int row.h_steps
        in
        add
          "    {\"shards\": %d, \"wall_s\": %s, \"plan_s\": %s, \"events\": \
           %d, \"steps\": %d, \"conflicts\": %d, \"rollbacks\": %d, \
           \"conflict_rate\": %s, \"digest\": \"%s\"}%s\n"
          row.h_shards (json_float row.h_wall_s) (json_float row.h_plan_s)
          row.h_events row.h_steps row.h_conflicts row.h_rollbacks
          (json_float rate) (json_escape row.h_digest)
          (if i = List.length sh.sh_rows - 1 then "" else ","))
      sh.sh_rows;
    add "  ]},\n");
  (match !cache_summary with
  | None -> add "  \"plan_cache\": null,\n"
  | Some pc ->
    add
      "  \"plan_cache\": {\"coflows\": %d, \"reps\": %d, \"max_windows\": %d, \
       \"hits\": %d, \"misses\": %d, \"invalidations\": %d, \
       \"replayed_windows\": %d, \"entries\": %d, \"windows\": %d, \
       \"rows\": [\n"
      pc.pc_coflows pc.pc_reps pc.pc_max_windows pc.pc_hits pc.pc_misses
      pc.pc_invalidations pc.pc_replayed_windows pc.pc_entries pc.pc_windows;
    List.iteri
      (fun i row ->
        add
          "    {\"variant\": \"%s\", \"rep\": %d, \"wall_s\": %s, \"plan_s\": \
           %s, \"digest\": \"%s\"}%s\n"
          (json_escape row.pcr_variant)
          row.pcr_rep
          (json_float row.pcr_wall_s)
          (json_float row.pcr_plan_s)
          (json_escape row.pcr_digest)
          (if i = List.length pc.pc_rows - 1 then "" else ","))
      pc.pc_rows;
    add "  ]},\n");
  (match !kernel_row with
  | None -> add "  \"kernel\": null,\n"
  | Some k ->
    add
      "  \"kernel\": {\"ports\": %d, \"iters\": %d, \"ns_per_schedule\": %s, \
       \"minor_words_per_schedule\": %s},\n"
      k.k_ports k.k_iters
      (json_float k.k_ns_per_schedule)
      (json_float k.k_minor_words_per_schedule));
  (match !report_summary with
  | None -> add "  \"report\": null,\n"
  | Some rp ->
    add
      "  \"report\": {\"file\": \"%s\", \"coflows\": %d, \"samples\": %d, \
       \"rows\": [\n"
      (json_escape rp.rp_file) rp.rp_coflows rp.rp_samples;
    List.iteri
      (fun i row ->
        add
          "    {\"variant\": \"%s\", \"replan\": \"%s\", \"shards\": %d, \
           \"wall_s\": %s, \"body_digest\": \"%s\", \"violations\": %d}%s\n"
          (json_escape row.t_variant)
          (json_escape row.t_replan)
          row.t_shards (json_float row.t_wall_s)
          (json_escape row.t_body_digest)
          row.t_violations
          (if i = List.length rp.rp_rows - 1 then "" else ","))
      rp.rp_rows;
    add "  ]},\n");
  (match !serve_summary with
  | None -> add "  \"serve\": null,\n"
  | Some v ->
    add
      "  \"serve\": {\"coflows\": %d, \"arrivals\": %d, \"wall_s\": %s, \
       \"events\": %d, \"events_per_s\": %s, \"p99_event_s\": %s, \
       \"max_live\": %d, \"max_journal\": %d, \"admitted\": %d, \
       \"rejected\": %d, \"completed\": %d, \"checked\": {\"coflows\": %d, \
       \"admitted\": %d, \"rejected\": %d, \"violations\": %d}},\n"
      v.v_coflows v.v_arrivals (json_float v.v_wall_s) v.v_events
      (json_float v.v_events_per_s)
      (json_float v.v_p99_event_s)
      v.v_max_live v.v_max_journal v.v_admitted v.v_rejected v.v_completed
      v.v_checked_coflows v.v_checked_admitted v.v_checked_rejected
      v.v_checked_violations);
  add "  \"prt_stats\": %s\n" (json_stats (Prt.stats ()));
  add "}\n";
  Obs.Io.write_file path (Buffer.contents buf)

let () =
  let ppf = Format.std_formatter in
  let s = settings () in
  let domains = Pool.default_jobs () in
  Prt.reset_stats ();
  Format.fprintf ppf
    "Sunflow reproduction benchmark harness (CoNEXT 2016)@.settings: B=%g Gbps, delta=%a, %d Coflows, seed=%d, %d domains@."
    (Units.to_gbps s.E.Common.bandwidth)
    Units.pp_time s.E.Common.delta
    s.E.Common.trace_params.Sunflow_trace.Synthetic.n_coflows
    s.E.Common.trace_params.Sunflow_trace.Synthetic.seed
    domains;
  experiment_reports ppf s;
  run_bechamel ppf s;
  speedup_section ppf s domains;
  obs_section ppf s;
  check_section ppf s;
  replay_section ppf s;
  cache_section ppf s;
  kernel_section ppf s;
  shard_section ppf s;
  report_section ppf s;
  serve_section ppf s;
  let json_path =
    match Sys.getenv_opt "SUNFLOW_BENCH_JSON" with
    | Some p when p <> "" -> p
    | _ -> "BENCH_prt.json"
  in
  emit_json json_path s domains;
  Format.fprintf ppf "@.wrote %s (total prt: %a)@.@.done.@." json_path
    Prt.pp_stats (Prt.stats ())

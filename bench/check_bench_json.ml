(* Validator for BENCH_prt.json (the @bench-smoke gate): re-parses the
   file with a small self-contained JSON reader and checks the schema
   the perf-trajectory tooling relies on, so a malformed or truncated
   emission fails the alias instead of silently producing an unusable
   data point.

   Since schema /3 it also gates the observability layer: the modeled
   disabled-path overhead must stay at or under 2%, and the trace file
   the harness exported must pass [Sunflow_obs.Chrome_trace.validate]
   (i.e. actually load in Perfetto) with the recorded event count.

   Since schema /4 it additionally gates the validation layer: the
   harness must have run the [Sunflow_check] plan validator and the
   differential switch oracle on non-trivial inputs, with zero
   violations.

   Since schema /5 it gates the incremental replanning engine: every
   replayed trace must carry all three engine rows (full, rebuild,
   incremental) with the rebuild and incremental digests identical —
   the suffix-only engine is bit-equal to its from-scratch oracle at
   benchmark scale — and on the full harness's >= 50k-Coflow synthetic
   trace the incremental engine must beat full replanning by at least
   2x wall time.

   Since schema /6 the replay rows carry a bucket count and the gates
   sharpen: wherever a rebuild row exists for a (trace, policy,
   buckets) configuration its incremental digest must match, every
   (trace, policy) pair must carry at least one such verified pair,
   the >= 50k Fifo replay must hold the PR 5 regression floor of 3.5x
   incremental-over-full, the >= 50k Shortest-first replay must show
   the bucketed engine at least 2.5x faster than full replanning, and
   the recorded mean CCT drift of the bucketed order against the exact
   shortest-first run must stay within the 10% fidelity budget.

   Since schema /7 it gates the sharded simulation core: the pod-local
   storm must have replayed at shards = 1 and at several sharded
   widths with every digest identical (bit-identity across shard
   counts at benchmark scale), the cross-shard conflict rate must be
   recomputable from its inputs and stay at or under 15% on every
   sharded row, and — full harness only — the best sharded run must
   beat shards = 1 by at least 1.3x replan wall-clock and 1.15x
   end-to-end, single-domain.

   Since schema /8 it gates the CCT attribution engine: the report
   section must have replayed the settings trace under the anchored
   engine variants (incremental, rebuild, and a sharded run) with the
   report body digesting identically across all of them and zero
   attribution-conservation violations, and the exported report file
   itself must validate — schema sunflow-report/1, the aggregate
   blame components summing to the total CCT, every CDF's quantiles
   non-decreasing over non-decreasing fractions, per-port utilization
   and reconfiguring fractions in [0, 1], and every slowest-Coflow
   row conserving (wait + setup + transfer + blocked = CCT) with its
   blame vector summing to its blocked time.

   Since schema /10 it gates the footprint-epoch plan cache and the
   schedule kernel: the SCF storm must have replayed cache-off and
   cache-on (one cold populate run, then warm runs on the shared
   handle) with every row's Sim_result digest identical — the cache
   may change when the answer is computed, never the answer — the
   warm hit rate over 50%, and — full harness only — the warm replan
   wall at least 1.3x faster than cache-off; and the steady-state
   Sunflow.schedule microbench must hold its ns/schedule and
   minor-words/schedule under ceilings set with ~2x headroom over the
   measured baseline, so an accidental per-call allocation in the
   kernel's hot path moves a gated number. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* --- tiny recursive-descent JSON parser --- *)

let parse (s : string) : json =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> bad "expected %c at offset %d" c !pos
  in
  let literal lit v =
    String.iter expect lit;
    v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      match peek () with
      | None -> bad "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
          Buffer.add_char buf c;
          advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !pos + 4 > n then bad "truncated unicode escape";
          let hex = String.sub s !pos 4 in
          let code =
            try int_of_string ("0x" ^ hex)
            with _ -> bad "bad unicode escape %S" hex
          in
          (* the emitter only escapes control characters, so a raw byte
             round-trip is enough here *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else Buffer.add_string buf (Printf.sprintf "\\u%s" hex);
          pos := !pos + 4
        | _ -> bad "bad escape at offset %d" !pos);
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_num_char = function
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> is_num_char c | None -> false) do
      advance ()
    done;
    let tok = String.sub s start (!pos - start) in
    match float_of_string_opt tok with
    | Some v -> Num v
    | None -> bad "bad number %S" tok
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> bad "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec members acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> bad "expected , or } at offset %d" !pos
        in
        members []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec elements acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            elements (v :: acc)
          | Some ']' ->
            advance ();
            Arr (List.rev (v :: acc))
          | _ -> bad "expected , or ] at offset %d" !pos
        in
        elements []
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> parse_number ()
  in
  let v = parse_value () in
  skip_ws ();
  if !pos <> n then bad "trailing garbage at offset %d" !pos;
  v

(* --- schema checks --- *)

let field obj key =
  match obj with
  | Obj members -> (
    match List.assoc_opt key members with
    | Some v -> v
    | None -> bad "missing key %S" key)
  | _ -> bad "expected an object holding %S" key

let as_arr what = function Arr l -> l | _ -> bad "%s: expected an array" what

let as_str what = function Str s -> s | _ -> bad "%s: expected a string" what

let as_num what = function
  | Num v -> v
  | _ -> bad "%s: expected a number" what

let check_counter what v =
  let x = as_num what v in
  if Float.of_int (Float.to_int x) <> x || x < 0. then
    bad "%s: expected a non-negative integer, got %g" what x

let check_prt_stats what v =
  List.iter
    (fun key -> check_counter (what ^ "." ^ key) (field v key))
    [ "queries"; "scans"; "reservations"; "rollbacks" ]

let as_str_opt what = function
  | Str s -> Some s
  | Null -> None
  | _ -> bad "%s: expected a string or null" what

let check_parallel root domains =
  let rows = as_arr "parallel" (field root "parallel") in
  if domains <= 1 && rows <> [] then
    bad "parallel: rows recorded despite domains = %d" domains;
  let names =
    List.map
      (fun row ->
        let name = as_str "parallel.name" (field row "name") in
        let wall_par = as_num (name ^ ".wall_par_s") (field row "wall_par_s") in
        let wall_seq = as_num (name ^ ".wall_seq_s") (field row "wall_seq_s") in
        let speedup = as_num (name ^ ".speedup") (field row "speedup") in
        if wall_par <= 0. || wall_seq <= 0. then
          bad "%s: non-positive wall time" name;
        if Float.abs (speedup -. (wall_seq /. wall_par)) > 1e-6 *. speedup then
          bad "%s: speedup does not match the recorded wall times" name;
        let dp = as_str_opt (name ^ ".digest_par") (field row "digest_par") in
        let ds = as_str_opt (name ^ ".digest_seq") (field row "digest_seq") in
        (match (dp, ds) with
        | Some a, Some b ->
          if a <> b then
            bad
              "%s: parallel output digest %S differs from sequential %S — the \
               parallel run is not bit-identical"
              name a b
        | None, None -> ()
        | _ -> bad "%s: digest_par/digest_seq must be both set or both null" name);
        (name, dp))
      rows
  in
  if domains > 1 then
    (* the determinism gate only means something if the deterministic
       reports actually took part *)
    List.iter
      (fun required ->
        match List.assoc_opt required names with
        | Some (Some _) -> ()
        | Some None -> bad "parallel.%s: expected a digest pair" required
        | None -> bad "parallel: missing the %S determinism row" required)
      [ "fig8"; "baseline-gap" ]

(* The obs section: overhead gate plus trace-file validation. The
   ratio is recomputed from its inputs so the emitter cannot game the
   gate; [json_dir] anchors the relative trace path next to the JSON
   file itself (where the dune rule puts both). *)
let check_obs root json_dir =
  match field root "obs" with
  | Null -> bad "obs: missing — the harness did not run the obs section"
  | obs ->
    let ns = as_num "obs.disabled_ns_per_probe" (field obs "disabled_ns_per_probe") in
    if ns <= 0. then bad "obs.disabled_ns_per_probe: non-positive (%g)" ns;
    if ns > 1000. then
      bad "obs.disabled_ns_per_probe: %g ns — a disabled probe should be branch-cheap" ns;
    let wall_disabled = as_num "obs.wall_disabled_s" (field obs "wall_disabled_s") in
    let wall_enabled = as_num "obs.wall_enabled_s" (field obs "wall_enabled_s") in
    if wall_disabled <= 0. || wall_enabled <= 0. then
      bad "obs: non-positive workload wall time";
    let events =
      let x = as_num "obs.enabled_events" (field obs "enabled_events") in
      if Float.of_int (Float.to_int x) <> x || x <= 0. then
        bad "obs.enabled_events: expected a positive integer, got %g" x;
      Float.to_int x
    in
    let ratio =
      as_num "obs.disabled_overhead_ratio" (field obs "disabled_overhead_ratio")
    in
    let recomputed = float_of_int events *. ns /. (wall_disabled *. 1e9) in
    if Float.abs (ratio -. recomputed) > 1e-6 *. Float.max ratio recomputed then
      bad "obs.disabled_overhead_ratio: %g does not match its inputs (%g)"
        ratio recomputed;
    if ratio > 0.02 then
      bad
        "obs.disabled_overhead_ratio: %.4f%% exceeds the 2%% disabled-path \
         budget"
        (100. *. ratio);
    let trace_file = as_str "obs.trace_file" (field obs "trace_file") in
    let trace_path =
      if Filename.is_relative trace_file then
        Filename.concat json_dir trace_file
      else trace_file
    in
    let trace =
      match
        let ic = open_in_bin trace_path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | content -> content
      | exception Sys_error msg -> bad "obs.trace_file: unreadable: %s" msg
    in
    (match Sunflow_obs.Chrome_trace.validate trace with
    | Error msg -> bad "obs.trace_file %s: invalid Chrome trace: %s" trace_path msg
    | Ok n ->
      if n <> events then
        bad "obs.trace_file %s: %d events in the file, %d recorded in the JSON"
          trace_path n events)

(* The validation section (schema /4): the harness ran the plan
   validator and the differential switch oracle, both on non-trivial
   inputs, and neither reported a violation. *)
let check_check root =
  match field root "check" with
  | Null -> bad "check: missing — the harness did not run the validation layer"
  | ck ->
    let nat what =
      let x = as_num what (field ck what) in
      if Float.of_int (Float.to_int x) <> x || x < 0. then
        bad "check.%s: expected a non-negative integer, got %g" what x;
      Float.to_int x
    in
    if nat "plans" = 0 then bad "check.plans: no plans were validated";
    if nat "traces" = 0 then bad "check.traces: the oracle replayed nothing";
    if nat "compared" = 0 then bad "check.compared: no finish was compared";
    let pv = nat "plan_violations" and ov = nat "oracle_violations" in
    if pv > 0 then bad "check.plan_violations: %d plan invariants broken" pv;
    if ov > 0 then
      bad "check.oracle_violations: %d simulator/switch divergences" ov;
    let worst = as_num "check.worst_err_s" (field ck "worst_err_s") in
    if not (Float.is_finite worst) || worst < 0. then
      bad "check.worst_err_s: expected a finite non-negative gap, got %g" worst

(* The replay section (schema /6): full vs rebuild vs incremental
   replanning on each trace, now per bucket configuration. Rebuild is
   the incremental engine's differential oracle, so wherever both run
   the same (trace, policy, buckets) cell their digests must match
   exactly; full mode's digest is informational (its semantics drift
   from the anchored modes in the last float bits by design). A
   non-fast emission must carry the >= 50k-Coflow trace twice: under
   Fifo, holding the PR 5 floor of 3.5x incremental-over-full, and
   under Shortest-first, where the bucketed engine must beat full
   replanning by at least 2.5x. *)

type replay_cell = {
  r_trace : string;
  r_policy : string;
  r_mode : string;
  r_buckets : int;
  r_n : int;
  r_wall : float;
  r_digest : string;
}

let check_replay root fast =
  let rows = as_arr "replay" (field root "replay") in
  if rows = [] then bad "replay: empty";
  let parsed =
    List.map
      (fun row ->
        let r_trace = as_str "replay.trace" (field row "trace") in
        let r_policy = as_str (r_trace ^ ".policy") (field row "policy") in
        if r_policy = "" then bad "replay.%s.policy: empty" r_trace;
        let r_mode = as_str (r_trace ^ ".mode") (field row "mode") in
        let r_buckets =
          let x = as_num (r_trace ^ ".buckets") (field row "buckets") in
          if Float.of_int (Float.to_int x) <> x || x < 0. then
            bad "replay.%s.buckets: expected a non-negative integer, got %g"
              r_trace x;
          Float.to_int x
        in
        let what =
          Printf.sprintf "replay.%s.%s.%s/b=%d" r_trace r_policy r_mode
            r_buckets
        in
        if r_mode = "full" && r_buckets <> 0 then
          bad "%s: full replanning has no bucketed order" what;
        let r_n =
          let x = as_num (what ^ ".n_coflows") (field row "n_coflows") in
          if Float.of_int (Float.to_int x) <> x || x <= 0. then
            bad "%s.n_coflows: expected a positive integer, got %g" what x;
          Float.to_int x
        in
        let r_wall = as_num (what ^ ".wall_s") (field row "wall_s") in
        if r_wall <= 0. then bad "%s: non-positive wall time" what;
        let events =
          let x = as_num (what ^ ".events") (field row "events") in
          if Float.of_int (Float.to_int x) <> x || x <= 0. then
            bad "%s.events: expected a positive integer, got %g" what x;
          Float.to_int x
        in
        let eps = as_num (what ^ ".events_per_s") (field row "events_per_s") in
        let recomputed = float_of_int events /. r_wall in
        if Float.abs (eps -. recomputed) > 1e-6 *. Float.max eps recomputed
        then
          bad "%s.events_per_s: %g does not match its inputs (%g)" what eps
            recomputed;
        let r_digest = as_str (what ^ ".digest") (field row "digest") in
        if r_digest = "" then bad "%s.digest: empty" what;
        { r_trace; r_policy; r_mode; r_buckets; r_n; r_wall; r_digest })
      rows
  in
  let pairs =
    List.sort_uniq compare
      (List.map (fun r -> (r.r_trace, r.r_policy)) parsed)
  in
  let cells trace policy mode =
    List.filter
      (fun r -> r.r_trace = trace && r.r_policy = policy && r.r_mode = mode)
      parsed
  in
  let cell trace policy mode buckets =
    List.find_opt (fun r -> r.r_buckets = buckets) (cells trace policy mode)
  in
  List.iter
    (fun (trace, policy) ->
      if cells trace policy "full" = [] then
        bad "replay.%s.%s: missing the full-replanning baseline row" trace
          policy;
      let rebuilds = cells trace policy "rebuild" in
      if rebuilds = [] then
        bad "replay.%s.%s: missing a rebuild oracle row" trace policy;
      List.iter
        (fun rb ->
          match cell trace policy "incremental" rb.r_buckets with
          | None ->
            bad
              "replay.%s.%s: rebuild ran at buckets=%d but the incremental \
               engine did not"
              trace policy rb.r_buckets
          | Some inc ->
            if inc.r_digest <> rb.r_digest then
              bad
                "replay.%s.%s/b=%d: incremental digest %S differs from its \
                 rebuild oracle %S — the rollback/splice machinery corrupted \
                 the replay"
                trace policy rb.r_buckets inc.r_digest rb.r_digest)
        rebuilds)
    pairs;
  if not fast then begin
    let big policy =
      List.filter
        (fun r -> r.r_mode = "full" && r.r_policy = policy && r.r_n >= 50_000)
        parsed
    in
    let gate policy pick_buckets floor =
      let fulls = big policy in
      if fulls = [] then
        bad
          "replay: a full (non-fast) run must include a >= 50k-Coflow %s \
           trace"
          policy;
      List.iter
        (fun full ->
          let incs =
            List.filter pick_buckets
              (cells full.r_trace full.r_policy "incremental")
          in
          if incs = [] then
            bad "replay.%s.%s: no incremental row to gate against" full.r_trace
              policy;
          List.iter
            (fun inc ->
              let speedup = full.r_wall /. inc.r_wall in
              if speedup < floor then
                bad
                  "replay.%s.%s/b=%d: incremental speedup %.2fx over full \
                   replanning is below the %.1fx gate"
                  full.r_trace policy inc.r_buckets speedup floor)
            incs)
        fulls
    in
    (* Fifo: the PR 5 regression floor, exact order *)
    gate "fifo" (fun r -> r.r_buckets = 0) 3.5;
    (* Shortest-first: the adversarial case the buckets exist for *)
    gate "scf" (fun r -> r.r_buckets > 0) 2.5
  end

(* The SCF drift record (schema /6): what the bucketed order costs in
   schedule fidelity against the exact shortest-first run, on the same
   trace the speedup gate measures. The mean CCT inflation is gated;
   the per-Coflow worst case is recorded but not gated (a single
   Coflow demoted to the back of its class can legitimately wait out
   the whole bucket). *)
let check_scf_drift root =
  match field root "scf_drift" with
  | Null -> bad "scf_drift: missing — the harness did not run the SCF replay"
  | d ->
    let buckets =
      let x = as_num "scf_drift.buckets" (field d "buckets") in
      if Float.of_int (Float.to_int x) <> x || x <= 0. then
        bad "scf_drift.buckets: expected a positive integer, got %g" x;
      Float.to_int x
    in
    ignore buckets;
    let coflows =
      let x = as_num "scf_drift.coflows" (field d "coflows") in
      if Float.of_int (Float.to_int x) <> x || x <= 0. then
        bad "scf_drift.coflows: expected a positive integer, got %g" x;
      Float.to_int x
    in
    ignore coflows;
    let exact = as_num "scf_drift.mean_cct_exact_s" (field d "mean_cct_exact_s") in
    let bucketed =
      as_num "scf_drift.mean_cct_bucketed_s" (field d "mean_cct_bucketed_s")
    in
    if exact <= 0. || bucketed <= 0. then
      bad "scf_drift: non-positive mean CCT (exact %g, bucketed %g)" exact
        bucketed;
    let rel_mean = as_num "scf_drift.rel_mean" (field d "rel_mean") in
    let recomputed = (bucketed -. exact) /. exact in
    if Float.abs (rel_mean -. recomputed) > 1e-6 *. Float.max 1. (Float.abs rel_mean)
    then
      bad "scf_drift.rel_mean: %g does not match its inputs (%g)" rel_mean
        recomputed;
    let max_rel = as_num "scf_drift.max_rel" (field d "max_rel") in
    if not (Float.is_finite max_rel) then bad "scf_drift.max_rel: not finite";
    if max_rel < rel_mean -. 1e-9 then
      bad "scf_drift.max_rel: %g below the mean %g" max_rel rel_mean;
    if rel_mean > 0.10 then
      bad
        "scf_drift.rel_mean: bucketed order inflates mean CCT by %.2f%%, \
         over the 10%% fidelity budget"
        (100. *. rel_mean)

(* The sharded engine (schema /7): bit-identity across shard counts,
   a bounded cross-shard conflict rate, and the single-domain speedup
   floors. The replan-wall floor (1.3x) sits on the time the sharding
   actually attacks — the per-event scheduling work — while the
   end-to-end floor (1.15x) keeps the win visible through the
   fixed simulation-loop costs every shard count shares. Both compare
   shards = 1 against the best sharded row, and both are skipped in
   fast mode (the smoke trace is too small to time meaningfully). *)
let check_shards root fast =
  match field root "shards" with
  | Null -> bad "shards: missing — the harness did not run the shard section"
  | sh ->
    List.iter
      (fun key ->
        check_counter ("shards." ^ key) (field sh key))
      [ "pods"; "pod_size"; "coflows"; "reps" ];
    let rows =
      List.map
        (fun row ->
          let shards =
            let x = as_num "shards.rows.shards" (field row "shards") in
            if Float.of_int (Float.to_int x) <> x || x < 1. then
              bad "shards.rows.shards: expected a positive integer, got %g" x;
            Float.to_int x
          in
          let what fmt = Printf.sprintf "shards.rows[%d].%s" shards fmt in
          let wall = as_num (what "wall_s") (field row "wall_s") in
          let plan = as_num (what "plan_s") (field row "plan_s") in
          if wall <= 0. || plan <= 0. then
            bad "%s: non-positive wall time" (what "wall_s/plan_s");
          if plan > wall then
            bad "%s: replan wall %g exceeds the end-to-end wall %g"
              (what "plan_s") plan wall;
          List.iter
            (fun key -> check_counter (what key) (field row key))
            [ "events"; "steps"; "conflicts"; "rollbacks" ];
          let steps = as_num (what "steps") (field row "steps") in
          let conflicts = as_num (what "conflicts") (field row "conflicts") in
          let rate = as_num (what "conflict_rate") (field row "conflict_rate") in
          let recomputed = if steps = 0. then 0. else conflicts /. steps in
          if Float.abs (rate -. recomputed) > 1e-9 then
            bad "%s: %g does not match conflicts/steps (%g)"
              (what "conflict_rate") rate recomputed;
          (shards, wall, plan, rate, as_str (what "digest") (field row "digest")))
        (as_arr "shards.rows" (field sh "rows"))
    in
    let base =
      match List.filter (fun (s, _, _, _, _) -> s = 1) rows with
      | [ b ] -> b
      | [] -> bad "shards.rows: no shards = 1 baseline row"
      | _ -> bad "shards.rows: duplicate shards = 1 rows"
    in
    let sharded = List.filter (fun (s, _, _, _, _) -> s > 1) rows in
    if sharded = [] then bad "shards.rows: no sharded rows";
    let _, base_wall, base_plan, _, base_digest = base in
    List.iter
      (fun (s, _, _, rate, digest) ->
        if digest <> base_digest then
          bad
            "shards.rows[%d]: digest %S differs from the shards = 1 baseline \
             %S — the sharded engine is not bit-identical"
            s digest base_digest;
        if rate > 0.15 then
          bad
            "shards.rows[%d]: cross-shard conflict rate %.3f is over the \
             0.15 ceiling — the trace is not shard-local-heavy"
            s rate)
      sharded;
    if not fast then begin
      let best f =
        List.fold_left (fun a r -> Float.min a (f r)) infinity sharded
      in
      let plan_speedup = base_plan /. best (fun (_, _, p, _, _) -> p) in
      if plan_speedup < 1.3 then
        bad
          "shards: best sharded replan speedup %.2fx is below the 1.3x gate"
          plan_speedup;
      let wall_speedup = base_wall /. best (fun (_, w, _, _, _) -> w) in
      if wall_speedup < 1.15 then
        bad
          "shards: best sharded end-to-end speedup %.2fx is below the 1.15x \
           gate"
          wall_speedup
    end

(* The plan-cache section (schema /10): cache-off vs shared-handle
   cached replays of the SCF storm. Digest identity across every row
   is the soundness gate; the speedup and hit-rate floors are the
   usefulness gates. *)
let check_plan_cache root fast =
  match field root "plan_cache" with
  | Null ->
    bad "plan_cache: missing — the harness did not run the cache section"
  | pc ->
    List.iter
      (fun key -> check_counter ("plan_cache." ^ key) (field pc key))
      [ "coflows"; "reps"; "max_windows"; "hits"; "misses"; "invalidations";
        "replayed_windows"; "entries"; "windows" ];
    let windows = as_num "plan_cache.windows" (field pc "windows") in
    let max_windows = as_num "plan_cache.max_windows" (field pc "max_windows") in
    if windows > max_windows then
      bad "plan_cache.windows: %g resident windows exceed the %g cap" windows
        max_windows;
    let entries = as_num "plan_cache.entries" (field pc "entries") in
    if entries <= 0. then
      bad "plan_cache.entries: the cached runs left nothing resident";
    let rows =
      List.map
        (fun row ->
          let variant =
            as_str "plan_cache.rows.variant" (field row "variant")
          in
          let what fmt = Printf.sprintf "plan_cache.rows[%s].%s" variant fmt in
          check_counter (what "rep") (field row "rep");
          let wall = as_num (what "wall_s") (field row "wall_s") in
          let plan = as_num (what "plan_s") (field row "plan_s") in
          if wall <= 0. || plan <= 0. then
            bad "%s: non-positive wall time" (what "wall_s/plan_s");
          if plan > wall then
            bad "%s: replan wall %g exceeds the end-to-end wall %g"
              (what "plan_s") plan wall;
          (variant, wall, plan, as_str (what "digest") (field row "digest")))
        (as_arr "plan_cache.rows" (field pc "rows"))
    in
    let of_variant v = List.filter (fun (v', _, _, _) -> v' = v) rows in
    let off = of_variant "off" and warm = of_variant "warm" in
    if off = [] || warm = [] || List.length (of_variant "cold") <> 1 then
      bad "plan_cache.rows: expected off rows, one cold row and warm rows";
    (match rows with
    | (_, _, _, digest0) :: rest ->
      List.iter
        (fun (v, _, _, d) ->
          if d <> digest0 then
            bad
              "plan_cache.rows[%s]: digest %S differs from %S — the cache \
               changed the answer"
              v d digest0)
        rest
    | [] -> assert false);
    let hits = as_num "plan_cache.hits" (field pc "hits") in
    let misses = as_num "plan_cache.misses" (field pc "misses") in
    if hits +. misses <= 0. then
      bad "plan_cache: the cached runs made no lookups";
    let rate = hits /. (hits +. misses) in
    if rate < 0.5 then
      bad
        "plan_cache: hit rate %.2f is under the 0.5 floor — the warm runs \
         are not replaying"
        rate;
    if not fast then begin
      let min_plan rows =
        List.fold_left (fun a (_, _, p, _) -> Float.min a p) infinity rows
      in
      let speedup = min_plan off /. min_plan warm in
      if speedup < 1.3 then
        bad "plan_cache: warm replan speedup %.2fx is below the 1.3x gate"
          speedup
    end

(* The kernel microbench (schema /10): steady-state Sunflow.schedule
   against a persistent table. Ceilings sit ~2x over the measured
   baseline — loose enough for machine noise, tight enough that a
   per-call allocation slipping into the probe loop or the DLS sweep
   (which multiplies minor words by the flow count) trips them. *)
let check_kernel root =
  match field root "kernel" with
  | Null -> bad "kernel: missing — the harness did not run the microbench"
  | k ->
    check_counter "kernel.ports" (field k "ports");
    check_counter "kernel.iters" (field k "iters");
    if as_num "kernel.iters" (field k "iters") <= 0. then
      bad "kernel.iters: the microbench ran no iterations";
    let ns = as_num "kernel.ns_per_schedule" (field k "ns_per_schedule") in
    if ns <= 0. then bad "kernel.ns_per_schedule: non-positive (%g)" ns;
    if ns > 100_000. then
      bad "kernel.ns_per_schedule: %.0f ns is over the 100000 ns ceiling" ns;
    let mw =
      as_num "kernel.minor_words_per_schedule"
        (field k "minor_words_per_schedule")
    in
    if mw < 0. then bad "kernel.minor_words_per_schedule: negative (%g)" mw;
    if mw > 14_000. then
      bad
        "kernel.minor_words_per_schedule: %.0f words is over the 14000-word \
         ceiling — the kernel is allocating per call beyond its output"
        mw

(* The report section (schema /8): body digests byte-identical across
   the anchored engine variants, zero conservation violations, and the
   exported sunflow-report file well-formed with its internal
   invariants holding. Tolerances are loose relative to the per-Coflow
   checker's (the aggregates sum float error over every Coflow). *)
let check_report root json_dir =
  match field root "report" with
  | Null -> bad "report: missing — the harness did not run the report section"
  | rp ->
    let file = as_str "report.file" (field rp "file") in
    check_counter "report.coflows" (field rp "coflows");
    if as_num "report.coflows" (field rp "coflows") <= 0. then
      bad "report.coflows: the report covered no Coflows";
    check_counter "report.samples" (field rp "samples");
    if as_num "report.samples" (field rp "samples") <= 0. then
      bad "report.samples: the telemetry sampler recorded nothing";
    let rows =
      List.map
        (fun row ->
          let variant = as_str "report.rows.variant" (field row "variant") in
          let what key = Printf.sprintf "report.rows[%s].%s" variant key in
          let replan = as_str (what "replan") (field row "replan") in
          if not (List.mem replan [ "incremental"; "rebuild" ]) then
            bad
              "%s: %S — only the anchored modes are byte-stable (full drifts \
               by design)"
              (what "replan") replan;
          let shards =
            let x = as_num (what "shards") (field row "shards") in
            if Float.of_int (Float.to_int x) <> x || x < 1. then
              bad "%s: expected a positive integer, got %g" (what "shards") x;
            Float.to_int x
          in
          let wall = as_num (what "wall_s") (field row "wall_s") in
          if wall <= 0. then bad "%s: non-positive wall time" (what "wall_s");
          let digest = as_str (what "body_digest") (field row "body_digest") in
          if digest = "" then bad "%s: empty" (what "body_digest");
          let violations =
            let x = as_num (what "violations") (field row "violations") in
            if Float.of_int (Float.to_int x) <> x || x < 0. then
              bad "%s: expected a non-negative integer, got %g"
                (what "violations") x;
            Float.to_int x
          in
          if violations > 0 then
            bad "%s: %d attribution-conservation violations"
              (what "violations") violations;
          (variant, replan, shards, digest))
        (as_arr "report.rows" (field rp "rows"))
    in
    List.iter
      (fun required ->
        if not (List.exists (fun (_, r, _, _) -> r = required) rows) then
          bad "report.rows: missing the %S variant" required)
      [ "incremental"; "rebuild" ];
    if not (List.exists (fun (_, _, s, _) -> s > 1) rows) then
      bad "report.rows: no sharded variant";
    (match rows with
    | (v0, _, _, d0) :: rest ->
      List.iter
        (fun (v, _, _, d) ->
          if d <> d0 then
            bad
              "report.rows[%s]: body digest %S differs from %s's %S — the \
               report body is not byte-stable across the anchored engine \
               variants"
              v d v0 d0)
        rest
    | [] -> bad "report.rows: empty");
    (* the exported report file itself *)
    let path =
      if Filename.is_relative file then Filename.concat json_dir file
      else file
    in
    let content =
      match
        let ic = open_in_bin path in
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> really_input_string ic (in_channel_length ic))
      with
      | content -> content
      | exception Sys_error msg -> bad "report.file: unreadable: %s" msg
    in
    let rep =
      match parse content with
      | v -> v
      | exception Bad msg -> bad "report.file %s: unparseable: %s" path msg
    in
    let schema = as_str "report.schema" (field rep "schema") in
    if schema <> "sunflow-report/1" then
      bad "report.file %s: unknown schema %S" path schema;
    ignore (field rep "run");
    let body = field rep "body" in
    let n_coflows =
      let x = as_num "body.coflows" (field body "coflows") in
      if Float.of_int (Float.to_int x) <> x || x < 0. then
        bad "body.coflows: expected a non-negative integer, got %g" x;
      Float.to_int x
    in
    let makespan = as_num "body.makespan_s" (field body "makespan_s") in
    if makespan <= 0. then bad "body.makespan_s: non-positive (%g)" makespan;
    (* aggregate blame conserves: the per-Coflow slack (1e-6 each)
       summed over every Coflow *)
    let agg_tol = (1e-6 *. float_of_int (max 1 n_coflows)) +. 1e-9 in
    let blame = field body "blame" in
    let bf key = as_num ("body.blame." ^ key) (field blame key) in
    let wait = bf "wait_s" and setup = bf "setup_s" in
    let transfer = bf "transfer_s" and blocked = bf "blocked_s" in
    let total = bf "total_cct_s" in
    List.iter
      (fun (key, v) ->
        if v < -.agg_tol then bad "body.blame.%s: negative (%g)" key v)
      [
        ("wait_s", wait);
        ("setup_s", setup);
        ("transfer_s", transfer);
        ("blocked_s", blocked);
        ("total_cct_s", total);
      ];
    let residual = wait +. setup +. transfer +. blocked -. total in
    if Float.abs residual > agg_tol +. (1e-9 *. Float.abs total) then
      bad
        "body.blame: components sum to %g but total_cct_s is %g (residual %g \
         over the %g slack) — attribution does not conserve"
        (wait +. setup +. transfer +. blocked)
        total residual agg_tol;
    (* every CDF non-decreasing over non-decreasing fractions *)
    List.iter
      (fun bin ->
        let width = as_str "body.cct_cdf.width" (field bin "width") in
        let what = Printf.sprintf "body.cct_cdf[%s]" width in
        if as_num (what ^ ".count") (field bin "count") <= 0. then
          bad "%s.count: empty bin emitted" what;
        let qs =
          List.map
            (fun pt ->
              ( as_num (what ^ ".q") (field pt "q"),
                as_num (what ^ ".cct_s") (field pt "cct_s") ))
            (as_arr (what ^ ".quantiles") (field bin "quantiles"))
        in
        if qs = [] then bad "%s.quantiles: empty" what;
        ignore
          (List.fold_left
             (fun prev (q, cct) ->
               (match prev with
               | Some (pq, pc) ->
                 if q < pq then bad "%s: fractions not sorted" what;
                 if cct < pc -. 1e-12 then
                   bad "%s: quantiles decrease (%g at q=%g after %g at q=%g)"
                     what cct q pc pq
               | None -> ());
               if cct < 0. then bad "%s: negative CCT quantile %g" what cct;
               Some (q, cct))
             None qs))
      (as_arr "body.cct_cdf" (field body "cct_cdf"));
    (* per-port duty-cycle fractions in [0, 1] *)
    List.iter
      (fun pr ->
        let port = as_str "body.ports.port" (field pr "port") in
        let what key = Printf.sprintf "body.ports[%s].%s" port key in
        let util = as_num (what "utilization") (field pr "utilization") in
        let reconf = as_num (what "reconfiguring") (field pr "reconfiguring") in
        List.iter
          (fun (key, v) ->
            if v < 0. || v > 1. +. 1e-9 then
              bad "%s: %g outside [0, 1]" (what key) v)
          [ ("utilization", util); ("reconfiguring", reconf) ];
        if util +. reconf > 1. +. 1e-6 then
          bad
            "body.ports[%s]: busy + reconfiguring duty cycle %g exceeds 1 — \
             the port's reservations overlap"
            port (util +. reconf))
      (as_arr "body.ports" (field body "ports"));
    (* slowest rows conserve individually, blame sums to blocked *)
    List.iter
      (fun row ->
        let id =
          let x = as_num "body.slowest.coflow" (field row "coflow") in
          Float.to_int x
        in
        let what key = Printf.sprintf "body.slowest[%d].%s" id key in
        let f key = as_num (what key) (field row key) in
        let cct = f "cct_s" in
        let sum = f "wait_s" +. f "setup_s" +. f "transfer_s" +. f "blocked_s" in
        if Float.abs (sum -. cct) > 1e-6 +. (1e-9 *. Float.abs cct) then
          bad "%s: components sum to %g, cct_s is %g" (what "cct_s") sum cct;
        let blame_sum =
          List.fold_left
            (fun acc b -> acc +. as_num (what "blame.seconds") (field b "seconds"))
            0.
            (as_arr (what "blame") (field row "blame"))
        in
        if Float.abs (blame_sum -. f "blocked_s") > 1e-6 then
          bad "%s: blame vector sums to %g, blocked_s is %g" (what "blame")
            blame_sum (f "blocked_s"))
      (as_arr "body.slowest" (field body "slowest"))

let check_serve root fast =
  match field root "serve" with
  | Null -> bad "serve: missing — the harness did not run the serve section"
  | v ->
    let num key = as_num ("serve." ^ key) (field v key) in
    let int key =
      let x = num key in
      if Float.of_int (Float.to_int x) <> x || x < 0. then
        bad "serve.%s: expected a non-negative integer, got %g" key x;
      Float.to_int x
    in
    let coflows = int "coflows" in
    let floor = if fast then 100_000 else 1_000_000 in
    if coflows < floor then
      bad "serve.coflows: %d is below the %d stream-scale floor" coflows floor;
    let arrivals = int "arrivals" in
    if arrivals <> coflows then
      bad "serve.arrivals: %d but the stream carried %d Coflows" arrivals
        coflows;
    let admitted = int "admitted" and rejected = int "rejected" in
    if admitted + rejected <> arrivals then
      bad
        "serve: admitted %d + rejected %d does not conserve the %d arrivals"
        admitted rejected arrivals;
    if int "completed" <> admitted then
      bad "serve.completed: %d admitted Coflows, %d completed" admitted
        (int "completed");
    (* the bounded-memory gates *)
    let max_live = int "max_live" in
    if max_live >= coflows / 100 then
      bad
        "serve.max_live: %d resident engine entries on a %d-Coflow stream — \
         the active-set ceiling (%d) is blown, the loop is not \
         bounded-memory"
        max_live coflows (coflows / 100);
    if int "max_journal" <> 0 then
      bad
        "serve.max_journal: %d undo-journal entries survived an engine step"
        (int "max_journal");
    if num "wall_s" <= 0. then bad "serve.wall_s: non-positive";
    if num "events_per_s" <= 0. then bad "serve.events_per_s: non-positive";
    if num "p99_event_s" < 0. then bad "serve.p99_event_s: negative";
    ignore (int "events");
    (* the checked deadline-mode run *)
    let ck = field v "checked" in
    let cint key =
      let x = as_num ("serve.checked." ^ key) (field ck key) in
      Float.to_int x
    in
    if cint "admitted" + cint "rejected" <> cint "coflows" then
      bad
        "serve.checked: admitted %d + rejected %d does not conserve the %d \
         arrivals"
        (cint "admitted") (cint "rejected") (cint "coflows");
    if cint "violations" <> 0 then
      bad
        "serve.checked.violations: %d — the admitted subset does not pass \
         the conservation check"
        (cint "violations")

let check root json_dir =
  let schema = as_str "schema" (field root "schema") in
  if schema <> "sunflow-bench-prt/10" then bad "unknown schema %S" schema;
  let fast =
    match field root "fast" with
    | Bool b -> b
    | _ -> bad "fast: expected a boolean"
  in
  let domains =
    let x = as_num "domains" (field root "domains") in
    if Float.of_int (Float.to_int x) <> x || x < 1. then
      bad "domains: expected a positive integer, got %g" x;
    Float.to_int x
  in
  check_parallel root domains;
  let settings = field root "settings" in
  ignore (as_num "settings.delta_s" (field settings "delta_s"));
  ignore (as_num "settings.n_coflows" (field settings "n_coflows"));
  let experiments = as_arr "experiments" (field root "experiments") in
  if experiments = [] then bad "experiments: empty";
  List.iter
    (fun row ->
      let name = as_str "experiment.name" (field row "name") in
      let wall = as_num (name ^ ".wall_s") (field row "wall_s") in
      if wall < 0. then bad "%s: negative wall time" name;
      check_prt_stats (name ^ ".prt_stats") (field row "prt_stats"))
    experiments;
  let bechamel = as_arr "bechamel" (field root "bechamel") in
  if bechamel = [] then bad "bechamel: empty";
  let names =
    List.map
      (fun row ->
        let name = as_str "bechamel.name" (field row "name") in
        let ns = as_num (name ^ ".ns_per_run") (field row "ns_per_run") in
        if ns <= 0. then bad "%s: non-positive ns/run" name;
        name)
      bechamel
  in
  let gate = "planning/sunflow/|C|=256" in
  if not (List.mem gate names) then
    bad "bechamel rows lack the %S regression gate" gate;
  check_obs root json_dir;
  check_check root;
  check_replay root fast;
  check_scf_drift root;
  check_shards root fast;
  check_plan_cache root fast;
  check_kernel root;
  check_report root json_dir;
  check_serve root fast;
  check_prt_stats "prt_stats" (field root "prt_stats");
  let totals = field root "prt_stats" in
  if as_num "prt_stats.queries" (field totals "queries") <= 0. then
    bad "prt_stats.queries: expected the harness to exercise the PRT"

let () =
  let path =
    if Array.length Sys.argv > 1 then Sys.argv.(1) else "BENCH_prt.json"
  in
  let content =
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  match check (parse content) (Filename.dirname path) with
  | () -> Printf.printf "%s: ok\n" path
  | exception Bad msg ->
    Printf.eprintf "%s: INVALID: %s\n" path msg;
    exit 1

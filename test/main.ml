let () =
  Alcotest.run "sunflow"
    [
      ("stats.descriptive", Test_descriptive.suite);
      ("stats.correlation", Test_correlation.suite);
      ("stats.distribution", Test_distribution.suite);
      ("stats.rng", Test_rng.suite);
      ("matching", Test_matching.suite);
      ("matching.bvn", Test_bvn.suite);
      ("core.units", Test_units.suite);
      ("core.demand", Test_demand.suite);
      ("core.coflow", Test_coflow.suite);
      ("core.bounds", Test_bounds.suite);
      ("core.prt", Test_prt.suite);
      ("core.order", Test_order.suite);
      ("core.schedule", Test_schedule.suite);
      ("core.sunflow", Test_sunflow.suite);
      ("core.inter", Test_inter.suite);
      ("core.starvation", Test_starvation.suite);
      ("core.deadline", Test_deadline.suite);
      ("baselines.executor", Test_executor.suite);
      ("baselines.schedulers", Test_baselines.suite);
      ("packet", Test_packet.suite);
      ("sim.event_queue", Test_event_queue.suite);
      ("sim.replay", Test_sims.suite);
      ("sim.incremental", Test_incremental.suite);
      ("sim.hybrid", Test_hybrid.suite);
      ("switch.physical", Test_switch.suite);
      ("jobs", Test_jobs.suite);
      ("trace.format", Test_trace.suite);
      ("trace.synthetic", Test_synthetic.suite);
      ("trace.workload", Test_workload.suite);
      ("check", Test_check.suite);
      ("fuzz", Test_fuzz.suite);
      ("parallel", Test_parallel.suite);
      ("obs", Test_obs.suite);
      ("experiments", Test_experiments.suite);
    ]

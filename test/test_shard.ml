(* The sharded simulation core (per-shard PRTs, optimistic passes,
   conflict rollback) against the sequential engine: Sim_results
   bit-identical across shard counts on a policy x bucket grid and on
   randomized traces, conflict/rollback accounting on hand-built
   traces that force each path, and the argument validation. *)

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Inter = Sunflow_core.Inter
module Units = Sunflow_core.Units
module Circuit_sim = Sunflow_sim.Circuit_sim
module Sim_result = Sunflow_sim.Sim_result
module Diff_oracle = Sunflow_check.Diff_oracle
module Plan_check = Sunflow_check.Plan_check
module Violation = Sunflow_check.Violation
module Synthetic = Sunflow_trace.Synthetic
module Trace = Sunflow_trace.Trace
module Rng = Sunflow_stats.Rng

let bandwidth = Units.gbps 100.
let delta = Units.ms 10.

let trace_of_seed ?(n_ports = 8) ?(max_coflows = 10) seed =
  let rng = Rng.create seed in
  Diff_oracle.random_trace rng ~n_ports ~max_coflows ~span:2. ~max_mb:50.

let run ?(policy = Inter.Shortest_first) ?(replan = `Incremental) ?buckets
    ?shard_block ?shard_stats ~shards trace =
  Circuit_sim.run ~policy ~replan ?buckets ?shard_block ?shard_stats ~shards
    ~delta ~bandwidth trace

let fresh_stats () =
  ref { Inter.shard_steps = 0; shard_conflicts = 0; shard_rollbacks = 0 }

(* --- bit-identity across the configuration grid --- *)

let policies =
  [
    ("fifo", Inter.Fifo);
    ("scf", Inter.Shortest_first);
    ("classes", Inter.Priority_classes (fun c -> c.Coflow.id mod 2));
  ]

let test_identity_grid () =
  List.iter
    (fun (pname, policy) ->
      List.iter
        (fun buckets ->
          List.iter
            (fun seed ->
              let trace = trace_of_seed seed in
              let base = run ~policy ~buckets ~shards:1 trace in
              List.iter
                (fun shards ->
                  List.iter
                    (fun shard_block ->
                      let r =
                        run ~policy ~buckets ~shards ~shard_block trace
                      in
                      Alcotest.(check bool)
                        (Printf.sprintf
                           "%s buckets=%d seed=%d shards=%d block=%d" pname
                           buckets seed shards shard_block)
                        true (r = base))
                    [ 1; 2 ])
                [ 2; 4; 8 ])
            [ 301; 302 ])
        [ 0; 4 ])
    policies

let test_rebuild_coerces_shards () =
  let trace = trace_of_seed 77 in
  Alcotest.(check bool)
    "rebuild ignores the shard count" true
    (run ~replan:`Rebuild ~shards:4 trace = run ~replan:`Rebuild ~shards:1 trace)

(* --- conflict detection: a cross-shard arrival takes the merged pass --- *)

let test_cross_arrival_counted () =
  (* one Coflow, src and dst in different stripes: its arrival must be
     resolved by the cross-shard pass, and nothing ever rolls back *)
  let d = Demand.create () in
  Demand.set d 0 1 (Units.mb 20.);
  let trace = [ Coflow.make ~id:0 ~arrival:0. d ] in
  let stats = fresh_stats () in
  let r = run ~shards:2 ~shard_stats:stats trace in
  Alcotest.(check bool) "conflict counted" true
    (!stats.Inter.shard_conflicts > 0);
  Alcotest.(check int) "no optimistic pass to roll back" 0
    !stats.Inter.shard_rollbacks;
  Alcotest.(check bool) "steps counted" true (!stats.Inter.shard_steps > 0);
  Alcotest.(check bool) "matches unsharded" true (r = run ~shards:1 trace)

let test_local_arrival_stays_local () =
  (* both endpoints in stripe 0 (even ports under block=1): no cross
     Coflow ever exists, so no conflicts and no rollbacks *)
  let d = Demand.create () in
  Demand.set d 0 2 (Units.mb 20.);
  let trace = [ Coflow.make ~id:0 ~arrival:0. d ] in
  let stats = fresh_stats () in
  let r = run ~shards:2 ~shard_stats:stats trace in
  Alcotest.(check int) "no conflicts" 0 !stats.Inter.shard_conflicts;
  Alcotest.(check int) "no rollbacks" 0 !stats.Inter.shard_rollbacks;
  Alcotest.(check bool) "matches unsharded" true (r = run ~shards:1 trace)

(* --- rollback-then-merge: an optimistic pass trips over a mirror --- *)

let test_rollback_then_merge () =
  (* Under SCF with a bucketed order, the big cross-shard Coflow (ports
     0 -> 1, stripes 0 and 1) is admitted first; the later shard-local
     arrival (0 -> 2, both stripe 0) is far shorter, so it inserts ahead
     and its optimistic shard-0 pass must clear port 0 — occupied by the
     cross Coflow's mirrored window. The guard aborts the pass, the
     engine rolls it back and re-resolves globally. The arrival lands
     after the cross Coflow's setup has been paid (delta = 10 ms, so its
     circuit is established from 10 ms until 18 ms): mid-setup it would
     be marked dirty as a straddler and resolved globally up front,
     never exercising the rollback. The cross Coflow must also be big
     enough to leave class 0 (keys within one delta all quantize to
     "short" and are FIFO among themselves): 4000 MB at 100 Gbps is a
     0.32 s key, three classes below the 1 MB arrival. *)
  let cross = Demand.create () in
  Demand.set cross 0 1 (Units.mb 4000.);
  let local = Demand.create () in
  Demand.set local 0 2 (Units.mb 1.);
  let trace =
    [ Coflow.make ~id:0 ~arrival:0. cross;
      Coflow.make ~id:1 ~arrival:0.012 local ]
  in
  let stats = fresh_stats () in
  let r =
    run ~buckets:8 ~shards:2 ~shard_stats:stats trace
  in
  Alcotest.(check bool) "rolled back at least once" true
    (!stats.Inter.shard_rollbacks > 0);
  Alcotest.(check bool) "and resolved as a conflict" true
    (!stats.Inter.shard_conflicts > 0);
  Alcotest.(check bool) "result still bit-identical" true
    (r = run ~buckets:8 ~shards:1 trace)

(* --- adversarial: every Coflow straddles two shards --- *)

let all_cross_trace () =
  List.init 8 (fun i ->
      let d = Demand.create () in
      Demand.set d (i mod 4) ((i + 1) mod 4)
        (Units.mb (5. +. float_of_int (7 * i mod 13)));
      Coflow.make ~id:i ~arrival:(0.002 *. float_of_int i) d)

let test_all_cross_adversarial () =
  let trace = all_cross_trace () in
  List.iter
    (fun buckets ->
      let stats = fresh_stats () in
      let r =
        run ~buckets ~shards:4 ~shard_stats:stats trace
      in
      Alcotest.(check bool)
        (Printf.sprintf "buckets=%d: every event conflicts" buckets)
        true
        (!stats.Inter.shard_conflicts > 0);
      Alcotest.(check bool)
        (Printf.sprintf "buckets=%d: bit-identical" buckets)
        true
        (r = run ~buckets ~shards:1 trace))
    [ 0; 4 ]

(* --- pod-local storm: the workload the sharding is built for --- *)

let test_pod_trace_identity () =
  let p =
    {
      Synthetic.default_pod_params with
      p_pods = 4;
      p_pod_size = 4;
      p_width_max = 2;
      p_coflows = 80;
      p_span = 2.;
    }
  in
  let trace = (Synthetic.pods p).Trace.coflows in
  let stats = fresh_stats () in
  let base = run ~buckets:8 ~shards:1 trace in
  let r =
    run ~buckets:8 ~shards:4 ~shard_block:4 ~shard_stats:stats trace
  in
  Alcotest.(check bool) "pods bit-identical" true (r = base);
  (* pod-aligned stripes keep most events shard-local *)
  Alcotest.(check bool) "conflicts stay rare" true
    (!stats.Inter.shard_conflicts * 2 < !stats.Inter.shard_steps)

(* --- observability under shards: event-for-event identity --- *)

module Obs = Sunflow_obs

(* Bit-identity of the Sim_result is necessary but not sufficient for
   the observability layer: the timeline, the attribution windows and
   the per-port sampler ledger are recorded inside the event loop, so
   a sharded run that merely converged to the same finishes could
   still record different events. Capture all three at shards = 1 and
   compare structurally at every shard count. *)
let test_timeline_identical_under_shards () =
  let trace = trace_of_seed 909 in
  let capture shards =
    Obs.Control.set_enabled true;
    Obs.Timeline.clear ();
    Obs.Attrib.clear ();
    Obs.Sampler.clear ();
    let r = run ~buckets:4 ~shards trace in
    let out =
      (r, Obs.Timeline.events (), Obs.Attrib.windows (),
       Obs.Sampler.port_totals ())
    in
    Obs.Control.set_enabled false;
    Obs.Timeline.clear ();
    Obs.Attrib.clear ();
    Obs.Sampler.clear ();
    out
  in
  let r1, evs1, w1, p1 = capture 1 in
  Alcotest.(check bool) "shards=1 recorded a non-empty timeline" true
    (evs1 <> []);
  Alcotest.(check bool) "shards=1 recorded windows" true (w1 <> []);
  List.iter
    (fun shards ->
      let r, evs, w, p = capture shards in
      let label what = Printf.sprintf "%s shards=%d" what shards in
      Alcotest.(check bool) (label "Sim_result") true (r = r1);
      Alcotest.(check bool) (label "timeline event-for-event") true
        (evs = evs1);
      Alcotest.(check bool) (label "attribution windows") true (w = w1);
      Alcotest.(check bool) (label "sampler port ledger") true (p = p1))
    [ 2; 4; 8 ]

(* --- plan cache under a multi-domain runner --- *)

module Plan_cache = Sunflow_core.Plan_cache
module Pool = Sunflow_parallel.Pool

(* Same-instant arrivals in distinct stripes make the optimistic round
   dispatch several passes at once through the domain-pool runner. A
   shared Plan_cache.t is single-domain state, so those rounds must run
   uncached (the engine drops the handle for them) while the
   single-pass and cross-shard rounds keep it — either way every
   decision stays bit-identical to the unsharded cached run. Forcing a
   4-domain pool makes the runner genuinely parallel even on a 1-core
   machine, so a reintroduced shared-handle race is at least exposed to
   the memory model rather than hidden by a sequential fallback. *)
let test_cache_under_parallel_runner () =
  let trace =
    List.concat
      (List.init 3 (fun wave ->
           List.init 4 (fun pod ->
               let d = Demand.create () in
               Demand.set d (4 * pod)
                 ((4 * pod) + 1)
                 (Units.mb (10. +. float_of_int ((wave + pod) mod 5)));
               Coflow.make
                 ~id:((wave * 4) + pod)
                 ~arrival:(0.005 *. float_of_int wave)
                 d)))
  in
  let base = run ~buckets:4 ~shards:1 trace in
  Pool.set_jobs (Some 4);
  Fun.protect ~finally:(fun () -> Pool.set_jobs None) @@ fun () ->
  let cache = Plan_cache.create () in
  let sharded ?plan_cache () =
    Circuit_sim.run ~policy:Inter.Shortest_first ~replan:`Incremental
      ~buckets:4 ~shards:4 ~shard_block:4 ?plan_cache ~delta ~bandwidth trace
  in
  Alcotest.(check bool)
    "cold cached parallel run bit-identical" true
    (sharded ~plan_cache:cache () = base);
  Alcotest.(check bool)
    "warm cached parallel run bit-identical" true
    (sharded ~plan_cache:cache () = base);
  Alcotest.(check bool)
    "uncached parallel run bit-identical" true
    (sharded () = base)

(* --- argument validation --- *)

let test_validation () =
  let trace = trace_of_seed 5 in
  Alcotest.check_raises "Full mode rejects shards"
    (Invalid_argument "Circuit_sim.run: shards need an anchored replan mode")
    (fun () -> ignore (run ~replan:`Full ~shards:2 trace : Sim_result.t));
  let invalid name f =
    match f () with
    | (_ : Sim_result.t) -> Alcotest.failf "%s accepted" name
    | exception Invalid_argument _ -> ()
  in
  invalid "shards = 0" (fun () -> run ~shards:0 trace);
  invalid "shard_block = 0" (fun () -> run ~shards:2 ~shard_block:0 trace)

(* --- QCheck: equivalence on arbitrary seeds and shard counts --- *)

let prop_equiv_sharded =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30
       ~name:"sharded incremental == unsharded rebuild (random)"
       QCheck.(triple small_nat (int_bound 2) (int_bound 12))
       (fun (seed, shard_ix, buckets) ->
         let shards = [| 2; 4; 8 |].(shard_ix) in
         let trace = trace_of_seed (30_000 + seed) in
         Plan_check.replay_equiv ~policy:Inter.Shortest_first ~shards
           ~shard_block:(1 + (seed mod 2))
           ~buckets ~delta ~bandwidth trace
         = []))

let suite =
  [
    Alcotest.test_case "identity grid (policy x buckets x shards)" `Quick
      test_identity_grid;
    Alcotest.test_case "rebuild coerces shards" `Quick
      test_rebuild_coerces_shards;
    Alcotest.test_case "cross-shard arrival counted" `Quick
      test_cross_arrival_counted;
    Alcotest.test_case "shard-local arrival stays local" `Quick
      test_local_arrival_stays_local;
    Alcotest.test_case "rollback then merge" `Quick test_rollback_then_merge;
    Alcotest.test_case "all-cross adversarial" `Quick
      test_all_cross_adversarial;
    Alcotest.test_case "pod trace identity + rare conflicts" `Quick
      test_pod_trace_identity;
    Alcotest.test_case "timeline event-for-event identical under shards"
      `Quick test_timeline_identical_under_shards;
    Alcotest.test_case "plan cache under a multi-domain runner" `Quick
      test_cache_under_parallel_runner;
    Alcotest.test_case "argument validation" `Quick test_validation;
    prop_equiv_sharded;
  ]

(* The observability layer's contract: registry merges are exact once
   workers have synchronised (1/2/4 domains), histogram bucketing puts
   boundaries where the docs say, tracer events keep emission order
   within a domain and export as Chrome trace JSON that validates, and
   the always-on PRT counters stay bit-identical whether or not gated
   instrumentation runs. *)

module Obs = Sunflow_obs
module Registry = Obs.Registry
module Tracer = Obs.Tracer
module Pool = Sunflow_parallel.Pool
module Units = Sunflow_core.Units

(* Run [f] with tracing enabled, then restore the disabled default and
   drop anything it buffered so later suites see a clean slate. *)
let with_tracing f =
  Obs.Control.set_enabled true;
  Tracer.clear ();
  Obs.Timeline.clear ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Control.set_enabled false;
      Tracer.clear ();
      Obs.Timeline.clear ())
    f

(* --- registry merges --------------------------------------------------- *)

let test_counter_merge_across_domains () =
  let c = Registry.counter "test.obs.merge_counter" in
  let g = Registry.gauge "test.obs.merge_gauge" in
  let h = Registry.histogram "test.obs.merge_hist" in
  let n = 1000 in
  let expected_sum = n * (n - 1) / 2 in
  List.iter
    (fun domains ->
      Registry.counter_reset c;
      Registry.gauge_reset g;
      let pool = Pool.create ~domains in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          ignore
            (Pool.map ~chunk:7 pool
               (fun i ->
                 Registry.incr c;
                 Registry.add c i;
                 Registry.gauge_add g (float_of_int i);
                 Registry.observe h 1.5;
                 i)
               (Array.init n Fun.id)
              : int array));
      let label fmt = Printf.sprintf fmt domains in
      Alcotest.(check int)
        (label "counter exact at %d domains")
        (n + expected_sum) (Registry.counter_value c);
      Alcotest.(check (float 1e-9))
        (label "gauge sums domains at %d domains")
        (float_of_int expected_sum) (Registry.gauge_value g))
    [ 1; 2; 4 ];
  (* the histogram accumulated across all three pool sizes *)
  let snap = Registry.histogram_value h in
  Alcotest.(check int) "histogram count over all runs" (3 * n) snap.h_count;
  Alcotest.(check (float 1e-6)) "histogram sum" (3. *. float_of_int n *. 1.5)
    snap.h_sum

let test_metric_identity_and_kind_clash () =
  let c1 = Registry.counter "test.obs.shared" in
  let c2 = Registry.counter "test.obs.shared" in
  Registry.counter_reset c1;
  Registry.incr c1;
  Registry.incr c2;
  Alcotest.(check int) "same name, same counter" 2 (Registry.counter_value c2);
  Alcotest.check_raises "name reuse across kinds rejected"
    (Invalid_argument
       "Registry.histogram: \"test.obs.shared\" is already a different kind")
    (fun () -> ignore (Registry.histogram "test.obs.shared"))

(* --- histogram bucket boundaries --------------------------------------- *)

let test_histogram_buckets () =
  let h = Registry.histogram "test.obs.buckets" in
  List.iter (Registry.observe h) [ 1.0; 2.0; 3.0; 0.5; 0.0; -4.0; infinity ];
  let snap = Registry.histogram_value h in
  Alcotest.(check int) "count" 7 snap.h_count;
  Alcotest.(check (float 0.)) "min" (-4.0) snap.h_min;
  Alcotest.(check (float 0.)) "max" infinity snap.h_max;
  let bucket_of v =
    List.find_opt (fun (lo, hi, _) -> lo <= v && v < hi) snap.h_buckets
  in
  (* 1.0 sits at the bottom of [1, 2); the exact power-of-two 2.0 lands
     in the upper bucket [2, 4) together with 3.0; 0.5 in [0.5, 1) *)
  Alcotest.(check (option (triple (float 0.) (float 0.) int)))
    "[1,2) holds 1.0"
    (Some (1.0, 2.0, 1))
    (bucket_of 1.0);
  Alcotest.(check (option (triple (float 0.) (float 0.) int)))
    "[2,4) holds 2.0 and 3.0"
    (Some (2.0, 4.0, 2))
    (bucket_of 2.0);
  Alcotest.(check (option (triple (float 0.) (float 0.) int)))
    "[0.5,1) holds 0.5"
    (Some (0.5, 1.0, 1))
    (bucket_of 0.5);
  (* zero and negatives underflow; infinity overflows *)
  (match snap.h_buckets with
  | (lo, _, k) :: _ ->
    Alcotest.(check (float 0.)) "underflow lo" neg_infinity lo;
    Alcotest.(check int) "underflow holds 0.0 and -4.0" 2 k
  | [] -> Alcotest.fail "no buckets");
  (match List.rev snap.h_buckets with
  | (_, hi, k) :: _ ->
    Alcotest.(check (float 0.)) "overflow hi" infinity hi;
    Alcotest.(check int) "overflow holds infinity" 1 k
  | [] -> Alcotest.fail "no buckets");
  let total = List.fold_left (fun a (_, _, k) -> a + k) 0 snap.h_buckets in
  Alcotest.(check int) "bucket counts sum to the sample count" 7 total;
  (* NaN counts as a sample (underflow) without being lost *)
  let h2 = Registry.histogram "test.obs.buckets_nan" in
  Registry.observe h2 Float.nan;
  Alcotest.(check int) "nan counted" 1 (Registry.histogram_value h2).h_count

(* --- histogram quantile estimation -------------------------------------- *)

let test_histogram_quantiles () =
  let h = Registry.histogram "test.obs.quantiles" in
  (* 100 samples 1..100: log-bucket interpolation cannot be exact, but
     every estimate must stay inside the sample range, be monotone in
     q, and land in the right power-of-two neighbourhood *)
  for i = 1 to 100 do
    Registry.observe h (float_of_int i)
  done;
  let snap = Registry.histogram_value h in
  let p50 = Registry.quantile snap 0.5 in
  let p95 = Registry.quantile snap 0.95 in
  let p99 = Registry.quantile snap 0.99 in
  Alcotest.(check bool) "p50 in the right bucket" true (p50 >= 32. && p50 <= 64.);
  Alcotest.(check bool) "p95 above p50" true (p95 >= p50);
  Alcotest.(check bool) "p99 above p95" true (p99 >= p95);
  Alcotest.(check bool) "p99 clamped to the observed max" true (p99 <= 100.);
  Alcotest.(check (float 0.)) "q=0 is the min" 1. (Registry.quantile snap 0.);
  Alcotest.(check (float 0.)) "q=1 is the max" 100. (Registry.quantile snap 1.);
  (* a single sample collapses every quantile onto it *)
  let h1 = Registry.histogram "test.obs.quantiles_one" in
  Registry.observe h1 42.;
  let s1 = Registry.histogram_value h1 in
  List.iter
    (fun q ->
      Alcotest.(check (float 0.))
        (Printf.sprintf "single sample at q=%g" q)
        42. (Registry.quantile s1 q))
    [ 0.; 0.5; 1. ];
  (* empty histogram: NaN, not a crash *)
  let h0 = Registry.histogram "test.obs.quantiles_empty" in
  Alcotest.(check bool) "empty is NaN" true
    (Float.is_nan (Registry.quantile (Registry.histogram_value h0) 0.5))

(* --- tracer ------------------------------------------------------------ *)

let test_tracer_ordering () =
  with_tracing (fun () ->
      Tracer.begin_span "outer";
      Tracer.instant "mark";
      Tracer.begin_span "inner";
      Tracer.end_span "inner";
      Tracer.end_span "outer";
      let evs = Tracer.events () in
      Alcotest.(check int) "event count" 5 (List.length evs);
      Alcotest.(check (list string))
        "emission order preserved within the domain"
        [ "B outer"; "i mark"; "B inner"; "E inner"; "E outer" ]
        (List.map
           (fun (e : Tracer.event) ->
             let ph =
               match e.ph with Begin -> "B" | End -> "E" | Instant -> "i"
             in
             ph ^ " " ^ e.name)
           evs);
      let rec non_decreasing = function
        | (a : Tracer.event) :: (b :: _ as rest) ->
          a.ts <= b.ts && non_decreasing rest
        | _ -> true
      in
      Alcotest.(check bool) "timestamps non-decreasing" true
        (non_decreasing evs))

let test_with_span_exception_safe () =
  with_tracing (fun () ->
      Alcotest.check_raises "exception passes through" (Failure "boom")
        (fun () -> Tracer.with_span "risky" (fun () -> failwith "boom"));
      match Tracer.events () with
      | [ b; e ] ->
        Alcotest.(check bool) "begin then end" true
          (b.Tracer.ph = Tracer.Begin && e.Tracer.ph = Tracer.End)
      | evs -> Alcotest.failf "expected a balanced pair, got %d events"
                 (List.length evs))

let test_disabled_records_nothing () =
  Obs.Control.set_enabled false;
  Tracer.clear ();
  Tracer.begin_span "ghost";
  Tracer.instant "ghost";
  Tracer.end_span "ghost";
  Obs.Timeline.clear ();
  Obs.Timeline.record (Obs.Timeline.Arrival { coflow = 0; t = 0. });
  Alcotest.(check int) "no tracer events" 0 (Tracer.event_count ());
  Alcotest.(check int) "no timeline events" 0
    (List.length (Obs.Timeline.events ()))

(* --- exports ----------------------------------------------------------- *)

let test_chrome_trace_valid () =
  with_tracing (fun () ->
      Tracer.with_span "outer" (fun () ->
          Tracer.with_span ~cat:"test" "inner" Fun.id);
      Tracer.instant "mark";
      let json = Tracer.to_chrome_json () in
      (match Obs.Json.of_string json with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "trace JSON does not parse: %s" msg);
      match Obs.Chrome_trace.validate json with
      | Ok n -> Alcotest.(check int) "non-metadata events" 5 n
      | Error msg -> Alcotest.failf "trace JSON does not validate: %s" msg)

let test_metrics_json_parses () =
  ignore (Registry.counter "test.obs.merge_counter" : Registry.counter);
  let json = Registry.to_json (Registry.snapshot ()) in
  match Obs.Json.of_string json with
  | Ok (Obs.Json.Obj _ as root) ->
    (match Obs.Json.member "schema" root with
    | Some (Obs.Json.Str "sunflow-obs-metrics/2") -> ()
    | _ -> Alcotest.fail "schema field missing or wrong");
    (match Obs.Json.member "counters" root with
    | Some (Obs.Json.Obj _) -> ()
    | _ -> Alcotest.fail "counters object missing")
  | Ok _ -> Alcotest.fail "metrics JSON root is not an object"
  | Error msg -> Alcotest.failf "metrics JSON does not parse: %s" msg

let test_timeline_exports () =
  with_tracing (fun () ->
      let open Obs.Timeline in
      record (Arrival { coflow = 3; t = 1.0 });
      record (Setup { coflow = 3; src = 1; dst = 2; t = 1.0; delta = 0.01 });
      record (Flow_finish { coflow = 3; src = 1; dst = 2; t = 1.5 });
      record (Setup { coflow = 3; src = 4; dst = 5; t = 1.5; delta = 0.01 });
      record (Finish { coflow = 3; t = 2.0; cct = 1.0 });
      let csv = Obs.Timeline.to_csv () in
      let lines = String.split_on_char '\n' (String.trim csv) in
      Alcotest.(check string)
        "header" "coflow,event,t_seconds,src,dst,delta_seconds"
        (List.hd lines);
      Alcotest.(check int) "one row per event" 6 (List.length lines);
      let tagged tag =
        List.length
          (List.filter
             (fun l ->
               match String.split_on_char ',' l with
               | _ :: t :: _ -> t = tag
               | _ -> false)
             lines)
      in
      Alcotest.(check int) "exactly one first_circuit" 1 (tagged "first_circuit");
      Alcotest.(check int) "the second setup stays a plain setup" 1
        (tagged "setup");
      match Obs.Json.of_string (Obs.Timeline.to_json ()) with
      | Ok (Obs.Json.Arr [ coflow ]) ->
        (match Obs.Json.member "cct" coflow with
        | Some (Obs.Json.Num c) -> Alcotest.(check (float 0.)) "cct" 1.0 c
        | _ -> Alcotest.fail "cct missing from the timeline JSON")
      | Ok _ -> Alcotest.fail "timeline JSON is not a one-Coflow array"
      | Error msg -> Alcotest.failf "timeline JSON does not parse: %s" msg)

(* --- CCT attribution ---------------------------------------------------- *)

(* Run [f] with the full recording state (attribution windows, sampler,
   timeline) enabled and cleared, restoring the disabled default. *)
let with_attrib f =
  Obs.Control.set_enabled true;
  Obs.Attrib.clear ();
  Obs.Sampler.clear ();
  Obs.Timeline.clear ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Control.set_enabled false;
      Obs.Attrib.clear ();
      Obs.Sampler.clear ();
      Obs.Timeline.clear ())
    f

(* A hand-built scenario where every component of the decomposition is
   a round number. Coflow 1 (arrival 0, finish 10, one flow 0 -> 1):
   its circuit sets up over [2, 3) and transmits over [3, 6); Coflow 2
   then occupies input port 0 over [6, 8). With no Flow_finish
   recorded, port 0 stays "needed" until the finish, so [6, 8) is
   blocked on Coflow 2 and the rest — [0, 2) and [8, 10) — is
   admission wait. *)
let test_attrib_decomposition () =
  with_attrib (fun () ->
      Obs.Attrib.record_window ~coflow:1 ~src:0 ~dst:1 ~t0:2. ~tx:3. ~t1:6.;
      Obs.Attrib.record_window ~coflow:2 ~src:0 ~dst:2 ~t0:6. ~tx:6. ~t1:8.;
      let spec =
        {
          Obs.Attrib.s_id = 1;
          s_arrival = 0.;
          s_finish = 10.;
          s_srcs = [ { Obs.Attrib.p_port = 0; p_flows = 1 } ];
          s_dsts = [ { Obs.Attrib.p_port = 1; p_flows = 1 } ];
        }
      in
      match Obs.Attrib.compute [ spec ] with
      | [ b ] ->
        Alcotest.(check (float 1e-9)) "cct" 10. b.Obs.Attrib.a_cct;
        Alcotest.(check (float 1e-9)) "wait" 4. b.Obs.Attrib.a_wait;
        Alcotest.(check (float 1e-9)) "setup" 1. b.Obs.Attrib.a_setup;
        Alcotest.(check (float 1e-9)) "transfer" 3. b.Obs.Attrib.a_transfer;
        Alcotest.(check (float 1e-9)) "blocked" 2. b.Obs.Attrib.a_blocked;
        Alcotest.(check (float 1e-9)) "conserves" 0. (Obs.Attrib.residual b);
        (match b.Obs.Attrib.a_blame with
        | [ bl ] ->
          Alcotest.(check int) "blamed on Coflow 2" 2 bl.Obs.Attrib.b_coflow;
          Alcotest.(check (float 1e-9)) "blame seconds" 2.
            bl.Obs.Attrib.b_seconds
        | blame ->
          Alcotest.failf "expected one blame entry, got %d"
            (List.length blame))
      | bs -> Alcotest.failf "expected one breakdown, got %d" (List.length bs))

(* Flow_finish narrowing: once the timeline records that a port's
   flows all finished, later occupancy of that port no longer counts
   as blocked. Same geometry as above, but port 0's single flow is
   recorded finished at t = 6 — exactly when Coflow 2 moves in — so
   [6, 8) flips from blocked to wait. *)
let test_attrib_flow_finish_narrowing () =
  with_attrib (fun () ->
      Obs.Attrib.record_window ~coflow:1 ~src:0 ~dst:1 ~t0:2. ~tx:3. ~t1:6.;
      Obs.Attrib.record_window ~coflow:2 ~src:0 ~dst:2 ~t0:6. ~tx:6. ~t1:8.;
      Obs.Timeline.record
        (Obs.Timeline.Flow_finish { coflow = 1; src = 0; dst = 1; t = 6. });
      let spec =
        {
          Obs.Attrib.s_id = 1;
          s_arrival = 0.;
          s_finish = 10.;
          s_srcs = [ { Obs.Attrib.p_port = 0; p_flows = 1 } ];
          s_dsts = [ { Obs.Attrib.p_port = 1; p_flows = 1 } ];
        }
      in
      match Obs.Attrib.compute [ spec ] with
      | [ b ] ->
        Alcotest.(check (float 1e-9)) "blocked gone" 0. b.Obs.Attrib.a_blocked;
        Alcotest.(check (float 1e-9)) "wait absorbs it" 6. b.Obs.Attrib.a_wait;
        Alcotest.(check (float 1e-9)) "conserves" 0. (Obs.Attrib.residual b)
      | bs -> Alcotest.failf "expected one breakdown, got %d" (List.length bs))

(* --- sampler ------------------------------------------------------------ *)

let test_sampler_ledger_and_jsonl () =
  with_attrib (fun () ->
      Obs.Sampler.port_busy ~src:0 ~dst:3 ~setup_s:0.01 ~tx_s:0.5;
      Obs.Sampler.port_busy ~src:0 ~dst:2 ~setup_s:0.02 ~tx_s:0.25;
      Obs.Sampler.record
        {
          Obs.Sampler.m_t = 0.;
          m_t_next = 0.5;
          m_active = 2;
          m_circuits = 2;
          m_transmit_s = 0.75;
          m_setup_s = 0.03;
          m_busy_ports = 3;
          m_rescheduled = 1;
          m_spliced = 0;
          m_conflicts = 0;
          m_rollbacks = 0;
        };
      (* input port 0 accumulated both segments; outputs sort after *)
      (match Obs.Sampler.port_totals () with
      | [ (p_in, tx, su); (p2, _, _); (p3, _, _) ] ->
        Alcotest.(check string) "input first" "in.0" p_in;
        Alcotest.(check (float 1e-9)) "transmit accumulates" 0.75 tx;
        Alcotest.(check (float 1e-9)) "setup accumulates" 0.03 su;
        Alcotest.(check string) "outputs sorted" "out.2" p2;
        Alcotest.(check string) "then out.3" "out.3" p3
      | rows -> Alcotest.failf "expected 3 port rows, got %d" (List.length rows));
      let jsonl = Obs.Sampler.to_jsonl () in
      let lines = String.split_on_char '\n' (String.trim jsonl) in
      Alcotest.(check int) "one line per sample" 1 (List.length lines);
      match Obs.Json.of_string (List.hd lines) with
      | Ok line ->
        (match Obs.Json.member "active" line with
        | Some (Obs.Json.Num a) -> Alcotest.(check (float 0.)) "active" 2. a
        | _ -> Alcotest.fail "active missing from the sample line")
      | Error msg -> Alcotest.failf "sample line does not parse: %s" msg)

(* --- report rendering --------------------------------------------------- *)

let test_report_body () =
  Alcotest.(check (list string))
    "width bins"
    [ "0"; "1"; "2"; "3-4"; "3-4"; "5-8"; "9-16" ]
    (List.map Obs.Report.width_bin [ 0; 1; 2; 3; 4; 5; 9 ]);
  let breakdown a_id cct wait tx =
    {
      Obs.Attrib.a_id;
      a_arrival = 0.;
      a_finish = cct;
      a_cct = cct;
      a_wait = wait;
      a_setup = 0.;
      a_transfer = tx;
      a_blocked = cct -. wait -. tx;
      a_blame =
        (if cct -. wait -. tx > 0. then
           [ { Obs.Attrib.b_coflow = 99; b_seconds = cct -. wait -. tx } ]
         else []);
    }
  in
  let row w bytes b = { Obs.Report.c_width = w; c_bytes = bytes; c_breakdown = b } in
  let r =
    {
      Obs.Report.r_run = [ ("trace", "\"test\"") ];
      r_makespan_s = 4.;
      r_events = 7;
      r_setups = 3;
      r_rows =
        [
          row 1 1e6 (breakdown 0 1. 0.2 0.8);
          row 1 2e6 (breakdown 1 2. 0.5 1.0);
          row 4 8e6 (breakdown 2 4. 1.0 2.0);
        ];
      r_ports = [ ("in.0", 3.0, 0.5); ("out.1", 2.0, 0.25) ];
      r_top_k = 2;
    }
  in
  let body = Obs.Report.body_json r in
  match Obs.Json.of_string body with
  | Error msg -> Alcotest.failf "report body does not parse: %s" msg
  | Ok root ->
    (match Obs.Json.member "blame" root with
    | Some blame ->
      let num key =
        match Obs.Json.member key blame with
        | Some (Obs.Json.Num v) -> v
        | _ -> Alcotest.failf "blame.%s missing" key
      in
      Alcotest.(check (float 1e-9))
        "blame components sum to total CCT" (num "total_cct_s")
        (num "wait_s" +. num "setup_s" +. num "transfer_s" +. num "blocked_s")
    | None -> Alcotest.fail "blame object missing");
    (match Obs.Json.member "ports" root with
    | Some (Obs.Json.Arr (first :: _)) ->
      (match Obs.Json.member "utilization" first with
      | Some (Obs.Json.Num u) ->
        Alcotest.(check (float 1e-9)) "utilization is a makespan fraction" 0.75 u
      | _ -> Alcotest.fail "utilization missing")
    | _ -> Alcotest.fail "ports array missing");
    (match Obs.Json.member "slowest" root with
    | Some (Obs.Json.Arr rows) ->
      Alcotest.(check int) "top_k bounds the slowest section" 2
        (List.length rows)
    | _ -> Alcotest.fail "slowest array missing");
    (* byte-stability in the small: rendering is a pure function *)
    Alcotest.(check string) "body render is deterministic" body
      (Obs.Report.body_json r)

(* --- the PRT façade ----------------------------------------------------- *)

(* The acceptance bar for the whole layer: running with gated
   instrumentation on must not change the always-on PRT counters by a
   single increment, and the registry's prt.* metrics must be the same
   numbers [Prt.stats] reports. *)
let test_prt_stats_bit_identical_under_obs () =
  let module Prt = Sunflow_core.Prt in
  let module Sunflow = Sunflow_core.Sunflow in
  let coflow =
    let demand = Sunflow_core.Demand.create () in
    for i = 0 to 5 do
      for j = 0 to 5 do
        Sunflow_core.Demand.set demand i (6 + j) (Units.mb (float_of_int (1 + ((i + j) mod 7))))
      done
    done;
    Sunflow_core.Coflow.make ~id:0 demand
  in
  let run () =
    Prt.reset_stats ();
    ignore (Sunflow.schedule ~delta:0.01 ~bandwidth:(Units.gbps 1.) coflow);
    Prt.stats ()
  in
  let off = run () in
  let on = with_tracing run in
  Alcotest.(check bool) "Prt.stats bit-identical with tracing on" true
    (off = on);
  let reg name = Registry.counter_value (Registry.counter name) in
  Alcotest.(check int) "prt.queries façade" on.Prt.queries (reg "prt.queries");
  Alcotest.(check int) "prt.scans façade" on.Prt.scans (reg "prt.scans");
  Alcotest.(check int) "prt.reservations façade" on.Prt.reservations
    (reg "prt.reservations");
  Alcotest.(check int) "prt.rollbacks façade" on.Prt.rollbacks
    (reg "prt.rollbacks")

let suite =
  [
    Alcotest.test_case "registry merge exact at 1/2/4 domains" `Quick
      test_counter_merge_across_domains;
    Alcotest.test_case "metric identity and kind clash" `Quick
      test_metric_identity_and_kind_clash;
    Alcotest.test_case "histogram bucket boundaries" `Quick
      test_histogram_buckets;
    Alcotest.test_case "histogram quantile estimation" `Quick
      test_histogram_quantiles;
    Alcotest.test_case "tracer preserves emission order" `Quick
      test_tracer_ordering;
    Alcotest.test_case "with_span is exception-safe" `Quick
      test_with_span_exception_safe;
    Alcotest.test_case "disabled switch records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "chrome trace export validates" `Quick
      test_chrome_trace_valid;
    Alcotest.test_case "metrics JSON parses" `Quick test_metrics_json_parses;
    Alcotest.test_case "timeline exports" `Quick test_timeline_exports;
    Alcotest.test_case "attribution decomposition conserves" `Quick
      test_attrib_decomposition;
    Alcotest.test_case "attribution narrows on flow finish" `Quick
      test_attrib_flow_finish_narrowing;
    Alcotest.test_case "sampler ledger and JSONL export" `Quick
      test_sampler_ledger_and_jsonl;
    Alcotest.test_case "report body rendering" `Quick test_report_body;
    Alcotest.test_case "PRT stats bit-identical under tracing" `Quick
      test_prt_stats_bit_identical_under_obs;
  ]

(* The observability layer's contract: registry merges are exact once
   workers have synchronised (1/2/4 domains), histogram bucketing puts
   boundaries where the docs say, tracer events keep emission order
   within a domain and export as Chrome trace JSON that validates, and
   the always-on PRT counters stay bit-identical whether or not gated
   instrumentation runs. *)

module Obs = Sunflow_obs
module Registry = Obs.Registry
module Tracer = Obs.Tracer
module Pool = Sunflow_parallel.Pool
module Units = Sunflow_core.Units

(* Run [f] with tracing enabled, then restore the disabled default and
   drop anything it buffered so later suites see a clean slate. *)
let with_tracing f =
  Obs.Control.set_enabled true;
  Tracer.clear ();
  Obs.Timeline.clear ();
  Fun.protect
    ~finally:(fun () ->
      Obs.Control.set_enabled false;
      Tracer.clear ();
      Obs.Timeline.clear ())
    f

(* --- registry merges --------------------------------------------------- *)

let test_counter_merge_across_domains () =
  let c = Registry.counter "test.obs.merge_counter" in
  let g = Registry.gauge "test.obs.merge_gauge" in
  let h = Registry.histogram "test.obs.merge_hist" in
  let n = 1000 in
  let expected_sum = n * (n - 1) / 2 in
  List.iter
    (fun domains ->
      Registry.counter_reset c;
      Registry.gauge_reset g;
      let pool = Pool.create ~domains in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          ignore
            (Pool.map ~chunk:7 pool
               (fun i ->
                 Registry.incr c;
                 Registry.add c i;
                 Registry.gauge_add g (float_of_int i);
                 Registry.observe h 1.5;
                 i)
               (Array.init n Fun.id)
              : int array));
      let label fmt = Printf.sprintf fmt domains in
      Alcotest.(check int)
        (label "counter exact at %d domains")
        (n + expected_sum) (Registry.counter_value c);
      Alcotest.(check (float 1e-9))
        (label "gauge sums domains at %d domains")
        (float_of_int expected_sum) (Registry.gauge_value g))
    [ 1; 2; 4 ];
  (* the histogram accumulated across all three pool sizes *)
  let snap = Registry.histogram_value h in
  Alcotest.(check int) "histogram count over all runs" (3 * n) snap.h_count;
  Alcotest.(check (float 1e-6)) "histogram sum" (3. *. float_of_int n *. 1.5)
    snap.h_sum

let test_metric_identity_and_kind_clash () =
  let c1 = Registry.counter "test.obs.shared" in
  let c2 = Registry.counter "test.obs.shared" in
  Registry.counter_reset c1;
  Registry.incr c1;
  Registry.incr c2;
  Alcotest.(check int) "same name, same counter" 2 (Registry.counter_value c2);
  Alcotest.check_raises "name reuse across kinds rejected"
    (Invalid_argument
       "Registry.histogram: \"test.obs.shared\" is already a different kind")
    (fun () -> ignore (Registry.histogram "test.obs.shared"))

(* --- histogram bucket boundaries --------------------------------------- *)

let test_histogram_buckets () =
  let h = Registry.histogram "test.obs.buckets" in
  List.iter (Registry.observe h) [ 1.0; 2.0; 3.0; 0.5; 0.0; -4.0; infinity ];
  let snap = Registry.histogram_value h in
  Alcotest.(check int) "count" 7 snap.h_count;
  Alcotest.(check (float 0.)) "min" (-4.0) snap.h_min;
  Alcotest.(check (float 0.)) "max" infinity snap.h_max;
  let bucket_of v =
    List.find_opt (fun (lo, hi, _) -> lo <= v && v < hi) snap.h_buckets
  in
  (* 1.0 sits at the bottom of [1, 2); the exact power-of-two 2.0 lands
     in the upper bucket [2, 4) together with 3.0; 0.5 in [0.5, 1) *)
  Alcotest.(check (option (triple (float 0.) (float 0.) int)))
    "[1,2) holds 1.0"
    (Some (1.0, 2.0, 1))
    (bucket_of 1.0);
  Alcotest.(check (option (triple (float 0.) (float 0.) int)))
    "[2,4) holds 2.0 and 3.0"
    (Some (2.0, 4.0, 2))
    (bucket_of 2.0);
  Alcotest.(check (option (triple (float 0.) (float 0.) int)))
    "[0.5,1) holds 0.5"
    (Some (0.5, 1.0, 1))
    (bucket_of 0.5);
  (* zero and negatives underflow; infinity overflows *)
  (match snap.h_buckets with
  | (lo, _, k) :: _ ->
    Alcotest.(check (float 0.)) "underflow lo" neg_infinity lo;
    Alcotest.(check int) "underflow holds 0.0 and -4.0" 2 k
  | [] -> Alcotest.fail "no buckets");
  (match List.rev snap.h_buckets with
  | (_, hi, k) :: _ ->
    Alcotest.(check (float 0.)) "overflow hi" infinity hi;
    Alcotest.(check int) "overflow holds infinity" 1 k
  | [] -> Alcotest.fail "no buckets");
  let total = List.fold_left (fun a (_, _, k) -> a + k) 0 snap.h_buckets in
  Alcotest.(check int) "bucket counts sum to the sample count" 7 total;
  (* NaN counts as a sample (underflow) without being lost *)
  let h2 = Registry.histogram "test.obs.buckets_nan" in
  Registry.observe h2 Float.nan;
  Alcotest.(check int) "nan counted" 1 (Registry.histogram_value h2).h_count

(* --- tracer ------------------------------------------------------------ *)

let test_tracer_ordering () =
  with_tracing (fun () ->
      Tracer.begin_span "outer";
      Tracer.instant "mark";
      Tracer.begin_span "inner";
      Tracer.end_span "inner";
      Tracer.end_span "outer";
      let evs = Tracer.events () in
      Alcotest.(check int) "event count" 5 (List.length evs);
      Alcotest.(check (list string))
        "emission order preserved within the domain"
        [ "B outer"; "i mark"; "B inner"; "E inner"; "E outer" ]
        (List.map
           (fun (e : Tracer.event) ->
             let ph =
               match e.ph with Begin -> "B" | End -> "E" | Instant -> "i"
             in
             ph ^ " " ^ e.name)
           evs);
      let rec non_decreasing = function
        | (a : Tracer.event) :: (b :: _ as rest) ->
          a.ts <= b.ts && non_decreasing rest
        | _ -> true
      in
      Alcotest.(check bool) "timestamps non-decreasing" true
        (non_decreasing evs))

let test_with_span_exception_safe () =
  with_tracing (fun () ->
      Alcotest.check_raises "exception passes through" (Failure "boom")
        (fun () -> Tracer.with_span "risky" (fun () -> failwith "boom"));
      match Tracer.events () with
      | [ b; e ] ->
        Alcotest.(check bool) "begin then end" true
          (b.Tracer.ph = Tracer.Begin && e.Tracer.ph = Tracer.End)
      | evs -> Alcotest.failf "expected a balanced pair, got %d events"
                 (List.length evs))

let test_disabled_records_nothing () =
  Obs.Control.set_enabled false;
  Tracer.clear ();
  Tracer.begin_span "ghost";
  Tracer.instant "ghost";
  Tracer.end_span "ghost";
  Obs.Timeline.clear ();
  Obs.Timeline.record (Obs.Timeline.Arrival { coflow = 0; t = 0. });
  Alcotest.(check int) "no tracer events" 0 (Tracer.event_count ());
  Alcotest.(check int) "no timeline events" 0
    (List.length (Obs.Timeline.events ()))

(* --- exports ----------------------------------------------------------- *)

let test_chrome_trace_valid () =
  with_tracing (fun () ->
      Tracer.with_span "outer" (fun () ->
          Tracer.with_span ~cat:"test" "inner" Fun.id);
      Tracer.instant "mark";
      let json = Tracer.to_chrome_json () in
      (match Obs.Json.of_string json with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "trace JSON does not parse: %s" msg);
      match Obs.Chrome_trace.validate json with
      | Ok n -> Alcotest.(check int) "non-metadata events" 5 n
      | Error msg -> Alcotest.failf "trace JSON does not validate: %s" msg)

let test_metrics_json_parses () =
  ignore (Registry.counter "test.obs.merge_counter" : Registry.counter);
  let json = Registry.to_json (Registry.snapshot ()) in
  match Obs.Json.of_string json with
  | Ok (Obs.Json.Obj _ as root) ->
    (match Obs.Json.member "schema" root with
    | Some (Obs.Json.Str "sunflow-obs-metrics/1") -> ()
    | _ -> Alcotest.fail "schema field missing or wrong");
    (match Obs.Json.member "counters" root with
    | Some (Obs.Json.Obj _) -> ()
    | _ -> Alcotest.fail "counters object missing")
  | Ok _ -> Alcotest.fail "metrics JSON root is not an object"
  | Error msg -> Alcotest.failf "metrics JSON does not parse: %s" msg

let test_timeline_exports () =
  with_tracing (fun () ->
      let open Obs.Timeline in
      record (Arrival { coflow = 3; t = 1.0 });
      record (Setup { coflow = 3; src = 1; dst = 2; t = 1.0; delta = 0.01 });
      record (Flow_finish { coflow = 3; src = 1; dst = 2; t = 1.5 });
      record (Setup { coflow = 3; src = 4; dst = 5; t = 1.5; delta = 0.01 });
      record (Finish { coflow = 3; t = 2.0; cct = 1.0 });
      let csv = Obs.Timeline.to_csv () in
      let lines = String.split_on_char '\n' (String.trim csv) in
      Alcotest.(check string)
        "header" "coflow,event,t_seconds,src,dst,delta_seconds"
        (List.hd lines);
      Alcotest.(check int) "one row per event" 6 (List.length lines);
      let tagged tag =
        List.length
          (List.filter
             (fun l ->
               match String.split_on_char ',' l with
               | _ :: t :: _ -> t = tag
               | _ -> false)
             lines)
      in
      Alcotest.(check int) "exactly one first_circuit" 1 (tagged "first_circuit");
      Alcotest.(check int) "the second setup stays a plain setup" 1
        (tagged "setup");
      match Obs.Json.of_string (Obs.Timeline.to_json ()) with
      | Ok (Obs.Json.Arr [ coflow ]) ->
        (match Obs.Json.member "cct" coflow with
        | Some (Obs.Json.Num c) -> Alcotest.(check (float 0.)) "cct" 1.0 c
        | _ -> Alcotest.fail "cct missing from the timeline JSON")
      | Ok _ -> Alcotest.fail "timeline JSON is not a one-Coflow array"
      | Error msg -> Alcotest.failf "timeline JSON does not parse: %s" msg)

(* --- the PRT façade ----------------------------------------------------- *)

(* The acceptance bar for the whole layer: running with gated
   instrumentation on must not change the always-on PRT counters by a
   single increment, and the registry's prt.* metrics must be the same
   numbers [Prt.stats] reports. *)
let test_prt_stats_bit_identical_under_obs () =
  let module Prt = Sunflow_core.Prt in
  let module Sunflow = Sunflow_core.Sunflow in
  let coflow =
    let demand = Sunflow_core.Demand.create () in
    for i = 0 to 5 do
      for j = 0 to 5 do
        Sunflow_core.Demand.set demand i (6 + j) (Units.mb (float_of_int (1 + ((i + j) mod 7))))
      done
    done;
    Sunflow_core.Coflow.make ~id:0 demand
  in
  let run () =
    Prt.reset_stats ();
    ignore (Sunflow.schedule ~delta:0.01 ~bandwidth:(Units.gbps 1.) coflow);
    Prt.stats ()
  in
  let off = run () in
  let on = with_tracing run in
  Alcotest.(check bool) "Prt.stats bit-identical with tracing on" true
    (off = on);
  let reg name = Registry.counter_value (Registry.counter name) in
  Alcotest.(check int) "prt.queries façade" on.Prt.queries (reg "prt.queries");
  Alcotest.(check int) "prt.scans façade" on.Prt.scans (reg "prt.scans");
  Alcotest.(check int) "prt.reservations façade" on.Prt.reservations
    (reg "prt.reservations");
  Alcotest.(check int) "prt.rollbacks façade" on.Prt.rollbacks
    (reg "prt.rollbacks")

let suite =
  [
    Alcotest.test_case "registry merge exact at 1/2/4 domains" `Quick
      test_counter_merge_across_domains;
    Alcotest.test_case "metric identity and kind clash" `Quick
      test_metric_identity_and_kind_clash;
    Alcotest.test_case "histogram bucket boundaries" `Quick
      test_histogram_buckets;
    Alcotest.test_case "tracer preserves emission order" `Quick
      test_tracer_ordering;
    Alcotest.test_case "with_span is exception-safe" `Quick
      test_with_span_exception_safe;
    Alcotest.test_case "disabled switch records nothing" `Quick
      test_disabled_records_nothing;
    Alcotest.test_case "chrome trace export validates" `Quick
      test_chrome_trace_valid;
    Alcotest.test_case "metrics JSON parses" `Quick test_metrics_json_parses;
    Alcotest.test_case "timeline exports" `Quick test_timeline_exports;
    Alcotest.test_case "PRT stats bit-identical under tracing" `Quick
      test_prt_stats_bit_identical_under_obs;
  ]

(* The parallel runner's contract is byte-identical results under any
   pool size: [Pool.map] with 1, 2 and N domains against [List.map] /
   [Array.map] on pure functions, on the full-trace intra-Coflow sweep
   and on the fig-8 idleness grid, plus order preservation under
   arbitrary chunking (QCheck) and exception propagation out of worker
   domains. *)

module Pool = Sunflow_parallel.Pool
module E = Sunflow_experiments
module Units = Sunflow_core.Units

let small_settings =
  {
    E.Common.default with
    trace_params =
      { Sunflow_trace.Synthetic.default_params with n_coflows = 50; span = 400. };
  }

(* Pin the shared pool's size for the duration of [f], then restore the
   environment-derived default (and clear the memo caches that would
   otherwise hand the next run the first run's results). *)
let with_jobs jobs f =
  Pool.set_jobs (Some jobs);
  E.Common.clear_caches ();
  Fun.protect ~finally:(fun () -> Pool.set_jobs None) f

let test_map_matches_array_map () =
  let f x = (x * 37) mod 101 in
  let input = Array.init 500 Fun.id in
  let expected = Array.map f input in
  List.iter
    (fun domains ->
      let pool = Pool.create ~domains in
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () ->
          Alcotest.(check (array int))
            (Printf.sprintf "%d domains" domains)
            expected (Pool.map pool f input);
          (* empty and singleton inputs take the fallback paths *)
          Alcotest.(check (array int))
            "empty" [||]
            (Pool.map pool f [||]);
          Alcotest.(check (array int)) "singleton" [| f 9 |] (Pool.map pool f [| 9 |])))
    [ 1; 2; 5 ]

let test_intra_points_deterministic () =
  let projection () =
    List.map
      (fun (p : E.Common.intra_point) ->
        ( p.coflow.Sunflow_core.Coflow.id,
          p.n_subflows,
          (p.tcl, p.tpl, p.p_avg),
          (p.sunflow_cct, p.sunflow_setups),
          (p.solstice_cct, p.solstice_switchings) ))
      (E.Common.intra_points small_settings)
  in
  let sequential = with_jobs 1 projection in
  List.iter
    (fun jobs ->
      let parallel = with_jobs jobs projection in
      Alcotest.(check bool)
        (Printf.sprintf "intra_points identical at %d domains" jobs)
        true
        (parallel = sequential))
    [ 2; 4 ]

let test_fig8_sweep_deterministic () =
  let cells () =
    (E.Exp_fig8.run ~settings:small_settings ~bandwidths:[ Units.gbps 1. ] ())
      .E.Exp_fig8.cells
  in
  let sequential = with_jobs 1 cells in
  let parallel = with_jobs 2 cells in
  Alcotest.(check bool) "fig8 cells identical" true (parallel = sequential)

let prop_order_preserved =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"Pool.map_list = List.map for any input and chunk size" ~count:60
       QCheck2.Gen.(pair (list int) (int_range 1 9))
       (fun (xs, chunk) ->
         let pool = Pool.create ~domains:3 in
         Fun.protect
           ~finally:(fun () -> Pool.shutdown pool)
           (fun () ->
             let f x = (2 * x) + 1 in
             Pool.map_list ~chunk pool f xs = List.map f xs)))

let test_exception_propagates () =
  let pool = Pool.create ~domains:4 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.check_raises "worker exception re-raised in the caller"
        (Failure "boom") (fun () ->
          ignore
            (Pool.map ~chunk:1 pool
               (fun i -> if i = 37 then failwith "boom" else i)
               (Array.init 64 Fun.id)
              : int array));
      (* the failed call left the pool reusable *)
      Alcotest.(check (array int))
        "pool survives the exception"
        (Array.init 100 (fun i -> i + 1))
        (Pool.map pool (fun x -> x + 1) (Array.init 100 Fun.id)))

let test_chunk_must_be_positive () =
  let raises name f =
    Alcotest.check_raises name
      (Invalid_argument "Pool.map: chunk must be positive") f
  in
  let pool = Pool.create ~domains:3 in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      raises "chunk 0" (fun () ->
          ignore (Pool.map ~chunk:0 pool Fun.id [| 1; 2; 3 |] : int array));
      raises "chunk negative" (fun () ->
          ignore (Pool.map ~chunk:(-4) pool Fun.id [| 1 |] : int array));
      (* the degenerate paths that never read [chunk] must reject it
         too, or the bug hides until the input grows *)
      raises "chunk 0, empty input" (fun () ->
          ignore (Pool.map ~chunk:0 pool Fun.id [||] : int array)));
  let seq = Pool.create ~domains:1 in
  raises "chunk 0, sequential pool" (fun () ->
      ignore (Pool.map ~chunk:0 seq Fun.id [| 1; 2 |] : int array));
  Pool.shutdown seq

let test_sequential_fallback () =
  let pool = Pool.create ~domains:1 in
  Alcotest.(check int) "domains clamped to >= 1" 1 (Pool.domains pool);
  Alcotest.(check (list int))
    "single-domain pool maps in place" [ 2; 4; 6 ]
    (Pool.map_list pool (fun x -> 2 * x) [ 1; 2; 3 ]);
  Pool.shutdown pool;
  Alcotest.(check (list int))
    "shutdown pool still maps (sequentially)" [ 2; 4 ]
    (Pool.map_list pool (fun x -> 2 * x) [ 1; 2 ])

let suite =
  [
    Alcotest.test_case "map oracle vs Array.map" `Quick
      test_map_matches_array_map;
    Alcotest.test_case "sequential fallback" `Quick test_sequential_fallback;
    Alcotest.test_case "chunk must be positive" `Quick
      test_chunk_must_be_positive;
    Alcotest.test_case "exception propagation" `Quick test_exception_propagates;
    prop_order_preserved;
    Alcotest.test_case "intra_points determinism" `Slow
      test_intra_points_deterministic;
    Alcotest.test_case "fig8 sweep determinism" `Slow
      test_fig8_sweep_deterministic;
  ]

(* End-to-end behaviour of the two trace-replay simulators. *)

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Bounds = Sunflow_core.Bounds
module Units = Sunflow_core.Units
module Packet_sim = Sunflow_sim.Packet_sim
module Circuit_sim = Sunflow_sim.Circuit_sim
module R = Sunflow_sim.Sim_result

let b = Units.gbps 1.
let delta = Units.ms 10.

let mk id ?(arrival = 0.) flows = Coflow.make ~id ~arrival (Demand.of_list flows)

let small_trace () =
  [
    mk 0 [ ((0, 5), Units.mb 100.); ((1, 6), Units.mb 50.); ((0, 6), Units.mb 30.) ];
    mk 1 ~arrival:0.1 [ ((0, 5), Units.mb 5.) ];
    mk 2 ~arrival:0.2
      [ ((2, 5), Units.mb 20.); ((3, 6), Units.mb 20.); ((2, 6), Units.mb 10.) ];
    mk 3 ~arrival:1.5 [ ((1, 5), Units.mb 200.) ];
  ]

let schedulers =
  [
    ("varys", Sunflow_packet.Varys.allocate, []);
    ( "aalo",
      Sunflow_packet.Aalo.allocate,
      Packet_sim.aalo_thresholds Sunflow_packet.Aalo.default_params );
    ("fair", Sunflow_packet.Fair.allocate, []);
  ]

let test_packet_all_complete () =
  List.iter
    (fun (name, scheduler, sent_thresholds) ->
      let r = Packet_sim.run ~sent_thresholds ~scheduler ~bandwidth:b (small_trace ()) in
      Alcotest.(check int) (name ^ " completions") 4 (List.length r.R.ccts))
    schedulers

let test_packet_cct_above_tpl () =
  List.iter
    (fun (name, scheduler, sent_thresholds) ->
      let trace = small_trace () in
      let r = Packet_sim.run ~sent_thresholds ~scheduler ~bandwidth:b trace in
      List.iter
        (fun (c : Coflow.t) ->
          let tpl = Bounds.packet_lower ~bandwidth:b c.demand in
          let cct = R.cct_of r c.id in
          if cct < tpl -. 1e-6 then
            Alcotest.failf "%s: coflow %d CCT %.4f below TpL %.4f" name c.id
              cct tpl)
        trace)
    schedulers

let test_packet_single_coflow_at_bound () =
  (* alone in the fabric, Varys finishes exactly at TpL *)
  let c = mk 0 [ ((0, 5), Units.mb 40.); ((1, 5), Units.mb 20.) ] in
  let r =
    Packet_sim.run ~scheduler:Sunflow_packet.Varys.allocate ~bandwidth:b [ c ]
  in
  Util.check_close "at TpL" (Bounds.packet_lower ~bandwidth:b c.Coflow.demand)
    (R.cct_of r 0)

let test_packet_arrival_offsets () =
  let c = mk 5 ~arrival:10. [ ((0, 1), Units.mb 10.) ] in
  let r =
    Packet_sim.run ~scheduler:Sunflow_packet.Varys.allocate ~bandwidth:b [ c ]
  in
  Util.check_close "cct measured from arrival" 0.08 (R.cct_of r 5);
  Util.check_close "absolute finish" 10.08 (List.assoc 5 r.R.finishes)

let test_packet_empty_coflow () =
  let c = Coflow.make ~id:0 ~arrival:2. (Demand.create ()) in
  let r =
    Packet_sim.run ~scheduler:Sunflow_packet.Varys.allocate ~bandwidth:b [ c ]
  in
  Util.check_close "instant" 0. (R.cct_of r 0)

let test_packet_duplicate_ids () =
  let t = [ mk 1 [ ((0, 1), 1.) ]; mk 1 [ ((0, 2), 1.) ] ] in
  Alcotest.check_raises "dup" (Invalid_argument "Packet_sim.run: duplicate Coflow ids")
    (fun () ->
      ignore (Packet_sim.run ~scheduler:Sunflow_packet.Varys.allocate ~bandwidth:b t))

let test_circuit_all_complete () =
  let r = Circuit_sim.run ~delta ~bandwidth:b (small_trace ()) in
  Alcotest.(check int) "completions" 4 (List.length r.R.ccts);
  Alcotest.(check bool) "setups counted" true (r.R.total_setups >= 6)

let test_circuit_single_coflow_matches_intra () =
  let c = mk 0 [ ((0, 5), Units.mb 40.); ((1, 6), Units.mb 20.); ((0, 6), Units.mb 8.) ] in
  let r = Circuit_sim.run ~delta ~bandwidth:b [ c ] in
  let intra = Circuit_sim.intra_cct ~delta ~bandwidth:b c in
  Util.check_close "matches intra schedule" intra.finish (R.cct_of r 0)

let test_circuit_cct_above_tpl () =
  let trace = small_trace () in
  let r = Circuit_sim.run ~delta ~bandwidth:b trace in
  List.iter
    (fun (c : Coflow.t) ->
      let tpl = Bounds.packet_lower ~bandwidth:b c.demand in
      if R.cct_of r c.id < tpl -. 1e-6 then
        Alcotest.failf "coflow %d beats the packet bound" c.id)
    trace

let test_circuit_sequential_coflows_isolated () =
  (* far-apart arrivals: each Coflow behaves as if alone *)
  let c1 = mk 0 [ ((0, 5), Units.mb 10.) ] in
  let c2 = mk 1 ~arrival:100. [ ((0, 5), Units.mb 10.) ] in
  let r = Circuit_sim.run ~delta ~bandwidth:b [ c1; c2 ] in
  Util.check_close "first alone" 0.09 (R.cct_of r 0);
  Util.check_close "second alone" 0.09 (R.cct_of r 1)

let test_circuit_policy_fifo_vs_scf () =
  (* a big coflow arrives first; under FIFO the later small one waits,
     under shortest-first it preempts *)
  let big = mk 0 [ ((0, 5), Units.mb 500.) ] in
  let small = mk 1 ~arrival:0.5 [ ((0, 6), Units.mb 1.) ] in
  let fifo =
    Circuit_sim.run ~policy:Sunflow_core.Inter.Fifo ~delta ~bandwidth:b
      [ big; small ]
  in
  let scf = Circuit_sim.run ~delta ~bandwidth:b [ big; small ] in
  Alcotest.(check bool) "scf small faster than fifo small" true
    (R.cct_of scf 1 < R.cct_of fifo 1);
  Alcotest.(check bool) "fifo big not preempted" true
    (R.cct_of fifo 0 <= R.cct_of scf 0 +. 1e-9)

let test_empty_trace () =
  let r = Circuit_sim.run ~delta ~bandwidth:b [] in
  Alcotest.(check int) "no completions" 0 (List.length r.R.ccts);
  Alcotest.(check (float 0.)) "zero makespan" 0. r.R.makespan;
  Alcotest.(check bool) "average_cct_opt is None" true
    (R.average_cct_opt r = None);
  Alcotest.check_raises "average_cct raises"
    (Invalid_argument "Sim_result.average_cct: empty result") (fun () ->
      ignore (R.average_cct r));
  (* pp must not itself compute the undefined average *)
  let s = Format.asprintf "%a" R.pp r in
  Alcotest.(check bool) "pp survives emptiness" true (Util.contains s "coflows=0")

let test_sim_result_helpers () =
  let r = Circuit_sim.run ~delta ~bandwidth:b (small_trace ()) in
  Alcotest.(check int) "cct list length" 4 (List.length (R.cct_list r));
  Alcotest.(check bool) "average positive" true (R.average_cct r > 0.);
  Alcotest.check_raises "unknown id" Not_found (fun () ->
      ignore (R.cct_of r 999));
  let s = Format.asprintf "%a" R.pp r in
  Alcotest.(check bool) "pp mentions coflows" true (Util.contains s "coflows=4")

let prop_circuit_completes_everything =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"circuit replay completes every Coflow"
       ~count:60
       QCheck2.Gen.(
         list_size (int_range 1 6)
           (pair (Util.Gen.coflow ~n_ports:5 ~max_flows:6 ()) (float_range 0. 3.)))
       (fun entries ->
         let trace =
           List.mapi
             (fun i (c, arr) -> { c with Coflow.id = i; arrival = arr })
             entries
         in
         let r = Circuit_sim.run ~delta ~bandwidth:b trace in
         List.length r.R.ccts = List.length trace
         && List.for_all (fun (_, cct) -> cct >= 0.) r.R.ccts))

let prop_packet_completes_everything =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"packet replay completes every Coflow" ~count:60
       QCheck2.Gen.(
         list_size (int_range 1 6)
           (pair (Util.Gen.coflow ~n_ports:5 ~max_flows:6 ()) (float_range 0. 3.)))
       (fun entries ->
         let trace =
           List.mapi
             (fun i (c, arr) -> { c with Coflow.id = i; arrival = arr })
             entries
         in
         let r =
           Packet_sim.run ~scheduler:Sunflow_packet.Varys.allocate ~bandwidth:b
             trace
         in
         List.length r.R.ccts = List.length trace))

let suite =
  [
    Alcotest.test_case "packet: all complete" `Quick test_packet_all_complete;
    Alcotest.test_case "packet: CCT >= TpL" `Quick test_packet_cct_above_tpl;
    Alcotest.test_case "packet: single coflow at bound" `Quick
      test_packet_single_coflow_at_bound;
    Alcotest.test_case "packet: arrival offsets" `Quick
      test_packet_arrival_offsets;
    Alcotest.test_case "packet: empty coflow" `Quick test_packet_empty_coflow;
    Alcotest.test_case "packet: duplicate ids" `Quick test_packet_duplicate_ids;
    Alcotest.test_case "circuit: all complete" `Quick test_circuit_all_complete;
    Alcotest.test_case "circuit: single matches intra" `Quick
      test_circuit_single_coflow_matches_intra;
    Alcotest.test_case "circuit: CCT >= TpL" `Quick test_circuit_cct_above_tpl;
    Alcotest.test_case "circuit: isolated sequential" `Quick
      test_circuit_sequential_coflows_isolated;
    Alcotest.test_case "circuit: fifo vs shortest-first" `Quick
      test_circuit_policy_fifo_vs_scf;
    Alcotest.test_case "sim result helpers" `Quick test_sim_result_helpers;
    Alcotest.test_case "empty trace" `Quick test_empty_trace;
    prop_circuit_completes_everything;
    prop_packet_completes_everything;
  ]

(* The incremental replanning engine (persistent PRT + suffix-only
   rescheduling) against its from-scratch rebuild oracle: bit-identical
   results over a policy x carry x delta grid of randomized arrival
   traces, balanced setup/teardown accounting, and the physical switch
   oracle over the incremental path. *)

module Coflow = Sunflow_core.Coflow
module Inter = Sunflow_core.Inter
module Units = Sunflow_core.Units
module Circuit_sim = Sunflow_sim.Circuit_sim
module Sim_result = Sunflow_sim.Sim_result
module Diff_oracle = Sunflow_check.Diff_oracle
module Plan_check = Sunflow_check.Plan_check
module Violation = Sunflow_check.Violation
module Rng = Sunflow_stats.Rng
module Obs = Sunflow_obs

let bandwidth = Units.gbps 100.

let pp_violations vs =
  String.concat "; "
    (List.map (fun (v : Violation.t) -> v.Violation.message) vs)

let trace_of_seed ?(max_coflows = 8) seed =
  let rng = Rng.create seed in
  Diff_oracle.random_trace rng ~n_ports:6 ~max_coflows ~span:2. ~max_mb:50.

(* --- incremental == rebuild, bit for bit, across the grid --- *)

let policies =
  [
    ("fifo", Inter.Fifo);
    ("scf", Inter.Shortest_first);
    ("classes", Inter.Priority_classes (fun c -> c.Coflow.id mod 2));
    ( "custom",
      (* deliberately non-total comparator: the engine must append its
         own (arrival, id) tiebreak *)
      Inter.Custom
        (fun a b -> compare (a.Coflow.id mod 3) (b.Coflow.id mod 3)) );
  ]

let test_equiv_grid () =
  List.iter
    (fun (pname, policy) ->
      List.iter
        (fun carry ->
          List.iter
            (fun delta ->
              for i = 0 to 2 do
                let trace = trace_of_seed (1000 + (17 * i)) in
                let vs =
                  Plan_check.replay_equiv ~policy ~carry_circuits:carry ~delta
                    ~bandwidth trace
                in
                Alcotest.(check string)
                  (Printf.sprintf "%s carry=%b delta=%g trace=%d" pname carry
                     delta i)
                  "" (pp_violations vs)
              done)
            [ 0.; Units.ms 10. ])
        [ true; false ])
    policies

let test_result_fields_equal () =
  let trace = trace_of_seed ~max_coflows:12 42 in
  let run replan =
    Circuit_sim.run ~replan ~delta:(Units.ms 15.) ~bandwidth trace
  in
  let ri = run `Incremental and rr = run `Rebuild in
  Alcotest.(check bool) "Sim_result bit-identical" true (ri = rr);
  (* and both complete every Coflow *)
  Alcotest.(check int)
    "all finish" (List.length trace)
    (List.length ri.Sim_result.finishes)

(* --- chained releases through on_complete stay equivalent --- *)

let test_equiv_with_releases () =
  let trace = trace_of_seed 7 in
  let n = List.length trace in
  let on_complete id t =
    if id < n then
      (* one dependent Coflow per original, arriving at the finish *)
      [ Coflow.make ~id:(id + 1000) ~arrival:t (List.nth trace 0).Coflow.demand ]
    else []
  in
  let run replan =
    Circuit_sim.run ~replan ~on_complete ~delta:(Units.ms 10.) ~bandwidth trace
  in
  Alcotest.(check bool) "with releases" true (run `Incremental = run `Rebuild)

(* --- setup/teardown counters stay balanced under the engine --- *)

let test_setup_teardown_balance () =
  let m_setups = Obs.Registry.counter "sim.setups" in
  let m_teardowns = Obs.Registry.counter "sim.teardowns" in
  Obs.Control.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Control.set_enabled false)
    (fun () ->
      List.iter
        (fun replan ->
          let s0 = Obs.Registry.counter_value m_setups in
          let d0 = Obs.Registry.counter_value m_teardowns in
          let r =
            Circuit_sim.run ~replan ~delta:(Units.ms 15.) ~bandwidth
              (trace_of_seed ~max_coflows:10 99)
          in
          let setups = Obs.Registry.counter_value m_setups - s0 in
          let teardowns = Obs.Registry.counter_value m_teardowns - d0 in
          (* the fabric ends dark: every establishment is torn down *)
          Alcotest.(check int) "teardowns balance setups" setups teardowns;
          Alcotest.(check int)
            "observed setups match the result" r.Sim_result.total_setups
            setups)
        [ `Incremental; `Rebuild ])

(* --- the physical switch accepts the incremental path's schedule --- *)

let test_physical_oracle_incremental () =
  for i = 0 to 4 do
    let trace = trace_of_seed (500 + (31 * i)) in
    let o =
      Diff_oracle.replay ~replan:`Incremental ~delta:(Units.ms 15.) ~bandwidth
        ~n_ports:6 trace
    in
    Alcotest.(check string)
      (Printf.sprintf "trace %d" i)
      ""
      (pp_violations o.Diff_oracle.violations);
    Alcotest.(check bool) "compared some" true (o.Diff_oracle.compared > 0)
  done

(* --- bucketed priority orders (PR 6) --- *)

module Demand = Sunflow_core.Demand

(* The SCF-adversarial shape: every arrival is shorter than everything
   already admitted, so the exact order head-inserts each one and
   redoes the whole plan. *)
let storm_trace ?(n = 16) () =
  List.init n (fun i ->
      let d = Demand.create () in
      Demand.set d (i mod 6) ((i + 2) mod 6)
        (Units.mb (400. /. (1.5 ** float_of_int i)));
      Coflow.make ~id:i ~arrival:(0.01 *. float_of_int i) d)

let test_scf_storm_grid () =
  let trace = storm_trace () in
  List.iter
    (fun buckets ->
      List.iter
        (fun delta ->
          let vs =
            Plan_check.replay_equiv ~policy:Inter.Shortest_first ~buckets
              ~delta ~bandwidth trace
          in
          Alcotest.(check string)
            (Printf.sprintf "storm buckets=%d delta=%g" buckets delta)
            "" (pp_violations vs))
        [ 0.; Units.ms 10. ])
    [ 0; 4; 16 ]

let test_bucketed_result_identity () =
  let trace = trace_of_seed ~max_coflows:12 42 in
  let run replan =
    Circuit_sim.run ~replan ~buckets:4 ~delta:(Units.ms 15.) ~bandwidth trace
  in
  let ri = run `Incremental and rr = run `Rebuild in
  Alcotest.(check bool) "bucketed Sim_result bit-identical" true (ri = rr);
  Alcotest.(check int)
    "all finish under buckets" (List.length trace)
    (List.length ri.Sim_result.finishes)

(* Under the exact order the storm reschedules the whole suffix at each
   arrival (1 + 2 + ... + n); under a bucketed order each arrival lands
   at the end of its class and everything after it splices. The engines
   are driven directly so the reschedule/splice counters are visible. *)
let test_dirty_suffix_smaller () =
  let n = 12 in
  let coflows =
    Array.init n (fun i ->
        let d = Demand.create () in
        (* disjoint port pairs: spliced windows can never conflict *)
        Demand.set d i (100 + i) (Units.mb (1600. /. (1.7 ** float_of_int i)));
        Coflow.make ~id:i ~arrival:(0.0002 *. float_of_int i) d)
  in
  let drive buckets =
    let eng =
      Inter.engine ~buckets ~policy:Inter.Shortest_first ~delta:0. ~bandwidth
        ()
    in
    Array.iter
      (fun c ->
        Inter.schedule_incremental eng ~now:c.Coflow.arrival ~arrivals:[ c ]
          ~finished:[]
          ~remaining:(fun id -> coflows.(id).Coflow.demand))
      coflows;
    (Inter.engine_rescheduled eng, Inter.engine_spliced eng)
  in
  let exact_r, exact_s = drive 0 in
  let bucket_r, bucket_s = drive 4 in
  Alcotest.(check int) "exact order redoes the whole suffix"
    (n * (n + 1) / 2)
    exact_r;
  Alcotest.(check int) "exact order never splices" 0 exact_s;
  Alcotest.(check int) "bucketed order redoes only the arrival" n bucket_r;
  Alcotest.(check bool) "bucketed order splices the rest" true (bucket_s > 0)

(* --- hardening: retired entries are not pinned by the engine --- *)

let test_no_gc_pinning () =
  let n = 10 in
  let eng =
    Inter.engine ~policy:Inter.Shortest_first ~delta:(Units.ms 10.) ~bandwidth
      ()
  in
  let weak = Weak.create n in
  (* admit and retire inside a closure so no local below keeps the
     Coflows reachable *)
  let () =
    let coflows =
      List.init n (fun i ->
          let d = Demand.create () in
          Demand.set d (i mod 4) ((i + 1) mod 4) (Units.mb 5.);
          let c = Coflow.make ~id:i ~arrival:0. d in
          Weak.set weak i (Some c);
          c)
    in
    let remaining id =
      (List.nth coflows id).Coflow.demand
    in
    Inter.schedule_incremental eng ~now:0. ~arrivals:coflows ~finished:[]
      ~remaining;
    Inter.schedule_incremental eng ~now:10. ~arrivals:[]
      ~finished:(List.init n Fun.id)
      ~remaining:(fun _ -> Demand.create ())
  in
  Alcotest.(check int) "engine drained" 0 (Inter.engine_size eng);
  Gc.full_major ();
  Gc.full_major ();
  for i = 0 to n - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "retired Coflow %d collected" i)
      false (Weak.check weak i)
  done;
  (* keep [eng] live past the major collections: the point is that a
     *live* engine does not pin retired entries *)
  ignore (Sys.opaque_identity eng)

let test_inconsistent_comparator_detected () =
  let flip = ref false in
  let policy =
    Inter.Custom
      (fun a b ->
        if !flip then compare b.Coflow.id a.Coflow.id
        else compare a.Coflow.id b.Coflow.id)
  in
  let eng =
    Inter.engine ~policy ~delta:(Units.ms 10.) ~bandwidth ()
  in
  let coflows =
    List.init 4 (fun i ->
        let d = Demand.create () in
        Demand.set d i (8 + i) (Units.mb 5.);
        Coflow.make ~id:(i + 1) ~arrival:0. d)
  in
  let remaining _ = Demand.create () in
  Inter.schedule_incremental eng ~now:0. ~arrivals:coflows ~finished:[]
    ~remaining;
  flip := true;
  Alcotest.check_raises "mutated comparator is detected, not corrupted"
    (Invalid_argument
       "Inter.remove_entry: entry not found at its ordered position \
        (inconsistent comparator?)") (fun () ->
      Inter.schedule_incremental eng ~now:1. ~arrivals:[] ~finished:[ 1 ]
        ~remaining)

let test_min_finish_option () =
  let eng =
    Inter.engine ~policy:Inter.Fifo ~delta:(Units.ms 10.) ~bandwidth ()
  in
  Alcotest.(check bool) "idle engine has no next finish" true
    (Inter.engine_min_finish eng = None);
  let d = Demand.create () in
  Demand.set d 0 1 (Units.mb 10.);
  let c = Coflow.make ~id:0 ~arrival:0. d in
  Inter.schedule_incremental eng ~now:0. ~arrivals:[ c ] ~finished:[]
    ~remaining:(fun _ -> d);
  (match Inter.engine_min_finish eng with
  | Some f -> Alcotest.(check bool) "finish after start" true (f > 0.)
  | None -> Alcotest.fail "admitted Coflow has a stored finish");
  Inter.schedule_incremental eng ~now:10. ~arrivals:[] ~finished:[ 0 ]
    ~remaining:(fun _ -> Demand.create ());
  Alcotest.(check bool) "drained engine back to None" true
    (Inter.engine_min_finish eng = None)

(* --- QCheck: equivalence on arbitrary seeds --- *)

let prop_equiv =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"incremental == rebuild (random seeds)"
       QCheck.(pair small_nat (bool))
       (fun (seed, carry) ->
         let trace = trace_of_seed (10_000 + seed) in
         Plan_check.replay_equiv ~carry_circuits:carry ~delta:(Units.ms 10.)
           ~bandwidth trace
         = []))

let prop_equiv_bucketed =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30
       ~name:"incremental == rebuild (random buckets)"
       QCheck.(triple small_nat (int_bound 20) (int_bound 6))
       (fun (seed, buckets, base_step) ->
         let trace = trace_of_seed (20_000 + seed) in
         Plan_check.replay_equiv ~policy:Inter.Shortest_first ~buckets
           ~bucket_base:(2. +. float_of_int base_step)
           ~delta:(Units.ms 10.) ~bandwidth trace
         = []))

let suite =
  [
    Alcotest.test_case "equivalence grid" `Quick test_equiv_grid;
    Alcotest.test_case "SCF storm grid (buckets 0/4/16)" `Quick
      test_scf_storm_grid;
    Alcotest.test_case "bucketed Sim_result bit-identical" `Quick
      test_bucketed_result_identity;
    Alcotest.test_case "bucketed dirty suffix strictly smaller" `Quick
      test_dirty_suffix_smaller;
    Alcotest.test_case "retired entries not pinned" `Quick test_no_gc_pinning;
    Alcotest.test_case "inconsistent comparator detected" `Quick
      test_inconsistent_comparator_detected;
    Alcotest.test_case "engine_min_finish option" `Quick
      test_min_finish_option;
    prop_equiv_bucketed;
    Alcotest.test_case "Sim_result fields bit-identical" `Quick
      test_result_fields_equal;
    Alcotest.test_case "equivalence with released Coflows" `Quick
      test_equiv_with_releases;
    Alcotest.test_case "setup/teardown balance" `Quick
      test_setup_teardown_balance;
    Alcotest.test_case "physical oracle, incremental path" `Quick
      test_physical_oracle_incremental;
    prop_equiv;
  ]

(* The incremental replanning engine (persistent PRT + suffix-only
   rescheduling) against its from-scratch rebuild oracle: bit-identical
   results over a policy x carry x delta grid of randomized arrival
   traces, balanced setup/teardown accounting, and the physical switch
   oracle over the incremental path. *)

module Coflow = Sunflow_core.Coflow
module Inter = Sunflow_core.Inter
module Units = Sunflow_core.Units
module Circuit_sim = Sunflow_sim.Circuit_sim
module Sim_result = Sunflow_sim.Sim_result
module Diff_oracle = Sunflow_check.Diff_oracle
module Plan_check = Sunflow_check.Plan_check
module Violation = Sunflow_check.Violation
module Rng = Sunflow_stats.Rng
module Obs = Sunflow_obs

let bandwidth = Units.gbps 100.

let pp_violations vs =
  String.concat "; "
    (List.map (fun (v : Violation.t) -> v.Violation.message) vs)

let trace_of_seed ?(max_coflows = 8) seed =
  let rng = Rng.create seed in
  Diff_oracle.random_trace rng ~n_ports:6 ~max_coflows ~span:2. ~max_mb:50.

(* --- incremental == rebuild, bit for bit, across the grid --- *)

let policies =
  [
    ("fifo", Inter.Fifo);
    ("scf", Inter.Shortest_first);
    ("classes", Inter.Priority_classes (fun c -> c.Coflow.id mod 2));
    ( "custom",
      (* deliberately non-total comparator: the engine must append its
         own (arrival, id) tiebreak *)
      Inter.Custom
        (fun a b -> compare (a.Coflow.id mod 3) (b.Coflow.id mod 3)) );
  ]

let test_equiv_grid () =
  List.iter
    (fun (pname, policy) ->
      List.iter
        (fun carry ->
          List.iter
            (fun delta ->
              for i = 0 to 2 do
                let trace = trace_of_seed (1000 + (17 * i)) in
                let vs =
                  Plan_check.replay_equiv ~policy ~carry_circuits:carry ~delta
                    ~bandwidth trace
                in
                Alcotest.(check string)
                  (Printf.sprintf "%s carry=%b delta=%g trace=%d" pname carry
                     delta i)
                  "" (pp_violations vs)
              done)
            [ 0.; Units.ms 10. ])
        [ true; false ])
    policies

let test_result_fields_equal () =
  let trace = trace_of_seed ~max_coflows:12 42 in
  let run replan =
    Circuit_sim.run ~replan ~delta:(Units.ms 15.) ~bandwidth trace
  in
  let ri = run `Incremental and rr = run `Rebuild in
  Alcotest.(check bool) "Sim_result bit-identical" true (ri = rr);
  (* and both complete every Coflow *)
  Alcotest.(check int)
    "all finish" (List.length trace)
    (List.length ri.Sim_result.finishes)

(* --- chained releases through on_complete stay equivalent --- *)

let test_equiv_with_releases () =
  let trace = trace_of_seed 7 in
  let n = List.length trace in
  let on_complete id t =
    if id < n then
      (* one dependent Coflow per original, arriving at the finish *)
      [ Coflow.make ~id:(id + 1000) ~arrival:t (List.nth trace 0).Coflow.demand ]
    else []
  in
  let run replan =
    Circuit_sim.run ~replan ~on_complete ~delta:(Units.ms 10.) ~bandwidth trace
  in
  Alcotest.(check bool) "with releases" true (run `Incremental = run `Rebuild)

(* --- setup/teardown counters stay balanced under the engine --- *)

let test_setup_teardown_balance () =
  let m_setups = Obs.Registry.counter "sim.setups" in
  let m_teardowns = Obs.Registry.counter "sim.teardowns" in
  Obs.Control.set_enabled true;
  Fun.protect
    ~finally:(fun () -> Obs.Control.set_enabled false)
    (fun () ->
      List.iter
        (fun replan ->
          let s0 = Obs.Registry.counter_value m_setups in
          let d0 = Obs.Registry.counter_value m_teardowns in
          let r =
            Circuit_sim.run ~replan ~delta:(Units.ms 15.) ~bandwidth
              (trace_of_seed ~max_coflows:10 99)
          in
          let setups = Obs.Registry.counter_value m_setups - s0 in
          let teardowns = Obs.Registry.counter_value m_teardowns - d0 in
          (* the fabric ends dark: every establishment is torn down *)
          Alcotest.(check int) "teardowns balance setups" setups teardowns;
          Alcotest.(check int)
            "observed setups match the result" r.Sim_result.total_setups
            setups)
        [ `Incremental; `Rebuild ])

(* --- the physical switch accepts the incremental path's schedule --- *)

let test_physical_oracle_incremental () =
  for i = 0 to 4 do
    let trace = trace_of_seed (500 + (31 * i)) in
    let o =
      Diff_oracle.replay ~replan:`Incremental ~delta:(Units.ms 15.) ~bandwidth
        ~n_ports:6 trace
    in
    Alcotest.(check string)
      (Printf.sprintf "trace %d" i)
      ""
      (pp_violations o.Diff_oracle.violations);
    Alcotest.(check bool) "compared some" true (o.Diff_oracle.compared > 0)
  done

(* --- QCheck: equivalence on arbitrary seeds --- *)

let prop_equiv =
  QCheck_alcotest.to_alcotest
    (QCheck.Test.make ~count:30 ~name:"incremental == rebuild (random seeds)"
       QCheck.(pair small_nat (bool))
       (fun (seed, carry) ->
         let trace = trace_of_seed (10_000 + seed) in
         Plan_check.replay_equiv ~carry_circuits:carry ~delta:(Units.ms 10.)
           ~bandwidth trace
         = []))

let suite =
  [
    Alcotest.test_case "equivalence grid" `Quick test_equiv_grid;
    Alcotest.test_case "Sim_result fields bit-identical" `Quick
      test_result_fields_equal;
    Alcotest.test_case "equivalence with released Coflows" `Quick
      test_equiv_with_releases;
    Alcotest.test_case "setup/teardown balance" `Quick
      test_setup_teardown_balance;
    Alcotest.test_case "physical oracle, incremental path" `Quick
      test_physical_oracle_incremental;
    prop_equiv;
  ]

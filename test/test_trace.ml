module Trace = Sunflow_trace.Trace
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units

let sample_text =
  "150 2\n\
   0 0 2 10 20 1 30:100\n\
   1 500 1 5 2 6:4 7:2\n"

let test_parse () =
  let t = Trace.parse sample_text in
  Alcotest.(check int) "ports" 150 t.Trace.n_ports;
  Alcotest.(check int) "coflows" 2 (Trace.n_coflows t);
  match t.Trace.coflows with
  | [ c0; c1 ] ->
    Util.check_close "arrival ms to s" 0.5 c1.Coflow.arrival;
    (* coflow 0: two mappers share reducer 30's 100 MB evenly *)
    Util.check_close "even split" (Units.mb 50.) (Demand.get c0.demand 10 30);
    Util.check_close "even split" (Units.mb 50.) (Demand.get c0.demand 20 30);
    (* coflow 1: single mapper, two reducers *)
    Util.check_close "full size" (Units.mb 4.) (Demand.get c1.demand 5 6);
    Util.check_close "full size" (Units.mb 2.) (Demand.get c1.demand 5 7);
    Alcotest.(check string) "category" "O2M"
      (Coflow.Category.to_string (Coflow.category c1))
  | _ -> Alcotest.fail "wrong shape"

let test_parse_skips_comments () =
  let t = Trace.parse "# a comment\n\n2 1\n0 0 1 0 1 1:5\n" in
  Alcotest.(check int) "one coflow" 1 (Trace.n_coflows t)

let expect_error ~line text =
  match Trace.parse text with
  | exception Trace.Parse_error e ->
    Alcotest.(check int) "line number" line e.line
  | _ -> Alcotest.fail "expected a parse error"

let test_parse_errors () =
  expect_error ~line:1 "";
  expect_error ~line:1 "abc def\n";
  (* header promises two coflows, file has one *)
  expect_error ~line:1 "10 2\n0 0 1 0 1 1:5\n";
  (* rack out of range *)
  expect_error ~line:2 "10 1\n0 0 1 99 1 1:5\n";
  (* malformed reducer *)
  expect_error ~line:2 "10 1\n0 0 1 0 1 15\n";
  (* non-positive size *)
  expect_error ~line:2 "10 1\n0 0 1 0 1 1:0\n";
  (* truncated mapper list *)
  expect_error ~line:2 "10 1\n0 0 3 1 2\n";
  (* negative arrival *)
  expect_error ~line:2 "10 1\n0 -5 1 0 1 1:5\n";
  (* duplicate Coflow id: the second occurrence is the offender *)
  expect_error ~line:3 "10 2\n0 0 1 0 1 1:5\n0 5 1 0 1 1:5\n"

let test_roundtrip_even_shuffle () =
  let t = Trace.parse sample_text in
  let t' = Trace.parse (Trace.to_string t) in
  Alcotest.(check int) "coflows" 2 (Trace.n_coflows t');
  List.iter2
    (fun (a : Coflow.t) (b : Coflow.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "coflow %d demand preserved" a.id)
        true
        (Demand.equal ~eps:1. a.demand b.demand))
    t.Trace.coflows t'.Trace.coflows

(* The writer used to quantise arrivals to whole milliseconds and
   sizes to six significant digits; both must now survive a round
   trip bit-for-bit. *)
let test_roundtrip_full_precision () =
  let text = "10 1\n0 0.123456789 2 1 2 1 5:3.141592653589793\n" in
  let t = Trace.parse text in
  let t' = Trace.parse (Trace.to_string t) in
  match (t.Trace.coflows, t'.Trace.coflows) with
  | [ a ], [ b ] ->
    Alcotest.(check bool)
      "sub-ms arrival exact" true
      (a.Coflow.arrival = b.Coflow.arrival);
    Alcotest.(check bool)
      "17-digit size exact" true
      (Demand.col_sum a.Coflow.demand 5 = Demand.col_sum b.Coflow.demand 5)
  | _ -> Alcotest.fail "wrong shape"

(* QCheck: parse ∘ to_string is the identity on ports, ids, arrivals
   and per-receiver column sums for any trace in the parse image (the
   only per-flow information the format stores; see the .mli). One
   round trip is also a serialisation fixed point. *)
let prop_roundtrip_identity =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"roundtrip identity on the parse image"
       ~count:300
       QCheck2.Gen.(int_range 0 100_000)
       (fun seed ->
         let rng = Sunflow_stats.Rng.create seed in
         let n_ports = 8 in
         let n = 1 + Sunflow_stats.Rng.int rng 4 in
         let buf = Buffer.create 256 in
         Buffer.add_string buf (Printf.sprintf "%d %d\n" n_ports n);
         for id = 0 to n - 1 do
           let n_mappers = 1 + Sunflow_stats.Rng.int rng 3 in
           let mappers = List.init n_mappers (fun i -> i * 2) in
           Buffer.add_string buf
             (Printf.sprintf "%d %.17g %d" id
                (Sunflow_stats.Rng.float rng 5000.)
                n_mappers);
           List.iter
             (fun m -> Buffer.add_string buf (Printf.sprintf " %d" m))
             mappers;
           let n_reducers = 1 + Sunflow_stats.Rng.int rng 2 in
           Buffer.add_string buf (Printf.sprintf " %d" n_reducers);
           for r = 0 to n_reducers - 1 do
             Buffer.add_string buf
               (Printf.sprintf " %d:%.17g"
                  ((r * 2) + 1)
                  (0.1 +. Sunflow_stats.Rng.float rng 500.))
           done;
           Buffer.add_char buf '\n'
         done;
         let t1 = Trace.parse (Buffer.contents buf) in
         let s1 = Trace.to_string t1 in
         let t2 = Trace.parse s1 in
         List.for_all2
           (fun (a : Coflow.t) (b : Coflow.t) ->
             a.id = b.id
             && a.arrival = b.arrival
             && Demand.senders a.demand = Demand.senders b.demand
             && Demand.receivers a.demand = Demand.receivers b.demand
             && List.for_all
                  (fun r ->
                    Demand.col_sum a.demand r = Demand.col_sum b.demand r)
                  (Demand.receivers a.demand))
           t1.Trace.coflows t2.Trace.coflows
         && Trace.to_string t2 = s1))

let test_save_load () =
  let t = Trace.parse sample_text in
  let path = Filename.temp_file "sunflow" ".trace" in
  Trace.save path t;
  let t' = Trace.load path in
  Sys.remove path;
  Util.check_close "bytes preserved" (Trace.total_bytes t) (Trace.total_bytes t')

let test_totals () =
  let t = Trace.parse sample_text in
  Util.check_close "total" (Units.mb 106.) (Trace.total_bytes t)

(* --- streaming readers (serve-mode plumbing) --- *)

let with_text_channel text f =
  let path = Filename.temp_file "sunflow" ".trace" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc text;
  close_out oc;
  let ic = open_in path in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) (fun () -> f ic)

let check_coflows_equal name expected got =
  Alcotest.(check int) (name ^ ": count") (List.length expected) (List.length got);
  List.iter2
    (fun (a : Coflow.t) (b : Coflow.t) ->
      Alcotest.(check int) (name ^ ": id") a.id b.id;
      Alcotest.(check bool) (name ^ ": arrival") true (a.arrival = b.arrival);
      Alcotest.(check bool)
        (name ^ ": demand") true
        (Demand.entries a.demand = Demand.entries b.demand))
    expected got

let test_fold_matches_parse () =
  let t = Trace.parse sample_text in
  let header = ref (0, 0) in
  let got =
    with_text_channel sample_text (fun ic ->
        Trace.fold
          ~on_header:(fun ~n_ports ~n_coflows -> header := (n_ports, n_coflows))
          ic ~init:[]
          ~f:(fun acc c -> c :: acc))
    |> List.rev
  in
  Alcotest.(check (pair int int)) "header seen" (150, 2) !header;
  check_coflows_equal "fold" t.Trace.coflows got

let test_reader_matches_parse () =
  let t = Trace.parse sample_text in
  let got =
    with_text_channel sample_text (fun ic ->
        let next = Trace.reader ic in
        let rec pull acc =
          match next () with None -> List.rev acc | Some c -> pull (c :: acc)
        in
        pull [])
  in
  check_coflows_equal "reader" t.Trace.coflows got;
  (* the reader stays exhausted after EOF *)
  Alcotest.(check bool) "sticky EOF" true
    (with_text_channel sample_text (fun ic ->
         let next = Trace.reader ic in
         let rec drain () = match next () with None -> () | Some _ -> drain () in
         drain ();
         next () = None))

(* the whole point of the rewrite: reading from a non-seekable fd (a
   pipe, stdin) must work — the old loader measured the file size *)
let test_fold_over_pipe () =
  let r, w = Unix.pipe () in
  let oc = Unix.out_channel_of_descr w in
  output_string oc sample_text;
  close_out oc;
  let ic = Unix.in_channel_of_descr r in
  Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
  let t = Trace.parse sample_text in
  let got = List.rev (Trace.fold ic ~init:[] ~f:(fun acc c -> c :: acc)) in
  check_coflows_equal "pipe" t.Trace.coflows got

let test_stream_error_semantics () =
  (* header shortfall is detected at EOF and reported at the header
     line, same as the batch parser *)
  (match
     with_text_channel "10 2\n0 0 1 0 1 1:5\n" (fun ic ->
         Trace.fold ic ~init:0 ~f:(fun n _ -> n + 1))
   with
  | exception Trace.Parse_error e ->
    Alcotest.(check int) "shortfall at header line" 1 e.line
  | _ -> Alcotest.fail "expected a parse error");
  (* fold itself keeps no id set (bounded memory): duplicate ids
     stream through; [load] still rejects them *)
  let dup = "10 2\n0 0 1 0 1 1:5\n0 5 1 0 1 1:5\n" in
  Alcotest.(check int) "fold streams duplicate ids" 2
    (with_text_channel dup (fun ic ->
         Trace.fold ic ~init:0 ~f:(fun n _ -> n + 1)));
  let path = Filename.temp_file "sunflow" ".trace" in
  Fun.protect ~finally:(fun () -> Sys.remove path) @@ fun () ->
  let oc = open_out path in
  output_string oc dup;
  close_out oc;
  match Trace.load path with
  | exception Trace.Parse_error e ->
    Alcotest.(check int) "load rejects duplicate at its line" 3 e.line
  | _ -> Alcotest.fail "expected a duplicate-id error"

let suite =
  [
    Alcotest.test_case "parse" `Quick test_parse;
    Alcotest.test_case "comments and blanks" `Quick test_parse_skips_comments;
    Alcotest.test_case "parse errors carry line numbers" `Quick
      test_parse_errors;
    Alcotest.test_case "roundtrip even shuffle" `Quick
      test_roundtrip_even_shuffle;
    Alcotest.test_case "roundtrip full precision" `Quick
      test_roundtrip_full_precision;
    prop_roundtrip_identity;
    Alcotest.test_case "save and load" `Quick test_save_load;
    Alcotest.test_case "totals" `Quick test_totals;
    Alcotest.test_case "fold matches parse" `Quick test_fold_matches_parse;
    Alcotest.test_case "reader matches parse" `Quick test_reader_matches_parse;
    Alcotest.test_case "fold over a pipe" `Quick test_fold_over_pipe;
    Alcotest.test_case "streaming error semantics" `Quick
      test_stream_error_semantics;
  ]

module Prt = Sunflow_core.Prt

let r ?(coflow = 0) ~src ~dst ~start ~setup ~length () =
  { Prt.coflow; src; dst; start; setup; length }

(* Reference list-based PRT: the pre-optimisation implementation kept
   verbatim (sorted lists, full scans) as the oracle the array-backed
   table must agree with reservation for reservation. *)
module Ref_prt = struct
  let stop (r : Prt.reservation) = r.Prt.start +. r.Prt.length

  type t = (Prt.port, Prt.reservation list) Hashtbl.t

  let create () : t = Hashtbl.create 64

  let port_list (t : t) p =
    match Hashtbl.find_opt t p with Some l -> l | None -> []

  let free_at t p instant =
    List.for_all
      (fun (r : Prt.reservation) -> instant < r.Prt.start || instant >= stop r)
      (port_list t p)

  let next_start_after t p instant =
    List.fold_left
      (fun acc (r : Prt.reservation) ->
        if r.Prt.start > instant then Float.min acc r.Prt.start else acc)
      infinity (port_list t p)

  let port_next_release t p instant =
    List.fold_left
      (fun acc r ->
        let s = stop r in
        if s > instant then Float.min acc s else acc)
      infinity (port_list t p)

  let next_release_after (t : t) instant =
    Hashtbl.fold
      (fun p _ acc -> Float.min acc (port_next_release t p instant))
      t infinity

  let next_release_on_ports t ports instant =
    List.fold_left
      (fun acc p -> Float.min acc (port_next_release t p instant))
      infinity ports

  let time_tolerance = 1e-9

  let overlaps (a : Prt.reservation) (b : Prt.reservation) =
    Float.min (stop a) (stop b) -. Float.max a.Prt.start b.Prt.start
    > time_tolerance

  let insert_sorted t p (r : Prt.reservation) =
    let l = port_list t p in
    List.iter
      (fun existing ->
        if overlaps existing r then invalid_arg "Ref_prt.reserve: overlap")
      l;
    let sorted =
      List.sort (fun (a : Prt.reservation) b -> compare a.Prt.start b.Prt.start) (r :: l)
    in
    Hashtbl.replace t p sorted

  let reserve t (r : Prt.reservation) =
    if r.Prt.length <= 0. then invalid_arg "Ref_prt.reserve: non-positive length";
    if r.Prt.setup < 0. || r.Prt.setup > r.Prt.length then
      invalid_arg "Ref_prt.reserve: setup outside [0, length]";
    if r.Prt.src < 0 || r.Prt.dst < 0 then
      invalid_arg "Ref_prt.reserve: negative port";
    insert_sorted t (Prt.In r.Prt.src) r;
    (try insert_sorted t (Prt.Out r.Prt.dst) r
     with e ->
       Hashtbl.replace t (Prt.In r.Prt.src)
         (List.filter (fun x -> x != r) (port_list t (Prt.In r.Prt.src)));
       raise e)

  let all_reservations (t : t) =
    Hashtbl.fold
      (fun p rs acc ->
        match p with Prt.In _ -> List.rev_append rs acc | Prt.Out _ -> acc)
      t []
    |> List.sort (fun (a : Prt.reservation) b ->
           compare (a.Prt.start, a.Prt.src, a.Prt.dst)
             (b.Prt.start, b.Prt.src, b.Prt.dst))
end

let test_free_at () =
  let t = Prt.create () in
  Alcotest.(check bool) "empty free" true (Prt.free_at t (Prt.In 0) 5.);
  Prt.reserve t (r ~src:0 ~dst:1 ~start:1. ~setup:0.1 ~length:2. ());
  Alcotest.(check bool) "before" true (Prt.free_at t (Prt.In 0) 0.5);
  Alcotest.(check bool) "at start busy" false (Prt.free_at t (Prt.In 0) 1.);
  Alcotest.(check bool) "inside busy" false (Prt.free_at t (Prt.In 0) 2.);
  Alcotest.(check bool) "at stop free" true (Prt.free_at t (Prt.In 0) 3.);
  Alcotest.(check bool) "out port busy too" false (Prt.free_at t (Prt.Out 1) 2.);
  Alcotest.(check bool) "other port free" true (Prt.free_at t (Prt.In 1) 2.)

let test_in_out_namespaces () =
  let t = Prt.create () in
  Prt.reserve t (r ~src:3 ~dst:3 ~start:0. ~setup:0. ~length:1. ());
  (* circuit 3 -> 3 occupies In 3 and Out 3 but not the other pair *)
  Alcotest.(check bool) "In 3 busy" false (Prt.free_at t (Prt.In 3) 0.5);
  Alcotest.(check bool) "Out 3 busy" false (Prt.free_at t (Prt.Out 3) 0.5);
  Prt.reserve t (r ~src:4 ~dst:5 ~start:0. ~setup:0. ~length:1. ());
  Alcotest.(check int) "two reservations" 2 (List.length (Prt.all_reservations t))

let test_overlap_rejected () =
  let t = Prt.create () in
  Prt.reserve t (r ~src:0 ~dst:1 ~start:1. ~setup:0. ~length:2. ());
  let clash = r ~src:0 ~dst:9 ~start:2. ~setup:0. ~length:1. () in
  (try
     Prt.reserve t clash;
     Alcotest.fail "expected overlap rejection"
   with Invalid_argument _ -> ());
  (* the failed reserve must not leave state behind *)
  Alcotest.(check int) "no partial insert" 1 (List.length (Prt.all_reservations t));
  (* a reservation that clashes only on the output port must also be
     rejected without corrupting the input port list *)
  let clash_out = r ~src:7 ~dst:1 ~start:2. ~setup:0. ~length:1. () in
  (try
     Prt.reserve t clash_out;
     Alcotest.fail "expected output overlap rejection"
   with Invalid_argument _ -> ());
  Alcotest.(check int) "still one" 1 (List.length (Prt.all_reservations t));
  Alcotest.(check bool) "In 7 free" true (Prt.free_at t (Prt.In 7) 2.5)

let test_back_to_back_ok () =
  let t = Prt.create () in
  Prt.reserve t (r ~src:0 ~dst:1 ~start:0. ~setup:0. ~length:1. ());
  Prt.reserve t (r ~src:0 ~dst:2 ~start:1. ~setup:0. ~length:1. ());
  Alcotest.(check int) "both in" 2 (List.length (Prt.all_reservations t))

let test_validation () =
  let t = Prt.create () in
  let bad_len = r ~src:0 ~dst:1 ~start:0. ~setup:0. ~length:0. () in
  Alcotest.check_raises "zero length"
    (Invalid_argument "Prt.reserve: non-positive length") (fun () ->
      Prt.reserve t bad_len);
  let bad_setup = r ~src:0 ~dst:1 ~start:0. ~setup:2. ~length:1. () in
  Alcotest.check_raises "setup > length"
    (Invalid_argument "Prt.reserve: setup outside [0, length]") (fun () ->
      Prt.reserve t bad_setup)

let test_next_start_after () =
  let t = Prt.create () in
  Prt.reserve t (r ~src:0 ~dst:1 ~start:5. ~setup:0. ~length:1. ());
  Prt.reserve t (r ~src:0 ~dst:2 ~start:9. ~setup:0. ~length:1. ());
  Util.check_close "first upcoming" 5. (Prt.next_start_after t (Prt.In 0) 0.);
  Util.check_close "strictly after" 9. (Prt.next_start_after t (Prt.In 0) 5.);
  Alcotest.(check bool) "none left" true
    (Prt.next_start_after t (Prt.In 0) 9. = infinity)

let test_next_release () =
  let t = Prt.create () in
  Prt.reserve t (r ~src:0 ~dst:1 ~start:0. ~setup:0. ~length:4. ());
  Prt.reserve t (r ~src:2 ~dst:3 ~start:0. ~setup:0. ~length:2. ());
  Util.check_close "earliest stop" 2. (Prt.next_release_after t 0.);
  Util.check_close "next" 4. (Prt.next_release_after t 2.);
  Util.check_close "restricted to ports" 4.
    (Prt.next_release_on_ports t [ Prt.In 0 ] 0.);
  Alcotest.(check bool) "no ports no release" true
    (Prt.next_release_on_ports t [ Prt.In 9 ] 0. = infinity)

let test_established_at () =
  let t = Prt.create () in
  Prt.reserve t (r ~src:0 ~dst:1 ~start:0. ~setup:1. ~length:3. ());
  Alcotest.(check (list (pair int int))) "during setup" []
    (Prt.established_at t 0.5);
  Alcotest.(check (list (pair int int))) "transmitting" [ (0, 1) ]
    (Prt.established_at t 1.5);
  Alcotest.(check (list (pair int int))) "after stop" []
    (Prt.established_at t 3.)

let test_copy_isolation () =
  let t = Prt.create () in
  Prt.reserve t (r ~src:0 ~dst:1 ~start:0. ~setup:0. ~length:1. ());
  let t' = Prt.copy t in
  Prt.reserve t' (r ~src:5 ~dst:6 ~start:0. ~setup:0. ~length:1. ());
  Alcotest.(check int) "copy extended" 2 (List.length (Prt.all_reservations t'));
  Alcotest.(check int) "original intact" 1 (List.length (Prt.all_reservations t))

let test_rollback_leaves_table_unchanged () =
  (* Out-port conflict after the In-port insert succeeded: the failed
     reserve must undo the In insert completely — reservations, port
     occupancy, release index and query answers all unchanged. *)
  let t = Prt.create () in
  Prt.reserve t (r ~src:0 ~dst:1 ~start:0. ~setup:0.01 ~length:2. ());
  Prt.reserve t (r ~src:2 ~dst:3 ~start:1. ~setup:0.01 ~length:2. ());
  Prt.reserve t (r ~src:4 ~dst:1 ~start:2.5 ~setup:0.01 ~length:1. ());
  let before = Prt.all_reservations t in
  let before_ports = Prt.ports_in_use t in
  let probe_instants = [ 0.; 0.5; 1.; 1.9999; 2.; 2.75; 3.5; 10. ] in
  let snapshot () =
    List.map
      (fun i ->
        ( Prt.free_at t (Prt.In 5) i,
          Prt.next_start_after t (Prt.In 5) i,
          Prt.next_release_after t i,
          Prt.next_release_on_ports t [ Prt.In 5; Prt.Out 1 ] i ))
      probe_instants
  in
  (* In 5 is free, so the insert succeeds on the input port and must be
     rolled back when Out 1 (busy on [0, 2) and [2.5, 3.5)) rejects *)
  let before_answers = snapshot () in
  let clash = r ~src:5 ~dst:1 ~start:1. ~setup:0.01 ~length:1. () in
  (try
     Prt.reserve t clash;
     Alcotest.fail "expected an Out-port conflict"
   with Invalid_argument _ -> ());
  Alcotest.(check int) "same reservation count" (List.length before)
    (List.length (Prt.all_reservations t));
  Alcotest.(check bool) "same reservations" true
    (before = Prt.all_reservations t);
  Alcotest.(check bool) "same ports in use" true
    (before_ports = Prt.ports_in_use t);
  Alcotest.(check bool) "same query answers" true
    (before_answers = snapshot ());
  Alcotest.(check bool) "In 5 still free" true (Prt.free_at t (Prt.In 5) 1.5);
  (* the table still accepts a compatible reservation afterwards *)
  Prt.reserve t (r ~src:5 ~dst:6 ~start:1. ~setup:0.01 ~length:1. ());
  Alcotest.(check int) "fresh reserve lands" (List.length before + 1)
    (List.length (Prt.all_reservations t))

(* --- keyed oracle: array PRT vs the list-based reference ------------- *)

(* Streams draw boundaries from a coarse grid so back-to-back windows,
   exact collisions and rollback-triggering Out conflicts all occur
   often. *)
let stream_gen =
  QCheck2.Gen.(
    list_size (int_range 1 60)
      (let* src = int_range 0 4 in
       let* dst = int_range 0 4 in
       let* start8 = int_range 0 160 in
       let* len8 = int_range 1 24 in
       let* setup = oneofl [ 0.; 0.01; 0.05 ] in
       pure
         (r ~src ~dst
            ~start:(float_of_int start8 /. 8.)
            ~setup
            ~length:(float_of_int len8 /. 8.)
            ())))

let query_instants = List.init 42 (fun i -> float_of_int i /. 4.)

let agree_on_queries t ref_t =
  let ports =
    List.concat_map (fun i -> [ Prt.In i; Prt.Out i ]) [ 0; 1; 2; 3; 4 ]
  in
  List.for_all
    (fun instant ->
      Prt.next_release_after t instant
      = Ref_prt.next_release_after ref_t instant
      && Prt.next_release_on_ports t ports instant
         = Ref_prt.next_release_on_ports ref_t ports instant
      && List.for_all
           (fun p ->
             Prt.free_at t p instant = Ref_prt.free_at ref_t p instant
             && Prt.next_start_after t p instant
                = Ref_prt.next_start_after ref_t p instant
             && Prt.probe t p instant
                = ( Ref_prt.free_at ref_t p instant,
                    Ref_prt.next_start_after ref_t p instant ))
           ports)
    query_instants

let prop_oracle_vs_list_reference =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"array PRT agrees with the list reference on random streams"
       ~count:300 stream_gen
       (fun stream ->
         let t = Prt.create () in
         let ref_t = Ref_prt.create () in
         List.for_all
           (fun res ->
             let accepted =
               try
                 Prt.reserve t res;
                 true
               with Invalid_argument _ -> false
             in
             let ref_accepted =
               try
                 Ref_prt.reserve ref_t res;
                 true
               with Invalid_argument _ -> false
             in
             (* same accept/reject decision, and identical tables after
                every step — reservation for reservation *)
             accepted = ref_accepted
             && Prt.all_reservations t = Ref_prt.all_reservations ref_t)
           stream
         && agree_on_queries t ref_t))

let prop_no_overlap =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"random accepted reservations never violate port constraints"
       ~count:200
       QCheck2.Gen.(
         list_size (int_range 1 40)
           (quad (int_range 0 4) (int_range 0 4) (float_range 0. 50.)
              (float_range 0.1 5.)))
       (fun candidates ->
         let t = Prt.create () in
         List.iter
           (fun (src, dst, start, length) ->
             try Prt.reserve t (r ~src ~dst ~start ~setup:0.05 ~length ())
             with Invalid_argument _ -> ())
           candidates;
         match
           Sunflow_core.Schedule.check_port_constraints
             (Prt.all_reservations t)
         with
         | Ok _ -> true
         | Error _ -> false))

(* Hammer the work counters from several domains at once (each on its
   own table — the table itself is single-owner; only the process-wide
   stats are shared) and check no update is lost: after joining, the
   deltas must equal the exact sequential sums. *)
let test_concurrent_counters () =
  let reserves = 60 and queries = 200 and n_domains = 4 in
  let work () =
    let t = Prt.create () in
    for i = 0 to reserves - 1 do
      Prt.reserve t
        (r ~src:0 ~dst:0 ~start:(float_of_int i) ~setup:0.001 ~length:0.5 ())
    done;
    for i = 0 to queries - 1 do
      ignore (Prt.free_at t (Prt.In 0) (float_of_int i *. 0.31) : bool)
    done
  in
  let before = Prt.stats () in
  let domains = Array.init n_domains (fun _ -> Domain.spawn work) in
  Array.iter Domain.join domains;
  let after = Prt.stats () in
  Alcotest.(check int)
    "reservations" (n_domains * reserves)
    (after.Prt.reservations - before.Prt.reservations);
  Alcotest.(check int)
    "queries" (n_domains * queries)
    (after.Prt.queries - before.Prt.queries);
  (* every free_at probes at least once on a non-empty port *)
  Alcotest.(check bool)
    "scans counted" true
    (after.Prt.scans - before.Prt.scans >= n_domains * queries)

(* --- checkpoint / rollback / retract (PR 5) --- *)

let table_fingerprint t =
  ( Prt.all_reservations t,
    List.map (fun p -> (p, Prt.port_reservations t p)) (Prt.ports_in_use t),
    List.map (fun i -> Prt.next_release_after t i) [ 0.; 0.5; 1.; 2.; 5. ] )

let test_checkpoint_rollback () =
  let t = Prt.create () in
  Prt.reserve t (r ~coflow:1 ~src:0 ~dst:1 ~start:0. ~setup:0.01 ~length:1. ());
  Prt.reserve t (r ~coflow:1 ~src:1 ~dst:0 ~start:0.5 ~setup:0.01 ~length:1. ());
  let snap = table_fingerprint t in
  let cp = Prt.checkpoint t in
  (* empty suffix: rolling back with nothing recorded is a no-op *)
  Prt.rollback t cp;
  Alcotest.(check bool) "empty rollback no-op" true (table_fingerprint t = snap);
  (* a carried-circuit continuation (zero setup, back to back with
     coflow 1's window on the same ports) plus fresh windows elsewhere *)
  Prt.reserve t (r ~coflow:2 ~src:0 ~dst:1 ~start:1. ~setup:0. ~length:0.5 ());
  Prt.reserve t (r ~coflow:2 ~src:2 ~dst:3 ~start:0. ~setup:0.01 ~length:2. ());
  Prt.reserve t (r ~coflow:3 ~src:1 ~dst:2 ~start:1.5 ~setup:0.01 ~length:1. ());
  Alcotest.(check bool) "suffix landed" false (table_fingerprint t = snap);
  Prt.rollback t cp;
  Alcotest.(check bool) "rollback restores table" true
    (table_fingerprint t = snap);
  (* rollback-then-reuse: the freed span can be reserved again, and the
     same mark stays valid for a second rollback *)
  Prt.reserve t (r ~coflow:4 ~src:0 ~dst:1 ~start:1. ~setup:0.01 ~length:0.25 ());
  Alcotest.(check bool) "freed span reusable" true (Prt.free_at t (Prt.In 0) 1.5);
  Prt.rollback t cp;
  Alcotest.(check bool) "mark reusable" true (table_fingerprint t = snap);
  (* a mark discarded by rolling back past it is rejected *)
  let deep = Prt.checkpoint t in
  Prt.reserve t (r ~coflow:5 ~src:4 ~dst:5 ~start:0. ~setup:0.01 ~length:1. ());
  let late = Prt.checkpoint t in
  Prt.rollback t deep;
  Alcotest.check_raises "stale checkpoint"
    (Invalid_argument "Prt.rollback: stale checkpoint") (fun () ->
      Prt.rollback t late)

let test_rollback_skips_retracted () =
  let t = Prt.create () in
  let cp = Prt.checkpoint t in
  Prt.reserve t (r ~coflow:1 ~src:0 ~dst:1 ~start:0. ~setup:0.01 ~length:1. ());
  Prt.reserve t (r ~coflow:2 ~src:1 ~dst:2 ~start:0. ~setup:0.01 ~length:1. ());
  Prt.reserve t (r ~coflow:1 ~src:2 ~dst:0 ~start:2. ~setup:0.01 ~length:1. ());
  Alcotest.(check int) "retract removes both windows" 2 (Prt.retract_coflow t 1);
  Alcotest.(check int) "retract unknown id" 0 (Prt.retract_coflow t 7);
  (* the undo log still holds coflow 1's entries; rollback skips them
     and removes coflow 2's *)
  Prt.rollback t cp;
  Alcotest.(check bool) "table empty" true (Prt.is_empty t);
  Alcotest.(check int) "nothing left" 0 (List.length (Prt.all_reservations t))

let test_remove_consistency () =
  let t = Prt.create () in
  let a = r ~coflow:1 ~src:0 ~dst:1 ~start:0. ~setup:0. ~length:1. () in
  let b = r ~coflow:2 ~src:1 ~dst:2 ~start:0. ~setup:0. ~length:2. () in
  Prt.reserve t a;
  Prt.reserve t b;
  Alcotest.(check bool) "remove present" true (Prt.remove t a);
  Alcotest.(check bool) "remove absent" false (Prt.remove t a);
  Alcotest.(check (float 0.)) "release index updated" 2.
    (Prt.next_release_after t 0.5);
  Alcotest.(check bool) "In port freed" true (Prt.free_at t (Prt.In 0) 0.5);
  Alcotest.(check bool) "Out port freed" true (Prt.free_at t (Prt.Out 1) 0.5);
  Alcotest.(check bool) "other window intact" false
    (Prt.free_at t (Prt.In 1) 0.5)

let test_copy_rollback_isolation () =
  let t = Prt.create () in
  let cp = Prt.checkpoint t in
  Prt.reserve t (r ~coflow:1 ~src:0 ~dst:1 ~start:0. ~setup:0.01 ~length:1. ());
  let u = Prt.copy t in
  Prt.rollback u cp;
  Alcotest.(check bool) "copy rolled back to empty" true (Prt.is_empty u);
  Alcotest.(check bool) "original untouched" false (Prt.is_empty t);
  Alcotest.(check int) "retract in original only" 1 (Prt.retract_coflow t 1);
  Alcotest.(check int) "copy ownership independent" 0 (Prt.retract_coflow u 1)

let test_covering_and_range () =
  let t = Prt.create () in
  let a = r ~coflow:1 ~src:0 ~dst:1 ~start:0. ~setup:0.01 ~length:1. () in
  let b = r ~coflow:2 ~src:1 ~dst:2 ~start:0.5 ~setup:0.01 ~length:1. () in
  let c = r ~coflow:3 ~src:0 ~dst:2 ~start:2. ~setup:0.01 ~length:1. () in
  List.iter (Prt.reserve t) [ a; b; c ];
  let ids rs =
    List.sort_uniq compare (List.map (fun x -> x.Prt.coflow) rs)
  in
  Alcotest.(check (list int)) "covering both" [ 1; 2 ]
    (ids (Prt.covering_at t 0.75));
  Alcotest.(check (list int)) "covering at window start" [ 1 ]
    (ids (Prt.covering_at t 0.));
  Alcotest.(check (list int)) "stop excluded" [ 2 ] (ids (Prt.covering_at t 1.));
  Alcotest.(check (list int)) "slice overlap" [ 1; 2 ]
    (ids (Prt.reservations_in t 0.75 1.5));
  Alcotest.(check (list int)) "future window only" [ 3 ]
    (ids (Prt.reservations_in t 1.5 10.));
  (* stop = t0 is excluded, start = t0 included *)
  Alcotest.(check (list int)) "boundaries" [ 2; 3 ]
    (ids (Prt.reservations_in t 1. 2.0001))

(* --- the interval index (PR 6) --- *)

(* Stabbing queries against a brute-force linear scan over a mirror
   list, through enough windows to force several block splits, with
   interleaved removals, a checkpoint/rollback, and a retraction — the
   whole maintenance surface the index must survive. *)
let test_interval_index_oracle () =
  let rng = Sunflow_stats.Rng.create 4242 in
  let t = Prt.create () in
  let mirror = ref [] in
  (* loopback circuits (src = dst) keyed by one per-port clock, so the
     generated windows are always admissible *)
  let n_ports = 24 in
  let next_free = Array.make n_ports 0. in
  let fresh () =
    let s = Sunflow_stats.Rng.int rng n_ports in
    let start = next_free.(s) +. Sunflow_stats.Rng.float rng 0.2 in
    let length = 0.01 +. Sunflow_stats.Rng.float rng 0.3 in
    next_free.(s) <- start +. length;
    r ~coflow:s ~src:s ~dst:s ~start ~setup:0. ~length ()
  in
  let reserve () =
    let w = fresh () in
    Prt.reserve t w;
    mirror := w :: !mirror
  in
  let remove_random () =
    match !mirror with
    | [] -> ()
    | l ->
      let w = List.nth l (Sunflow_stats.Rng.int rng (List.length l)) in
      Alcotest.(check bool) "mirror window present" true (Prt.remove t w);
      mirror := List.filter (fun x -> x <> w) !mirror
  in
  let stop w = w.Prt.start +. w.Prt.length in
  let norm = List.sort compare in
  let agree label =
    for _ = 1 to 40 do
      let x = Sunflow_stats.Rng.float rng 8. in
      let brute =
        List.filter (fun w -> w.Prt.start <= x && x < stop w) !mirror
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: covering_at %g" label x)
        (List.length brute)
        (List.length (Prt.covering_at t x));
      Alcotest.(check bool)
        (Printf.sprintf "%s: covering_at %g windows" label x)
        true
        (norm brute = norm (Prt.covering_at t x))
    done;
    for _ = 1 to 40 do
      let t0 = Sunflow_stats.Rng.float rng 8. in
      let t1 = t0 +. Sunflow_stats.Rng.float rng 3. -. 0.5 in
      let brute =
        List.filter
          (fun w ->
            (w.Prt.start <= t0 && stop w > t0)
            || (w.Prt.start > t0 && w.Prt.start < t1))
          !mirror
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s: reservations_in [%g, %g)" label t0 t1)
        true
        (norm brute = norm (Prt.reservations_in t t0 t1))
    done
  in
  (* growth phase: far past one block capacity *)
  for i = 1 to 400 do
    reserve ();
    if i mod 3 = 0 then remove_random ()
  done;
  agree "after growth";
  (* a rolled-back suffix must vanish from the index too *)
  let cp = Prt.checkpoint t in
  let marked = ref [] in
  for _ = 1 to 120 do
    let w = fresh () in
    Prt.reserve t w;
    marked := w :: !marked
  done;
  Prt.rollback t cp;
  agree "after rollback";
  (* retraction drains by owner id *)
  let victim = Sunflow_stats.Rng.int rng n_ports in
  let gone = Prt.retract_coflow t victim in
  Alcotest.(check int) "retract count matches mirror" gone
    (List.length (List.filter (fun w -> w.Prt.coflow = victim) !mirror));
  mirror := List.filter (fun w -> w.Prt.coflow <> victim) !mirror;
  agree "after retract";
  (* and a copied table answers identically while staying isolated *)
  let u = Prt.copy t in
  for _ = 1 to 60 do
    reserve ()
  done;
  Alcotest.(check bool) "copy unaffected by later inserts" true
    (List.length (Prt.covering_at u 4.) <= List.length (Prt.covering_at t 4.));
  agree "after copy + growth"

let test_fits_exact () =
  let t = Prt.create () in
  Prt.reserve t (r ~coflow:1 ~src:0 ~dst:1 ~start:1. ~setup:0. ~length:1. ());
  (* exact abutment on either side fits *)
  Alcotest.(check bool) "abut after" true
    (Prt.fits_exact t (r ~src:0 ~dst:2 ~start:2. ~setup:0. ~length:1. ()));
  Alcotest.(check bool) "abut before" true
    (Prt.fits_exact t (r ~src:0 ~dst:2 ~start:0. ~setup:0. ~length:1. ()));
  Alcotest.(check bool) "distinct ports" true
    (Prt.fits_exact t (r ~src:3 ~dst:4 ~start:1.5 ~setup:0. ~length:1. ()));
  (* plain overlaps on either port do not *)
  Alcotest.(check bool) "overlap on In" false
    (Prt.fits_exact t (r ~src:0 ~dst:9 ~start:1.5 ~setup:0. ~length:1. ()));
  Alcotest.(check bool) "overlap on Out" false
    (Prt.fits_exact t (r ~src:9 ~dst:1 ~start:1.5 ~setup:0. ~length:1. ()));
  (* sub-tolerance dust overlap: [reserve] admits it, the exact test
     refuses — the asymmetry the engine's splice path depends on *)
  let dust = r ~src:0 ~dst:5 ~start:(2. -. 1e-12) ~setup:0. ~length:1. () in
  Alcotest.(check bool) "dust overlap fails the exact test" false
    (Prt.fits_exact t dust);
  Prt.reserve t dust;
  Alcotest.(check int) "while reserve tolerates it as abutment" 2
    (List.length (Prt.all_reservations t))

(* --- change tracking (plan cache validity, PR 10) --- *)

let test_epoch_marks () =
  let t = Prt.create () in
  let pin = Prt.In 0 and pout = Prt.Out 1 in
  Alcotest.(check int) "untouched port reports 0" 0 (Prt.epoch t (Prt.In 7));
  let m0 = Prt.mark t pin in
  let w = r ~coflow:3 ~src:0 ~dst:1 ~start:1. ~setup:0.1 ~length:2. () in
  Prt.reserve t w;
  Alcotest.(check int) "reserve bumps In" 1 (Prt.epoch t pin);
  Alcotest.(check int) "reserve bumps Out" 1 (Prt.epoch t pout);
  Alcotest.(check bool) "mark changed by reserve" true (Prt.mark t pin <> m0);
  Alcotest.(check (list int)) "epochs_of snapshots the footprint" [ 1; 1; 0 ]
    (Array.to_list (Prt.epochs_of t [ pin; pout; Prt.In 7 ]));
  (* remove restores the content (count and signature) but not the
     epoch: marks distinguish "same windows again" from "never touched" *)
  Alcotest.(check bool) "remove finds the window" true (Prt.remove t w);
  let e0, len0, sig0 = m0 and e2, len2, sig2 = Prt.mark t pin in
  Alcotest.(check int) "window count restored" len0 len2;
  Alcotest.(check int) "content signature restored" sig0 sig2;
  Alcotest.(check bool) "epoch still advanced" true (e2 > e0);
  Alcotest.(check int) "remove bumps again" 2 (Prt.epoch t pin);
  (* a reserve that conflicts on its second port undoes the first
     port's insert — and the undo is a mutation of that port too *)
  Prt.reserve t w;
  let e_in5 = Prt.epoch t (Prt.In 5) and m_in5 = Prt.mark t (Prt.In 5) in
  (try
     Prt.reserve t (r ~src:5 ~dst:1 ~start:1.5 ~setup:0. ~length:1. ());
     Alcotest.fail "conflicting reserve not rejected"
   with Invalid_argument _ -> ());
  let e', len', sig' = Prt.mark t (Prt.In 5) and _, len5, sig5 = m_in5 in
  Alcotest.(check int) "failed reserve bumped the first port twice"
    (e_in5 + 2) e';
  Alcotest.(check bool) "but restored its content" true
    (len' = len5 && sig' = sig5);
  (* rollback and retraction count as mutations of every touched port *)
  let cp = Prt.checkpoint t in
  Prt.reserve t (r ~coflow:9 ~src:2 ~dst:3 ~start:0. ~setup:0. ~length:1. ());
  let m_in2 = Prt.mark t (Prt.In 2) in
  Prt.rollback t cp;
  Alcotest.(check bool) "rollback bumps the port" true
    (Prt.mark t (Prt.In 2) <> m_in2);
  let e_before = Prt.epoch t pin in
  Alcotest.(check int) "retract removes the window" 1 (Prt.retract_coflow t 3);
  Alcotest.(check bool) "retract bumps the port" true
    (Prt.epoch t pin > e_before);
  (* copy preserves marks bit-for-bit *)
  let u = Prt.copy t in
  List.iter
    (fun p ->
      Alcotest.(check bool) "copy preserves marks" true
        (Prt.mark u p = Prt.mark t p))
    [ pin; pout; Prt.In 2; Prt.In 5; Prt.In 7 ]

let test_epoch_monotone () =
  let rng = Sunflow_stats.Rng.create 77 in
  let t = Prt.create () in
  let n_ports = 4 in
  let snap () =
    Array.init (2 * n_ports) (fun i ->
        if i < n_ports then Prt.epoch t (Prt.In i)
        else Prt.epoch t (Prt.Out (i - n_ports)))
  in
  let prev = ref (snap ()) in
  let kept = ref [] in
  for _ = 1 to 300 do
    (match Sunflow_stats.Rng.int rng 4 with
    | 0 | 1 ->
      let w =
        r
          ~coflow:(Sunflow_stats.Rng.int rng 5)
          ~src:(Sunflow_stats.Rng.int rng n_ports)
          ~dst:(Sunflow_stats.Rng.int rng n_ports)
          ~start:(float_of_int (Sunflow_stats.Rng.int rng 80) /. 4.)
          ~setup:0.
          ~length:(float_of_int (1 + Sunflow_stats.Rng.int rng 8) /. 4.)
          ()
      in
      (try
         Prt.reserve t w;
         kept := w :: !kept
       with Invalid_argument _ -> ())
    | 2 -> (
      match !kept with
      | w :: rest ->
        ignore (Prt.remove t w : bool);
        kept := rest
      | [] -> ())
    | _ ->
      if Sunflow_stats.Rng.int rng 2 = 0 then begin
        ignore (Prt.retract_coflow t (Sunflow_stats.Rng.int rng 5) : int);
        kept := []
      end
      else begin
        let cp = Prt.checkpoint t in
        (try
           Prt.reserve t
             (r
                ~src:(Sunflow_stats.Rng.int rng n_ports)
                ~dst:(Sunflow_stats.Rng.int rng n_ports)
                ~start:(float_of_int (Sunflow_stats.Rng.int rng 80) /. 4.)
                ~setup:0. ~length:0.5 ())
         with Invalid_argument _ -> ());
        Prt.rollback t cp
      end);
    let cur = snap () in
    Array.iteri
      (fun i e ->
        if e < !prev.(i) then
          Alcotest.failf "epoch of port %d went backwards: %d -> %d" i
            !prev.(i) e)
      cur;
    prev := cur
  done

let test_splice_exact () =
  let t = Prt.create () in
  Prt.reserve t (r ~coflow:1 ~src:0 ~dst:1 ~start:5. ~setup:0.01 ~length:1. ());
  let plan =
    [
      r ~coflow:2 ~src:0 ~dst:1 ~start:0. ~setup:0.01 ~length:1. ();
      r ~coflow:2 ~src:1 ~dst:2 ~start:1. ~setup:0.01 ~length:1. ();
    ]
  in
  Alcotest.(check bool) "clean plan splices" true (Prt.splice_exact t plan);
  Alcotest.(check int) "all windows landed" 3
    (List.length (Prt.all_reservations t));
  (* one blocked window refuses the whole plan atomically *)
  let blocked =
    [
      r ~coflow:3 ~src:3 ~dst:4 ~start:0. ~setup:0.01 ~length:1. ();
      r ~coflow:3 ~src:0 ~dst:1 ~start:5.2 ~setup:0.01 ~length:0.5 ();
    ]
  in
  let marks_before = List.map (fun i -> Prt.mark t (Prt.In i)) [ 0; 1; 3 ] in
  Alcotest.(check bool) "blocked plan refused" false
    (Prt.splice_exact t blocked);
  Alcotest.(check int) "nothing reserved" 3
    (List.length (Prt.all_reservations t));
  Alcotest.(check bool) "no port touched by the refusal" true
    (marks_before = List.map (fun i -> Prt.mark t (Prt.In i)) [ 0; 1; 3 ])

let suite =
  [
    Alcotest.test_case "free_at windows" `Quick test_free_at;
    Alcotest.test_case "concurrent counters merge exactly" `Quick
      test_concurrent_counters;
    Alcotest.test_case "in/out namespaces" `Quick test_in_out_namespaces;
    Alcotest.test_case "overlap rejected atomically" `Quick
      test_overlap_rejected;
    Alcotest.test_case "back-to-back windows ok" `Quick test_back_to_back_ok;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "next_start_after" `Quick test_next_start_after;
    Alcotest.test_case "next release" `Quick test_next_release;
    Alcotest.test_case "established_at" `Quick test_established_at;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
    Alcotest.test_case "rollback leaves table unchanged" `Quick
      test_rollback_leaves_table_unchanged;
    Alcotest.test_case "checkpoint/rollback" `Quick test_checkpoint_rollback;
    Alcotest.test_case "rollback skips retracted" `Quick
      test_rollback_skips_retracted;
    Alcotest.test_case "remove consistency" `Quick test_remove_consistency;
    Alcotest.test_case "copy rollback isolation" `Quick
      test_copy_rollback_isolation;
    Alcotest.test_case "covering_at / reservations_in" `Quick
      test_covering_and_range;
    Alcotest.test_case "interval index vs stabbing oracle" `Quick
      test_interval_index_oracle;
    Alcotest.test_case "fits_exact strictness" `Quick test_fits_exact;
    Alcotest.test_case "epoch and mark semantics" `Quick test_epoch_marks;
    Alcotest.test_case "epochs monotone under mixed mutations" `Quick
      test_epoch_monotone;
    Alcotest.test_case "splice_exact atomicity" `Quick test_splice_exact;
    prop_oracle_vs_list_reference;
    prop_no_overlap;
  ]

(* The validation layer turned on itself: clean schedules must pass,
   corrupted ones must be rejected with the right violation code, and
   the differential oracle must agree with the physical switch on
   randomized traces with arrivals. *)

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units
module Prt = Sunflow_core.Prt
module Sunflow = Sunflow_core.Sunflow
module Circuit_sim = Sunflow_sim.Circuit_sim
module Sim_result = Sunflow_sim.Sim_result
module Check = Sunflow_check
module V = Check.Violation
module PC = Check.Plan_check
module Obs = Sunflow_obs

let b = Units.gbps 1.
let delta = Units.ms 10.
let has code vs = List.exists (fun (v : V.t) -> v.V.code = code) vs

let check_clean what vs =
  Alcotest.(check string) what "ok" (Format.asprintf "%a" V.pp_report vs)

let shuffle_2x2 =
  Demand.of_list
    [
      ((0, 2), Units.mb 10.);
      ((0, 3), Units.mb 10.);
      ((1, 2), Units.mb 10.);
      ((1, 3), Units.mb 10.);
    ]

let shapes =
  [
    ("single flow", Demand.of_list [ ((0, 1), Units.mb 25.) ]);
    ("shuffle 2x2", shuffle_2x2);
    ( "skewed",
      Demand.of_list
        [ ((0, 1), Units.mb 100.); ((0, 2), Units.mb 1.); ((3, 1), Units.mb 7.) ]
    );
  ]

(* --- plan validator --- *)

let test_validator_clean_grid () =
  List.iter
    (fun (dname, d) ->
      List.iter
        (fun (delta, bandwidth) ->
          let c = Coflow.make ~id:0 d in
          let r = Sunflow.schedule ~delta ~bandwidth c in
          check_clean
            (Printf.sprintf "%s at delta=%g B=%g" dname delta bandwidth)
            (PC.intra (PC.spec ~delta ~bandwidth ()) c r))
        [
          (0., b);
          (Units.ms 1., b);
          (Units.ms 10., b);
          (Units.ms 10., Units.gbps 10.);
          (Units.ms 100., Units.gbps 40.);
        ])
    shapes

let two_flow_coflow () =
  Coflow.make ~id:7
    (Demand.of_list [ ((0, 1), Units.mb 10.); ((2, 3), Units.mb 5.) ])

let test_corrupt_overlap () =
  let c = two_flow_coflow () in
  let r = Sunflow.schedule ~delta ~bandwidth:b c in
  (* duplicating a window makes it collide with itself on both ports *)
  let r' =
    { r with Sunflow.reservations = List.hd r.reservations :: r.reservations }
  in
  let vs = PC.intra (PC.spec ~delta ~bandwidth:b ()) c r' in
  Alcotest.(check bool) "port overlap flagged" true (has V.Port_overlap vs)

let test_corrupt_delta_dropped () =
  let c = two_flow_coflow () in
  let r = Sunflow.schedule ~delta ~bandwidth:b c in
  let r' =
    {
      r with
      Sunflow.reservations =
        List.map
          (fun (rv : Prt.reservation) -> { rv with Prt.setup = 0. })
          r.reservations;
    }
  in
  let vs = PC.intra (PC.spec ~delta ~bandwidth:b ()) c r' in
  Alcotest.(check bool) "dropped delta flagged" true (has V.Delta_violation vs)

let test_corrupt_under_service () =
  let c = two_flow_coflow () in
  let r = Sunflow.schedule ~delta ~bandwidth:b c in
  (* same plan, doubled demand: every flow is now under-served *)
  let inflated = Coflow.with_demand c (Demand.scale 2. c.Coflow.demand) in
  let vs = PC.intra (PC.spec ~delta ~bandwidth:b ()) inflated r in
  Alcotest.(check bool) "under-service flagged" true (has V.Under_service vs)

let test_corrupt_preemption () =
  (* split the single window of a one-flow Coflow into two halves with
     a gap and nothing blocking at the first stop: byte coverage stays
     exact, but the non-preemption discipline is broken *)
  let c = Coflow.make ~id:3 (Demand.of_list [ ((0, 1), Units.mb 20.) ]) in
  let r = Sunflow.schedule ~delta ~bandwidth:b c in
  let w = List.hd r.Sunflow.reservations in
  let p = w.Prt.length -. w.Prt.setup in
  let w1 = { w with Prt.length = w.Prt.setup +. (p /. 2.) } in
  let w2 = { w1 with Prt.start = Prt.stop w1 +. 0.05 } in
  let r' =
    {
      Sunflow.reservations = [ w1; w2 ];
      finish = Prt.stop w2;
      setups = 2;
    }
  in
  let vs = PC.intra (PC.spec ~delta ~bandwidth:b ()) c r' in
  Alcotest.(check bool) "preemption flagged" true (has V.Preemption vs);
  (* the fresh-table switching guarantee broke too: 2 setups, 1 subflow *)
  Alcotest.(check bool)
    "switching excess flagged" true
    (has V.Switching_excess vs)

let test_corrupt_result_fields () =
  let c = two_flow_coflow () in
  let r = Sunflow.schedule ~delta ~bandwidth:b c in
  let vs =
    PC.intra
      (PC.spec ~delta ~bandwidth:b ())
      c
      { r with Sunflow.finish = r.finish +. 1. }
  in
  Alcotest.(check bool) "finish lie flagged" true (has V.Result_mismatch vs)

(* --- conservation checker --- *)

let arrival_trace () =
  [
    Coflow.make ~id:0 ~arrival:0. shuffle_2x2;
    Coflow.make ~id:1 ~arrival:0.2
      (Demand.of_list [ ((1, 0), Units.mb 30.) ]);
    Coflow.make ~id:2 ~arrival:0.5
      (Demand.of_list [ ((2, 0), Units.mb 5.); ((3, 1), Units.mb 5.) ]);
  ]

let test_conservation_clean () =
  let coflows = arrival_trace () in
  let r = Circuit_sim.run ~delta ~bandwidth:b coflows in
  check_clean "circuit replay" (Check.Sim_check.result ~bandwidth:b ~coflows r)

let test_conservation_corrupted () =
  let coflows = arrival_trace () in
  let r = Circuit_sim.run ~delta ~bandwidth:b coflows in
  let vs corrupted = Check.Sim_check.result ~bandwidth:b ~coflows corrupted in
  Alcotest.(check bool)
    "inflated makespan flagged" true
    (has V.Conservation (vs { r with Sim_result.makespan = r.makespan +. 1. }));
  Alcotest.(check bool)
    "missing Coflow flagged" true
    (has V.Unknown_coflow
       (vs { r with Sim_result.finishes = List.tl r.Sim_result.finishes }));
  let lied =
    match r.Sim_result.ccts with
    | (id, cct) :: rest -> (id, cct +. 0.25) :: rest
    | [] -> []
  in
  Alcotest.(check bool)
    "cct != finish - arrival flagged" true
    (has V.Conservation (vs { r with Sim_result.ccts = lied }));
  Alcotest.(check bool)
    "beating the bottleneck bound flagged" true
    (has V.Conservation
       (vs
          {
            r with
            Sim_result.finishes = List.map (fun (id, _) -> (id, 0.)) r.finishes;
            ccts = List.map (fun (id, _) -> (id, 0.)) r.ccts;
            makespan = 0.;
          }))

(* --- teardown accounting (obs counters) --- *)

let counter_pair () =
  ( Obs.Registry.counter_value (Obs.Registry.counter "sim.setups"),
    Obs.Registry.counter_value (Obs.Registry.counter "sim.teardowns") )

let test_teardowns_balance () =
  List.iter
    (fun carry_circuits ->
      Obs.Control.set_enabled true;
      let s0, t0 = counter_pair () in
      let r =
        Circuit_sim.run ~carry_circuits ~delta ~bandwidth:b (arrival_trace ())
      in
      let s1, t1 = counter_pair () in
      Obs.Control.set_enabled false;
      Alcotest.(check int)
        (Printf.sprintf "setups counter matches result (carry=%b)"
           carry_circuits)
        r.Sim_result.total_setups (s1 - s0);
      Alcotest.(check int)
        (Printf.sprintf "every setup torn down (carry=%b)" carry_circuits)
        (s1 - s0) (t1 - t0))
    [ true; false ]

let test_teardowns_zero_delta () =
  Obs.Control.set_enabled true;
  let s0, t0 = counter_pair () in
  ignore (Circuit_sim.run ~delta:0. ~bandwidth:b (arrival_trace ()));
  let s1, t1 = counter_pair () in
  Obs.Control.set_enabled false;
  Alcotest.(check int) "no setups at delta=0" 0 (s1 - s0);
  Alcotest.(check int) "no teardowns at delta=0" 0 (t1 - t0)

(* --- attribution conservation end-to-end --- *)

let test_attribution_conserves () =
  (* a real simulated run, attribution derived from its recorded
     windows: every Coflow's components must sum to its CCT and the
     whole trace must report zero violations *)
  let coflows = arrival_trace () in
  Obs.Control.set_enabled true;
  Obs.Attrib.clear ();
  Obs.Sampler.clear ();
  Obs.Timeline.clear ();
  let r = Circuit_sim.run ~delta ~bandwidth:b coflows in
  Obs.Control.set_enabled false;
  let breakdowns, vs = Check.Sim_check.attribution ~coflows r in
  Obs.Attrib.clear ();
  Obs.Sampler.clear ();
  Obs.Timeline.clear ();
  check_clean "attribution over the arrival trace" vs;
  Alcotest.(check int) "one breakdown per finished Coflow" 3
    (List.length breakdowns);
  List.iter
    (fun (bk : Obs.Attrib.breakdown) ->
      Alcotest.(check (float 1e-6))
        (Printf.sprintf "Coflow %d conserves" bk.Obs.Attrib.a_id)
        0.
        (Obs.Attrib.residual bk);
      Alcotest.(check bool)
        (Printf.sprintf "Coflow %d transfers" bk.Obs.Attrib.a_id)
        true
        (bk.Obs.Attrib.a_transfer > 0.))
    breakdowns

let test_attribution_via_oracle () =
  (* the fuzz harness's attribution leg on one deterministic trace *)
  let o =
    Check.Diff_oracle.replay ~check_attrib:true ~replan:`Incremental ~delta
      ~bandwidth:b ~n_ports:4 (arrival_trace ())
  in
  check_clean "oracle replay with check_attrib" o.Check.Diff_oracle.violations

(* --- differential oracle --- *)

let test_oracle_rejects_bad_input () =
  let c = Coflow.make ~id:0 (Demand.of_list [ ((0, 1), Units.mb 1.) ]) in
  let o = Check.Diff_oracle.replay ~delta:0. ~bandwidth:b ~n_ports:4 [ c ] in
  Alcotest.(check bool)
    "delta=0 rejected" true
    (has V.Rejected_plan o.Check.Diff_oracle.violations);
  let o =
    Check.Diff_oracle.replay ~delta ~bandwidth:b ~n_ports:4
      [ c; Coflow.make ~id:0 (Demand.of_list [ ((2, 3), Units.mb 1.) ]) ]
  in
  Alcotest.(check bool)
    "duplicate ids rejected" true
    (has V.Unknown_coflow o.Check.Diff_oracle.violations);
  let o = Check.Diff_oracle.replay ~delta ~bandwidth:b ~n_ports:1 [ c ] in
  Alcotest.(check bool)
    "port outside fabric rejected" true
    (has V.Unknown_coflow o.Check.Diff_oracle.violations)

let test_oracle_deterministic_trace () =
  let o =
    Check.Diff_oracle.replay ~delta ~bandwidth:b ~n_ports:4 (arrival_trace ())
  in
  check_clean "simple arrival trace" o.Check.Diff_oracle.violations;
  Alcotest.(check int) "all three compared" 3 o.Check.Diff_oracle.compared

let fuzz_case (name, delta, bandwidth, traces) =
  Alcotest.test_case name `Slow (fun () ->
      let s =
        Check.Diff_oracle.fuzz ~seed:11 ~traces ~n_ports:6 ~max_coflows:5
          ~span:1.2 ~max_mb:30. ~delta ~bandwidth ()
      in
      check_clean name s.Check.Diff_oracle.total_violations;
      Alcotest.(check bool)
        "compared something" true
        (s.Check.Diff_oracle.total_compared >= traces))

let suite =
  [
    Alcotest.test_case "validator clean across the grid" `Quick
      test_validator_clean_grid;
    Alcotest.test_case "corrupted plan: overlap" `Quick test_corrupt_overlap;
    Alcotest.test_case "corrupted plan: delta dropped" `Quick
      test_corrupt_delta_dropped;
    Alcotest.test_case "corrupted plan: under-service" `Quick
      test_corrupt_under_service;
    Alcotest.test_case "corrupted plan: preemption" `Quick
      test_corrupt_preemption;
    Alcotest.test_case "corrupted result fields" `Quick
      test_corrupt_result_fields;
    Alcotest.test_case "conservation: clean replay" `Quick
      test_conservation_clean;
    Alcotest.test_case "conservation: corrupted results" `Quick
      test_conservation_corrupted;
    Alcotest.test_case "setups and teardowns balance" `Quick
      test_teardowns_balance;
    Alcotest.test_case "zero delta, zero switching" `Quick
      test_teardowns_zero_delta;
    Alcotest.test_case "attribution conserves end-to-end" `Quick
      test_attribution_conserves;
    Alcotest.test_case "attribution rides the oracle replay" `Quick
      test_attribution_via_oracle;
    Alcotest.test_case "oracle rejects bad input" `Quick
      test_oracle_rejects_bad_input;
    Alcotest.test_case "oracle on a deterministic trace" `Quick
      test_oracle_deterministic_trace;
    fuzz_case ("oracle fuzz at 10ms/1Gbps", Units.ms 10., b, 40);
    fuzz_case ("oracle fuzz at 1ms/10Gbps", Units.ms 1., Units.gbps 10., 25);
    fuzz_case ("oracle fuzz at 100ms/1Gbps", Units.ms 100., b, 15);
  ]

module Deadline = Sunflow_core.Deadline
module Inter = Sunflow_core.Inter
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units

let b = Units.gbps 1.
let delta = Units.ms 10.

let mk id ?(arrival = 0.) flows = Coflow.make ~id ~arrival (Demand.of_list flows)

(* 10 MB on one circuit: 90 ms alone *)
let c1 = mk 1 [ ((0, 5), Units.mb 10.) ]
let c2 = mk 2 [ ((0, 6), Units.mb 10.) ]
let c3 = mk 3 [ ((0, 7), Units.mb 10.) ]

let deadline_table table (c : Coflow.t) = List.assoc c.Coflow.id table

let test_edf_ordering () =
  let deadline_of = deadline_table [ (1, 3.); (2, 1.); (3, 2.) ] in
  let sorted = Inter.sort (Deadline.edf ~deadline_of) ~bandwidth:b [ c1; c2; c3 ] in
  Alcotest.(check (list int)) "by deadline" [ 2; 3; 1 ]
    (List.map (fun c -> c.Coflow.id) sorted)

let test_admit_all_when_loose () =
  let deadline_of = deadline_table [ (1, 10.); (2, 10.); (3, 10.) ] in
  let a = Deadline.admit ~deadline_of ~delta ~bandwidth:b [ c1; c2; c3 ] in
  Alcotest.(check int) "all admitted" 3 (List.length a.Deadline.admitted);
  Alcotest.(check int) "none rejected" 0 (List.length a.Deadline.rejected);
  List.iter
    (fun (id, finish) ->
      if finish > deadline_of (mk id []) then
        Alcotest.failf "coflow %d misses its deadline" id)
    a.Deadline.admitted

let test_admission_rejects_overload () =
  (* all three share In 0; each needs 90 ms alone, so only the first
     two can fit a 200 ms deadline *)
  let deadline_of = deadline_table [ (1, 0.2); (2, 0.2); (3, 0.2) ] in
  let a = Deadline.admit ~deadline_of ~delta ~bandwidth:b [ c1; c2; c3 ] in
  Alcotest.(check int) "two admitted" 2 (List.length a.Deadline.admitted);
  (match a.Deadline.rejected with
  | [ (_, would_finish) ] ->
    Alcotest.(check bool) "rejection justified" true (would_finish > 0.2)
  | _ -> Alcotest.fail "exactly one rejection expected");
  (* admitted finishes hold *)
  List.iter
    (fun (_, finish) ->
      Alcotest.(check bool) "meets deadline" true (finish <= 0.2))
    a.Deadline.admitted

let test_rejection_leaves_no_trace () =
  (* a hopeless Coflow between two feasible ones must not consume
     port time *)
  let big = mk 9 [ ((0, 5), Units.gb 10.) ] in
  let deadline_of =
    deadline_table [ (1, 0.1); (9, 0.15); (2, 10.) ]
  in
  let a = Deadline.admit ~deadline_of ~delta ~bandwidth:b [ c1; big; c2 ] in
  Alcotest.(check (list int)) "big rejected" [ 9 ]
    (List.map fst a.Deadline.rejected);
  (* c2 gets the fabric right after c1, as if 'big' never existed *)
  Alcotest.(check bool) "c2 unharmed" true (List.assoc 2 a.Deadline.admitted <= 10.)

let prop_admitted_meet_deadlines =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"every admitted Coflow's plan meets its deadline" ~count:150
       QCheck2.Gen.(
         list_size (int_range 1 6)
           (pair (Util.Gen.coflow ~n_ports:5 ()) (float_range 0.05 2.)))
       (fun entries ->
         let coflows = List.mapi (fun i (c, _) -> { c with Coflow.id = i }) entries in
         let deadlines = List.mapi (fun i (_, d) -> (i, d)) entries in
         let deadline_of (c : Coflow.t) = List.assoc c.id deadlines in
         let a = Deadline.admit ~deadline_of ~delta ~bandwidth:b coflows in
         List.for_all
           (fun (id, finish) -> finish <= List.assoc id deadlines +. 1e-12)
           a.Deadline.admitted
         && List.length a.Deadline.admitted + List.length a.Deadline.rejected
            = List.length coflows))

(* --- schedule-once admit against the old copy-trial path --- *)

module Prt = Sunflow_core.Prt
module Sunflow = Sunflow_core.Sunflow
module Order = Sunflow_core.Order

(* The pre-journal implementation: schedule each candidate on a deep
   copy of the table, then schedule it AGAIN on the real table when it
   passes — two [Sunflow.schedule] calls per admitted Coflow. Kept here
   as the equivalence oracle for the checkpoint/rollback path. *)
let admit_copy_path ~deadline_of ~delta ~bandwidth coflows =
  let ordered = Inter.sort (Deadline.edf ~deadline_of) ~bandwidth coflows in
  let prt = Prt.create () in
  let admitted = ref [] and rejected = ref [] in
  List.iter
    (fun (c : Coflow.t) ->
      let trial =
        Sunflow.schedule ~prt:(Prt.copy prt) ~now:0. ~order:Order.Ordered_port
          ~delta ~bandwidth c
      in
      if trial.Sunflow.finish <= deadline_of c then begin
        let plan =
          Sunflow.schedule ~prt ~now:0. ~order:Order.Ordered_port ~delta
            ~bandwidth c
        in
        admitted := (c.Coflow.id, plan.Sunflow.finish) :: !admitted
      end
      else rejected := (c.Coflow.id, trial.Sunflow.finish) :: !rejected)
    ordered;
  let sorted l = List.sort (fun (a, _) (x, _) -> compare a x) l in
  (sorted !admitted, sorted !rejected, prt)

let prop_equals_copy_path =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"admit == old copy-trial path, bit for bit" ~count:150
       QCheck2.Gen.(
         list_size (int_range 1 6)
           (pair (Util.Gen.coflow ~n_ports:5 ()) (float_range 0.05 2.)))
       (fun entries ->
         let coflows = List.mapi (fun i (c, _) -> { c with Coflow.id = i }) entries in
         let deadlines = List.mapi (fun i (_, d) -> (i, d)) entries in
         let deadline_of (c : Coflow.t) = List.assoc c.id deadlines in
         let a = Deadline.admit ~deadline_of ~delta ~bandwidth:b coflows in
         let adm, rej, prt_old =
           admit_copy_path ~deadline_of ~delta ~bandwidth:b coflows
         in
         (* same admit/reject sets with exactly equal finish floats, and
            the same reservation table afterwards *)
         a.Deadline.admitted = adm && a.Deadline.rejected = rej
         && Prt.all_reservations a.Deadline.prt = Prt.all_reservations prt_old))

let test_rejection_prt_byte_identical () =
  (* a run with a hopeless Coflow in the middle leaves the very same
     table — windows AND undo journal — as the run without it *)
  let big = mk 9 [ ((0, 5), Units.gb 10.) ] in
  let with_big =
    Deadline.admit
      ~deadline_of:(deadline_table [ (1, 0.1); (9, 0.15); (2, 10.) ])
      ~delta ~bandwidth:b [ c1; big; c2 ]
  in
  let without =
    Deadline.admit
      ~deadline_of:(deadline_table [ (1, 0.1); (2, 10.) ])
      ~delta ~bandwidth:b [ c1; c2 ]
  in
  Alcotest.(check (list int)) "big rejected" [ 9 ]
    (List.map fst with_big.Deadline.rejected);
  Alcotest.(check bool) "identical reservations" true
    (Prt.all_reservations with_big.Deadline.prt
    = Prt.all_reservations without.Deadline.prt);
  Alcotest.(check int) "identical undo journal"
    (Prt.journal_length without.Deadline.prt)
    (Prt.journal_length with_big.Deadline.prt)

let test_single_schedule_per_coflow () =
  (* the reservation counter must move exactly as much as scheduling
     each Coflow once on one shared table — the copy-trial path moved
     it roughly twice as far *)
  let deadline_of = deadline_table [ (1, 10.); (2, 10.); (3, 10.) ] in
  let reserves f =
    let s0 = Prt.stats () in
    f ();
    let s1 = Prt.stats () in
    s1.Prt.reservations - s0.Prt.reservations
  in
  let baseline =
    reserves (fun () ->
        let prt = Prt.create () in
        List.iter
          (fun c ->
            ignore
              (Sunflow.schedule ~prt ~now:0. ~order:Order.Ordered_port ~delta
                 ~bandwidth:b c))
          [ c1; c2; c3 ])
  in
  let admit_cost =
    reserves (fun () ->
        ignore (Deadline.admit ~deadline_of ~delta ~bandwidth:b [ c1; c2; c3 ]))
  in
  let copy_cost =
    reserves (fun () ->
        ignore (admit_copy_path ~deadline_of ~delta ~bandwidth:b [ c1; c2; c3 ]))
  in
  Alcotest.(check int) "one schedule per Coflow" baseline admit_cost;
  Alcotest.(check bool) "old path double-scheduled" true (copy_cost > admit_cost)

let suite =
  [
    Alcotest.test_case "edf ordering" `Quick test_edf_ordering;
    Alcotest.test_case "admit all when loose" `Quick test_admit_all_when_loose;
    Alcotest.test_case "admission rejects overload" `Quick
      test_admission_rejects_overload;
    Alcotest.test_case "rejection leaves no trace" `Quick
      test_rejection_leaves_no_trace;
    prop_admitted_meet_deadlines;
    prop_equals_copy_path;
    Alcotest.test_case "rejection leaves PRT byte-identical" `Quick
      test_rejection_prt_byte_identical;
    Alcotest.test_case "single schedule per admitted Coflow" `Quick
      test_single_schedule_per_coflow;
  ]

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Plan_cache = Sunflow_core.Plan_cache
module Prt = Sunflow_core.Prt
module Sunflow = Sunflow_core.Sunflow
module Units = Sunflow_core.Units

let delta = Units.ms 10.
let bandwidth = Units.gbps 1.

let coflow id =
  let d = Demand.create () in
  Demand.set d 0 1 (Units.mb 20.);
  Demand.set d 1 2 (Units.mb 5.);
  Demand.set d 2 0 (Units.mb 12.);
  Coflow.make ~id ~arrival:0. d

(* The cache's unit of reuse is the cross-run replay: a later run of
   the same workload presents a fresh table whose footprint marks
   evolved identically (epochs included), so the stored plan replays
   verbatim. Within one table the kernel's own reserves advance the
   footprint epochs past the stored snapshot, so a same-table repeat
   is an invalidation, never a false hit. *)
let test_hit_across_fresh_tables () =
  let cache = Plan_cache.create () in
  let c = coflow 0 in
  let prt1 = Prt.create () in
  let r1 = Sunflow.schedule ~prt:prt1 ~cache ~delta ~bandwidth c in
  let s = Plan_cache.stats cache in
  Alcotest.(check (pair int int)) "first run misses" (0, 1)
    (s.Plan_cache.hits, s.misses);
  let prt2 = Prt.create () in
  let r2 = Sunflow.schedule ~prt:prt2 ~cache ~delta ~bandwidth c in
  let s = Plan_cache.stats cache in
  Alcotest.(check (pair int int)) "second run hits" (1, 1)
    (s.Plan_cache.hits, s.misses);
  Alcotest.(check int) "replayed every window"
    (List.length r1.Sunflow.reservations)
    s.Plan_cache.replayed_windows;
  Alcotest.(check bool) "results bit-identical" true (r1 = r2);
  Alcotest.(check bool) "tables bit-identical" true
    (Prt.all_reservations prt1 = Prt.all_reservations prt2)

let test_footprint_invalidation () =
  let cache = Plan_cache.create () in
  let c = coflow 0 in
  ignore (Sunflow.schedule ~prt:(Prt.create ()) ~cache ~delta ~bandwidth c);
  (* a foreign window on a footprint port at replay time: stale marks,
     the kernel must re-run — and schedule around the intruder *)
  let prt = Prt.create () in
  let blocker =
    { Prt.coflow = 99; src = 0; dst = 1; start = 0.; setup = 0.; length = 0.05 }
  in
  Prt.reserve prt blocker;
  let oracle = Prt.copy prt in
  let rc = Sunflow.schedule ~prt ~cache ~delta ~bandwidth c in
  let ro = Sunflow.schedule ~prt:oracle ~delta ~bandwidth c in
  let s = Plan_cache.stats cache in
  Alcotest.(check int) "stale marks counted" 1 s.Plan_cache.invalidations;
  Alcotest.(check int) "no false hit" 0 s.Plan_cache.hits;
  Alcotest.(check bool) "re-run matches the bare kernel" true (rc = ro);
  (* an off-footprint window changes nothing the plan depends on: a
     table differing only outside the footprint still replays (fresh
     handle — the miss above refreshed the old entry's snapshot to the
     blocked table's marks) *)
  let cache2 = Plan_cache.create () in
  let r_cold = Sunflow.schedule ~prt:(Prt.create ()) ~cache:cache2 ~delta
      ~bandwidth c
  in
  let prt = Prt.create () in
  Prt.reserve prt
    { Prt.coflow = 99; src = 7; dst = 8; start = 0.; setup = 0.; length = 1. };
  let rc2 = Sunflow.schedule ~prt ~cache:cache2 ~delta ~bandwidth c in
  let s2 = Plan_cache.stats cache2 in
  Alcotest.(check int) "off-footprint load still hits" 1 s2.Plan_cache.hits;
  Alcotest.(check bool) "replay result unchanged" true (rc2 = r_cold)

let test_eviction_bound () =
  let cache = Plan_cache.create ~max_windows:10 () in
  for id = 0 to 19 do
    ignore
      (Sunflow.schedule ~prt:(Prt.create ()) ~cache ~delta ~bandwidth
         (coflow id))
  done;
  let s = Plan_cache.stats cache in
  Alcotest.(check bool) "resident windows bounded" true
    (s.Plan_cache.windows + s.entries <= 10);
  Alcotest.(check bool) "something evicted" true (s.entries < 20)

(* Random interleavings of {schedule, foreign reserve on/off the
   footprint, retract, checkpoint/rollback}, run twice on one cache
   handle: pass 1 against a fresh table populates, pass 2 against
   another fresh table replays wherever the (deterministic) mutation
   history matches. Every schedule, in both passes, must be
   bit-identical — result and table — to the bare kernel run on a
   deep copy of the same table. *)
let prop_cache_vs_fresh_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"cached schedule bit-identical to the fresh kernel under mixed \
              mutations"
       ~count:120
       QCheck2.Gen.(
         list_size (int_range 6 40) (pair (int_range 0 3) (int_range 0 999)))
       (fun ops ->
         let cache = Plan_cache.create () in
         let mk_coflow id salt =
           let d = Demand.create () in
           for k = 0 to salt mod 3 do
             Demand.set d
               ((salt + k) mod 4)
               ((salt + (2 * k) + 1) mod 4)
               (Units.mb (float_of_int (1 + ((salt * (k + 3)) mod 20))))
           done;
           Coflow.make ~id ~arrival:0. d
         in
         let run_pass () =
           let prt = Prt.create () in
           let cp = ref None in
           let ok = ref true in
           List.iter
             (fun (op, salt) ->
               match op with
               | 0 ->
                 let id = salt mod 3 in
                 ignore (Prt.retract_coflow prt id : int);
                 let c = mk_coflow id (salt mod 7) in
                 let now = float_of_int (salt mod 3) in
                 let oracle = Prt.copy prt in
                 let rc =
                   Sunflow.schedule ~prt ~cache ~now ~delta ~bandwidth c
                 in
                 let ro = Sunflow.schedule ~prt:oracle ~now ~delta ~bandwidth c in
                 if
                   rc <> ro
                   || Prt.all_reservations prt <> Prt.all_reservations oracle
                 then ok := false
               | 1 ->
                 (try
                    Prt.reserve prt
                      {
                        Prt.coflow = 999;
                        src = salt mod 5;
                        dst = salt / 5 mod 5;
                        start = float_of_int (salt mod 50) /. 4.;
                        setup = 0.;
                        length = 0.5 +. float_of_int (salt mod 4);
                      }
                  with Invalid_argument _ -> ())
               | 2 -> ignore (Prt.retract_coflow prt (salt mod 4) : int)
               | _ -> (
                 match !cp with
                 | None -> cp := Some (Prt.checkpoint prt)
                 | Some c0 ->
                   Prt.rollback prt c0;
                   cp := None))
             ops;
           !ok
         in
         run_pass () && run_pass ()))

(* The schedule kernel's scratch arena lives on past the call (that is
   the point: zero steady-state allocation). It must not pin what the
   call produced — every arena slot that held a reservation or a wake
   entry is cleared to a dummy before returning, including the slot
   vacated by each heap pop. Mirrors the engine's no-GC-pinning test
   from the incremental PR. Runs without a cache: a cache retains
   plans by design. *)
let test_arena_no_pinning () =
  let n_weak = 8 in
  let weak_c : Coflow.t Weak.t = Weak.create 1 in
  let weak_r : Prt.reservation Weak.t = Weak.create n_weak in
  let () =
    let c = coflow 0 in
    Weak.set weak_c 0 (Some c);
    let res = Sunflow.schedule ~delta ~bandwidth c in
    List.iteri
      (fun i r -> if i < n_weak then Weak.set weak_r i (Some r))
      res.Sunflow.reservations
  in
  Gc.full_major ();
  Gc.full_major ();
  Alcotest.(check bool) "Coflow collected" false (Weak.check weak_c 0);
  for i = 0 to n_weak - 1 do
    Alcotest.(check bool)
      (Printf.sprintf "reservation %d collected" i)
      false (Weak.check weak_r i)
  done

let suite =
  [
    Alcotest.test_case "hit across fresh tables" `Quick
      test_hit_across_fresh_tables;
    Alcotest.test_case "footprint invalidation" `Quick
      test_footprint_invalidation;
    Alcotest.test_case "eviction bound" `Quick test_eviction_bound;
    Alcotest.test_case "arena pins nothing after return" `Quick
      test_arena_no_pinning;
    prop_cache_vs_fresh_oracle;
  ]

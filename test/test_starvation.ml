module Guard = Sunflow_core.Starvation_guard
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units

let b = Units.gbps 1.
let delta = Units.ms 10.

let test_round_robin_assignments () =
  let n = 5 in
  (* each A_k is a perfect matching *)
  for k = 0 to n - 1 do
    let pairs = Guard.round_robin_assignment ~n_ports:n ~k in
    Alcotest.(check bool)
      (Printf.sprintf "A_%d is a matching" k)
      true
      (Sunflow_baselines.Assignment.is_matching pairs);
    Alcotest.(check int) "covers all inputs" n (List.length pairs)
  done;
  (* the union of A_0 .. A_(n-1) covers all n^2 circuits *)
  let all =
    List.concat_map
      (fun k -> Guard.round_robin_assignment ~n_ports:n ~k)
      (List.init n Fun.id)
  in
  Alcotest.(check int) "full coverage" (n * n)
    (List.length (List.sort_uniq compare all));
  (* k wraps around *)
  Alcotest.(check (list (pair int int)))
    "wrap"
    (Guard.round_robin_assignment ~n_ports:n ~k:1)
    (Guard.round_robin_assignment ~n_ports:n ~k:(n + 1))

let config = { Guard.n_ports = 4; t_work = 1.; tau = 0.1 }

let test_check () =
  (match Guard.check config ~delta with
  | Ok () -> ()
  | Error e -> Alcotest.fail e);
  (match Guard.check { config with tau = 0.001 } ~delta with
  | Ok () -> Alcotest.fail "tau <= delta accepted"
  | Error _ -> ());
  match Guard.check { config with t_work = 0.01 } ~delta with
  | Ok () -> Alcotest.fail "T < tau accepted"
  | Error _ -> ()

let test_guaranteed_period () =
  Util.check_close "N (T + tau)" 4.4 (Guard.guaranteed_service_period config)

let test_starved_coflow_progresses () =
  (* an adversarial prioritized Coflow hogs circuit (0, 1) forever-ish;
     the starved Coflow on the same circuit still drains within a few
     guard periods *)
  let hog = Coflow.make ~id:0 (Demand.of_list [ ((0, 1), Units.gb 100.) ]) in
  let victim = Coflow.make ~id:1 (Demand.of_list [ ((0, 1), Units.mb 5.) ]) in
  let horizon = 10. *. Guard.guaranteed_service_period config in
  let o =
    Guard.run ~delta ~bandwidth:b ~horizon ~prioritized:[ hog ]
      ~starved:[ victim ] config
  in
  match List.assoc_opt 1 o.Guard.finishes with
  | Some t ->
    Alcotest.(check bool) "drained within horizon" true (t <= horizon);
    (* the victim needs ~0.04 s of service; each cycle's tau interval
       gives it up to (tau - delta)/2 = 45 ms on its circuit when the
       rotation lands on (0,1), i.e. once per N cycles *)
    Alcotest.(check bool) "within a few guard periods" true
      (t <= 3. *. Guard.guaranteed_service_period config)
  | None -> Alcotest.fail "starved Coflow never served"

let test_prioritized_unharmed () =
  (* without competition, a prioritized Coflow finishes roughly at its
     solo speed, paying only the tau interruptions *)
  let c = Coflow.make ~id:0 (Demand.of_list [ ((0, 1), Units.mb 50.) ]) in
  let o =
    Guard.run ~delta ~bandwidth:b ~horizon:100. ~prioritized:[ c ] ~starved:[]
      config
  in
  match List.assoc_opt 0 o.Guard.finishes with
  | Some t ->
    (* solo time is 0.41 s; it must finish within the first work phase *)
    Alcotest.(check bool) "fast finish" true (t <= 1.)
  | None -> Alcotest.fail "prioritized Coflow not served"

let test_both_classes_complete () =
  let mk id flows = Coflow.make ~id (Demand.of_list flows) in
  let prioritized =
    [ mk 0 [ ((0, 1), Units.mb 20.) ]; mk 1 [ ((2, 3), Units.mb 10.) ] ]
  in
  let starved = [ mk 2 [ ((0, 1), Units.mb 3.) ]; mk 3 [ ((1, 2), Units.mb 3.) ] ] in
  let o =
    Guard.run ~delta ~bandwidth:b ~horizon:60. ~prioritized ~starved config
  in
  Alcotest.(check int) "all four drained" 4 (List.length o.Guard.finishes)

(* Regression: the work phase used to record a Coflow's finish at the
   stop of whichever reservation the PRT iteration happened to visit
   last, so a short parallel circuit visited after the long one
   stamped the finish early. The finish must be the latest draining
   instant — for a lone prioritized Coflow inside the first work
   phase, exactly the intra-Sunflow completion time. *)
let test_work_phase_finish_exact () =
  let wide = { Guard.n_ports = 8; t_work = 2.; tau = 0.1 } in
  let circuits = [ (0, 4); (1, 5); (2, 6); (3, 7) ] in
  let check_one name flows =
    let c = Coflow.make ~id:0 (Demand.of_list flows) in
    let expected =
      (Sunflow_core.Sunflow.schedule ~delta ~bandwidth:b c).Sunflow_core.Sunflow.finish
    in
    let o =
      Guard.run ~delta ~bandwidth:b ~horizon:20. ~prioritized:[ c ] ~starved:[]
        wide
    in
    match List.assoc_opt 0 o.Guard.finishes with
    | Some t ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: finish %.6f = plan %.6f" name t expected)
        true
        (Float.abs (t -. expected) <= 1e-9)
    | None -> Alcotest.fail (name ^ ": never finished")
  in
  (* deterministic: 0.4 s and 0.1 s circuits in parallel; recording
     the short circuit's stop would report 0.11 instead of 0.41 *)
  check_one "two parallel circuits"
    [ ((0, 4), Units.mb 50.); ((1, 5), Units.mb 12.5) ];
  (* randomized shapes: up to four parallel circuits of random length *)
  let rng = Sunflow_stats.Rng.create 42 in
  for i = 1 to 25 do
    let n = 2 + Sunflow_stats.Rng.int rng 3 in
    let flows =
      List.filteri (fun k _ -> k < n) circuits
      |> List.map (fun circ ->
             (circ, Units.mb (1. +. Sunflow_stats.Rng.float rng 20.)))
    in
    check_one (Printf.sprintf "random shape %d" i) flows
  done

let test_validation () =
  let c = Coflow.make ~id:0 (Demand.of_list [ ((9, 1), 1.) ]) in
  Alcotest.check_raises "port outside fabric"
    (Invalid_argument "Starvation_guard.run: port outside the fabric")
    (fun () ->
      ignore
        (Guard.run ~delta ~bandwidth:b ~horizon:1. ~prioritized:[ c ]
           ~starved:[] config))

let suite =
  [
    Alcotest.test_case "round-robin assignments" `Quick
      test_round_robin_assignments;
    Alcotest.test_case "config check" `Quick test_check;
    Alcotest.test_case "guaranteed period" `Quick test_guaranteed_period;
    Alcotest.test_case "starved coflow progresses" `Quick
      test_starved_coflow_progresses;
    Alcotest.test_case "prioritized unharmed" `Quick test_prioritized_unharmed;
    Alcotest.test_case "both classes complete" `Quick
      test_both_classes_complete;
    Alcotest.test_case "work-phase finish is the latest drain" `Quick
      test_work_phase_finish_exact;
    Alcotest.test_case "validation" `Quick test_validation;
  ]

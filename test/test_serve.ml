(* The streaming serving loop: bit-identity with the batch incremental
   replay, bounded-memory soak over 100k synthetic arrivals, GC
   collectability of retired Coflows, and deadline admission with
   typed rejections. *)

module Serve = Sunflow_serve.Serve
module Circuit_sim = Sunflow_sim.Circuit_sim
module Sim_result = Sunflow_sim.Sim_result
module Sim_check = Sunflow_check.Sim_check
module Violation = Sunflow_check.Violation
module Synthetic = Sunflow_trace.Synthetic
module Trace = Sunflow_trace.Trace
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units
module Bounds = Sunflow_core.Bounds

let b = Units.gbps 1.
let delta = Units.ms 10.

let stream_of_list coflows =
  let rest = ref coflows in
  fun () ->
    match !rest with
    | [] -> None
    | c :: tl ->
      rest := tl;
      Some c

let by_id l = List.sort (fun (a, _) (x, _) -> compare a x) l

(* --- without deadlines, serve is the batch `Incremental replay fed
   lazily: same ccts, finishes, makespan, setups — bit for bit --- *)

let test_matches_incremental_replay () =
  let trace =
    Synthetic.generate
      { Synthetic.default_params with seed = 11; n_coflows = 120; span = 400. }
  in
  List.iter
    (fun (buckets, shards) ->
      let batch =
        Circuit_sim.run ~replan:`Incremental ~buckets ~shards ~delta
          ~bandwidth:b trace.Trace.coflows
      in
      let ccts = ref [] and finishes = ref [] in
      let stats =
        Serve.run ~buckets ~shards ~delta ~bandwidth:b
          ~on_finish:(fun ~id ~t ~cct ->
            ccts := (id, cct) :: !ccts;
            finishes := (id, t) :: !finishes)
          (stream_of_list trace.Trace.coflows)
      in
      let label fmt =
        Printf.ksprintf
          (fun s -> Printf.sprintf "buckets=%d shards=%d: %s" buckets shards s)
          fmt
      in
      Alcotest.(check bool)
        (label "ccts bit-identical") true
        (by_id !ccts = by_id batch.Sim_result.ccts);
      Alcotest.(check bool)
        (label "finishes bit-identical") true
        (by_id !finishes = by_id batch.Sim_result.finishes);
      Alcotest.(check bool)
        (label "makespan") true
        (stats.Serve.makespan = batch.Sim_result.makespan);
      Alcotest.(check int) (label "setups") batch.Sim_result.total_setups
        stats.Serve.setups;
      Alcotest.(check int) (label "all admitted") 120 stats.Serve.admitted;
      Alcotest.(check int) (label "all completed") 120 stats.Serve.completed)
    [ (0, 1); (4, 1); (0, 4) ]

(* --- soak: 100k synthetic arrivals at the generator's default load.
   Live engine entries track the active set (orders of magnitude below
   the stream length) and the PRT undo journal never survives a
   step --- *)

let test_soak_bounded_memory () =
  let n = 100_000 in
  let trace =
    Synthetic.generate
      {
        Synthetic.default_params with
        seed = 7;
        n_coflows = n;
        (* keep the default offered load: 526 Coflows / 3600 s *)
        span = 3600. *. float_of_int n /. 526.;
      }
  in
  let stats = Serve.run ~delta ~bandwidth:b (stream_of_list trace.Trace.coflows) in
  Alcotest.(check int) "all arrivals pulled" n stats.Serve.arrivals;
  Alcotest.(check int) "accounting conserved" n
    (stats.Serve.admitted + stats.Serve.rejected);
  Alcotest.(check int) "all completed" stats.Serve.admitted
    stats.Serve.completed;
  (* the bound that makes serving mode bounded-memory: resident engine
     entries stay at active-set scale, not stream scale *)
  Alcotest.(check bool)
    (Printf.sprintf "live entries bounded (max %d)" stats.Serve.max_live)
    true
    (stats.Serve.max_live < n / 100);
  Alcotest.(check int) "undo journal never outlives a step" 0
    stats.Serve.max_journal

(* --- a retired Coflow's demand matrix is collectable while the loop
   (and its engine) is still running: PR 6's Weak-pointer pattern at
   the serve layer --- *)

let test_retired_demand_collectable () =
  let n = 16 in
  let barrier_id = n in
  let weak = Weak.create n in
  let leaked = ref (-1) in
  let stream =
    let i = ref 0 in
    fun () ->
      if !i > barrier_id then None
      else begin
        let k = !i in
        incr i;
        if k = barrier_id then begin
          (* arrives long after the first [n] finished; admitting it
             forces the engine step that retires their entries *)
          let d = Demand.create () in
          Demand.set d 0 8 (Units.mb 1.);
          Some (Coflow.make ~id:barrier_id ~arrival:1000. d)
        end
        else begin
          let d = Demand.create () in
          Demand.set d (k mod 4) (4 + (k mod 4)) (Units.mb 2.);
          let c = Coflow.make ~id:k ~arrival:(0.001 *. float_of_int k) d in
          Weak.set weak k (Some c);
          Some c
        end
      end
  in
  let stats =
    Serve.run ~delta ~bandwidth:b
      ~on_finish:(fun ~id ~t:_ ~cct:_ ->
        if id = barrier_id then begin
          (* mid-run: the engine is live, the first [n] are retired and
             nothing else may pin them *)
          Gc.full_major ();
          Gc.full_major ();
          leaked := 0;
          for i = 0 to n - 1 do
            if Weak.check weak i then incr leaked
          done
        end)
      stream
  in
  Alcotest.(check int) "all completed" (n + 1) stats.Serve.completed;
  Alcotest.(check int) "retired Coflows collected mid-run" 0 !leaked

(* --- deadline admission: typed rejections, instant completions, and
   the admitted-plans-meet-deadlines guarantee --- *)

let test_reject_reasons () =
  let mk id arrival flows = Coflow.make ~id ~arrival (Demand.of_list flows) in
  let feasible = mk 0 0. [ ((0, 8), Units.mb 5.) ] in
  let born_dead = mk 1 0. [ ((1, 9), Units.mb 5.) ] in
  let hopeless = mk 2 0.001 [ ((2, 8), Units.gb 10.) ] in
  let empty = Coflow.make ~id:3 ~arrival:0.002 (Demand.create ()) in
  let deadlines = [ (0, 10.); (1, 0.); (2, 0.05); (3, 10.) ] in
  let deadline_of (c : Coflow.t) = List.assoc c.Coflow.id deadlines in
  let admitted = ref [] and rejected = ref [] in
  let stats =
    Serve.run ~deadline_of ~delta ~bandwidth:b
      ~on_admit:(fun c ~finish -> admitted := (c.Coflow.id, finish) :: !admitted)
      ~on_reject:(fun c r -> rejected := (c.Coflow.id, r) :: !rejected)
      (stream_of_list [ feasible; born_dead; hopeless; empty ])
  in
  Alcotest.(check (list int)) "admitted ids" [ 0; 3 ]
    (List.map fst (by_id !admitted));
  List.iter
    (fun (id, finish) ->
      Alcotest.(check bool)
        (Printf.sprintf "admitted %d meets deadline" id)
        true
        (finish <= List.assoc id deadlines))
    !admitted;
  (match List.sort compare !rejected with
  | [ (1, Serve.Expired { deadline }); (2, Serve.Deadline_miss miss) ] ->
    Alcotest.(check bool) "expired deadline carried" true (deadline = 0.);
    Alcotest.(check bool) "miss is justified" true
      (miss.finish > miss.deadline && miss.deadline = 0.05)
  | _ -> Alcotest.fail "expected one Expired and one Deadline_miss");
  Alcotest.(check int) "arrivals" 4 stats.Serve.arrivals;
  Alcotest.(check int) "admitted" 2 stats.Serve.admitted;
  Alcotest.(check int) "rejected" 2 stats.Serve.rejected;
  Alcotest.(check int) "completed" 2 stats.Serve.completed

(* --- the admitted subset of a deadline-mode run passes the full
   conservation check: every admitted byte is delivered, finishes and
   ccts consistent --- *)

let test_conservation_on_admitted_subset () =
  let trace =
    Synthetic.generate
      { Synthetic.default_params with seed = 23; n_coflows = 150; span = 500. }
  in
  let deadline_of (c : Coflow.t) =
    (* tight enough to force some rejections under contention *)
    c.Coflow.arrival +. (3. *. Bounds.circuit_lower ~bandwidth:b ~delta c.demand)
  in
  let kept = ref [] and ccts = ref [] and finishes = ref [] in
  let stats =
    Serve.run ~deadline_of ~delta ~bandwidth:b
      ~on_admit:(fun c ~finish:_ -> kept := c :: !kept)
      ~on_finish:(fun ~id ~t ~cct ->
        finishes := (id, t) :: !finishes;
        ccts := (id, cct) :: !ccts)
      (stream_of_list trace.Trace.coflows)
  in
  Alcotest.(check int) "accounting conserved" 150
    (stats.Serve.admitted + stats.Serve.rejected);
  Alcotest.(check bool) "some rejections happened" true (stats.Serve.rejected > 0);
  Alcotest.(check bool) "most admitted" true (stats.Serve.admitted > 100);
  let result =
    {
      Sim_result.ccts = by_id !ccts;
      finishes = by_id !finishes;
      makespan = stats.Serve.makespan;
      n_events = stats.Serve.events;
      total_setups = stats.Serve.setups;
    }
  in
  let vs = Sim_check.result ~bandwidth:b ~coflows:!kept result in
  Alcotest.(check string) "conservation clean" ""
    (String.concat "; " (List.map (fun (v : Violation.t) -> v.Violation.message) vs))

let suite =
  [
    Alcotest.test_case "matches the batch incremental replay" `Quick
      test_matches_incremental_replay;
    Alcotest.test_case "soak: 100k arrivals, bounded memory" `Slow
      test_soak_bounded_memory;
    Alcotest.test_case "retired demand is collectable" `Quick
      test_retired_demand_collectable;
    Alcotest.test_case "typed reject reasons" `Quick test_reject_reasons;
    Alcotest.test_case "conservation on the admitted subset" `Quick
      test_conservation_on_admitted_subset;
  ]

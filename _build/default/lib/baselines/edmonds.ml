module Dense = Sunflow_matching.Dense
module Hungarian = Sunflow_matching.Hungarian
module Demand = Sunflow_core.Demand

let default_slot = 0.3

let assignments ?(slot = default_slot) ?(adaptive = false) ~bandwidth demand =
  if bandwidth <= 0. then invalid_arg "Edmonds.assignments: bandwidth <= 0";
  if slot <= 0. then invalid_arg "Edmonds.assignments: non-positive slot";
  if Demand.is_empty demand then []
  else begin
    let ports, m_bytes = Demand.to_dense demand in
    let work = Array.map (Array.map (fun b -> b /. bandwidth)) m_bytes in
    let out = ref [] in
    let eps = 1e-12 in
    let continue_ = ref (Dense.total work > eps) in
    while !continue_ do
      let matched = Hungarian.max_weight_matching work in
      match matched with
      | [] -> continue_ := false
      | _ ->
        let duration =
          if adaptive then begin
            (* shrink the slot when every matched circuit finishes early *)
            let needed =
              List.fold_left
                (fun acc (a, b) -> Float.max acc work.(a).(b))
                0. matched
            in
            Float.min slot needed
          end
          else slot
        in
        let pairs = List.map (fun (a, b) -> (ports.(a), ports.(b))) matched in
        out := Assignment.make ~pairs ~duration :: !out;
        List.iter
          (fun (a, b) ->
            let v = work.(a).(b) -. duration in
            work.(a).(b) <- (if v < eps then 0. else v))
          matched;
        if Dense.total work <= eps then continue_ := false
    done;
    List.rev !out
  end

let schedule ?slot ?adaptive ~delta ~bandwidth (coflow : Sunflow_core.Coflow.t) =
  let plan = assignments ?slot ?adaptive ~bandwidth coflow.demand in
  let demand_time =
    List.map
      (fun (pair, bytes) -> (pair, bytes /. bandwidth))
      (Demand.entries coflow.demand)
  in
  Executor.run ~delta ~demand_time plan

(** Solstice (Liu et al., CoNEXT 2015), the strongest prior circuit
    scheduler (paper §3.1.1) and the intra-Coflow baseline of the
    evaluation.

    Solstice stuffs the demand matrix to equal line sums, then
    repeatedly extracts perfect matchings whose edges all carry at
    least a threshold [r], halving [r] when no such matching exists.
    Large chunks of demand are covered by long assignments first, the
    long tail by progressively shorter ones — which is exactly where
    the reconfiguration overhead piles up once demand is
    application-scale (the paper's Fig. 3/5 observation).

    To make the threshold cascade terminate exactly, demand is first
    quantised up onto an integer lattice (the largest entry becomes
    {!quantization_steps} quanta), mirroring Solstice's own rounding-up
    of demand; stuffing and extraction then run in exact integer
    arithmetic. *)

val quantization_steps : int
(** Lattice resolution: the largest demand entry becomes this many
    quanta; every other entry is rounded up to whole quanta. *)

val assignments : bandwidth:float -> Sunflow_core.Demand.t -> Assignment.t list
(** The assignment sequence (durations in processing-time seconds) for
    one Coflow demand. Total scheduled time per circuit covers the
    (quantised, stuffed) demand exactly. Empty demand yields []. *)

val schedule :
  delta:float -> bandwidth:float -> Sunflow_core.Coflow.t -> Executor.outcome
(** Schedule and execute on the not-all-stop switch; see {!Executor}. *)

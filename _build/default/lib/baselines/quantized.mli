(** Integer-quantum demand matrices.

    Solstice and TMS both need exact arithmetic: their stuffing and
    decomposition loops terminate by driving entries to exactly zero,
    which floating point cannot guarantee. Both therefore quantise the
    demand onto an integer lattice first — each entry becomes a count
    of quanta (rounded up, as Solstice itself rounds demand up) — and
    decompose in exact integer arithmetic. *)

type t = {
  ports : int array;  (** dense index -> fabric port id *)
  units : int array array;  (** demand in quanta, square over [ports] *)
  quantum : float;  (** seconds of processing time per quantum *)
}

val of_demand :
  bandwidth:float -> steps:int -> Sunflow_core.Demand.t -> t option
(** Quantise a demand's processing-time matrix so the largest entry is
    [steps] quanta. [None] on an empty demand. Raises
    [Invalid_argument] on non-positive [bandwidth] or [steps]. *)

val stuff : t -> t
(** Equalise all row and column sums to the largest line sum by adding
    dummy quanta (exact integer stuffing; the result satisfies
    {!is_balanced}). *)

val is_balanced : t -> bool

val max_entry : t -> int
val total : t -> int

val row_sums : t -> int array
val col_sums : t -> int array

val perfect_matching_at_least : t -> int -> (int * int) list option
(** A perfect matching (over the dense index space) among entries
    [>= threshold] quanta, if one exists. *)

val subtract_matching : t -> (int * int) list -> int -> unit
(** Remove [w] quanta from each matched entry in place. Raises
    [Invalid_argument] if an entry would go negative. *)

val to_pairs : t -> (int * int) list -> (int * int) list
(** Map dense-index pairs back to fabric port ids. *)

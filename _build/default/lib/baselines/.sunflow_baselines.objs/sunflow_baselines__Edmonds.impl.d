lib/baselines/edmonds.ml: Array Assignment Executor Float List Sunflow_core Sunflow_matching

lib/baselines/assignment.mli: Format

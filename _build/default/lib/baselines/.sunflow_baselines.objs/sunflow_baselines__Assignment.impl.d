lib/baselines/assignment.ml: Format List Sunflow_core

lib/baselines/executor.ml: Assignment Float Hashtbl List Sunflow_core

lib/baselines/solstice.ml: Assignment Executor List Quantized Sunflow_core

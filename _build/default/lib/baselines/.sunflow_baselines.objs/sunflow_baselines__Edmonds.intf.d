lib/baselines/edmonds.mli: Assignment Executor Sunflow_core

lib/baselines/executor.mli: Assignment Sunflow_core

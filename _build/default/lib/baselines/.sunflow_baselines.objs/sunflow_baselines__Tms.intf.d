lib/baselines/tms.mli: Assignment Executor Sunflow_core

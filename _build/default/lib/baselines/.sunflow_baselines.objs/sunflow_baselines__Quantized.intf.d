lib/baselines/quantized.mli: Sunflow_core

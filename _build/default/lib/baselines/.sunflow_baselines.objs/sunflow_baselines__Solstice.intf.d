lib/baselines/solstice.mli: Assignment Executor Sunflow_core

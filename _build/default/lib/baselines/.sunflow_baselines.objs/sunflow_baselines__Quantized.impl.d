lib/baselines/quantized.ml: Array Float List Sunflow_core Sunflow_matching

lib/baselines/tms.ml: Array Assignment Executor Float List Quantized Sunflow_core Sunflow_matching

(** TMS (Traffic Matrix Scheduling, the Mordia scheduler — Porter et
    al. SIGCOMM 2013), the Birkhoff–von-Neumann baseline of paper
    §3.1.1.

    TMS's pipeline, and the source of the inefficiency the Sunflow
    paper points at: the demand matrix is (1) padded with a small
    constant so it is strictly positive, (2) Sinkhorn-scaled into a
    doubly stochastic {e bandwidth-share} matrix — a step that "may
    heavily modify the original demand matrix" — and (3) BvN-decomposed
    into permutation assignments whose durations are {e proportional to
    the decomposition weights}, not to the actual remaining demand.
    Slices shorter than the reconfiguration delay cannot pay for
    themselves and are dropped (Mordia's minimum-slot rule), so
    under-served entries are picked up by subsequent scheduling rounds,
    each paying a fresh set of reconfigurations.

    An idealised variant ([~ideal:true]) skips the padding/scaling and
    decomposes the stuffed demand exactly (durations = BvN weights on
    the integer lattice); it shows how much of TMS's gap comes from the
    proportional-share pre-processing. *)

val quantization_steps : int
(** Lattice resolution of the exact endgame and of the ideal variant. *)

val max_rounds : int
(** Bound on proportional-share rounds before the exact endgame
    finishes the remainder (never reached on sane demand). *)

val assignments :
  ?ideal:bool ->
  ?delta:float ->
  bandwidth:float ->
  Sunflow_core.Demand.t ->
  Assignment.t list
(** Assignment sequence covering the demand; durations in
    processing-time seconds. [ideal] defaults to [false] (the faithful
    Mordia pipeline); [delta] (default 10 ms) feeds the minimum-slot
    rule of that pipeline. *)

val schedule :
  ?ideal:bool ->
  delta:float ->
  bandwidth:float ->
  Sunflow_core.Coflow.t ->
  Executor.outcome
(** Schedule and execute on the not-all-stop switch. The Mordia
    variant's minimum-slot rule uses this [delta]. *)

(** Not-all-stop execution of an assignment sequence.

    Assignments are played one after another. When consecutive
    assignments share circuits, those circuits keep transmitting
    through the reconfiguration window (the paper: "circuits unchanged
    in two consecutive assignments may stay active continuously");
    circuits being set up or torn down idle for the reconfiguration
    delay. Real demand is drained against the scheduled circuit time —
    assignments computed on stuffed matrices contain dummy demand, so a
    circuit may stay reserved after its real demand is done.

    Execution stops as soon as all real demand has drained; trailing
    assignments are never played (and never counted). *)

type outcome = {
  cct : float;
      (** instant (relative to start [0.]) the last real byte lands;
          [0.] for an empty demand *)
  switching_count : int;
      (** circuit establishments performed before completion *)
  assignments_used : int;
      (** assignments at least partially played *)
  reservations : Sunflow_core.Prt.reservation list;
      (** the executed windows as reservations (setup > 0 on changed
          circuits), for port-constraint checking and Gantt rendering *)
  leftover : float;
      (** seconds of real processing time left when the sequence ran
          out; [0.] when the schedule covers the demand, which every
          scheduler in this library guarantees *)
}

val run :
  delta:float ->
  demand_time:((int * int) * float) list ->
  Assignment.t list ->
  outcome
(** [run ~delta ~demand_time assignments] plays the sequence against
    real demand expressed in processing-time seconds per circuit.
    Raises [Invalid_argument] on negative [delta] or a non-positive
    demand entry. *)

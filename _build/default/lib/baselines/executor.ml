module Prt = Sunflow_core.Prt

type outcome = {
  cct : float;
  switching_count : int;
  assignments_used : int;
  reservations : Prt.reservation list;
  leftover : float;
}

let run ~delta ~demand_time assignments =
  if delta < 0. then invalid_arg "Executor.run: negative delta";
  let remaining : (int * int, float) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun ((i, j), p) ->
      if p <= 0. then invalid_arg "Executor.run: non-positive demand entry";
      let prev =
        match Hashtbl.find_opt remaining (i, j) with Some v -> v | None -> 0.
      in
      Hashtbl.replace remaining (i, j) (prev +. p))
    demand_time;
  let left () = Hashtbl.fold (fun _ v acc -> acc +. v) remaining 0. in
  let cct = ref 0. in
  let switching = ref 0 in
  let used = ref 0 in
  let reservations = ref [] in
  (* Drain circuit (i, j) for up to [dur] seconds starting at [t];
     records the completion instant when the entry empties. *)
  let drain (i, j) t dur =
    match Hashtbl.find_opt remaining (i, j) with
    | None -> ()
    | Some rem ->
      let served = Float.min rem dur in
      let rem' = rem -. served in
      if rem' <= 1e-12 then begin
        Hashtbl.remove remaining (i, j);
        cct := Float.max !cct (t +. served)
      end
      else Hashtbl.replace remaining (i, j) rem'
  in
  let rec play t prev = function
    | [] -> t
    | (a : Assignment.t) :: rest ->
      if Hashtbl.length remaining = 0 then t
      else begin
        incr used;
        let changed = Assignment.changed_from ~previous:prev a in
        switching := !switching + List.length changed;
        let reconfig = if changed = [] then 0. else delta in
        (* circuits persisting from the previous assignment transmit
           through the reconfiguration window *)
        if reconfig > 0. then
          List.iter
            (fun pair ->
              if not (List.mem pair changed) then drain pair t reconfig)
            a.pairs;
        let t_tx = t +. reconfig in
        List.iter (fun pair -> drain pair t_tx a.duration) a.pairs;
        List.iter
          (fun (src, dst) ->
            (* every circuit's window spans the whole assignment slot;
               new circuits spend the leading reconfiguration idle,
               persistent ones transmit through it (setup = 0) *)
            let setup = if List.mem (src, dst) changed then reconfig else 0. in
            let r =
              { Prt.coflow = 0; src; dst; start = t; setup;
                length = reconfig +. a.duration }
            in
            reservations := r :: !reservations)
          a.pairs;
        play (t_tx +. a.duration) (Some a) rest
      end
  in
  let _end_time = play 0. None assignments in
  {
    cct = !cct;
    switching_count = !switching;
    assignments_used = !used;
    reservations = List.rev !reservations;
    leftover = left ();
  }

module Demand = Sunflow_core.Demand

let quantization_steps = 64

(* Threshold cascade on the exact integer lattice: start at the
   largest power-of-two quantum count, extract perfect matchings among
   entries >= r, halve r when none exists. On a balanced integer
   matrix a perfect matching over positive entries always exists
   (Birkhoff), so the cascade provably drains to zero at r = 1. *)
let assignments ~bandwidth demand =
  if bandwidth <= 0. then invalid_arg "Solstice.assignments: bandwidth <= 0";
  match Quantized.of_demand ~bandwidth ~steps:quantization_steps demand with
  | None -> []
  | Some q ->
    let work = Quantized.stuff q in
    let rec top_level r top = if 2 * r <= top then top_level (2 * r) top else r in
    let out = ref [] in
    let rec extract r =
      if Quantized.total work > 0 && r >= 1 then begin
        match Quantized.perfect_matching_at_least work r with
        | Some pm ->
          Quantized.subtract_matching work pm r;
          let pairs = Quantized.to_pairs work pm in
          let duration = float_of_int r *. work.Quantized.quantum in
          out := Assignment.make ~pairs ~duration :: !out;
          extract r
        | None -> extract (r / 2)
      end
    in
    let top = Quantized.max_entry work in
    if top > 0 then extract (top_level 1 top);
    List.rev !out

let schedule ~delta ~bandwidth (coflow : Sunflow_core.Coflow.t) =
  let plan = assignments ~bandwidth coflow.demand in
  let demand_time =
    List.map
      (fun (pair, bytes) -> (pair, bytes /. bandwidth))
      (Demand.entries coflow.demand)
  in
  Executor.run ~delta ~demand_time plan

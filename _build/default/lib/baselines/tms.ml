module Demand = Sunflow_core.Demand
module Dense = Sunflow_matching.Dense
module Bvn = Sunflow_matching.Bvn
module Sinkhorn = Sunflow_matching.Sinkhorn

let quantization_steps = 4096
let max_rounds = 64

(* Exact BvN on the integer lattice: the idealised variant and the
   endgame that finishes whatever the proportional rounds left over. *)
let exact_assignments ~bandwidth demand =
  match Quantized.of_demand ~bandwidth ~steps:quantization_steps demand with
  | None -> []
  | Some q ->
    let work = Quantized.stuff q in
    let out = ref [] in
    let rec extract () =
      if Quantized.total work > 0 then begin
        match Quantized.perfect_matching_at_least work 1 with
        | Some pm ->
          let w =
            List.fold_left
              (fun acc (i, j) -> min acc work.Quantized.units.(i).(j))
              max_int pm
          in
          Quantized.subtract_matching work pm w;
          let pairs = Quantized.to_pairs work pm in
          let duration = float_of_int w *. work.Quantized.quantum in
          out := Assignment.make ~pairs ~duration :: !out;
          extract ()
        | None ->
          (* impossible on a balanced integer matrix *)
          invalid_arg "Tms.assignments: balanced matrix without matching"
      end
    in
    extract ();
    List.sort
      (fun (a : Assignment.t) (b : Assignment.t) -> compare b.duration a.duration)
      !out

(* The Mordia pipeline: pad, Sinkhorn-scale to a share matrix, BvN,
   slice the round proportionally, drop slices shorter than delta,
   repeat on the remainder. *)
let mordia_assignments ~delta ~bandwidth demand =
  if Demand.is_empty demand then []
  else begin
    let ports, m_bytes = Demand.to_dense demand in
    let k = Array.length ports in
    let work = Array.map (Array.map (fun b -> b /. bandwidth)) m_bytes in
    let initial_total = Dense.total work in
    let eps_total = 1e-9 *. initial_total in
    let out = ref [] in
    let rec round n =
      if Dense.total work > eps_total && n < max_rounds then begin
        let s = Dense.max_line_sum work in
        (* padding constant: the "heavy modification" of §3.1.1 *)
        let pad = Float.max (Dense.max_entry work /. 1024.) 1e-12 in
        let padded =
          Array.map (Array.map (fun v -> v +. pad)) work
        in
        (* Sinkhorn converges slowly on nearly-decomposable supports;
           stuffing the residual drift makes the line sums exactly
           equal so the BvN decomposition below cannot reject it *)
        let shares =
          Sunflow_matching.Stuffing.stuff (Sinkhorn.scale padded)
        in
        let terms =
          Bvn.decompose shares
          |> List.filter (fun (t : Bvn.term) -> t.weight *. s >= delta)
          |> List.sort (fun (a : Bvn.term) (b : Bvn.term) ->
                 compare b.weight a.weight)
        in
        if terms = [] then () (* every slice below the minimum: endgame *)
        else begin
          List.iter
            (fun (t : Bvn.term) ->
              let duration = t.weight *. s in
              let pairs =
                List.map (fun (a, b) -> (ports.(a), ports.(b))) t.pairs
              in
              out := Assignment.make ~pairs ~duration :: !out;
              List.iter
                (fun (a, b) ->
                  work.(a).(b) <- Float.max 0. (work.(a).(b) -. duration))
                t.pairs)
            terms;
          round (n + 1)
        end
      end
    in
    if k > 0 then round 0;
    let remainder = Demand.create () in
    Dense.iter_positive
      (fun a b p ->
        if p *. bandwidth > 1e-6 then
          Demand.set remainder ports.(a) ports.(b) (p *. bandwidth))
      work;
    List.rev !out @ exact_assignments ~bandwidth remainder
  end

let assignments ?(ideal = false) ?(delta = 0.01) ~bandwidth demand =
  if bandwidth <= 0. then invalid_arg "Tms.assignments: bandwidth <= 0";
  if ideal then exact_assignments ~bandwidth demand
  else mordia_assignments ~delta ~bandwidth demand

let schedule ?ideal ~delta ~bandwidth (coflow : Sunflow_core.Coflow.t) =
  let plan = assignments ?ideal ~delta ~bandwidth coflow.demand in
  let demand_time =
    List.map
      (fun (pair, bytes) -> (pair, bytes /. bandwidth))
      (Demand.entries coflow.demand)
  in
  Executor.run ~delta ~demand_time plan

(** The Edmonds baseline (used by c-Through and Helios, paper §3.1.1):
    every fixed-length slot, compute a maximum-weight matching of the
    remaining demand and hold it for the slot.

    The slot length is determined externally of the algorithm and is
    "typically fixed and on the order of hundreds of milliseconds";
    each slot usually fails to cover all of a specific Coflow's demand,
    causing large Coflow delay — the paper reports Solstice servicing
    Coflows more than 6x faster than Edmonds on average. *)

val default_slot : float
(** 300 ms, mid-range of the paper's "hundreds of milliseconds". *)

val assignments :
  ?slot:float ->
  ?adaptive:bool ->
  bandwidth:float ->
  Sunflow_core.Demand.t ->
  Assignment.t list
(** Slot-by-slot maximum-weight matchings until the demand is covered.
    With [adaptive] (default [false] — the faithful fixed-slot
    behaviour) each slot is shortened when every matched circuit would
    finish early, an obvious improvement real deployments approximate
    by timing out idle configurations. *)

val schedule :
  ?slot:float ->
  ?adaptive:bool ->
  delta:float ->
  bandwidth:float ->
  Sunflow_core.Coflow.t ->
  Executor.outcome
(** Schedule and execute on the not-all-stop switch. *)

module Demand = Sunflow_core.Demand
module Bipartite = Sunflow_matching.Bipartite
module Hopcroft_karp = Sunflow_matching.Hopcroft_karp

type t = {
  ports : int array;
  units : int array array;
  quantum : float;
}

let of_demand ~bandwidth ~steps demand =
  if bandwidth <= 0. then invalid_arg "Quantized.of_demand: bandwidth <= 0";
  if steps <= 0 then invalid_arg "Quantized.of_demand: steps <= 0";
  if Demand.is_empty demand then None
  else begin
    let ports, m_bytes = Demand.to_dense demand in
    let k = Array.length ports in
    let max_p = Sunflow_matching.Dense.max_entry m_bytes /. bandwidth in
    let quantum = max_p /. float_of_int steps in
    let units =
      Array.init k (fun i ->
          Array.init k (fun j ->
              let p = m_bytes.(i).(j) /. bandwidth in
              if p <= 0. then 0
              else max 1 (int_of_float (Float.ceil (p /. quantum)))))
    in
    Some { ports; units; quantum }
  end

let size t = Array.length t.units

let row_sums t = Array.map (Array.fold_left ( + ) 0) t.units

let col_sums t =
  let k = size t in
  let s = Array.make k 0 in
  Array.iter (fun row -> Array.iteri (fun j v -> s.(j) <- s.(j) + v) row) t.units;
  s

let max_entry t =
  Array.fold_left (fun acc row -> Array.fold_left max acc row) 0 t.units

let total t =
  Array.fold_left (fun acc row -> acc + Array.fold_left ( + ) 0 row) 0 t.units

let is_balanced t =
  let rs = row_sums t and cs = col_sums t in
  let s = Array.fold_left max 0 rs in
  Array.for_all (( = ) s) rs && Array.for_all (( = ) s) cs

(* Exact greedy equalisation on integers (same scheme as
   Stuffing.stuff, no numerical drift possible). *)
let stuff t =
  let k = size t in
  let units = Array.map Array.copy t.units in
  let out = { t with units } in
  let rs = row_sums out and cs = col_sums out in
  let s =
    max (Array.fold_left max 0 rs) (Array.fold_left max 0 cs)
  in
  let rdef = Array.map (fun x -> s - x) rs in
  let cdef = Array.map (fun x -> s - x) cs in
  let find_deficient d =
    let best = ref (-1) in
    Array.iteri (fun i v -> if v > 0 && !best = -1 then best := i) d;
    !best
  in
  let rec go () =
    let i = find_deficient rdef in
    if i >= 0 then begin
      let j = find_deficient cdef in
      if j >= 0 then begin
        let amount = min rdef.(i) cdef.(j) in
        units.(i).(j) <- units.(i).(j) + amount;
        rdef.(i) <- rdef.(i) - amount;
        cdef.(j) <- cdef.(j) - amount;
        go ()
      end
    end
  in
  (if k > 0 then go ());
  out

let perfect_matching_at_least t threshold =
  let k = size t in
  let edges = ref [] in
  Array.iteri
    (fun i row ->
      Array.iteri (fun j v -> if v >= threshold && v > 0 then edges := (i, j) :: !edges) row)
    t.units;
  Hopcroft_karp.perfect (Bipartite.create ~n_left:k ~n_right:k !edges)

let subtract_matching t pairs w =
  List.iter
    (fun (i, j) ->
      let v = t.units.(i).(j) - w in
      if v < 0 then invalid_arg "Quantized.subtract_matching: negative entry";
      t.units.(i).(j) <- v)
    pairs

let to_pairs t pairs = List.map (fun (i, j) -> (t.ports.(i), t.ports.(j))) pairs

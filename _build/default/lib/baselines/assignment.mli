(** Circuit assignments: the unit of work of the all-stop-heritage
    schedulers (paper §3.1.1).

    Each assignment is a one-to-one matching between input and output
    ports, held for a duration. Edmonds, TMS and Solstice all emit a
    sequence of assignments; the {!Executor} then plays the sequence on
    the not-all-stop switch model. Durations are in seconds of
    transmission time (the reconfiguration delay is charged by the
    executor, not stored here). *)

type t = { pairs : (int * int) list; duration : float }

val make : pairs:(int * int) list -> duration:float -> t
(** Raises [Invalid_argument] when [pairs] is not a matching (a
    repeated input or output port) or [duration <= 0.]. *)

val is_matching : (int * int) list -> bool
(** No input port and no output port appears twice. *)

val mem : t -> int * int -> bool

val changed_from : previous:t option -> t -> (int * int) list
(** Circuits of [t] that are not in [previous] — the circuits that must
    be (re)configured, each a switching event. With [previous = None]
    every circuit changes. *)

val pp : Format.formatter -> t -> unit

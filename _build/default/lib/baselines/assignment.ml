type t = { pairs : (int * int) list; duration : float }

let is_matching pairs =
  let srcs = List.map fst pairs and dsts = List.map snd pairs in
  let distinct l = List.length (List.sort_uniq compare l) = List.length l in
  distinct srcs && distinct dsts

let make ~pairs ~duration =
  if duration <= 0. then invalid_arg "Assignment.make: non-positive duration";
  if not (is_matching pairs) then
    invalid_arg "Assignment.make: pairs are not a one-to-one matching";
  { pairs; duration }

let mem t pair = List.mem pair t.pairs

let changed_from ~previous t =
  match previous with
  | None -> t.pairs
  | Some prev -> List.filter (fun p -> not (List.mem p prev.pairs)) t.pairs

let pp ppf t =
  Format.fprintf ppf "@[<h>{dur=%a:" Sunflow_core.Units.pp_time t.duration;
  List.iter (fun (i, j) -> Format.fprintf ppf " %d->%d" i j) t.pairs;
  Format.fprintf ppf "}@]"

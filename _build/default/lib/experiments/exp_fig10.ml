module D = Sunflow_stats.Descriptive
module Units = Sunflow_core.Units
module Trace = Sunflow_trace.Trace
module R = Sunflow_sim.Sim_result

type per_delta = { delta : float; avg : float; p95 : float }

type result = { baseline : float; rows : per_delta list }

let run ?(settings = Common.default) ?(deltas = Exp_fig6.default_deltas) () =
  let baseline = settings.Common.delta in
  if not (List.mem baseline deltas) then
    invalid_arg "Exp_fig10.run: baseline delta not in the sweep";
  let trace = Common.original_trace settings in
  let bandwidth = settings.Common.bandwidth in
  let run_at delta = Common.run_sunflow ~delta ~bandwidth trace.Trace.coflows in
  let base = run_at baseline in
  let rows =
    List.map
      (fun delta ->
        let r = run_at delta in
        let normalised =
          List.map2
            (fun (id, cct) (id', base_cct) ->
              assert (id = id');
              if base_cct > 0. then Some (cct /. base_cct) else None)
            r.R.ccts base.R.ccts
          |> List.filter_map Fun.id
        in
        {
          delta;
          avg = D.mean normalised;
          p95 = D.percentile 95. normalised;
        })
      deltas
  in
  { baseline; rows }

let print ppf r =
  Format.fprintf ppf "  Sunflow inter-Coflow CCT normalised to the %a baseline@."
    Units.pp_time r.baseline;
  Format.fprintf ppf "  %-8s %6s %6s@." "delta" "avg" "p95";
  List.iter
    (fun row ->
      Format.fprintf ppf "  %-8s %6.2f %6.2f@."
        (Format.asprintf "%a" Units.pp_time row.delta)
        row.avg row.p95)
    r.rows;
  Common.kv ppf "paper" "%s"
    "avg 4.91 / 1.00 / 0.65 / 0.61 / 0.61; p95 7.22 / 1.00 / 0.98 / 0.98 / 0.98"

let report ?settings ppf =
  Common.section ppf "FIGURE 10: inter-Coflow sensitivity to delta";
  print ppf (run ?settings ())

(** Figure 6: sensitivity of intra-Coflow scheduling to the circuit
    reconfiguration delay delta. Every Coflow's CCT is normalised by
    its own CCT at the 10 ms baseline; the figure reports the average
    and 95th percentile per delta.

    Expected shape: much worse at 100 ms, mild improvement at 1 ms,
    negligible improvement below 100 µs. *)

type per_delta = {
  delta : float;
  sunflow_avg : float;
  sunflow_p95 : float;
  solstice_avg : float;
  solstice_p95 : float;
}

type result = { baseline : float; rows : per_delta list }

val default_deltas : float list
(** 100 ms, 10 ms, 1 ms, 100 µs, 10 µs. *)

val run : ?settings:Common.settings -> ?deltas:float list -> unit -> result
(** The baseline is the settings' delta (10 ms by default); it must be
    in [deltas]. *)

val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

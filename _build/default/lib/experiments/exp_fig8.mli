(** Figure 8: inter-Coflow network efficiency — Sunflow's average CCT
    normalised over Varys' and over Aalo's, across network idleness
    levels and link rates.

    Idleness (§5.4) is the fraction of time with no active Coflow,
    counting a Coflow active during [[arrival, arrival + T_L^p]]. Three
    traces are used: the original (12 % idleness at 1 Gbps, which
    becomes ≈81 % at 10 Gbps and ≈98 % at 100 Gbps as transfers
    shrink), and two byte-scaled variants attaining 20 % and 40 %
    idleness at each link rate.

    Expected shape: Sunflow comparable to (≈1x of) Varys and Aalo at
    12–40 % idleness, clearly worse at 81–98 % where Coflows are short
    and the delta penalty dominates. *)

type cell = {
  bandwidth : float;
  idleness_label : string;
  measured_idleness : float;
  sunflow_avg_cct : float;
  varys_avg_cct : float;
  aalo_avg_cct : float;
}

type result = { cells : cell list; delta : float }

val run : ?settings:Common.settings -> ?bandwidths:float list -> unit -> result
val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

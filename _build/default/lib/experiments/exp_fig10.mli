(** Figure 10: sensitivity of inter-Coflow scheduling to the
    reconfiguration delay delta, on the original (12 % idleness)
    trace. Per-Coflow CCTs are normalised to the 10 ms baseline.

    Expected shape: as Fig. 6 — severe at 100 ms, mild gain at 1 ms,
    negligible gain below 100 µs — but flatter, because waiting time
    between Coflows dilutes the delta penalty. *)

type per_delta = { delta : float; avg : float; p95 : float }

type result = { baseline : float; rows : per_delta list }

val run : ?settings:Common.settings -> ?deltas:float list -> unit -> result
val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

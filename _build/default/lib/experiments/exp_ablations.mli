(** Ablations of the design choices DESIGN.md calls out, beyond the
    paper's own evaluation:

    - {b established-circuit reuse}: the not-all-stop model lets a
      rescheduling event keep mid-transmission circuits alive; turning
      that off approximates an all-stop controller;
    - {b inter-Coflow policy}: shortest-Coflow-first vs FIFO on the
      circuit fabric, and the Coflow-agnostic per-flow-fair packet
      baseline;
    - {b quantised reservations}: the §6 approximation hook rounding
      processing times up to a quantum to prune release events;
    - {b hybrid fabric}: offloading short Coflows to a small packet
      network (the REACToR deployment model). *)

type row = { label : string; avg_cct : float; note : string }

type result = {
  reuse : row list;  (** carry circuits on/off *)
  policy : row list;  (** scf / fifo / per-flow fair *)
  quantum : row list;  (** intra avg CCT ratio and planning time *)
  hybrid : row list;  (** pure circuit / hybrid / pure packet *)
}

val run : ?settings:Common.settings -> unit -> result
val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

(** Measurements of the extension features built beyond the paper's
    evaluation:

    - {b multi-stage jobs} (§4.2's third policy scenario): average job
      completion time of a pipeline workload under FIFO,
      shortest-Coflow-first and the stage-aware policy, on the
      Sunflow-scheduled OCS and on a Varys packet fabric;
    - {b deadline admission} (§2.3's "performance requirement"):
      admitted fraction and guarantee check of EDF admission control as
      deadline slack varies. *)

type job_row = { policy : string; avg_jct : float }

type deadline_row = {
  slack : float;  (** deadline = slack x T_L^c of each Coflow *)
  admitted_pct : float;
  guarantees_hold : bool;
      (** every admitted Coflow's plan meets its deadline *)
}

type result = {
  n_jobs : int;
  jobs : job_row list;
  deadlines : deadline_row list;
}

val run : ?settings:Common.settings -> unit -> result
val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

(** Table 3 and §6 "Scheduler latency": asymptotic complexity and
    measured compute time of the four circuit schedulers.

    Table 3's asymptotics: Edmonds O(N^3), TMS O(N^4.5), Solstice
    O(N^3 log^2 N), Sunflow O(|C|^2). The measurement schedules one
    dense many-to-many Coflow of growing width and wall-clocks each
    scheduler's planning phase (no execution). Expected shape: Sunflow
    scales with the number of subflows and stays well under the paper's
    "< 1 s for 3,000 subflows"; the matrix-decomposition baselines grow
    much faster with port count. *)

type row = {
  width : int;  (** senders = receivers *)
  n_subflows : int;
  sunflow_s : float;
  solstice_s : float;
  tms_s : float;
  edmonds_s : float;
}

type result = { rows : row list }

val run : ?settings:Common.settings -> ?widths:int list -> unit -> result
(** [widths] defaults to [5; 10; 20; 40]. *)

val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units
module Sunflow = Sunflow_core.Sunflow
module Rng = Sunflow_stats.Rng

type row = {
  width : int;
  n_subflows : int;
  sunflow_s : float;
  solstice_s : float;
  tms_s : float;
  edmonds_s : float;
}

type result = { rows : row list }

let dense_coflow rng width =
  let demand = Demand.create () in
  for i = 0 to width - 1 do
    for j = 0 to width - 1 do
      Demand.set demand i (width + j)
        (Units.mb (float_of_int (1 + Rng.int rng 64)))
    done
  done;
  Coflow.make ~id:0 demand

let wall f =
  let t0 = Sys.time () in
  ignore (f ());
  Sys.time () -. t0

let run ?(settings = Common.default) ?(widths = [ 5; 10; 20; 40 ]) () =
  let delta = settings.Common.delta
  and bandwidth = settings.Common.bandwidth in
  let rng = Rng.create 2016 in
  let rows =
    List.map
      (fun width ->
        let c = dense_coflow rng width in
        {
          width;
          n_subflows = Coflow.n_subflows c;
          sunflow_s = wall (fun () -> Sunflow.schedule ~delta ~bandwidth c);
          solstice_s =
            wall (fun () ->
                Sunflow_baselines.Solstice.assignments ~bandwidth c.demand);
          tms_s =
            wall (fun () -> Sunflow_baselines.Tms.assignments ~bandwidth c.demand);
          edmonds_s =
            wall (fun () ->
                Sunflow_baselines.Edmonds.assignments ~bandwidth c.demand);
        })
      widths
  in
  { rows }

let print ppf r =
  Format.fprintf ppf "  asymptotics: Edmonds O(N^3), TMS O(N^4.5), Solstice O(N^3 log^2 N), Sunflow O(|C|^2)@.";
  Format.fprintf ppf "  %-6s %9s | %10s %10s %10s %10s@." "width" "|C|"
    "Sunflow" "Solstice" "TMS" "Edmonds";
  List.iter
    (fun row ->
      Format.fprintf ppf "  %-6d %9d | %9.4fs %9.4fs %9.4fs %9.4fs@." row.width
        row.n_subflows row.sunflow_s row.solstice_s row.tms_s row.edmonds_s)
    r.rows;
  Common.kv ppf "paper" "%s" "Sunflow < 1 s for 3,000 subflows (untuned C++)"

let report ?settings ppf =
  Common.section ppf "TABLE 3: scheduler time complexity (measured)";
  print ppf (run ?settings ())

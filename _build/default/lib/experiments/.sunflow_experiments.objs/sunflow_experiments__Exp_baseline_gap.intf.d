lib/experiments/exp_baseline_gap.mli: Common Format

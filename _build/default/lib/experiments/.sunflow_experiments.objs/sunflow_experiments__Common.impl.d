lib/experiments/common.ml: Float Format Hashtbl List Option Sunflow_baselines Sunflow_core Sunflow_packet Sunflow_sim Sunflow_trace

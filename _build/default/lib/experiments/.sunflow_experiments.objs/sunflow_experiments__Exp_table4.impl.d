lib/experiments/exp_table4.ml: Common Format List Sunflow_core Sunflow_trace

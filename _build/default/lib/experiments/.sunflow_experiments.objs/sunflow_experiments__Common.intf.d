lib/experiments/common.mli: Format Sunflow_core Sunflow_sim Sunflow_trace

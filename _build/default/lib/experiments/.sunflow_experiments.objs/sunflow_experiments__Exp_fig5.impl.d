lib/experiments/exp_fig5.ml: Common Format List Sunflow_core Sunflow_stats

lib/experiments/exp_fig7.ml: Common Format List Sunflow_core Sunflow_stats Sunflow_trace

lib/experiments/exp_fig10.ml: Common Exp_fig6 Format Fun List Sunflow_core Sunflow_sim Sunflow_stats Sunflow_trace

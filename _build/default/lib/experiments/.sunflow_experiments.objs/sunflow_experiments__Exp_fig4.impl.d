lib/experiments/exp_fig4.ml: Common Format List Sunflow_core Sunflow_stats

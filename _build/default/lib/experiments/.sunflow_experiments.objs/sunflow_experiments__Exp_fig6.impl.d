lib/experiments/exp_fig6.ml: Common Format List Sunflow_core Sunflow_stats

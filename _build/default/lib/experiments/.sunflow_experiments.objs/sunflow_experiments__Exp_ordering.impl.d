lib/experiments/exp_ordering.ml: Common Format List Sunflow_core Sunflow_stats Sunflow_trace

lib/experiments/exp_fig9.ml: Array Common Float Format List Sunflow_core Sunflow_sim Sunflow_stats Sunflow_trace

lib/experiments/exp_ablations.ml: Common Format List Sunflow_core Sunflow_sim Sunflow_stats Sunflow_trace Sys

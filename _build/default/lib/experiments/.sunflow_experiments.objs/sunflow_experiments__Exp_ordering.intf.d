lib/experiments/exp_ordering.mli: Common Format

lib/experiments/exp_complexity.ml: Common Format List Sunflow_baselines Sunflow_core Sunflow_stats Sys

lib/experiments/exp_oracle.ml: Common Float List Sunflow_core Sunflow_switch Sunflow_trace

lib/experiments/exp_fig3.ml: Common Format List Sunflow_core Sunflow_stats

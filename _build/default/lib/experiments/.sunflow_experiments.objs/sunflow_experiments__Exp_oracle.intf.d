lib/experiments/exp_oracle.mli: Common Format

lib/experiments/exp_complexity.mli: Common Format

lib/experiments/exp_fig8.mli: Common Format

lib/experiments/exp_ablations.mli: Common Format

lib/experiments/exp_extensions.ml: Common Format List Sunflow_core Sunflow_jobs Sunflow_packet Sunflow_trace

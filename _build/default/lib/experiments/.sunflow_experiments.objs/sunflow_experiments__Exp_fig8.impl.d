lib/experiments/exp_fig8.ml: Common Format List Sunflow_core Sunflow_sim Sunflow_trace

lib/experiments/exp_headline.mli: Common Format

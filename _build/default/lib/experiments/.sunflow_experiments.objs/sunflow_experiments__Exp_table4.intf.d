lib/experiments/exp_table4.mli: Common Format Sunflow_trace

lib/experiments/exp_extensions.mli: Common Format

lib/experiments/exp_baseline_gap.ml: Common Format List Sunflow_baselines Sunflow_core Sunflow_stats Sunflow_trace

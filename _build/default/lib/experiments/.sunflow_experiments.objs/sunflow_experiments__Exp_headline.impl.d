lib/experiments/exp_headline.ml: Common Float List Sunflow_core Sunflow_sim Sunflow_stats Sunflow_trace

(** Figure 7: Sunflow intra-Coflow CCT against the packet-switched
    lower bound [T_L^p], split into short and long Coflows (long:
    average processing time above [40 delta], §5.3.2).

    Expected shape: long Coflows (which carry almost all bytes) sit
    near 1x; short Coflows have larger ratios but small absolute
    penalty; every ratio is below the Lemma-2 bound [2 (1 + alpha)];
    and the ratio is strongly anti-correlated with [p_avg]. *)

type group = { label : string; count : int; avg : float; p95 : float }

type result = {
  all : group;
  long_ : group;
  short : group;
  long_bytes_pct : float;
  rank_corr_pavg : float;
      (** Spearman correlation between p_avg and CCT/T_L^p *)
  lemma2_bound : float;  (** 2 (1 + alpha_max) over the trace *)
  max_ratio : float;
}

val run : ?settings:Common.settings -> unit -> result
val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

(** §5.3.1 "Sensitivity to reservation ordering": Sunflow's CCT under
    alternative intra-Coflow reservation orderings, each Coflow
    normalised to the default OrderedPort schedule.

    Expected shape: all orderings within a few percent of each other
    (the paper reports Random at 0.94x avg / 1.01x p95 and SortedDemand
    at 0.95x / 1.01x of OrderedPort). *)

type row = { label : string; avg : float; p95 : float }

type result = { rows : row list }

val run : ?settings:Common.settings -> unit -> result
val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

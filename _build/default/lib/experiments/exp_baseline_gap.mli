(** §5.2's justification for using Solstice as {e the} circuit
    baseline: "on average, Solstice services a Coflow more than 2x
    faster than TMS and more than 6x faster than Edmonds."

    This experiment schedules every Coflow of the trace alone under all
    four circuit schedulers and reports the per-Coflow CCT ratios of
    the weaker baselines over Solstice, plus everyone's distance to the
    lower bound. *)

type row = {
  scheduler : string;
  avg_ratio_vs_solstice : float;  (** mean of per-Coflow CCT/Solstice-CCT *)
  avg_cct : float;
  avg_ratio_vs_tcl : float;
}

type result = { rows : row list (* sunflow, solstice, tms, edmonds *) }

val run : ?settings:Common.settings -> unit -> result
val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

module D = Sunflow_stats.Descriptive
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Order = Sunflow_core.Order
module Sunflow = Sunflow_core.Sunflow
module Trace = Sunflow_trace.Trace

type row = { label : string; avg : float; p95 : float }

type result = { rows : row list }

let run ?(settings = Common.default) () =
  let coflows =
    (Common.raw_trace settings).Trace.coflows
    |> List.filter (fun (c : Coflow.t) -> not (Demand.is_empty c.demand))
  in
  let delta = settings.Common.delta and bandwidth = settings.Common.bandwidth in
  let ccts order =
    List.map
      (fun (c : Coflow.t) ->
        (Sunflow.schedule ~order ~delta ~bandwidth { c with arrival = 0. }).finish)
      coflows
  in
  let base = ccts Order.Ordered_port in
  let against label order =
    let normalised = List.map2 (fun c b -> c /. b) (ccts order) base in
    { label; avg = D.mean normalised; p95 = D.percentile 95. normalised }
  in
  {
    rows =
      [
        against "Random" (Order.Shuffled 99);
        against "SortedDemand" Order.Sorted_demand_desc;
        against "SortedDemandAsc" Order.Sorted_demand_asc;
      ];
  }

let print ppf r =
  Format.fprintf ppf "  CCT normalised to OrderedPort@.";
  List.iter
    (fun row ->
      Format.fprintf ppf "  %-16s avg=%.3f p95=%.3f@." row.label row.avg row.p95)
    r.rows;
  Common.kv ppf "paper" "%s"
    "Random 0.94 avg / 1.01 p95; SortedDemand 0.95 / 1.01"

let report ?settings ppf =
  Common.section ppf "ORDERING: reservation-ordering sensitivity";
  print ppf (run ?settings ())

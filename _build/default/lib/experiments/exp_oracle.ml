module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Sunflow = Sunflow_core.Sunflow
module Trace = Sunflow_trace.Trace
module Controller = Sunflow_switch.Controller

type result = {
  n_plans : int;
  physically_valid : int;
  cct_matches : int;
  switching_matches : int;
}

let run ?(settings = Common.default) () =
  let bandwidth = settings.Common.bandwidth and delta = settings.Common.delta in
  let trace = Common.original_trace settings in
  let coflows =
    List.filter
      (fun (c : Coflow.t) -> not (Demand.is_empty c.demand))
      trace.Trace.coflows
  in
  let n_ports = settings.Common.trace_params.Sunflow_trace.Synthetic.n_ports in
  let acc = ref { n_plans = 0; physically_valid = 0; cct_matches = 0; switching_matches = 0 } in
  List.iter
    (fun (c : Coflow.t) ->
      let c = { c with Coflow.arrival = 0. } in
      let plan = Sunflow.schedule ~delta ~bandwidth c in
      let r = !acc in
      let r = { r with n_plans = r.n_plans + 1 } in
      acc :=
        (match
           Controller.execute ~delta ~bandwidth ~n_ports ~coflows:[ c ]
             ~plan:plan.reservations
         with
        | Error _ -> r
        | Ok report ->
          let r = { r with physically_valid = r.physically_valid + 1 } in
          let r =
            match List.assoc_opt c.id report.finish_times with
            | Some t when Float.abs (t -. plan.finish) <= 1e-9 ->
              { r with cct_matches = r.cct_matches + 1 }
            | _ -> r
          in
          if report.switch_count = plan.setups then
            { r with switching_matches = r.switching_matches + 1 }
          else r))
    coflows;
  !acc

let print ppf r =
  Common.kv ppf "plans executed on the switch model" "%d" r.n_plans;
  Common.kv ppf "physically valid" "%d / %d" r.physically_valid r.n_plans;
  Common.kv ppf "physical CCT = planned CCT" "%d / %d" r.cct_matches r.n_plans;
  Common.kv ppf "physical switchings = planned" "%d / %d" r.switching_matches
    r.n_plans

let report ?settings ppf =
  Common.section ppf "ORACLE: plans replayed on the executable switch model";
  print ppf (run ?settings ())

(** Figure 3: intra-Coflow CCT against the circuit-switched lower bound
    [T_L^c] for Sunflow and Solstice across link rates.

    The paper's scatter plots condense to the statistics quoted in
    §5.3.1: the average and 95th-percentile of CCT / T_L^c per
    scheduler per link rate, plus the worst case. Expected shape:
    Sunflow stays ≈1.0x at every link rate and never exceeds 2x;
    Solstice is markedly worse and degrades as the link rate grows
    with delta fixed. *)

type per_rate = {
  bandwidth : float;
  sunflow_avg : float;
  sunflow_p95 : float;
  sunflow_max : float;
  solstice_avg : float;
  solstice_p95 : float;
  solstice_max : float;
}

type result = { rates : per_rate list; delta : float }

val run :
  ?settings:Common.settings -> ?bandwidths:float list -> unit -> result
(** [bandwidths] defaults to 1, 10 and 100 Gbps. *)

val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

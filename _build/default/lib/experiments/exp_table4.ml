module Workload = Sunflow_trace.Workload
module Trace = Sunflow_trace.Trace
module Category = Sunflow_core.Coflow.Category

type result = {
  stats : Workload.class_stat list;
  n_coflows : int;
  total_bytes : float;
}

let run ?(settings = Common.default) () =
  let trace = Common.raw_trace settings in
  {
    stats = Workload.classify trace;
    n_coflows = Trace.n_coflows trace;
    total_bytes = Trace.total_bytes trace;
  }

let print ppf r =
  Format.fprintf ppf "  %-10s" "Category";
  List.iter
    (fun (s : Workload.class_stat) ->
      Format.fprintf ppf " %8s" (Category.to_string s.category))
    r.stats;
  Format.fprintf ppf "@.  %-10s" "Coflow%";
  List.iter
    (fun (s : Workload.class_stat) -> Format.fprintf ppf " %8.1f" s.coflow_pct)
    r.stats;
  Format.fprintf ppf "@.  %-10s" "Bytes%";
  List.iter
    (fun (s : Workload.class_stat) -> Format.fprintf ppf " %8.3f" s.bytes_pct)
    r.stats;
  Format.fprintf ppf "@.";
  Common.kv ppf "coflows" "%d" r.n_coflows;
  Common.kv ppf "total bytes" "%a" Sunflow_core.Units.pp_bytes r.total_bytes;
  Common.kv ppf "paper (Coflow%%)" "%s" "O2O 23.4 / O2M 9.9 / M2O 40.1 / M2M 26.6";
  Common.kv ppf "paper (Bytes%%)" "%s" "0.005 / 0.024 / 0.028 / 99.943"

let report ?settings ppf =
  Common.section ppf "TABLE 4: Coflow categories";
  print ppf (run ?settings ())

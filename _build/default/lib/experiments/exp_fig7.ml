module D = Sunflow_stats.Descriptive
module Corr = Sunflow_stats.Correlation
module Workload = Sunflow_trace.Workload

type group = { label : string; count : int; avg : float; p95 : float }

type result = {
  all : group;
  long_ : group;
  short : group;
  long_bytes_pct : float;
  rank_corr_pavg : float;
  lemma2_bound : float;
  max_ratio : float;
}

let group label points =
  let ratios = List.map (fun p -> p.Common.sunflow_cct /. p.Common.tpl) points in
  {
    label;
    count = List.length points;
    avg = D.mean ratios;
    p95 = D.percentile 95. ratios;
  }

let run ?(settings = Common.default) () =
  let points = Common.intra_points settings in
  let delta = settings.Common.delta in
  let is_long p = p.Common.p_avg > 40. *. delta in
  let long_points, short_points = List.partition is_long points in
  let bytes ps =
    List.fold_left
      (fun a p -> a +. Sunflow_core.Coflow.total_bytes p.Common.coflow)
      0. ps
  in
  let ratios = List.map (fun p -> p.Common.sunflow_cct /. p.Common.tpl) points in
  let alpha_max =
    Workload.alpha_max ~bandwidth:settings.Common.bandwidth ~delta
      (Common.raw_trace settings)
  in
  {
    all = group "all" points;
    long_ = group "long" long_points;
    short = group "short" short_points;
    long_bytes_pct = 100. *. bytes long_points /. bytes points;
    rank_corr_pavg =
      Corr.spearman (List.map (fun p -> p.Common.p_avg) points) ratios;
    lemma2_bound = 2. *. (1. +. alpha_max);
    max_ratio = snd (D.min_max ratios);
  }

let print ppf r =
  let line g =
    Format.fprintf ppf "  %-6s n=%4d  CCT/TpL avg=%5.2f p95=%5.2f@." g.label
      g.count g.avg g.p95
  in
  line r.all;
  line r.long_;
  line r.short;
  Common.kv ppf "long Coflows' byte share" "%.1f%%" r.long_bytes_pct;
  Common.kv ppf "rank corr(p_avg, CCT/TpL)" "%.2f" r.rank_corr_pavg;
  Common.kv ppf "max ratio vs Lemma-2 bound" "%.2f <= %.2f" r.max_ratio
    r.lemma2_bound;
  Common.kv ppf "paper" "%s"
    "long: 1.09 avg / 1.25 p95 (98.8% of bytes); all: 1.86 / 2.31; corr -0.96; bound 4.5"

let report ?settings ppf =
  Common.section ppf "FIGURE 7: Sunflow CCT vs packet lower bound (short/long)";
  print ppf (run ?settings ())

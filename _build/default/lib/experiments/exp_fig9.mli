(** Figure 9: per-Coflow CCT difference between Sunflow and the packet
    schedulers under the original (12 % idleness) trace, plus the §5.4
    pairwise CCT-ratio statistics.

    Expected shape: short Coflows finish slower under Sunflow (the
    delta penalty dominates), long Coflows comparable or faster
    (Sunflow keeps circuits saturated while Varys strands bandwidth
    between events and Aalo mis-shares within a Coflow). *)

type bucket = {
  tpl_lo : float;
  tpl_hi : float;
  count : int;
  mean_delta_varys : float;  (** mean (Sunflow CCT - Varys CCT), seconds *)
  mean_delta_aalo : float;
}

type result = {
  buckets : bucket list;
  ratio_varys_avg : float;  (** avg of per-Coflow Sunflow/Varys CCT *)
  ratio_varys_p95 : float;
  ratio_aalo_avg : float;
  ratio_aalo_p95 : float;
  short_ratio_varys : float;  (** avg ratio over short Coflows *)
  long_ratio_varys : float;
  short_ratio_aalo : float;
  long_ratio_aalo : float;
}

val run : ?settings:Common.settings -> unit -> result
val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

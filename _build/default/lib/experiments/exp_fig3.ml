module D = Sunflow_stats.Descriptive
module Units = Sunflow_core.Units

type per_rate = {
  bandwidth : float;
  sunflow_avg : float;
  sunflow_p95 : float;
  sunflow_max : float;
  solstice_avg : float;
  solstice_p95 : float;
  solstice_max : float;
}

type result = { rates : per_rate list; delta : float }

let default_bandwidths = [ Units.gbps 1.; Units.gbps 10.; Units.gbps 100. ]

let run ?(settings = Common.default) ?(bandwidths = default_bandwidths) () =
  let rates =
    List.map
      (fun bandwidth ->
        let points = Common.intra_points ~bandwidth settings in
        let ratio f = List.map (fun p -> f p /. p.Common.tcl) points in
        let sunflow = ratio (fun p -> p.Common.sunflow_cct) in
        let solstice = ratio (fun p -> p.Common.solstice_cct) in
        {
          bandwidth;
          sunflow_avg = D.mean sunflow;
          sunflow_p95 = D.percentile 95. sunflow;
          sunflow_max = snd (D.min_max sunflow);
          solstice_avg = D.mean solstice;
          solstice_p95 = D.percentile 95. solstice;
          solstice_max = snd (D.min_max solstice);
        })
      bandwidths
  in
  { rates; delta = settings.Common.delta }

let print ppf r =
  Format.fprintf ppf
    "  CCT / T_L^c (delta=%a)@.  %-10s | %21s | %s@.  %-10s | %6s %6s %6s | %6s %6s %6s@."
    Units.pp_time r.delta "" "Sunflow" "Solstice" "B" "avg" "p95" "max" "avg"
    "p95" "max";
  List.iter
    (fun p ->
      Format.fprintf ppf "  %-10s | %6.2f %6.2f %6.2f | %6.2f %6.2f %6.2f@."
        (Format.asprintf "%g Gbps" (Units.to_gbps p.bandwidth))
        p.sunflow_avg p.sunflow_p95 p.sunflow_max p.solstice_avg p.solstice_p95
        p.solstice_max)
    r.rates;
  Common.kv ppf "paper @ 1 Gbps" "%s"
    "Sunflow 1.03 avg / 1.18 p95; Solstice 1.48 avg / 4.74 p95 / 10.63 max";
  Common.kv ppf "paper @ 10->100 Gbps" "%s"
    "Solstice avg 2.30 -> 3.17 (p95 10.06 -> 13.83); Sunflow stays ~1.03/1.24"

let report ?settings ppf =
  Common.section ppf "FIGURE 3: intra-Coflow CCT vs circuit lower bound";
  print ppf (run ?settings ())

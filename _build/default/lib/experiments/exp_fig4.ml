module D = Sunflow_stats.Descriptive
module Dist = Sunflow_stats.Distribution
module Category = Sunflow_core.Coflow.Category

type series = {
  label : string;
  deciles : float array;
  avg : float;
  p95 : float;
}

type result = {
  n_m2m : int;
  series : series list;
  chart : string;  (* ASCII CDF of CCT/TcL: S = Sunflow, o = Solstice *)
}

let make_series label samples =
  {
    label;
    deciles = Dist.deciles samples;
    avg = D.mean samples;
    p95 = D.percentile 95. samples;
  }

let run ?(settings = Common.default) () =
  let m2m =
    Common.intra_points settings
    |> List.filter (fun p -> p.Common.category = Category.Many_to_many)
  in
  let ratios cct bound = List.map (fun p -> cct p /. bound p) m2m in
  let sun p = p.Common.sunflow_cct and sol p = p.Common.solstice_cct in
  let tcl p = p.Common.tcl and tpl p = p.Common.tpl in
  {
    n_m2m = List.length m2m;
    series =
      [
        make_series "Sunflow CCT/TcL" (ratios sun tcl);
        make_series "Sunflow CCT/TpL" (ratios sun tpl);
        make_series "Solstice CCT/TcL" (ratios sol tcl);
        make_series "Solstice CCT/TpL" (ratios sol tpl);
      ];
    chart =
      Dist.ascii_cdf_chart
        [ ('o', ratios sol tcl); ('S', ratios sun tcl) ];
  }

let print ppf r =
  Common.kv ppf "many-to-many Coflows" "%d" r.n_m2m;
  List.iter
    (fun s ->
      Format.fprintf ppf "  %-18s avg=%5.2f p95=%5.2f | %a@." s.label s.avg
        s.p95 Dist.pp_deciles s.deciles)
    r.series;
  Format.fprintf ppf "  CDF of CCT/TcL (S = Sunflow, o = Solstice):@.%s" r.chart;
  Common.kv ppf "paper" "%s"
    "Sunflow/TcL 1.10 avg, 1.46 p95 (all < 2); Solstice/TcL 2.81 avg, 7.70 p95"

let report ?settings ppf =
  Common.section ppf "FIGURE 4: CDF of CCT over lower bounds (M2M Coflows)";
  print ppf (run ?settings ())

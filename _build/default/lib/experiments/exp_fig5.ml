module D = Sunflow_stats.Descriptive
module Dist = Sunflow_stats.Distribution
module Corr = Sunflow_stats.Correlation
module Category = Sunflow_core.Coflow.Category

type result = {
  n_m2m : int;
  sunflow_deciles : float array;
  solstice_deciles : float array;
  sunflow_always_minimal : bool;
  solstice_avg : float;
  solstice_corr_subflows : float;
}

let run ?(settings = Common.default) () =
  let m2m =
    Common.intra_points settings
    |> List.filter (fun p -> p.Common.category = Category.Many_to_many)
  in
  let normalized count p = float_of_int count /. float_of_int p.Common.n_subflows in
  let sunflow = List.map (fun p -> normalized p.Common.sunflow_setups p) m2m in
  let solstice =
    List.map (fun p -> normalized p.Common.solstice_switchings p) m2m
  in
  let subflows = List.map (fun p -> float_of_int p.Common.n_subflows) m2m in
  {
    n_m2m = List.length m2m;
    sunflow_deciles = Dist.deciles sunflow;
    solstice_deciles = Dist.deciles solstice;
    sunflow_always_minimal = List.for_all (fun x -> x = 1.) sunflow;
    solstice_avg = D.mean solstice;
    solstice_corr_subflows = Corr.pearson solstice subflows;
  }

let print ppf r =
  Common.kv ppf "many-to-many Coflows" "%d" r.n_m2m;
  Format.fprintf ppf "  %-10s %a@." "Sunflow" Dist.pp_deciles r.sunflow_deciles;
  Format.fprintf ppf "  %-10s %a@." "Solstice" Dist.pp_deciles r.solstice_deciles;
  Common.kv ppf "Sunflow always minimal (=|C|)" "%b" r.sunflow_always_minimal;
  Common.kv ppf "Solstice avg normalised count" "%.2f" r.solstice_avg;
  Common.kv ppf "Solstice corr(count, |C|)" "%.2f" r.solstice_corr_subflows;
  Common.kv ppf "paper" "%s"
    "Sunflow exactly 1; Solstice up to ~12x, correlation 0.84"

let report ?settings ppf =
  Common.section ppf "FIGURE 5: switching count over minimum (M2M Coflows)";
  print ppf (run ?settings ())

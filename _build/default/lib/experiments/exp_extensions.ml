module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Bounds = Sunflow_core.Bounds
module Inter = Sunflow_core.Inter
module Deadline = Sunflow_core.Deadline
module Trace = Sunflow_trace.Trace
module Job = Sunflow_jobs.Job
module Job_sim = Sunflow_jobs.Job_sim

type job_row = { policy : string; avg_jct : float }

type deadline_row = {
  slack : float;
  admitted_pct : float;
  guarantees_hold : bool;
}

type result = {
  n_jobs : int;
  jobs : job_row list;
  deadlines : deadline_row list;
}

(* Group consecutive trace Coflows into pipelines of 1-3 stages: the
   first Coflow's arrival is the job's, later ones become dependent
   stages (their own arrivals are dropped, as stage data only exists
   once the previous stage computed it). *)
let jobs_of_trace coflows =
  let rec group id acc = function
    | [] -> List.rev acc
    | (c : Coflow.t) :: rest ->
      let n_stages = 1 + (id mod 3) in
      let stages_src, rest =
        let rec take k taken rest =
          if k = 0 then (List.rev taken, rest)
          else
            match rest with
            | [] -> (List.rev taken, [])
            | c :: tl -> take (k - 1) (c :: taken) tl
        in
        take (n_stages - 1) [] rest
      in
      let stages =
        { Job.demand = c.demand; depends_on = [] }
        :: List.mapi
             (fun i (s : Coflow.t) ->
               { Job.demand = s.demand; depends_on = [ i ] })
             stages_src
      in
      group (id + 1) (Job.make ~id ~arrival:c.arrival stages :: acc) rest
  in
  group 0 [] coflows

let run ?(settings = Common.default) () =
  let bandwidth = settings.Common.bandwidth and delta = settings.Common.delta in
  let coflows =
    (Common.original_trace settings).Trace.coflows
    |> List.filter (fun (c : Coflow.t) -> not (Demand.is_empty c.demand))
  in
  (* keep the job workload light: the experiment is about policy
     ordering, not scale *)
  let rec take k = function
    | x :: tl when k > 0 -> x :: take (k - 1) tl
    | _ -> []
  in
  let jobs = jobs_of_trace (take 180 coflows) in
  let job_rows =
    List.map
      (fun (name, fabric) ->
        let r = Job_sim.run ~fabric ~bandwidth jobs in
        { policy = name; avg_jct = Job_sim.average_jct r })
      [
        ("sunflow, fifo", Job_sim.Circuit { delta; policy = Inter.Fifo });
        ( "sunflow, shortest-coflow-first",
          Job_sim.Circuit { delta; policy = Inter.Shortest_first } );
        ("sunflow, stage-aware", Job_sim.Circuit { delta; policy = Job_sim.stage_policy });
        ("packet, varys", Job_sim.Packet Sunflow_packet.Varys.allocate);
      ]
  in
  (* deadline admission on a contending batch: all Coflows present at
     once, deadline proportional to each one's solo circuit bound *)
  let batch =
    take 120 coflows
    |> List.map (fun (c : Coflow.t) -> { c with Coflow.arrival = 0. })
  in
  let deadlines =
    List.map
      (fun slack ->
        let deadline_of (c : Coflow.t) =
          slack *. Bounds.circuit_lower ~bandwidth ~delta c.demand
        in
        let a = Deadline.admit ~deadline_of ~delta ~bandwidth batch in
        let n = List.length batch in
        {
          slack;
          admitted_pct =
            100. *. float_of_int (List.length a.Deadline.admitted) /. float_of_int n;
          guarantees_hold =
            List.for_all
              (fun (id, finish) ->
                let c = List.find (fun (c : Coflow.t) -> c.id = id) batch in
                finish <= deadline_of c +. 1e-9)
              a.Deadline.admitted;
        })
      [ 1.2; 2.; 4.; 8. ]
  in
  { n_jobs = List.length jobs; jobs = job_rows; deadlines }

let print ppf r =
  Format.fprintf ppf "  multi-stage jobs (%d pipelines):@." r.n_jobs;
  List.iter
    (fun row ->
      Format.fprintf ppf "    %-32s avg JCT %8.3fs@." row.policy row.avg_jct)
    r.jobs;
  Format.fprintf ppf "  deadline admission (EDF, deadline = slack x TcL):@.";
  List.iter
    (fun row ->
      Format.fprintf ppf
        "    slack %4.1fx  admitted %5.1f%%  guarantees hold: %b@." row.slack
        row.admitted_pct row.guarantees_hold)
    r.deadlines

let report ?settings ppf =
  Common.section ppf "EXTENSIONS: multi-stage jobs and deadline admission";
  print ppf (run ?settings ())

module D = Sunflow_stats.Descriptive
module Units = Sunflow_core.Units

type per_delta = {
  delta : float;
  sunflow_avg : float;
  sunflow_p95 : float;
  solstice_avg : float;
  solstice_p95 : float;
}

type result = { baseline : float; rows : per_delta list }

let default_deltas =
  [ Units.ms 100.; Units.ms 10.; Units.ms 1.; Units.us 100.; Units.us 10. ]

let run ?(settings = Common.default) ?(deltas = default_deltas) () =
  let baseline = settings.Common.delta in
  if not (List.mem baseline deltas) then
    invalid_arg "Exp_fig6.run: baseline delta not in the sweep";
  let base_points = Common.intra_points ~delta:baseline settings in
  let rows =
    List.map
      (fun delta ->
        let points = Common.intra_points ~delta settings in
        let normalised f =
          List.map2 (fun p b -> f p /. f b) points base_points
        in
        let sun = normalised (fun p -> p.Common.sunflow_cct) in
        let sol = normalised (fun p -> p.Common.solstice_cct) in
        {
          delta;
          sunflow_avg = D.mean sun;
          sunflow_p95 = D.percentile 95. sun;
          solstice_avg = D.mean sol;
          solstice_p95 = D.percentile 95. sol;
        })
      deltas
  in
  { baseline; rows }

let print ppf r =
  Format.fprintf ppf
    "  CCT normalised to the %a baseline@.  %-8s | %13s | %s@.  %-8s | %6s %6s | %6s %6s@."
    Units.pp_time r.baseline "" "Sunflow" "Solstice" "delta" "avg" "p95" "avg"
    "p95";
  List.iter
    (fun row ->
      Format.fprintf ppf "  %-8s | %6.2f %6.2f | %6.2f %6.2f@."
        (Format.asprintf "%a" Units.pp_time row.delta)
        row.sunflow_avg row.sunflow_p95 row.solstice_avg row.solstice_p95)
    r.rows;
  Common.kv ppf "paper (Sunflow)" "%s"
    "avg 5.71 / 1.00 / 0.65 / 0.61 / 0.61; p95 13.12 / 1.00 / 0.99 / 0.99 / 0.99"

let report ?settings ppf =
  Common.section ppf "FIGURE 6: intra-Coflow sensitivity to delta";
  print ppf (run ?settings ())

(** Table 4: Coflows classified by sender-to-receiver ratio, with the
    share of Coflows and of bytes per category. *)

type result = {
  stats : Sunflow_trace.Workload.class_stat list;
  n_coflows : int;
  total_bytes : float;
}

val run : ?settings:Common.settings -> unit -> result
val print : Format.formatter -> result -> unit

val report : ?settings:Common.settings -> Format.formatter -> unit
(** [run] then [print] under a section banner. *)

module D = Sunflow_stats.Descriptive
module Category = Sunflow_core.Coflow.Category
module Trace = Sunflow_trace.Trace
module R = Sunflow_sim.Sim_result

type result = {
  sunflow_avg_ratio : float;
  sunflow_p95_ratio : float;
  solstice_avg_ratio : float;
  solstice_p95_ratio : float;
  lemma1_holds : bool;
  single_line_optimal : bool;
  switching_minimal : bool;
  inter_avg_cct_vs_varys : float;
  inter_avg_cct_vs_aalo : float;
}

let run ?(settings = Common.default) () =
  let points = Common.intra_points settings in
  let sun_ratios = List.map (fun p -> p.Common.sunflow_cct /. p.Common.tcl) points in
  let sol_ratios =
    List.map (fun p -> p.Common.solstice_cct /. p.Common.tcl) points
  in
  (* a hair of tolerance over exact equality for float round-trips *)
  let close a b = Float.abs (a -. b) <= 1e-9 *. Float.max 1. b in
  let single_line_optimal =
    points
    |> List.filter (fun p -> p.Common.category <> Category.Many_to_many)
    |> List.for_all (fun p -> close p.Common.sunflow_cct p.Common.tcl)
  in
  let trace = Common.original_trace settings in
  let bandwidth = settings.Common.bandwidth and delta = settings.Common.delta in
  let sun = Common.run_sunflow ~delta ~bandwidth trace.Trace.coflows in
  let varys = Common.run_packet ~scheduler:`Varys ~bandwidth trace.Trace.coflows in
  let aalo = Common.run_packet ~scheduler:`Aalo ~bandwidth trace.Trace.coflows in
  {
    sunflow_avg_ratio = D.mean sun_ratios;
    sunflow_p95_ratio = D.percentile 95. sun_ratios;
    solstice_avg_ratio = D.mean sol_ratios;
    solstice_p95_ratio = D.percentile 95. sol_ratios;
    lemma1_holds = List.for_all (fun x -> x < 2.) sun_ratios;
    single_line_optimal;
    switching_minimal =
      List.for_all (fun p -> p.Common.sunflow_setups = p.Common.n_subflows) points;
    inter_avg_cct_vs_varys = R.average_cct sun /. R.average_cct varys;
    inter_avg_cct_vs_aalo = R.average_cct sun /. R.average_cct aalo;
  }

let print ppf r =
  Common.kv ppf "Sunflow CCT/TcL (avg, p95)" "%.2f, %.2f  [paper 1.03, 1.18]"
    r.sunflow_avg_ratio r.sunflow_p95_ratio;
  Common.kv ppf "Solstice CCT/TcL (avg, p95)" "%.2f, %.2f  [paper 1.48, 4.74]"
    r.solstice_avg_ratio r.solstice_p95_ratio;
  Common.kv ppf "Lemma 1 (CCT < 2 TcL everywhere)" "%b" r.lemma1_holds;
  Common.kv ppf "O2O/O2M/M2O exactly optimal" "%b" r.single_line_optimal;
  Common.kv ppf "switching count = |C| everywhere" "%b" r.switching_minimal;
  Common.kv ppf "inter avg CCT vs Varys" "%.2f  [paper 1.01]"
    r.inter_avg_cct_vs_varys;
  Common.kv ppf "inter avg CCT vs Aalo" "%.2f  [paper 0.83]"
    r.inter_avg_cct_vs_aalo

let report ?settings ppf =
  Common.section ppf "HEADLINE: paper's key claims";
  print ppf (run ?settings ())

(** Physical self-check: every Sunflow plan of the intra-Coflow
    evaluation is replayed on the executable switch model
    ({!Sunflow_switch}) — the analytical completion times the other
    experiments report must all be physically realisable. *)

type result = {
  n_plans : int;
  physically_valid : int;  (** plans with no physical violation *)
  cct_matches : int;
      (** plans whose physical drain instant equals the analytical
          finish within 1 ns *)
  switching_matches : int;
      (** plans whose physical switch count equals the planner's *)
}

val run : ?settings:Common.settings -> unit -> result
val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

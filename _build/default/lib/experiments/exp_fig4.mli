(** Figure 4: CDF of CCT/[T_L^c] and CCT/[T_L^p] over many-to-many
    Coflows (which carry over 99 % of the bytes) for Sunflow and
    Solstice at the default setting.

    Expected shape: Sunflow's CCT/[T_L^c] distribution sits entirely
    left of 2 (Lemma 1); Solstice's has a long tail. *)

type series = {
  label : string;
  deciles : float array;  (** p0, p10, ..., p100 *)
  avg : float;
  p95 : float;
}

type result = {
  n_m2m : int;
  series : series list;
      (** Sunflow /T_L^c, Sunflow /T_L^p, Solstice /T_L^c, Solstice /T_L^p *)
  chart : string;
      (** terminal CDF rendering of CCT/T_L^c ([S] Sunflow, [o]
          Solstice) *)
}

val run : ?settings:Common.settings -> unit -> result
val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

(** The paper's headline claims, checked in one place:

    - §1/§5.3.1: Sunflow CCT is within 2x of [T_L^c] for {e every}
      Coflow (Lemma 1) and ≈1.03x on average;
    - §5.3.1: Sunflow is exactly optimal (CCT = [T_L^c]) for
      one-to-one, one-to-many and many-to-one Coflows;
    - Fig. 5: Sunflow's switching count equals the number of subflows;
    - §5.4: under shortest-Coflow-first at original load, Sunflow's
      average CCT is comparable to Varys' and Aalo's. *)

type result = {
  sunflow_avg_ratio : float;  (** avg CCT/T_L^c, paper: 1.03 *)
  sunflow_p95_ratio : float;  (** paper: 1.18 *)
  solstice_avg_ratio : float;  (** paper: 1.48 *)
  solstice_p95_ratio : float;  (** paper: 4.74 *)
  lemma1_holds : bool;  (** every Coflow < 2x *)
  single_line_optimal : bool;
      (** CCT = T_L^c on every O2O/O2M/M2O Coflow *)
  switching_minimal : bool;  (** setups = |C| for every Coflow *)
  inter_avg_cct_vs_varys : float;  (** paper: 1.01 *)
  inter_avg_cct_vs_aalo : float;  (** paper: 0.83 *)
}

val run : ?settings:Common.settings -> unit -> result
val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

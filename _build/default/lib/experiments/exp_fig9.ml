module D = Sunflow_stats.Descriptive
module Units = Sunflow_core.Units
module Coflow = Sunflow_core.Coflow
module Bounds = Sunflow_core.Bounds
module Demand = Sunflow_core.Demand
module Trace = Sunflow_trace.Trace
module R = Sunflow_sim.Sim_result

type bucket = {
  tpl_lo : float;
  tpl_hi : float;
  count : int;
  mean_delta_varys : float;
  mean_delta_aalo : float;
}

type result = {
  buckets : bucket list;
  ratio_varys_avg : float;
  ratio_varys_p95 : float;
  ratio_aalo_avg : float;
  ratio_aalo_p95 : float;
  short_ratio_varys : float;
  long_ratio_varys : float;
  short_ratio_aalo : float;
  long_ratio_aalo : float;
}

type point = {
  tpl : float;
  long_ : bool;
  d_varys : float;
  d_aalo : float;
  r_varys : float;
  r_aalo : float;
}

let run ?(settings = Common.default) () =
  let trace = Common.original_trace settings in
  let coflows =
    List.filter
      (fun (c : Coflow.t) -> not (Demand.is_empty c.demand))
      trace.Trace.coflows
  in
  let bandwidth = settings.Common.bandwidth and delta = settings.Common.delta in
  let sun = Common.run_sunflow ~delta ~bandwidth trace.Trace.coflows in
  let varys = Common.run_packet ~scheduler:`Varys ~bandwidth trace.Trace.coflows in
  let aalo = Common.run_packet ~scheduler:`Aalo ~bandwidth trace.Trace.coflows in
  let points =
    List.map
      (fun (c : Coflow.t) ->
        let s = R.cct_of sun c.id in
        let v = R.cct_of varys c.id in
        let a = R.cct_of aalo c.id in
        {
          tpl = Bounds.packet_lower ~bandwidth c.demand;
          long_ = Coflow.is_long ~bandwidth ~delta c;
          d_varys = s -. v;
          d_aalo = s -. a;
          r_varys = s /. v;
          r_aalo = s /. a;
        })
      coflows
  in
  (* logarithmic TpL buckets for the scatter's x-axis *)
  let tpls = List.map (fun p -> p.tpl) points in
  let lo, hi = D.min_max tpls in
  let lo = Float.max lo 1e-6 in
  let n_buckets = 6 in
  let edges =
    Array.init (n_buckets + 1) (fun i ->
        lo *. ((hi /. lo) ** (float_of_int i /. float_of_int n_buckets)))
  in
  edges.(n_buckets) <- hi *. 1.0000001;
  let buckets =
    List.init n_buckets (fun i ->
        let members =
          List.filter
            (fun p -> p.tpl >= edges.(i) && p.tpl < edges.(i + 1))
            points
        in
        let mean f =
          match members with
          | [] -> 0.
          | _ -> D.mean (List.map f members)
        in
        {
          tpl_lo = edges.(i);
          tpl_hi = edges.(i + 1);
          count = List.length members;
          mean_delta_varys = mean (fun p -> p.d_varys);
          mean_delta_aalo = mean (fun p -> p.d_aalo);
        })
  in
  let avg f = D.mean (List.map f points) in
  let p95 f = D.percentile 95. (List.map f points) in
  let split_avg f keep =
    match List.filter keep points with
    | [] -> 0.
    | sel -> D.mean (List.map f sel)
  in
  {
    buckets;
    ratio_varys_avg = avg (fun p -> p.r_varys);
    ratio_varys_p95 = p95 (fun p -> p.r_varys);
    ratio_aalo_avg = avg (fun p -> p.r_aalo);
    ratio_aalo_p95 = p95 (fun p -> p.r_aalo);
    short_ratio_varys = split_avg (fun p -> p.r_varys) (fun p -> not p.long_);
    long_ratio_varys = split_avg (fun p -> p.r_varys) (fun p -> p.long_);
    short_ratio_aalo = split_avg (fun p -> p.r_aalo) (fun p -> not p.long_);
    long_ratio_aalo = split_avg (fun p -> p.r_aalo) (fun p -> p.long_);
  }

let print ppf r =
  Format.fprintf ppf "  mean CCT difference by T_L^p bucket (negative: Sunflow faster)@.";
  Format.fprintf ppf "  %-24s %5s %14s %14s@." "TpL range" "n" "d vs Varys"
    "d vs Aalo";
  List.iter
    (fun b ->
      Format.fprintf ppf "  [%8.3gs, %8.3gs) %5d %13.3gs %13.3gs@." b.tpl_lo
        b.tpl_hi b.count b.mean_delta_varys b.mean_delta_aalo)
    r.buckets;
  Common.kv ppf "CCT ratio vs Varys (avg, p95)" "%.2f, %.2f" r.ratio_varys_avg
    r.ratio_varys_p95;
  Common.kv ppf "CCT ratio vs Aalo (avg, p95)" "%.2f, %.2f" r.ratio_aalo_avg
    r.ratio_aalo_p95;
  Common.kv ppf "short / long vs Varys" "%.2f / %.2f" r.short_ratio_varys
    r.long_ratio_varys;
  Common.kv ppf "short / long vs Aalo" "%.2f / %.2f" r.short_ratio_aalo
    r.long_ratio_aalo;
  Common.kv ppf "paper" "%s"
    "vs Varys 1.87 avg / 2.52 p95 (short 2.16, long 1.07); vs Aalo 1.69 / 2.37 (1.96, 0.90)"

let report ?settings ppf =
  Common.section ppf "FIGURE 9: per-Coflow CCT, Sunflow vs Varys/Aalo (12% idleness)";
  print ppf (run ?settings ())

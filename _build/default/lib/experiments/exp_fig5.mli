(** Figure 5: distribution of circuit switching events, normalised by
    the minimum necessary count (the number of subflows), over
    many-to-many Coflows.

    Expected shape: Sunflow's normalised count is exactly 1 for every
    Coflow; Solstice's is several times larger and grows with the
    number of subflows (the paper reports a 0.84 linear correlation
    between Solstice's normalised count and [|C|]). *)

type result = {
  n_m2m : int;
  sunflow_deciles : float array;
  solstice_deciles : float array;
  sunflow_always_minimal : bool;
  solstice_avg : float;
  solstice_corr_subflows : float;
      (** Pearson correlation of Solstice's normalised count with |C| *)
}

val run : ?settings:Common.settings -> unit -> result
val print : Format.formatter -> result -> unit
val report : ?settings:Common.settings -> Format.formatter -> unit

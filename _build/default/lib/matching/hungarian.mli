(** Hungarian algorithm (Jonker–Volgenant potentials variant, O(n^3))
    for assignment problems on dense float matrices.

    The Edmonds baseline (c-Through / Helios style scheduling, §3.1.1 of
    the paper) computes a maximum-weight matching of the demand matrix
    for every fixed-length slot; this module provides it. *)

val min_cost_assignment : Dense.t -> int array
(** [min_cost_assignment c] is an array [a] mapping each row [i] to the
    column [a.(i)] of a minimum-total-cost perfect assignment of the
    square cost matrix [c]. *)

val max_weight_assignment : Dense.t -> int array
(** Perfect assignment maximising total weight (entries may be zero;
    zero-weight pairs are allowed in the result). *)

val max_weight_matching : Dense.t -> (int * int) list
(** The pairs of a maximum-weight assignment restricted to strictly
    positive entries: pairs whose weight is zero are dropped, so the
    result is the maximum-weight *matching* over positive edges when
    the matrix is non-negative. *)

val assignment_weight : Dense.t -> int array -> float
(** Total weight of an assignment under a matrix. *)

(* Greedy equalisation: repeatedly pick a deficient row and a deficient
   column and pour min(row deficit, col deficit) into their cell. The
   sum of row deficits always equals the sum of column deficits, so the
   loop drains both to zero in at most 2n steps. *)
let stuff m =
  let n = Dense.size m in
  let s = Dense.max_line_sum m in
  let out = Dense.copy m in
  if n = 0 || s <= 0. then out
  else begin
    let rdef = Array.map (fun x -> s -. x) (Dense.row_sums out) in
    let cdef = Array.map (fun x -> s -. x) (Dense.col_sums out) in
    let eps = s *. 1e-12 in
    let find_deficient d =
      let best = ref (-1) in
      Array.iteri (fun i v -> if v > eps && !best = -1 then best := i) d;
      !best
    in
    let rec go () =
      let i = find_deficient rdef in
      if i >= 0 then begin
        let j = find_deficient cdef in
        if j < 0 then () (* numerically drained *)
        else begin
          let amount = Float.min rdef.(i) cdef.(j) in
          out.(i).(j) <- out.(i).(j) +. amount;
          rdef.(i) <- rdef.(i) -. amount;
          cdef.(j) <- cdef.(j) -. amount;
          go ()
        end
      end
    in
    go ();
    out
  end

let dummy_added ~original ~stuffed = Dense.total stuffed -. Dense.total original

let is_balanced ?eps m =
  let s = Dense.max_line_sum m in
  let eps = match eps with Some e -> e | None -> 1e-6 *. Float.max s 1. in
  let ok = ref true in
  Array.iter (fun r -> if Float.abs (r -. s) > eps then ok := false) (Dense.row_sums m);
  Array.iter (fun c -> if Float.abs (c -. s) > eps then ok := false) (Dense.col_sums m);
  !ok

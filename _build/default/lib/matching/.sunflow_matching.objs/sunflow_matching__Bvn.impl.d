lib/matching/bvn.ml: Array Bipartite Dense Float Hopcroft_karp List Stuffing

lib/matching/hungarian.ml: Array Dense List

lib/matching/sinkhorn.ml: Array Dense Float

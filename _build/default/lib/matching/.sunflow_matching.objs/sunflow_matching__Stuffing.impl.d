lib/matching/stuffing.ml: Array Dense Float

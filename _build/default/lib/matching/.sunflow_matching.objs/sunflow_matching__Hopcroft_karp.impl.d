lib/matching/hopcroft_karp.ml: Array Bipartite List Queue

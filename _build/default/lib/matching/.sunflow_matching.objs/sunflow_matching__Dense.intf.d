lib/matching/dense.mli: Format

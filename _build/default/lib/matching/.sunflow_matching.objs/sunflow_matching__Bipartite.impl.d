lib/matching/bipartite.ml: Array Dense List

lib/matching/hungarian.mli: Dense

lib/matching/bvn.mli: Dense

lib/matching/stuffing.mli: Dense

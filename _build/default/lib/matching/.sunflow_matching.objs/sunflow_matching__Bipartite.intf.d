lib/matching/bipartite.mli: Dense

lib/matching/dense.ml: Array Float Format

lib/matching/sinkhorn.mli: Dense

type t = float array array

let make n = Array.make_matrix n n 0.

let size m =
  let n = Array.length m in
  Array.iter
    (fun row ->
      if Array.length row <> n then invalid_arg "Dense.size: ragged matrix")
    m;
  n

let copy m = Array.map Array.copy m

let row_sums m = Array.map (Array.fold_left ( +. ) 0.) m

let col_sums m =
  let n = size m in
  let s = Array.make n 0. in
  Array.iter (fun row -> Array.iteri (fun j v -> s.(j) <- s.(j) +. v) row) m;
  s

let total m =
  Array.fold_left (fun acc row -> acc +. Array.fold_left ( +. ) 0. row) 0. m

let max_entry m =
  Array.fold_left (fun acc row -> Array.fold_left max acc row) 0. m

let min_positive_entry m =
  Array.fold_left
    (fun acc row ->
      Array.fold_left (fun a v -> if v > 0. && v < a then v else a) acc row)
    infinity m

let max_line_sum m =
  let rmax = Array.fold_left max 0. (row_sums m) in
  let cmax = Array.fold_left max 0. (col_sums m) in
  max rmax cmax

let iter_positive f m =
  Array.iteri (fun i row -> Array.iteri (fun j v -> if v > 0. then f i j v) row) m

let count_positive m =
  let k = ref 0 in
  iter_positive (fun _ _ _ -> incr k) m;
  !k

let add a b =
  let n = size a in
  if size b <> n then invalid_arg "Dense.add: size mismatch";
  Array.init n (fun i -> Array.init n (fun j -> a.(i).(j) +. b.(i).(j)))

let sub_clamped a b =
  let n = size a in
  if size b <> n then invalid_arg "Dense.sub_clamped: size mismatch";
  Array.init n (fun i -> Array.init n (fun j -> Float.max 0. (a.(i).(j) -. b.(i).(j))))

let equal ?(eps = 1e-9) a b =
  let n = size a in
  size b = n
  &&
  let ok = ref true in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      if Float.abs (a.(i).(j) -. b.(i).(j)) > eps then ok := false
    done
  done;
  !ok

let quantize_up ~quantum m =
  if quantum <= 0. then copy m
  else
    Array.map
      (fun row ->
        Array.map
          (fun v -> if v <= 0. then 0. else quantum *. Float.ceil (v /. quantum))
          row)
      m

let pp ppf m =
  Array.iter
    (fun row ->
      Array.iteri
        (fun j v ->
          if j > 0 then Format.pp_print_string ppf " ";
          Format.fprintf ppf "%8.3g" v)
        row;
      Format.pp_print_newline ppf ())
    m

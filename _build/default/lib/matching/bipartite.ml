type t = { n_left : int; n_right : int; adj : int list array }

let create ~n_left ~n_right edges =
  if n_left < 0 || n_right < 0 then invalid_arg "Bipartite.create: negative size";
  let adj = Array.make (max n_left 1) [] in
  List.iter
    (fun (u, v) ->
      if u < 0 || u >= n_left || v < 0 || v >= n_right then
        invalid_arg "Bipartite.create: endpoint out of range";
      adj.(u) <- v :: adj.(u))
    edges;
  { n_left; n_right; adj }

let of_threshold m ~threshold =
  let n = Dense.size m in
  let edges = ref [] in
  Dense.iter_positive
    (fun i j v -> if v >= threshold then edges := (i, j) :: !edges)
    m;
  create ~n_left:n ~n_right:n !edges

let n_left g = g.n_left
let n_right g = g.n_right
let neighbours g u = g.adj.(u)
let edge_count g = Array.fold_left (fun k l -> k + List.length l) 0 g.adj

(* Classic O(n^3) Hungarian algorithm with row/column potentials and
   shortest augmenting paths (the "e-maxx" formulation), 1-indexed
   internally with column 0 as the virtual start. *)
let min_cost_assignment cost =
  let n = Dense.size cost in
  if n = 0 then [||]
  else begin
    let u = Array.make (n + 1) 0. in
    let v = Array.make (n + 1) 0. in
    let p = Array.make (n + 1) 0 in
    (* p.(j) = row currently assigned to column j, 0 = none *)
    let way = Array.make (n + 1) 0 in
    for i = 1 to n do
      p.(0) <- i;
      let j0 = ref 0 in
      let minv = Array.make (n + 1) infinity in
      let used = Array.make (n + 1) false in
      let continue_ = ref true in
      while !continue_ do
        used.(!j0) <- true;
        let i0 = p.(!j0) in
        let delta = ref infinity in
        let j1 = ref 0 in
        for j = 1 to n do
          if not used.(j) then begin
            let cur = cost.(i0 - 1).(j - 1) -. u.(i0) -. v.(j) in
            if cur < minv.(j) then begin
              minv.(j) <- cur;
              way.(j) <- !j0
            end;
            if minv.(j) < !delta then begin
              delta := minv.(j);
              j1 := j
            end
          end
        done;
        for j = 0 to n do
          if used.(j) then begin
            u.(p.(j)) <- u.(p.(j)) +. !delta;
            v.(j) <- v.(j) -. !delta
          end
          else minv.(j) <- minv.(j) -. !delta
        done;
        j0 := !j1;
        if p.(!j0) = 0 then continue_ := false
      done;
      (* augment along the recorded path *)
      let j0 = ref !j0 in
      while !j0 <> 0 do
        let j1 = way.(!j0) in
        p.(!j0) <- p.(j1);
        j0 := j1
      done
    done;
    let result = Array.make n (-1) in
    for j = 1 to n do
      result.(p.(j) - 1) <- j - 1
    done;
    result
  end

let max_weight_assignment w =
  let n = Dense.size w in
  let neg = Array.init n (fun i -> Array.init n (fun j -> -.w.(i).(j))) in
  min_cost_assignment neg

let max_weight_matching w =
  let a = max_weight_assignment w in
  let pairs = ref [] in
  Array.iteri
    (fun i j -> if w.(i).(j) > 0. then pairs := (i, j) :: !pairs)
    a;
  List.rev !pairs

let assignment_weight w a =
  let acc = ref 0. in
  Array.iteri (fun i j -> acc := !acc +. w.(i).(j)) a;
  !acc

(** Sinkhorn–Knopp scaling to a doubly stochastic matrix.

    TMS pre-processes the demand matrix by scaling it into a
    bandwidth-share matrix whose rows and columns all sum to one, then
    hands that to the BvN decomposition. Sinkhorn's algorithm —
    alternately normalising rows and columns — converges for any
    strictly positive matrix. *)

val scale :
  ?max_iterations:int -> ?tolerance:float -> Dense.t -> Dense.t
(** [scale m] returns a doubly stochastic matrix obtained by
    alternating row and column normalisation, stopping when every line
    sum is within [tolerance] of [1.] (default [1e-9]) or after
    [max_iterations] (default [1000]) sweeps. Raises [Invalid_argument]
    if the matrix is empty or has a non-positive entry (add a small
    constant first — exactly what TMS does, and what the Sunflow paper
    means by "heavily modify the original demand matrix"). *)

val max_line_deviation : Dense.t -> float
(** Largest absolute deviation of a row or column sum from [1.]. *)

(** Small dense float matrices.

    The circuit-scheduling baselines (Solstice, TMS, Edmonds) all reason
    about a Coflow demand densified over its active ports; this module
    provides the handful of matrix operations they share. Matrices are
    [float array array] with [m.(i).(j)] the demand from row (input
    port) [i] to column (output port) [j]. All matrices are square. *)

type t = float array array

val make : int -> t
(** [make n] is an [n] x [n] zero matrix. *)

val size : t -> int
(** Number of rows (= columns). Raises on ragged input. *)

val copy : t -> t
(** Deep copy. *)

val row_sums : t -> float array
val col_sums : t -> float array

val total : t -> float
(** Sum of all entries. *)

val max_entry : t -> float
(** Largest entry; [0.] for an empty matrix. *)

val min_positive_entry : t -> float
(** Smallest entry strictly greater than zero; [infinity] if none. *)

val max_line_sum : t -> float
(** Largest row or column sum — the bandwidth-feasibility bottleneck. *)

val iter_positive : (int -> int -> float -> unit) -> t -> unit
(** Iterate over entries strictly greater than zero. *)

val count_positive : t -> int

val add : t -> t -> t
(** Entry-wise sum; operands must have equal size. *)

val sub_clamped : t -> t -> t
(** Entry-wise difference, clamped below at [0.]. *)

val equal : ?eps:float -> t -> t -> bool
(** Entry-wise equality within [eps] (default [1e-9]). *)

val quantize_up : quantum:float -> t -> t
(** Round every positive entry up to the next multiple of [quantum].
    [quantum <= 0.] returns a copy unchanged. *)

val pp : Format.formatter -> t -> unit

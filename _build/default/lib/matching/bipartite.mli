(** Unweighted bipartite graphs between [n_left] left vertices and
    [n_right] right vertices, the input representation shared by the
    matching algorithms. *)

type t

val create : n_left:int -> n_right:int -> (int * int) list -> t
(** Build a graph from an edge list. Raises [Invalid_argument] on an
    endpoint out of range. Duplicate edges are kept (harmless for
    matching). *)

val of_threshold : Dense.t -> threshold:float -> t
(** Graph with an edge [(i, j)] for every matrix entry
    [m.(i).(j) >= threshold] that is strictly positive. *)

val n_left : t -> int
val n_right : t -> int
val neighbours : t -> int -> int list
(** Right-neighbours of a left vertex. *)

val edge_count : t -> int

(** Demand-matrix stuffing.

    TMS and Solstice both pre-process the demand matrix by adding dummy
    demand until every row and column sum equals the largest line sum,
    which makes the matrix a scaled doubly-stochastic matrix and hence
    (by Birkhoff's theorem) decomposable into perfect matchings. The
    Sunflow paper calls out this step as a source of inefficiency: the
    dummy demand occupies circuit time that serves no real traffic
    (§3.1.1, Fig. 1b's assignment A5). *)

val stuff : Dense.t -> Dense.t
(** [stuff m] is [m + dummy] with [dummy >= 0] entry-wise and every row
    and column sum of the result equal to [Dense.max_line_sum m]. The
    input is not modified. *)

val dummy_added : original:Dense.t -> stuffed:Dense.t -> float
(** Total dummy demand, [Dense.total stuffed -. Dense.total original]. *)

val is_balanced : ?eps:float -> Dense.t -> bool
(** True when all row and column sums agree within [eps] (default
    [1e-6] relative to the largest line sum). *)

type matching = { pair_left : int array; pair_right : int array; size : int }

let inf = max_int

(* Standard Hopcroft-Karp: alternate BFS layering from free left
   vertices with DFS augmentation along the layered graph. *)
let solve g =
  let nl = Bipartite.n_left g and nr = Bipartite.n_right g in
  let pair_left = Array.make (max nl 1) (-1) in
  let pair_right = Array.make (max nr 1) (-1) in
  let dist = Array.make (max nl 1) inf in
  let queue = Queue.create () in
  let bfs () =
    Queue.clear queue;
    let reachable_free = ref false in
    for u = 0 to nl - 1 do
      if pair_left.(u) = -1 then begin
        dist.(u) <- 0;
        Queue.add u queue
      end
      else dist.(u) <- inf
    done;
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      List.iter
        (fun v ->
          let u' = pair_right.(v) in
          if u' = -1 then reachable_free := true
          else if dist.(u') = inf then begin
            dist.(u') <- dist.(u) + 1;
            Queue.add u' queue
          end)
        (Bipartite.neighbours g u)
    done;
    !reachable_free
  in
  let rec dfs u =
    let rec try_edges = function
      | [] ->
        dist.(u) <- inf;
        false
      | v :: rest ->
        let u' = pair_right.(v) in
        let ok =
          if u' = -1 then true
          else if dist.(u') = dist.(u) + 1 then dfs u'
          else false
        in
        if ok then begin
          pair_left.(u) <- v;
          pair_right.(v) <- u;
          true
        end
        else try_edges rest
    in
    try_edges (Bipartite.neighbours g u)
  in
  let size = ref 0 in
  while bfs () do
    for u = 0 to nl - 1 do
      if pair_left.(u) = -1 && dfs u then incr size
    done
  done;
  { pair_left; pair_right; size = !size }

let is_perfect g m =
  Bipartite.n_left g = Bipartite.n_right g && m.size = Bipartite.n_left g

let perfect g =
  if Bipartite.n_left g <> Bipartite.n_right g then None
  else begin
    let m = solve g in
    if is_perfect g m then
      Some (List.init (Bipartite.n_left g) (fun u -> (u, m.pair_left.(u))))
    else None
  end

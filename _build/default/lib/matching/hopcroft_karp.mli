(** Hopcroft–Karp maximum-cardinality bipartite matching,
    O(E * sqrt(V)).

    Used by the Birkhoff–von-Neumann decomposition (TMS) and by
    Solstice's threshold decomposition, both of which repeatedly ask
    for perfect matchings over the positive (or above-threshold)
    entries of a stuffed demand matrix. *)

type matching = { pair_left : int array; pair_right : int array; size : int }
(** [pair_left.(u)] is the right vertex matched to left vertex [u], or
    [-1]; symmetrically for [pair_right]. [size] is the number of
    matched pairs. *)

val solve : Bipartite.t -> matching
(** A maximum matching of the graph. *)

val is_perfect : Bipartite.t -> matching -> bool
(** True when every left and every right vertex is matched (requires
    [n_left = n_right]). *)

val perfect : Bipartite.t -> (int * int) list option
(** [perfect g] is the edge list of a perfect matching if one exists
    (requires [n_left g = n_right g]), or [None]. *)

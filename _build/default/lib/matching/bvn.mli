(** Birkhoff–von-Neumann decomposition.

    A non-negative matrix whose row and column sums are all equal can be
    written as a weighted sum of (partial) permutation matrices; this is
    the engine behind the TMS circuit scheduler and the terminal phase
    of Solstice. Each term becomes one circuit assignment held for a
    duration proportional to its weight. *)

type term = { pairs : (int * int) list; weight : float }
(** One permutation-matrix term: the matched (row, column) pairs and the
    coefficient. *)

val decompose : ?eps:float -> Dense.t -> term list
(** [decompose m] returns terms whose weighted sum reconstructs [m]
    within numerical tolerance. [m] must be balanced in the sense of
    {!Stuffing.is_balanced} (raises [Invalid_argument] otherwise).
    Entries below [eps] (default: [1e-9] relative to the max entry) are
    treated as zero. Terminates in at most [count_positive m] steps
    because every step zeroes at least one entry. *)

val reconstruct : int -> term list -> Dense.t
(** [reconstruct n terms] rebuilds the [n] x [n] matrix from a
    decomposition; used in tests to check exactness. *)

let max_line_deviation m =
  let dev acc s = Float.max acc (Float.abs (s -. 1.)) in
  let rows = Array.fold_left dev 0. (Dense.row_sums m) in
  Array.fold_left dev rows (Dense.col_sums m)

let scale ?(max_iterations = 1000) ?(tolerance = 1e-9) m =
  let n = Dense.size m in
  if n = 0 then invalid_arg "Sinkhorn.scale: empty matrix";
  Array.iter
    (Array.iter (fun v ->
         if v <= 0. then
           invalid_arg "Sinkhorn.scale: matrix must be strictly positive"))
    m;
  let work = Dense.copy m in
  let normalise sums get set =
    Array.iteri
      (fun a s ->
        if s > 0. then
          for b = 0 to n - 1 do
            set a b (get a b /. s)
          done)
      sums
  in
  let rec sweep k =
    if k < max_iterations && max_line_deviation work > tolerance then begin
      normalise (Dense.row_sums work)
        (fun i j -> work.(i).(j))
        (fun i j v -> work.(i).(j) <- v);
      normalise (Dense.col_sums work)
        (fun j i -> work.(i).(j))
        (fun j i v -> work.(i).(j) <- v);
      sweep (k + 1)
    end
  in
  sweep 0;
  work

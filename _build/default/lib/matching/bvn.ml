type term = { pairs : (int * int) list; weight : float }

let decompose ?eps m =
  if not (Stuffing.is_balanced m) then
    invalid_arg "Bvn.decompose: matrix is not balanced";
  let top = Dense.max_entry m in
  let eps = match eps with Some e -> e | None -> 1e-9 *. Float.max top 1. in
  let work = Dense.copy m in
  (* Ports with no demand at all are matched to themselves implicitly:
     we decompose over the full n x n index set but only include pairs
     carrying positive demand in each term. To keep perfect matchings
     well-defined we restrict to active ports. *)
  let active_rows = ref [] and active_cols = ref [] in
  Array.iteri
    (fun i s -> if s > eps then active_rows := i :: !active_rows)
    (Dense.row_sums work);
  Array.iteri
    (fun j s -> if s > eps then active_cols := j :: !active_cols)
    (Dense.col_sums work);
  let rows = Array.of_list (List.rev !active_rows) in
  let cols = Array.of_list (List.rev !active_cols) in
  let k = Array.length rows in
  if k = 0 then []
  else if Array.length cols <> k then
    invalid_arg "Bvn.decompose: active row/column counts differ"
  else begin
    let terms = ref [] in
    let remaining = ref (Dense.total work) in
    let guard = ref (Dense.count_positive work + k + 1) in
    while !remaining > eps *. float_of_int (k * k) && !guard > 0 do
      decr guard;
      let edges = ref [] in
      Array.iteri
        (fun ri i ->
          Array.iteri
            (fun cj j -> if work.(i).(j) > eps then edges := (ri, cj) :: !edges)
            cols)
        rows;
      let g = Bipartite.create ~n_left:k ~n_right:k !edges in
      match Hopcroft_karp.perfect g with
      | None ->
        (* Should not happen on a balanced matrix; bail out rather than
           loop forever on numerical noise. *)
        guard := 0
      | Some matching ->
        let pairs = List.map (fun (ri, cj) -> (rows.(ri), cols.(cj))) matching in
        let weight =
          List.fold_left (fun w (i, j) -> Float.min w work.(i).(j)) infinity pairs
        in
        List.iter
          (fun (i, j) ->
            let v = work.(i).(j) -. weight in
            work.(i).(j) <- (if v < eps then 0. else v))
          pairs;
        remaining := Dense.total work;
        terms := { pairs; weight } :: !terms
    done;
    List.rev !terms
  end

let reconstruct n terms =
  let m = Dense.make n in
  List.iter
    (fun { pairs; weight } ->
      List.iter (fun (i, j) -> m.(i).(j) <- m.(i).(j) +. weight) pairs)
    terms;
  m

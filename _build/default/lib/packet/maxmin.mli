(** Max-min fair rate allocation by progressive filling.

    All given flows increase their rates at the same pace; when a port
    saturates, the flows crossing it freeze at their current rate and
    the rest keep growing. This is the intra-Coflow sharing Aalo falls
    back to when flow sizes are unknown, and — applied to all flows at
    once — the classic per-flow fairness baseline. *)

val allocate :
  Residual.t -> Rate_alloc.flow_id list -> (Rate_alloc.flow_id * float) list
(** [allocate residual flows] water-fills the flows into the remaining
    capacities, consuming them. Flows listed twice raise
    [Invalid_argument]. Returns the rate of every input flow (possibly
    [0.] when a port had no headroom). *)

(** Rate allocations for the packet-switched fabric.

    In the packet switch model (paper §2.1) many virtual output queues
    are served simultaneously subject to the per-port bandwidth
    constraints: the allocated rates out of any input port, and into
    any output port, must each sum to at most [B]. *)

type flow_id = { coflow : int; src : int; dst : int }

type t
(** A map from flows to rates (bytes/second). Flows absent from the
    map have rate [0.]. *)

val empty : unit -> t
val set : t -> flow_id -> float -> unit
(** Non-positive rates remove the entry. *)

val add : t -> flow_id -> float -> unit
val rate : t -> flow_id -> float
val to_list : t -> (flow_id * float) list
(** Sorted by [(coflow, src, dst)] for determinism. *)

val port_load : t -> [ `In of int | `Out of int ] -> float
(** Summed rate through one port. *)

val check_feasible : ?eps:float -> bandwidth:float -> t -> (unit, string) result
(** Verify the bandwidth constraints on every port within a relative
    tolerance (default [1e-6]); used by tests as an oracle over every
    packet scheduler. *)

type t = { coflow : Sunflow_core.Coflow.t; sent : float }

let fresh coflow = { coflow; sent = 0. }

let flows t =
  Sunflow_core.Demand.entries t.coflow.Sunflow_core.Coflow.demand
  |> List.map (fun ((src, dst), _) ->
         { Rate_alloc.coflow = t.coflow.Sunflow_core.Coflow.id; src; dst })

type scheduler = bandwidth:float -> t list -> Rate_alloc.t

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Bounds = Sunflow_core.Bounds

let gamma ~bandwidth demand = Bounds.packet_lower ~bandwidth demand

(* Bottleneck time of a Coflow under the current residual capacities:
   max over ports of (remaining bytes on the port / residual port
   bandwidth). Infinite when some needed port has no headroom. *)
let effective_gamma residual demand =
  let senders = Demand.senders demand and receivers = Demand.receivers demand in
  let of_port bytes avail = if bytes <= 0. then 0. else bytes /. avail in
  let worst =
    List.fold_left
      (fun acc i ->
        let avail = Residual.available_in residual i in
        if avail <= 0. then infinity
        else Float.max acc (of_port (Demand.row_sum demand i) avail))
      0. senders
  in
  List.fold_left
    (fun acc j ->
      let avail = Residual.available_out residual j in
      if avail <= 0. then infinity
      else Float.max acc (of_port (Demand.col_sum demand j) avail))
    worst receivers

let allocate ~bandwidth snapshots =
  let alloc = Rate_alloc.empty () in
  let residual = Residual.create ~bandwidth in
  let ordered =
    List.stable_sort
      (fun (a : Snapshot.t) (b : Snapshot.t) ->
        let ga = gamma ~bandwidth a.coflow.Coflow.demand in
        let gb = gamma ~bandwidth b.coflow.Coflow.demand in
        match compare ga gb with
        | 0 -> Coflow.compare_arrival a.coflow b.coflow
        | c -> c)
      snapshots
  in
  (* MADD pass: give each Coflow, in SEBF order, the minimal rates that
     finish all its flows together at its effective bottleneck time. *)
  List.iter
    (fun (s : Snapshot.t) ->
      let demand = s.coflow.Coflow.demand in
      let g = effective_gamma residual demand in
      if g > 0. && g < infinity then
        List.iter
          (fun ((src, dst), bytes) ->
            let r = bytes /. g in
            let r = Float.min r (Residual.circuit_headroom residual ~src ~dst) in
            if r > 0. then begin
              Residual.consume residual ~src ~dst r;
              Rate_alloc.add alloc
                { Rate_alloc.coflow = s.coflow.Coflow.id; src; dst }
                r
            end)
          (Demand.entries demand))
    ordered;
  (* Work-conserving backfill: leftover capacity goes to flows in the
     same priority order. *)
  List.iter
    (fun (s : Snapshot.t) ->
      List.iter
        (fun ((src, dst), _) ->
          let extra = Residual.circuit_headroom residual ~src ~dst in
          if extra > 0. then begin
            Residual.consume residual ~src ~dst extra;
            Rate_alloc.add alloc
              { Rate_alloc.coflow = s.coflow.Coflow.id; src; dst }
              extra
          end)
        (Demand.entries s.coflow.Coflow.demand))
    ordered;
  alloc

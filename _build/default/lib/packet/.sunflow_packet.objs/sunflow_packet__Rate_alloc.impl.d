lib/packet/rate_alloc.ml: Format Hashtbl List

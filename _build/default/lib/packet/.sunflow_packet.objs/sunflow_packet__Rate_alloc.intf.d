lib/packet/rate_alloc.mli:

lib/packet/maxmin.ml: Float Hashtbl List Rate_alloc Residual

lib/packet/varys.mli: Snapshot Sunflow_core

lib/packet/snapshot.mli: Rate_alloc Sunflow_core

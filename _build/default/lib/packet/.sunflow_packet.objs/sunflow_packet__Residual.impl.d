lib/packet/residual.ml: Float Hashtbl

lib/packet/aalo.ml: Float List Maxmin Rate_alloc Residual Snapshot Sunflow_core

lib/packet/fair.ml: List Maxmin Rate_alloc Residual Snapshot

lib/packet/fair.mli: Snapshot

lib/packet/aalo.mli: Snapshot

lib/packet/varys.ml: Float List Rate_alloc Residual Snapshot Sunflow_core

lib/packet/maxmin.mli: Rate_alloc Residual

lib/packet/residual.mli:

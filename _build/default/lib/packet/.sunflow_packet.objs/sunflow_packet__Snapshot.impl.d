lib/packet/snapshot.ml: List Rate_alloc Sunflow_core

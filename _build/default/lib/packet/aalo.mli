(** Aalo (Chowdhury & Stoica, SIGCOMM 2015): non-clairvoyant Coflow
    scheduling without prior knowledge of flow sizes.

    Aalo's D-CLAS discretises Coflows into priority queues by the bytes
    they have {e already sent}: a Coflow starts in the highest-priority
    queue and sinks into lower-priority queues as it crosses
    exponentially spaced thresholds. Within a queue Coflows are served
    FIFO; within a Coflow, with sizes unknown, the flows share the
    Coflow's bandwidth max-min fairly — which is what delays the long
    subflows of large Coflows and costs Aalo against Varys at the
    intra-Coflow level (the paper's Fig. 9 discussion).

    Two inter-queue disciplines are provided: strict priority (the
    default — a good approximation of the deployed system's steep
    exponential weights) and the weighted sharing of the Aalo paper
    itself, under which lower-priority queues retain a small guaranteed
    share instead of starving while higher queues are busy. *)

type params = {
  first_threshold : float;  (** queue-0 upper bound in bytes (10 MB) *)
  multiplier : float;  (** exponential spacing E between thresholds (10) *)
  n_queues : int;  (** K; the last queue is unbounded (10) *)
}

val default_params : params
(** 10 MB, x10, 10 queues — the Aalo paper's configuration. *)

val queue_of : params -> sent:float -> int
(** The queue a Coflow with [sent] bytes already sent belongs to. *)

val queue_weight : params -> int -> float
(** The weighted discipline's share weight of a queue: queue [k] gets
    weight [multiplier^(n_queues - 1 - k)], so each priority level
    outweighs the next by the queue-spacing factor E. *)

val allocate_with :
  ?sharing:[ `Strict | `Weighted ] -> params -> Snapshot.scheduler
(** [sharing] defaults to [`Strict]. Under [`Weighted], each pass
    grants queue [k] at most its weight share of the ports' remaining
    capacity, then a strict work-conserving pass distributes whatever
    is left. *)

val allocate : Snapshot.scheduler
(** [allocate_with default_params] (strict). *)

(** Varys (Chowdhury, Zhong & Stoica, SIGCOMM 2014): the clairvoyant
    packet-switched Coflow scheduler the paper compares against at the
    inter-Coflow level.

    Two ingredients:
    - {b SEBF} (smallest effective bottleneck first): Coflows are
      served in ascending order of their remaining bottleneck time
      [Gamma];
    - {b MADD} (minimum-allocation-for-desired-duration): each Coflow's
      flows get exactly the rates that let every flow finish together
      at the Coflow's bottleneck time, so no port is over-served.

    Residual bandwidth is backfilled work-conservingly in priority
    order. Like the real system, rates change only when the simulator
    reschedules (Coflow arrivals and completions); a subflow finishing
    early strands its bandwidth until the next event — the inefficiency
    the paper points out when discussing Fig. 9. *)

val gamma : bandwidth:float -> Sunflow_core.Demand.t -> float
(** The effective bottleneck time of a demand at full port rate —
    equal to the packet-switched lower bound [T_L^p]. *)

val allocate : Snapshot.scheduler
(** SEBF + MADD + backfill. *)

let allocate residual flows =
  let module F = struct
    type t = { id : Rate_alloc.flow_id; mutable rate : float; mutable live : bool }
  end in
  let distinct = List.sort_uniq compare flows in
  if List.length distinct <> List.length flows then
    invalid_arg "Maxmin.allocate: duplicate flow";
  let fs = List.map (fun id -> { F.id; rate = 0.; live = true }) flows in
  (* Track remaining headroom per port locally; commit to [residual]
     at the end so intermediate rounding stays internal. *)
  let head : ([ `In of int | `Out of int ], float) Hashtbl.t = Hashtbl.create 16 in
  let ports_of (id : Rate_alloc.flow_id) = [ `In id.src; `Out id.dst ] in
  List.iter
    (fun (f : F.t) ->
      List.iter
        (fun p ->
          if not (Hashtbl.mem head p) then
            Hashtbl.replace head p
              (match p with
              | `In i -> Residual.available_in residual i
              | `Out j -> Residual.available_out residual j))
        (ports_of f.id))
    fs;
  let live_count p =
    List.fold_left
      (fun k (f : F.t) ->
        if f.live && List.mem p (ports_of f.id) then k + 1 else k)
      0 fs
  in
  let rec fill () =
    let live = List.filter (fun (f : F.t) -> f.live) fs in
    if live <> [] then begin
      (* smallest equal increment that saturates some port *)
      let inc =
        Hashtbl.fold
          (fun p room acc ->
            let k = live_count p in
            if k = 0 then acc else Float.min acc (room /. float_of_int k))
          head infinity
      in
      if inc <= 0. || inc = infinity then
        List.iter (fun (f : F.t) -> f.live <- false) live
      else begin
        List.iter
          (fun (f : F.t) ->
            f.rate <- f.rate +. inc;
            List.iter
              (fun p -> Hashtbl.replace head p (Hashtbl.find head p -. inc))
              (ports_of f.id))
          live;
        (* freeze flows crossing a saturated port *)
        let tol = 1e-9 *. (1. +. inc) in
        List.iter
          (fun (f : F.t) ->
            if
              f.live
              && List.exists (fun p -> Hashtbl.find head p <= tol) (ports_of f.id)
            then f.live <- false)
          live;
        fill ()
      end
    end
  in
  fill ();
  List.iter
    (fun (f : F.t) ->
      if f.rate > 0. then
        Residual.consume residual ~src:f.id.src ~dst:f.id.dst f.rate)
    fs;
  List.map (fun (f : F.t) -> (f.id, f.rate)) fs

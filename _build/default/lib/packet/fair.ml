let allocate ~bandwidth snapshots =
  let alloc = Rate_alloc.empty () in
  let residual = Residual.create ~bandwidth in
  let flows = List.concat_map Snapshot.flows snapshots in
  let rates = Maxmin.allocate residual flows in
  List.iter (fun (id, r) -> if r > 0. then Rate_alloc.add alloc id r) rates;
  alloc

(** What a packet scheduler sees at a rescheduling instant: each active
    Coflow's remaining demand and how many bytes it has already sent
    (the signal Aalo's priority queues key on). *)

type t = {
  coflow : Sunflow_core.Coflow.t;  (** demand = bytes still to send *)
  sent : float;  (** bytes already sent since arrival *)
}

val fresh : Sunflow_core.Coflow.t -> t
(** A Coflow that has sent nothing yet. *)

val flows : t -> Rate_alloc.flow_id list
(** Ids of the unfinished flows, sorted. *)

type scheduler = bandwidth:float -> t list -> Rate_alloc.t
(** The interface every packet scheduler implements: carve per-flow
    rates out of an [N]-port fabric of link rate [bandwidth], respecting
    the port constraints of paper §2.1. *)

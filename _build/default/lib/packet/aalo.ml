module Coflow = Sunflow_core.Coflow

type params = {
  first_threshold : float;
  multiplier : float;
  n_queues : int;
}

let default_params =
  { first_threshold = 10e6; multiplier = 10.; n_queues = 10 }

let queue_of p ~sent =
  if sent < 0. then invalid_arg "Aalo.queue_of: negative sent bytes";
  let rec find k threshold =
    if k >= p.n_queues - 1 then p.n_queues - 1
    else if sent < threshold then k
    else find (k + 1) (threshold *. p.multiplier)
  in
  find 0 p.first_threshold

let queue_weight p k =
  if k < 0 || k >= p.n_queues then invalid_arg "Aalo.queue_weight: bad queue";
  p.multiplier ** float_of_int (p.n_queues - 1 - k)

let by_queue params snapshots =
  List.stable_sort
    (fun (a : Snapshot.t) (b : Snapshot.t) ->
      let qa = queue_of params ~sent:a.sent in
      let qb = queue_of params ~sent:b.sent in
      match compare qa qb with
      | 0 -> Coflow.compare_arrival a.coflow b.coflow
      | c -> c)
    snapshots

(* Serve Coflows in queue order against the residual capacities; each
   Coflow's flows share max-min fairly (sizes are unknown). *)
let serve alloc residual ordered =
  List.iter
    (fun (s : Snapshot.t) ->
      let rates = Maxmin.allocate residual (Snapshot.flows s) in
      List.iter
        (fun (id, r) -> if r > 0. then Rate_alloc.add alloc id r)
        rates)
    ordered

let allocate_strict params ~bandwidth snapshots =
  let alloc = Rate_alloc.empty () in
  let residual = Residual.create ~bandwidth in
  serve alloc residual (by_queue params snapshots);
  alloc

(* Weighted sharing: pass one grants every flow at most its queue's
   weight share of the port rate (so lower queues keep a guaranteed
   sliver even under a busy high-priority queue); pass two is strict
   max-min and work-conserving over the leftovers. *)
let allocate_weighted params ~bandwidth snapshots =
  let alloc = Rate_alloc.empty () in
  let residual = Residual.create ~bandwidth in
  let ordered = by_queue params snapshots in
  let total_weight =
    List.fold_left ( +. ) 0.
      (List.init params.n_queues (queue_weight params))
  in
  (* pass 1: weighted guarantees, consuming only the capped amount *)
  List.iter
    (fun (s : Snapshot.t) ->
      let cap =
        bandwidth
        *. queue_weight params (queue_of params ~sent:s.sent)
        /. total_weight
      in
      List.iter
        (fun (id : Rate_alloc.flow_id) ->
          let r =
            Float.min cap
              (Residual.circuit_headroom residual ~src:id.src ~dst:id.dst)
          in
          if r > 0. then begin
            Residual.consume residual ~src:id.src ~dst:id.dst r;
            Rate_alloc.add alloc id r
          end)
        (Snapshot.flows s))
    ordered;
  (* pass 2: strict, work-conserving *)
  serve alloc residual ordered;
  alloc

let allocate_with ?(sharing = `Strict) params ~bandwidth snapshots =
  match sharing with
  | `Strict -> allocate_strict params ~bandwidth snapshots
  | `Weighted -> allocate_weighted params ~bandwidth snapshots

let allocate ~bandwidth snapshots = allocate_with default_params ~bandwidth snapshots

type flow_id = { coflow : int; src : int; dst : int }

type t = (flow_id, float) Hashtbl.t

let empty () : t = Hashtbl.create 32

let set (t : t) f r = if r > 0. then Hashtbl.replace t f r else Hashtbl.remove t f

let rate (t : t) f = match Hashtbl.find_opt t f with Some r -> r | None -> 0.

let add t f r = set t f (rate t f +. r)

let to_list (t : t) =
  Hashtbl.fold (fun f r acc -> (f, r) :: acc) t []
  |> List.sort (fun ((a : flow_id), _) (b, _) ->
         compare (a.coflow, a.src, a.dst) (b.coflow, b.src, b.dst))

let port_load (t : t) port =
  Hashtbl.fold
    (fun f r acc ->
      match port with
      | `In i -> if f.src = i then acc +. r else acc
      | `Out j -> if f.dst = j then acc +. r else acc)
    t 0.

let check_feasible ?(eps = 1e-6) ~bandwidth t =
  let tol = bandwidth *. eps in
  let in_load : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let out_load : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let bump tbl k v =
    let prev = match Hashtbl.find_opt tbl k with Some x -> x | None -> 0. in
    Hashtbl.replace tbl k (prev +. v)
  in
  Hashtbl.iter
    (fun f r ->
      bump in_load f.src r;
      bump out_load f.dst r)
    t;
  let violation = ref None in
  let scan kind tbl =
    Hashtbl.iter
      (fun p load ->
        if load > bandwidth +. tol && !violation = None then
          violation :=
            Some
              (Format.asprintf "%s port %d over capacity: %g > %g" kind p load
                 bandwidth))
      tbl
  in
  scan "input" in_load;
  scan "output" out_load;
  match !violation with None -> Ok () | Some msg -> Error msg

(** Per-flow max-min fairness, the Coflow-agnostic baseline: every
    unfinished flow in the fabric shares bandwidth max-min fairly,
    regardless of which Coflow it belongs to (TCP-like behaviour). *)

val allocate : Snapshot.scheduler

(** Mutable per-port residual capacities shared by the packet
    schedulers while they carve up the fabric. *)

type t

val create : bandwidth:float -> t
(** Every port starts with [bandwidth] available (ports materialise
    lazily on first touch). *)

val available_in : t -> int -> float
val available_out : t -> int -> float

val circuit_headroom : t -> src:int -> dst:int -> float
(** [min (available_in src) (available_out dst)]. *)

val consume : t -> src:int -> dst:int -> float -> unit
(** Deduct a rate from both ports; clamps tiny negative residues to
    [0.]. Raises [Invalid_argument] when over-consuming beyond
    numerical tolerance. *)

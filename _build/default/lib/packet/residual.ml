type t = {
  bandwidth : float;
  ins : (int, float) Hashtbl.t;
  outs : (int, float) Hashtbl.t;
}

let create ~bandwidth =
  if bandwidth <= 0. then invalid_arg "Residual.create: bandwidth <= 0";
  { bandwidth; ins = Hashtbl.create 16; outs = Hashtbl.create 16 }

let get tbl bandwidth p =
  match Hashtbl.find_opt tbl p with Some v -> v | None -> bandwidth

let available_in t i = get t.ins t.bandwidth i
let available_out t j = get t.outs t.bandwidth j

let circuit_headroom t ~src ~dst =
  Float.min (available_in t src) (available_out t dst)

let consume t ~src ~dst r =
  if r < 0. then invalid_arg "Residual.consume: negative rate";
  let tol = t.bandwidth *. 1e-6 in
  let take tbl p =
    let v = get tbl t.bandwidth p in
    let v' = v -. r in
    if v' < -.tol then invalid_arg "Residual.consume: port over capacity";
    Hashtbl.replace tbl p (Float.max 0. v')
  in
  take t.ins src;
  take t.outs dst

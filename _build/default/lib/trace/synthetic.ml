module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units
module Rng = Sunflow_stats.Rng

type params = {
  seed : int;
  n_ports : int;
  n_coflows : int;
  span : float;
  category_weights : (float * Coflow.Category.t) list;
  fanout_max : int;
  width_max : int;
  small_flow_mb : float * float;
  m2m_reducer_mb : float * float;
}

let default_params =
  {
    seed = 46;
    n_ports = 150;
    n_coflows = 526;
    span = 3600.;
    category_weights =
      [
        (23.4, Coflow.Category.One_to_one);
        (9.9, Coflow.Category.One_to_many);
        (40.1, Coflow.Category.Many_to_one);
        (26.6, Coflow.Category.Many_to_many);
      ];
    fanout_max = 10;
    width_max = 35;
    small_flow_mb = (1.0, 0.5);
    m2m_reducer_mb = (80., 2.5);
  }

(* Whole megabytes with a 1 MB floor, like the original trace. *)
let round_mb bytes = Units.mb (Float.max 1. (Float.round (Units.to_mb bytes)))

let lognormal_mb rng (median, sigma) =
  Units.mb (Rng.lognormal rng ~mu:(log median) ~sigma)

(* Heavy-tailed width in [2, cap]: most shuffles are narrow, a few are
   fabric-wide. *)
let heavy_width rng cap =
  let w = int_of_float (Rng.pareto rng ~shape:1.2 ~scale:3.) in
  max 2 (min cap w)

let distinct_ports rng ~n_ports ~count ~avoid =
  let chosen = Hashtbl.create 16 in
  List.iter (fun p -> Hashtbl.replace chosen p ()) avoid;
  let picked = ref [] in
  while List.length !picked < count do
    let p = Rng.int rng n_ports in
    if not (Hashtbl.mem chosen p) then begin
      Hashtbl.replace chosen p ();
      picked := p :: !picked
    end
  done;
  List.rev !picked

let generate p =
  if p.n_ports <= 0 || p.n_coflows < 0 then
    invalid_arg "Synthetic.generate: non-positive sizes";
  if p.width_max * 2 > p.n_ports then
    invalid_arg "Synthetic.generate: width_max too large for the fabric";
  if p.fanout_max + 1 > p.n_ports then
    invalid_arg "Synthetic.generate: fanout_max too large for the fabric";
  if p.span <= 0. then invalid_arg "Synthetic.generate: non-positive span";
  let rng = Rng.create p.seed in
  let mean_gap = p.span /. float_of_int (max 1 p.n_coflows) in
  let make_coflow id arrival =
    let demand = Demand.create () in
    let category =
      Rng.choose_weighted rng p.category_weights
    in
    (match category with
    | Coflow.Category.One_to_one ->
      let ports = distinct_ports rng ~n_ports:p.n_ports ~count:2 ~avoid:[] in
      (match ports with
      | [ s; r ] -> Demand.set demand s r (round_mb (lognormal_mb rng p.small_flow_mb))
      | _ -> assert false)
    | Coflow.Category.One_to_many ->
      let width = 2 + Rng.int rng (p.fanout_max - 1) in
      let sender = Rng.int rng p.n_ports in
      let receivers =
        distinct_ports rng ~n_ports:p.n_ports ~count:width ~avoid:[ sender ]
      in
      List.iter
        (fun r ->
          Demand.set demand sender r (round_mb (lognormal_mb rng p.small_flow_mb)))
        receivers
    | Coflow.Category.Many_to_one ->
      let width = 2 + Rng.int rng (p.fanout_max - 1) in
      let receiver = Rng.int rng p.n_ports in
      let senders =
        distinct_ports rng ~n_ports:p.n_ports ~count:width ~avoid:[ receiver ]
      in
      List.iter
        (fun s ->
          Demand.set demand s receiver (round_mb (lognormal_mb rng p.small_flow_mb)))
        senders
    | Coflow.Category.Many_to_many ->
      let n_senders = heavy_width rng p.width_max in
      let n_receivers = heavy_width rng p.width_max in
      let senders =
        distinct_ports rng ~n_ports:p.n_ports ~count:n_senders ~avoid:[]
      in
      let receivers =
        distinct_ports rng ~n_ports:p.n_ports ~count:n_receivers ~avoid:senders
      in
      (* full shuffle with the real trace's structure: each reducer's
         heavy-tailed total is split evenly across the mappers (the
         benchmark format stores per-reducer totals only) *)
      List.iter
        (fun r ->
          let total = lognormal_mb rng p.m2m_reducer_mb in
          let share = total /. float_of_int n_senders in
          List.iter (fun s -> Demand.set demand s r (round_mb share)) senders)
        receivers);
    Coflow.make ~id ~arrival demand
  in
  let rec arrivals k t acc =
    if k = 0 then List.rev acc
    else
      let t = t +. Rng.exponential rng ~mean:mean_gap in
      arrivals (k - 1) t (t :: acc)
  in
  let coflows = List.mapi make_coflow (arrivals p.n_coflows 0. []) in
  { Trace.n_ports = p.n_ports; coflows }

lib/trace/synthetic.mli: Sunflow_core Trace

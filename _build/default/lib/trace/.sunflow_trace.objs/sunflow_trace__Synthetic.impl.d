lib/trace/synthetic.ml: Float Hashtbl List Sunflow_core Sunflow_stats Trace

lib/trace/trace.ml: Buffer Format Fun List Printf String Sunflow_core

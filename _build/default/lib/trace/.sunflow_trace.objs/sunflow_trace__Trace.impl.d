lib/trace/trace.ml: Buffer Format List Printf String Sunflow_core

lib/trace/trace.mli: Sunflow_core

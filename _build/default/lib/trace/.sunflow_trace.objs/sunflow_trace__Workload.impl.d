lib/trace/workload.ml: Float List Sunflow_core Sunflow_stats Trace

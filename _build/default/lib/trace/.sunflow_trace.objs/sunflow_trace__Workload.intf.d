lib/trace/workload.mli: Sunflow_core Trace

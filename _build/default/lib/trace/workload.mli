(** Workload preparation and measurement (paper §5.1, §5.4).

    The evaluation pipeline is: (real or synthetic) trace → ±5 % size
    perturbation with a 1 MB floor → optionally scale bytes to a target
    network idleness. This module implements each step plus the
    classification and idleness metrics the paper reports. *)

val perturb :
  ?fraction:float ->
  ?floor:float ->
  seed:int ->
  Trace.t ->
  Trace.t
(** Multiply every flow size by a uniform factor in
    [[1 - fraction, 1 + fraction]] (default [0.05]), lower-bounding the
    result at [floor] (default 1 MB, the smallest flow in the paper's
    trace). Deterministic in [seed]. *)

type class_stat = {
  category : Sunflow_core.Coflow.Category.t;
  count : int;
  coflow_pct : float;
  bytes : float;
  bytes_pct : float;
}

val classify : Trace.t -> class_stat list
(** Table 4: Coflows and bytes by sender-to-receiver category, in
    {!Sunflow_core.Coflow.Category.all} order. Percentages are [0.] on
    an empty trace. *)

val alpha_max : bandwidth:float -> delta:float -> Trace.t -> float
(** Largest Lemma-2 [alpha] over the trace — the paper's trace yields
    1.25 at 1 Gbps and 10 ms (so CCT/T_L^p <= 4.5 for every Coflow). *)

val idleness : bandwidth:float -> Trace.t -> float
(** Fraction of the observation window with no active Coflow, a Coflow
    being active during [[arrival, arrival + T_L^p]] (§5.4). The window
    runs from the first arrival to the last such deadline. [1.] for an
    empty trace. *)

val scale_to_idleness :
  ?tolerance:float ->
  bandwidth:float ->
  target:float ->
  Trace.t ->
  Trace.t * float
(** Scale every Coflow's bytes by one global factor so the trace
    attains the target idleness at the given bandwidth, preserving
    structural characteristics (§5.4). Returns the scaled trace and the
    factor. Binary search to [tolerance] (default [0.002] absolute
    idleness). Raises [Invalid_argument] when the target is outside
    [(0, 1)] or unattainable within a factor of [1e-8 .. 1e8]. *)

val long_short_split :
  bandwidth:float -> delta:float -> Trace.t ->
  Sunflow_core.Coflow.t list * Sunflow_core.Coflow.t list
(** [(long, short)] Coflows under the paper's [p_avg > 40 delta]
    criterion (§5.3.2). *)

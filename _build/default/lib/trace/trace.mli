(** The coflow-benchmark trace format.

    The paper's workload is a one-hour Facebook Hive/MapReduce trace
    distributed as [github.com/coflow/coflow-benchmark] in a simple
    text format, which this module reads and writes:

    {v
    <num_racks> <num_coflows>
    <id> <arrival_ms> <num_mappers> <rack>... <num_reducers> <rack>:<MB>...
    v}

    Each mapper rack sends an equal share of each reducer's total to
    that reducer; rack numbers double as switch port ids. The format
    stores only per-reducer totals, so writing a Coflow whose flows are
    uneven and re-reading it yields the evenly-split approximation
    (exact round-trip for shuffle-shaped Coflows).

    A user with the real trace file can load it directly; the synthetic
    generator ({!Synthetic}) produces traces in the same representation
    otherwise. *)

type t = { n_ports : int; coflows : Sunflow_core.Coflow.t list }

exception Parse_error of { line : int; message : string }

val parse : string -> t
(** Parse the format from a string. Raises {!Parse_error} with a
    1-based line number on malformed input (bad counts, rack out of
    range, non-positive size, negative arrival). Blank lines and lines
    starting with [#] are skipped. *)

val load : string -> t
(** [parse] the contents of a file. *)

val to_string : t -> string
(** Serialise. Senders become the mapper list; each receiver's column
    sum becomes its reducer total (in MB, 6 significant digits). *)

val save : string -> t -> unit

val total_bytes : t -> float
val n_coflows : t -> int

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units

type t = { n_ports : int; coflows : Coflow.t list }

exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

let tokens_of_line s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun tok -> tok <> "")

let int_tok line tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> fail line "expected an integer, got %S" tok

let float_tok line tok =
  match float_of_string_opt tok with
  | Some v -> v
  | None -> fail line "expected a number, got %S" tok

let parse_coflow ~n_ports ~line toks =
  let check_rack r =
    if r < 0 || r >= n_ports then fail line "rack %d out of range [0, %d)" r n_ports
  in
  match toks with
  | id :: arrival_ms :: n_mappers :: rest ->
    let id = int_tok line id in
    let arrival = float_tok line arrival_ms /. 1e3 in
    if arrival < 0. then fail line "negative arrival time";
    let n_mappers = int_tok line n_mappers in
    if n_mappers <= 0 then fail line "coflow %d has no mappers" id;
    if List.length rest < n_mappers + 1 then
      fail line "coflow %d: truncated mapper list" id;
    let rec split k acc rest =
      if k = 0 then (List.rev acc, rest)
      else
        match rest with
        | tok :: rest -> split (k - 1) (int_tok line tok :: acc) rest
        | [] -> fail line "coflow %d: truncated mapper list" id
    in
    let mappers, rest = split n_mappers [] rest in
    List.iter check_rack mappers;
    (match rest with
    | n_reducers :: rest ->
      let n_reducers = int_tok line n_reducers in
      if n_reducers <= 0 then fail line "coflow %d has no reducers" id;
      if List.length rest <> n_reducers then
        fail line "coflow %d: expected %d reducers, found %d" id n_reducers
          (List.length rest);
      let demand = Demand.create () in
      List.iter
        (fun tok ->
          match String.split_on_char ':' tok with
          | [ rack; size_mb ] ->
            let rack = int_tok line rack in
            check_rack rack;
            let size = Units.mb (float_tok line size_mb) in
            if size <= 0. then fail line "coflow %d: non-positive size %S" id tok;
            let share = size /. float_of_int n_mappers in
            List.iter (fun m -> Demand.add demand m rack share) mappers
          | _ -> fail line "coflow %d: malformed reducer %S" id tok)
        rest;
      Coflow.make ~id ~arrival demand
    | [] -> fail line "coflow %d: missing reducer count" id)
  | _ -> fail line "coflow line needs at least id, arrival and mapper count"

let parse text =
  let lines = String.split_on_char '\n' text in
  let meaningful =
    List.mapi (fun i l -> (i + 1, String.trim l)) lines
    |> List.filter (fun (_, l) -> l <> "" && not (String.length l > 0 && l.[0] = '#'))
  in
  match meaningful with
  | [] -> raise (Parse_error { line = 1; message = "empty trace" })
  | (line0, header) :: rest ->
    (match tokens_of_line header with
    | [ n_ports; n_coflows ] ->
      let n_ports = int_tok line0 n_ports in
      let n_coflows = int_tok line0 n_coflows in
      if n_ports <= 0 then fail line0 "non-positive port count";
      if List.length rest <> n_coflows then
        fail line0 "header promises %d coflows, file has %d" n_coflows
          (List.length rest);
      let coflows =
        List.map
          (fun (line, l) -> parse_coflow ~n_ports ~line (tokens_of_line l))
          rest
      in
      { n_ports; coflows }
    | _ -> fail line0 "header must be: <num_racks> <num_coflows>")

let load path =
  let ic = open_in path in
  let content =
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  in
  parse content

let coflow_line buf (c : Coflow.t) =
  let senders = Demand.senders c.demand in
  let receivers = Demand.receivers c.demand in
  Buffer.add_string buf
    (Printf.sprintf "%d %.0f %d" c.id (c.arrival *. 1e3) (List.length senders));
  List.iter (fun m -> Buffer.add_string buf (Printf.sprintf " %d" m)) senders;
  Buffer.add_string buf (Printf.sprintf " %d" (List.length receivers));
  List.iter
    (fun r ->
      let mb = Units.to_mb (Demand.col_sum c.demand r) in
      Buffer.add_string buf (Printf.sprintf " %d:%.6g" r mb))
    receivers;
  Buffer.add_char buf '\n'

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Printf.sprintf "%d %d\n" t.n_ports (List.length t.coflows));
  List.iter (coflow_line buf) t.coflows;
  Buffer.contents buf

let save path t =
  let text = to_string t in
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      output_string oc text;
      (* flush inside the protected section so write errors surface as
         exceptions rather than vanishing in [close_out_noerr] *)
      flush oc)

let total_bytes t =
  List.fold_left (fun acc c -> acc +. Coflow.total_bytes c) 0. t.coflows

let n_coflows t = List.length t.coflows

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Bounds = Sunflow_core.Bounds
module Units = Sunflow_core.Units
module Rng = Sunflow_stats.Rng

let perturb ?(fraction = 0.05) ?(floor = Units.mb 1.) ~seed (t : Trace.t) =
  if fraction < 0. || fraction >= 1. then
    invalid_arg "Workload.perturb: fraction outside [0, 1)";
  let rng = Rng.create seed in
  let coflows =
    List.map
      (fun (c : Coflow.t) ->
        let demand =
          Demand.map
            (fun _ _ bytes ->
              let f = Rng.uniform rng ~lo:(1. -. fraction) ~hi:(1. +. fraction) in
              Float.max floor (bytes *. f))
            c.demand
        in
        Coflow.with_demand c demand)
      t.coflows
  in
  { t with coflows }

type class_stat = {
  category : Coflow.Category.t;
  count : int;
  coflow_pct : float;
  bytes : float;
  bytes_pct : float;
}

let classify (t : Trace.t) =
  let total_count = List.length t.coflows in
  let total_bytes = Trace.total_bytes t in
  List.map
    (fun category ->
      let members =
        List.filter (fun c -> Coflow.category c = category) t.coflows
      in
      let count = List.length members in
      let bytes =
        List.fold_left (fun a c -> a +. Coflow.total_bytes c) 0. members
      in
      {
        category;
        count;
        coflow_pct =
          (if total_count = 0 then 0.
           else 100. *. float_of_int count /. float_of_int total_count);
        bytes;
        bytes_pct = (if total_bytes = 0. then 0. else 100. *. bytes /. total_bytes);
      })
    Coflow.Category.all

let alpha_max ~bandwidth ~delta (t : Trace.t) =
  List.fold_left
    (fun acc (c : Coflow.t) ->
      if Demand.is_empty c.demand then acc
      else Float.max acc (Bounds.alpha ~bandwidth ~delta c.demand))
    0. t.coflows

let active_intervals ~bandwidth (t : Trace.t) =
  List.filter_map
    (fun (c : Coflow.t) ->
      if Demand.is_empty c.demand then None
      else
        Some (c.arrival, c.arrival +. Bounds.packet_lower ~bandwidth c.demand))
    t.coflows
  |> List.sort compare

let idleness ~bandwidth (t : Trace.t) =
  match active_intervals ~bandwidth t with
  | [] -> 1.
  | intervals ->
    let first = List.fold_left (fun a (s, _) -> Float.min a s) infinity intervals in
    let last = List.fold_left (fun a (_, e) -> Float.max a e) 0. intervals in
    let span = last -. first in
    if span <= 0. then 0.
    else begin
      (* union of sorted intervals *)
      let covered, _ =
        List.fold_left
          (fun (acc, frontier) (s, e) ->
            let s = Float.max s frontier in
            if e > s then (acc +. (e -. s), e) else (acc, frontier))
          (0., first) intervals
      in
      1. -. (covered /. span)
    end

let scale_bytes factor (t : Trace.t) =
  let coflows =
    List.map
      (fun (c : Coflow.t) -> Coflow.with_demand c (Demand.scale factor c.demand))
      t.coflows
  in
  { t with coflows }

let scale_to_idleness ?(tolerance = 0.002) ~bandwidth ~target (t : Trace.t) =
  if target <= 0. || target >= 1. then
    invalid_arg "Workload.scale_to_idleness: target outside (0, 1)";
  let measure k = idleness ~bandwidth (scale_bytes k t) in
  (* idleness decreases as bytes grow *)
  let lo = ref 1e-8 and hi = ref 1e8 in
  if measure !lo < target || measure !hi > target then
    invalid_arg "Workload.scale_to_idleness: target unattainable";
  let best = ref 1. in
  for _ = 1 to 60 do
    let mid = sqrt (!lo *. !hi) in
    best := mid;
    if measure mid > target then lo := mid else hi := mid
  done;
  let k = !best in
  if Float.abs (measure k -. target) > tolerance then
    invalid_arg "Workload.scale_to_idleness: did not converge";
  (scale_bytes k t, k)

let long_short_split ~bandwidth ~delta (t : Trace.t) =
  List.partition
    (fun (c : Coflow.t) ->
      (not (Demand.is_empty c.demand)) && Coflow.is_long ~bandwidth ~delta c)
    t.coflows

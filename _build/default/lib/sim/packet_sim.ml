module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Snapshot = Sunflow_packet.Snapshot
module Rate_alloc = Sunflow_packet.Rate_alloc

exception Stuck of float

type active = {
  orig : Coflow.t;
  remaining : Demand.t;
  mutable sent : float;
}

(* Bytes below one microsecond of transmission are rounding dust, not
   demand: time arithmetic at hour scale carries ~1e-12 s of error,
   which at high link rates is a fraction of a byte per step. Flows are
   megabytes, so the tolerance is harmless. *)
let byte_eps bandwidth = Float.max 1e-3 (bandwidth *. 1e-6)

let snap_demand ~bandwidth d =
  let eps = byte_eps bandwidth in
  List.iter
    (fun ((i, j), v) -> if v <= eps then Demand.set d i j 0.)
    (Demand.entries d)

let check_unique_ids coflows =
  let ids = List.map (fun c -> c.Coflow.id) coflows in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Packet_sim.run: duplicate Coflow ids"

let aalo_thresholds (p : Sunflow_packet.Aalo.params) =
  List.init (p.n_queues - 1) (fun k ->
      p.first_threshold *. (p.multiplier ** float_of_int k))

let no_release _ _ = []

let run ?(sent_thresholds = []) ?(on_complete = no_release) ~scheduler
    ~bandwidth coflows =
  let sent_thresholds = List.sort_uniq compare sent_thresholds in
  if bandwidth <= 0. then invalid_arg "Packet_sim.run: bandwidth <= 0";
  check_unique_ids coflows;
  let arrivals = Event_queue.create () in
  List.iter
    (fun c -> Event_queue.push arrivals ~time:c.Coflow.arrival c)
    (List.sort Coflow.compare_arrival coflows);
  let active : active list ref = ref [] in
  let ccts = ref [] and finishes = ref [] in
  let n_events = ref 0 in
  let makespan = ref 0. in
  let record_finish (a : active) t =
    ccts := (a.orig.Coflow.id, t -. a.orig.Coflow.arrival) :: !ccts;
    finishes := (a.orig.Coflow.id, t) :: !finishes;
    makespan := Float.max !makespan t
  in
  let admit t =
    List.iter
      (fun (_, (c : Coflow.t)) ->
        if Demand.is_empty c.demand then begin
          (* empty Coflows complete the moment they arrive *)
          ccts := (c.id, 0.) :: !ccts;
          finishes := (c.id, c.arrival) :: !finishes
        end
        else
          active :=
            { orig = c; remaining = Demand.copy c.demand; sent = 0. } :: !active)
      (Event_queue.drain_until arrivals t)
  in
  let rec loop t =
    incr n_events;
    match (!active, Event_queue.peek arrivals) with
    | [], None -> ()
    | [], Some (ta, _) ->
      admit ta;
      loop ta
    | actives, next_arrival ->
      let snapshots =
        List.map
          (fun a ->
            { Snapshot.coflow = Coflow.with_demand a.orig a.remaining;
              sent = a.sent })
          actives
      in
      let rates = scheduler ~bandwidth snapshots in
      (* earliest Coflow completion under the current constant rates *)
      let completion (a : active) =
        List.fold_left
          (fun acc ((src, dst), bytes) ->
            let r =
              Rate_alloc.rate rates
                { Rate_alloc.coflow = a.orig.Coflow.id; src; dst }
            in
            if r <= 0. then infinity else Float.max acc (t +. (bytes /. r)))
          t
          (Demand.entries a.remaining)
      in
      let t_done =
        List.fold_left (fun acc a -> Float.min acc (completion a)) infinity
          actives
      in
      (* next instant some Coflow's cumulative sent bytes cross a
         priority threshold (Aalo queue boundaries) *)
      let threshold_crossing (a : active) =
        (* half-byte tolerance so a crossing that lands an ulp short of
           the threshold is not rescheduled forever (Zeno loop) *)
        match List.find_opt (fun th -> th > a.sent +. 0.5) sent_thresholds with
        | None -> infinity
        | Some th ->
          let total_rate =
            List.fold_left
              (fun acc ((src, dst), _) ->
                acc
                +. Rate_alloc.rate rates
                     { Rate_alloc.coflow = a.orig.Coflow.id; src; dst })
              0.
              (Demand.entries a.remaining)
          in
          if total_rate <= 0. then infinity
          else t +. ((th -. a.sent) /. total_rate)
      in
      let t_cross =
        if sent_thresholds = [] then infinity
        else
          List.fold_left
            (fun acc a -> Float.min acc (threshold_crossing a))
            infinity actives
      in
      let t_done = Float.min t_done t_cross in
      let t_next =
        match next_arrival with
        | Some (ta, _) -> Float.min ta t_done
        | None -> t_done
      in
      if t_next = infinity then raise (Stuck t);
      let dt = t_next -. t in
      List.iter
        (fun (a : active) ->
          List.iter
            (fun ((src, dst), bytes) ->
              let r =
                Rate_alloc.rate rates
                  { Rate_alloc.coflow = a.orig.Coflow.id; src; dst }
              in
              let moved = Float.min bytes (r *. dt) in
              if moved > 0. then begin
                Demand.drain a.remaining src dst moved;
                a.sent <- a.sent +. moved
              end)
            (Demand.entries a.remaining);
          snap_demand ~bandwidth a.remaining)
        actives;
      let finished, still =
        List.partition (fun a -> Demand.is_empty a.remaining) actives
      in
      List.iter
        (fun a ->
          record_finish a t_next;
          List.iter
            (fun (c : Coflow.t) ->
              if c.arrival < t_next then
                invalid_arg "Packet_sim.run: released Coflow arrives in the past";
              Event_queue.push arrivals ~time:c.arrival c)
            (on_complete a.orig.Coflow.id t_next))
        finished;
      active := still;
      admit t_next;
      if !active <> [] || not (Event_queue.is_empty arrivals) then loop t_next
  in
  (match Event_queue.peek arrivals with
  | None -> ()
  | Some (t0, _) ->
    admit t0;
    loop t0);
  let sorted l = List.sort (fun (a, _) (b, _) -> compare a b) l in
  {
    Sim_result.ccts = sorted !ccts;
    finishes = sorted !finishes;
    makespan = !makespan;
    n_events = !n_events;
    total_setups = 0;
  }

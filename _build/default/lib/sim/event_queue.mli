(** A binary min-heap of timestamped events — the engine of the
    discrete-event simulators. Pop order is by time; events at equal
    times pop in insertion order (the heap is made stable with a
    sequence number), which keeps simulations deterministic. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val size : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Raises [Invalid_argument] on a NaN time. *)

val peek : 'a t -> (float * 'a) option
(** Earliest event without removing it. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val pop_exn : 'a t -> float * 'a
(** Like {!pop} but raises [Invalid_argument] when empty. *)

val drain_until : 'a t -> float -> (float * 'a) list
(** Pop every event with time [<=] the given instant, in order. *)

type 'a entry = { time : float; seq : int; payload : 'a }

type 'a t = {
  mutable data : 'a entry array;
  mutable len : int;
  mutable next_seq : int;
}

let create () = { data = [||]; len = 0; next_seq = 0 }
let is_empty t = t.len = 0
let size t = t.len

let before a b = a.time < b.time || (a.time = b.time && a.seq < b.seq)

let grow t entry =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let cap' = max 8 (2 * cap) in
    let data = Array.make cap' entry in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end

let push t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let entry = { time; seq = t.next_seq; payload } in
  t.next_seq <- t.next_seq + 1;
  grow t entry;
  t.data.(t.len) <- entry;
  t.len <- t.len + 1;
  (* sift up *)
  let i = ref (t.len - 1) in
  while
    !i > 0
    &&
    let parent = (!i - 1) / 2 in
    before t.data.(!i) t.data.(parent)
  do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(parent) in
    t.data.(parent) <- t.data.(!i);
    t.data.(!i) <- tmp;
    i := parent
  done

let peek t = if t.len = 0 then None else Some (t.data.(0).time, t.data.(0).payload)

let pop t =
  if t.len = 0 then None
  else begin
    let top = t.data.(0) in
    t.len <- t.len - 1;
    if t.len > 0 then begin
      t.data.(0) <- t.data.(t.len);
      (* sift down *)
      let i = ref 0 in
      let continue_ = ref true in
      while !continue_ do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.len && before t.data.(l) t.data.(!smallest) then smallest := l;
        if r < t.len && before t.data.(r) t.data.(!smallest) then smallest := r;
        if !smallest = !i then continue_ := false
        else begin
          let tmp = t.data.(!smallest) in
          t.data.(!smallest) <- t.data.(!i);
          t.data.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some (top.time, top.payload)
  end

let pop_exn t =
  match pop t with
  | Some e -> e
  | None -> invalid_arg "Event_queue.pop_exn: empty queue"

let drain_until t limit =
  let rec go acc =
    match peek t with
    | Some (time, _) when time <= limit ->
      let e = pop_exn t in
      go (e :: acc)
    | _ -> List.rev acc
  in
  go []

(** Flow-level replay of a Coflow trace through a packet-switched
    fabric (paper §2.1's electrical packet switch model).

    Rates are fluid and constant between scheduling events. Following
    Varys' deployed behaviour — and the paper's evaluation — the fabric
    reschedules {e only on Coflow arrivals and completions}: a subflow
    finishing mid-interval strands its bandwidth until the next event.

    The simulator is scheduler-agnostic: pass any
    {!Sunflow_packet.Snapshot.scheduler} (Varys, Aalo, per-flow
    fair, ...). *)

exception Stuck of float
(** Raised if at some instant no active flow has a positive rate and no
    arrival is pending — a broken scheduler (a work-conserving one can
    never trigger this). The payload is the simulation time. *)

val run :
  ?sent_thresholds:float list ->
  ?on_complete:(int -> float -> Sunflow_core.Coflow.t list) ->
  scheduler:Sunflow_packet.Snapshot.scheduler ->
  bandwidth:float ->
  Sunflow_core.Coflow.t list ->
  Sim_result.t
(** Replay the trace (Coflows may be given in any order; arrivals are
    honoured). Coflows with empty demand complete instantly at their
    arrival. Duplicate Coflow ids raise [Invalid_argument].

    [sent_thresholds] adds rescheduling events: whenever a Coflow's
    cumulative sent bytes cross one of these values, rates are
    recomputed. Aalo needs this — a Coflow's D-CLAS priority changes
    exactly at its queue thresholds (use {!aalo_thresholds}); without
    it a Coflow would keep stale priority until the next arrival or
    completion.

    [on_complete id t] is called once per completed Coflow and may
    release new Coflows (arrivals [>= t]) — the hook multi-stage jobs
    use to chain dependent Coflows. *)

val aalo_thresholds : Sunflow_packet.Aalo.params -> float list
(** The queue-boundary byte values of a D-CLAS configuration. *)

(** Hybrid circuit/packet fabric (paper §2.1, §6).

    Deployed OCS designs (c-Through, Helios, REACToR) pair the optical
    switch with a small packet-switched network and filter traffic
    between them; the paper's §6 notes that REACToR's hybrid design can
    absorb "little leftover traffic". This simulator composes the two
    pure fabrics of this library: a classifier assigns each Coflow to
    the circuit fabric (Sunflow-scheduled, full link rate) or to the
    packet fabric (a fraction of the link rate), and both run
    independently — the standard parallel-fabric model of those
    systems.

    The interesting policy is offloading {e short} Coflows, whose CCT
    on the OCS is dominated by the reconfiguration delay (Figs. 7/9):
    see {!offload_short}. *)

val best_bound :
  delta:float ->
  circuit_bandwidth:float ->
  packet_bandwidth:float ->
  Sunflow_core.Coflow.t ->
  [ `Circuit | `Packet ]
(** Route each Coflow to the fabric with the smaller lower bound:
    packet when [T_L^p] at the packet fabric's rate beats [T_L^c] at
    the circuit fabric's rate. Mice — whose circuit CCT is dominated by
    one delta per subflow — land on the packet network; anything
    substantial keeps the full-rate circuits. Empty Coflows go to the
    packet side. *)

val run :
  ?policy:Sunflow_core.Inter.policy ->
  ?packet_scheduler:Sunflow_packet.Snapshot.scheduler ->
  delta:float ->
  circuit_bandwidth:float ->
  packet_bandwidth:float ->
  classify:(Sunflow_core.Coflow.t -> [ `Circuit | `Packet ]) ->
  Sunflow_core.Coflow.t list ->
  Sim_result.t
(** Partition the trace with [classify] and replay each class through
    its fabric ([policy] defaults to shortest-Coflow-first on the
    circuit side, [packet_scheduler] to per-flow max-min fairness — a
    plain electrical ToR uplink). Results are merged: per-Coflow CCTs
    union, [total_setups] from the circuit side, [n_events] summed.
    Raises [Invalid_argument] on non-positive bandwidths. *)

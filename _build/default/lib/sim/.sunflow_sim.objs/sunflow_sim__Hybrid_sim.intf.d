lib/sim/hybrid_sim.mli: Sim_result Sunflow_core Sunflow_packet

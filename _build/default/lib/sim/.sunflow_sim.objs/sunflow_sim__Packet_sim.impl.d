lib/sim/packet_sim.ml: Event_queue Float List Sim_result Sunflow_core Sunflow_packet

lib/sim/hybrid_sim.ml: Circuit_sim Float List Packet_sim Sim_result Sunflow_core Sunflow_packet

lib/sim/circuit_sim.ml: Event_queue Float List Sim_result Sunflow_core

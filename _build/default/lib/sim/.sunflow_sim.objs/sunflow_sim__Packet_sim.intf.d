lib/sim/packet_sim.mli: Sim_result Sunflow_core Sunflow_packet

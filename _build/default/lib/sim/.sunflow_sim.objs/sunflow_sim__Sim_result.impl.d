lib/sim/sim_result.ml: Buffer Format List Printf Sunflow_core

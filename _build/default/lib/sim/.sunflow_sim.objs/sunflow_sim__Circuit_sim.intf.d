lib/sim/circuit_sim.mli: Sim_result Sunflow_core

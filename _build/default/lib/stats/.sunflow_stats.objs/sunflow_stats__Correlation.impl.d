lib/stats/correlation.ml: Array List

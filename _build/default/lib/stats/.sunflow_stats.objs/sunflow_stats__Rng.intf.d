lib/stats/rng.mli:

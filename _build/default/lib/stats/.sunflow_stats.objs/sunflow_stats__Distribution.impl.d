lib/stats/distribution.ml: Array Buffer Bytes Descriptive Float Format List Printf

lib/stats/correlation.mli:

(** Empirical distributions: CDFs, deciles and histograms, used to
    regenerate the CDF figures of the paper (Figs. 4 and 5). *)

type cdf = (float * float) list
(** A non-decreasing list of [(value, fraction ≤ value)] points with the
    last fraction equal to [1.]. *)

val cdf : float list -> cdf
(** Empirical CDF of a sample (one point per distinct value). *)

val cdf_at : cdf -> float -> float
(** [cdf_at c x] is the fraction of the sample ≤ [x] ([0.] below the
    smallest value). *)

val deciles : float list -> float array
(** Eleven points: the 0th, 10th, ..., 100th percentiles. Handy compact
    rendering of a CDF in a terminal table. *)

val fraction_below : float -> float list -> float
(** [fraction_below x xs] is the fraction of samples strictly less than
    or equal to [x]. Returns [0.] on an empty sample. *)

type histogram = { edges : float array; counts : int array }
(** [edges] has [n+1] entries delimiting [n] bins; [counts.(i)] counts
    samples in [[edges.(i), edges.(i+1))], the last bin being closed. *)

val histogram : bins:int -> float list -> histogram
(** Equal-width histogram over the sample range. Raises
    [Invalid_argument] on an empty sample or [bins < 1]. *)

val pp_deciles : Format.formatter -> float array -> unit
(** Render decile array as [p0=.. p10=.. ... p100=..]. *)

val ascii_cdf_chart :
  ?width:int -> ?height:int -> (char * float list) list -> string
(** A terminal rendering of one or more empirical CDFs (the paper's
    Figs. 4 and 5 are CDF plots): each series is drawn with its glyph
    on a [width] x [height] grid (defaults 60 x 10), the x-axis spans
    the pooled sample range, the y-axis is the cumulative fraction.
    Overlapping series show the later glyph. Raises [Invalid_argument]
    on an empty series list or empty samples. *)

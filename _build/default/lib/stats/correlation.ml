let check xs ys name =
  let n = List.length xs in
  if n <> List.length ys then invalid_arg (name ^ ": mismatched lengths");
  if n < 2 then invalid_arg (name ^ ": need at least two points");
  n

let pearson xs ys =
  let n = check xs ys "Correlation.pearson" in
  let nf = float_of_int n in
  let mx = List.fold_left ( +. ) 0. xs /. nf in
  let my = List.fold_left ( +. ) 0. ys /. nf in
  let sxy, sxx, syy =
    List.fold_left2
      (fun (sxy, sxx, syy) x y ->
        let dx = x -. mx and dy = y -. my in
        (sxy +. (dx *. dy), sxx +. (dx *. dx), syy +. (dy *. dy)))
      (0., 0., 0.) xs ys
  in
  if sxx = 0. || syy = 0. then
    invalid_arg "Correlation.pearson: zero-variance sample";
  sxy /. sqrt (sxx *. syy)

(* Average ranks, ties sharing the mean of the positions they span. *)
let ranks xs =
  let a = Array.of_list xs in
  let n = Array.length a in
  let idx = Array.init n (fun i -> i) in
  Array.sort (fun i j -> compare a.(i) a.(j)) idx;
  let r = Array.make n 0. in
  let i = ref 0 in
  while !i < n do
    let j = ref !i in
    while !j + 1 < n && a.(idx.(!j + 1)) = a.(idx.(!i)) do
      incr j
    done;
    let avg = float_of_int (!i + !j) /. 2. +. 1. in
    for k = !i to !j do
      r.(idx.(k)) <- avg
    done;
    i := !j + 1
  done;
  Array.to_list r

let spearman xs ys =
  let _ = check xs ys "Correlation.spearman" in
  pearson (ranks xs) (ranks ys)

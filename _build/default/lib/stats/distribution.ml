type cdf = (float * float) list

let cdf xs =
  match xs with
  | [] -> invalid_arg "Distribution.cdf: empty sample"
  | _ ->
    let a = Array.of_list xs in
    Array.sort compare a;
    let n = Array.length a in
    let nf = float_of_int n in
    let rec build i acc =
      if i >= n then List.rev acc
      else begin
        (* advance over ties so each value appears once *)
        let j = ref i in
        while !j + 1 < n && a.(!j + 1) = a.(i) do
          incr j
        done;
        build (!j + 1) ((a.(i), float_of_int (!j + 1) /. nf) :: acc)
      end
    in
    build 0 []

let cdf_at c x =
  let rec go last = function
    | [] -> last
    | (v, f) :: rest -> if v <= x then go f rest else last
  in
  go 0. c

let deciles xs =
  Array.init 11 (fun i -> Descriptive.percentile (float_of_int (i * 10)) xs)

let fraction_below x xs =
  match xs with
  | [] -> 0.
  | _ ->
    let n = List.length xs in
    let k = List.fold_left (fun k v -> if v <= x then k + 1 else k) 0 xs in
    float_of_int k /. float_of_int n

type histogram = { edges : float array; counts : int array }

let histogram ~bins xs =
  if bins < 1 then invalid_arg "Distribution.histogram: bins < 1";
  match xs with
  | [] -> invalid_arg "Distribution.histogram: empty sample"
  | _ ->
    let lo, hi = Descriptive.min_max xs in
    let hi = if hi = lo then lo +. 1. else hi in
    let width = (hi -. lo) /. float_of_int bins in
    let edges = Array.init (bins + 1) (fun i -> lo +. (float_of_int i *. width)) in
    let counts = Array.make bins 0 in
    List.iter
      (fun x ->
        let i = int_of_float ((x -. lo) /. width) in
        let i = if i >= bins then bins - 1 else if i < 0 then 0 else i in
        counts.(i) <- counts.(i) + 1)
      xs;
    { edges; counts }

let ascii_cdf_chart ?(width = 60) ?(height = 10) series =
  if series = [] then invalid_arg "Distribution.ascii_cdf_chart: no series";
  List.iter
    (fun (_, xs) ->
      if xs = [] then invalid_arg "Distribution.ascii_cdf_chart: empty samples")
    series;
  let pooled = List.concat_map snd series in
  let lo, hi = Descriptive.min_max pooled in
  let hi = if hi = lo then lo +. 1. else hi in
  let grid = Array.init height (fun _ -> Bytes.make width '.') in
  List.iter
    (fun (glyph, xs) ->
      let c = cdf xs in
      for col = 0 to width - 1 do
        let x = lo +. (float_of_int col /. float_of_int (width - 1) *. (hi -. lo)) in
        let f = cdf_at c x in
        (* fraction f fills rows from the bottom up to f x height *)
        let filled = int_of_float (Float.round (f *. float_of_int (height - 1))) in
        if f > 0. then begin
          let row = height - 1 - filled in
          Bytes.set grid.(max 0 (min (height - 1) row)) col glyph
        end
      done)
    series;
  let buf = Buffer.create ((width + 8) * (height + 2)) in
  Array.iteri
    (fun r line ->
      let level = float_of_int (height - 1 - r) /. float_of_int (height - 1) in
      Buffer.add_string buf (Printf.sprintf "%4.2f |%s|\n" level (Bytes.to_string line)))
    grid;
  Buffer.add_string buf
    (Printf.sprintf "      %-8.3g%*s\n" lo (width - 8) (Printf.sprintf "%.3g" hi));
  Buffer.contents buf

let pp_deciles ppf d =
  Array.iteri
    (fun i v ->
      if i > 0 then Format.pp_print_string ppf " ";
      Format.fprintf ppf "p%d=%.3g" (i * 10) v)
    d

(** Correlation coefficients.

    The paper reports a linear (Pearson) correlation of 0.84 between
    Solstice's normalised switching count and the number of subflows
    (Fig. 5 discussion), and a rank (Spearman) correlation of -0.96
    between [p_avg] and CCT/T_L^p (Fig. 7 discussion). *)

val pearson : float list -> float list -> float
(** Pearson product-moment correlation of two equal-length samples.
    Raises [Invalid_argument] on mismatched lengths, fewer than two
    points, or a zero-variance sample. *)

val spearman : float list -> float list -> float
(** Spearman rank correlation: Pearson correlation of the ranks, with
    ties assigned their average rank. Same error conditions as
    {!pearson}. *)

(** Descriptive statistics over float samples.

    All functions raise [Invalid_argument] on empty input unless noted.
    Inputs are arbitrary-order sample arrays or lists; functions never
    mutate their arguments. *)

val mean : float list -> float
(** Arithmetic mean. *)

val mean_array : float array -> float
(** Arithmetic mean of an array. *)

val variance : float list -> float
(** Population variance (divides by [n]). Returns [0.] on singletons. *)

val stddev : float list -> float
(** Population standard deviation. *)

val percentile : float -> float list -> float
(** [percentile p xs] is the [p]-th percentile of [xs] with [p] in
    [0., 100.], using linear interpolation between closest ranks
    (the same convention as numpy's default). *)

val median : float list -> float
(** The 50th percentile. *)

val min_max : float list -> float * float
(** Smallest and largest sample. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  p50 : float;
  p75 : float;
  p95 : float;
  max : float;
}
(** A five-number-style summary extended with the 95th percentile, the
    statistic the paper reports for every experiment. *)

val summarize : float list -> summary
(** Compute a {!summary}. *)

val pp_summary : Format.formatter -> summary -> unit
(** Render a summary on one line. *)

val geometric_mean : float list -> float
(** Geometric mean; requires strictly positive samples. *)

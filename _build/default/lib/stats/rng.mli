(** Deterministic pseudo-random numbers (SplitMix64).

    Every stochastic component of the reproduction — trace synthesis,
    size perturbation, reservation-order shuffling — draws from this
    generator so that experiments are reproducible bit-for-bit from a
    seed, independent of the OCaml stdlib [Random] implementation. *)

type t

val create : int -> t
(** [create seed] makes a fresh generator. Equal seeds yield equal
    streams. *)

val split : t -> t
(** A new generator whose stream is independent of subsequent draws
    from the parent (the parent advances by one draw). *)

val bits64 : t -> int64
(** Next raw 64-bit value. *)

val float : t -> float -> float
(** [float t b] is uniform in [[0., b)]. [b] must be positive. *)

val uniform : t -> lo:float -> hi:float -> float
(** Uniform in [[lo, hi)]. *)

val int : t -> int -> int
(** [int t n] is uniform in [[0, n)]. [n] must be positive. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed with the given mean. *)

val lognormal : t -> mu:float -> sigma:float -> float
(** [exp (mu + sigma * Z)] with [Z] standard normal (Box–Muller). *)

val pareto : t -> shape:float -> scale:float -> float
(** Pareto with minimum [scale] and tail index [shape]. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)

val shuffle_list : t -> 'a list -> 'a list

val choose_weighted : t -> (float * 'a) list -> 'a
(** Pick an element with probability proportional to its weight.
    Weights must be non-negative with a positive sum. *)

let check_nonempty name = function
  | [] -> invalid_arg (name ^ ": empty sample")
  | _ -> ()

let mean xs =
  check_nonempty "Descriptive.mean" xs;
  List.fold_left ( +. ) 0. xs /. float_of_int (List.length xs)

let mean_array xs =
  if Array.length xs = 0 then invalid_arg "Descriptive.mean_array: empty sample";
  Array.fold_left ( +. ) 0. xs /. float_of_int (Array.length xs)

let variance xs =
  check_nonempty "Descriptive.variance" xs;
  let m = mean xs in
  let acc = List.fold_left (fun a x -> a +. ((x -. m) *. (x -. m))) 0. xs in
  acc /. float_of_int (List.length xs)

let stddev xs = sqrt (variance xs)

let percentile p xs =
  check_nonempty "Descriptive.percentile" xs;
  if p < 0. || p > 100. then invalid_arg "Descriptive.percentile: p outside [0, 100]";
  let a = Array.of_list xs in
  Array.sort compare a;
  let n = Array.length a in
  if n = 1 then a.(0)
  else begin
    let rank = p /. 100. *. float_of_int (n - 1) in
    let lo = int_of_float (floor rank) in
    let hi = int_of_float (ceil rank) in
    if lo = hi then a.(lo)
    else begin
      let frac = rank -. float_of_int lo in
      (a.(lo) *. (1. -. frac)) +. (a.(hi) *. frac)
    end
  end

let median xs = percentile 50. xs

let min_max xs =
  check_nonempty "Descriptive.min_max" xs;
  List.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (infinity, neg_infinity) xs

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  p25 : float;
  p50 : float;
  p75 : float;
  p95 : float;
  max : float;
}

let summarize xs =
  check_nonempty "Descriptive.summarize" xs;
  let lo, hi = min_max xs in
  {
    count = List.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = lo;
    p25 = percentile 25. xs;
    p50 = percentile 50. xs;
    p75 = percentile 75. xs;
    p95 = percentile 95. xs;
    max = hi;
  }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.4g sd=%.4g min=%.4g p50=%.4g p95=%.4g max=%.4g" s.count
    s.mean s.stddev s.min s.p50 s.p95 s.max

let geometric_mean xs =
  check_nonempty "Descriptive.geometric_mean" xs;
  let acc =
    List.fold_left
      (fun a x ->
        if x <= 0. then
          invalid_arg "Descriptive.geometric_mean: non-positive sample"
        else a +. log x)
      0. xs
  in
  exp (acc /. float_of_int (List.length xs))

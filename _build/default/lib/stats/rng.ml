type t = { mutable state : int64 }

let golden = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let bits64 t =
  t.state <- Int64.add t.state golden;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t =
  let s = bits64 t in
  { state = s }

(* 53 random bits mapped to [0, 1). *)
let unit_float t =
  let bits = Int64.shift_right_logical (bits64 t) 11 in
  Int64.to_float bits /. 9007199254740992.

let float t b =
  if b <= 0. then invalid_arg "Rng.float: bound must be positive";
  unit_float t *. b

let uniform t ~lo ~hi =
  if hi < lo then invalid_arg "Rng.uniform: hi < lo";
  lo +. (unit_float t *. (hi -. lo))

let int t n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  let v = Int64.shift_right_logical (bits64 t) 1 in
  Int64.to_int (Int64.rem v (Int64.of_int n))

let bool t = Int64.logand (bits64 t) 1L = 1L

let exponential t ~mean =
  if mean <= 0. then invalid_arg "Rng.exponential: mean must be positive";
  let u = 1. -. unit_float t in
  -.mean *. log u

let lognormal t ~mu ~sigma =
  let u1 = 1. -. unit_float t in
  let u2 = unit_float t in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  exp (mu +. (sigma *. z))

let pareto t ~shape ~scale =
  if shape <= 0. || scale <= 0. then invalid_arg "Rng.pareto: bad parameters";
  let u = 1. -. unit_float t in
  scale /. (u ** (1. /. shape))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffle_list t l =
  let a = Array.of_list l in
  shuffle t a;
  Array.to_list a

let choose_weighted t choices =
  let sum =
    List.fold_left
      (fun acc (w, _) ->
        if w < 0. then invalid_arg "Rng.choose_weighted: negative weight";
        acc +. w)
      0. choices
  in
  if sum <= 0. then invalid_arg "Rng.choose_weighted: weights sum to zero";
  let target = float t sum in
  let rec pick acc = function
    | [] -> invalid_arg "Rng.choose_weighted: empty"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w > target then x else pick (acc +. w) rest
  in
  pick 0. choices

type entry = { coflow : int; mutable bytes : float }

type t = {
  n_ports : int;
  bandwidth : float;
  queues : (int * int, entry Queue.t) Hashtbl.t;
}

let create ~n_ports ~bandwidth =
  if n_ports <= 0 then invalid_arg "Voq.create: non-positive port count";
  if bandwidth <= 0. then invalid_arg "Voq.create: non-positive bandwidth";
  { n_ports; bandwidth; queues = Hashtbl.create 64 }

let bandwidth t = t.bandwidth

let check_port t p =
  if p < 0 || p >= t.n_ports then invalid_arg "Voq: port outside the fabric"

let queue t src dst =
  match Hashtbl.find_opt t.queues (src, dst) with
  | Some q -> q
  | None ->
    let q = Queue.create () in
    Hashtbl.replace t.queues (src, dst) q;
    q

let enqueue t ~src ~dst ~coflow bytes =
  check_port t src;
  check_port t dst;
  if bytes <= 0. then invalid_arg "Voq.enqueue: non-positive bytes";
  Queue.add { coflow; bytes } (queue t src dst)

let backlog t ~src ~dst =
  match Hashtbl.find_opt t.queues (src, dst) with
  | None -> 0.
  | Some q -> Queue.fold (fun acc e -> acc +. e.bytes) 0. q

let coflow_backlog t ~coflow =
  Hashtbl.fold
    (fun _ q acc ->
      Queue.fold (fun acc e -> if e.coflow = coflow then acc +. e.bytes else acc) acc q)
    t.queues 0.

let total_backlog t =
  Hashtbl.fold
    (fun _ q acc -> Queue.fold (fun acc e -> acc +. e.bytes) acc q)
    t.queues 0.

type delivery = { coflow : int; src : int; dst : int; bytes : float }

let drain ?coflow t ~src ~dst ~seconds =
  check_port t src;
  check_port t dst;
  if seconds < 0. then invalid_arg "Voq.drain: negative duration";
  match Hashtbl.find_opt t.queues (src, dst) with
  | None -> []
  | Some q ->
    let eligible (e : entry) =
      match coflow with None -> true | Some c -> e.coflow = c
    in
    let budget = ref (seconds *. t.bandwidth) in
    let moved = ref [] in
    let skipped = Queue.create () in
    let rec serve () =
      match Queue.pop q with
      | exception Queue.Empty -> ()
      | head when not (eligible head) ->
        Queue.add head skipped;
        serve ()
      | head ->
        if !budget > 0. then begin
          let take = Float.min head.bytes !budget in
          budget := !budget -. take;
          head.bytes <- head.bytes -. take;
          if take > 0. then
            moved := { coflow = head.coflow; src; dst; bytes = take } :: !moved;
          if head.bytes > 0. then Queue.add head skipped;
          serve ()
        end
        else Queue.add head skipped
    in
    serve ();
    (* rebuild the queue with un-served entries in their original order *)
    Queue.transfer q skipped;
    Queue.transfer skipped q;
    List.rev !moved

let is_empty t = total_backlog t = 0.

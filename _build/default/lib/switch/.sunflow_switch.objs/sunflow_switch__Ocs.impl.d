lib/switch/ocs.ml: Array Printf

lib/switch/voq.mli:

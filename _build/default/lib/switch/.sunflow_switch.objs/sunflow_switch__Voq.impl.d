lib/switch/voq.ml: Float Hashtbl List Queue

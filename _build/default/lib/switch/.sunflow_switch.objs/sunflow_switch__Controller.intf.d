lib/switch/controller.mli: Sunflow_core

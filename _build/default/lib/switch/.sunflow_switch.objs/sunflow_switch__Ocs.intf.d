lib/switch/ocs.mli:

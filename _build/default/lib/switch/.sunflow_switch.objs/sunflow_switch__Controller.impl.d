lib/switch/controller.ml: Float Hashtbl List Ocs Option Printf Sunflow_core Voq

type port_state =
  | Idle
  | Configuring of { peer : int; ready_at : float }
  | Connected of { peer : int; since : float }

type t = {
  n_ports : int;
  delta : float;
  inputs : port_state array;
  outputs : port_state array;
  mutable clock : float;
  mutable switches : int;
}

let create ~n_ports ~delta =
  if n_ports <= 0 then invalid_arg "Ocs.create: non-positive port count";
  if delta < 0. then invalid_arg "Ocs.create: negative delta";
  {
    n_ports;
    delta;
    inputs = Array.make n_ports Idle;
    outputs = Array.make n_ports Idle;
    clock = 0.;
    switches = 0;
  }

let n_ports t = t.n_ports
let delta t = t.delta
let now t = t.clock

let check_port t name p =
  if p < 0 || p >= t.n_ports then
    invalid_arg (Printf.sprintf "Ocs.%s: port %d outside [0, %d)" name p t.n_ports)

let settle state clock =
  match state with
  | Configuring { peer; ready_at } when ready_at <= clock ->
    Connected { peer; since = ready_at }
  | s -> s

let advance t time =
  if time < t.clock then invalid_arg "Ocs.advance: time moved backwards";
  t.clock <- time;
  for p = 0 to t.n_ports - 1 do
    t.inputs.(p) <- settle t.inputs.(p) time;
    t.outputs.(p) <- settle t.outputs.(p) time
  done

let input_state t p =
  check_port t "input_state" p;
  settle t.inputs.(p) t.clock

let output_state t p =
  check_port t "output_state" p;
  settle t.outputs.(p) t.clock

let describe = function
  | Idle -> "idle"
  | Configuring { peer; _ } -> Printf.sprintf "configuring (peer %d)" peer
  | Connected { peer; _ } -> Printf.sprintf "connected (peer %d)" peer

let connect t ~src ~dst =
  check_port t "connect" src;
  check_port t "connect" dst;
  match (input_state t src, output_state t dst) with
  | Idle, Idle ->
    let ready_at = t.clock +. t.delta in
    let state = Configuring { peer = dst; ready_at } in
    let state' = Configuring { peer = src; ready_at } in
    t.inputs.(src) <-
      (if t.delta = 0. then Connected { peer = dst; since = t.clock } else state);
    t.outputs.(dst) <-
      (if t.delta = 0. then Connected { peer = src; since = t.clock } else state');
    t.switches <- t.switches + 1;
    Ok ready_at
  | in_state, Idle ->
    Error (Printf.sprintf "input port %d is %s" src (describe in_state))
  | _, out_state ->
    Error (Printf.sprintf "output port %d is %s" dst (describe out_state))

let circuit_present t ~src ~dst =
  match input_state t src with
  | Configuring { peer; _ } | Connected { peer; _ } -> peer = dst
  | Idle -> false

let disconnect t ~src ~dst =
  check_port t "disconnect" src;
  check_port t "disconnect" dst;
  if circuit_present t ~src ~dst then begin
    t.inputs.(src) <- Idle;
    t.outputs.(dst) <- Idle;
    Ok ()
  end
  else Error (Printf.sprintf "no circuit %d -> %d" src dst)

let circuit_up t ~src ~dst =
  match input_state t src with
  | Connected { peer; _ } -> peer = dst
  | Idle | Configuring _ -> false

let established t =
  let acc = ref [] in
  for src = t.n_ports - 1 downto 0 do
    match input_state t src with
    | Connected { peer; _ } -> acc := (src, peer) :: !acc
    | Idle | Configuring _ -> ()
  done;
  !acc

let switch_count t = t.switches

let assert_consistent t =
  let fail fmt = Printf.ksprintf invalid_arg fmt in
  for src = 0 to t.n_ports - 1 do
    match t.inputs.(src) with
    | Idle -> ()
    | Configuring { peer; ready_at } ->
      (match t.outputs.(peer) with
      | Configuring { peer = src'; ready_at = r' }
        when src' = src && r' = ready_at ->
        ()
      | s -> fail "Ocs: input %d configuring but output %d is %s" src peer (describe s))
    | Connected { peer; since } ->
      (match t.outputs.(peer) with
      | Connected { peer = src'; since = s' } when src' = src && s' = since -> ()
      | s -> fail "Ocs: input %d connected but output %d is %s" src peer (describe s))
  done;
  (* no output port may reference an input that does not reference it back *)
  for dst = 0 to t.n_ports - 1 do
    match t.outputs.(dst) with
    | Idle -> ()
    | Configuring { peer; _ } | Connected { peer; _ } ->
      (match t.inputs.(peer) with
      | Configuring { peer = dst'; _ } | Connected { peer = dst'; _ } ->
        if dst' <> dst then
          fail "Ocs: output %d references input %d which points at %d" dst peer dst'
      | Idle -> fail "Ocs: output %d references idle input %d" dst peer)
  done

(** Physical execution of circuit schedules.

    The analytical schedulers produce reservation plans; this
    controller plays a plan against the executable switch model
    ({!Ocs}) and the sender-side queues ({!Voq}), following the
    deployment sketch of paper §6: each sender agent holds its row of
    the reservation table and transmits the designated flow at line
    rate whenever its circuit is up.

    Executing a plan physically validates it end-to-end: every connect
    must find both ports idle, setups must be long enough for the
    switch's reconfiguration delay, a zero-setup reservation must find
    its circuit already carrying light (the carried-over circuits of
    inter-Coflow rescheduling), and all buffered demand must drain by
    the end of the plan. Tests use this as the ground-truth oracle for
    every scheduler in the library. *)

type report = {
  finish_times : (int * float) list;
      (** Coflow id -> instant its last byte left the fabric, sorted
          by id; only Coflows that drained completely appear *)
  switch_count : int;  (** physical circuit establishments performed *)
  leftover : float;  (** bytes still buffered when the plan ended *)
  final_time : float;  (** clock after the last reservation released *)
}

val execute :
  delta:float ->
  bandwidth:float ->
  n_ports:int ->
  coflows:Sunflow_core.Coflow.t list ->
  plan:Sunflow_core.Prt.reservation list ->
  (report, string) result
(** Buffer each Coflow's demand in the VOQs, then drive the switch
    through the plan's connect/disconnect events in time order. A
    circuit whose reservation is immediately followed by another
    reservation of the same circuit stays up across the boundary (the
    not-all-stop continuation). Returns [Error] describing the first
    physical violation: a connect on a busy port, a reservation whose
    setup is shorter than the switch's delay, or a zero-setup
    reservation whose circuit is not already up. *)

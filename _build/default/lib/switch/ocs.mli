(** An executable model of the optical circuit switch of paper §2.1 —
    the not-all-stop model as a state machine.

    The switch has [n] input and [n] output ports. A circuit connects
    one input to one output; establishing or moving a circuit takes the
    reconfiguration delay [delta], during which the two ports involved
    carry no light, while every untouched circuit keeps transmitting.
    An input (output) port is on at most one circuit at a time — the
    machine rejects requests that would violate the port constraint
    instead of trusting its caller.

    Time is explicit: the caller advances the clock with {!advance} and
    pending reconfigurations complete when their deadline passes. The
    analytical schedulers in [Sunflow_core] never touch this module;
    the {!Controller} uses it to {e physically verify} their plans. *)

type t

(** What one port is doing. *)
type port_state =
  | Idle
  | Configuring of { peer : int; ready_at : float }
      (** dark: the circuit to [peer] is being set up *)
  | Connected of { peer : int; since : float }
      (** light: transmitting to/from [peer] since [since] *)

val create : n_ports:int -> delta:float -> t
(** A switch with all ports idle at time [0.]. Raises
    [Invalid_argument] on non-positive [n_ports] or negative
    [delta]. *)

val n_ports : t -> int
val delta : t -> float

val now : t -> float
(** Current clock. *)

val advance : t -> float -> unit
(** Move the clock forward (monotonic; raises [Invalid_argument] on a
    backwards move). Reconfigurations whose deadline has passed
    complete. *)

val input_state : t -> int -> port_state
val output_state : t -> int -> port_state

val connect : t -> src:int -> dst:int -> (float, string) result
(** Begin establishing circuit [(src, dst)]. Both ports must be idle
    (tear down existing circuits first — that is what makes the model
    not-all-stop: only the ports named here go dark). Returns the time
    the circuit will carry light ([now + delta]; immediately when
    [delta = 0]). *)

val disconnect : t -> src:int -> dst:int -> (unit, string) result
(** Tear circuit [(src, dst)] down (whether configuring or connected);
    both ports become idle immediately. Fails if that circuit is not
    present. *)

val circuit_up : t -> src:int -> dst:int -> bool
(** True when [(src, dst)] is connected and past its setup. *)

val established : t -> (int * int) list
(** All circuits currently carrying light, sorted. *)

val switch_count : t -> int
(** Total {!connect} operations accepted so far — physical switching
    events. *)

val assert_consistent : t -> unit
(** Internal-invariant check used by tests: input and output port
    states mirror each other exactly. Raises [Invalid_argument] on
    corruption. *)

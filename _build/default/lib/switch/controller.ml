module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Prt = Sunflow_core.Prt

type report = {
  finish_times : (int * float) list;
  switch_count : int;
  leftover : float;
  final_time : float;
}

type event_kind = Stop of Prt.reservation | Start of Prt.reservation

let time_of = function
  | (t, Stop _) | (t, Start _) -> t

(* Stops sort before starts at equal instants so a released circuit
   frees its ports for the reservation beginning at the same time. *)
let kind_rank = function Stop _ -> 0 | Start _ -> 1

let compare_events a b =
  match compare (time_of a) (time_of b) with
  | 0 -> compare (kind_rank (snd a)) (kind_rank (snd b))
  | c -> c

let tol = 1e-9

let execute ~delta ~bandwidth ~n_ports ~coflows ~plan =
  let ocs = Ocs.create ~n_ports ~delta in
  let voq = Voq.create ~n_ports ~bandwidth in
  List.iter
    (fun (c : Coflow.t) ->
      List.iter
        (fun ((src, dst), bytes) -> Voq.enqueue voq ~src ~dst ~coflow:c.id bytes)
        (Demand.entries c.demand))
    coflows;
  (* Window boundaries produced by chained float sums land within an
     ulp of each other; cluster events closer than the tolerance and
     release circuits (stops) before establishing new ones (starts)
     inside each cluster, so a port freed "now" is usable "now". *)
  let cluster events =
    let rec go acc = function
      | [] -> List.rev acc
      | e :: rest ->
        let te = time_of e in
        let rec take batch = function
          | e' :: tl when time_of e' <= te +. tol -> take (e' :: batch) tl
          | tl -> (List.rev batch, tl)
        in
        let batch, rest = take [ e ] rest in
        let batch =
          List.stable_sort
            (fun a b -> compare (kind_rank (snd a)) (kind_rank (snd b)))
            batch
        in
        go (List.rev_append batch acc) rest
    in
    go [] events
  in
  let events =
    List.concat_map
      (fun (r : Prt.reservation) ->
        [ (r.start, Start r); (Prt.stop r, Stop r) ])
      plan
    |> List.sort compare_events |> cluster
  in
  (* circuits currently owned by a reservation: (src, dst) -> r *)
  let active : (int * int, Prt.reservation) Hashtbl.t = Hashtbl.create 16 in
  let finishes : (int, float) Hashtbl.t = Hashtbl.create 16 in
  (* Sub-nanosecond byte residues are float noise, not backlog. *)
  let byte_eps = bandwidth *. tol in
  (* Serve every active circuit over [t0, t1): transmission starts at
     the reservation's own start + setup. A Coflow's completion instant
     is the latest local drain-finish among this window's circuits, so
     the result cannot depend on hash-table iteration order. *)
  let serve_window t0 t1 =
    if t1 > t0 then begin
      let local_finish : (int, float) Hashtbl.t = Hashtbl.create 8 in
      Hashtbl.iter
        (fun (src, dst) (r : Prt.reservation) ->
          let tx_from = Float.max t0 (r.start +. r.setup) in
          let seconds = t1 -. tx_from in
          if seconds > tol then begin
            let moved = Voq.drain ~coflow:r.coflow voq ~src ~dst ~seconds in
            let served =
              List.fold_left (fun a (d : Voq.delivery) -> a +. d.bytes) 0. moved
            in
            if served > 0. then begin
              let at = tx_from +. (served /. bandwidth) in
              let prev =
                Option.value ~default:neg_infinity
                  (Hashtbl.find_opt local_finish r.coflow)
              in
              Hashtbl.replace local_finish r.coflow (Float.max prev at)
            end
          end)
        active;
      Hashtbl.iter
        (fun coflow at ->
          if
            (not (Hashtbl.mem finishes coflow))
            && Voq.coflow_backlog voq ~coflow <= byte_eps
          then Hashtbl.replace finishes coflow at)
        local_finish
    end
  in
  let exception Physical_violation of string in
  let fail fmt = Printf.ksprintf (fun s -> raise (Physical_violation s)) fmt in
  let rec play t = function
    | [] -> t
    | ev :: rest ->
      (* clustering may reorder events within the tolerance; keep the
         clock monotonic *)
      let te = Float.max t (time_of ev) in
      serve_window t te;
      Ocs.advance ocs te;
      (match snd ev with
      | Stop r -> (
        (* a reservation only releases the circuit it still owns: a
           continuation that started an ulp before this stop has
           already taken the binding over *)
        match Hashtbl.find_opt active (r.src, r.dst) with
        | Some owner when owner == r ->
          Hashtbl.remove active (r.src, r.dst);
          (* keep the light on when the same circuit continues at once
             (within float tolerance) with no fresh setup *)
          let continues =
            List.exists
              (function
                | t', Start (r' : Prt.reservation) ->
                  Float.abs (t' -. te) <= tol
                  && r'.src = r.src && r'.dst = r.dst && r'.setup <= tol
                | _ -> false)
              rest
          in
          if not continues then begin
            match Ocs.disconnect ocs ~src:r.src ~dst:r.dst with
            | Ok () -> ()
            | Error e -> fail "stop of [%d -> %d] at %g: %s" r.src r.dst te e
          end
        | Some _ | None -> ())
      | Start r ->
        if r.setup <= tol then begin
          if not (Ocs.circuit_up ocs ~src:r.src ~dst:r.dst) then
            fail
              "zero-setup reservation [%d -> %d] at %g but the circuit is down"
              r.src r.dst te
        end
        else if r.setup < delta -. tol then
          fail "reservation [%d -> %d] at %g promises setup %g < switch delay %g"
            r.src r.dst te r.setup delta
        else begin
          match Ocs.connect ocs ~src:r.src ~dst:r.dst with
          | Ok ready_at ->
            if ready_at > te +. r.setup +. tol then
              fail "circuit [%d -> %d] ready at %g, after its reservation setup"
                r.src r.dst ready_at
          | Error e -> fail "start of [%d -> %d] at %g: %s" r.src r.dst te e
        end;
        Hashtbl.replace active (r.src, r.dst) r;
        Ocs.assert_consistent ocs);
      play te rest
  in
  match play (match events with [] -> 0. | e :: _ -> time_of e) events with
  | exception Physical_violation msg -> Error msg
  | final_time ->
    Ok
      {
        finish_times =
          Hashtbl.fold (fun c t acc -> (c, t) :: acc) finishes []
          |> List.sort (fun (a, _) (b, _) -> compare a b);
        switch_count = Ocs.switch_count ocs;
        leftover = Voq.total_backlog voq;
        final_time;
      }

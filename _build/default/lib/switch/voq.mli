(** Sender-side virtual output queues (paper §2.1).

    "Flows are buffered at the sender machines. Each input port of the
    switch is to serve flows from sender machines to various output
    ports. The flows are aggregated and organized into logical virtual
    output queues (VOQs) associated with each input port. At any time
    for an input port, at most one VOQ is served, and it is served with
    the full link bandwidth."

    Each (input port, output port) pair holds one FIFO of per-Coflow
    backlogs. Draining a VOQ models the port transmitting at line rate
    while its circuit is up. *)

type t

val create : n_ports:int -> bandwidth:float -> t
(** Empty queues. Raises [Invalid_argument] on non-positive sizes. *)

val bandwidth : t -> float

val enqueue : t -> src:int -> dst:int -> coflow:int -> float -> unit
(** Buffer bytes for a Coflow, appended FIFO. Non-positive byte counts
    raise [Invalid_argument]. *)

val backlog : t -> src:int -> dst:int -> float
(** Bytes waiting in one VOQ. *)

val coflow_backlog : t -> coflow:int -> float
(** Bytes waiting for one Coflow across all queues. *)

val total_backlog : t -> float

type delivery = { coflow : int; src : int; dst : int; bytes : float }

val drain : ?coflow:int -> t -> src:int -> dst:int -> seconds:float -> delivery list
(** Serve one VOQ at line rate for a duration: removes up to
    [seconds * bandwidth] bytes FIFO and reports what moved, per
    Coflow, in service order. With [coflow], only that Coflow's
    buffered bytes are served (the scheduler-directed service of §6:
    the sender agent transmits the flow its circuit was set up for),
    other Coflows' entries keeping their queue positions. *)

val is_empty : t -> bool

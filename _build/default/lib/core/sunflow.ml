type result = {
  reservations : Prt.reservation list;
  finish : float;
  setups : int;
}

(* One pending flow with its remaining processing time. [fresh] tracks
   whether the flow may still reuse a pre-established circuit (only
   before its first reservation, and only at the schedule start). *)
type pending = {
  src : int;
  dst : int;
  mutable remaining : float;
  mutable fresh : bool;
}

(* MakeReservation (Algorithm 1 lines 13-23). Returns the reservation
   made, if any. The paper's guard is [lm < delta -> l = 0]; we also
   skip the boundary case [lm = setup], where the reservation would be
   pure reconfiguration transmitting nothing. *)
let make_reservation prt ~coflow ~now ~delta ~established t p =
  let in_port = Prt.In p.src and out_port = Prt.Out p.dst in
  if Prt.free_at prt in_port t && Prt.free_at prt out_port t then begin
    let tm =
      Float.min
        (Prt.next_start_after prt in_port t)
        (Prt.next_start_after prt out_port t)
    in
    let setup =
      if p.fresh && t = now && established (p.src, p.dst) then 0. else delta
    in
    let lm = tm -. t in
    let ld = setup +. p.remaining in
    let l = if lm <= setup then 0. else Float.min lm ld in
    (* rounding of [t +. (tm -. t)] can overshoot [tm] by an ulp and
       collide with the blocking reservation; shave the length down
       until the window provably ends at or before [tm] *)
    let rec fit l = if l <= 0. || t +. l <= tm then l else fit (Float.pred l) in
    let l = if l = lm then fit l else l in
    let l = if l <= setup then 0. else l in
    if l > 0. then begin
      let r =
        { Prt.coflow; src = p.src; dst = p.dst; start = t; setup; length = l }
      in
      Prt.reserve prt r;
      p.remaining <- ld -. l;
      p.fresh <- false;
      Some r
    end
    else None
  end
  else None

let no_circuit _ = false

let schedule ?prt ?(now = 0.) ?(order = Order.Ordered_port)
    ?(established = no_circuit) ?(quantum = 0.) ~delta ~bandwidth coflow =
  if bandwidth <= 0. then invalid_arg "Sunflow.schedule: bandwidth <= 0";
  if delta < 0. then invalid_arg "Sunflow.schedule: negative delta";
  if now < 0. then invalid_arg "Sunflow.schedule: negative start time";
  let prt = match prt with Some p -> p | None -> Prt.create () in
  let to_processing bytes =
    let p = bytes /. bandwidth in
    if quantum > 0. then quantum *. Float.ceil (p /. quantum) else p
  in
  let pending =
    Order.apply order (Demand.entries coflow.Coflow.demand)
    |> List.filter_map (fun ((src, dst), bytes) ->
           let remaining = to_processing bytes in
           if remaining > 0. then Some { src; dst; remaining; fresh = true }
           else None)
  in
  let made = ref [] in
  let rec loop t pending =
    match pending with
    | [] -> ()
    | _ ->
      List.iter
        (fun p ->
          match
            make_reservation prt ~coflow:coflow.Coflow.id ~now ~delta
              ~established t p
          with
          | Some r -> made := r :: !made
          | None -> ())
        pending;
      let pending = List.filter (fun p -> p.remaining > 0.) pending in
      if pending <> [] then begin
        (* only releases on ports the remaining demand can use matter *)
        let ports =
          List.concat_map (fun p -> [ Prt.In p.src; Prt.Out p.dst ]) pending
          |> List.sort_uniq compare
        in
        let t' = Prt.next_release_on_ports prt ports t in
        if t' = infinity then
          (* Impossible: a blocked flow implies a reservation releasing
             after [t] (see the progress argument in the design doc). *)
          invalid_arg "Sunflow.schedule: stuck with pending demand"
        else loop t' pending
      end
  in
  loop now pending;
  let reservations = List.rev !made in
  let finish =
    List.fold_left (fun acc r -> Float.max acc (Prt.stop r)) now reservations
  in
  let setups =
    List.fold_left (fun k r -> if r.Prt.setup > 0. then k + 1 else k) 0
      reservations
  in
  { reservations; finish; setups }

let cct ?(delta = 10e-3) ?(bandwidth = 1.25e8) coflow =
  (schedule ~delta ~bandwidth { coflow with Coflow.arrival = 0. }).finish

let gbps x = x *. 1.25e8
let mbps x = x *. 1.25e5
let kb x = x *. 1e3
let mb x = x *. 1e6
let gb x = x *. 1e9
let ms x = x *. 1e-3
let us x = x *. 1e-6
let to_mb b = b /. 1e6
let to_gbps r = r /. 1.25e8

let pp_time ppf t =
  let a = Float.abs t in
  if a >= 1. || a = 0. then Format.fprintf ppf "%.3gs" t
  else if a >= 1e-3 then Format.fprintf ppf "%.3gms" (t *. 1e3)
  else Format.fprintf ppf "%.3gus" (t *. 1e6)

let pp_bytes ppf b =
  let a = Float.abs b in
  if a >= 1e12 then Format.fprintf ppf "%.3gTB" (b /. 1e12)
  else if a >= 1e9 then Format.fprintf ppf "%.3gGB" (b /. 1e9)
  else if a >= 1e6 then Format.fprintf ppf "%.3gMB" (b /. 1e6)
  else if a >= 1e3 then Format.fprintf ppf "%.3gKB" (b /. 1e3)
  else Format.fprintf ppf "%.3gB" b

lib/core/bounds.mli: Demand

lib/core/prt.mli: Format

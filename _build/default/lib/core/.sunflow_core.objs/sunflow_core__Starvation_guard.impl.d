lib/core/starvation_guard.ml: Coflow Demand Float Inter List Prt Schedule

lib/core/inter.ml: Bounds Coflow Hashtbl List Option Order Prt Sunflow

lib/core/order.mli:

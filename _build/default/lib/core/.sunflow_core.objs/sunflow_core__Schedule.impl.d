lib/core/schedule.ml: Bytes Float Format List Prt

lib/core/bounds.ml: Demand Float Hashtbl List

lib/core/inter.mli: Coflow Order Prt Sunflow

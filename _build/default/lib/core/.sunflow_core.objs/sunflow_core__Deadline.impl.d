lib/core/deadline.ml: Coflow Inter List Order Prt Sunflow

lib/core/demand.mli: Format Sunflow_matching

lib/core/starvation_guard.mli: Coflow Inter

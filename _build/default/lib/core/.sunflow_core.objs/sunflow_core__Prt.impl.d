lib/core/prt.ml: Float Format Hashtbl List Units

lib/core/prt.ml: Array Float Format Hashtbl List Units

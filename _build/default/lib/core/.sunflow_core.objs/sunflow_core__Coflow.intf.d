lib/core/coflow.mli: Demand Format

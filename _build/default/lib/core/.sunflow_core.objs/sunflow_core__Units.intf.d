lib/core/units.mli: Format

lib/core/schedule.mli: Format Prt

lib/core/sunflow.ml: Array Coflow Demand Float List Order Prt

lib/core/sunflow.ml: Coflow Demand Float List Order Prt

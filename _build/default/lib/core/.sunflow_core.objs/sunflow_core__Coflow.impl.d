lib/core/coflow.ml: Demand Format List Units

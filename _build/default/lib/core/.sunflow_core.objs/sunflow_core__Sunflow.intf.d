lib/core/sunflow.mli: Coflow Order Prt

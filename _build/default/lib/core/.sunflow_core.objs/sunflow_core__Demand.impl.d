lib/core/demand.ml: Array Float Format Hashtbl List Sunflow_matching Units

lib/core/order.ml: List Sunflow_stats

lib/core/deadline.mli: Coflow Inter Order Prt

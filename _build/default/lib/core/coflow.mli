(** Coflows: collections of flows sharing one completion objective.

    A Coflow (Chowdhury & Stoica, HotNets 2012) is defined by the
    endpoints and byte size of each constituent flow plus its arrival
    time. The scheduler-facing quantities — processing times [p_i,j],
    the per-Coflow average [p_avg], sender/receiver structure — live
    here. *)

type t = { id : int; arrival : float; demand : Demand.t }

val make : id:int -> ?arrival:float -> Demand.t -> t
(** [arrival] defaults to [0.]. Raises [Invalid_argument] on a negative
    arrival time. *)

val n_subflows : t -> int
(** The paper's [|C|]: non-zero entries of the demand matrix. *)

val total_bytes : t -> float

val with_demand : t -> Demand.t -> t
(** Same identity, different (e.g. remaining) demand. *)

(** Sender-to-receiver structure, the classification of the paper's
    Table 4. *)
module Category : sig
  type t =
    | One_to_one  (** single sender, single receiver (one flow) *)
    | One_to_many  (** one sender, several receivers *)
    | Many_to_one  (** several senders, one receiver (in-cast) *)
    | Many_to_many  (** several senders and several receivers *)

  val to_string : t -> string
  (** The paper's abbreviations: O2O, O2M, M2O, M2M. *)

  val all : t list
end

val category : t -> Category.t
(** Category of a Coflow; raises [Invalid_argument] on an empty
    demand. *)

val processing_time : bandwidth:float -> t -> int -> int -> float
(** [p_i,j = d_i,j / B] (Equation 1). *)

val avg_processing_time : bandwidth:float -> t -> float
(** [p_avg = sum p_i,j / |C|] (§5.3.2); raises on an empty Coflow. *)

val is_long : bandwidth:float -> delta:float -> t -> bool
(** The paper's "long Coflow" predicate: [p_avg > 40 * delta]
    (§5.3.2). *)

val compare_arrival : t -> t -> int
(** Order by arrival time, ties broken by id. *)

val pp : Format.formatter -> t -> unit

(** Inter-Coflow scheduling (paper §4.2).

    The framework asks the operator for one thing only: a priority
    ordering over Coflows. The intra-Coflow scheduler is then applied
    to each Coflow in that order against a shared Port Reservation
    Table, so more-prioritised Coflows are never blocked by
    less-prioritised ones (their reservations are already in the table
    when lower-priority Coflows are considered — Fig. 2's example of C2
    shortening its reservation so as not to block C1). *)

(** How to translate a high-level resource-management policy into a
    priority ordering (paper §4.2, "Flexible Management Policies"). *)
type policy =
  | Fifo  (** arrival order — no Coflow jumps the queue *)
  | Shortest_first
      (** ascending packet-switched lower bound [T_L^p] of the current
          (remaining) demand — the shortest-Coflow-first policy the
          evaluation uses, mirroring Varys' SEBF *)
  | Priority_classes of (Coflow.t -> int)
      (** explicit classes, lower class served first; FIFO within a
          class (privileged vs regular users, stage ordering, ...) *)
  | Custom of (Coflow.t -> Coflow.t -> int)
      (** arbitrary comparator *)

val sort : policy -> bandwidth:float -> Coflow.t list -> Coflow.t list
(** Stable priority ordering of Coflows under a policy. *)

val policy_name : policy -> string

type result = {
  prt : Prt.t;  (** the combined reservation table *)
  per_coflow : (int * Sunflow.result) list;
      (** intra-Coflow result for every input Coflow, in service order *)
}

val schedule :
  ?now:float ->
  ?order:Order.t ->
  ?established:(int * int) list ->
  policy:policy ->
  delta:float ->
  bandwidth:float ->
  Coflow.t list ->
  result
(** [schedule ~policy ~delta ~bandwidth coflows] plans service for all
    Coflows (their demands interpreted as remaining-at-[now]).
    [established] lists circuits physically up at [now]; any Coflow's
    first reservation on such a circuit starting exactly at [now] pays
    no reconfiguration delay. Coflows with empty demand get an empty
    plan finishing at [now]. Raises [Invalid_argument] on duplicate
    Coflow ids — {!finish_of} keys on ids, so duplicates would
    silently shadow one another. *)

val finish_of : result -> int -> float option
(** Planned finish time of a Coflow by id. *)

type t = { id : int; arrival : float; demand : Demand.t }

let make ~id ?(arrival = 0.) demand =
  if arrival < 0. then invalid_arg "Coflow.make: negative arrival time";
  { id; arrival; demand }

let n_subflows c = Demand.n_flows c.demand
let total_bytes c = Demand.total_bytes c.demand
let with_demand c demand = { c with demand }

module Category = struct
  type t = One_to_one | One_to_many | Many_to_one | Many_to_many

  let to_string = function
    | One_to_one -> "O2O"
    | One_to_many -> "O2M"
    | Many_to_one -> "M2O"
    | Many_to_many -> "M2M"

  let all = [ One_to_one; One_to_many; Many_to_one; Many_to_many ]
end

let category c =
  if Demand.is_empty c.demand then invalid_arg "Coflow.category: empty demand";
  let ns = List.length (Demand.senders c.demand) in
  let nr = List.length (Demand.receivers c.demand) in
  match (ns > 1, nr > 1) with
  | false, false -> Category.One_to_one
  | false, true -> Category.One_to_many
  | true, false -> Category.Many_to_one
  | true, true -> Category.Many_to_many

let processing_time ~bandwidth c i j = Demand.get c.demand i j /. bandwidth

let avg_processing_time ~bandwidth c =
  let n = n_subflows c in
  if n = 0 then invalid_arg "Coflow.avg_processing_time: empty Coflow";
  total_bytes c /. bandwidth /. float_of_int n

let is_long ~bandwidth ~delta c = avg_processing_time ~bandwidth c > 40. *. delta

let compare_arrival a b =
  match compare a.arrival b.arrival with 0 -> compare a.id b.id | c -> c

let pp ppf c =
  Format.fprintf ppf "coflow#%d arr=%a |C|=%d bytes=%a (%s)" c.id Units.pp_time
    c.arrival (n_subflows c) Units.pp_bytes (total_bytes c)
    (if Demand.is_empty c.demand then "empty"
     else Category.to_string (category c))

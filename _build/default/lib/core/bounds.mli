(** Coflow-completion-time lower bounds (paper §2.4).

    Both bounds are scheduling-policy independent. [T_L^p] is the
    bottleneck-port transfer time in a packet-switched fabric
    (Equation 2); [T_L^c] additionally charges one reconfiguration
    delay per flow on its bottleneck port (Equations 3–4) and is the
    not-all-stop-model bound the paper derives — tighter for the
    optical switch than the all-stop bound of prior work. *)

val packet_lower : bandwidth:float -> Demand.t -> float
(** [T_L^p]: the largest row or column sum of the processing-time
    matrix (Equation 2). [0.] for an empty demand. *)

val circuit_lower : bandwidth:float -> delta:float -> Demand.t -> float
(** [T_L^c]: same with each non-zero entry charged [p_i,j + delta]
    (Equations 3–4). [0.] for an empty demand. *)

val alpha : bandwidth:float -> delta:float -> Demand.t -> float
(** [alpha = delta / min (d_i,j / B)] over non-zero flows — the
    constant of Lemma 2, bounding [CCT <= 2 (1 + alpha) T_L^p].
    Raises [Invalid_argument] on an empty demand. *)

val flow_time : delta:float -> float -> float
(** [t_i,j] of Equation 3: [0.] when the processing time is [0.],
    otherwise processing time plus [delta]. *)

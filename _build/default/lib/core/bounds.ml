let line_maxima per_flow demand =
  let rows : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let cols : (int, float) Hashtbl.t = Hashtbl.create 16 in
  let bump tbl k v =
    let prev = match Hashtbl.find_opt tbl k with Some x -> x | None -> 0. in
    Hashtbl.replace tbl k (prev +. v)
  in
  List.iter
    (fun ((i, j), bytes) ->
      let t = per_flow bytes in
      bump rows i t;
      bump cols j t)
    (Demand.entries demand);
  let table_max tbl = Hashtbl.fold (fun _ v acc -> Float.max v acc) tbl 0. in
  Float.max (table_max rows) (table_max cols)

let packet_lower ~bandwidth demand =
  if bandwidth <= 0. then invalid_arg "Bounds.packet_lower: bandwidth <= 0";
  line_maxima (fun bytes -> bytes /. bandwidth) demand

let flow_time ~delta p = if p <= 0. then 0. else p +. delta

let circuit_lower ~bandwidth ~delta demand =
  if bandwidth <= 0. then invalid_arg "Bounds.circuit_lower: bandwidth <= 0";
  if delta < 0. then invalid_arg "Bounds.circuit_lower: negative delta";
  line_maxima (fun bytes -> flow_time ~delta (bytes /. bandwidth)) demand

let alpha ~bandwidth ~delta demand =
  match Demand.entries demand with
  | [] -> invalid_arg "Bounds.alpha: empty demand"
  | entries ->
    let min_p =
      List.fold_left
        (fun acc (_, bytes) -> Float.min acc (bytes /. bandwidth))
        infinity entries
    in
    delta /. min_p

(** Units of measure.

    The whole library uses seconds for time, bytes for data and
    bytes/second for bandwidth (all floats). These constructors let
    call sites read like the paper: [Units.gbps 1.], [Units.ms 10.],
    [Units.mb 5.]. *)

val gbps : float -> float
(** Gigabits per second, as bytes/second ([1 Gbps = 1.25e8 B/s]). *)

val mbps : float -> float
(** Megabits per second, as bytes/second. *)

val kb : float -> float
(** Kilobytes (10^3 bytes). *)

val mb : float -> float
(** Megabytes (10^6 bytes). *)

val gb : float -> float
(** Gigabytes (10^9 bytes). *)

val ms : float -> float
(** Milliseconds, as seconds. *)

val us : float -> float
(** Microseconds, as seconds. *)

val to_mb : float -> float
(** Bytes to megabytes. *)

val to_gbps : float -> float
(** Bytes/second to gigabits/second. *)

val pp_time : Format.formatter -> float -> unit
(** Human-readable duration: picks s / ms / µs. *)

val pp_bytes : Format.formatter -> float -> unit
(** Human-readable size: picks B / KB / MB / GB / TB. *)

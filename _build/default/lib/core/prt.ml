type port = In of int | Out of int

type reservation = {
  coflow : int;
  src : int;
  dst : int;
  start : float;
  setup : float;
  length : float;
}

let stop r = r.start +. r.length
let transmission r = r.length -. r.setup

(* Per-port reservations kept as lists sorted by start time. Port
   occupancies in this problem are short (one list per rack, tens of
   reservations), so sorted lists beat fancier structures in practice
   and keep invariant checks trivial. *)
type t = (port, reservation list) Hashtbl.t

let create () : t = Hashtbl.create 64
let copy (t : t) = Hashtbl.copy t
let is_empty (t : t) = Hashtbl.length t = 0

let port_list (t : t) p =
  match Hashtbl.find_opt t p with Some l -> l | None -> []

let free_at t p instant =
  List.for_all
    (fun r -> instant < r.start || instant >= stop r)
    (port_list t p)

let next_start_after t p instant =
  List.fold_left
    (fun acc r -> if r.start > instant then Float.min acc r.start else acc)
    infinity (port_list t p)

(* Per-port reservations never overlap, so the list sorted by start is
   also sorted by stop: the first stop beyond the instant is the
   port's next release. *)
let port_next_release t p instant =
  let rec find = function
    | [] -> infinity
    | r :: rest ->
      let s = stop r in
      if s > instant then s else find rest
  in
  find (port_list t p)

let next_release_after (t : t) instant =
  Hashtbl.fold (fun p _ acc -> Float.min acc (port_next_release t p instant)) t infinity

let next_release_on_ports t ports instant =
  List.fold_left
    (fun acc p -> Float.min acc (port_next_release t p instant))
    infinity ports

(* [start, stop) windows. Chained float sums put consecutive window
   boundaries within an ulp of each other, so an intersection below a
   nanosecond is rounding noise, not a double booking. *)
let time_tolerance = 1e-9

let overlaps a b =
  Float.min (stop a) (stop b) -. Float.max a.start b.start > time_tolerance

let insert_sorted t p r =
  let l = port_list t p in
  List.iter
    (fun existing ->
      if overlaps existing r then
        invalid_arg
          (Format.asprintf
             "Prt.reserve: overlap on %s: new [%g, %g) vs existing [%g, %g)"
             (match p with In i -> "in." ^ string_of_int i | Out j -> "out." ^ string_of_int j)
             r.start (stop r) existing.start (stop existing)))
    l;
  let sorted = List.sort (fun a b -> compare a.start b.start) (r :: l) in
  Hashtbl.replace t p sorted

let reserve t r =
  if r.length <= 0. then invalid_arg "Prt.reserve: non-positive length";
  if r.setup < 0. || r.setup > r.length then
    invalid_arg "Prt.reserve: setup outside [0, length]";
  if r.src < 0 || r.dst < 0 then invalid_arg "Prt.reserve: negative port";
  insert_sorted t (In r.src) r;
  (* The Out insert cannot fail halfway in a state-corrupting way: if it
     raises, the In entry is stale. Check Out first via a dry run. *)
  (try insert_sorted t (Out r.dst) r
   with e ->
     Hashtbl.replace t (In r.src)
       (List.filter (fun x -> x != r) (port_list t (In r.src)));
     raise e)

let port_reservations t p = port_list t p

let all_reservations (t : t) =
  Hashtbl.fold
    (fun p rs acc -> match p with In _ -> List.rev_append rs acc | Out _ -> acc)
    t []
  |> List.sort (fun a b -> compare (a.start, a.src, a.dst) (b.start, b.src, b.dst))

let established_at t instant =
  all_reservations t
  |> List.filter_map (fun r ->
         if r.start +. r.setup <= instant && instant < stop r then
           Some (r.src, r.dst)
         else None)
  |> List.sort_uniq compare

let ports_in_use (t : t) =
  Hashtbl.fold (fun p rs acc -> if rs = [] then acc else p :: acc) t []
  |> List.sort compare

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun r ->
      Format.fprintf ppf "[in.%d -> out.%d] c#%d start=%a setup=%a len=%a@,"
        r.src r.dst r.coflow Units.pp_time r.start Units.pp_time r.setup
        Units.pp_time r.length)
    (all_reservations t);
  Format.fprintf ppf "@]"

(** Sparse Coflow demand matrices.

    A demand maps circuits [(src, dst)] — input port to output port —
    to a number of bytes. Ports are non-negative integers (rack ids in
    the paper's 150-port fabric). Demands are mutable: the simulators
    decrement them in place as traffic drains.

    Entries with zero or negative bytes are never stored; setting an
    entry to [0.] removes it, so [n_flows] is always the number of
    non-zero entries (the paper's [|C|]). *)

type t

val create : unit -> t
(** Fresh empty demand. *)

val of_list : ((int * int) * float) list -> t
(** Build from [((src, dst), bytes)] pairs. Pairs with non-positive
    bytes are dropped; duplicate keys accumulate. Negative port ids
    raise [Invalid_argument]. *)

val copy : t -> t

val get : t -> int -> int -> float
(** Bytes remaining from [src] to [dst] ([0.] if absent). *)

val set : t -> int -> int -> float -> unit
(** Overwrite one entry; a non-positive value removes it. *)

val add : t -> int -> int -> float -> unit
(** Accumulate bytes onto one entry. *)

val drain : t -> int -> int -> float -> unit
(** [drain d i j b] removes up to [b] bytes from entry [(i, j)],
    clamping at zero. *)

val entries : t -> ((int * int) * float) list
(** All non-zero entries, sorted by [(src, dst)] for determinism. *)

val n_flows : t -> int
(** Number of non-zero entries — [|C|] in the paper. *)

val total_bytes : t -> float

val is_empty : t -> bool

val senders : t -> int list
(** Distinct input ports with positive demand, sorted. *)

val receivers : t -> int list
(** Distinct output ports with positive demand, sorted. *)

val row_sum : t -> int -> float
(** Total bytes leaving input port [i]. *)

val col_sum : t -> int -> float
(** Total bytes entering output port [j]. *)

val scale : float -> t -> t
(** A fresh demand with every entry multiplied by a positive factor. *)

val map : (int -> int -> float -> float) -> t -> t
(** A fresh demand with each entry transformed; non-positive results
    are dropped. *)

val max_port : t -> int
(** Largest port id mentioned, [-1] when empty. *)

val to_dense : t -> int array * Sunflow_matching.Dense.t
(** Densify over the active ports: returns [(ports, m)] where [ports]
    is the sorted union of senders and receivers and [m.(a).(b)] is the
    demand from [ports.(a)] to [ports.(b)]. This is the representation
    the baseline schedulers decompose. *)

val equal : ?eps:float -> t -> t -> bool

val pp : Format.formatter -> t -> unit

type t = (int * int, float) Hashtbl.t

let create () : t = Hashtbl.create 16

let check_ports i j =
  if i < 0 || j < 0 then invalid_arg "Demand: negative port id"

let get (d : t) i j = match Hashtbl.find_opt d (i, j) with Some v -> v | None -> 0.

let set (d : t) i j v =
  check_ports i j;
  if v > 0. then Hashtbl.replace d (i, j) v else Hashtbl.remove d (i, j)

let add (d : t) i j v = set d i j (get d i j +. v)

let drain (d : t) i j b =
  let v = get d i j in
  set d i j (v -. Float.min v b)

let of_list pairs =
  let d = create () in
  List.iter (fun ((i, j), v) -> if v > 0. then add d i j v else check_ports i j) pairs;
  d

let copy (d : t) = Hashtbl.copy d

let entries (d : t) =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) d []
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let n_flows (d : t) = Hashtbl.length d
let total_bytes (d : t) = Hashtbl.fold (fun _ v acc -> acc +. v) d 0.
let is_empty (d : t) = Hashtbl.length d = 0

let sorted_distinct l = List.sort_uniq compare l

let senders (d : t) =
  sorted_distinct (Hashtbl.fold (fun (i, _) _ acc -> i :: acc) d [])

let receivers (d : t) =
  sorted_distinct (Hashtbl.fold (fun (_, j) _ acc -> j :: acc) d [])

let row_sum (d : t) i =
  Hashtbl.fold (fun (i', _) v acc -> if i' = i then acc +. v else acc) d 0.

let col_sum (d : t) j =
  Hashtbl.fold (fun (_, j') v acc -> if j' = j then acc +. v else acc) d 0.

let scale f d =
  if f <= 0. then invalid_arg "Demand.scale: non-positive factor";
  let out = create () in
  Hashtbl.iter (fun (i, j) v -> set out i j (v *. f)) d;
  out

let map f d =
  let out = create () in
  Hashtbl.iter (fun (i, j) v -> set out i j (f i j v)) d;
  out

let max_port (d : t) =
  Hashtbl.fold (fun (i, j) _ acc -> max acc (max i j)) d (-1)

let to_dense d =
  let ports = Array.of_list (sorted_distinct (senders d @ receivers d)) in
  let index = Hashtbl.create 16 in
  Array.iteri (fun a p -> Hashtbl.replace index p a) ports;
  let n = Array.length ports in
  let m = Sunflow_matching.Dense.make n in
  Hashtbl.iter
    (fun (i, j) v ->
      let a = Hashtbl.find index i and b = Hashtbl.find index j in
      m.(a).(b) <- m.(a).(b) +. v)
    d;
  (ports, m)

let equal ?(eps = 1e-6) a b =
  let covered d d' =
    Hashtbl.fold
      (fun (i, j) v acc -> acc && Float.abs (v -. get d' i j) <= eps)
      d true
  in
  covered a b && covered b a

let pp ppf d =
  Format.fprintf ppf "@[<v>";
  List.iter
    (fun ((i, j), v) ->
      Format.fprintf ppf "[in.%d -> out.%d] %a@," i j Units.pp_bytes v)
    (entries d);
  Format.fprintf ppf "@]"

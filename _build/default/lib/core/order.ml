type t =
  | Ordered_port
  | Sorted_demand_desc
  | Sorted_demand_asc
  | Shuffled of int
  | Custom of (((int * int) * float) list -> ((int * int) * float) list)

let apply order entries =
  match order with
  | Ordered_port -> List.sort (fun (a, _) (b, _) -> compare a b) entries
  | Sorted_demand_desc ->
    List.sort (fun (ka, a) (kb, b) -> compare (b, ka) (a, kb)) entries
  | Sorted_demand_asc ->
    List.sort (fun (ka, a) (kb, b) -> compare (a, ka) (b, kb)) entries
  | Shuffled seed ->
    let rng = Sunflow_stats.Rng.create seed in
    Sunflow_stats.Rng.shuffle_list rng entries
  | Custom f ->
    let out = f entries in
    let norm l = List.sort compare l in
    if norm out <> norm entries then
      invalid_arg "Order.apply: Custom ordering is not a permutation";
    out

let to_string = function
  | Ordered_port -> "OrderedPort"
  | Sorted_demand_desc -> "SortedDemand"
  | Sorted_demand_asc -> "SortedDemandAsc"
  | Shuffled seed -> "Random(seed=" ^ string_of_int seed ^ ")"
  | Custom _ -> "Custom"

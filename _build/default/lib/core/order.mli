(** Reservation orderings for Sunflow.

    Algorithm 1 considers the flows of a Coflow in an arbitrary order
    (line 3, "Shuffle P if desired"); Lemma 1 holds for any ordering.
    §5.3.1 measures three concrete orderings and finds performance
    insensitive to the choice; this module provides them. *)

type t =
  | Ordered_port  (** sort by [(src, dst)] — the paper's default *)
  | Sorted_demand_desc  (** largest flow first (the paper's SortedDemand) *)
  | Sorted_demand_asc  (** smallest flow first *)
  | Shuffled of int  (** uniformly random order from a seed (Random) *)
  | Custom of (((int * int) * float) list -> ((int * int) * float) list)
      (** arbitrary reordering of [((src, dst), bytes)] entries *)

val apply : t -> ((int * int) * float) list -> ((int * int) * float) list
(** Reorder demand entries. A [Custom] function must return a
    permutation of its input; this is checked and violations raise
    [Invalid_argument]. *)

val to_string : t -> string

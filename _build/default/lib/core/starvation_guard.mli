(** Starvation avoidance for inter-Coflow scheduling (paper §4.2,
    "Avoiding Starvation").

    Priority scheduling lets high-priority Coflows block low-priority
    ones indefinitely (especially under adversarial arrivals). The
    paper's remedy: a fixed list of [N] circuit assignments
    [Phi = A_1 ... A_N] covering all [N^2] circuits, and a repeating
    [(T + tau)] super-interval — during each [T] sub-interval the
    normal priority scheduler runs; during each [tau] sub-interval the
    next [A_k] (round-robin) is installed and {e all} Coflows share the
    bandwidth of its circuits. Every Coflow therefore receives non-zero
    service on every circuit it needs at least once per [N (T + tau)]
    seconds. *)

type config = {
  n_ports : int;  (** N *)
  t_work : float;  (** T, the priority-scheduling sub-interval *)
  tau : float;  (** the guard sub-interval, [delta < tau << T] *)
}

val round_robin_assignment : n_ports:int -> k:int -> (int * int) list
(** [A_k = { (i, (i + k) mod N) | i }]. [k] is taken modulo [N]. The
    union of [A_0 .. A_(N-1)] covers all [N^2] circuits; each is a
    perfect matching. *)

val guaranteed_service_period : config -> float
(** [N * (T + tau)]: the paper's bound on the time between two service
    opportunities for any circuit. *)

val check : config -> delta:float -> (unit, string) result
(** Validate [tau > delta], [t_work >= tau] and [n_ports > 0]. *)

type outcome = {
  finishes : (int * float) list;
      (** Coflow id -> drain instant, sorted by id; only Coflows that
          drained within the horizon appear *)
  horizon : float;  (** simulated time *)
}

val run :
  ?policy:Inter.policy ->
  delta:float ->
  bandwidth:float ->
  horizon:float ->
  prioritized:Coflow.t list ->
  starved:Coflow.t list ->
  config ->
  outcome
(** Phase-level simulation of the guard. [prioritized] Coflows are
    served by the normal {!Inter} scheduler during [T] sub-intervals;
    [starved] Coflows (e.g. maliciously deprioritised traffic) receive
    service only during the [tau] sub-intervals, where the round-robin
    assignment's circuits are shared equally among all Coflows with
    demand on them. Circuits are re-established in every sub-interval
    (no carry-over across phase boundaries — a conservative
    simplification). Raises [Invalid_argument] when {!check} fails,
    some Coflow uses a port [>= n_ports], or [horizon <= 0.]. *)

(** Job-level trace replay: stages become Coflows as their
    prerequisites finish, the fabric schedules the live Coflows, and a
    job completes when its last stage drains.

    Built on the {!Sunflow_sim} replay engines through their
    [on_complete] hooks, so the same code paths measured in the
    Coflow-level experiments serve the job level. *)

type fabric =
  | Circuit of { delta : float; policy : Sunflow_core.Inter.policy }
      (** Sunflow-scheduled optical fabric *)
  | Packet of Sunflow_packet.Snapshot.scheduler
      (** packet fabric under the given scheduler *)

val stage_policy : Sunflow_core.Inter.policy
(** The paper's stage-aware policy: Coflows of earlier stages are
    served before later-staged ones, FIFO within a stage. The stage
    number is the stage's index, which equals its dependency depth for
    the usual topologically-ordered job descriptions. Only meaningful
    on Coflow ids produced by {!run} (stage metadata is encoded in
    them). *)

type result = {
  job_completions : (int * float) list;
      (** job id -> completion time (last stage finish - job arrival),
          sorted by id *)
  stage_finishes : (int * int * float) list;
      (** (job id, stage index, absolute finish) in finish order *)
  coflow_result : Sunflow_sim.Sim_result.t;
      (** the underlying Coflow-level replay *)
}

val run : fabric:fabric -> bandwidth:float -> Job.t list -> result
(** Replay the jobs. Raises [Invalid_argument] on duplicate job ids or
    more than 4096 stages in one job (ids encode (job, stage)). *)

val average_jct : result -> float
(** Average job completion time; raises on an empty result. *)

module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Inter = Sunflow_core.Inter
module R = Sunflow_sim.Sim_result

type fabric =
  | Circuit of { delta : float; policy : Inter.policy }
  | Packet of Sunflow_packet.Snapshot.scheduler

(* Coflow ids encode (job, stage) so completions route back. *)
let stage_bits = 4096
let encode ~job ~stage = (job * stage_bits) + stage
let decode id = (id / stage_bits, id mod stage_bits)

(* Earlier pipeline stages first; FIFO inside a class comes from
   Inter's tie-breaking, which the paper's example asks for. *)
let stage_policy =
  Inter.Priority_classes (fun (c : Coflow.t) -> snd (decode c.id))

type result = {
  job_completions : (int * float) list;
  stage_finishes : (int * int * float) list;
  coflow_result : R.t;
}

let run ~fabric ~bandwidth jobs =
  let ids = List.map (fun (j : Job.t) -> j.id) jobs in
  if List.length (List.sort_uniq compare ids) <> List.length ids then
    invalid_arg "Job_sim.run: duplicate job ids";
  List.iter
    (fun (j : Job.t) ->
      if Job.n_stages j > stage_bits then
        invalid_arg "Job_sim.run: too many stages";
      if j.id < 0 then invalid_arg "Job_sim.run: negative job id")
    jobs;
  let job_of = Hashtbl.create 16 in
  List.iter (fun (j : Job.t) -> Hashtbl.replace job_of j.id j) jobs;
  let completed : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let released : (int * int, unit) Hashtbl.t = Hashtbl.create 64 in
  let empty_finishes = ref [] in
  (* Release every ready, unreleased stage of a job; empty-demand
     stages complete on the spot and may unlock further stages. *)
  let rec release_ready (j : Job.t) t =
    let is_done s = Hashtbl.mem completed (j.id, s) in
    Job.ready j ~completed:is_done
    |> List.filter (fun s -> not (Hashtbl.mem released (j.id, s)))
    |> List.concat_map (fun s ->
           Hashtbl.replace released (j.id, s) ();
           let demand = j.stages.(s).Job.demand in
           if Demand.is_empty demand then begin
             Hashtbl.replace completed (j.id, s) ();
             empty_finishes := (j.id, s, t) :: !empty_finishes;
             release_ready j t
           end
           else
             [
               Coflow.make ~id:(encode ~job:j.id ~stage:s) ~arrival:t
                 (Demand.copy demand);
             ])
  in
  let initial =
    List.concat_map (fun (j : Job.t) -> release_ready j j.arrival) jobs
  in
  let on_complete id t =
    let job, stage = decode id in
    Hashtbl.replace completed (job, stage) ();
    release_ready (Hashtbl.find job_of job) t
  in
  let coflow_result =
    match fabric with
    | Circuit { delta; policy } ->
      Sunflow_sim.Circuit_sim.run ~policy ~on_complete ~delta ~bandwidth initial
    | Packet scheduler ->
      Sunflow_sim.Packet_sim.run ~on_complete ~scheduler ~bandwidth initial
  in
  let stage_finishes =
    List.map
      (fun (id, t) ->
        let job, stage = decode id in
        (job, stage, t))
      coflow_result.R.finishes
    @ !empty_finishes
  in
  let job_completions =
    List.map
      (fun (j : Job.t) ->
        let finishes =
          List.filter_map
            (fun (job, stage, t) -> if job = j.id then Some (stage, t) else None)
            stage_finishes
        in
        if List.length finishes <> Job.n_stages j then
          invalid_arg "Job_sim.run: a stage never completed";
        let last = List.fold_left (fun a (_, t) -> Float.max a t) 0. finishes in
        (j.id, last -. j.arrival))
      jobs
    |> List.sort (fun (a, _) (b, _) -> compare a b)
  in
  {
    job_completions;
    stage_finishes =
      List.sort (fun (_, _, a) (_, _, b) -> compare a b) stage_finishes;
    coflow_result;
  }

let average_jct r =
  match r.job_completions with
  | [] -> invalid_arg "Job_sim.average_jct: no jobs"
  | l -> List.fold_left (fun a (_, t) -> a +. t) 0. l /. float_of_int (List.length l)

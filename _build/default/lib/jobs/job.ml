module Demand = Sunflow_core.Demand
module Bounds = Sunflow_core.Bounds

type stage = {
  demand : Demand.t;
  depends_on : int list;
}

type t = {
  id : int;
  arrival : float;
  stages : stage array;
}

let n_stages t = Array.length t.stages

(* DFS cycle check with colouring. *)
let check_acyclic stages =
  let n = Array.length stages in
  let colour = Array.make n `White in
  let rec visit i =
    match colour.(i) with
    | `Grey -> invalid_arg "Job.make: dependency cycle"
    | `Black -> ()
    | `White ->
      colour.(i) <- `Grey;
      List.iter visit stages.(i).depends_on;
      colour.(i) <- `Black
  in
  for i = 0 to n - 1 do
    visit i
  done

let make ~id ?(arrival = 0.) stages =
  if arrival < 0. then invalid_arg "Job.make: negative arrival";
  if stages = [] then invalid_arg "Job.make: a job needs at least one stage";
  let stages = Array.of_list stages in
  let n = Array.length stages in
  Array.iter
    (fun s ->
      List.iter
        (fun d ->
          if d < 0 || d >= n then
            invalid_arg "Job.make: dependency index out of range")
        s.depends_on)
    stages;
  check_acyclic stages;
  { id; arrival; stages }

let roots t =
  List.filter
    (fun i -> t.stages.(i).depends_on = [])
    (List.init (n_stages t) Fun.id)

let dependants t i =
  if i < 0 || i >= n_stages t then invalid_arg "Job.dependants: stage out of range";
  List.filter
    (fun j -> List.mem i t.stages.(j).depends_on)
    (List.init (n_stages t) Fun.id)

let ready t ~completed =
  List.filter
    (fun i -> List.for_all completed t.stages.(i).depends_on)
    (List.init (n_stages t) Fun.id)

let depth t i =
  if i < 0 || i >= n_stages t then invalid_arg "Job.depth: stage out of range";
  let memo = Array.make (n_stages t) (-1) in
  let rec go i =
    if memo.(i) >= 0 then memo.(i)
    else begin
      let d =
        match t.stages.(i).depends_on with
        | [] -> 0
        | deps -> 1 + List.fold_left (fun a j -> max a (go j)) 0 deps
      in
      memo.(i) <- d;
      d
    end
  in
  go i

let critical_path ~bandwidth t =
  let memo = Array.make (n_stages t) (-1.) in
  let rec go i =
    if memo.(i) >= 0. then memo.(i)
    else begin
      let own = Bounds.packet_lower ~bandwidth t.stages.(i).demand in
      let before =
        List.fold_left (fun a j -> Float.max a (go j)) 0. t.stages.(i).depends_on
      in
      let v = own +. before in
      memo.(i) <- v;
      v
    end
  in
  List.fold_left
    (fun a i -> Float.max a (go i))
    0.
    (List.init (n_stages t) Fun.id)

let total_bytes t =
  Array.fold_left (fun a s -> a +. Demand.total_bytes s.demand) 0. t.stages

(** Multi-stage data-parallel jobs (paper §4.2, third policy example).

    Frameworks like Hive, Tez and Dryad run jobs as DAGs of stages;
    each inter-stage data movement is one Coflow, and a Coflow only
    materialises when the stages it depends on have finished. The paper
    motivates stage-aware inter-Coflow policies with exactly this
    structure ("later-staged Coflows yield to earlier-staged Coflows to
    avoid the potential creation of stragglers").

    A job is a list of stages; stage [i] may depend on any stages with
    indices in [depends_on]. Dependencies must form a DAG. *)

type stage = {
  demand : Sunflow_core.Demand.t;  (** the stage's Coflow traffic *)
  depends_on : int list;  (** indices of prerequisite stages *)
}

type t = private {
  id : int;
  arrival : float;  (** when the job (its root stages) is submitted *)
  stages : stage array;
}

val make : id:int -> ?arrival:float -> stage list -> t
(** Validates: at least one stage, dependency indices in range and
    acyclic, non-negative arrival. Raises [Invalid_argument]
    otherwise. Stages with empty demand are allowed (barrier-only
    stages) and complete instantly when released. *)

val n_stages : t -> int

val roots : t -> int list
(** Stages with no dependencies — released at the job's arrival. *)

val dependants : t -> int -> int list
(** Stages that list the given stage as a prerequisite. *)

val ready : t -> completed:(int -> bool) -> int list
(** Stages all of whose prerequisites satisfy [completed], in index
    order (including already-completed ones; callers filter). *)

val depth : t -> int -> int
(** Length of the longest dependency chain ending at a stage
    ([0] for roots) — the "stage number" a stage-aware policy keys
    on. *)

val critical_path : bandwidth:float -> t -> float
(** Lower bound on job completion: the largest sum of stage
    packet-switched lower bounds along any dependency chain. *)

val total_bytes : t -> float

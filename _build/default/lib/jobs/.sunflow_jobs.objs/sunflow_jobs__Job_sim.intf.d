lib/jobs/job_sim.mli: Job Sunflow_core Sunflow_packet Sunflow_sim

lib/jobs/job.mli: Sunflow_core

lib/jobs/job_sim.ml: Array Float Hashtbl Job List Sunflow_core Sunflow_packet Sunflow_sim

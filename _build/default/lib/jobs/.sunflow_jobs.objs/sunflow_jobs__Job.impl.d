lib/jobs/job.ml: Array Float Fun List Sunflow_core

(* Quickstart: schedule one Coflow on an optical circuit switch.

   A 3x2 MapReduce shuffle is declared flow by flow, scheduled with
   Sunflow, and the resulting circuit plan is printed as a Gantt chart
   together with the paper's lower bounds and guarantees.

   Run with: dune exec examples/quickstart.exe *)

open Sunflow_core

let () =
  let bandwidth = Units.gbps 1. in
  let delta = Units.ms 10. in

  (* a shuffle: racks 0-2 are mappers, racks 3-4 run the reducers *)
  let demand =
    Demand.of_list
      [
        ((0, 3), Units.mb 60.);
        ((0, 4), Units.mb 30.);
        ((1, 3), Units.mb 60.);
        ((1, 4), Units.mb 30.);
        ((2, 3), Units.mb 60.);
        ((2, 4), Units.mb 30.);
      ]
  in
  let coflow = Coflow.make ~id:1 demand in

  Format.printf "Coflow: %a@.@." Coflow.pp coflow;

  let result = Sunflow.schedule ~delta ~bandwidth coflow in

  Format.printf "Sunflow schedule (# = reconfiguration, = = transmission):@.%a@.@."
    (Schedule.pp_gantt ~width:72 ~bandwidth)
    result.reservations;

  let tcl = Bounds.circuit_lower ~bandwidth ~delta demand in
  let tpl = Bounds.packet_lower ~bandwidth demand in
  Format.printf "completion time           : %a@." Units.pp_time result.finish;
  Format.printf "circuit lower bound T_L^c : %a  (ratio %.3f, Lemma 1 bound: 2.0)@."
    Units.pp_time tcl (result.finish /. tcl);
  Format.printf "packet lower bound  T_L^p : %a  (ratio %.3f)@." Units.pp_time
    tpl (result.finish /. tpl);
  Format.printf "circuit setups            : %d (minimum possible: %d)@."
    result.setups (Coflow.n_subflows coflow);
  Format.printf "time spent reconfiguring  : %a@." Units.pp_time
    (Schedule.total_setup_time result.reservations);
  Format.printf "circuit duty cycle        : %.1f%%@."
    (100. *. Schedule.duty_cycle result.reservations)

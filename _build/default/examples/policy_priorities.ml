(* Inter-Coflow policies (paper §4.2): the operator only supplies a
   priority ordering; Sunflow keeps prioritised Coflows unblocked.

   Scenario: a privileged production Coflow and two regular batch
   Coflows compete for the same input port. Three policies are
   compared, then the round-robin starvation guard is demonstrated on
   an adversarial workload that would otherwise starve a victim.

   Run with: dune exec examples/policy_priorities.exe *)

open Sunflow_core

let bandwidth = Units.gbps 1.
let delta = Units.ms 10.

(* the production Coflow arrives just after the batch traffic, so FIFO
   makes it wait while the privileged policy lets it cut the line *)
let production =
  Coflow.make ~id:0 ~arrival:0.05
    (Demand.of_list [ ((0, 8), Units.mb 40.); ((1, 9), Units.mb 40.) ])

let batch_a =
  Coflow.make ~id:1
    (Demand.of_list [ ((0, 9), Units.mb 400.); ((1, 8), Units.mb 400.) ])

let batch_b = Coflow.make ~id:2 (Demand.of_list [ ((0, 7), Units.mb 4.) ])

let show_policy name policy =
  let r = Inter.schedule ~policy ~delta ~bandwidth [ batch_a; production; batch_b ] in
  Format.printf "%-28s" name;
  List.iter
    (fun c ->
      Format.printf "  #%d: %a" c.Coflow.id Units.pp_time
        (Option.get (Inter.finish_of r c.Coflow.id)))
    [ production; batch_a; batch_b ];
  Format.printf "@."

let () =
  Format.printf "Coflows: #0 production (80 MB), #1 batch (800 MB), #2 batch (4 MB)@.@.";
  show_policy "fifo" Inter.Fifo;
  show_policy "shortest-coflow-first" Inter.Shortest_first;
  show_policy "privileged production"
    (Inter.Priority_classes (fun c -> if c.Coflow.id = 0 then 0 else 1));
  show_policy "custom (largest first)"
    (Inter.Custom
       (fun a b -> compare (Coflow.total_bytes b) (Coflow.total_bytes a)));

  (* Starvation guard: an attacker floods the fabric with high-priority
     traffic on circuit (0, 1); the victim still progresses because
     every circuit is shared during the recurring tau intervals. *)
  Format.printf "@.-- starvation guard (Phi / T / tau of §4.2) --@.";
  let config = { Starvation_guard.n_ports = 4; t_work = 1.; tau = 0.1 } in
  let attacker = Coflow.make ~id:10 (Demand.of_list [ ((0, 1), Units.gb 50.) ]) in
  let victim = Coflow.make ~id:11 (Demand.of_list [ ((0, 1), Units.mb 8.) ]) in
  let horizon = 5. *. Starvation_guard.guaranteed_service_period config in
  let o =
    Starvation_guard.run ~delta ~bandwidth ~horizon ~prioritized:[ attacker ]
      ~starved:[ victim ] config
  in
  Format.printf "guaranteed service period N(T+tau) = %a@." Units.pp_time
    (Starvation_guard.guaranteed_service_period config);
  (match List.assoc_opt victim.Coflow.id o.finishes with
  | Some t ->
    Format.printf "starved victim (8 MB behind a 50 GB hog) drained at %a@."
      Units.pp_time t
  | None -> Format.printf "victim not drained within %a@." Units.pp_time horizon);
  match List.assoc_opt attacker.Coflow.id o.finishes with
  | Some t -> Format.printf "attacker drained at %a@." Units.pp_time t
  | None -> Format.printf "attacker still running at the horizon (expected)@."

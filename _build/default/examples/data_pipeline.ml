(* Multi-stage jobs (paper §4.2, third policy example): Hive/Tez-style
   pipelines whose inter-stage shuffles are Coflows with dependencies.

   A mix of short interactive queries and a long batch pipeline share
   the fabric; the job-level simulator releases each stage's Coflow
   when its predecessors finish. Three inter-Coflow policies are
   compared on job completion time.

   Run with: dune exec examples/data_pipeline.exe *)

open Sunflow_core
module Job = Sunflow_jobs.Job
module Job_sim = Sunflow_jobs.Job_sim

let bandwidth = Units.gbps 1.
let delta = Units.ms 10.

let shuffle ~senders ~receivers mb =
  let d = Demand.create () in
  List.iter
    (fun s -> List.iter (fun r -> Demand.set d s r (Units.mb mb)) receivers)
    senders;
  d

let stage ?(depends_on = []) demand = { Job.demand; depends_on }

(* a three-stage batch pipeline: wide shuffle, aggregate, replicate out *)
let batch =
  Job.make ~id:0
    [
      stage (shuffle ~senders:[ 0; 1; 2; 3 ] ~receivers:[ 4; 5; 6; 7 ] 120.);
      stage ~depends_on:[ 0 ]
        (shuffle ~senders:[ 4; 6; 7 ] ~receivers:[ 5; 8 ] 60.);
      stage ~depends_on:[ 1 ] (shuffle ~senders:[ 8 ] ~receivers:[ 0; 1 ] 40.);
    ]

(* short interactive queries arriving while the batch runs *)
let query id arrival =
  Job.make ~id ~arrival
    [
      stage (shuffle ~senders:[ 0; 2 ] ~receivers:[ 5 ] 4.);
      stage ~depends_on:[ 0 ] (shuffle ~senders:[ 5 ] ~receivers:[ 9 ] 2.);
    ]

(* the queries land while the batch is deep in its pipeline, so the
   stage-aware policy lets their first-stage Coflows cut ahead of the
   batch's later-stage ones *)
let jobs = [ batch; query 1 4.0; query 2 4.7; query 3 5.4 ]

let show name policy =
  let r =
    Job_sim.run ~fabric:(Job_sim.Circuit { delta; policy }) ~bandwidth jobs
  in
  Format.printf "%-24s" name;
  List.iter
    (fun (id, jct) -> Format.printf "  job%d: %6.2fs" id jct)
    r.job_completions;
  Format.printf "  | avg %5.2fs@." (Job_sim.average_jct r)

let () =
  List.iter
    (fun (j : Job.t) ->
      Format.printf
        "job %d: %d stages, %a, critical-path lower bound %a@." j.id
        (Job.n_stages j) Units.pp_bytes (Job.total_bytes j) Units.pp_time
        (Job.critical_path ~bandwidth j))
    jobs;
  Format.printf "@.job completion times on the Sunflow-scheduled OCS:@.";
  show "fifo" Inter.Fifo;
  show "shortest-coflow-first" Inter.Shortest_first;
  show "stage-aware" Job_sim.stage_policy;
  let packet =
    Job_sim.run ~fabric:(Job_sim.Packet Sunflow_packet.Varys.allocate)
      ~bandwidth jobs
  in
  Format.printf "%-24s" "packet fabric (varys)";
  List.iter
    (fun (id, jct) -> Format.printf "  job%d: %6.2fs" id jct)
    packet.job_completions;
  Format.printf "  | avg %5.2fs@." (Job_sim.average_jct packet)

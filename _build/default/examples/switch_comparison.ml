(* Intra-Coflow scheduler shoot-out (the paper's Fig. 1 scenario):
   one dense many-to-many Coflow scheduled by Sunflow and by the three
   all-stop-heritage baselines - Solstice, TMS and Edmonds - on the
   same not-all-stop optical switch.

   Run with: dune exec examples/switch_comparison.exe *)

open Sunflow_core
module B = Sunflow_baselines

let () =
  let bandwidth = Units.gbps 1. in
  let delta = Units.ms 10. in
  let rng = Sunflow_stats.Rng.create 2016 in

  (* a skewed 6x6 shuffle *)
  let demand = Demand.create () in
  for i = 0 to 5 do
    for j = 6 to 11 do
      Demand.set demand i j
        (Units.mb (float_of_int (1 + Sunflow_stats.Rng.int rng 40)))
    done
  done;
  let coflow = Coflow.make ~id:0 demand in
  let tcl = Bounds.circuit_lower ~bandwidth ~delta demand in

  Format.printf "Coflow: %a, T_L^c = %a@.@." Coflow.pp coflow Units.pp_time tcl;

  let sunflow = Sunflow.schedule ~delta ~bandwidth coflow in
  Format.printf "%-9s cct=%a ratio=%5.2f setups=%4d@." "sunflow" Units.pp_time
    sunflow.finish (sunflow.finish /. tcl) sunflow.setups;

  List.iter
    (fun (name, run) ->
      let (o : B.Executor.outcome) = run ~delta ~bandwidth coflow in
      Format.printf "%-9s cct=%a ratio=%5.2f setups=%4d assignments=%d@." name
        Units.pp_time o.cct (o.cct /. tcl) o.switching_count o.assignments_used)
    [
      ("solstice", fun ~delta ~bandwidth c -> B.Solstice.schedule ~delta ~bandwidth c);
      ("tms", fun ~delta ~bandwidth c -> B.Tms.schedule ~delta ~bandwidth c);
      ("edmonds", fun ~delta ~bandwidth c -> B.Edmonds.schedule ~delta ~bandwidth c);
    ];

  Format.printf "@.Sunflow's plan (every circuit configured exactly once):@.%a@."
    (Schedule.pp_gantt ~width:72 ~bandwidth)
    sunflow.reservations;

  (* sensitivity: what a faster optical switch would buy (Fig. 6) *)
  Format.printf "@.delta sweep (Sunflow CCT):@.";
  List.iter
    (fun d ->
      let r = Sunflow.schedule ~delta:d ~bandwidth coflow in
      Format.printf "  delta=%-6s cct=%a@."
        (Format.asprintf "%a" Units.pp_time d)
        Units.pp_time r.finish)
    [ Units.ms 100.; Units.ms 10.; Units.ms 1.; Units.us 100. ]

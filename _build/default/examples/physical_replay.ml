(* Physical validation: a Sunflow plan executed on the switch model.

   The analytical scheduler promises a completion time; this example
   plays its reservation plan against the executable OCS state machine
   and the sender-side VOQs (paper §2.1 / §6) and shows that physics
   agrees: every connect finds idle ports, every byte drains, and the
   last byte lands exactly when the plan said it would.

   Run with: dune exec examples/physical_replay.exe *)

open Sunflow_core
module Switch = Sunflow_switch

let () =
  let bandwidth = Units.gbps 1. in
  let delta = Units.ms 10. in
  let rng = Sunflow_stats.Rng.create 11 in

  (* two competing Coflows on a 6-rack pod *)
  let demand width base =
    let d = Demand.create () in
    for i = 0 to width - 1 do
      for j = 0 to width - 1 do
        Demand.set d i (3 + j)
          (Units.mb (float_of_int (base + Sunflow_stats.Rng.int rng 32)))
      done
    done;
    d
  in
  let urgent = Coflow.make ~id:1 (demand 2 4) in
  let bulk = Coflow.make ~id:2 (demand 3 48) in

  let plan =
    Inter.schedule ~policy:Inter.Shortest_first ~delta ~bandwidth
      [ bulk; urgent ]
  in
  let reservations = Prt.all_reservations plan.Inter.prt in
  Format.printf "plan: %d reservations@." (List.length reservations);
  List.iter
    (fun (c : Coflow.t) ->
      Format.printf "  %a -> planned finish %a@." Coflow.pp c Units.pp_time
        (Option.get (Inter.finish_of plan c.id)))
    [ urgent; bulk ];

  Format.printf "@.executing on the switch model...@.";
  match
    Switch.Controller.execute ~delta ~bandwidth ~n_ports:6
      ~coflows:[ urgent; bulk ] ~plan:reservations
  with
  | Error e -> Format.printf "PHYSICAL VIOLATION: %s@." e
  | Ok report ->
    List.iter
      (fun (id, t) ->
        Format.printf "  coflow #%d physically drained at %a@." id
          Units.pp_time t)
      report.finish_times;
    Format.printf "  circuit establishments: %d@." report.switch_count;
    Format.printf "  bytes left in VOQs     : %a@." Units.pp_bytes
      report.leftover;
    Format.printf "@.plan and physics agree: %b@."
      (List.for_all
         (fun (c : Coflow.t) ->
           let planned = Option.get (Inter.finish_of plan c.id) in
           let physical = List.assoc c.id report.finish_times in
           Float.abs (planned -. physical) < 1e-9)
         [ urgent; bulk ])

examples/data_pipeline.ml: Demand Format Inter List Sunflow_core Sunflow_jobs Sunflow_packet Units

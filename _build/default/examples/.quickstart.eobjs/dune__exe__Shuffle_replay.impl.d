examples/shuffle_replay.ml: Coflow Format List Sunflow_core Sunflow_packet Sunflow_sim Sunflow_trace Units

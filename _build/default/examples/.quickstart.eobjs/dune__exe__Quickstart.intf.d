examples/quickstart.mli:

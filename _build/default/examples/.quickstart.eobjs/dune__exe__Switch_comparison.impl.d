examples/switch_comparison.ml: Bounds Coflow Demand Format List Schedule Sunflow Sunflow_baselines Sunflow_core Sunflow_stats Units

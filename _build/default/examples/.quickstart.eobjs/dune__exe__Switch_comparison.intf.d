examples/switch_comparison.mli:

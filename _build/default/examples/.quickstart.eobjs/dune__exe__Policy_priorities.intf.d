examples/policy_priorities.mli:

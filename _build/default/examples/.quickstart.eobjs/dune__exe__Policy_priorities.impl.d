examples/policy_priorities.ml: Coflow Demand Format Inter List Option Starvation_guard Sunflow_core Units

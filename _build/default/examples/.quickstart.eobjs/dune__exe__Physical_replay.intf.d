examples/physical_replay.mli:

examples/quickstart.ml: Bounds Coflow Demand Format Schedule Sunflow Sunflow_core Units

examples/data_pipeline.mli:

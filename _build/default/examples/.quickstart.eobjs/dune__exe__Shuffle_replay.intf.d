examples/shuffle_replay.mli:

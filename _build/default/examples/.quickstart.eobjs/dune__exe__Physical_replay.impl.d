examples/physical_replay.ml: Coflow Demand Float Format Inter List Option Prt Sunflow_core Sunflow_stats Sunflow_switch Units

(* Trace replay: a data-parallel cluster's hour of Coflows serviced by
   three fabrics - Sunflow on an optical circuit switch, and Varys and
   Aalo on a packet switch - the comparison behind the paper's Figs. 8
   and 9.

   A small synthetic Facebook-like trace is generated (use
   Sunflow_trace.Trace.load to replay the real coflow-benchmark file
   instead), perturbed by +-5 % as in the evaluation, and replayed
   through both simulators.

   Run with: dune exec examples/shuffle_replay.exe *)

open Sunflow_core
module Trace = Sunflow_trace.Trace
module Synthetic = Sunflow_trace.Synthetic
module Workload = Sunflow_trace.Workload
module R = Sunflow_sim.Sim_result

let () =
  let bandwidth = Units.gbps 1. in
  let delta = Units.ms 10. in

  let trace =
    Synthetic.generate
      { Synthetic.default_params with n_coflows = 60; span = 420.; seed = 3 }
    |> Workload.perturb ~seed:7
  in
  Format.printf "trace: %d Coflows, %a, idleness %.0f%%@.@."
    (Trace.n_coflows trace) Units.pp_bytes (Trace.total_bytes trace)
    (100. *. Workload.idleness ~bandwidth trace);

  let sunflow = Sunflow_sim.Circuit_sim.run ~delta ~bandwidth trace.coflows in
  let varys =
    Sunflow_sim.Packet_sim.run ~scheduler:Sunflow_packet.Varys.allocate
      ~bandwidth trace.coflows
  in
  let aalo =
    Sunflow_sim.Packet_sim.run
      ~sent_thresholds:
        (Sunflow_sim.Packet_sim.aalo_thresholds Sunflow_packet.Aalo.default_params)
      ~scheduler:Sunflow_packet.Aalo.allocate ~bandwidth trace.coflows
  in

  Format.printf "%4s %-4s %8s | %9s %9s %9s@." "id" "kind" "bytes" "sunflow"
    "varys" "aalo";
  List.iter
    (fun (c : Coflow.t) ->
      Format.printf "%4d %-4s %8s | %8.3fs %8.3fs %8.3fs@." c.id
        (Coflow.Category.to_string (Coflow.category c))
        (Format.asprintf "%a" Units.pp_bytes (Coflow.total_bytes c))
        (R.cct_of sunflow c.id) (R.cct_of varys c.id) (R.cct_of aalo c.id))
    trace.coflows;

  let avg r = R.average_cct r in
  Format.printf "@.average CCT: sunflow %.3fs | varys %.3fs | aalo %.3fs@."
    (avg sunflow) (avg varys) (avg aalo);
  Format.printf "sunflow / varys = %.2f, sunflow / aalo = %.2f@."
    (avg sunflow /. avg varys)
    (avg sunflow /. avg aalo);
  Format.printf "circuit switch paid %d circuit setups over %d events@."
    sunflow.R.total_setups sunflow.R.n_events

(* Benchmark harness: regenerates every table and figure of the
   paper's evaluation (§5), then microbenchmarks the schedulers'
   planning latency with Bechamel (§6 "Scheduler latency" / Table 3).

   Run with SUNFLOW_BENCH_FAST=1 to shrink the trace for a quick smoke
   pass (used by CI-style checks); the default regenerates everything
   on the full 526-Coflow workload. *)

module E = Sunflow_experiments
module Units = Sunflow_core.Units

let settings () =
  match Sys.getenv_opt "SUNFLOW_BENCH_FAST" with
  | Some ("1" | "true") ->
    let params =
      { Sunflow_trace.Synthetic.default_params with n_coflows = 120; span = 800. }
    in
    { E.Common.default with trace_params = params }
  | _ -> E.Common.default

let timed ppf label f =
  let t0 = Unix.gettimeofday () in
  f ();
  Format.fprintf ppf "  [%s took %.1fs]@." label (Unix.gettimeofday () -. t0)

let experiment_reports ppf s =
  let reports =
    [
      ("table4", E.Exp_table4.report);
      ("fig3", E.Exp_fig3.report);
      ("fig4", E.Exp_fig4.report);
      ("fig5", E.Exp_fig5.report);
      ("fig6", E.Exp_fig6.report);
      ("fig7", E.Exp_fig7.report);
      ("fig8", E.Exp_fig8.report);
      ("fig9", E.Exp_fig9.report);
      ("fig10", E.Exp_fig10.report);
      ("table3", E.Exp_complexity.report);
      ("headline", E.Exp_headline.report);
      ("ordering", E.Exp_ordering.report);
      ("baseline-gap", E.Exp_baseline_gap.report);
      ("ablations", E.Exp_ablations.report);
      ("oracle", E.Exp_oracle.report);
      ("extensions", E.Exp_extensions.report);
    ]
  in
  List.iter
    (fun (label, report) ->
      timed ppf label (fun () -> report ?settings:(Some s) ppf))
    reports

(* --- Bechamel microbenchmarks: scheduler planning latency --- *)

let scheduler_tests s =
  let open Bechamel in
  let delta = s.E.Common.delta and bandwidth = s.E.Common.bandwidth in
  let rng = Sunflow_stats.Rng.create 77 in
  let coflow width =
    let demand = Sunflow_core.Demand.create () in
    for i = 0 to width - 1 do
      for j = 0 to width - 1 do
        Sunflow_core.Demand.set demand i (width + j)
          (Units.mb (float_of_int (1 + Sunflow_stats.Rng.int rng 64)))
      done
    done;
    Sunflow_core.Coflow.make ~id:0 demand
  in
  let c8 = coflow 8 and c16 = coflow 16 in
  let stage name f = Test.make ~name (Staged.stage f) in
  Test.make_grouped ~name:"planning"
    [
      stage "sunflow/|C|=64" (fun () ->
          Sunflow_core.Sunflow.schedule ~delta ~bandwidth c8);
      stage "sunflow/|C|=256" (fun () ->
          Sunflow_core.Sunflow.schedule ~delta ~bandwidth c16);
      stage "solstice/|C|=64" (fun () ->
          Sunflow_baselines.Solstice.assignments ~bandwidth
            c8.Sunflow_core.Coflow.demand);
      stage "tms/|C|=64" (fun () ->
          Sunflow_baselines.Tms.assignments ~bandwidth
            c8.Sunflow_core.Coflow.demand);
      stage "edmonds/|C|=64" (fun () ->
          Sunflow_baselines.Edmonds.assignments ~bandwidth
            c8.Sunflow_core.Coflow.demand);
    ]

let run_bechamel ppf s =
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) () in
  let raw = Benchmark.all cfg Toolkit.Instance.[ monotonic_clock ] (scheduler_tests s) in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  E.Common.section ppf "BECHAMEL: scheduler planning latency";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some (ns_per_run :: _) ->
        Format.fprintf ppf "  %-24s %10.1f us/run@." name (ns_per_run /. 1e3)
      | _ -> Format.fprintf ppf "  %-24s (no estimate)@." name)
    results

let () =
  let ppf = Format.std_formatter in
  let s = settings () in
  Format.fprintf ppf
    "Sunflow reproduction benchmark harness (CoNEXT 2016)@.settings: B=%g Gbps, delta=%a, %d Coflows, seed=%d@."
    (Units.to_gbps s.E.Common.bandwidth)
    Units.pp_time s.E.Common.delta
    s.E.Common.trace_params.Sunflow_trace.Synthetic.n_coflows
    s.E.Common.trace_params.Sunflow_trace.Synthetic.seed;
  experiment_reports ppf s;
  run_bechamel ppf s;
  Format.fprintf ppf "@.done.@."

module Deadline = Sunflow_core.Deadline
module Inter = Sunflow_core.Inter
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units

let b = Units.gbps 1.
let delta = Units.ms 10.

let mk id ?(arrival = 0.) flows = Coflow.make ~id ~arrival (Demand.of_list flows)

(* 10 MB on one circuit: 90 ms alone *)
let c1 = mk 1 [ ((0, 5), Units.mb 10.) ]
let c2 = mk 2 [ ((0, 6), Units.mb 10.) ]
let c3 = mk 3 [ ((0, 7), Units.mb 10.) ]

let deadline_table table (c : Coflow.t) = List.assoc c.Coflow.id table

let test_edf_ordering () =
  let deadline_of = deadline_table [ (1, 3.); (2, 1.); (3, 2.) ] in
  let sorted = Inter.sort (Deadline.edf ~deadline_of) ~bandwidth:b [ c1; c2; c3 ] in
  Alcotest.(check (list int)) "by deadline" [ 2; 3; 1 ]
    (List.map (fun c -> c.Coflow.id) sorted)

let test_admit_all_when_loose () =
  let deadline_of = deadline_table [ (1, 10.); (2, 10.); (3, 10.) ] in
  let a = Deadline.admit ~deadline_of ~delta ~bandwidth:b [ c1; c2; c3 ] in
  Alcotest.(check int) "all admitted" 3 (List.length a.Deadline.admitted);
  Alcotest.(check int) "none rejected" 0 (List.length a.Deadline.rejected);
  List.iter
    (fun (id, finish) ->
      if finish > deadline_of (mk id []) then
        Alcotest.failf "coflow %d misses its deadline" id)
    a.Deadline.admitted

let test_admission_rejects_overload () =
  (* all three share In 0; each needs 90 ms alone, so only the first
     two can fit a 200 ms deadline *)
  let deadline_of = deadline_table [ (1, 0.2); (2, 0.2); (3, 0.2) ] in
  let a = Deadline.admit ~deadline_of ~delta ~bandwidth:b [ c1; c2; c3 ] in
  Alcotest.(check int) "two admitted" 2 (List.length a.Deadline.admitted);
  (match a.Deadline.rejected with
  | [ (_, would_finish) ] ->
    Alcotest.(check bool) "rejection justified" true (would_finish > 0.2)
  | _ -> Alcotest.fail "exactly one rejection expected");
  (* admitted finishes hold *)
  List.iter
    (fun (_, finish) ->
      Alcotest.(check bool) "meets deadline" true (finish <= 0.2))
    a.Deadline.admitted

let test_rejection_leaves_no_trace () =
  (* a hopeless Coflow between two feasible ones must not consume
     port time *)
  let big = mk 9 [ ((0, 5), Units.gb 10.) ] in
  let deadline_of =
    deadline_table [ (1, 0.1); (9, 0.15); (2, 10.) ]
  in
  let a = Deadline.admit ~deadline_of ~delta ~bandwidth:b [ c1; big; c2 ] in
  Alcotest.(check (list int)) "big rejected" [ 9 ]
    (List.map fst a.Deadline.rejected);
  (* c2 gets the fabric right after c1, as if 'big' never existed *)
  Alcotest.(check bool) "c2 unharmed" true (List.assoc 2 a.Deadline.admitted <= 10.)

let prop_admitted_meet_deadlines =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"every admitted Coflow's plan meets its deadline" ~count:150
       QCheck2.Gen.(
         list_size (int_range 1 6)
           (pair (Util.Gen.coflow ~n_ports:5 ()) (float_range 0.05 2.)))
       (fun entries ->
         let coflows = List.mapi (fun i (c, _) -> { c with Coflow.id = i }) entries in
         let deadlines = List.mapi (fun i (_, d) -> (i, d)) entries in
         let deadline_of (c : Coflow.t) = List.assoc c.id deadlines in
         let a = Deadline.admit ~deadline_of ~delta ~bandwidth:b coflows in
         List.for_all
           (fun (id, finish) -> finish <= List.assoc id deadlines +. 1e-12)
           a.Deadline.admitted
         && List.length a.Deadline.admitted + List.length a.Deadline.rejected
            = List.length coflows))

let suite =
  [
    Alcotest.test_case "edf ordering" `Quick test_edf_ordering;
    Alcotest.test_case "admit all when loose" `Quick test_admit_all_when_loose;
    Alcotest.test_case "admission rejects overload" `Quick
      test_admission_rejects_overload;
    Alcotest.test_case "rejection leaves no trace" `Quick
      test_rejection_leaves_no_trace;
    prop_admitted_meet_deadlines;
  ]

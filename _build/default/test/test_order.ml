module Order = Sunflow_core.Order

let entries = [ ((2, 1), 5.); ((0, 3), 9.); ((1, 2), 1.) ]

let test_ordered_port () =
  Alcotest.(check (list (pair int int)))
    "by (src, dst)"
    [ (0, 3); (1, 2); (2, 1) ]
    (List.map fst (Order.apply Order.Ordered_port entries))

let test_sorted_demand () =
  Alcotest.(check (list (pair int int)))
    "descending"
    [ (0, 3); (2, 1); (1, 2) ]
    (List.map fst (Order.apply Order.Sorted_demand_desc entries));
  Alcotest.(check (list (pair int int)))
    "ascending"
    [ (1, 2); (2, 1); (0, 3) ]
    (List.map fst (Order.apply Order.Sorted_demand_asc entries))

let test_shuffled_deterministic () =
  let a = Order.apply (Order.Shuffled 3) entries in
  let b = Order.apply (Order.Shuffled 3) entries in
  Alcotest.(check bool) "same seed same order" true (a = b);
  Alcotest.(check bool) "permutation" true
    (List.sort compare a = List.sort compare entries)

let test_custom_checked () =
  let ok = Order.apply (Order.Custom List.rev) entries in
  Alcotest.(check bool) "reversed" true (ok = List.rev entries);
  Alcotest.check_raises "not a permutation"
    (Invalid_argument "Order.apply: Custom ordering is not a permutation")
    (fun () -> ignore (Order.apply (Order.Custom (fun _ -> [])) entries))

let test_to_string () =
  Alcotest.(check string) "default name" "OrderedPort"
    (Order.to_string Order.Ordered_port);
  Alcotest.(check bool) "seed shown" true
    (Util.contains (Order.to_string (Order.Shuffled 7)) "7")

let suite =
  [
    Alcotest.test_case "ordered port" `Quick test_ordered_port;
    Alcotest.test_case "sorted demand" `Quick test_sorted_demand;
    Alcotest.test_case "shuffled deterministic" `Quick
      test_shuffled_deterministic;
    Alcotest.test_case "custom checked" `Quick test_custom_checked;
    Alcotest.test_case "to_string" `Quick test_to_string;
  ]

module Prt = Sunflow_core.Prt

let r ?(coflow = 0) ~src ~dst ~start ~setup ~length () =
  { Prt.coflow; src; dst; start; setup; length }

let test_free_at () =
  let t = Prt.create () in
  Alcotest.(check bool) "empty free" true (Prt.free_at t (Prt.In 0) 5.);
  Prt.reserve t (r ~src:0 ~dst:1 ~start:1. ~setup:0.1 ~length:2. ());
  Alcotest.(check bool) "before" true (Prt.free_at t (Prt.In 0) 0.5);
  Alcotest.(check bool) "at start busy" false (Prt.free_at t (Prt.In 0) 1.);
  Alcotest.(check bool) "inside busy" false (Prt.free_at t (Prt.In 0) 2.);
  Alcotest.(check bool) "at stop free" true (Prt.free_at t (Prt.In 0) 3.);
  Alcotest.(check bool) "out port busy too" false (Prt.free_at t (Prt.Out 1) 2.);
  Alcotest.(check bool) "other port free" true (Prt.free_at t (Prt.In 1) 2.)

let test_in_out_namespaces () =
  let t = Prt.create () in
  Prt.reserve t (r ~src:3 ~dst:3 ~start:0. ~setup:0. ~length:1. ());
  (* circuit 3 -> 3 occupies In 3 and Out 3 but not the other pair *)
  Alcotest.(check bool) "In 3 busy" false (Prt.free_at t (Prt.In 3) 0.5);
  Alcotest.(check bool) "Out 3 busy" false (Prt.free_at t (Prt.Out 3) 0.5);
  Prt.reserve t (r ~src:4 ~dst:5 ~start:0. ~setup:0. ~length:1. ());
  Alcotest.(check int) "two reservations" 2 (List.length (Prt.all_reservations t))

let test_overlap_rejected () =
  let t = Prt.create () in
  Prt.reserve t (r ~src:0 ~dst:1 ~start:1. ~setup:0. ~length:2. ());
  let clash = r ~src:0 ~dst:9 ~start:2. ~setup:0. ~length:1. () in
  (try
     Prt.reserve t clash;
     Alcotest.fail "expected overlap rejection"
   with Invalid_argument _ -> ());
  (* the failed reserve must not leave state behind *)
  Alcotest.(check int) "no partial insert" 1 (List.length (Prt.all_reservations t));
  (* a reservation that clashes only on the output port must also be
     rejected without corrupting the input port list *)
  let clash_out = r ~src:7 ~dst:1 ~start:2. ~setup:0. ~length:1. () in
  (try
     Prt.reserve t clash_out;
     Alcotest.fail "expected output overlap rejection"
   with Invalid_argument _ -> ());
  Alcotest.(check int) "still one" 1 (List.length (Prt.all_reservations t));
  Alcotest.(check bool) "In 7 free" true (Prt.free_at t (Prt.In 7) 2.5)

let test_back_to_back_ok () =
  let t = Prt.create () in
  Prt.reserve t (r ~src:0 ~dst:1 ~start:0. ~setup:0. ~length:1. ());
  Prt.reserve t (r ~src:0 ~dst:2 ~start:1. ~setup:0. ~length:1. ());
  Alcotest.(check int) "both in" 2 (List.length (Prt.all_reservations t))

let test_validation () =
  let t = Prt.create () in
  let bad_len = r ~src:0 ~dst:1 ~start:0. ~setup:0. ~length:0. () in
  Alcotest.check_raises "zero length"
    (Invalid_argument "Prt.reserve: non-positive length") (fun () ->
      Prt.reserve t bad_len);
  let bad_setup = r ~src:0 ~dst:1 ~start:0. ~setup:2. ~length:1. () in
  Alcotest.check_raises "setup > length"
    (Invalid_argument "Prt.reserve: setup outside [0, length]") (fun () ->
      Prt.reserve t bad_setup)

let test_next_start_after () =
  let t = Prt.create () in
  Prt.reserve t (r ~src:0 ~dst:1 ~start:5. ~setup:0. ~length:1. ());
  Prt.reserve t (r ~src:0 ~dst:2 ~start:9. ~setup:0. ~length:1. ());
  Util.check_close "first upcoming" 5. (Prt.next_start_after t (Prt.In 0) 0.);
  Util.check_close "strictly after" 9. (Prt.next_start_after t (Prt.In 0) 5.);
  Alcotest.(check bool) "none left" true
    (Prt.next_start_after t (Prt.In 0) 9. = infinity)

let test_next_release () =
  let t = Prt.create () in
  Prt.reserve t (r ~src:0 ~dst:1 ~start:0. ~setup:0. ~length:4. ());
  Prt.reserve t (r ~src:2 ~dst:3 ~start:0. ~setup:0. ~length:2. ());
  Util.check_close "earliest stop" 2. (Prt.next_release_after t 0.);
  Util.check_close "next" 4. (Prt.next_release_after t 2.);
  Util.check_close "restricted to ports" 4.
    (Prt.next_release_on_ports t [ Prt.In 0 ] 0.);
  Alcotest.(check bool) "no ports no release" true
    (Prt.next_release_on_ports t [ Prt.In 9 ] 0. = infinity)

let test_established_at () =
  let t = Prt.create () in
  Prt.reserve t (r ~src:0 ~dst:1 ~start:0. ~setup:1. ~length:3. ());
  Alcotest.(check (list (pair int int))) "during setup" []
    (Prt.established_at t 0.5);
  Alcotest.(check (list (pair int int))) "transmitting" [ (0, 1) ]
    (Prt.established_at t 1.5);
  Alcotest.(check (list (pair int int))) "after stop" []
    (Prt.established_at t 3.)

let test_copy_isolation () =
  let t = Prt.create () in
  Prt.reserve t (r ~src:0 ~dst:1 ~start:0. ~setup:0. ~length:1. ());
  let t' = Prt.copy t in
  Prt.reserve t' (r ~src:5 ~dst:6 ~start:0. ~setup:0. ~length:1. ());
  Alcotest.(check int) "copy extended" 2 (List.length (Prt.all_reservations t'));
  Alcotest.(check int) "original intact" 1 (List.length (Prt.all_reservations t))

let prop_no_overlap =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"random accepted reservations never violate port constraints"
       ~count:200
       QCheck2.Gen.(
         list_size (int_range 1 40)
           (quad (int_range 0 4) (int_range 0 4) (float_range 0. 50.)
              (float_range 0.1 5.)))
       (fun candidates ->
         let t = Prt.create () in
         List.iter
           (fun (src, dst, start, length) ->
             try Prt.reserve t (r ~src ~dst ~start ~setup:0.05 ~length ())
             with Invalid_argument _ -> ())
           candidates;
         match
           Sunflow_core.Schedule.check_port_constraints
             (Prt.all_reservations t)
         with
         | Ok _ -> true
         | Error _ -> false))

let suite =
  [
    Alcotest.test_case "free_at windows" `Quick test_free_at;
    Alcotest.test_case "in/out namespaces" `Quick test_in_out_namespaces;
    Alcotest.test_case "overlap rejected atomically" `Quick
      test_overlap_rejected;
    Alcotest.test_case "back-to-back windows ok" `Quick test_back_to_back_ok;
    Alcotest.test_case "validation" `Quick test_validation;
    Alcotest.test_case "next_start_after" `Quick test_next_start_after;
    Alcotest.test_case "next release" `Quick test_next_release;
    Alcotest.test_case "established_at" `Quick test_established_at;
    Alcotest.test_case "copy isolation" `Quick test_copy_isolation;
    prop_no_overlap;
  ]

module Q = Sunflow_sim.Event_queue

let test_ordering () =
  let q = Q.create () in
  Q.push q ~time:3. "c";
  Q.push q ~time:1. "a";
  Q.push q ~time:2. "b";
  Alcotest.(check (option (pair (float 0.) string))) "peek" (Some (1., "a")) (Q.peek q);
  Alcotest.(check (pair (float 0.) string)) "pop a" (1., "a") (Q.pop_exn q);
  Alcotest.(check (pair (float 0.) string)) "pop b" (2., "b") (Q.pop_exn q);
  Alcotest.(check (pair (float 0.) string)) "pop c" (3., "c") (Q.pop_exn q);
  Alcotest.(check bool) "empty" true (Q.is_empty q)

let test_stability () =
  let q = Q.create () in
  Q.push q ~time:1. "first";
  Q.push q ~time:1. "second";
  Q.push q ~time:1. "third";
  Alcotest.(check string) "insertion order" "first" (snd (Q.pop_exn q));
  Alcotest.(check string) "kept" "second" (snd (Q.pop_exn q));
  Alcotest.(check string) "kept" "third" (snd (Q.pop_exn q))

let test_drain_until () =
  let q = Q.create () in
  List.iter (fun t -> Q.push q ~time:t t) [ 5.; 1.; 3.; 8. ];
  let drained = Q.drain_until q 4. in
  Alcotest.(check (list (float 0.))) "drained in order" [ 1.; 3. ]
    (List.map fst drained);
  Alcotest.(check int) "rest kept" 2 (Q.size q)

let test_empty_pop () =
  let q : int Q.t = Q.create () in
  Alcotest.(check bool) "pop none" true (Q.pop q = None);
  Alcotest.check_raises "pop_exn"
    (Invalid_argument "Event_queue.pop_exn: empty queue") (fun () ->
      ignore (Q.pop_exn q))

let test_nan_rejected () =
  let q = Q.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.push: NaN time")
    (fun () -> Q.push q ~time:Float.nan ())

let prop_heap_sorts =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"pops come out sorted" ~count:200
       QCheck2.Gen.(list_size (int_range 0 200) (float_range (-1e6) 1e6))
       (fun times ->
         let q = Q.create () in
         List.iter (fun t -> Q.push q ~time:t ()) times;
         let rec drain acc =
           match Q.pop q with
           | Some (t, ()) -> drain (t :: acc)
           | None -> List.rev acc
         in
         drain [] = List.sort compare times))

let suite =
  [
    Alcotest.test_case "ordering" `Quick test_ordering;
    Alcotest.test_case "stability at equal times" `Quick test_stability;
    Alcotest.test_case "drain_until" `Quick test_drain_until;
    Alcotest.test_case "empty pops" `Quick test_empty_pop;
    Alcotest.test_case "nan rejected" `Quick test_nan_rejected;
    prop_heap_sorts;
  ]

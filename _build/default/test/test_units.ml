module Units = Sunflow_core.Units

let checkf = Alcotest.(check (float 1e-9))

let test_rates () =
  checkf "1 Gbps in bytes/s" 1.25e8 (Units.gbps 1.);
  checkf "800 Mbps" 1e8 (Units.mbps 800.);
  checkf "round trip" 40. (Units.to_gbps (Units.gbps 40.))

let test_sizes () =
  checkf "1 MB" 1e6 (Units.mb 1.);
  checkf "1 GB" 1e9 (Units.gb 1.);
  checkf "1 KB" 1e3 (Units.kb 1.);
  checkf "to_mb" 5. (Units.to_mb (Units.mb 5.))

let test_times () =
  checkf "10 ms" 0.01 (Units.ms 10.);
  checkf "100 us" 1e-4 (Units.us 100.)

let test_transfer_time () =
  (* 1 MB at 1 Gbps is 8 ms - the sanity anchor for all experiments *)
  checkf "1MB @ 1Gbps" 0.008 (Units.mb 1. /. Units.gbps 1.)

let test_pp () =
  let s v = Format.asprintf "%a" Units.pp_time v in
  Alcotest.(check string) "seconds" "1.5s" (s 1.5);
  Alcotest.(check string) "millis" "10ms" (s 0.01);
  Alcotest.(check string) "micros" "100us" (s 1e-4);
  let b v = Format.asprintf "%a" Units.pp_bytes v in
  Alcotest.(check string) "MB" "5MB" (b 5e6);
  Alcotest.(check string) "GB" "2GB" (b 2e9);
  Alcotest.(check string) "TB" "1.5TB" (b 1.5e12)

let suite =
  [
    Alcotest.test_case "rates" `Quick test_rates;
    Alcotest.test_case "sizes" `Quick test_sizes;
    Alcotest.test_case "times" `Quick test_times;
    Alcotest.test_case "transfer time anchor" `Quick test_transfer_time;
    Alcotest.test_case "pretty printing" `Quick test_pp;
  ]

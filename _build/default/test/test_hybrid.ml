module Hybrid = Sunflow_sim.Hybrid_sim
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units
module R = Sunflow_sim.Sim_result

let delta = Units.ms 10.
let circuit_bandwidth = Units.gbps 10.
let packet_bandwidth = Units.gbps 1.

let mk id ?(arrival = 0.) flows = Coflow.make ~id ~arrival (Demand.of_list flows)

let mouse = mk 0 [ ((0, 1), Units.mb 1.) ]
let elephant = mk 1 [ ((2, 3), Units.gb 2.); ((4, 5), Units.gb 2.) ]

let classify =
  Hybrid.best_bound ~delta ~circuit_bandwidth ~packet_bandwidth

let test_classifier () =
  (* 1 MB: 8 ms on the packet net vs 10.8 ms with a circuit setup *)
  Alcotest.(check bool) "mouse to packet" true (classify mouse = `Packet);
  Alcotest.(check bool) "elephant to circuit" true (classify elephant = `Circuit);
  let empty = Coflow.make ~id:9 (Demand.create ()) in
  Alcotest.(check bool) "empty to packet" true (classify empty = `Packet)

let test_merged_results () =
  let r =
    Hybrid.run ~delta ~circuit_bandwidth ~packet_bandwidth ~classify
      [ mouse; elephant ]
  in
  Alcotest.(check int) "both complete" 2 (List.length r.R.ccts);
  (* the mouse runs at packet speed with no setup *)
  Util.check_close "mouse cct" 0.008 (R.cct_of r 0);
  (* the elephant pays one delta per flow at circuit speed *)
  Util.check_close "elephant cct" 1.61 (R.cct_of r 1);
  Alcotest.(check int) "setups only from the circuit side" 2 r.R.total_setups

let test_fabrics_independent () =
  (* mice and elephants on the same ports must not interfere: they are
     on physically separate networks *)
  let mouse' = mk 0 [ ((2, 3), Units.mb 1.) ] in
  let r =
    Hybrid.run ~delta ~circuit_bandwidth ~packet_bandwidth ~classify
      [ mouse'; elephant ]
  in
  Util.check_close "mouse unaffected by elephant" 0.008 (R.cct_of r 0)

let test_all_one_side () =
  let r =
    Hybrid.run ~delta ~circuit_bandwidth ~packet_bandwidth
      ~classify:(fun _ -> `Circuit)
      [ mouse; elephant ]
  in
  Alcotest.(check int) "all on circuit" 2 (List.length r.R.ccts);
  let r' =
    Hybrid.run ~delta ~circuit_bandwidth ~packet_bandwidth
      ~classify:(fun _ -> `Packet)
      [ mouse; elephant ]
  in
  Alcotest.(check int) "no setups on packet" 0 r'.R.total_setups

let test_validation () =
  Alcotest.check_raises "bad bandwidth"
    (Invalid_argument "Hybrid_sim.run: non-positive bandwidth") (fun () ->
      ignore
        (Hybrid.run ~delta ~circuit_bandwidth:0. ~packet_bandwidth ~classify []))

let suite =
  [
    Alcotest.test_case "best-bound classifier" `Quick test_classifier;
    Alcotest.test_case "merged results" `Quick test_merged_results;
    Alcotest.test_case "fabrics independent" `Quick test_fabrics_independent;
    Alcotest.test_case "degenerate classifiers" `Quick test_all_one_side;
    Alcotest.test_case "validation" `Quick test_validation;
  ]

(* Smoke tests of the experiment harness on a reduced workload. These
   check shapes and invariants (the paper's qualitative claims), not
   point estimates. *)

module E = Sunflow_experiments
module Units = Sunflow_core.Units

let settings =
  {
    E.Common.default with
    trace_params =
      { Sunflow_trace.Synthetic.default_params with n_coflows = 80; span = 550. };
  }

let test_table4 () =
  let r = E.Exp_table4.run ~settings () in
  Alcotest.(check int) "count" 80 r.E.Exp_table4.n_coflows;
  Util.check_close "percentages sum" 100.
    (List.fold_left
       (fun a (s : Sunflow_trace.Workload.class_stat) -> a +. s.coflow_pct)
       0. r.E.Exp_table4.stats)

let test_fig3_shape () =
  let r = E.Exp_fig3.run ~settings ~bandwidths:[ Units.gbps 1. ] () in
  match r.E.Exp_fig3.rates with
  | [ row ] ->
    Alcotest.(check bool) "sunflow >= 1" true (row.sunflow_avg >= 1. -. 1e-9);
    Alcotest.(check bool) "lemma 1" true (row.sunflow_max < 2.);
    Alcotest.(check bool) "solstice worse" true
      (row.solstice_avg >= row.sunflow_avg)
  | _ -> Alcotest.fail "one bandwidth requested"

let test_fig5_shape () =
  let r = E.Exp_fig5.run ~settings () in
  Alcotest.(check bool) "sunflow minimal" true r.E.Exp_fig5.sunflow_always_minimal;
  Alcotest.(check bool) "solstice above minimal" true
    (r.E.Exp_fig5.solstice_avg > 1.)

let test_fig6_baseline_row () =
  let r = E.Exp_fig6.run ~settings () in
  let baseline_row =
    List.find
      (fun (row : E.Exp_fig6.per_delta) -> row.delta = r.E.Exp_fig6.baseline)
      r.E.Exp_fig6.rows
  in
  Util.check_close "baseline avg is 1" 1. baseline_row.sunflow_avg;
  (* slower switch, slower CCT *)
  let worst =
    List.find
      (fun (row : E.Exp_fig6.per_delta) -> row.delta = Units.ms 100.)
      r.E.Exp_fig6.rows
  in
  Alcotest.(check bool) "100 ms hurts" true (worst.sunflow_avg > 1.)

let test_fig7_bound () =
  let r = E.Exp_fig7.run ~settings () in
  Alcotest.(check bool) "within Lemma 2 bound" true
    (r.E.Exp_fig7.max_ratio <= r.E.Exp_fig7.lemma2_bound +. 1e-9);
  Alcotest.(check bool) "long coflows near bound" true
    (r.E.Exp_fig7.long_.avg <= r.E.Exp_fig7.short.avg +. 1e-9)

let test_headline () =
  let r = E.Exp_headline.run ~settings () in
  Alcotest.(check bool) "lemma 1" true r.E.Exp_headline.lemma1_holds;
  Alcotest.(check bool) "single-line optimal" true
    r.E.Exp_headline.single_line_optimal;
  Alcotest.(check bool) "switching minimal" true
    r.E.Exp_headline.switching_minimal;
  Alcotest.(check bool) "inter ratio sane" true
    (r.E.Exp_headline.inter_avg_cct_vs_varys > 0.5
    && r.E.Exp_headline.inter_avg_cct_vs_varys < 3.)

let test_ordering_insensitive () =
  let r = E.Exp_ordering.run ~settings () in
  List.iter
    (fun (row : E.Exp_ordering.row) ->
      if row.avg < 0.8 || row.avg > 1.2 then
        Alcotest.failf "%s too sensitive: %.2f" row.label row.avg)
    r.E.Exp_ordering.rows

let test_baseline_gap_shape () =
  let r = E.Exp_baseline_gap.run ~settings () in
  let row name =
    List.find (fun (x : E.Exp_baseline_gap.row) -> x.scheduler = name)
      r.E.Exp_baseline_gap.rows
  in
  Util.check_close "solstice vs itself" 1. (row "solstice").avg_ratio_vs_solstice;
  Alcotest.(check bool) "edmonds slowest" true
    ((row "edmonds").avg_ratio_vs_solstice > 1.5);
  Alcotest.(check bool) "sunflow at the bound" true
    ((row "sunflow").avg_ratio_vs_tcl < 1.1)

let test_extensions_shape () =
  let r = E.Exp_extensions.run ~settings () in
  Alcotest.(check bool) "has jobs" true (r.E.Exp_extensions.n_jobs > 0);
  List.iter
    (fun (row : E.Exp_extensions.deadline_row) ->
      Alcotest.(check bool) "guarantees hold" true row.guarantees_hold)
    r.E.Exp_extensions.deadlines;
  (* admitted fraction is monotone in slack *)
  let pcts =
    List.map
      (fun (row : E.Exp_extensions.deadline_row) -> row.admitted_pct)
      r.E.Exp_extensions.deadlines
  in
  Alcotest.(check bool) "monotone" true
    (List.for_all2 (fun a b -> a <= b +. 1e-9) pcts (List.tl pcts @ [ 100. ]))

let test_oracle_all_valid () =
  let r = E.Exp_oracle.run ~settings () in
  Alcotest.(check int) "all valid" r.E.Exp_oracle.n_plans
    r.E.Exp_oracle.physically_valid;
  Alcotest.(check int) "all ccts match" r.E.Exp_oracle.n_plans
    r.E.Exp_oracle.cct_matches

let test_complexity_rows () =
  let r = E.Exp_complexity.run ~settings ~widths:[ 4; 8 ] () in
  match r.E.Exp_complexity.rows with
  | [ a; b ] ->
    Alcotest.(check int) "|C| = width^2" 16 a.n_subflows;
    Alcotest.(check int) "|C| = width^2" 64 b.n_subflows
  | _ -> Alcotest.fail "two widths requested"

let suite =
  [
    Alcotest.test_case "table 4" `Slow test_table4;
    Alcotest.test_case "fig 3 shape" `Slow test_fig3_shape;
    Alcotest.test_case "fig 5 shape" `Slow test_fig5_shape;
    Alcotest.test_case "fig 6 baseline" `Slow test_fig6_baseline_row;
    Alcotest.test_case "fig 7 bound" `Slow test_fig7_bound;
    Alcotest.test_case "headline claims" `Slow test_headline;
    Alcotest.test_case "ordering insensitivity" `Slow test_ordering_insensitive;
    Alcotest.test_case "complexity rows" `Slow test_complexity_rows;
    Alcotest.test_case "baseline gap shape" `Slow test_baseline_gap_shape;
    Alcotest.test_case "extensions shape" `Slow test_extensions_shape;
    Alcotest.test_case "oracle all valid" `Slow test_oracle_all_valid;
  ]

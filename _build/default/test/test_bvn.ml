module Dense = Sunflow_matching.Dense
module Stuffing = Sunflow_matching.Stuffing
module Bvn = Sunflow_matching.Bvn
module Assignment = Sunflow_baselines.Assignment

let test_identity () =
  (* a permutation matrix decomposes into exactly itself *)
  let m = [| [| 0.; 2.; 0. |]; [| 2.; 0.; 0. |]; [| 0.; 0.; 2. |] |] in
  match Bvn.decompose m with
  | [ t ] ->
    Alcotest.(check (float 1e-9)) "weight" 2. t.weight;
    Alcotest.(check (list (pair int int)))
      "pairs" [ (0, 1); (1, 0); (2, 2) ]
      (List.sort compare t.pairs)
  | ts -> Alcotest.failf "expected one term, got %d" (List.length ts)

let test_unbalanced_rejected () =
  let m = [| [| 1.; 0. |]; [| 0.; 2. |] |] in
  Alcotest.check_raises "unbalanced"
    (Invalid_argument "Bvn.decompose: matrix is not balanced") (fun () ->
      ignore (Bvn.decompose m))

let test_empty () =
  Alcotest.(check int) "no terms" 0 (List.length (Bvn.decompose (Dense.make 3)))

let prop_reconstruct =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"decomposition reconstructs the matrix"
       ~count:150
       (Util.Gen.balanced_dense ~n:5 ())
       (fun m ->
         let terms = Bvn.decompose m in
         let back = Bvn.reconstruct 5 terms in
         Dense.equal ~eps:1e-6 m back))

let prop_terms_are_matchings =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"every term is a matching with positive weight"
       ~count:150
       (Util.Gen.balanced_dense ~n:4 ())
       (fun m ->
         List.for_all
           (fun (t : Bvn.term) ->
             t.weight > 0. && Assignment.is_matching t.pairs)
           (Bvn.decompose m)))

let prop_term_count_bounded =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"term count bounded by positive entries (Birkhoff)" ~count:100
       (Util.Gen.balanced_dense ~n:5 ())
       (fun m ->
         List.length (Bvn.decompose m) <= max 1 (Dense.count_positive m)))

let suite =
  [
    Alcotest.test_case "permutation identity" `Quick test_identity;
    Alcotest.test_case "unbalanced rejected" `Quick test_unbalanced_rejected;
    Alcotest.test_case "empty matrix" `Quick test_empty;
    prop_reconstruct;
    prop_terms_are_matchings;
    prop_term_count_bounded;
  ]

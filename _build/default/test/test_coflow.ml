module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units

let mk flows = Coflow.make ~id:1 (Demand.of_list flows)

let test_categories () =
  let cat flows = Coflow.category (mk flows) in
  Alcotest.(check string) "O2O" "O2O"
    (Coflow.Category.to_string (cat [ ((0, 1), 1.) ]));
  Alcotest.(check string) "O2M" "O2M"
    (Coflow.Category.to_string (cat [ ((0, 1), 1.); ((0, 2), 1.) ]));
  Alcotest.(check string) "M2O" "M2O"
    (Coflow.Category.to_string (cat [ ((0, 9), 1.); ((1, 9), 1.) ]));
  Alcotest.(check string) "M2M" "M2M"
    (Coflow.Category.to_string (cat [ ((0, 2), 1.); ((1, 3), 1.) ]));
  Alcotest.check_raises "empty" (Invalid_argument "Coflow.category: empty demand")
    (fun () -> ignore (Coflow.category (Coflow.make ~id:0 (Demand.create ()))))

let test_same_port_both_sides () =
  (* a rack may appear as sender and as receiver; categories count
     distinct senders and receivers separately *)
  let c = mk [ ((3, 3), 1.) ] in
  Alcotest.(check string) "self circuit is O2O" "O2O"
    (Coflow.Category.to_string (Coflow.category c))

let test_processing_time () =
  let c = mk [ ((0, 1), Units.mb 1.) ] in
  Util.check_close "1MB @ 1Gbps = 8ms" 0.008
    (Coflow.processing_time ~bandwidth:(Units.gbps 1.) c 0 1);
  Util.check_close "p_avg" 0.008
    (Coflow.avg_processing_time ~bandwidth:(Units.gbps 1.) c)

let test_is_long () =
  let b = Units.gbps 1. and delta = Units.ms 10. in
  (* long means p_avg > 40 delta = 0.4 s = 50 MB at 1 Gbps *)
  Alcotest.(check bool) "51MB long" true
    (Coflow.is_long ~bandwidth:b ~delta (mk [ ((0, 1), Units.mb 51.) ]));
  Alcotest.(check bool) "49MB short" false
    (Coflow.is_long ~bandwidth:b ~delta (mk [ ((0, 1), Units.mb 49.) ]))

let test_compare_arrival () =
  let a = Coflow.make ~id:2 ~arrival:1. (Demand.of_list [ ((0, 1), 1.) ]) in
  let b = Coflow.make ~id:1 ~arrival:2. (Demand.of_list [ ((0, 1), 1.) ]) in
  let c = Coflow.make ~id:3 ~arrival:1. (Demand.of_list [ ((0, 1), 1.) ]) in
  Alcotest.(check bool) "earlier first" true (Coflow.compare_arrival a b < 0);
  Alcotest.(check bool) "tie by id" true (Coflow.compare_arrival a c < 0)

let test_make_validation () =
  Alcotest.check_raises "negative arrival"
    (Invalid_argument "Coflow.make: negative arrival time") (fun () ->
      ignore (Coflow.make ~id:0 ~arrival:(-1.) (Demand.create ())))

let test_with_demand () =
  let c = mk [ ((0, 1), 4.) ] in
  let c' = Coflow.with_demand c (Demand.of_list [ ((2, 3), 8.) ]) in
  Alcotest.(check int) "same id" c.Coflow.id c'.Coflow.id;
  Util.check_close "new demand" 8. (Coflow.total_bytes c')

let suite =
  [
    Alcotest.test_case "categories" `Quick test_categories;
    Alcotest.test_case "same port both sides" `Quick test_same_port_both_sides;
    Alcotest.test_case "processing time" `Quick test_processing_time;
    Alcotest.test_case "is_long" `Quick test_is_long;
    Alcotest.test_case "compare arrival" `Quick test_compare_arrival;
    Alcotest.test_case "make validation" `Quick test_make_validation;
    Alcotest.test_case "with_demand" `Quick test_with_demand;
  ]

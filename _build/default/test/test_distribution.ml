module Dist = Sunflow_stats.Distribution

let checkf = Alcotest.(check (float 1e-9))

let test_cdf () =
  let c = Dist.cdf [ 3.; 1.; 2.; 2. ] in
  Alcotest.(check int) "distinct points" 3 (List.length c);
  checkf "at 1" 0.25 (Dist.cdf_at c 1.);
  checkf "at 2 (ties)" 0.75 (Dist.cdf_at c 2.);
  checkf "at 3" 1. (Dist.cdf_at c 3.);
  checkf "below" 0. (Dist.cdf_at c 0.5);
  checkf "beyond" 1. (Dist.cdf_at c 10.)

let test_cdf_monotone () =
  let c = Dist.cdf [ 5.; 1.; 9.; 4.; 4.; 2. ] in
  let fracs = List.map snd c in
  Alcotest.(check bool) "non-decreasing" true
    (List.for_all2 (fun a b -> a <= b) fracs (List.tl fracs @ [ 1. ]));
  checkf "last is 1" 1. (List.nth fracs (List.length fracs - 1))

let test_deciles () =
  let d = Dist.deciles [ 0.; 10. ] in
  Alcotest.(check int) "eleven points" 11 (Array.length d);
  checkf "p0" 0. d.(0);
  checkf "p50" 5. d.(5);
  checkf "p100" 10. d.(10)

let test_fraction_below () =
  checkf "half" 0.5 (Dist.fraction_below 2. [ 1.; 2.; 3.; 4. ]);
  checkf "empty" 0. (Dist.fraction_below 1. [])

let test_histogram () =
  let h = Dist.histogram ~bins:2 [ 0.; 1.; 2.; 3. ] in
  Alcotest.(check int) "edges" 3 (Array.length h.edges);
  Alcotest.(check (list int)) "counts" [ 2; 2 ] (Array.to_list h.counts);
  Alcotest.check_raises "no bins"
    (Invalid_argument "Distribution.histogram: bins < 1") (fun () ->
      ignore (Dist.histogram ~bins:0 [ 1. ]))

let test_histogram_total =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"histogram counts sum to sample size" ~count:100
       QCheck2.Gen.(list_size (int_range 1 50) (float_range (-5.) 5.))
       (fun xs ->
         let h = Dist.histogram ~bins:7 xs in
         Array.fold_left ( + ) 0 h.counts = List.length xs))

let test_ascii_chart () =
  let chart = Dist.ascii_cdf_chart ~width:20 ~height:4 [ ('x', [ 1.; 2.; 3. ]) ] in
  let lines = String.split_on_char '\n' chart in
  Alcotest.(check int) "rows + axis" 5 (List.length (List.filter (( <> ) "") lines));
  Alcotest.(check bool) "has glyph" true (Util.contains chart "x");
  Alcotest.(check bool) "axis shows range" true (Util.contains chart "1");
  Alcotest.check_raises "no series"
    (Invalid_argument "Distribution.ascii_cdf_chart: no series") (fun () ->
      ignore (Dist.ascii_cdf_chart []));
  Alcotest.check_raises "empty samples"
    (Invalid_argument "Distribution.ascii_cdf_chart: empty samples") (fun () ->
      ignore (Dist.ascii_cdf_chart [ ('x', []) ]))

let suite =
  [
    Alcotest.test_case "cdf" `Quick test_cdf;
    Alcotest.test_case "cdf monotone" `Quick test_cdf_monotone;
    Alcotest.test_case "deciles" `Quick test_deciles;
    Alcotest.test_case "fraction below" `Quick test_fraction_below;
    Alcotest.test_case "histogram" `Quick test_histogram;
    test_histogram_total;
    Alcotest.test_case "ascii cdf chart" `Quick test_ascii_chart;
  ]

module Synthetic = Sunflow_trace.Synthetic
module Trace = Sunflow_trace.Trace
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units

(* a smaller instance keeps the test fast while preserving statistics *)
let params = { Synthetic.default_params with n_coflows = 200 }

let trace = lazy (Synthetic.generate params)

let test_determinism () =
  let a = Synthetic.generate params and b = Synthetic.generate params in
  Alcotest.(check bool) "same seed same trace" true
    (Trace.to_string a = Trace.to_string b);
  let c = Synthetic.generate { params with seed = 43 } in
  Alcotest.(check bool) "different seed differs" true
    (Trace.to_string a <> Trace.to_string c)

let test_structure () =
  let t = Lazy.force trace in
  Alcotest.(check int) "count" 200 (Trace.n_coflows t);
  List.iter
    (fun (c : Coflow.t) ->
      if Demand.is_empty c.demand then Alcotest.fail "empty coflow";
      if Demand.max_port c.demand >= params.n_ports then
        Alcotest.fail "port out of fabric";
      if c.arrival < 0. then Alcotest.fail "negative arrival")
    t.Trace.coflows

let test_arrivals_increasing () =
  let t = Lazy.force trace in
  let arrivals = List.map (fun c -> c.Coflow.arrival) t.Trace.coflows in
  Alcotest.(check bool) "sorted" true (List.sort compare arrivals = arrivals)

let test_sizes_mb_rounded () =
  let t = Lazy.force trace in
  List.iter
    (fun (c : Coflow.t) ->
      List.iter
        (fun (_, bytes) ->
          let mb = Units.to_mb bytes in
          if mb < 1. -. 1e-9 then Alcotest.failf "below 1 MB floor: %f" mb;
          if Float.abs (mb -. Float.round mb) > 1e-6 then
            Alcotest.failf "not whole MB: %f" mb)
        (Demand.entries c.demand))
    t.Trace.coflows

let test_m2m_shuffle_structure () =
  (* every many-to-many Coflow is a full bipartite shuffle with
     sender- and receiver-sets disjoint *)
  let t = Lazy.force trace in
  t.Trace.coflows
  |> List.filter (fun c -> Coflow.category c = Coflow.Category.Many_to_many)
  |> List.iter (fun (c : Coflow.t) ->
         let s = Demand.senders c.demand and r = Demand.receivers c.demand in
         Alcotest.(check int)
           (Printf.sprintf "coflow %d full shuffle" c.Coflow.id)
           (List.length s * List.length r)
           (Coflow.n_subflows c);
         if List.exists (fun p -> List.mem p r) s then
           Alcotest.fail "sender/receiver overlap")

let test_category_mix () =
  (* at the full trace size the mix should track the Table 4 weights
     within a few percentage points *)
  let t = Synthetic.generate Synthetic.default_params in
  let stats = Sunflow_trace.Workload.classify t in
  List.iter2
    (fun (s : Sunflow_trace.Workload.class_stat) (expected, _) ->
      if Float.abs (s.coflow_pct -. expected) > 6. then
        Alcotest.failf "%s share %.1f%% too far from %.1f%%"
          (Coflow.Category.to_string s.category)
          s.coflow_pct expected)
    stats Synthetic.default_params.category_weights

let test_m2m_byte_dominance () =
  let t = Lazy.force trace in
  let stats = Sunflow_trace.Workload.classify t in
  let m2m =
    List.find
      (fun (s : Sunflow_trace.Workload.class_stat) ->
        s.category = Coflow.Category.Many_to_many)
      stats
  in
  Alcotest.(check bool) "M2M carries almost all bytes" true
    (m2m.bytes_pct > 97.)

let test_validation () =
  let bad = { params with width_max = 100 } in
  Alcotest.check_raises "width vs fabric"
    (Invalid_argument "Synthetic.generate: width_max too large for the fabric")
    (fun () -> ignore (Synthetic.generate bad));
  let bad2 = { params with span = 0. } in
  Alcotest.check_raises "span"
    (Invalid_argument "Synthetic.generate: non-positive span") (fun () ->
      ignore (Synthetic.generate bad2))

let suite =
  [
    Alcotest.test_case "determinism" `Quick test_determinism;
    Alcotest.test_case "structure" `Quick test_structure;
    Alcotest.test_case "arrivals increasing" `Quick test_arrivals_increasing;
    Alcotest.test_case "sizes MB-rounded with floor" `Quick
      test_sizes_mb_rounded;
    Alcotest.test_case "m2m shuffle structure" `Quick
      test_m2m_shuffle_structure;
    Alcotest.test_case "category mix" `Quick test_category_mix;
    Alcotest.test_case "m2m byte dominance" `Quick test_m2m_byte_dominance;
    Alcotest.test_case "validation" `Quick test_validation;
  ]

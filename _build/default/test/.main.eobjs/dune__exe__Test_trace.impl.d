test/test_trace.ml: Alcotest Filename List Printf Sunflow_core Sunflow_trace Sys Util

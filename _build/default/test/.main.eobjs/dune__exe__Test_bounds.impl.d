test/test_bounds.ml: Alcotest QCheck2 QCheck_alcotest Sunflow_core Util

test/test_sims.ml: Alcotest Format List QCheck2 QCheck_alcotest Sunflow_core Sunflow_packet Sunflow_sim Util

test/util.ml: Alcotest Array Float List QCheck2 String Sunflow_core Sunflow_matching

test/test_sunflow.ml: Alcotest Hashtbl List Option QCheck2 QCheck_alcotest Sunflow_core Util

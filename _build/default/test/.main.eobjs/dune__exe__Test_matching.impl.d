test/test_matching.ml: Alcotest Array Fun Hashtbl List QCheck2 QCheck_alcotest Sunflow_matching Util

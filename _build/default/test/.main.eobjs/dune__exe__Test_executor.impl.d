test/test_executor.ml: Alcotest Sunflow_baselines Sunflow_core Util

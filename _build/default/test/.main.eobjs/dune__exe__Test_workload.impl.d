test/test_workload.ml: Alcotest List QCheck2 QCheck_alcotest Sunflow_core Sunflow_trace Util

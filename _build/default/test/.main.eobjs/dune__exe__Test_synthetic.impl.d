test/test_synthetic.ml: Alcotest Float Lazy List Printf Sunflow_core Sunflow_trace

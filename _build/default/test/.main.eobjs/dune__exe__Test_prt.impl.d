test/test_prt.ml: Alcotest Float Hashtbl List QCheck2 QCheck_alcotest Sunflow_core Util

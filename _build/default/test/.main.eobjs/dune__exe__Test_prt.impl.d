test/test_prt.ml: Alcotest List QCheck2 QCheck_alcotest Sunflow_core Util

test/test_fuzz.ml: Bytes List QCheck2 QCheck_alcotest String Sunflow_core Sunflow_stats Sunflow_switch Sunflow_trace Util

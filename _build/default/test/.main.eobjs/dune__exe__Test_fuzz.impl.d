test/test_fuzz.ml: Bytes Float List QCheck2 QCheck_alcotest String Sunflow_core Sunflow_stats Sunflow_switch Sunflow_trace Test_prt Util

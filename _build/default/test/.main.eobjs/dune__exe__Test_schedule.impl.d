test/test_schedule.ml: Alcotest Format List Sunflow_core Util

test/test_experiments.ml: Alcotest List Sunflow_core Sunflow_experiments Sunflow_trace Util

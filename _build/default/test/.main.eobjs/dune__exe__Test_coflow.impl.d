test/test_coflow.ml: Alcotest Sunflow_core Util

test/test_distribution.ml: Alcotest Array List QCheck2 QCheck_alcotest String Sunflow_stats Util

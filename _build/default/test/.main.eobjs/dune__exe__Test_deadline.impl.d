test/test_deadline.ml: Alcotest List QCheck2 QCheck_alcotest Sunflow_core Util

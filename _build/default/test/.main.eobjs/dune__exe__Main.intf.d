test/main.mli:

test/test_event_queue.ml: Alcotest Float List QCheck2 QCheck_alcotest Sunflow_sim

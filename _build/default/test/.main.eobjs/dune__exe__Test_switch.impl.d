test/test_switch.ml: Alcotest Float List QCheck2 QCheck_alcotest Sunflow_baselines Sunflow_core Sunflow_switch Util

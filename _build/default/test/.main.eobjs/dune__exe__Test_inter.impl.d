test/test_inter.ml: Alcotest List Option QCheck2 QCheck_alcotest Sunflow_core Util

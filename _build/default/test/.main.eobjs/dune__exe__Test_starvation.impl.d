test/test_starvation.ml: Alcotest Fun List Printf Sunflow_baselines Sunflow_core Util

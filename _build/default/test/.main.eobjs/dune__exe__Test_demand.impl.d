test/test_demand.ml: Alcotest Array List QCheck2 QCheck_alcotest Sunflow_core Sunflow_matching Util

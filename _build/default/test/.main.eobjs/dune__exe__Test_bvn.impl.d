test/test_bvn.ml: Alcotest List QCheck2 QCheck_alcotest Sunflow_baselines Sunflow_matching Util

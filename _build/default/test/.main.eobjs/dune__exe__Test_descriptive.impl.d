test/test_descriptive.ml: Alcotest Format Sunflow_stats Util

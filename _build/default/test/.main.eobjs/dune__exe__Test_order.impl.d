test/test_order.ml: Alcotest List Sunflow_core Util

test/test_baselines.ml: Alcotest Hashtbl List Option QCheck2 QCheck_alcotest Sunflow_baselines Sunflow_core Util

test/test_jobs.ml: Alcotest List QCheck2 QCheck_alcotest Sunflow_core Sunflow_jobs Sunflow_packet Util

test/test_packet.ml: Alcotest List QCheck2 QCheck_alcotest Sunflow_core Sunflow_packet Util

test/test_hybrid.ml: Alcotest List Sunflow_core Sunflow_sim Util

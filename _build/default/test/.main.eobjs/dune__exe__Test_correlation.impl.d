test/test_correlation.ml: Alcotest List Sunflow_stats

test/test_units.ml: Alcotest Format Sunflow_core

module Schedule = Sunflow_core.Schedule
module Prt = Sunflow_core.Prt

let r ?(coflow = 0) ~src ~dst ~start ~setup ~length () =
  { Prt.coflow; src; dst; start; setup; length }

let test_finish_time () =
  Util.check_close "default on empty" 7. (Schedule.finish_time ~default:7. []);
  let plan =
    [
      r ~src:0 ~dst:1 ~start:0. ~setup:0.1 ~length:1. ();
      r ~src:2 ~dst:3 ~start:5. ~setup:0.1 ~length:2. ();
    ]
  in
  Util.check_close "latest stop" 7. (Schedule.finish_time ~default:0. plan)

let test_transmission_overlap () =
  let res = r ~src:0 ~dst:1 ~start:1. ~setup:0.5 ~length:2. () in
  (* transmits over [1.5, 3) *)
  Util.check_close "full" 1.5 (Schedule.transmission_overlap res ~t0:0. ~t1:10.);
  Util.check_close "clipped left" 0.5
    (Schedule.transmission_overlap res ~t0:2.5 ~t1:10.);
  Util.check_close "clipped right" 0.5
    (Schedule.transmission_overlap res ~t0:0. ~t1:2.);
  Util.check_close "setup only" 0.
    (Schedule.transmission_overlap res ~t0:1. ~t1:1.5);
  Util.check_close "disjoint" 0.
    (Schedule.transmission_overlap res ~t0:5. ~t1:6.)

let test_bytes_in_window () =
  let plan = [ r ~src:0 ~dst:1 ~start:0. ~setup:0.5 ~length:1.5 () ] in
  Util.check_close "1 s at 100 B/s" 100.
    (Schedule.bytes_in_window ~bandwidth:100. ~t0:0. ~t1:2. plan)

let test_counts () =
  let plan =
    [
      r ~src:0 ~dst:1 ~start:0. ~setup:0.1 ~length:1. ();
      r ~src:0 ~dst:1 ~start:1. ~setup:0. ~length:1. ();
      r ~src:2 ~dst:3 ~start:0. ~setup:0.2 ~length:1. ();
    ]
  in
  Alcotest.(check int) "switchings" 2 (Schedule.switching_count plan);
  Util.check_close "setup time" 0.3 (Schedule.total_setup_time plan);
  Util.check_close "duty cycle" 0.9 (Schedule.duty_cycle plan);
  Util.check_close "empty duty cycle" 1. (Schedule.duty_cycle [])

let test_check_port_constraints () =
  let good =
    [
      r ~src:0 ~dst:1 ~start:0. ~setup:0. ~length:1. ();
      r ~src:0 ~dst:2 ~start:1. ~setup:0. ~length:1. ();
      r ~src:1 ~dst:1 ~start:2. ~setup:0. ~length:1. ();
    ]
  in
  (match Schedule.check_port_constraints good with
  | Ok _ -> ()
  | Error e -> Alcotest.fail e);
  let bad_in =
    [
      r ~src:0 ~dst:1 ~start:0. ~setup:0. ~length:2. ();
      r ~src:0 ~dst:2 ~start:1. ~setup:0. ~length:1. ();
    ]
  in
  (match Schedule.check_port_constraints bad_in with
  | Ok _ -> Alcotest.fail "input clash not detected"
  | Error _ -> ());
  let bad_out =
    [
      r ~src:0 ~dst:9 ~start:0. ~setup:0. ~length:2. ();
      r ~src:1 ~dst:9 ~start:1. ~setup:0. ~length:1. ();
    ]
  in
  match Schedule.check_port_constraints bad_out with
  | Ok _ -> Alcotest.fail "output clash not detected"
  | Error _ -> ()

let test_coflow_reservations () =
  let prt = Prt.create () in
  Prt.reserve prt (r ~coflow:1 ~src:0 ~dst:1 ~start:0. ~setup:0. ~length:1. ());
  Prt.reserve prt (r ~coflow:2 ~src:2 ~dst:3 ~start:0. ~setup:0. ~length:1. ());
  Alcotest.(check int) "filtered" 1
    (List.length (Schedule.coflow_reservations prt ~coflow:1))

let test_gantt_smoke () =
  let plan = [ r ~src:4 ~dst:1 ~start:0. ~setup:0.2 ~length:1. () ] in
  let s = Format.asprintf "%a" (Schedule.pp_gantt ~width:20 ~bandwidth:1.) plan in
  Alcotest.(check bool) "mentions port" true (Util.contains s "in.4");
  Alcotest.(check bool) "has transmission cells" true (Util.contains s "=");
  let empty = Format.asprintf "%a" (Schedule.pp_gantt ~width:20 ~bandwidth:1.) [] in
  Alcotest.(check bool) "empty message" true (Util.contains empty "empty")

let suite =
  [
    Alcotest.test_case "finish time" `Quick test_finish_time;
    Alcotest.test_case "transmission overlap" `Quick test_transmission_overlap;
    Alcotest.test_case "bytes in window" `Quick test_bytes_in_window;
    Alcotest.test_case "switching and duty cycle" `Quick test_counts;
    Alcotest.test_case "port constraint oracle" `Quick
      test_check_port_constraints;
    Alcotest.test_case "coflow reservations" `Quick test_coflow_reservations;
    Alcotest.test_case "gantt smoke" `Quick test_gantt_smoke;
  ]

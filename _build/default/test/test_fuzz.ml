(* Failure injection: hostile inputs must produce typed errors, never
   crashes or corrupted state. *)

module Trace = Sunflow_trace.Trace
module Demand = Sunflow_core.Demand
module Controller = Sunflow_switch.Controller
module Prt = Sunflow_core.Prt

(* --- trace parser --- *)

let parses_or_fails_cleanly text =
  match Trace.parse text with
  | (_ : Trace.t) -> true
  | exception Trace.Parse_error _ -> true
  | exception _ -> false

let prop_parser_random_garbage =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parser survives random garbage" ~count:500
       QCheck2.Gen.(string_size ~gen:printable (int_range 0 200))
       parses_or_fails_cleanly)

let valid_text = "10 2\n0 0 2 1 2 1 5:10\n1 250 1 3 2 6:4 7:2\n"

let prop_parser_mutated_trace =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parser survives mutations of a valid trace"
       ~count:500
       QCheck2.Gen.(
         triple (int_range 0 (String.length valid_text - 1)) char
           (int_range 0 (String.length valid_text)))
       (fun (pos, c, cut) ->
         let mutated = Bytes.of_string valid_text in
         Bytes.set mutated pos c;
         let mutated = Bytes.sub_string mutated 0 cut in
         parses_or_fails_cleanly mutated))

let prop_parser_shuffled_lines =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parser survives line reordering" ~count:200
       QCheck2.Gen.(int_range 0 1000)
       (fun seed ->
         let rng = Sunflow_stats.Rng.create seed in
         let lines = String.split_on_char '\n' valid_text in
         let shuffled =
           String.concat "\n" (Sunflow_stats.Rng.shuffle_list rng lines)
         in
         parses_or_fails_cleanly shuffled))

(* --- controller vs adversarial plans --- *)

let reservation_gen =
  QCheck2.Gen.(
    let* src = int_range 0 3 in
    let* dst = int_range 0 3 in
    let* start = float_range 0. 2. in
    let* setup = oneofl [ 0.; 0.005; 0.01; 0.02 ] in
    let* extra = float_range 0.001 0.5 in
    pure { Prt.coflow = 0; src; dst; start; setup; length = setup +. extra })

let prop_controller_rejects_or_executes =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"controller handles arbitrary plans without crashing" ~count:300
       QCheck2.Gen.(list_size (int_range 0 12) reservation_gen)
       (fun plan ->
         match
           Controller.execute ~delta:0.01 ~bandwidth:1e8 ~n_ports:4
             ~coflows:[] ~plan
         with
         | Ok report -> report.leftover = 0.
         | Error msg -> String.length msg > 0))

(* --- demand state machine --- *)

type op = Set of int * int * float | Add of int * int * float | Drain of int * int * float

let op_gen =
  QCheck2.Gen.(
    let* i = int_range 0 3 and* j = int_range 0 3 in
    let* v = float_range 0. 100. in
    oneofl [ Set (i, j, v); Add (i, j, v); Drain (i, j, v) ])

let prop_demand_invariants =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"demand invariants hold under random ops"
       ~count:300
       QCheck2.Gen.(list_size (int_range 0 60) op_gen)
       (fun ops ->
         let d = Demand.create () in
         List.iter
           (function
             | Set (i, j, v) -> Demand.set d i j v
             | Add (i, j, v) -> Demand.add d i j v
             | Drain (i, j, v) -> Demand.drain d i j v)
           ops;
         let entries = Demand.entries d in
         (* no non-positive entries are ever stored *)
         List.for_all (fun (_, v) -> v > 0.) entries
         (* aggregates agree with the entry list *)
         && Util.close ~eps:1e-6 (Demand.total_bytes d)
              (List.fold_left (fun a (_, v) -> a +. v) 0. entries)
         && Demand.n_flows d = List.length entries
         && List.length (Demand.senders d)
            = List.length
                (List.sort_uniq compare (List.map (fun ((i, _), _) -> i) entries))))

let suite =
  [
    prop_parser_random_garbage;
    prop_parser_mutated_trace;
    prop_parser_shuffled_lines;
    prop_controller_rejects_or_executes;
    prop_demand_invariants;
  ]

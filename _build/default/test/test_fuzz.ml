(* Failure injection: hostile inputs must produce typed errors, never
   crashes or corrupted state. *)

module Trace = Sunflow_trace.Trace
module Demand = Sunflow_core.Demand
module Controller = Sunflow_switch.Controller
module Prt = Sunflow_core.Prt

(* --- trace parser --- *)

let parses_or_fails_cleanly text =
  match Trace.parse text with
  | (_ : Trace.t) -> true
  | exception Trace.Parse_error _ -> true
  | exception _ -> false

let prop_parser_random_garbage =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parser survives random garbage" ~count:500
       QCheck2.Gen.(string_size ~gen:printable (int_range 0 200))
       parses_or_fails_cleanly)

let valid_text = "10 2\n0 0 2 1 2 1 5:10\n1 250 1 3 2 6:4 7:2\n"

let prop_parser_mutated_trace =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parser survives mutations of a valid trace"
       ~count:500
       QCheck2.Gen.(
         triple (int_range 0 (String.length valid_text - 1)) char
           (int_range 0 (String.length valid_text)))
       (fun (pos, c, cut) ->
         let mutated = Bytes.of_string valid_text in
         Bytes.set mutated pos c;
         let mutated = Bytes.sub_string mutated 0 cut in
         parses_or_fails_cleanly mutated))

let prop_parser_shuffled_lines =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"parser survives line reordering" ~count:200
       QCheck2.Gen.(int_range 0 1000)
       (fun seed ->
         let rng = Sunflow_stats.Rng.create seed in
         let lines = String.split_on_char '\n' valid_text in
         let shuffled =
           String.concat "\n" (Sunflow_stats.Rng.shuffle_list rng lines)
         in
         parses_or_fails_cleanly shuffled))

(* --- controller vs adversarial plans --- *)

let reservation_gen =
  QCheck2.Gen.(
    let* src = int_range 0 3 in
    let* dst = int_range 0 3 in
    let* start = float_range 0. 2. in
    let* setup = oneofl [ 0.; 0.005; 0.01; 0.02 ] in
    let* extra = float_range 0.001 0.5 in
    pure { Prt.coflow = 0; src; dst; start; setup; length = setup +. extra })

let prop_controller_rejects_or_executes =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"controller handles arbitrary plans without crashing" ~count:300
       QCheck2.Gen.(list_size (int_range 0 12) reservation_gen)
       (fun plan ->
         match
           Controller.execute ~delta:0.01 ~bandwidth:1e8 ~n_ports:4
             ~coflows:[] ~plan
         with
         | Ok report -> report.leftover = 0.
         | Error msg -> String.length msg > 0))

(* --- PRT: interleaved reserve/query streams vs the list oracle --- *)

module Ref_prt = Test_prt.Ref_prt

type prt_op =
  | Reserve of Prt.reservation
  | Free_at of Prt.port * float
  | Next_start of Prt.port * float
  | Next_release of float
  | Next_release_ports of Prt.port list * float

let prt_op_gen =
  QCheck2.Gen.(
    let port =
      let* side = bool and* i = int_range 0 3 in
      pure (if side then Prt.In i else Prt.Out i)
    in
    let grid hi = map (fun k -> float_of_int k /. 16.) (int_range 0 hi) in
    let reservation =
      let* src = int_range 0 3 and* dst = int_range 0 3 in
      let* start = grid 96 and* len16 = int_range 1 32 in
      let* setup = oneofl [ 0.; 0.01 ] in
      pure
        {
          Prt.coflow = 0;
          src;
          dst;
          start;
          setup;
          length = float_of_int len16 /. 16.;
        }
    in
    oneof
      [
        map (fun r -> Reserve r) reservation;
        map2 (fun p i -> Free_at (p, i)) port (grid 128);
        map2 (fun p i -> Next_start (p, i)) port (grid 128);
        map (fun i -> Next_release i) (grid 128);
        map2 (fun ps i -> Next_release_ports (ps, i)) (list_size (int_range 0 4) port)
          (grid 128);
      ])

let prop_prt_stream_oracle =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"interleaved PRT ops agree with the list oracle step by step"
       ~count:300
       QCheck2.Gen.(list_size (int_range 1 80) prt_op_gen)
       (fun ops ->
         let t = Prt.create () in
         let ref_t = Ref_prt.create () in
         List.for_all
           (fun op ->
             match op with
             | Reserve r ->
               let ok = try Prt.reserve t r; true with Invalid_argument _ -> false in
               let ref_ok =
                 try Ref_prt.reserve ref_t r; true
                 with Invalid_argument _ -> false
               in
               ok = ref_ok
             | Free_at (p, i) -> Prt.free_at t p i = Ref_prt.free_at ref_t p i
             | Next_start (p, i) ->
               Prt.next_start_after t p i = Ref_prt.next_start_after ref_t p i
             | Next_release i ->
               Prt.next_release_after t i = Ref_prt.next_release_after ref_t i
             | Next_release_ports (ps, i) ->
               Prt.next_release_on_ports t ps i
               = Ref_prt.next_release_on_ports ref_t ps i)
           ops
         && Prt.all_reservations t = Ref_prt.all_reservations ref_t))

(* --- Sunflow: event-driven loop vs the round-robin reference --- *)

(* The pre-optimisation reservation loop, kept verbatim: every pending
   flow is retried at every release on any pending flow's ports. The
   event-driven scheduler must replay it reservation for reservation. *)
module Ref_loop = struct
  module Sunflow = Sunflow_core.Sunflow
  module Coflow = Sunflow_core.Coflow
  module Demand = Sunflow_core.Demand
  module Order = Sunflow_core.Order

  type pending = {
    src : int;
    dst : int;
    mutable remaining : float;
    mutable fresh : bool;
  }

  let make_reservation prt ~coflow ~now ~delta ~established t p =
    let in_free, in_next = Prt.probe prt (Prt.In p.src) t in
    let out_free, out_next =
      if in_free then Prt.probe prt (Prt.Out p.dst) t else (false, infinity)
    in
    if in_free && out_free then begin
      let tm = Float.min in_next out_next in
      let setup =
        if p.fresh && t = now && established (p.src, p.dst) then 0. else delta
      in
      let lm = tm -. t in
      let ld = setup +. p.remaining in
      let l = if lm <= setup then 0. else Float.min lm ld in
      let rec shave l =
        if l <= 0. || t +. l <= tm then l
        else shave (Float.min (l -. (t +. l -. tm)) (Float.pred l))
      in
      let l = if l = lm then shave l else l in
      let l = if l <= setup then 0. else l in
      if l > 0. then begin
        let r =
          { Prt.coflow; src = p.src; dst = p.dst; start = t; setup; length = l }
        in
        Prt.reserve prt r;
        p.remaining <- ld -. l;
        p.fresh <- false;
        Some r
      end
      else None
    end
    else None

  let no_circuit _ = false

  let schedule ?prt ?(now = 0.) ?(order = Order.Ordered_port)
      ?(established = no_circuit) ?(quantum = 0.) ~delta ~bandwidth coflow =
    let prt = match prt with Some p -> p | None -> Prt.create () in
    let to_processing bytes =
      let p = bytes /. bandwidth in
      if quantum > 0. then quantum *. Float.ceil (p /. quantum) else p
    in
    let pending =
      Order.apply order (Demand.entries coflow.Coflow.demand)
      |> List.filter_map (fun ((src, dst), bytes) ->
             let remaining = to_processing bytes in
             if remaining > 0. then Some { src; dst; remaining; fresh = true }
             else None)
    in
    let made = ref [] in
    let rec loop t pending =
      match pending with
      | [] -> ()
      | _ ->
        List.iter
          (fun p ->
            match
              make_reservation prt ~coflow:coflow.Coflow.id ~now ~delta
                ~established t p
            with
            | Some r -> made := r :: !made
            | None -> ())
          pending;
        let pending = List.filter (fun p -> p.remaining > 0.) pending in
        if pending <> [] then begin
          let ports =
            List.concat_map (fun p -> [ Prt.In p.src; Prt.Out p.dst ]) pending
            |> List.sort_uniq compare
          in
          let t' = Prt.next_release_on_ports prt ports t in
          if t' = infinity then
            invalid_arg "Ref_loop.schedule: stuck with pending demand"
          else loop t' pending
        end
    in
    loop now pending;
    let reservations = List.rev !made in
    let finish =
      List.fold_left (fun acc r -> Float.max acc (Prt.stop r)) now reservations
    in
    let setups =
      List.fold_left (fun k r -> if r.Prt.setup > 0. then k + 1 else k) 0
        reservations
    in
    { Sunflow.reservations; finish; setups }
end

let prop_event_loop_matches_round_robin =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make
       ~name:"event-driven Sunflow loop replays the round-robin loop exactly"
       ~count:150
       QCheck2.Gen.(
         let* coflows =
           list_size (int_range 1 4) (Util.Gen.coflow ~n_ports:6 ())
         in
         let* delta = oneofl [ 0.; 0.001; 0.01; 0.1 ] in
         let* order =
           oneofl
             Sunflow_core.Order.
               [ Ordered_port; Sorted_demand_desc; Shuffled 13 ]
         in
         pure (coflows, delta, order))
       (fun (coflows, delta, order) ->
         let bandwidth = 1.25e8 in
         (* inter-style: both loops extend their own shared table in the
            same Coflow order, so later Coflows see earlier reservations *)
         let prt_new = Prt.create () and prt_ref = Prt.create () in
         List.for_all
           (fun c ->
             let a =
               Sunflow_core.Sunflow.schedule ~prt:prt_new ~order ~delta
                 ~bandwidth c
             in
             let b =
               Ref_loop.schedule ~prt:prt_ref ~order ~delta ~bandwidth c
             in
             a.Sunflow_core.Sunflow.reservations
             = b.Sunflow_core.Sunflow.reservations
             && a.finish = b.finish
             && a.setups = b.setups)
           coflows
         && Prt.all_reservations prt_new = Prt.all_reservations prt_ref))

(* --- demand state machine --- *)

type op = Set of int * int * float | Add of int * int * float | Drain of int * int * float

let op_gen =
  QCheck2.Gen.(
    let* i = int_range 0 3 and* j = int_range 0 3 in
    let* v = float_range 0. 100. in
    oneofl [ Set (i, j, v); Add (i, j, v); Drain (i, j, v) ])

let prop_demand_invariants =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"demand invariants hold under random ops"
       ~count:300
       QCheck2.Gen.(list_size (int_range 0 60) op_gen)
       (fun ops ->
         let d = Demand.create () in
         List.iter
           (function
             | Set (i, j, v) -> Demand.set d i j v
             | Add (i, j, v) -> Demand.add d i j v
             | Drain (i, j, v) -> Demand.drain d i j v)
           ops;
         let entries = Demand.entries d in
         (* no non-positive entries are ever stored *)
         List.for_all (fun (_, v) -> v > 0.) entries
         (* aggregates agree with the entry list *)
         && Util.close ~eps:1e-6 (Demand.total_bytes d)
              (List.fold_left (fun a (_, v) -> a +. v) 0. entries)
         && Demand.n_flows d = List.length entries
         && List.length (Demand.senders d)
            = List.length
                (List.sort_uniq compare (List.map (fun ((i, _), _) -> i) entries))))

let suite =
  [
    prop_parser_random_garbage;
    prop_parser_mutated_trace;
    prop_parser_shuffled_lines;
    prop_controller_rejects_or_executes;
    prop_prt_stream_oracle;
    prop_event_loop_matches_round_robin;
    prop_demand_invariants;
  ]

(* Dense matrices, stuffing, Hopcroft-Karp and Hungarian, each checked
   against brute force on small instances. *)

module Dense = Sunflow_matching.Dense
module Stuffing = Sunflow_matching.Stuffing
module Bipartite = Sunflow_matching.Bipartite
module HK = Sunflow_matching.Hopcroft_karp
module Hungarian = Sunflow_matching.Hungarian

let checkf = Alcotest.(check (float 1e-9))

(* --- Dense --- *)

let m0 () = [| [| 1.; 2. |]; [| 3.; 0. |] |]

let test_dense_sums () =
  let m = m0 () in
  Alcotest.(check (list (float 1e-9))) "rows" [ 3.; 3. ]
    (Array.to_list (Dense.row_sums m));
  Alcotest.(check (list (float 1e-9))) "cols" [ 4.; 2. ]
    (Array.to_list (Dense.col_sums m));
  checkf "total" 6. (Dense.total m);
  checkf "max entry" 3. (Dense.max_entry m);
  checkf "min positive" 1. (Dense.min_positive_entry m);
  checkf "max line" 4. (Dense.max_line_sum m);
  Alcotest.(check int) "positive count" 3 (Dense.count_positive m)

let test_dense_quantize () =
  let m = [| [| 0.9; 0. |]; [| 2.1; 1. |] |] in
  let q = Dense.quantize_up ~quantum:1. m in
  checkf "rounded up" 1. q.(0).(0);
  checkf "zero stays" 0. q.(0).(1);
  checkf "2.1 -> 3" 3. q.(1).(0);
  checkf "exact multiple kept" 1. q.(1).(1);
  let same = Dense.quantize_up ~quantum:0. m in
  Alcotest.(check bool) "quantum 0 is copy" true (Dense.equal m same)

let test_dense_sub_clamped () =
  let d = Dense.sub_clamped [| [| 1.; 5. |]; [| 0.; 2. |] |] [| [| 2.; 1. |]; [| 0.; 2. |] |] in
  checkf "clamped" 0. d.(0).(0);
  checkf "diff" 4. d.(0).(1)

(* --- Stuffing --- *)

let test_stuff_balances () =
  let m = m0 () in
  let s = Stuffing.stuff m in
  Alcotest.(check bool) "balanced" true (Stuffing.is_balanced s);
  (* stuffing only adds *)
  for i = 0 to 1 do
    for j = 0 to 1 do
      if s.(i).(j) < m.(i).(j) -. 1e-12 then Alcotest.fail "entry shrank"
    done
  done;
  checkf "dummy total" (2. *. 4. -. 6.) (Stuffing.dummy_added ~original:m ~stuffed:s)

let test_stuff_already_balanced () =
  let m = [| [| 1.; 2. |]; [| 2.; 1. |] |] in
  let s = Stuffing.stuff m in
  Alcotest.(check bool) "unchanged" true (Dense.equal m s)

let prop_stuff_balanced =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"stuff always balances" ~count:200
       QCheck2.Gen.(
         list_size (pure 4) (list_size (pure 4) (float_range 0. 9.)))
       (fun rows ->
         let m = Array.of_list (List.map Array.of_list rows) in
         Stuffing.is_balanced (Stuffing.stuff m)))

(* --- Sinkhorn --- *)

let test_sinkhorn_doubly_stochastic () =
  let m = [| [| 1.; 9.; 2. |]; [| 4.; 1.; 1. |]; [| 2.; 2.; 8. |] |] in
  let d = Sunflow_matching.Sinkhorn.scale m in
  Alcotest.(check bool) "converged" true
    (Sunflow_matching.Sinkhorn.max_line_deviation d <= 1e-8);
  (* scaling preserves zero/positive pattern and relative row order *)
  Alcotest.(check bool) "entries positive" true
    (Array.for_all (Array.for_all (fun v -> v > 0.)) d)

let test_sinkhorn_rejects_nonpositive () =
  Alcotest.check_raises "zero entry"
    (Invalid_argument "Sinkhorn.scale: matrix must be strictly positive")
    (fun () -> ignore (Sunflow_matching.Sinkhorn.scale [| [| 1.; 0. |]; [| 1.; 1. |] |]))

let prop_sinkhorn_converges =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"sinkhorn converges on positive matrices"
       ~count:100
       QCheck2.Gen.(
         list_size (pure 4) (list_size (pure 4) (float_range 0.01 50.)))
       (fun rows ->
         let m = Array.of_list (List.map Array.of_list rows) in
         let d = Sunflow_matching.Sinkhorn.scale m in
         Sunflow_matching.Sinkhorn.max_line_deviation d <= 1e-6))

(* --- Hopcroft-Karp vs brute force --- *)

let brute_force_max_matching g =
  let nl = Bipartite.n_left g in
  let used = Array.make (Bipartite.n_right g) false in
  let rec best u =
    if u = nl then 0
    else begin
      let skip = best (u + 1) in
      List.fold_left
        (fun acc v ->
          if used.(v) then acc
          else begin
            used.(v) <- true;
            let r = 1 + best (u + 1) in
            used.(v) <- false;
            max acc r
          end)
        skip
        (Bipartite.neighbours g u)
    end
  in
  best 0

let graph_gen =
  QCheck2.Gen.(
    let* nl = int_range 1 6 in
    let* nr = int_range 1 6 in
    let* edges =
      list_size (int_range 0 14)
        (pair (int_range 0 (nl - 1)) (int_range 0 (nr - 1)))
    in
    pure (Bipartite.create ~n_left:nl ~n_right:nr edges))

let prop_hk_maximum =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"hopcroft-karp finds a maximum matching"
       ~count:300 graph_gen (fun g ->
         let m = HK.solve g in
         (* result is a valid matching *)
         let ok_valid =
           Array.for_all
             (fun v -> v = -1 || true)
             m.pair_left
           &&
           let seen = Hashtbl.create 8 in
           Array.for_all
             (fun v ->
               v = -1
               ||
               if Hashtbl.mem seen v then false
               else begin
                 Hashtbl.replace seen v ();
                 true
               end)
             m.pair_left
         in
         ok_valid && m.size = brute_force_max_matching g))

let test_hk_perfect () =
  let g = Bipartite.create ~n_left:2 ~n_right:2 [ (0, 0); (0, 1); (1, 0) ] in
  (match HK.perfect g with
  | Some pairs ->
    Alcotest.(check int) "two pairs" 2 (List.length pairs);
    Alcotest.(check bool) "uses (1,0)" true (List.mem (1, 0) pairs)
  | None -> Alcotest.fail "perfect matching exists");
  let g2 = Bipartite.create ~n_left:2 ~n_right:2 [ (0, 0); (1, 0) ] in
  Alcotest.(check bool) "no perfect matching" true (HK.perfect g2 = None)

(* --- Hungarian vs brute force --- *)

let brute_force_max_assignment w =
  let n = Array.length w in
  let cols = Array.make n false in
  let rec go i =
    if i = n then 0.
    else begin
      let best = ref neg_infinity in
      for j = 0 to n - 1 do
        if not cols.(j) then begin
          cols.(j) <- true;
          let v = w.(i).(j) +. go (i + 1) in
          if v > !best then best := v;
          cols.(j) <- false
        end
      done;
      !best
    end
  in
  go 0

let matrix_gen n =
  QCheck2.Gen.(
    let* rows = list_size (pure n) (list_size (pure n) (float_range 0. 20.)) in
    pure (Array.of_list (List.map Array.of_list rows)))

let prop_hungarian_optimal =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"hungarian matches brute force" ~count:200
       QCheck2.Gen.(int_range 1 5 >>= matrix_gen)
       (fun w ->
         let a = Hungarian.max_weight_assignment w in
         (* a is a permutation *)
         List.sort compare (Array.to_list a) = List.init (Array.length w) Fun.id
         && Util.close ~eps:1e-6
              (Hungarian.assignment_weight w a)
              (brute_force_max_assignment w)))

let test_hungarian_drops_zeros () =
  let w = [| [| 5.; 0. |]; [| 0.; 0. |] |] in
  let pairs = Hungarian.max_weight_matching w in
  Alcotest.(check (list (pair int int))) "only positive pair" [ (0, 0) ] pairs

let suite =
  [
    Alcotest.test_case "dense sums" `Quick test_dense_sums;
    Alcotest.test_case "dense quantize" `Quick test_dense_quantize;
    Alcotest.test_case "dense sub clamped" `Quick test_dense_sub_clamped;
    Alcotest.test_case "stuffing balances" `Quick test_stuff_balances;
    Alcotest.test_case "stuffing no-op when balanced" `Quick
      test_stuff_already_balanced;
    prop_stuff_balanced;
    Alcotest.test_case "sinkhorn doubly stochastic" `Quick
      test_sinkhorn_doubly_stochastic;
    Alcotest.test_case "sinkhorn rejects non-positive" `Quick
      test_sinkhorn_rejects_nonpositive;
    prop_sinkhorn_converges;
    prop_hk_maximum;
    Alcotest.test_case "hopcroft-karp perfect" `Quick test_hk_perfect;
    prop_hungarian_optimal;
    Alcotest.test_case "hungarian drops zero pairs" `Quick
      test_hungarian_drops_zeros;
  ]

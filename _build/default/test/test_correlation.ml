module C = Sunflow_stats.Correlation

let check = Alcotest.(check (float 1e-9))

let test_pearson_exact () =
  check "perfect positive" 1. (C.pearson [ 1.; 2.; 3. ] [ 10.; 20.; 30. ]);
  check "perfect negative" (-1.) (C.pearson [ 1.; 2.; 3. ] [ 3.; 2.; 1. ]);
  (* hand-computed: cov=2, sx=sqrt 2, sy=sqrt 8 -> r = 2/4 ... *)
  check "affine" 1. (C.pearson [ 0.; 1.; 2.; 3. ] [ 5.; 7.; 9.; 11. ])

let test_pearson_uncorrelated () =
  let r = C.pearson [ 1.; 2.; 3.; 4. ] [ 1.; -1.; -1.; 1. ] in
  check "symmetric pattern" 0. r

let test_pearson_errors () =
  Alcotest.check_raises "length"
    (Invalid_argument "Correlation.pearson: mismatched lengths") (fun () ->
      ignore (C.pearson [ 1. ] [ 1.; 2. ]));
  Alcotest.check_raises "too short"
    (Invalid_argument "Correlation.pearson: need at least two points")
    (fun () -> ignore (C.pearson [ 1. ] [ 1. ]));
  Alcotest.check_raises "zero variance"
    (Invalid_argument "Correlation.pearson: zero-variance sample") (fun () ->
      ignore (C.pearson [ 1.; 1. ] [ 1.; 2. ]))

let test_spearman_monotone () =
  (* any monotone transform gives rank correlation 1 *)
  let xs = [ 1.; 2.; 5.; 9.; 12. ] in
  let ys = List.map (fun x -> exp x) xs in
  check "monotone" 1. (C.spearman xs ys);
  check "anti-monotone" (-1.) (C.spearman xs (List.map (fun x -> -.x) ys))

let test_spearman_ties () =
  (* ties get average ranks; a tied pair should not break symmetry *)
  let r = C.spearman [ 1.; 1.; 2.; 3. ] [ 1.; 1.; 2.; 3. ] in
  check "self with ties" 1. r

let test_spearman_vs_pearson_outlier () =
  (* an outlier distorts Pearson but not Spearman *)
  let xs = [ 1.; 2.; 3.; 4.; 1000. ] in
  let ys = [ 1.; 2.; 3.; 4.; 5. ] in
  check "spearman robust" 1. (C.spearman xs ys);
  Alcotest.(check bool) "pearson below 1" true (C.pearson xs ys < 1.)

let suite =
  [
    Alcotest.test_case "pearson exact" `Quick test_pearson_exact;
    Alcotest.test_case "pearson uncorrelated" `Quick test_pearson_uncorrelated;
    Alcotest.test_case "pearson errors" `Quick test_pearson_errors;
    Alcotest.test_case "spearman monotone" `Quick test_spearman_monotone;
    Alcotest.test_case "spearman ties" `Quick test_spearman_ties;
    Alcotest.test_case "spearman vs pearson outlier" `Quick
      test_spearman_vs_pearson_outlier;
  ]

module Workload = Sunflow_trace.Workload
module Trace = Sunflow_trace.Trace
module Coflow = Sunflow_core.Coflow
module Demand = Sunflow_core.Demand
module Units = Sunflow_core.Units

let b = Units.gbps 1.

let mk id ?(arrival = 0.) flows =
  Coflow.make ~id ~arrival (Demand.of_list flows)

let trace coflows = { Trace.n_ports = 150; coflows }

let test_perturb_bounds () =
  let t =
    trace [ mk 0 [ ((0, 1), Units.mb 100.); ((2, 3), Units.mb 40.) ] ]
  in
  let t' = Workload.perturb ~fraction:0.05 ~seed:1 t in
  List.iter2
    (fun (c : Coflow.t) (c' : Coflow.t) ->
      List.iter2
        (fun (_, v) (_, v') ->
          if v' < 0.95 *. v -. 1e-6 || v' > 1.05 *. v +. 1e-6 then
            Alcotest.failf "perturbation out of bounds: %f -> %f" v v')
        (Demand.entries c.demand)
        (Demand.entries c'.demand))
    t.Trace.coflows t'.Trace.coflows

let test_perturb_floor () =
  let t = trace [ mk 0 [ ((0, 1), Units.mb 1.) ] ] in
  let t' = Workload.perturb ~seed:3 t in
  let v = Demand.get (List.hd t'.Trace.coflows).Coflow.demand 0 1 in
  Alcotest.(check bool) "floored at 1 MB" true (v >= Units.mb 1. -. 1e-6)

let test_perturb_deterministic () =
  let t = trace [ mk 0 [ ((0, 1), Units.mb 50.) ] ] in
  let a = Workload.perturb ~seed:9 t and b' = Workload.perturb ~seed:9 t in
  Alcotest.(check bool) "same seed" true (Trace.to_string a = Trace.to_string b')

let test_classify_sums () =
  let t =
    trace
      [
        mk 0 [ ((0, 1), 10.) ];
        mk 1 [ ((0, 1), 10.); ((0, 2), 10.) ];
        mk 2 [ ((0, 9), 10.); ((1, 9), 10.) ];
        mk 3 [ ((0, 1), 10.); ((2, 3), 10.) ];
      ]
  in
  let stats = Workload.classify t in
  Util.check_close "coflow pct sums to 100" 100.
    (List.fold_left (fun a (s : Workload.class_stat) -> a +. s.coflow_pct) 0. stats);
  Util.check_close "bytes pct sums to 100" 100.
    (List.fold_left (fun a (s : Workload.class_stat) -> a +. s.bytes_pct) 0. stats);
  List.iter
    (fun (s : Workload.class_stat) ->
      Alcotest.(check int)
        (Coflow.Category.to_string s.category ^ " count")
        1 s.count)
    stats

let test_idleness_by_hand () =
  (* two active windows [0, 1] and [2, 3] over a [0, 3] horizon: one of
     three seconds idle *)
  let flows seconds = [ ((0, 1), b *. seconds) ] in
  let t = trace [ mk 0 (flows 1.); mk 1 ~arrival:2. (flows 1.) ] in
  Util.check_close "idleness 1/3" (1. /. 3.) (Workload.idleness ~bandwidth:b t);
  (* overlapping windows: no idle time *)
  let t2 = trace [ mk 0 (flows 2.); mk 1 ~arrival:1. (flows 1.) ] in
  Util.check_close "no idle" 0. (Workload.idleness ~bandwidth:b t2);
  Util.check_close "empty trace fully idle" 1.
    (Workload.idleness ~bandwidth:b (trace []))

let test_scale_to_idleness () =
  let flows seconds = [ ((0, 1), b *. seconds) ] in
  let t = trace [ mk 0 (flows 1.); mk 1 ~arrival:2. (flows 0.5) ] in
  let scaled, k = Workload.scale_to_idleness ~bandwidth:b ~target:0.3 t in
  Util.check_close ~eps:0.05 "target reached" 0.3
    (Workload.idleness ~bandwidth:b scaled);
  Alcotest.(check bool) "factor positive" true (k > 0.);
  Alcotest.check_raises "bad target"
    (Invalid_argument "Workload.scale_to_idleness: target outside (0, 1)")
    (fun () -> ignore (Workload.scale_to_idleness ~bandwidth:b ~target:1.5 t))

let test_alpha_max () =
  let t =
    trace [ mk 0 [ ((0, 1), Units.mb 1.) ]; mk 1 [ ((0, 1), Units.mb 100.) ] ]
  in
  (* dominated by the 1 MB flow: delta / 8 ms = 1.25 *)
  Util.check_close "alpha" 1.25
    (Workload.alpha_max ~bandwidth:b ~delta:(Units.ms 10.) t)

let test_long_short_split () =
  let t =
    trace
      [ mk 0 [ ((0, 1), Units.mb 100.) ]; mk 1 [ ((0, 1), Units.mb 1.) ] ]
  in
  let long_, short = Workload.long_short_split ~bandwidth:b ~delta:(Units.ms 10.) t in
  Alcotest.(check (list int)) "long ids" [ 0 ]
    (List.map (fun c -> c.Coflow.id) long_);
  Alcotest.(check (list int)) "short ids" [ 1 ]
    (List.map (fun c -> c.Coflow.id) short)

let prop_scaling_preserves_structure =
  QCheck_alcotest.to_alcotest
    (QCheck2.Test.make ~name:"byte scaling preserves flow structure" ~count:50
       QCheck2.Gen.(
         pair (Util.Gen.coflow ()) (float_range 0.1 10.))
       (fun (c, k) ->
         let t = trace [ c ] in
         let scaled =
           {
             t with
             Trace.coflows =
               List.map
                 (fun (c : Coflow.t) ->
                   Coflow.with_demand c (Demand.scale k c.demand))
                 t.Trace.coflows;
           }
         in
         let c' = List.hd scaled.Trace.coflows in
         Demand.senders c.Coflow.demand = Demand.senders c'.Coflow.demand
         && Coflow.n_subflows c = Coflow.n_subflows c'))

let suite =
  [
    Alcotest.test_case "perturb bounds" `Quick test_perturb_bounds;
    Alcotest.test_case "perturb floor" `Quick test_perturb_floor;
    Alcotest.test_case "perturb deterministic" `Quick test_perturb_deterministic;
    Alcotest.test_case "classify sums" `Quick test_classify_sums;
    Alcotest.test_case "idleness by hand" `Quick test_idleness_by_hand;
    Alcotest.test_case "scale to idleness" `Quick test_scale_to_idleness;
    Alcotest.test_case "alpha max" `Quick test_alpha_max;
    Alcotest.test_case "long/short split" `Quick test_long_short_split;
    prop_scaling_preserves_structure;
  ]
